package experiment

import (
	"imagecvg/internal/core"
)

// Factory builds the oracle one trial audits through. A nil factory
// means the trial body constructs its own oracle (the common case
// when every trial generates its own dataset).
type Factory func(t Trial) (core.Oracle, error)

// SharedCache returns a factory that hands every trial of a config
// the SAME deduplicating CachingOracle over inner, plus the cache for
// inspecting hit/miss statistics. Repeated HITs — identical set or
// point queries re-issued by later trials, or by sibling cells
// sweeping an engine knob over the same dataset — are paid for once.
// This is only sound when the trials share the dataset behind inner;
// trials that regenerate their data must build fresh oracles instead.
// The cache is safe for concurrent trials when inner is.
func SharedCache(inner core.Oracle) (Factory, *core.CachingOracle) {
	cache := core.NewCachingOracle(inner)
	return func(Trial) (core.Oracle, error) { return cache, nil }, cache
}

// PerTrial adapts a per-trial oracle builder into a Factory, for
// configs whose trials need fresh oracles constructed from the trial
// seed (e.g. one simulated crowd deployment per trial).
func PerTrial(build func(t Trial) (core.Oracle, error)) Factory {
	return build
}
