// Package journal is the crash-safe file codec behind audit
// checkpoint/resume: one append-only file holds the committed rounds
// of a single audit as length-prefixed, checksummed JSON frames, made
// durable with an fsync per append — the RoundJournal the core
// journaling middleware writes through, and the replay source a
// resumed job loads.
//
// The file layout is an 8-byte magic ("CVGJNL01") followed by frames
// of
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// where the payload is one JSON-encoded core.RoundRecord. Records are
// self-indexing (RoundRecord.Round), so Load verifies the sequence is
// gapless from 0.
//
// Recovery draws a hard line between a torn tail and corruption. A
// crash mid-append leaves a final frame whose header or payload is
// incomplete, or whose checksum does not match — Load drops exactly
// that frame and returns every complete round before it, and Open
// additionally truncates the file back to the last complete round so
// appending resumes cleanly. A crash inside Create can likewise leave
// a torn header — a zero-length file or a strict prefix of the magic
// — which both treat as an empty journal (resume from round 0); Open
// rewrites the header before accepting appends. Anything else — a checksum mismatch with
// more bytes behind it, undecodable JSON, out-of-sequence round
// numbers, a bad magic — is corruption, and Load fails loudly with
// ErrCorrupt: silently replaying a damaged journal would fabricate
// crowd answers.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"imagecvg/internal/core"
)

// magic identifies a journal file and its codec version.
const magic = "CVGJNL01"

// frameHeaderSize is the per-frame overhead: payload length + CRC.
const frameHeaderSize = 8

// maxFrameSize bounds one record's encoding; a length field above it
// is treated as corruption rather than an attempted allocation.
const maxFrameSize = 64 << 20

// ErrCorrupt marks a journal Load refuses to replay: damage beyond a
// torn tail (mid-file checksum mismatch, undecodable record,
// out-of-sequence rounds, bad magic).
var ErrCorrupt = errors.New("journal: corrupt journal file")

// Journal is an open journal file accepting appends. It implements
// core.RoundJournal. Safe for concurrent use, though the core
// middleware already serializes rounds.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	next int // expected Round of the next append
}

// Create starts a fresh journal at path, truncating any existing file,
// and syncs the header before returning.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync header: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Open loads an existing journal for resumption: it returns the
// complete rounds on disk (the replay records for the resumed run),
// truncates a torn tail left by a crash, and positions the journal to
// append the next round. Corruption beyond a torn tail fails with
// ErrCorrupt.
func Open(path string) (*Journal, []core.RoundRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	recs, validEnd, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A torn header (crash inside Create before the magic was durable)
	// reads as an empty journal with validEnd 0: rewrite the header so
	// appends land on a well-formed file.
	if validEnd < int64(len(magic)) {
		if terr := f.Truncate(0); terr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn header of %s: %w", path, terr)
		}
		if _, werr := f.WriteAt([]byte(magic), 0); werr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: rewrite header of %s: %w", path, werr)
		}
		if serr := f.Sync(); serr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: sync header of %s: %w", path, serr)
		}
		validEnd = int64(len(magic))
	}
	// Drop the torn tail, if any, so appends extend the last complete
	// round.
	if fi, serr := f.Stat(); serr == nil && fi.Size() > validEnd {
		if terr := f.Truncate(validEnd); terr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, terr)
		}
		if serr := f.Sync(); serr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: sync after truncate: %w", serr)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &Journal{f: f, path: path, next: len(recs)}, recs, nil
}

// Load reads the complete rounds of the journal at path without
// opening it for appends (torn tails are skipped, not truncated).
func Load(path string) ([]core.RoundRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	recs, _, err := readAll(f)
	return recs, err
}

// readAll decodes every complete frame, returning the records and the
// byte offset just past the last complete frame. A torn tail — an
// incomplete final frame, or a final frame failing its checksum — ends
// the read at the preceding round; any other damage is ErrCorrupt.
func readAll(f *os.File) ([]core.RoundRecord, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read: %w", err)
	}
	if len(data) < len(magic) {
		// A zero-length file, or any strict prefix of the magic, is the
		// torn header a crash inside Create leaves behind — an empty
		// journal (resume from round 0), not corruption. validEnd 0
		// tells Open to rewrite the header. Content that diverges from
		// the magic is a different file format, and stays loud.
		if bytes.Equal(data, []byte(magic)[:len(data)]) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: missing or wrong magic", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(magic)], []byte(magic)) {
		return nil, 0, fmt.Errorf("%w: missing or wrong magic", ErrCorrupt)
	}
	var recs []core.RoundRecord
	off := int64(len(magic))
	rest := data[len(magic):]
	for len(rest) > 0 {
		if len(rest) < frameHeaderSize {
			return recs, off, nil // torn tail: header incomplete
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxFrameSize {
			return nil, 0, fmt.Errorf("%w: frame at offset %d declares %d bytes", ErrCorrupt, off, length)
		}
		if uint32(len(rest)-frameHeaderSize) < length {
			return recs, off, nil // torn tail: payload incomplete
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(length)]
		final := len(rest) == frameHeaderSize+int(length)
		if crc32.ChecksumIEEE(payload) != sum {
			if final {
				return recs, off, nil // torn tail: final frame half-written
			}
			return nil, 0, fmt.Errorf("%w: checksum mismatch at offset %d with %d bytes following",
				ErrCorrupt, off, len(rest)-frameHeaderSize-int(length))
		}
		var rec core.RoundRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, off, err)
		}
		if rec.Round != len(recs) {
			return nil, 0, fmt.Errorf("%w: record at offset %d has round %d, want %d",
				ErrCorrupt, off, rec.Round, len(recs))
		}
		recs = append(recs, rec)
		off += int64(frameHeaderSize) + int64(length)
		rest = rest[frameHeaderSize+int(length):]
	}
	return recs, off, nil
}

// Append implements core.RoundJournal: one frame per committed round,
// fsynced before returning so a crash never loses an acknowledged
// round. Records must arrive in round order.
func (j *Journal) Append(rec core.RoundRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: append to closed journal")
	}
	if rec.Round != j.next {
		return fmt.Errorf("journal: append round %d, want %d", rec.Round, j.next)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode round %d: %w", rec.Round, err)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: write round %d: %w", rec.Round, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync round %d: %w", rec.Round, err)
	}
	j.next++
	return nil
}

// Rounds returns how many rounds the journal holds.
func (j *Journal) Rounds() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
