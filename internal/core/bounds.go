package core

import "math"

// LowerBoundTasks is the information-theoretic minimum number of set
// queries any algorithm needs to decide coverage: ceil(N/n) queries
// merely to show every object to the crowd once (section 3.2,
// concluding remark). It applies whenever the group may be uncovered.
func LowerBoundTasks(n, setSize int) int {
	if n <= 0 || setSize <= 0 {
		return 0
	}
	return (n + setSize - 1) / setSize
}

// UpperBoundHITs is the worst-case task count of Group-Coverage in the
// form the paper reports in Table 1: N/n + tau*log10(n). (The paper's
// "upper-bound #HITs" for N=1522, n=50, tau=50 is 115, which matches
// the base-10 logarithm.)
func UpperBoundHITs(n, setSize, tau int) float64 {
	if n <= 0 || setSize <= 0 {
		return 0
	}
	return float64(n)/float64(setSize) + float64(tau)*math.Log10(float64(setSize))
}

// UpperBoundTasksLog2 is the same Theta(N/n + tau*log n) bound with
// the binary logarithm of the execution-tree depth, the form used in
// the proofs of Theorem 3.2 and Lemma 3.3: each root-to-leaf path has
// length at most ceil(log2 n), at most tau leaves answer yes, and each
// no-leaf charges to a non-leaf ancestor (so at most a factor 2), plus
// the N/n roots.
func UpperBoundTasksLog2(n, setSize, tau int) int {
	if n <= 0 || setSize <= 0 {
		return 0
	}
	roots := (n + setSize - 1) / setSize
	depth := 0
	for s := 1; s < setSize; s *= 2 {
		depth++
	}
	return roots + 2*tau*(depth+1)
}
