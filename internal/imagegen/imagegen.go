// Package imagegen renders dataset objects as small grayscale images
// and decodes them back. It is the stand-in for the paper's face
// photographs: each object's hidden demographic labels deterministically
// choose visual features (shape, shade, corner markers, border) of a
// 16x16 glyph, and simulated crowd workers answer queries by perceiving
// the rendered pixels — optionally through noise — rather than by
// reading ground truth directly. This keeps the whole pipeline honest:
// between the dataset and the algorithms there are only images.
package imagegen

import (
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
	"math/rand"

	"imagecvg/internal/pattern"
)

// Size is the glyph edge length in pixels.
const Size = 16

// Glyph is a Size x Size grayscale image in row-major order.
type Glyph [Size * Size]uint8

// At returns the pixel at (x, y).
func (g *Glyph) At(x, y int) uint8 { return g[y*Size+x] }

// Set writes the pixel at (x, y).
func (g *Glyph) Set(x, y int, v uint8) { g[y*Size+x] = v }

// Image converts the glyph to an image.Gray for use with image/png.
func (g *Glyph) Image() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, Size, Size))
	copy(img.Pix, g[:])
	return img
}

// WritePNG encodes the glyph as a PNG.
func (g *Glyph) WritePNG(w io.Writer) error { return png.Encode(w, g.Image()) }

// WritePGM encodes the glyph as a binary PGM (P5), the simplest
// portable grayscale format.
func (g *Glyph) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", Size, Size); err != nil {
		return err
	}
	_, err := w.Write(g[:])
	return err
}

// visual channel limits: attribute i of the schema drives channel i.
const (
	maxShapes  = 6 // channel 0
	maxShades  = 6 // channel 1
	maxMarkers = 4 // channel 2
	maxBorders = 3 // channel 3
)

var channelLimits = []int{maxShapes, maxShades, maxMarkers, maxBorders}

// Renderer draws glyphs for objects of one schema and decodes glyphs
// back to label vectors by nearest-template matching.
type Renderer struct {
	schema    *pattern.Schema
	templates []Glyph // clean glyph per subgroup index
	labels    [][]int // label vector per subgroup index, for decoding
}

// NewRenderer validates that the schema fits the available visual
// channels (at most 4 attributes with cardinalities 6, 6, 4, 3) and
// precomputes the clean template of every subgroup.
func NewRenderer(s *pattern.Schema) (*Renderer, error) {
	if s.NumAttrs() > len(channelLimits) {
		return nil, fmt.Errorf("imagegen: %d attributes exceed the %d visual channels", s.NumAttrs(), len(channelLimits))
	}
	for i := 0; i < s.NumAttrs(); i++ {
		if c := s.Attr(i).Cardinality(); c > channelLimits[i] {
			return nil, fmt.Errorf("imagegen: attribute %q cardinality %d exceeds channel limit %d",
				s.Attr(i).Name, c, channelLimits[i])
		}
	}
	r := &Renderer{schema: s}
	m := s.NumSubgroups()
	r.templates = make([]Glyph, m)
	r.labels = make([][]int, m)
	for idx := 0; idx < m; idx++ {
		r.labels[idx] = []int(pattern.SubgroupAt(s, idx))
		r.templates[idx] = r.clean(r.labels[idx])
	}
	return r, nil
}

// Schema returns the renderer's schema.
func (r *Renderer) Schema() *pattern.Schema { return r.schema }

// channel returns the label for channel ch, or 0 when the schema has
// fewer attributes than channels.
func channelValue(labels []int, ch int) int {
	if ch < len(labels) {
		return labels[ch]
	}
	return 0
}

// clean draws the noiseless glyph for a label vector.
func (r *Renderer) clean(labels []int) Glyph {
	var g Glyph
	shade := uint8(120 + 27*channelValue(labels, 1)) // 120..255
	drawShape(&g, channelValue(labels, 0), shade)
	drawMarkers(&g, channelValue(labels, 2))
	drawBorder(&g, channelValue(labels, 3))
	return g
}

// Render draws the glyph for a label vector and perturbs every pixel
// with additive Gaussian noise of the given standard deviation (in
// intensity units, 0..255). noise 0 returns the clean template.
func (r *Renderer) Render(labels []int, noise float64, rng *rand.Rand) (Glyph, error) {
	if !r.schema.ValidLabels(labels) {
		return Glyph{}, fmt.Errorf("imagegen: invalid labels %v", labels)
	}
	g := r.templates[pattern.SubgroupIndex(r.schema, pattern.Point(labels))]
	if noise > 0 && rng != nil {
		for i := range g {
			v := float64(g[i]) + rng.NormFloat64()*noise
			g[i] = clamp8(v)
		}
	}
	return g, nil
}

// Decode recovers the label vector whose clean template is nearest to
// the glyph in L2 distance. With the glyph sizes and channel encodings
// used here, decoding is exact up to substantial noise, mirroring the
// paper's observation that these tasks are "easy" for humans.
func (r *Renderer) Decode(g Glyph) []int {
	return r.DecodeInto(&g, nil)
}

// DecodeInto is Decode writing into dst (appended from dst[:0], grown
// as needed) so a hot loop can decode without allocating. It reads the
// glyph but never retains it, and the returned slice aliases only dst.
func (r *Renderer) DecodeInto(g *Glyph, dst []int) []int {
	return append(dst[:0], r.labels[r.nearest(g)]...)
}

// nearest returns the subgroup index whose clean template is closest
// to the glyph in L2 distance.
func (r *Renderer) nearest(g *Glyph) int {
	best, bestDist := 0, math.MaxFloat64
	for idx := range r.templates {
		d := distance(g, &r.templates[idx])
		if d < bestDist {
			best, bestDist = idx, d
		}
	}
	return best
}

// Perceive simulates looking at the glyph through perceptual noise of
// the given standard deviation and decoding what is seen. It is the
// primitive crowd workers use.
func (r *Renderer) Perceive(g Glyph, noise float64, rng *rand.Rand) []int {
	return r.PerceiveInto(g, noise, rng, nil)
}

// PerceiveInto is Perceive writing into dst (see DecodeInto). The RNG
// draws — one NormFloat64 per pixel when noise is positive — are
// identical to Perceive's, so swapping one for the other never changes
// a transcript.
func (r *Renderer) PerceiveInto(g Glyph, noise float64, rng *rand.Rand, dst []int) []int {
	if noise > 0 && rng != nil {
		for i := range g {
			g[i] = clamp8(float64(g[i]) + rng.NormFloat64()*noise)
		}
	}
	return r.DecodeInto(&g, dst)
}

func distance(a, b *Glyph) float64 {
	sum := 0.0
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// --- drawing primitives ----------------------------------------------------

// drawShape fills the central 10x10 region with one of six shapes.
func drawShape(g *Glyph, shape int, fg uint8) {
	cx, cy := float64(Size)/2-0.5, float64(Size)/2-0.5
	for y := 3; y < Size-3; y++ {
		for x := 3; x < Size-3; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			var in bool
			switch shape {
			case 0: // filled circle
				in = dx*dx+dy*dy <= 20
			case 1: // filled square
				in = math.Abs(dx) <= 4 && math.Abs(dy) <= 4
			case 2: // triangle pointing up
				in = dy >= -4 && dy <= 4 && math.Abs(dx) <= (dy+4.5)*0.62
			case 3: // diamond
				in = math.Abs(dx)+math.Abs(dy) <= 5
			case 4: // cross
				in = math.Abs(dx) <= 1.6 || math.Abs(dy) <= 1.6
			case 5: // ring
				d2 := dx*dx + dy*dy
				in = d2 <= 22 && d2 >= 7
			}
			if in {
				g.Set(x, y, fg)
			}
		}
	}
}

// drawMarkers puts up to three bright 2x2 dots in the corners.
func drawMarkers(g *Glyph, n int) {
	corners := [][2]int{{0, 0}, {Size - 2, 0}, {0, Size - 2}}
	for i := 0; i < n && i < len(corners); i++ {
		cx, cy := corners[i][0], corners[i][1]
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				g.Set(cx+dx, cy+dy, 255)
			}
		}
	}
}

// drawBorder draws no border (0), a top+bottom border (1), or a full
// frame (2) at mid intensity.
func drawBorder(g *Glyph, style int) {
	const v = 90
	if style >= 1 {
		for x := 0; x < Size; x++ {
			if g.At(x, 0) == 0 {
				g.Set(x, 0, v)
			}
			if g.At(x, Size-1) == 0 {
				g.Set(x, Size-1, v)
			}
		}
	}
	if style >= 2 {
		for y := 0; y < Size; y++ {
			if g.At(0, y) == 0 {
				g.Set(0, y, v)
			}
			if g.At(Size-1, y) == 0 {
				g.Set(Size-1, y, v)
			}
		}
	}
}
