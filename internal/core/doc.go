// Package core implements the paper's contribution: crowd-efficient
// coverage identification for image datasets. It contains
//
//   - Group-Coverage (Algorithm 1): the divide-and-conquer group-testing
//     procedure deciding whether one group reaches the coverage
//     threshold tau with Theta(N/n + tau log n) set queries;
//   - Base-Coverage (Algorithm 7): the point-query baseline;
//   - Multiple-Coverage (Algorithm 2) with LabelSamples and Aggregate
//     (Algorithm 6): the super-group heuristic for many groups;
//   - Intersectional-Coverage (Algorithm 3): MUP discovery over the
//     pattern graph of several sensitive attributes;
//   - Classifier-Coverage (Algorithm 4) with Partition and Label
//     (Algorithm 5): exploiting a pre-trained classifier's predictions;
//   - the theoretical task bounds of section 3.2.
//
// Algorithms interact with the crowd only through the Oracle
// interface, implemented by the crowd-platform simulator, by the
// perfect TruthOracle used in the paper's synthetic experiments, and
// by test doubles.
//
// On top of the sequential algorithms sits the concurrent audit
// engine:
//
//   - BatchOracle (batch.go) extends Oracle with whole-round
//     execution, the way HIT groups are actually posted; AsBatchOracle
//     lifts plain oracles through a bounded worker pool, while
//     TruthOracle and the crowd platform implement it natively.
//   - CachingOracle (cache.go) deduplicates identical queries on a
//     canonicalized key (sorted id-set plus group members) with
//     in-flight collapsing; errors are never cached.
//   - MultipleOptions.Parallelism (parallel.go) runs Multiple-Coverage
//     with super-group audits and covered-penalty re-audits fanned
//     across a worker pool, batched sampling, and per-audit child RNGs
//     split deterministically from the seed. Verdicts, task counts and
//     result bytes match the sequential engine exactly for
//     order-independent oracles at any parallelism.
//   - RetryPolicy (retry.go) re-posts transiently failing HITs with
//     jittered backoff drawn from the per-audit child RNG. Over a
//     natively batching inner oracle a retry re-posts only the
//     unanswered suffix of the round and splices the answers, so a
//     partial prefix a budget governor already committed — and paid —
//     is never charged twice.
//   - GroupCoverageRounds (rounds.go) issues each tree level as one
//     SetQueryBatch round, so even the order-dependent crowd simulator
//     reproduces identical audits at every parallelism setting.
//   - MultipleOptions.Lockstep (lockstep.go) extends that guarantee to
//     the whole multi-group engine: concurrent audits advance in
//     virtual rounds whose queries commit as one BatchOracle round in
//     canonical (super-group, member, query-sequence) order, so even
//     order-dependent oracles produce bit-identical verdicts, task
//     counts and spend at every Parallelism value.
//   - ClassifierOptions.Parallelism / Lockstep (classifier_parallel.go)
//     bring Classifier-Coverage under the same contract: the precision
//     sample posts as one point-query round, the Label phase as
//     bounded rounds of max(1, tau - verified) point queries whose
//     answers commit in predicted-set order with a deterministic early
//     stop (stop at the first index where verified >= tau, discard
//     later in-flight answers), and the Partition phase as one
//     reverse-set round per tree level with the sequential sibling
//     inference applied at commit time. Round composition is a pure
//     function of committed answers — never of the pool width.
//
// The determinism contract, by oracle kind:
//
//   - order-independent oracles (TruthOracle, stateless crowd bridges,
//     anything whose answer is a function of the request alone) are
//     safe with the free-running pool: verdicts and task counts equal
//     the sequential engine at any Parallelism, with or without
//     Lockstep.
//   - order-dependent oracles (the crowd Platform, whose worker draws
//     advance an RNG per HIT; any stateful simulator or aggregator)
//     need Lockstep for cross-parallelism reproducibility, and must
//     implement BatchOracle natively with batches executing in request
//     order — the property the canonical round commit leans on.
//
// Every audit algorithm in the package now honors the contract —
// Multiple-, Intersectional- and Classifier-Coverage all batch their
// rounds and take the Lockstep knob. One asymmetry remains by design:
// the batched engines count only committed queries in their task
// tallies (matching the sequential engines exactly), while speculative
// in-flight answers a deterministic early stop discards were still
// paid HITs — the ledger, not the task count, carries that over-issue.
//
// Budget governance (budget.go) caps that spend end to end: a Budget
// (max HITs, per-kind caps, max spend under a CostFunc) is enforced by
// the BudgetedOracle middleware, which charges committed queries one at
// a time in canonical order and admits only the affordable prefix of a
// batch — the one middleware exercising the partial-prefix clause of
// the BatchOracle contract, which the lockstep commit path delivers to
// its tasks instead of discarding paid answers. Every audit algorithm
// translates the governor's ErrBudgetExhausted into a deterministic
// partial result (Exhausted flags, per-group Settled markers,
// best-effort bounds from committed answers; Intersectional keeps
// Unknown verdicts) — never a panic, an error, or a hung round. The
// batched engines additionally narrow their speculative rounds to the
// governor's remaining headroom: Label rounds post min(tau - verified,
// headroom) point queries, and the Partition frontier is clipped to
// the queue prefix that could still reach the early stop. Under
// Lockstep the exhaustion point, partial verdicts, committed task
// counts and ledger spend are byte-identical at every Parallelism
// value; the free pool charges in arrival order (race-free, not
// width-reproducible).
//
// # Checkpoint, resume, and cancellation
//
// Because round composition under Lockstep is a pure function of
// committed answers — never of scheduling or Parallelism — a
// serialized log of the committed rounds is a complete checkpoint of
// an audit. The JournalingOracle middleware (journal.go) realizes
// that: wrapped around the top of an oracle stack it appends one
// RoundRecord per committed batch round (the requests, the positional
// answers, how the round ended, and a snapshot of the budget
// governor's ledger) to a RoundJournal, and in replay mode it answers
// the first K rounds from a previous run's records without touching
// the inner oracle at all, switching live when the journal runs dry.
// Replay verifies that the resumed run issues byte-identical requests
// (ErrJournalMismatch otherwise — a journal is only valid for the
// exact audit configuration that wrote it) and restores the governor's
// spend from each record, which yields the accounting rule the whole
// subsystem is built for: a paid HIT is never re-charged. Replayed
// rounds reach neither the crowd nor the budget; an interrupted audit
// resumed from its journal ends with verdicts, task tallies and ledger
// spend byte-identical to a run that was never interrupted (the
// kill/resume conformance matrix in internal/crowd proves this at
// P in {1, 2, 4, 16} for all three audit algorithms, budgeted and
// unbudgeted). Journaling composes with the stack order cache ->
// journal -> governor -> platform: the cache above the journal replays
// its misses deterministically and re-fills from the recorded answers;
// a governor below it is snapshot/restored per round. Free-running
// pools issue queries in arrival order, so journal replay is only
// resume-safe under Lockstep.
//
// Cancellation rides the same round boundaries: MultipleOptions.Ctx /
// ClassifierOptions.Ctx thread a context.Context through the engines,
// and a cancelled context fails the next round before it reaches the
// oracle — checked in the lockstep commit path, at pool dispatch, in
// the journaling middleware, and in the retry backoff (which selects
// on the context instead of sleeping through it). A killed job
// therefore never half-posts a round: every round either committed
// (and was journaled) or never touched the crowd, which is what makes
// kill-at-round-K exactly resumable.
//
// # Audit service
//
// The serve mode (internal/server, surfaced as cvgrun -serve) runs
// many such journaled audits as persistent jobs: each job owns one
// RoundJournal file in a data directory, its engine threads a per-job
// context into the options, and a worker pool built on RunBounded
// drains the queue. The properties this package guarantees are
// exactly what make that service correct — commits-or-never
// cancellation means an interrupted job's journal is a complete
// checkpoint; replay verification means a resumed job either
// reproduces the original audit byte-for-byte or fails loudly with
// ErrJournalMismatch; and ledger restoration means a tenant's budget
// accounting survives restarts without double-charging a single HIT.
// For the stateful crowd platform the service re-warms a fresh,
// identically-seeded platform by re-posting the journal's answered
// prefixes before going live, reconstructing the platform's RNG
// stream so post-resume rounds draw the same workers they would have
// drawn uninterrupted.
//
// # Trust and adversarial workers
//
// The trust middleware (trust.go) defends an audit against workers who
// answer strategically rather than noisily — the crowd simulator's
// WorkerStrategy overlays (lazy-yes, random-spam, colluding-liar) model
// exactly that. A TrustOracle wraps the stack above the journal (full
// order: cache -> trust -> journal -> governor -> platform) and does
// three things at round boundaries only:
//
//   - it appends one gold-standard probe HIT (a singleton set query
//     whose true answer is known from ground truth, built by
//     GoldProbes) to every ProbeEvery-th committed set round, cycling a
//     fixed battery on a schedule that is a pure function of the
//     committed set-round count — never of the pool width or the feed;
//   - it consumes the AnswerFeed's delta after each committed round and
//     scores every worker's raw answers with a sequential likelihood
//     ratio (SPRT): probe answers score against the gold truth,
//     ordinary answers against the round's aggregated consensus,
//     discounted by ContradictionWeight because the consensus itself
//     corrupts under heavy collusion — gold probes are the only
//     evidence that cannot;
//   - it pushes workers whose score crosses DistrustBelow (a one-way
//     ratchet, after MinObservations) to the WorkerScreener, which
//     drops them from future assignment draws while always retaining at
//     least one eligible worker.
//
// The middleware inherits every determinism guarantee it sits on:
// under Lockstep the probe schedule, trust scores and screening
// decisions are byte-identical at every Parallelism (the
// robustness-frontier golden and the adversarial conformance matrix at
// P in {1, 2, 4, 16} pin this), and because trust sits above the
// journal, probe-augmented rounds are journaled — a resumed audit
// re-issues the identical probes, re-reads the surviving feed, and
// restores every trust score exactly (the feed is process-local and
// not journaled, so exact score restoration holds for in-process
// resume; a fresh process replays verdicts and the probe schedule
// exactly but accumulates trust evidence only from live rounds). A
// budget governor below may deny
// the appended probe alone; the middleware swallows that denial when
// every caller request was answered, so probing degrades before the
// audit does. Feed starvation (no recorded answers) degrades scoring,
// never determinism.
//
// # Performance
//
// The audit inner loop — park a query, commit a round, draw workers,
// perceive a glyph, aggregate — is allocation-free at steady state.
// The profiling workflow that keeps it that way:
//
//	cvgbench -exp audit-throughput                # HITs/sec + allocs/HIT
//	cvgbench -exp audit-throughput -cpuprofile p -memprofile p
//	go tool pprof p/audit-throughput.mem.pprof
//	go test -bench AuditThroughput -benchmem .    # the gate CI watches
//
// What is pooled, and where: the lockstep scheduler (lockstep.go)
// ping-pongs the parked-round slice through a spare backing array,
// reuses the set/point split, the SetRequest round and the point-id
// round across commits, and recycles one lockstepQuery slot per task
// (safe because a parked task blocks until its round delivers, so at
// most one query per task is ever in flight). The caching oracle
// (cache.go) builds keys into reused byte scratch and looks them up
// via Go's allocation-free map[string(bytes)] form, materializing a
// string only when a key is stored; batch rounds steal the scratch for
// the duration of the call so keys survive the unlock. The crowd
// platform reuses its worker-draw permutation, answer, glyph and label
// buffers under the platform lock, and renders glyphs lazily on first
// reference.
//
// The invariant all of it preserves: RNG consumption per committed HIT
// is byte-for-byte what the allocating code drew — the scratch worker
// draw replays rand.Perm's exact loop, perception reuses buffers but
// never reorders NormFloat64 calls, and slip corruption keeps its
// conditional second Intn. Any optimization that changes a draw
// sequence changes every golden artifact downstream; the golden suite
// and the lockstep conformance matrix pin this. The complementary
// ownership rule: scratch slices handed to aggregators or the response
// log are read-only for the duration of the call, and anything a
// caller may retain (aggregated labels, batch answer slices) is
// freshly allocated.
//
// # Static enforcement of the determinism contract
//
// Everything above — canonical commit order, seeded child RNGs,
// frozen per-HIT draw transcripts, kill/resume byte-identity — is a
// contract ordinary Go code can silently violate with one innocuous
// line. The cvglint tool (cmd/cvglint, analyzers in internal/lint)
// checks the four violations that have actually threatened it,
// mechanically, on every build:
//
//   - maprange: a range over a map in a canonical-commit package
//     (internal/core, internal/server, internal/journal,
//     internal/crowd) iterates in a different order every run. Collect
//     the keys and sort them before acting, or — when the loop body is
//     provably commutative — annotate it.
//   - wallclock: time.Now / time.Since / time.Until in a commit,
//     audit, or replay path makes round composition a function of the
//     wall clock, which breaks resume identity. Timing must derive
//     from committed state; the HTTP/SSE layer
//     (internal/server/http.go) and test files are exempt.
//   - globalrand: package-level math/rand draws consume the shared
//     global Source, and time-seeded sources produce a different draw
//     transcript every run. All randomness must flow from seeded child
//     RNGs split from the experiment seed.
//   - sentinelerr: == or != (or a switch case) against an exported
//     sentinel error (ErrBudgetExhausted, ErrJournalCorrupt,
//     ErrJournalMismatch, ErrTransient, ErrTenantBudget,
//     ErrInvalidConfig, …) breaks as soon as middleware wraps the
//     error; errors.Is is required.
//
// A justified finding is suppressed with a //lint:<rule> directive
// (rules: ordered, wallclock, rand, sentinel) on the flagged line or
// the line above, followed by a one-line justification — a bare
// directive with no justification is itself a diagnostic. Run it
// standalone as `cvglint ./...` or through the build cache as
// `go vet -vettool=$(pwd)/bin/cvglint ./...`; CI does both the vet
// form and the analyzers' own corpus tests on every change.
package core
