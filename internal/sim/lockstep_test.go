package sim

import (
	"testing"
)

// TestLockstepLatencyRetainsSpeedup is the acceptance gate for the
// lockstep scheduler's wall-clock: under per-HIT crowd latency the
// batched rounds must keep at least a 2x win over the sequential
// engine at parallelism 4 (measured ~2.5-3x; latency, not CPU, is the
// bottleneck, so the bound holds on single-core CI too), while issuing
// the identical task counts.
func TestLockstepLatencyRetainsSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-bound benchmark skipped in -short")
	}
	res, err := RunLockstepLatency(DefaultLatencyParams(), Options{Seed: 42, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Tasks != res.Rows[1].Tasks {
		t.Errorf("task counts diverged between engines: sequential %.1f, lockstep %.1f",
			res.Rows[0].Tasks, res.Rows[1].Tasks)
	}
	if s := res.Speedup(); s < 2.0 {
		t.Errorf("lockstep speedup %.2fx at parallelism %d, want >= 2x\n%s",
			s, res.Params.Parallelism, res)
	}
}

// TestSweepLockstepInvariant: the sweep's engine-parallelism axis must
// render the identical grid with the lockstep scheduler switched on —
// the Config pass-through from Options to the trial bodies.
func TestSweepLockstepInvariant(t *testing.T) {
	p := SweepParams{
		Ns:             []int{2_000},
		Taus:           []int{25},
		Parallelisms:   []int{1, 4},
		SetSize:        50,
		MinorityCounts: []int{10, 8, 6},
	}
	free, err := RunSweep(p, Options{Seed: 23, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	lock, err := RunSweep(p, Options{Seed: 23, Trials: 2, Parallelism: 4, Lockstep: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range free.Rows {
		if free.Rows[i].Tasks != lock.Rows[i].Tasks {
			t.Errorf("row %d: tasks %.1f free-running vs %.1f lockstep",
				i, free.Rows[i].Tasks, lock.Rows[i].Tasks)
		}
	}
	if len(free.Workloads) != len(lock.Workloads) {
		t.Fatalf("workload count diverged")
	}
	for i := range free.Workloads {
		if free.Workloads[i] != lock.Workloads[i] {
			t.Errorf("workload %d cache summary diverged: %+v vs %+v",
				i, free.Workloads[i], lock.Workloads[i])
		}
	}
}
