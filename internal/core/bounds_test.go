package core

import (
	"math"
	"testing"
)

func TestLowerBoundTasks(t *testing.T) {
	cases := []struct{ n, setSize, want int }{
		{1522, 50, 31},
		{100, 50, 2},
		{101, 50, 3},
		{50, 50, 1},
		{0, 50, 0},
		{50, 0, 0},
	}
	for _, tc := range cases {
		if got := LowerBoundTasks(tc.n, tc.setSize); got != tc.want {
			t.Errorf("LowerBoundTasks(%d,%d) = %d, want %d", tc.n, tc.setSize, got, tc.want)
		}
	}
}

func TestUpperBoundHITsMatchesPaperTable1(t *testing.T) {
	// Table 1 reports 115 for N=1522, n=50, tau=50 with the log10 form.
	got := UpperBoundHITs(1522, 50, 50)
	if math.Round(got) != 115 {
		t.Errorf("UpperBoundHITs(1522,50,50) = %.2f, want ~115 (paper Table 1)", got)
	}
	if UpperBoundHITs(0, 50, 50) != 0 || UpperBoundHITs(50, 0, 50) != 0 {
		t.Error("degenerate inputs must be 0")
	}
}

func TestUpperBoundTasksLog2(t *testing.T) {
	// roots + 2*tau*(ceil(log2 n)+1)
	if got := UpperBoundTasksLog2(100, 50, 10); got != 2+2*10*(6+1) {
		t.Errorf("UpperBoundTasksLog2(100,50,10) = %d", got)
	}
	if got := UpperBoundTasksLog2(16, 16, 3); got != 1+2*3*(4+1) {
		t.Errorf("UpperBoundTasksLog2(16,16,3) = %d", got)
	}
	if UpperBoundTasksLog2(0, 5, 5) != 0 {
		t.Error("degenerate inputs must be 0")
	}
	// n=1: depth 0.
	if got := UpperBoundTasksLog2(10, 1, 2); got != 10+2*2*1 {
		t.Errorf("UpperBoundTasksLog2(10,1,2) = %d", got)
	}
}
