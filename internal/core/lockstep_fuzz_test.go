package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// roundRecorder is a native BatchOracle that logs, per committed
// round, the object ids of the requests in commit order. Queries
// encode their (task, seq) identity as id = task*1000 + seq, so the
// fuzz harness can check canonical ordering without tracking any
// other state.
type roundRecorder struct {
	mu     sync.Mutex
	rounds [][]int
}

func (r *roundRecorder) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return false, nil
}

func (r *roundRecorder) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return false, nil
}

func (r *roundRecorder) PointQuery(id dataset.ObjectID) ([]int, error) { return nil, nil }

func (r *roundRecorder) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	round := make([]int, len(reqs))
	for i, req := range reqs {
		round[i] = int(req.IDs[0])
	}
	r.rounds = append(r.rounds, round)
	return make([]bool, len(reqs)), nil
}

func (r *roundRecorder) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	round := make([]int, len(ids))
	for i, id := range ids {
		round[i] = int(id)
	}
	r.rounds = append(r.rounds, round)
	return make([][]int, len(ids)), nil
}

// FuzzLockstepOrder drives the lockstep scheduler with fuzz-chosen
// task counts, per-task query counts, and scheduling jitter, and
// asserts the invariant the whole determinism story rests on: no
// matter in which order queries ARRIVE at the scheduler, every round
// COMMITS exactly the canonical sequence — round r contains the r-th
// query of every task that still has one, in task-index order.
func FuzzLockstepOrder(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(3), uint8(4))
	f.Add([]byte{0, 0, 0}, uint8(7), uint8(1))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(5), uint8(16))
	f.Add([]byte{}, uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, jitter []byte, tasksRaw, parRaw uint8) {
		nTasks := int(tasksRaw%6) + 2     // 2..7 concurrent audit tasks
		parallelism := int(parRaw%16) + 1 // pool width must never matter
		byteAt := func(i int) byte {
			if len(jitter) == 0 {
				return 0
			}
			return jitter[i%len(jitter)]
		}
		// Task i issues 1..4 queries, picked by the fuzzer.
		queries := make([]int, nTasks)
		for i := range queries {
			queries[i] = int(byteAt(i)%4) + 1
		}

		rec := &roundRecorder{}
		err := runLockstep(context.Background(), rec, parallelism, nTasks, func(i int, audit Oracle) error {
			for q := 0; q < queries[i]; q++ {
				// Fuzz-controlled scheduling noise: some tasks sleep
				// before submitting, randomizing arrival order.
				if d := byteAt(i*31 + q*7); d%3 == 0 {
					time.Sleep(time.Duration(d%8) * 10 * time.Microsecond)
				}
				id := []dataset.ObjectID{dataset.ObjectID(i*1000 + q)}
				if _, err := audit.SetQuery(id, pattern.Group{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		// Reconstruct the canonical schedule and compare.
		var want [][]int
		for r := 0; ; r++ {
			var round []int
			for i := 0; i < nTasks; i++ {
				if queries[i] > r {
					round = append(round, i*1000+r)
				}
			}
			if len(round) == 0 {
				break
			}
			want = append(want, round)
		}
		if len(rec.rounds) != len(want) {
			t.Fatalf("committed %d rounds, want %d (queries=%v, rounds=%v)",
				len(rec.rounds), len(want), queries, rec.rounds)
		}
		for r := range want {
			if len(rec.rounds[r]) != len(want[r]) {
				t.Fatalf("round %d: committed %v, want %v", r, rec.rounds[r], want[r])
			}
			for j := range want[r] {
				if rec.rounds[r][j] != want[r][j] {
					t.Fatalf("round %d position %d: committed %v, want canonical %v",
						r, j, rec.rounds[r], want[r])
				}
			}
		}
	})
}
