package sim

import (
	"fmt"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/stats"
)

// BaselineRow compares Group-Coverage against the statistical sampling
// estimator at one group size.
type BaselineRow struct {
	Females        int
	GroupTasks     float64
	SampledTasks   float64
	SampledDecided float64 // fraction of trials the estimator decided
	SampledCorrect float64 // fraction of decided trials that were right
}

// BaselineResult is the exact-vs-statistical comparison.
type BaselineResult struct {
	N, Tau int
	Rows   []BaselineRow
}

// String renders the comparison.
func (r *BaselineResult) String() string {
	t := stats.NewTable("females f", "Group-Coverage tasks", "sampling tasks", "sampling decided", "sampling correct")
	for _, row := range r.Rows {
		t.AddRow(row.Females, fmt.Sprintf("%.1f", row.GroupTasks), fmt.Sprintf("%.1f", row.SampledTasks),
			fmt.Sprintf("%.2f", row.SampledDecided), fmt.Sprintf("%.2f", row.SampledCorrect))
	}
	return fmt.Sprintf("Extension: exact group testing vs Hoeffding sampling (N=%d tau=%d, delta=0.05, budget=N/4)\n%s",
		r.N, r.Tau, t.String())
}

// baselineObs is one trial's exact-vs-sampled comparison.
type baselineObs struct {
	gcTasks, smTasks float64
	decided, correct bool
}

// RunSamplingBaseline compares Group-Coverage with the statistical
// estimator (SampledCoverage) across group sizes. Far from the
// threshold, sampling is cheap but only probabilistic; at f ~ tau it
// burns its whole budget and still cannot decide — the regime that
// motivates the paper's exact algorithms.
func RunSamplingBaseline(o Options) (*BaselineResult, error) {
	const n, tau = 20_000, 50
	fs := []int{0, tau / 2, tau, 2 * tau, 10 * tau, 100 * tau}
	cfgs := make([]experiment.Config, len(fs))
	for fi, f := range fs {
		cfgs[fi] = o.cell(fmt.Sprintf("sampling-baseline/f=%d", f), int64(100*fi))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (baselineObs, error) {
		f, rng := fs[cell], t.Rng
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			return baselineObs{}, err
		}
		g := dataset.Female(d.Schema())
		gc, err := core.GroupCoverage(core.NewTruthOracle(d), d.IDs(), 50, tau, g)
		if err != nil {
			return baselineObs{}, err
		}
		sm, err := core.SampledCoverage(core.NewTruthOracle(d), d.IDs(), tau, 0.05, n/4, g, rng)
		if err != nil {
			return baselineObs{}, err
		}
		return baselineObs{
			gcTasks: float64(gc.Tasks),
			smTasks: float64(sm.Tasks),
			decided: sm.Decided,
			correct: sm.Decided && sm.Covered == (f >= tau),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &BaselineResult{N: n, Tau: tau}
	for fi, f := range fs {
		r := results[fi]
		decided, correct := 0, 0
		for _, v := range r.Values() {
			if v.decided {
				decided++
				if v.correct {
					correct++
				}
			}
		}
		row := BaselineRow{
			Females:        f,
			GroupTasks:     r.Mean(func(v baselineObs) float64 { return v.gcTasks }),
			SampledTasks:   r.Mean(func(v baselineObs) float64 { return v.smTasks }),
			SampledDecided: float64(decided) / float64(len(r.Trials)),
		}
		if decided > 0 {
			row.SampledCorrect = float64(correct) / float64(decided)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AggregationRow is one (spammer fraction, aggregator) cell.
type AggregationRow struct {
	SpammerFraction float64
	Aggregator      string
	CorrectVerdicts float64
	HITs            float64
}

// AggregationResult compares truth-inference strategies under
// increasingly hostile worker pools.
type AggregationResult struct {
	Rows []AggregationRow
}

// String renders the comparison.
func (r *AggregationResult) String() string {
	t := stats.NewTable("spammer fraction", "aggregator", "correct verdicts", "#HITs")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*row.SpammerFraction), row.Aggregator,
			fmt.Sprintf("%.2f", row.CorrectVerdicts), fmt.Sprintf("%.1f", row.HITs))
	}
	return "Extension: truth inference under spammer-heavy pools (FERET slice, tau=n=50, 5 assignments)\n" + t.String()
}

// RunAggregationComparison audits the FERET slice through worker pools
// with growing spammer fractions, comparing plain majority vote with
// reliability-weighted voting. It quantifies how much the paper's
// redundancy-based quality control can absorb and what the smarter
// aggregator buys back.
func RunAggregationComparison(o Options) (*AggregationResult, error) {
	preset := dataset.FERETTable1
	spams := []float64{0, 0.2, 0.4}
	type agg struct {
		name string
		make func() crowd.Aggregator
	}
	aggs := []agg{
		{"majority vote", func() crowd.Aggregator { return crowd.MajorityVote{} }},
		{"weighted vote", func() crowd.Aggregator { return crowd.NewWeightedVote(0.8) }},
	}
	type cell struct{ si, ai int }
	var cells []cell
	var cfgs []experiment.Config
	for si := range spams {
		for ai := range aggs {
			cells = append(cells, cell{si, ai})
			cfgs = append(cfgs, o.cell(
				fmt.Sprintf("aggregation/spam=%.0f%%/%s", 100*spams[si], aggs[ai].name),
				int64(10_000*si+100*ai)))
		}
	}
	results, err := experiment.RunMany(cfgs, func(ci int, t experiment.Trial) (noiseObs, error) {
		spam, a := spams[cells[ci].si], aggs[cells[ci].ai]
		d := preset.Generate(t.Rng)
		g := dataset.Female(d.Schema())
		cfg := crowd.DefaultConfig(t.Seed + 5)
		cfg.Assignments = 5
		cfg.Aggregator = a.make()
		cfg.Profile = crowd.PoolProfile{
			Size: 40, SlipMin: 0.005, SlipMax: 0.02,
			PerceptNoise: 15, SpammerFraction: spam,
		}
		platform, err := crowd.NewPlatform(d, cfg)
		if err != nil {
			return noiseObs{}, err
		}
		r, err := core.GroupCoverage(platform, d.IDs(), 50, 50, g)
		if err != nil {
			return noiseObs{}, err
		}
		obs := noiseObs{hits: float64(platform.Ledger().TotalHITs())}
		if r.Covered {
			obs.correct = 1
		}
		return obs, nil
	})
	if err != nil {
		return nil, err
	}

	res := &AggregationResult{}
	for ci, c := range cells {
		r := results[ci]
		res.Rows = append(res.Rows, AggregationRow{
			SpammerFraction: spams[c.si],
			Aggregator:      aggs[c.ai].name,
			CorrectVerdicts: r.Mean(func(v noiseObs) float64 { return v.correct }),
			HITs:            r.Mean(func(v noiseObs) float64 { return v.hits }),
		})
	}
	return res, nil
}
