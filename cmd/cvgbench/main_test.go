package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"table1", "table2", "figure7a", "noise-sweep"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "effective 1") {
		t.Errorf("output missing Table 3 settings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Figure 7e") {
		t.Errorf("output missing artifact name")
	}
}

func TestJSONOutput(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		ID       string  `json:"id"`
		NsPerOp  int64   `json:"ns_per_op"`
		HITTasks float64 `json:"hit_tasks"`
	}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(records) != 1 || records[0].ID != "figure7e" {
		t.Fatalf("records = %+v", records)
	}
	if records[0].NsPerOp <= 0 {
		t.Error("ns_per_op must be positive")
	}
	if records[0].HITTasks <= 0 {
		t.Error("figure7e should report its HIT total")
	}
}

func TestJSONOutputBadPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-trials", "1", "-json", "/no/such/dir/b.json"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
