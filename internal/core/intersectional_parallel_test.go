package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// runIntersectional audits the dataset at the given parallelism with a
// fresh identically-seeded oracle and RNG.
func runIntersectional(t *testing.T, d *dataset.Dataset, n, tau, parallelism int, seed int64) (*IntersectionalResult, TaskCounts) {
	t.Helper()
	o := NewTruthOracle(d)
	res, err := IntersectionalCoverage(o, d.IDs(), n, tau, d.Schema(),
		MultipleOptions{Rng: rand.New(rand.NewSource(seed)), Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return res, o.Tasks()
}

// resolvedCount tallies verdicts the resolution phase had to re-audit.
func resolvedCount(res *IntersectionalResult) int {
	n := 0
	for _, v := range res.Verdicts {
		if v.Resolved {
			n++
		}
	}
	return n
}

// TestParallelResolutionEquivalenceRandomized: across random
// compositions and thresholds, the parallel resolution phase must
// reproduce the sequential engine exactly — verdicts, MUPs, resolution
// task counts, and the oracle's task tally — and the sweep must
// actually exercise the resolution phase (straddling patterns).
func TestParallelResolutionEquivalenceRandomized(t *testing.T) {
	schemas := []*pattern.Schema{genderRaceSchema(), threeBinarySchema()}
	rng := rand.New(rand.NewSource(71))
	resolvedTotal := 0
	for trial := 0; trial < 30; trial++ {
		s := schemas[trial%len(schemas)]
		counts := make([]int, s.NumSubgroups())
		for i := range counts {
			switch rng.Intn(3) {
			case 0:
				counts[i] = rng.Intn(12) // rare: feeds uncovered super-groups
			case 1:
				counts[i] = 35 + rng.Intn(30) // near tau: straddling territory
			default:
				counts[i] = 120 + rng.Intn(200) // common
			}
		}
		tau := 25 + rng.Intn(50)
		seed := rng.Int63()
		d := dataset.MustFromCounts(s, counts, rng)

		base, baseTasks := runIntersectional(t, d, 50, tau, 1, seed)
		resolvedTotal += resolvedCount(base)
		checkAgainstGroundTruth(t, d, base, tau)
		for _, par := range []int{4, 16} {
			res, tasks := runIntersectional(t, d, 50, tau, par, seed)
			if !reflect.DeepEqual(res.Verdicts, base.Verdicts) {
				t.Errorf("trial %d parallelism %d: verdicts diverged", trial, par)
			}
			if !reflect.DeepEqual(res.MUPs, base.MUPs) {
				t.Errorf("trial %d parallelism %d: MUPs %v, want %v", trial, par, res.MUPs, base.MUPs)
			}
			if res.Tasks != base.Tasks || res.ResolutionTasks != base.ResolutionTasks {
				t.Errorf("trial %d parallelism %d: tasks %d/%d, want %d/%d",
					trial, par, res.Tasks, res.ResolutionTasks, base.Tasks, base.ResolutionTasks)
			}
			if tasks != baseTasks {
				t.Errorf("trial %d parallelism %d: oracle counts %v, want %v", trial, par, tasks, baseTasks)
			}
		}
	}
	if resolvedTotal == 0 {
		t.Fatal("randomized sweep never exercised the resolution phase; compositions too easy")
	}
}

// TestParallelResolutionDeterminism: one seed must produce
// byte-identical intersectional results at every parallelism level, on
// a composition guaranteed to straddle: the rare female leaves form an
// uncovered super-group (joint count 9), and male-white sits at 45, so
// the X-white interval [45, 54] brackets tau = 50 and forces a
// resolution re-audit.
func TestParallelResolutionDeterminism(t *testing.T) {
	s := genderRaceSchema()
	counts := make([]int, s.NumSubgroups())
	set := func(g, r, c int) {
		counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, g, r))] = c
	}
	set(0, 0, 45)  // male-white: uncovered alone, exact 45
	set(1, 0, 3)   // female-white: rare
	set(0, 1, 300) // male-black
	set(1, 1, 2)   // female-black: rare
	set(0, 2, 200) // male-hispanic
	set(1, 2, 2)   // female-hispanic: rare
	set(0, 3, 150) // male-asian
	set(1, 3, 2)   // female-asian: rare
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(72)))

	repr := func(r *IntersectionalResult) string {
		return fmt.Sprintf("%+v|%+v|%d|%d", r.Verdicts, r.MUPs, r.ResolutionTasks, r.Tasks)
	}
	base, baseTasks := runIntersectional(t, d, 50, 50, 1, 73)
	if resolvedCount(base) == 0 {
		t.Fatal("composition did not trigger the resolution phase")
	}
	baseRepr := repr(base)
	for _, par := range []int{4, 16} {
		res, tasks := runIntersectional(t, d, 50, 50, par, 73)
		if got := repr(res); got != baseRepr {
			t.Errorf("parallelism %d diverged:\n%s\nvs\n%s", par, got, baseRepr)
		}
		if tasks != baseTasks {
			t.Errorf("parallelism %d: oracle counts %v, want %v", par, tasks, baseTasks)
		}
	}
}

// TestParallelResolutionPropagatesErrors: a failing re-audit must
// surface instead of leaving Unknown verdicts, at any parallelism.
func TestParallelResolutionPropagatesErrors(t *testing.T) {
	s := genderRaceSchema()
	counts := make([]int, s.NumSubgroups())
	for i := range counts {
		counts[i] = 15
	}
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(74)))
	for _, par := range []int{1, 8} {
		flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 6}
		_, err := IntersectionalCoverage(flaky, d.IDs(), 10, 20, s,
			MultipleOptions{Rng: rand.New(rand.NewSource(9)), Parallelism: par})
		if !errors.Is(err, ErrTransient) {
			t.Errorf("parallelism %d: err = %v, want transient failure propagated", par, err)
		}
	}
}

// TestResolutionHonorsRetryPolicy: a retry budget must absorb
// transient failures in the resolution phase too — not just in the
// leaf audits — sequentially and in parallel, with verdicts matching
// ground truth.
func TestResolutionHonorsRetryPolicy(t *testing.T) {
	s := genderRaceSchema()
	counts := make([]int, s.NumSubgroups())
	for i := range counts {
		counts[i] = 15
	}
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(75)))
	for _, par := range []int{1, 8} {
		flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 6}
		res, err := IntersectionalCoverage(flaky, d.IDs(), 10, 20, s, MultipleOptions{
			Rng:         rand.New(rand.NewSource(10)),
			Parallelism: par,
			Retry:       RetryPolicy{MaxAttempts: 3},
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v (retries should absorb transient failures end to end)", par, err)
		}
		checkAgainstGroundTruth(t, d, res, 20)
	}
}
