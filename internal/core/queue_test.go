package core

import "testing"

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	if !q.empty() || q.len() != 0 || q.pop() != nil {
		t.Fatal("fresh queue must be empty")
	}
	a := &node{b: 0, e: 1}
	b := &node{b: 1, e: 2}
	c := &node{b: 2, e: 3}
	q.push(a)
	q.push(b)
	q.push(c)
	if q.len() != 3 {
		t.Fatalf("len = %d", q.len())
	}
	if q.pop() != a || q.pop() != b || q.pop() != c {
		t.Fatal("FIFO order broken")
	}
	if !q.empty() {
		t.Fatal("queue should drain")
	}
}

func TestQueueRemoveMiddle(t *testing.T) {
	q := newQueue()
	nodes := make([]*node, 5)
	for i := range nodes {
		nodes[i] = &node{b: i, e: i + 1}
		q.push(nodes[i])
	}
	q.remove(nodes[2])
	if q.len() != 4 {
		t.Fatalf("len = %d", q.len())
	}
	want := []*node{nodes[0], nodes[1], nodes[3], nodes[4]}
	for _, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop = [%d,%d), want [%d,%d)", got.b, got.e, w.b, w.e)
		}
	}
}

func TestQueueReuseAfterRemove(t *testing.T) {
	q := newQueue()
	a := &node{}
	q.push(a)
	q.remove(a)
	q.push(a) // removed nodes can be requeued
	if q.pop() != a {
		t.Fatal("requeued node lost")
	}
}

func TestQueueMisusePanics(t *testing.T) {
	q := newQueue()
	a := &node{}
	q.push(a)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double push must panic")
			}
		}()
		q.push(a)
	}()
	q.remove(a)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("removing unqueued node must panic")
			}
		}()
		q.remove(a)
	}()
}

func TestNodeSize(t *testing.T) {
	n := &node{b: 3, e: 10}
	if n.size() != 7 {
		t.Errorf("size = %d, want 7", n.size())
	}
}
