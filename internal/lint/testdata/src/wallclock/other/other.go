// Package other is outside the canonical-commit scope.
package other

import "time"

func freeClock() time.Time {
	return time.Now()
}
