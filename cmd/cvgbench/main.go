// Command cvgbench regenerates the paper's evaluation artifacts: every
// table and figure of section 6 plus the extension experiments,
// printed as aligned text tables.
//
// Usage:
//
//	cvgbench -list
//	cvgbench -exp table1 -seed 42 -trials 5
//	cvgbench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"imagecvg/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("cvgbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		exp    = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		seed   = fs.Int64("seed", 42, "base random seed")
		trials = fs.Int("trials", 3, "repetitions averaged per configuration")
		list   = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(out, "available experiments:")
		for _, e := range sim.Experiments() {
			fmt.Fprintf(out, "  %-18s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		return 0
	}

	runOne := func(e sim.Experiment) error {
		start := time.Now()
		res, err := e.Run(*seed, *trials)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "=== %s (%s) — %s [%.1fs]\n%s\n",
			e.ID, e.Paper, e.Description, time.Since(start).Seconds(), res)
		return nil
	}

	if *exp == "all" {
		for _, e := range sim.Experiments() {
			if err := runOne(e); err != nil {
				fmt.Fprintln(errOut, "cvgbench:", err)
				return 1
			}
		}
		return 0
	}
	e, ok := sim.Lookup(*exp)
	if !ok {
		fmt.Fprintf(errOut, "cvgbench: unknown experiment %q (use -list)\n", *exp)
		return 2
	}
	if err := runOne(e); err != nil {
		fmt.Fprintln(errOut, "cvgbench:", err)
		return 1
	}
	return 0
}
