package core

import (
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
)

// Ablation tests: each disabled design choice must preserve
// correctness while costing strictly more tasks in the regimes the
// paper motivates it with.

func TestAblationSiblingInferenceCorrectAndCostlier(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sumFull, sumAblated := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 200 + rng.Intn(3000)
		f := rng.Intn(80)
		tau := 1 + rng.Intn(60)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())

		full, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 50, tau, g)
		if err != nil {
			t.Fatal(err)
		}
		ablated, err := GroupCoverageOpt(NewTruthOracle(d), d.IDs(), 50, tau, g,
			GroupCoverageOptions{DisableSiblingInference: true})
		if err != nil {
			t.Fatal(err)
		}
		if full.Covered != ablated.Covered {
			t.Fatalf("trial %d: verdicts disagree (%v vs %v)", trial, full.Covered, ablated.Covered)
		}
		if !full.Covered && (full.Count != f || ablated.Count != f) {
			t.Fatalf("trial %d: counts %d/%d, want %d", trial, full.Count, ablated.Count, f)
		}
		sumFull += full.Tasks
		sumAblated += ablated.Tasks
	}
	if sumAblated <= sumFull {
		t.Errorf("sibling inference saved nothing: full %d vs ablated %d tasks", sumFull, sumAblated)
	}
}

func TestAblationCountSingletonsCorrectAndCostlier(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	sumFull, sumAblated := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 500 + rng.Intn(3000)
		// Covered regime: counting via checked bounds is what lets the
		// audit stop early, so make the group comfortably covered.
		tau := 1 + rng.Intn(40)
		f := tau + rng.Intn(200)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())

		full, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 50, tau, g)
		if err != nil {
			t.Fatal(err)
		}
		ablated, err := GroupCoverageOpt(NewTruthOracle(d), d.IDs(), 50, tau, g,
			GroupCoverageOptions{CountSingletonsOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if !full.Covered || !ablated.Covered {
			t.Fatalf("trial %d: both must report covered (f=%d tau=%d)", trial, f, tau)
		}
		sumFull += full.Tasks
		sumAblated += ablated.Tasks
	}
	if sumAblated <= sumFull {
		t.Errorf("lower-bound counting saved nothing: full %d vs ablated %d tasks", sumFull, sumAblated)
	}
}

func TestAblationCountSingletonsExactWhenUncovered(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d, err := dataset.BinaryWithMinority(1000, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	res, err := GroupCoverageOpt(NewTruthOracle(d), d.IDs(), 50, 50, g,
		GroupCoverageOptions{CountSingletonsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.Count != 12 || !res.Exact {
		t.Errorf("ablated uncovered audit = %+v, want exact 12", res)
	}
}

func TestAblationBothDisabled(t *testing.T) {
	// Both ablations together still decide correctly.
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(1000)
		f := rng.Intn(60)
		tau := 1 + rng.Intn(40)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())
		res, err := GroupCoverageOpt(NewTruthOracle(d), d.IDs(), 32, tau, g,
			GroupCoverageOptions{DisableSiblingInference: true, CountSingletonsOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Covered != (f >= tau) {
			t.Fatalf("trial %d: covered=%v, want %v (f=%d tau=%d)", trial, res.Covered, f >= tau, f, tau)
		}
	}
}

func TestMultipleCoverageNoSampling(t *testing.T) {
	// NoSampling skips the labeling phase: zero sample tasks, and with
	// an empty L everything below tau merges into one super-group.
	s := raceSchema()
	rng := rand.New(rand.NewSource(105))
	d := dataset.MustFromCounts(s, []int{900, 40, 30, 30}, rng)
	groups := pattern4Groups(s)
	o := NewTruthOracle(d)
	res, err := MultipleCoverage(o, d.IDs(), 50, 50, groups,
		MultipleOptions{Rng: rng, NoSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleTasks != 0 {
		t.Errorf("sample tasks = %d, want 0", res.SampleTasks)
	}
	if len(res.SuperAudits) != 1 {
		t.Errorf("super audits = %d, want 1 (maximal merge)", len(res.SuperAudits))
	}
	// Verdicts must still be correct.
	want := []bool{true, false, false, false}
	for i, r := range res.Results {
		if r.Covered != want[i] {
			t.Errorf("group %d: covered=%v, want %v", i, r.Covered, want[i])
		}
	}
}
