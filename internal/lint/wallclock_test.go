package lint_test

import (
	"testing"

	"imagecvg/internal/lint"
	"imagecvg/internal/lint/analysistest"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WallClock,
		"wallclock/internal/core",   // in scope, incl. a non-server http.go
		"wallclock/internal/server", // allowlisted http.go vs flagged engine.go
		"wallclock/other",           // out of scope: silent
	)
}
