package crowd

import (
	"fmt"

	"imagecvg/internal/pattern"
)

// WorkerStrategy replaces the final answer of an adversarial worker.
// The platform ALWAYS runs the honest perceive-and-slip path first —
// consuming exactly the RNG draws an honest worker would — and only
// then lets the strategy override the outcome. That ordering is the
// frozen-RNG invariant that keeps every golden artifact byte-identical
// when no adversaries are configured, and keeps honest workers'
// transcripts untouched when some of the pool is adversarial: a
// strategy may draw from the worker's OWN rng (shifting only that
// worker's later perception stream) but never from the platform RNG
// that sequences worker draws.
//
// Strategies apply everywhere a worker answers: yes/no set HITs, point
// label HITs, and the pre-task qualification test — so a lazy or
// spamming worker can realistically fail screening before accepting a
// single HIT.
type WorkerStrategy interface {
	// Name identifies the strategy (the CLI / config spelling).
	Name() string
	// AnswerBool returns the worker's submitted yes/no answer given the
	// answer the honest path produced.
	AnswerBool(w *Worker, honest bool) bool
	// AnswerLabels rewrites the honest label vector in place into the
	// worker's submitted point-HIT answer.
	AnswerLabels(w *Worker, s *pattern.Schema, labels []int)
}

// LazyYes is the minimal-effort worker: every yes/no HIT is answered
// "yes" without looking, and every labeling HIT gets the first value of
// every attribute. Constant answers make lazy workers highly visible to
// gold probes with a "no" answer and to consensus contradiction checks.
type LazyYes struct{}

// Name implements WorkerStrategy.
func (LazyYes) Name() string { return "lazy-yes" }

// AnswerBool implements WorkerStrategy.
func (LazyYes) AnswerBool(*Worker, bool) bool { return true }

// AnswerLabels implements WorkerStrategy.
func (LazyYes) AnswerLabels(_ *Worker, _ *pattern.Schema, labels []int) {
	for i := range labels {
		labels[i] = 0
	}
}

// RandomSpam answers uniformly at random from the worker's own rng —
// the classic spammer whose accuracy is indistinguishable from a coin
// flip. The extra draws advance only the spammer's personal stream;
// the platform RNG and every other worker's stream are untouched.
type RandomSpam struct{}

// Name implements WorkerStrategy.
func (RandomSpam) Name() string { return "random-spam" }

// AnswerBool implements WorkerStrategy.
func (RandomSpam) AnswerBool(w *Worker, _ bool) bool { return w.rng.Intn(2) == 1 }

// AnswerLabels implements WorkerStrategy.
func (RandomSpam) AnswerLabels(w *Worker, s *pattern.Schema, labels []int) {
	for i := range labels {
		labels[i] = w.rng.Intn(s.Attr(i).Cardinality())
	}
}

// ColludingLiar inverts the honest answer: yes/no HITs are negated and
// each point label is rotated to the next value of its attribute.
// Because the lie is a pure function of the honest perception —
// no shared state, no extra RNG — colluders who perceive the same
// glyph the same way submit the same lie, defeating redundancy-based
// aggregation the way a coordinated crowd would.
type ColludingLiar struct{}

// Name implements WorkerStrategy.
func (ColludingLiar) Name() string { return "colluding-liar" }

// AnswerBool implements WorkerStrategy.
func (ColludingLiar) AnswerBool(_ *Worker, honest bool) bool { return !honest }

// AnswerLabels implements WorkerStrategy.
func (ColludingLiar) AnswerLabels(_ *Worker, s *pattern.Schema, labels []int) {
	for i := range labels {
		if c := s.Attr(i).Cardinality(); c >= 2 {
			labels[i] = (labels[i] + 1) % c
		}
	}
}

// StrategyByName resolves the CLI/config spelling of a strategy.
// "honest" (and "") resolve to nil — the honest answer path.
func StrategyByName(name string) (WorkerStrategy, error) {
	switch name {
	case "", "honest":
		return nil, nil
	case LazyYes{}.Name():
		return LazyYes{}, nil
	case RandomSpam{}.Name():
		return RandomSpam{}, nil
	case ColludingLiar{}.Name():
		return ColludingLiar{}, nil
	}
	return nil, fmt.Errorf("crowd: unknown worker strategy %q (want honest, %s, %s or %s)",
		name, LazyYes{}.Name(), RandomSpam{}.Name(), ColludingLiar{}.Name())
}

// AdversaryConfig seeds a fraction of the worker pool with an
// adversarial strategy. The zero value configures no adversaries and
// changes nothing — transcripts, goldens and eligibility are
// byte-identical to a build without the field.
type AdversaryConfig struct {
	// Rate in [0, 1] is the fraction of the pool assigned the Strategy.
	// Assignment is a deterministic stripe over worker IDs (worker i is
	// adversarial iff floor((i+1)*Rate) > floor(i*Rate)), consuming no
	// RNG, so configuring adversaries never shifts the honest pool's
	// random streams.
	Rate float64
	// Strategy is the adversarial answer policy; nil means every worker
	// answers honestly regardless of Rate... except that a non-zero
	// Rate without a Strategy is rejected as a misconfiguration.
	Strategy WorkerStrategy
}

// assignAdversaries stripes the strategy across the pool; see
// AdversaryConfig.Rate for the deterministic, draw-free rule.
func (a AdversaryConfig) assignAdversaries(pool []*Worker) {
	if a.Strategy == nil || a.Rate <= 0 {
		return
	}
	for i, w := range pool {
		if int(float64(i+1)*a.Rate) > int(float64(i)*a.Rate) {
			w.strategy = a.Strategy
		}
	}
}
