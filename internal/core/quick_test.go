package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"imagecvg/internal/dataset"
)

// The testing/quick properties below are the library's load-bearing
// invariants expressed as single predicates over a random seed.

func TestQuickGroupCoverageVerdict(t *testing.T) {
	f := func(seed int64, nRaw, fRaw, tauRaw, setRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%1500
		fem := int(fRaw) % (n + 1)
		tau := 1 + int(tauRaw)%70
		setSize := 1 + int(setRaw)%90
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		res, err := GroupCoverage(NewTruthOracle(d), d.IDs(), setSize, tau, g)
		if err != nil {
			return false
		}
		if res.Covered != (fem >= tau) {
			return false
		}
		if !res.Covered && (!res.Exact || res.Count != fem) {
			return false
		}
		return res.Tasks <= UpperBoundTasksLog2(n, setSize, tau)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBaseCoverageAgreesWithGroupCoverage(t *testing.T) {
	f := func(seed int64, nRaw, fRaw, tauRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%800
		fem := int(fRaw) % (n + 1)
		tau := 1 + int(tauRaw)%50
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		gc, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 32, tau, g)
		if err != nil {
			return false
		}
		base, err := BaseCoverage(NewTruthOracle(d), d.IDs(), tau, g)
		if err != nil {
			return false
		}
		return gc.Covered == base.Covered
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundsAgreesWithSequential(t *testing.T) {
	f := func(seed int64, nRaw, fRaw, tauRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%800
		fem := int(fRaw) % (n + 1)
		tau := 1 + int(tauRaw)%50
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		seq, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 32, tau, g)
		if err != nil {
			return false
		}
		par, err := GroupCoverageRounds(NewTruthOracle(d), d.IDs(), 32, tau, g, 4)
		if err != nil {
			return false
		}
		return seq.Covered == par.Covered
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickPartitionCleanCount(t *testing.T) {
	// Full partition drains always report the exact member count.
	f := func(seed int64, nRaw, fRaw, setRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%400
		fem := int(fRaw) % (n + 1)
		setSize := 1 + int(setRaw)%60
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		confirmed, drained, _, err := partitionClean(NewTruthOracle(d), d.IDs(), setSize, n+1, g)
		return err == nil && drained && confirmed == fem
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
