package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP([]int{4}, rng); err == nil {
		t.Error("single layer: want error")
	}
	if _, err := NewMLP([]int{4, 2}, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := NewMLP([]int{4, 0, 2}, rng); err == nil {
		t.Error("zero width: want error")
	}
	net, err := NewMLP([]int{4, 8, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.Classes() != 3 {
		t.Errorf("Classes = %d", net.Classes())
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{0, 0})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("softmax(0,0) = %v", p)
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 0})
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Errorf("softmax(1000,0) = %v", p)
	}
	sum := 0.0
	for _, v := range Softmax([]float64{1, 2, 3, -7}) {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %f", sum)
	}
}

func TestGradientCheck(t *testing.T) {
	// Finite-difference check of backward against Loss on a tiny
	// network. Catches sign errors, ReLU masking bugs, and index
	// transposition in one sweep.
	rng := rand.New(rand.NewSource(2))
	net, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -1.2, 0.8}
	y := 1
	grads := net.newGrads()
	net.backward(x, y, grads)

	const eps = 1e-5
	for li, l := range net.layers {
		for o := 0; o < l.Out; o++ {
			for j := 0; j < l.In; j++ {
				orig := l.W[o][j]
				l.W[o][j] = orig + eps
				up := net.Loss(x, y)
				l.W[o][j] = orig - eps
				down := net.Loss(x, y)
				l.W[o][j] = orig
				numeric := (up - down) / (2 * eps)
				analytic := grads[li].w[o][j]
				if math.Abs(numeric-analytic) > 1e-6*(1+math.Abs(numeric)) {
					t.Fatalf("layer %d W[%d][%d]: analytic %g vs numeric %g", li, o, j, analytic, numeric)
				}
			}
			orig := l.B[o]
			l.B[o] = orig + eps
			up := net.Loss(x, y)
			l.B[o] = orig - eps
			down := net.Loss(x, y)
			l.B[o] = orig
			numeric := (up - down) / (2 * eps)
			analytic := grads[li].b[o]
			if math.Abs(numeric-analytic) > 1e-6*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d B[%d]: analytic %g vs numeric %g", li, o, analytic, numeric)
			}
		}
	}
}

func TestTrainLearnsLinearlySeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []int
	for i := 0; i < 400; i++ {
		class := i % 2
		sign := 1.0
		if class == 0 {
			sign = -1
		}
		xs = append(xs, []float64{sign*1.5 + rng.NormFloat64()*0.5, rng.NormFloat64()})
		ys = append(ys, class)
	}
	net, err := NewMLP([]int{2, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before, err := net.Evaluate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	finalLoss, err := net.Train(xs, ys, TrainConfig{
		Epochs: 30, BatchSize: 16, LearnRate: 0.1, Momentum: 0.9, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := net.Evaluate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if after.Accuracy < 0.95 {
		t.Errorf("train accuracy %.3f, want >= 0.95", after.Accuracy)
	}
	if after.Loss >= before.Loss {
		t.Errorf("loss did not decrease: %.4f -> %.4f", before.Loss, after.Loss)
	}
	if finalLoss > before.Loss {
		t.Errorf("final epoch loss %.4f above initial %.4f", finalLoss, before.Loss)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, _ := NewMLP([]int{2, 2}, rng)
	xs := [][]float64{{1, 2}}
	ys := []int{0}
	if _, err := net.Train(nil, nil, TrainConfig{Epochs: 1, BatchSize: 1, LearnRate: 0.1, Rng: rng}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := net.Train(xs, []int{0, 1}, TrainConfig{Epochs: 1, BatchSize: 1, LearnRate: 0.1, Rng: rng}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := net.Train(xs, ys, TrainConfig{Epochs: 1, BatchSize: 1, LearnRate: 0.1}); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := net.Train(xs, ys, TrainConfig{Epochs: 0, BatchSize: 1, LearnRate: 0.1, Rng: rng}); err == nil {
		t.Error("0 epochs: want error")
	}
	if _, err := net.Train(xs, []int{7}, TrainConfig{Epochs: 1, BatchSize: 1, LearnRate: 0.1, Rng: rng}); err == nil {
		t.Error("label out of range: want error")
	}
	if _, err := net.Train([][]float64{{1}}, ys, TrainConfig{Epochs: 1, BatchSize: 1, LearnRate: 0.1, Rng: rng}); err == nil {
		t.Error("dim mismatch: want error")
	}
	if _, err := net.Evaluate(nil, nil); err == nil {
		t.Error("empty evaluate: want error")
	}
}

func TestPredictConsistentWithEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, _ := NewMLP([]int{2, 4, 2}, rng)
	xs := [][]float64{{1, 0}, {-1, 0}, {0.5, -0.5}}
	ys := make([]int, len(xs))
	for i, x := range xs {
		ys[i] = net.Predict(x)
	}
	m, err := net.Evaluate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 1.0 {
		t.Errorf("self-consistency accuracy = %f", m.Accuracy)
	}
}
