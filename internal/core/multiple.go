package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// LabelSamples is the sampling phase of section 4 (Algorithm 6): it
// draws up to k random objects, labels each with a point query, moves
// them into the labeled set L, and returns the remaining ids (order
// preserved). The paper uses k = c*tau with c = 2: enough point
// queries to confirm majority groups outright while estimating the
// frequencies of the minorities.
func LabelSamples(o Oracle, ids []dataset.ObjectID, k int, l *LabeledSet, rng *rand.Rand) (remaining []dataset.ObjectID, tasks int, err error) {
	if o == nil || l == nil {
		return nil, 0, errors.New("core: nil oracle or labeled set")
	}
	if rng == nil {
		return nil, 0, errors.New("core: LabelSamples needs a *rand.Rand")
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("core: sample size %d", k)
	}
	if k > len(ids) {
		k = len(ids)
	}
	chosen := make(map[int]bool, k)
	for _, idx := range rng.Perm(len(ids))[:k] {
		chosen[idx] = true
	}
	remaining = make([]dataset.ObjectID, 0, len(ids)-k)
	for i, id := range ids {
		if !chosen[i] {
			remaining = append(remaining, id)
			continue
		}
		labels, err := o.PointQuery(id)
		if err != nil {
			return nil, tasks, err
		}
		tasks++
		l.Add(id, labels)
	}
	return remaining, tasks, nil
}

// ExpectedCount extrapolates |g| from the labeled sample:
// E[|g|] = N * L.count(g) / |L| (section 4). Zero when L is empty.
func ExpectedCount(l *LabeledSet, n int, g pattern.Group) float64 {
	if l.Len() == 0 {
		return 0
	}
	return float64(n) * float64(l.Count(g)) / float64(l.Len())
}

// Aggregate is the aggregate function of Algorithm 6: it sorts the
// groups by their sampled counts ascending — putting minorities next
// to each other — and greedily merges consecutive groups into a
// super-group while the sum of their expected counts stays below tau.
// The result partitions the input; each element lists the indices (in
// the input slice) of one super-group's members.
//
// When multi is true (the intersectional case), a group may join a
// super-group only if it shares a pattern-graph parent with every
// member already in it, i.e. all members are fully-specified sibling
// patterns differing in exactly one attribute. This restriction is
// what lets Intersectional-Coverage treat an uncovered super-group's
// joint count as exact at the shared parent.
func Aggregate(l *LabeledSet, n, tau int, groups []pattern.Group, multi bool) [][]int {
	type entry struct {
		idx      int
		count    int
		expected float64
	}
	entries := make([]entry, len(groups))
	for i, g := range groups {
		entries[i] = entry{idx: i, count: l.Count(g), expected: ExpectedCount(l, n, g)}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count < entries[j].count
		}
		return entries[i].idx < entries[j].idx
	})

	var out [][]int
	var cur []int
	sum := 0.0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
			sum = 0
		}
	}
	for _, e := range entries {
		compatible := true
		if multi {
			for _, j := range cur {
				if !shareParent(groups[e.idx], groups[j]) {
					compatible = false
					break
				}
			}
		}
		if compatible && sum+e.expected < float64(tau) {
			cur = append(cur, e.idx)
			sum += e.expected
			continue
		}
		flush()
		cur = []int{e.idx}
		sum = e.expected
	}
	flush()
	return out
}

// shareParent reports whether two single-pattern, fully-specified
// groups are siblings in the pattern graph: they differ in exactly one
// attribute (and therefore share the parent that leaves it
// unspecified). Anything else never merges under the multi rule.
func shareParent(a, b pattern.Group) bool {
	if len(a.Members) != 1 || len(b.Members) != 1 {
		return false
	}
	p, q := a.Members[0], b.Members[0]
	if len(p) != len(q) || !p.FullySpecified() || !q.FullySpecified() {
		return false
	}
	diff := 0
	for i := range p {
		if p[i] != q[i] {
			diff++
		}
	}
	return diff == 1
}

// SuperAudit records the Group-Coverage run over one super-group.
type SuperAudit struct {
	// GroupIndices are the positions of the member groups in the
	// MultipleCoverage input.
	GroupIndices []int
	// Covered is the verdict for the union of the members.
	Covered bool
	// RemainingCount is the (exact, when uncovered) number of union
	// members found among the unlabeled objects.
	RemainingCount int
	// TotalCount adds the members found among the labeled samples.
	TotalCount int
	// Tasks issued by this super-group's audit, including any
	// per-member reruns after a covered verdict.
	Tasks int
}

// MultipleGroupResult is the per-group outcome of Multiple-Coverage.
type MultipleGroupResult struct {
	Group pattern.Group
	// Covered is the coverage verdict for the group.
	Covered bool
	// CountLo and CountHi bound |g| over the full audited universe.
	// Exact results have CountLo == CountHi.
	CountLo, CountHi int
	// Exact marks the count as exact.
	Exact bool
	// SuperIndex points into SuperAudits when the group's verdict
	// came from an uncovered super-group (so only the joint count is
	// exact); -1 when the group was audited individually.
	SuperIndex int
}

// MultipleResult is the outcome of Multiple-Coverage over all groups.
type MultipleResult struct {
	// Results aligns with the input group slice.
	Results []MultipleGroupResult
	// SuperAudits lists the super-group audits in execution order.
	SuperAudits []SuperAudit
	// Labeled is the point-query label cache L.
	Labeled *LabeledSet
	// RemainingIDs are the objects never moved into L.
	RemainingIDs []dataset.ObjectID
	// SampleTasks, AuditTasks and Tasks break down the cost.
	SampleTasks, AuditTasks, Tasks int
}

// MultipleOptions tunes Multiple-Coverage.
type MultipleOptions struct {
	// SampleFactor is the constant c of the sampling phase; the label
	// budget is c*tau point queries. Zero means the paper's default 2.
	SampleFactor int
	// NoSampling skips the sampling phase entirely (ablation): with an
	// empty labeled set, every group's expected count is zero and the
	// aggregation merges maximally.
	NoSampling bool
	// Multi applies the same-parent aggregation rule (intersectional).
	Multi bool
	// Rng drives sampling; required.
	Rng *rand.Rand
}

// MultipleCoverage is Algorithm 2: coverage identification for several
// groups at once. It first labels c*tau random objects, forms
// super-groups of expected minorities by Algorithm 6, and audits each
// super-group with Group-Coverage. An uncovered super-group settles
// all its members at once (every member is uncovered); a covered one
// pays the penalty of re-auditing each member individually.
func MultipleCoverage(o Oracle, ids []dataset.ObjectID, n, tau int, groups []pattern.Group, opts MultipleOptions) (*MultipleResult, error) {
	if o == nil {
		return nil, errors.New("core: nil oracle")
	}
	if len(groups) == 0 {
		return nil, errors.New("core: no groups to audit")
	}
	if opts.Rng == nil {
		return nil, errors.New("core: MultipleCoverage needs options.Rng")
	}
	c := opts.SampleFactor
	if c == 0 {
		c = 2
	}
	if c < 0 || n < 1 || tau < 0 {
		return nil, fmt.Errorf("core: invalid parameters (c=%d n=%d tau=%d)", c, n, tau)
	}

	res := &MultipleResult{
		Results: make([]MultipleGroupResult, len(groups)),
		Labeled: NewLabeledSet(),
	}
	budget := c * tau
	if opts.NoSampling {
		budget = 0
	}
	remaining, sampleTasks, err := LabelSamples(o, ids, budget, res.Labeled, opts.Rng)
	if err != nil {
		return nil, err
	}
	res.RemainingIDs = remaining
	res.SampleTasks = sampleTasks

	supers := Aggregate(res.Labeled, len(ids), tau, groups, opts.Multi)
	for _, members := range supers {
		audit := SuperAudit{GroupIndices: members}

		labeledSum := 0
		parts := make([]pattern.Group, len(members))
		for i, gi := range members {
			labeledSum += res.Labeled.Count(groups[gi])
			parts[i] = groups[gi]
		}
		union := parts[0]
		if len(parts) > 1 {
			union = pattern.SuperGroup(parts...)
		}
		// Samples may already satisfy the threshold; a non-positive
		// residual threshold is trivially covered (zero tasks).
		tauPrime := clampTau(tau - labeledSum)
		gc, err := GroupCoverage(o, remaining, n, tauPrime, union)
		if err != nil {
			return nil, err
		}
		audit.Tasks += gc.Tasks
		audit.Covered = gc.Covered
		audit.RemainingCount = gc.Count
		audit.TotalCount = labeledSum + gc.Count

		switch {
		case len(members) == 1:
			gi := members[0]
			res.Results[gi] = singleResult(groups[gi], gc, res.Labeled, len(ids))
		case gc.Covered:
			// Penalty case: the super-group is covered, which says
			// nothing about individual members (line 8-12).
			for _, gi := range members {
				g := groups[gi]
				sub, err := GroupCoverage(o, remaining, n, clampTau(tau-res.Labeled.Count(g)), g)
				if err != nil {
					return nil, err
				}
				audit.Tasks += sub.Tasks
				res.Results[gi] = singleResult(g, sub, res.Labeled, len(ids))
			}
		default:
			// The union has fewer than tau members, so every member is
			// uncovered (line 13); only the joint count is exact.
			superIdx := len(res.SuperAudits)
			for _, gi := range members {
				g := groups[gi]
				lo := res.Labeled.Count(g)
				res.Results[gi] = MultipleGroupResult{
					Group:      g,
					Covered:    false,
					CountLo:    lo,
					CountHi:    lo + gc.Count,
					Exact:      false,
					SuperIndex: superIdx,
				}
			}
		}
		res.SuperAudits = append(res.SuperAudits, audit)
		res.AuditTasks += audit.Tasks
	}
	res.Tasks = res.SampleTasks + res.AuditTasks
	return res, nil
}

// clampTau floors a residual threshold at zero: the samples already
// proved coverage when it goes negative.
func clampTau(tau int) int {
	if tau < 0 {
		return 0
	}
	return tau
}

// singleResult folds a Group-Coverage outcome over the remaining
// objects together with the labeled samples into a full-universe
// result for one group.
func singleResult(g pattern.Group, gc GroupResult, l *LabeledSet, universe int) MultipleGroupResult {
	lo := l.Count(g) + gc.Count
	out := MultipleGroupResult{
		Group:      g,
		Covered:    gc.Covered,
		CountLo:    lo,
		CountHi:    universe,
		Exact:      false,
		SuperIndex: -1,
	}
	if !gc.Covered && gc.Exact {
		out.CountHi = lo
		out.Exact = true
	}
	return out
}
