package crowd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickMajorityVoteIsMajority(t *testing.T) {
	// Property: the aggregate equals the majority answer whenever a
	// strict majority agrees; ties break toward yes.
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%9
		answers := make([]bool, k)
		yes := 0
		for i := range answers {
			answers[i] = rng.Intn(2) == 0
			if answers[i] {
				yes++
			}
		}
		got := (MajorityVote{}).AggregateBool(workersN(k), answers)
		switch {
		case 2*yes > k:
			return got
		case 2*yes < k:
			return !got
		default:
			return got // tie goes to yes
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAggregateLabelsPlurality(t *testing.T) {
	// Property: with an absolute majority on each attribute, the
	// aggregated label is that majority value.
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + 2*(int(kRaw)%4) // odd: 3,5,7,9
		truth := []int{rng.Intn(3), rng.Intn(2)}
		answers := make([][]int, k)
		for i := range answers {
			answers[i] = []int{truth[0], truth[1]}
		}
		// A strict minority disagrees arbitrarily.
		for i := 0; i < k/2; i++ {
			answers[i] = []int{rng.Intn(3), rng.Intn(2)}
		}
		got, err := AggregateLabels(answers)
		if err != nil {
			return false
		}
		// The majority (k - k/2 > k/2 answers) kept the truth, so the
		// plurality must return it.
		return got[0] == truth[0] && got[1] == truth[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDawidSkeneBeatsCoinFlipWorkers(t *testing.T) {
	// Property: with three 85 %-accurate workers and two coin
	// flippers, Dawid-Skene recovers well above coin-flip accuracy.
	// The 70 % bar leaves ample room for unlucky draws (the estimator
	// averages ~90 % here) while still failing decisively if the EM
	// breaks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const tasks, workers = 60, 5
		truth := make([]int, tasks)
		for i := range truth {
			truth[i] = rng.Intn(2)
		}
		var responses []Response
		for tsk := 0; tsk < tasks; tsk++ {
			for w := 0; w < workers; w++ {
				acc := 0.85
				if w >= 3 {
					acc = 0.5
				}
				v := truth[tsk]
				if rng.Float64() > acc {
					v = 1 - v
				}
				responses = append(responses, Response{Task: tsk, Worker: w, Value: v})
			}
		}
		res, err := DawidSkene(tasks, workers, 2, responses, 40)
		if err != nil {
			return false
		}
		correct := 0
		for i := range truth {
			if res.Truth[i] == truth[i] {
				correct++
			}
		}
		return correct >= tasks*7/10
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
