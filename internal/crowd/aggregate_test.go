package crowd

import (
	"math/rand"
	"testing"
)

func workersN(n int) []*Worker {
	out := make([]*Worker, n)
	for i := range out {
		out[i] = &Worker{ID: i, rng: rand.New(rand.NewSource(int64(i)))}
	}
	return out
}

func TestMajorityVote(t *testing.T) {
	mv := MajorityVote{}
	ws := workersN(3)
	cases := []struct {
		answers []bool
		want    bool
	}{
		{[]bool{true, true, true}, true},
		{[]bool{true, true, false}, true},
		{[]bool{true, false, false}, false},
		{[]bool{false, false, false}, false},
	}
	for _, tc := range cases {
		if got := mv.AggregateBool(ws, tc.answers); got != tc.want {
			t.Errorf("majority(%v) = %v, want %v", tc.answers, got, tc.want)
		}
	}
	// Tie breaks toward yes.
	if !mv.AggregateBool(workersN(2), []bool{true, false}) {
		t.Error("tie must break toward yes")
	}
	if mv.Name() == "" {
		t.Error("empty name")
	}
}

func TestWeightedVoteLearnsReliability(t *testing.T) {
	// Worker 0 is always right, workers 1 and 2 always agree with each
	// other and are wrong half the time... construct a case where after
	// warm-up, the reliable worker's weight exceeds the two noisy ones.
	wv := NewWeightedVote(0.7)
	ws := workersN(3)
	// Warm-up: 20 rounds where worker 0 agrees with the consensus and
	// 1, 2 disagree; their estimated accuracy drops.
	for i := 0; i < 20; i++ {
		wv.AggregateBool(ws, []bool{true, true, true}) // all agree: consensus yes
		wv.AggregateBool(ws, []bool{true, false, false})
		// consensus from weights: initially equal weights -> majority
		// no... regardless, worker 0 ends up agreeing with consensus
		// at least half the time, the others less.
	}
	if wv.Name() == "" {
		t.Error("empty name")
	}
	// After updates, estimates exist and stay clamped to (0,1).
	for _, w := range ws {
		p := wv.estimate(w.ID)
		if p <= 0 || p >= 1 {
			t.Errorf("estimate(%d) = %f out of (0,1)", w.ID, p)
		}
	}
}

func TestWeightedVoteUnanimous(t *testing.T) {
	wv := NewWeightedVote(0.9)
	ws := workersN(5)
	if !wv.AggregateBool(ws, []bool{true, true, true, true, true}) {
		t.Error("unanimous yes must aggregate to yes")
	}
	if wv.AggregateBool(ws, []bool{false, false, false, false, false}) {
		t.Error("unanimous no must aggregate to no")
	}
}

func TestAggregateLabels(t *testing.T) {
	got, err := AggregateLabels([][]int{{1, 0}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("AggregateLabels = %v, want [1 2]", got)
	}
	if _, err := AggregateLabels(nil); err == nil {
		t.Error("no answers: want error")
	}
	if _, err := AggregateLabels([][]int{{1, 0}, {1}}); err == nil {
		t.Error("ragged answers: want error")
	}
	// Tie keeps the first-seen value — deterministic.
	got, err = AggregateLabels([][]int{{2}, {3}})
	if err != nil || got[0] != 2 {
		t.Errorf("tie = %v, want first-seen 2", got)
	}
}

func TestDawidSkeneRecoversTruth(t *testing.T) {
	// 40 binary tasks, 5 workers: three accurate (90 %), two adversarial
	// coin-flippers. Majority can be confused; DS should recover nearly
	// all truths and rank worker accuracies correctly.
	rng := rand.New(rand.NewSource(77))
	numTasks, numWorkers := 60, 5
	truth := make([]int, numTasks)
	for i := range truth {
		truth[i] = rng.Intn(2)
	}
	acc := []float64{0.92, 0.9, 0.88, 0.5, 0.5}
	var responses []Response
	for tsk := 0; tsk < numTasks; tsk++ {
		for w := 0; w < numWorkers; w++ {
			v := truth[tsk]
			if rng.Float64() > acc[w] {
				v = 1 - v
			}
			responses = append(responses, Response{Task: tsk, Worker: w, Value: v})
		}
	}
	res, err := DawidSkene(numTasks, numWorkers, 2, responses, 50)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range truth {
		if res.Truth[i] == truth[i] {
			correct++
		}
	}
	if correct < numTasks*9/10 {
		t.Errorf("DS recovered %d/%d truths", correct, numTasks)
	}
	// The good workers should have higher estimated accuracy than the
	// coin flippers.
	for good := 0; good < 3; good++ {
		for bad := 3; bad < 5; bad++ {
			if res.WorkerAccuracy[good] <= res.WorkerAccuracy[bad] {
				t.Errorf("worker %d acc %.3f not above coin-flipper %d acc %.3f",
					good, res.WorkerAccuracy[good], bad, res.WorkerAccuracy[bad])
			}
		}
	}
	if res.Iterations < 1 {
		t.Error("no EM iterations recorded")
	}
}

func TestDawidSkeneValidation(t *testing.T) {
	if _, err := DawidSkene(0, 1, 2, nil, 10); err == nil {
		t.Error("0 tasks: want error")
	}
	if _, err := DawidSkene(1, 1, 1, nil, 10); err == nil {
		t.Error("1 class: want error")
	}
	bad := []Response{{Task: 5, Worker: 0, Value: 0}}
	if _, err := DawidSkene(2, 1, 2, bad, 10); err == nil {
		t.Error("out-of-range response: want error")
	}
}

func TestDawidSkeneUnansweredTask(t *testing.T) {
	// A task with no responses keeps a uniform posterior and any truth;
	// must not crash or skew others.
	responses := []Response{
		{Task: 0, Worker: 0, Value: 1},
		{Task: 0, Worker: 1, Value: 1},
	}
	res, err := DawidSkene(2, 2, 2, responses, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth[0] != 1 {
		t.Errorf("task 0 truth = %d, want 1", res.Truth[0])
	}
	// With no responses, the task's posterior equals the class prior:
	// it must stay a valid distribution.
	p := res.Posterior[1]
	if sum := p[0] + p[1]; abs(sum-1) > 1e-9 || p[0] < 0 || p[1] < 0 {
		t.Errorf("unanswered task posterior %v is not a distribution", p)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{2, 2}
	normalize(v)
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Errorf("normalize = %v", v)
	}
	z := []float64{0, 0, 0, 0}
	normalize(z)
	if z[0] != 0.25 {
		t.Errorf("normalize zero vector = %v", z)
	}
}
