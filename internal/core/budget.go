package core

import (
	"errors"
	"math"
	"sync"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the budget-governance subsystem: audits are
// fundamentally budget-bound — crowdsourcing cost is the paper's single
// performance metric — and a deployment serving real traffic must not
// overshoot a customer's spend cap. A Budget declares the caps, the
// BudgetedOracle middleware enforces them by admitting committed
// queries one at a time in canonical order, and every audit algorithm
// translates the resulting ErrBudgetExhausted into a deterministic
// partial result (Exhausted flags plus best-effort covered/uncovered
// bounds from the answers that did commit) instead of an error.
//
// Determinism: inside one batch the governor charges requests in
// request order and admits the affordable prefix, so under Lockstep —
// where round composition and commit order are Parallelism-free — the
// exhaustion point, the partial verdicts, the committed task counts and
// the platform ledger's spend are byte-identical at every Parallelism
// value. Free-running pools charge queries in arrival order; they stay
// race-free but their exhaustion point depends on scheduling, exactly
// like the rest of the determinism contract for order-dependent state.

// ErrBudgetExhausted is returned by a BudgetedOracle for every query it
// refuses to post. Audit algorithms catch it and return partial
// results; it never aborts a round midway without settling every parked
// query (the lockstep commit path delivers the committed prefix and
// fails the rest uniformly).
var ErrBudgetExhausted = errors.New("core: crowd budget exhausted")

// HITKind names the three crowd task types for budget accounting and
// pricing. It mirrors the crowd package's QueryKind without importing
// it (crowd depends on core, not the other way around).
type HITKind int

const (
	// HITPoint is a point query (label one object).
	HITPoint HITKind = iota
	// HITSet is a set query.
	HITSet
	// HITReverseSet is a reverse set query.
	HITReverseSet
)

// CostFunc prices one query for MaxSpend accounting: the full cost the
// requester commits to by posting the HIT (assignments x price plus
// platform fee, under the deployment's pricing model). crowd.HITCost
// derives one from a platform configuration.
type CostFunc func(kind HITKind, setSize int) float64

// Budget caps the crowd tasks an audit may commit. The zero value is
// unlimited; any positive cap activates governance. Budgets count
// committed queries — HITs actually posted to the oracle — so
// speculative answers a deterministic early stop later discards are
// still charged (they were paid), while queries the governor refuses
// cost nothing.
type Budget struct {
	// MaxHITs caps the total number of committed queries; 0 disables.
	MaxHITs int
	// MaxPoint, MaxSet and MaxReverseSet optionally cap one HIT kind
	// each; 0 disables the kind's cap.
	MaxPoint, MaxSet, MaxReverseSet int
	// MaxSpend caps the accumulated cost under Cost; 0 disables.
	MaxSpend float64
	// Cost prices a query for MaxSpend accounting. Nil charges one unit
	// per HIT, making MaxSpend a float alias of MaxHITs.
	Cost CostFunc
}

// Active reports whether any cap is set.
func (b Budget) Active() bool {
	return b.MaxHITs > 0 || b.MaxPoint > 0 || b.MaxSet > 0 || b.MaxReverseSet > 0 || b.MaxSpend > 0
}

// cost resolves the configured cost model.
func (b Budget) cost(kind HITKind, setSize int) float64 {
	if b.Cost == nil {
		return 1
	}
	return b.Cost(kind, setSize)
}

// BudgetSpent is a snapshot of a governor's committed consumption.
type BudgetSpent struct {
	// Point, Set and ReverseSet count the committed queries per kind.
	Point, Set, ReverseSet int
	// Spend is the accumulated cost under the budget's cost model.
	Spend float64
	// Denied counts the queries the governor refused.
	Denied int
}

// HITs returns the total committed queries.
func (s BudgetSpent) HITs() int { return s.Point + s.Set + s.ReverseSet }

// BudgetedOracle enforces a Budget in front of another oracle: every
// query is charged before it is forwarded, and a query the remaining
// budget cannot afford fails with ErrBudgetExhausted without reaching
// the crowd. It implements BatchOracle natively — a batch charges its
// requests in request order and forwards only the affordable prefix,
// returning the prefix's answers together with ErrBudgetExhausted for
// the remainder (the one middleware that exercises the partial-batch
// clause of the BatchOracle contract). Under Lockstep that makes the
// exhaustion point a pure function of the committed query sequence,
// byte-identical at every Parallelism value.
//
// Place the governor directly over the platform (or its retry/cache
// stack's inner oracle) so it charges real HITs: a cache in front of
// the governor dedups for free, a cache behind it would let hits be
// charged. Safe for concurrent use when the inner oracle is.
type BudgetedOracle struct {
	inner  Oracle
	budget Budget

	mu         sync.Mutex
	spent      BudgetSpent
	batchWidth int
}

// normalizeBudget clamps negative caps to zero (the cap's "disabled"
// value), mirroring normalizeParallelism's uniform rule: callers
// computing caps as remaining - spent can go negative, and a negative
// cap must read as "nothing left to govern with", never as a hidden
// unlimited budget (Active treats negatives as unset, so without the
// clamp a Budget{MaxHITs: -1} would audit ungoverned).
func normalizeBudget(b Budget) Budget {
	if b.MaxHITs < 0 {
		b.MaxHITs = 0
	}
	if b.MaxPoint < 0 {
		b.MaxPoint = 0
	}
	if b.MaxSet < 0 {
		b.MaxSet = 0
	}
	if b.MaxReverseSet < 0 {
		b.MaxReverseSet = 0
	}
	if b.MaxSpend < 0 {
		b.MaxSpend = 0
	}
	return b
}

// NewBudgetedOracle wraps inner with the budget governor. A zero
// (inactive) budget still counts spend but never refuses a query;
// negative caps normalize to zero (disabled).
func NewBudgetedOracle(inner Oracle, b Budget) *BudgetedOracle {
	return &BudgetedOracle{inner: inner, budget: normalizeBudget(b), batchWidth: 1}
}

// applyBudget resolves the governor for one audit: an oracle that
// already IS a governor (the Auditor shares one across audits) is
// reused — opts-level budgets never double-wrap — and otherwise an
// active budget wraps the oracle here. The returned oracle is what the
// audit must query through; gov is nil when no budget governs.
func applyBudget(o Oracle, b Budget) (Oracle, *BudgetedOracle) {
	if gov, ok := o.(*BudgetedOracle); ok {
		return o, gov
	}
	if b = normalizeBudget(b); !b.Active() {
		return o, nil
	}
	gov := NewBudgetedOracle(o, b)
	return gov, gov
}

// Budget returns the governor's configured caps.
func (g *BudgetedOracle) Budget() Budget { return g.budget }

// Spent returns a snapshot of the committed consumption.
func (g *BudgetedOracle) Spent() BudgetSpent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spent
}

// Exhausted reports whether the governor has refused at least one
// query.
func (g *BudgetedOracle) Exhausted() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spent.Denied > 0
}

// restoreSpent resets the ledger to a journaled snapshot. The
// journaling middleware calls it per replayed round, so a resumed
// audit's governor charges nothing for rounds that were already paid
// and ends exactly where the interrupted run left it.
func (g *BudgetedOracle) restoreSpent(s BudgetSpent) {
	g.mu.Lock()
	g.spent = s
	g.mu.Unlock()
}

// withBatchParallelism widens the pool used to forward admitted
// prefixes when the inner oracle has no native batching; AsBatchOracle
// propagates the caller's width here.
func (g *BudgetedOracle) withBatchParallelism(parallelism int) *BudgetedOracle {
	g.mu.Lock()
	defer g.mu.Unlock()
	if parallelism > g.batchWidth {
		g.batchWidth = parallelism
	}
	return g
}

// width returns the current forwarding pool width.
func (g *BudgetedOracle) width() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.batchWidth
}

// kindCap returns the kind's tally pointer and its cap.
func (g *BudgetedOracle) kindCap(kind HITKind) (tally *int, limit int) {
	switch kind {
	case HITPoint:
		return &g.spent.Point, g.budget.MaxPoint
	case HITSet:
		return &g.spent.Set, g.budget.MaxSet
	default:
		return &g.spent.ReverseSet, g.budget.MaxReverseSet
	}
}

// admit charges one query if every cap allows it; callers hold g.mu.
func (g *BudgetedOracle) admit(kind HITKind, setSize int) bool {
	tally, limit := g.kindCap(kind)
	cost := g.budget.cost(kind, setSize)
	switch {
	case g.budget.MaxHITs > 0 && g.spent.HITs()+1 > g.budget.MaxHITs,
		limit > 0 && *tally+1 > limit,
		g.budget.MaxSpend > 0 && g.spent.Spend+cost > g.budget.MaxSpend+1e-9:
		g.spent.Denied++
		return false
	}
	*tally++
	g.spent.Spend += cost
	return true
}

// Headroom returns how many further queries of the given shape the
// remaining budget affords right now (math.MaxInt when unlimited). The
// batched round engines use it to narrow speculative rounds — e.g. a
// Label round posts min(tau-verified, headroom) point queries — so an
// approaching cap stops producing over-issue instead of wasted HITs.
// Enforcement never relies on it: admission is checked per query.
func (g *BudgetedOracle) Headroom(kind HITKind, setSize int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	room := math.MaxInt
	if g.budget.MaxHITs > 0 {
		room = minInt(room, g.budget.MaxHITs-g.spent.HITs())
	}
	if tally, limit := g.kindCap(kind); limit > 0 {
		room = minInt(room, limit-*tally)
	}
	if g.budget.MaxSpend > 0 {
		if cost := g.budget.cost(kind, setSize); cost > 0 {
			room = minInt(room, int((g.budget.MaxSpend-g.spent.Spend+1e-9)/cost))
		}
	}
	if room < 0 {
		return 0
	}
	return room
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SetQuery implements Oracle.
func (g *BudgetedOracle) SetQuery(ids []dataset.ObjectID, gr pattern.Group) (bool, error) {
	g.mu.Lock()
	ok := g.admit(HITSet, len(ids))
	g.mu.Unlock()
	if !ok {
		return false, ErrBudgetExhausted
	}
	return g.inner.SetQuery(ids, gr)
}

// ReverseSetQuery implements Oracle.
func (g *BudgetedOracle) ReverseSetQuery(ids []dataset.ObjectID, gr pattern.Group) (bool, error) {
	g.mu.Lock()
	ok := g.admit(HITReverseSet, len(ids))
	g.mu.Unlock()
	if !ok {
		return false, ErrBudgetExhausted
	}
	return g.inner.ReverseSetQuery(ids, gr)
}

// PointQuery implements Oracle.
func (g *BudgetedOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	g.mu.Lock()
	ok := g.admit(HITPoint, 1)
	g.mu.Unlock()
	if !ok {
		return nil, ErrBudgetExhausted
	}
	return g.inner.PointQuery(id)
}

// admitSetPrefix charges a batch's requests in request order and
// returns the length of the affordable prefix.
func (g *BudgetedOracle) admitSetPrefix(reqs []SetRequest) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, req := range reqs {
		kind := HITSet
		if req.Reverse {
			kind = HITReverseSet
		}
		if !g.admit(kind, len(req.IDs)) {
			// Later requests are denied too: canonical order means the
			// round is charged front to back, nothing is skipped over.
			g.spent.Denied += len(reqs) - i - 1
			return i
		}
	}
	return len(reqs)
}

// SetQueryBatch implements BatchOracle with partial-prefix commits: the
// affordable prefix (charged in request order) is forwarded and
// answered; a shortfall returns those prefix answers alongside
// ErrBudgetExhausted for the rest.
func (g *BudgetedOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	k := g.admitSetPrefix(reqs)
	var answers []bool
	if k > 0 {
		var err error
		answers, err = AsBatchOracle(g.inner, g.width()).SetQueryBatch(reqs[:k])
		if err != nil {
			// The inner oracle may itself have committed a prefix (a
			// cache stacked below the governor): propagate those paid
			// answers with the error instead of discarding them.
			return answers, err
		}
	}
	if k < len(reqs) {
		return answers, ErrBudgetExhausted
	}
	return answers, nil
}

// PointQueryBatch implements BatchOracle; see SetQueryBatch.
func (g *BudgetedOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	g.mu.Lock()
	k := 0
	for range ids {
		if !g.admit(HITPoint, 1) {
			g.spent.Denied += len(ids) - k - 1
			break
		}
		k++
	}
	g.mu.Unlock()
	var labels [][]int
	if k > 0 {
		var err error
		labels, err = AsBatchOracle(g.inner, g.width()).PointQueryBatch(ids[:k])
		if err != nil {
			// Propagate the inner oracle's committed prefix; see
			// SetQueryBatch.
			return labels, err
		}
	}
	if k < len(ids) {
		return labels, ErrBudgetExhausted
	}
	return labels, nil
}

// headroomOf returns gov.Headroom when a governor is present and
// "unlimited" otherwise, so engine narrowing reads as one expression.
func headroomOf(gov *BudgetedOracle, kind HITKind, setSize int) int {
	if gov == nil {
		return math.MaxInt
	}
	return gov.Headroom(kind, setSize)
}
