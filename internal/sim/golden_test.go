package sim

// Golden-file regression for the harness artifacts: the files under
// testdata/ hold each experiment's rendering produced by the
// SEQUENTIAL engine (trial-parallelism 1, free-running audits), and
// the test re-runs every experiment on a 4-wide trial pool with the
// lockstep scheduler enabled — so one comparison pins three properties
// at once: the artifact itself (any behavioral drift fails), the
// trial-parallelism invariance of the harness, and the lockstep
// engine's exact agreement with the sequential engine on
// order-independent oracles.
//
// Regenerate after an intentional output change with
//
//	go test ./internal/sim -run TestGolden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"imagecvg/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden files from the sequential engine")

// goldenExcluded lists artifacts whose rendering carries wall-clock
// measurements and therefore cannot be byte-compared across machines.
var goldenExcluded = map[string]string{
	"lockstep-latency":   "renders wall-clock; covered by the benchmark history gate instead",
	"journal-overhead":   "renders wall-clock; covered by the benchmark history gate instead",
	"audit-throughput":   "renders wall-clock and allocation counts; covered by the benchmark history gate instead",
	"service-throughput": "renders wall-clock and heap sizes; covered by the benchmark history gate instead",
}

// canonicalArtifact renders an experiment result without its
// wall-clock columns. Only the sweep carries timing in its table; its
// deterministic content (the grid's task counts and the cache
// summary) is re-rendered from the structured rows.
func canonicalArtifact(res fmt.Stringer) string {
	sr, ok := res.(*SweepResult)
	if !ok {
		return res.String()
	}
	t := stats.NewTable("N", "tau", "engine parallelism", "Multiple-Coverage tasks")
	for _, row := range sr.Rows {
		t.AddRow(row.N, row.Tau, row.Parallelism, fmt.Sprintf("%.1f", row.Tasks))
	}
	c := stats.NewTable("N", "tau", "cache hit rate", "paid HITs")
	for _, w := range sr.Workloads {
		c.AddRow(w.N, w.Tau, fmt.Sprintf("%.2f", w.HitRate), w.PaidTasks)
	}
	return fmt.Sprintf("Sweep (timing elided): N x tau x engine-parallelism (n=%d)\n%s\nshared query cache per workload:\n%s",
		sr.Params.SetSize, t.String(), c.String())
}

// TestGoldenClassifierEngineParallelismInvariant pins artifacts along
// the ENGINE-parallelism axis: table2, the classifier-strategy harness,
// the budget-frontier curve and the robustness-frontier grid must
// render the sequential golden byte-for-byte when the audit engines run
// their rounds at width 1 and at width 16 under lockstep. For
// budget-frontier this is the acceptance property of budget governance
// itself: the exhaustion point — and with it every partial verdict in
// the curve — must not move with the pool width. For
// robustness-frontier it is the acceptance property of the trust
// middleware: the gold-probe schedule, the trust scores and the
// screening decisions must not move with the pool width either. (The
// main golden test varies trial parallelism; this one varies the pool
// inside each audit.)
func TestGoldenClassifierEngineParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-harness golden comparison skipped in -short")
	}
	for _, id := range []string{"table2", "classifier-strategy", "budget-frontier", "robustness-frontier"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatalf("missing golden (run with -update to generate): %v", err)
		}
		for _, width := range []int{1, 16} {
			res, err := e.Run(Options{Seed: 42, Trials: 2, Lockstep: true, EngineParallelism: width})
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalArtifact(res); got != string(want) {
				t.Errorf("%s at engine parallelism %d diverged from the sequential golden:\n--- got ---\n%s\n--- want ---\n%s",
					id, width, got, want)
			}
		}
	}
}

func TestGoldenLockstepMatchesSequentialEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full-harness golden comparison skipped in -short")
	}
	for _, e := range Experiments() {
		if _, skip := goldenExcluded[e.ID]; skip {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			path := filepath.Join("testdata", e.ID+".golden")
			if *update {
				// EngineParallelism 1 forces the audits inside each
				// trial onto the sequential engines too (table2 and
				// classifier-strategy default to batched width 4), so
				// the regenerated baseline is genuinely sequential.
				res, err := e.Run(Options{Seed: 42, Trials: 2, EngineParallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(canonicalArtifact(res)), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			res, err := e.Run(Options{Seed: 42, Trials: 2, Parallelism: 4, Lockstep: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalArtifact(res); got != string(want) {
				t.Errorf("lockstep output at trial-parallelism 4 diverged from the sequential golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}
