package dataset

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"imagecvg/internal/pattern"
)

func TestNewValidation(t *testing.T) {
	s := GenderSchema()
	if _, err := New(nil, nil); err == nil {
		t.Error("nil schema: want error")
	}
	if _, err := New(s, [][]int{{5}}); err == nil {
		t.Error("bad label: want error")
	}
	if _, err := New(s, [][]int{{0, 1}}); err == nil {
		t.Error("bad arity: want error")
	}
	d, err := New(s, [][]int{{0}, {1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Errorf("Size = %d, want 3", d.Size())
	}
}

func TestLabelsAreCopied(t *testing.T) {
	s := GenderSchema()
	src := [][]int{{0}, {1}}
	d := MustNew(s, src)
	src[0][0] = 1
	if d.At(0).Labels[0] != 0 {
		t.Error("New must deep-copy label vectors")
	}
}

func TestByIDAndTrueLabels(t *testing.T) {
	s := GenderSchema()
	d := MustNew(s, [][]int{{0}, {1}})
	o, ok := d.ByID(1)
	if !ok || o.Labels[0] != 1 {
		t.Errorf("ByID(1) = %v %v", o, ok)
	}
	if _, ok := d.ByID(99); ok {
		t.Error("ByID(99) must miss")
	}
	l, ok := d.TrueLabels(0)
	if !ok || l[0] != 0 {
		t.Errorf("TrueLabels(0) = %v %v", l, ok)
	}
	if _, ok := d.TrueLabels(99); ok {
		t.Error("TrueLabels(99) must miss")
	}
}

func TestShufflePreservesIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := BinaryWithMinority(100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := map[ObjectID]int{}
	for i := 0; i < d.Size(); i++ {
		o := d.At(i)
		before[o.ID] = o.Labels[0]
	}
	d.Shuffle(rng)
	for i := 0; i < d.Size(); i++ {
		o := d.At(i)
		if before[o.ID] != o.Labels[0] {
			t.Fatalf("object %d changed labels after shuffle", o.ID)
		}
		got, ok := d.ByID(o.ID)
		if !ok || got.ID != o.ID {
			t.Fatalf("byID index stale for %d", o.ID)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, _ := BinaryWithMinority(50, 5, rng)
	ids := d.Sample(20, rng)
	seen := map[ObjectID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate sample %d", id)
		}
		seen[id] = true
		if _, ok := d.ByID(id); !ok {
			t.Fatalf("sampled unknown id %d", id)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Sample(k>N) must panic")
		}
	}()
	d.Sample(51, rng)
}

func TestCountsAndCoverage(t *testing.T) {
	s := GenderSchema()
	rng := rand.New(rand.NewSource(3))
	d, _ := FromCounts(s, []int{30, 12}, rng)
	fem := Female(s)
	if got := d.CountGroup(fem); got != 12 {
		t.Errorf("CountGroup(female) = %d, want 12", got)
	}
	if got := d.CountPattern(pattern.MustPattern(s, 0)); got != 30 {
		t.Errorf("CountPattern(male) = %d, want 30", got)
	}
	if !d.Covered(fem, 12) || d.Covered(fem, 13) {
		t.Error("Covered threshold wrong")
	}
	sc := d.SubgroupCounts()
	if sc[0] != 30 || sc[1] != 12 {
		t.Errorf("SubgroupCounts = %v", sc)
	}
}

func TestFromCountsValidation(t *testing.T) {
	s := GenderSchema()
	if _, err := FromCounts(s, []int{1}, nil); err == nil {
		t.Error("short counts: want error")
	}
	if _, err := FromCounts(s, []int{1, -1}, nil); err == nil {
		t.Error("negative count: want error")
	}
	d, err := FromCounts(s, []int{2, 3}, nil)
	if err != nil || d.Size() != 5 {
		t.Fatalf("FromCounts: %v %v", d, err)
	}
	// nil rng keeps subgroup blocks in order.
	if d.At(0).Labels[0] != 0 || d.At(4).Labels[0] != 1 {
		t.Error("nil rng must preserve block order")
	}
}

func TestFromProportions(t *testing.T) {
	s := GenderSchema()
	rng := rand.New(rand.NewSource(4))
	d, err := FromProportions(s, 10000, []float64{3, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := d.CountGroup(Female(s))
	if f < 2200 || f > 2800 {
		t.Errorf("female count %d far from expectation 2500", f)
	}
	if _, err := FromProportions(s, 10, []float64{1}, rng); err == nil {
		t.Error("short proportions: want error")
	}
	if _, err := FromProportions(s, 10, []float64{-1, 2}, rng); err == nil {
		t.Error("negative proportion: want error")
	}
	if _, err := FromProportions(s, 10, []float64{0, 0}, rng); err == nil {
		t.Error("all-zero proportions: want error")
	}
}

func TestBinaryWithMinorityValidation(t *testing.T) {
	if _, err := BinaryWithMinority(10, 11, nil); err == nil {
		t.Error("minority > n: want error")
	}
	if _, err := BinaryWithMinority(10, -1, nil); err == nil {
		t.Error("negative minority: want error")
	}
}

func TestPresets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		p       Preset
		n, fems int
	}{
		{FERETTable1, 1522, 215},
		{FERETUnique, 994, 403},
		{UTKFace200, 3000, 200},
		{UTKFace20, 3000, 20},
	}
	for _, tc := range cases {
		d := tc.p.Generate(rng)
		if d.Size() != tc.n {
			t.Errorf("%s: size = %d, want %d", tc.p.Name, d.Size(), tc.n)
		}
		if got := d.CountGroup(Female(d.Schema())); got != tc.fems {
			t.Errorf("%s: females = %d, want %d", tc.p.Name, got, tc.fems)
		}
		if tc.p.Size() != tc.n {
			t.Errorf("%s: Size() = %d, want %d", tc.p.Name, tc.p.Size(), tc.n)
		}
		if tc.p.String() == "" {
			t.Error("empty preset string")
		}
	}
}

func TestSlice(t *testing.T) {
	s := GenderSchema()
	d := MustNew(s, [][]int{{0}, {1}, {0}, {1}})
	sub, err := d.Slice([]ObjectID{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 2 || sub.At(0).ID != 3 || sub.At(1).ID != 0 {
		t.Errorf("Slice wrong: %v", sub.IDs())
	}
	if _, err := d.Slice([]ObjectID{99}); err == nil {
		t.Error("unknown id: want error")
	}
	if _, err := d.Slice([]ObjectID{0, 0}); err == nil {
		t.Error("duplicate id: want error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := BinaryWithMinority(40, 7, rng)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != d.Size() {
		t.Fatalf("size = %d, want %d", got.Size(), d.Size())
	}
	for i := 0; i < d.Size(); i++ {
		if got.At(i).Labels[0] != d.At(i).Labels[0] {
			t.Fatalf("label %d differs after round trip", i)
		}
	}
	if _, err := ReadJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Error("broken JSON: want error")
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, _ := BinaryWithMinority(10, 2, rng)
	path := t.TempDir() + "/ds.json"
	if err := d.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 10 {
		t.Errorf("size = %d", got.Size())
	}
	if _, err := LoadJSON(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file: want error")
	}
}

func TestWriteCSV(t *testing.T) {
	s := GenderSchema()
	d := MustNew(s, [][]int{{0}, {1}})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "id,gender\n0,male\n1,female\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestIDsMatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, _ := BinaryWithMinority(30, 3, rng)
	ids := d.IDs()
	for i, id := range ids {
		if d.At(i).ID != id {
			t.Fatalf("IDs()[%d] = %d, At(%d).ID = %d", i, id, i, d.At(i).ID)
		}
	}
}

func TestCompositionInvariantQuick(t *testing.T) {
	// Property: FromCounts always realizes the exact composition,
	// regardless of seed and counts.
	s := GenderSchema()
	f := func(seed int64, males, females uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := FromCounts(s, []int{int(males), int(females)}, rng)
		if err != nil {
			return false
		}
		sc := d.SubgroupCounts()
		return sc[0] == int(males) && sc[1] == int(females)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
