// Package sim is the experiment harness: one entry point per table
// and figure of the paper's evaluation (section 6). Each Run function
// regenerates the corresponding artifact — the same rows or series the
// paper reports — against the simulated substrates, and returns a
// result that renders as an aligned text table.
//
// Every artifact rides the generic engine in internal/experiment: a
// Run function declares its cells (one experiment.Config per row,
// point or setting, with the cell's base seed and the shared Options
// knobs) and a trial body that is a pure function of the trial seed;
// the engine fans the independent trials across a bounded worker pool
// and aggregates per-trial observations in trial order. At
// Options.Parallelism 1 the harness reproduces the legacy sequential
// loops byte-for-byte; at higher parallelism the observations — and
// therefore the rendered tables — are identical because trials never
// share randomness or mutable state.
//
// The harness is shared by the cvgbench CLI and by the repository's
// testing.B benchmarks, so `go test -bench .` reproduces the entire
// evaluation.
package sim

import (
	"context"
	"fmt"
	"sort"

	"imagecvg/internal/experiment"
)

// Options carries the runtime knobs every experiment accepts.
type Options struct {
	// Seed is the base random seed; each cell strides it so trial
	// ranges never collide.
	Seed int64
	// Trials is the number of repetitions averaged per cell; values
	// <= 0 run one trial (normalized uniformly by the engine).
	Trials int
	// Parallelism bounds the trial-runner's worker pool; <= 1 runs
	// the trials sequentially and reproduces the pre-engine harness
	// byte-for-byte. Results are identical at every width.
	Parallelism int
	// Lockstep runs every audit inside the trials on the deterministic
	// lockstep scheduler (core.MultipleOptions.Lockstep), so even cells
	// with order-dependent oracles reproduce bit-identical artifacts
	// across the engine-parallelism axis. Experiments whose oracles are
	// order-independent (the TruthOracle-backed figures) render the
	// identical artifact with or without it.
	Lockstep bool
	// EngineParallelism, when positive, overrides the audit engine's
	// worker-pool width inside every trial body (the pool running
	// super-group audits concurrently and lifting oracles into batched
	// rounds); zero keeps each experiment's own default. Against the
	// harness's order-independent oracles every width renders the
	// identical artifact.
	EngineParallelism int
	// Timing optionally collects per-trial wall-clock across the
	// experiment's cells (surfaced by cvgbench).
	Timing *experiment.Recorder
	// Ctx cancels a running experiment: trials that have not started
	// fail fast, and trial bodies that thread Trial.Ctx into their
	// audit options stop at the next committed round. Nil runs to
	// completion.
	Ctx context.Context
}

// cell builds the engine config for one cell of an experiment grid,
// offsetting the base seed by the cell's stride.
func (o Options) cell(name string, seedOffset int64) experiment.Config {
	return experiment.Config{
		Name:              name,
		Seed:              o.Seed + seedOffset,
		Trials:            o.Trials,
		Parallelism:       o.Parallelism,
		Lockstep:          o.Lockstep,
		EngineParallelism: o.EngineParallelism,
		Timing:            o.Timing,
		Ctx:               o.Ctx,
	}
}

// engineWidth resolves a trial's audit-engine pool width: the
// harness-wide Options.EngineParallelism override when set, the
// experiment's own default otherwise.
func engineWidth(t experiment.Trial, def int) int {
	if t.EngineParallelism > 0 {
		return t.EngineParallelism
	}
	return def
}

// Experiment names one reproducible paper artifact.
type Experiment struct {
	// ID is the harness name, e.g. "table1" or "figure7a".
	ID string
	// Paper is the artifact's name in the paper.
	Paper string
	// Description summarizes the workload.
	Description string
	// Run executes the experiment and returns a printable result.
	Run func(o Options) (fmt.Stringer, error)
}

// Experiments returns the registry of all reproduced artifacts, sorted
// by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{
			ID: "table1", Paper: "Table 1",
			Description: "female coverage on FERET via the simulated crowd, three quality-control settings",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunTable1(DefaultTable1Params(), o)
			},
		},
		{
			ID: "table2", Paper: "Table 2",
			Description: "Classifier-Coverage vs Group-Coverage across nine dataset/classifier pairs",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunTable2(o)
			},
		},
		{
			ID: "figure6a", Paper: "Figure 6a",
			Description: "drowsiness-detection disparity vs added spectacled samples",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure6a(o)
			},
		},
		{
			ID: "figure6b", Paper: "Figure 6b",
			Description: "gender-detection disparity vs added Black-subject samples",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure6b(o)
			},
		},
		{
			ID: "figure7a", Paper: "Figure 7a",
			Description: "tasks vs number of group members f in [0, 2*tau]",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7a(DefaultFigure7Params(), o)
			},
		},
		{
			ID: "figure7b", Paper: "Figure 7b",
			Description: "tasks vs coverage threshold tau at the worst case f = tau",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7b(DefaultFigure7Params(), o)
			},
		},
		{
			ID: "figure7c", Paper: "Figure 7c",
			Description: "tasks vs set-size upper bound n",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7c(DefaultFigure7Params(), o)
			},
		},
		{
			ID: "figure7d", Paper: "Figure 7d",
			Description: "tasks vs dataset size N from 1K to 1M",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7d(DefaultFigure7Params(), o)
			},
		},
		{
			ID: "figure7e", Paper: "Figure 7e",
			Description: "Multiple-Coverage vs brute force across Table 3 settings (sigma=4)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7e(DefaultMultiParams(), o)
			},
		},
		{
			ID: "figure7f", Paper: "Figure 7f",
			Description: "Intersectional-Coverage vs brute force across Table 3 settings (2x2x2)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7f(DefaultMultiParams(), o)
			},
		},
		{
			ID: "figure7g", Paper: "Figure 7g",
			Description: "Multiple-Coverage vs brute force for attribute cardinalities 3..6",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7g(DefaultMultiParams(), o)
			},
		},
		{
			ID: "figure7h", Paper: "Figure 7h",
			Description: "Intersectional-Coverage for schemas (2,4) and (2,2,2)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunFigure7h(DefaultMultiParams(), o)
			},
		},
		{
			ID: "ablation-core", Paper: "extension",
			Description: "Group-Coverage design-choice ablation (sibling inference, lower-bound counting)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunAblationCore(o)
			},
		},
		{
			ID: "ablation-sampling", Paper: "extension",
			Description: "Multiple-Coverage sampling factor c sweep (paper default c=2)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunAblationSampling(o)
			},
		},
		{
			ID: "noise-sweep", Paper: "extension",
			Description: "audit robustness vs worker slip rate under 3-way majority vote",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunNoiseSweep(o)
			},
		},
		{
			ID: "sampling-baseline", Paper: "extension",
			Description: "exact group testing vs Hoeffding-bound statistical estimation",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunSamplingBaseline(o)
			},
		},
		{
			ID: "aggregation", Paper: "extension",
			Description: "majority vs reliability-weighted voting under spammer-heavy pools",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunAggregationComparison(o)
			},
		},
		{
			ID: "budget-frontier", Paper: "extension",
			Description: "verdict accuracy vs committed-HIT budget across N x tau (lockstep engine, deterministic exhaustion)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunBudgetFrontier(DefaultBudgetFrontierParams(), o)
			},
		},
		{
			ID: "robustness-frontier", Paper: "extension",
			Description: "verdict accuracy vs adversary rate x worker strategy x trust screening (lockstep engine, gold-probe trust middleware)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunRobustnessFrontier(DefaultRobustnessFrontierParams(), o)
			},
		},
		{
			ID: "classifier-strategy", Paper: "extension",
			Description: "Classifier-Coverage Partition/Label switchover across classifier false-positive rates (batched round engine)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunClassifierStrategy(DefaultClassifierParams(), o)
			},
		},
		{
			ID: "sweep", Paper: "extension",
			Description: "N x tau x engine-parallelism grid on the trial-runner, shared query cache across the parallelism axis",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunSweep(DefaultSweepParams(), o)
			},
		},
		{
			ID: "lockstep-latency", Paper: "extension",
			Description: "latency-bound wall-clock of the lockstep scheduler vs the sequential engine (per-HIT round-trip delay)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunLockstepLatency(DefaultLatencyParams(), o)
			},
		},
		{
			ID: "audit-throughput", Paper: "extension",
			Description: "CPU-bound HITs/sec and allocs/HIT of Multiple/Classifier audits over the zero-delay crowd platform (lockstep engine)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunAuditThroughput(DefaultThroughputParams(), o)
			},
		},
		{
			ID: "service-throughput", Paper: "extension",
			Description: "audit-service jobs/sec and steady-state heap under a fleet of small concurrent jobs (journal-per-job engine)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunServiceThroughput(DefaultServiceThroughputParams(), o)
			},
		},
		{
			ID: "journal-overhead", Paper: "extension",
			Description: "checkpoint cost of the fsynced round journal vs the bare lockstep stack (per-HIT round-trip delay)",
			Run: func(o Options) (fmt.Stringer, error) {
				return RunJournalOverhead(DefaultJournalOverheadParams(), o)
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
