package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the adversarial-robustness layer of the audit service:
// a TrustOracle middleware deterministically interleaves gold-standard
// probe HITs with the audit's own rounds, scores every worker's raw
// answers by a sequential likelihood ratio (probe mismatches plus
// consensus contradictions), and excludes distrusted workers from
// future assignment draws at round boundaries only — so round
// composition stays a pure function of committed answers and the whole
// stack keeps the cross-parallelism determinism contract. See the
// package comment ("Trust and adversarial workers").

// WorkerAnswer is one worker's raw (pre-aggregation) answer to one
// yes/no HIT, as an answer feed serves it: HIT is the platform's
// commit-order HIT index, Value is 0 (no) or 1 (yes).
type WorkerAnswer struct {
	HIT    int
	Worker int
	Value  int
}

// AnswerFeed serves delta reads of a platform's raw assignment stream
// in commit order; the crowd simulator's ResponseLog implements it.
// AnswersSince(n) returns the entries appended at index n and later;
// out-of-range n must clamp (never panic), so a cursor-driven consumer
// can always poll with its previous position.
type AnswerFeed interface {
	AnswersSince(n int) []WorkerAnswer
}

// WorkerScreener applies a trust verdict to a platform: the listed
// worker IDs are excluded from future assignment draws. Each call
// REPLACES the exclusion set; implementations may honor only the
// longest prefix that keeps the marketplace viable (the crowd
// simulator keeps at least one eligible worker) and return how many
// workers ended up excluded. The trust middleware calls this only
// between committed rounds.
type WorkerScreener interface {
	SetExcludedWorkers(ids []int) int
}

// GoldProbe is one gold-standard probe HIT: a set query whose true
// answer the auditor knows. The trust middleware appends probes to the
// audit's own rounds on a deterministic schedule and scores each
// worker's raw answer against Want.
type GoldProbe struct {
	Req  SetRequest
	Want bool
}

// GoldProbes derives k deterministic gold probes from ground truth:
// singleton set queries cycling over the groups, with objects drawn
// from a private RNG seeded by seed — so a probe battery is a pure
// function of (dataset, groups, k, seed) and identical across
// parallelism levels and resumed runs.
func GoldProbes(d *dataset.Dataset, groups []pattern.Group, k int, seed int64) []GoldProbe {
	if d == nil || d.Size() == 0 || len(groups) == 0 || k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	probes := make([]GoldProbe, 0, k)
	for i := 0; i < k; i++ {
		o := d.At(rng.Intn(d.Size()))
		g := groups[i%len(groups)]
		probes = append(probes, GoldProbe{
			Req:  SetRequest{IDs: []dataset.ObjectID{o.ID}, Group: g},
			Want: g.Matches(o.Labels),
		})
	}
	return probes
}

// TrustPolicy tunes the sequential-likelihood trust test. The zero
// value of any field is replaced by its DefaultTrustPolicy value, so
// callers may set only what they mean to change.
type TrustPolicy struct {
	// ProbeEvery schedules one gold probe after every ProbeEvery-th
	// committed set round (appended to that round's batch).
	ProbeEvery int
	// HonestErr and AdversaryErr are the per-answer error rates of the
	// two hypotheses the likelihood ratio separates; they must satisfy
	// 0 < HonestErr < AdversaryErr < 1.
	HonestErr    float64
	AdversaryErr float64
	// DistrustBelow is the log-likelihood score at which a worker is
	// distrusted (scores fall as evidence of adversarial answering
	// accumulates; the SPRT "reject honesty" boundary).
	DistrustBelow float64
	// ContradictionWeight discounts consensus-contradiction evidence
	// relative to gold-probe evidence (the consensus itself can be
	// wrong; a gold answer cannot).
	ContradictionWeight float64
	// MinObservations is the fewest scored answers before a worker can
	// be distrusted, bounding the false-exclusion rate on tiny samples.
	MinObservations int
}

// DefaultTrustPolicy probes every 4th set round and distrusts a worker
// once the likelihood ratio favors a 50%-error adversary over a
// 5%-error honest worker by e^3 (~3 gold-probe misses, or many more
// discounted consensus contradictions).
func DefaultTrustPolicy() TrustPolicy {
	return TrustPolicy{
		ProbeEvery:          4,
		HonestErr:           0.05,
		AdversaryErr:        0.5,
		DistrustBelow:       -3,
		ContradictionWeight: 0.25,
		MinObservations:     3,
	}
}

// normalized fills zero fields with the defaults and validates.
func (p TrustPolicy) normalized() (TrustPolicy, error) {
	d := DefaultTrustPolicy()
	if p.ProbeEvery == 0 {
		p.ProbeEvery = d.ProbeEvery
	}
	if p.HonestErr == 0 {
		p.HonestErr = d.HonestErr
	}
	if p.AdversaryErr == 0 {
		p.AdversaryErr = d.AdversaryErr
	}
	if p.DistrustBelow == 0 {
		p.DistrustBelow = d.DistrustBelow
	}
	if p.ContradictionWeight == 0 {
		p.ContradictionWeight = d.ContradictionWeight
	}
	if p.MinObservations == 0 {
		p.MinObservations = d.MinObservations
	}
	if p.ProbeEvery < 0 {
		return p, fmt.Errorf("core: trust probe interval %d", p.ProbeEvery)
	}
	if !(p.HonestErr > 0 && p.HonestErr < p.AdversaryErr && p.AdversaryErr < 1) {
		return p, fmt.Errorf("core: trust policy needs 0 < HonestErr < AdversaryErr < 1, got %v and %v",
			p.HonestErr, p.AdversaryErr)
	}
	if p.ContradictionWeight < 0 {
		return p, fmt.Errorf("core: trust contradiction weight %v", p.ContradictionWeight)
	}
	return p, nil
}

// Score is the worker's sequential log-likelihood-ratio trust score
// over the counted evidence: each correct gold-probe answer adds
// log((1-HonestErr)/(1-AdversaryErr)) > 0, each probe miss adds
// log(HonestErr/AdversaryErr) < 0, and consensus (dis)agreements
// contribute the same terms scaled by ContradictionWeight. Negative or
// inconsistent counts are clamped, so the function is total — Score is
// strictly decreasing in probeFails and in contradictions.
func (p TrustPolicy) Score(probes, probeFails, answers, contradictions int) float64 {
	if probes < 0 {
		probes = 0
	}
	if probeFails < 0 {
		probeFails = 0
	}
	if probeFails > probes {
		probeFails = probes
	}
	if answers < 0 {
		answers = 0
	}
	if contradictions < 0 {
		contradictions = 0
	}
	if contradictions > answers {
		contradictions = answers
	}
	match := math.Log((1 - p.HonestErr) / (1 - p.AdversaryErr))
	miss := math.Log(p.HonestErr / p.AdversaryErr)
	s := float64(probes-probeFails)*match + float64(probeFails)*miss
	s += p.ContradictionWeight * (float64(answers-contradictions)*match + float64(contradictions)*miss)
	return s
}

// Distrusts reports the policy's verdict for a score over observations
// scored answers (probes plus consensus-checked answers). Distrust is
// a one-way ratchet at the middleware level: once excluded, a worker
// stays excluded even if later evidence would raise the score.
func (p TrustPolicy) Distrusts(score float64, observations int) bool {
	return observations >= p.MinObservations && score < p.DistrustBelow
}

// TrustConfig assembles a TrustOracle: the policy, the gold-probe
// battery (cycled on the policy's schedule; empty disables probing),
// and the optional platform hooks — an answer feed to score raw worker
// answers and a screener to enforce exclusions. Feed and Screen may be
// nil: without a feed the middleware still issues probes (spend-audit
// mode); without a screener verdicts are reported but not enforced.
type TrustConfig struct {
	Policy TrustPolicy
	Probes []GoldProbe
	Feed   AnswerFeed
	Screen WorkerScreener
}

// TrustScore is one worker's evidence tally and verdict.
type TrustScore struct {
	Worker         int
	Score          float64
	Probes         int
	ProbeFails     int
	Answers        int
	Contradictions int
	Excluded       bool
}

// TrustReport is the middleware's observable state: per-worker scores
// sorted by worker ID, the probes issued, and how many workers are
// excluded from assignment draws.
type TrustReport struct {
	Workers      []TrustScore
	ProbesIssued int
	Excluded     int
}

// workerTally accumulates one worker's evidence.
type workerTally struct {
	probes, probeFails, answers, contradictions int
}

// TrustOracle is the adversarial-robustness middleware. Wrapped above
// the journal (stack order cache -> trust -> journal -> governor ->
// platform) it appends one gold probe to every ProbeEvery-th committed
// set round, consumes the answer feed's delta after each round to
// score every worker's raw answers — against the gold answer for probe
// HITs, against the round's aggregated consensus otherwise — and
// applies the policy's distrust verdicts to the screener at round
// boundaries only. The probe schedule is a pure function of the
// committed set-round count, so it is identical at every Parallelism
// under Lockstep, survives kill/resume (replayed rounds re-issue the
// identical probe-augmented requests), and never consults the feed —
// feed starvation degrades scoring, never determinism.
type TrustOracle struct {
	inner  Oracle
	policy TrustPolicy
	probes []GoldProbe
	feed   AnswerFeed
	screen WorkerScreener

	mu           sync.Mutex
	batchWidth   int
	setRounds    int
	probeCursor  int
	feedCursor   int
	probesIssued int
	stats        map[int]*workerTally
	excluded     map[int]bool
}

// NewTrustOracle wraps inner with the trust middleware. The policy is
// normalized (zero fields take defaults) and validated.
func NewTrustOracle(inner Oracle, cfg TrustConfig) (*TrustOracle, error) {
	if inner == nil {
		return nil, errors.New("core: trust oracle needs an inner oracle")
	}
	pol, err := cfg.Policy.normalized()
	if err != nil {
		return nil, err
	}
	for i, pr := range cfg.Probes {
		if len(pr.Req.IDs) == 0 {
			return nil, fmt.Errorf("core: gold probe %d has no objects", i)
		}
	}
	return &TrustOracle{
		inner:      inner,
		policy:     pol,
		probes:     append([]GoldProbe(nil), cfg.Probes...),
		feed:       cfg.Feed,
		screen:     cfg.Screen,
		batchWidth: 1,
		stats:      map[int]*workerTally{},
		excluded:   map[int]bool{},
	}, nil
}

// Policy returns the normalized policy in effect.
func (t *TrustOracle) Policy() TrustPolicy { return t.policy }

// withBatchParallelism widens the pool used to lift a non-batching
// inner oracle; AsBatchOracle propagates the caller's width here.
func (t *TrustOracle) withBatchParallelism(parallelism int) *TrustOracle {
	t.mu.Lock()
	defer t.mu.Unlock()
	if parallelism > t.batchWidth {
		t.batchWidth = parallelism
	}
	return t
}

// Report snapshots the middleware's state: every scored worker (sorted
// by ID), probes issued, and the distrusted-worker count.
func (t *TrustOracle) Report() TrustReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := TrustReport{ProbesIssued: t.probesIssued, Excluded: len(t.excluded)}
	ids := make([]int, 0, len(t.stats))
	for id := range t.stats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := t.stats[id]
		rep.Workers = append(rep.Workers, TrustScore{
			Worker:         id,
			Score:          t.policy.Score(w.probes, w.probeFails, w.answers, w.contradictions),
			Probes:         w.probes,
			ProbeFails:     w.probeFails,
			Answers:        w.answers,
			Contradictions: w.contradictions,
			Excluded:       t.excluded[id],
		})
	}
	return rep
}

// SetQueryBatch implements BatchOracle: the probe schedule decides
// whether this committed set round carries an appended gold probe, the
// combined round is forwarded to the inner stack (so a journal below
// records — and replays — the probe-augmented round), the feed delta
// is scored, and screening verdicts apply before the answers return —
// i.e. at the round boundary. A probe-only failure (the budget
// admitting exactly the caller's prefix and refusing the appended
// probe) is swallowed: the audit's own requests all committed, so the
// audit sees a clean round while the governor's exhaustion still
// surfaces on the next one.
func (t *TrustOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setRounds++
	var probe *GoldProbe
	combined := reqs
	if len(t.probes) > 0 && t.setRounds%t.policy.ProbeEvery == 0 {
		pr := t.probes[t.probeCursor%len(t.probes)]
		t.probeCursor++
		t.probesIssued++
		probe = &pr
		combined = make([]SetRequest, 0, len(reqs)+1)
		combined = append(combined, reqs...)
		combined = append(combined, pr.Req)
	}
	answers, err := AsBatchOracle(t.inner, t.batchWidth).SetQueryBatch(combined)
	t.observe(reqs, answers, probe)
	t.applyScreening()
	if probe == nil {
		return answers, err
	}
	if len(answers) > len(reqs) {
		answers = answers[:len(reqs)]
	}
	if err != nil && len(answers) == len(reqs) &&
		(errors.Is(err, ErrBudgetExhausted) || errors.Is(err, ErrTransient)) {
		err = nil
	}
	return answers, err
}

// PointQueryBatch implements BatchOracle by pass-through: point rounds
// carry no probes, produce no feed entries, and do not advance the
// probe schedule.
func (t *TrustOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return AsBatchOracle(t.inner, t.batchWidth).PointQueryBatch(ids)
}

// SetQuery implements Oracle as a one-element round, so sequential
// audit phases stay on the probe schedule too.
func (t *TrustOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := t.SetQueryBatch([]SetRequest{{IDs: ids, Group: g}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

// ReverseSetQuery implements Oracle; see SetQuery.
func (t *TrustOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := t.SetQueryBatch([]SetRequest{{IDs: ids, Group: g, Reverse: true}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

// PointQuery implements Oracle by pass-through; see PointQueryBatch.
func (t *TrustOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	labels, err := t.PointQueryBatch([]dataset.ObjectID{id})
	if err != nil {
		return nil, err
	}
	return labels[0], nil
}

// observe consumes the feed delta for one committed set round: the
// round committed len(answers) HITs in request order, so the delta's
// next len(answers) HIT groups are exactly this round's raw worker
// answers. Probe HITs score against the gold answer, audit HITs
// against the round's aggregated consensus. A short or empty delta
// (no feed installed, or a resumed run replaying rounds an earlier
// process already consumed from a since-rebuilt platform) scores what
// is there and moves on — determinism never depends on the feed.
// Callers hold t.mu.
func (t *TrustOracle) observe(reqs []SetRequest, answers []bool, probe *GoldProbe) {
	if t.feed == nil || len(answers) == 0 {
		return
	}
	delta := t.feed.AnswersSince(t.feedCursor)
	consumed, hit := 0, 0
	for i := 0; i < len(delta) && hit < len(answers); {
		j := i
		for j < len(delta) && delta[j].HIT == delta[i].HIT {
			j++
		}
		want, isProbe := answers[hit], false
		if probe != nil && hit == len(reqs) {
			want, isProbe = probe.Want, true
		}
		for _, a := range delta[i:j] {
			w := t.stats[a.Worker]
			if w == nil {
				w = &workerTally{}
				t.stats[a.Worker] = w
			}
			wrong := (a.Value == 1) != want
			if isProbe {
				w.probes++
				if wrong {
					w.probeFails++
				}
			} else {
				w.answers++
				if wrong {
					w.contradictions++
				}
			}
		}
		consumed += j - i
		i = j
		hit++
	}
	t.feedCursor += consumed
}

// applyScreening ratchets newly distrusted workers into the exclusion
// set and pushes the full set to the screener, worst score first (ID
// breaks ties) — so a screener honoring only a viability-bounded
// prefix drops the most trusted of the distrusted last. Each worker's
// verdict depends only on their own tally, so the map iteration order
// cannot affect the outcome. Callers hold t.mu.
func (t *TrustOracle) applyScreening() {
	changed := false
	//lint:ordered each worker's verdict is a pure function of its own tally; the screener feed below iterates sorted ids
	for id, w := range t.stats {
		if t.excluded[id] {
			continue
		}
		score := t.policy.Score(w.probes, w.probeFails, w.answers, w.contradictions)
		if t.policy.Distrusts(score, w.probes+w.answers) {
			t.excluded[id] = true
			changed = true
		}
	}
	if t.screen == nil || !changed {
		return
	}
	ids := make([]int, 0, len(t.excluded))
	for id := range t.excluded {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := t.scoreOf(ids[i]), t.scoreOf(ids[j])
		if si != sj {
			return si < sj
		}
		return ids[i] < ids[j]
	})
	t.screen.SetExcludedWorkers(ids)
}

// scoreOf returns a worker's current score. Callers hold t.mu.
func (t *TrustOracle) scoreOf(id int) float64 {
	w := t.stats[id]
	if w == nil {
		return 0
	}
	return t.policy.Score(w.probes, w.probeFails, w.answers, w.contradictions)
}
