package sim

import "testing"

// TestServiceThroughputSmoke asserts the semantics half of the
// audit-service artifact: the whole fleet must finish, report real
// crowd-task totals, and yield positive throughput and residency
// numbers for the benchmark history to gate on. The wall-clock half
// lives in BENCH_core.json, not here.
func TestServiceThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("service benchmark skipped in -short")
	}
	p := DefaultServiceThroughputParams()
	p.Jobs = 24 // a CI-sized fleet; the default 150 is for cvgbench
	res, err := RunServiceThroughput(p, Options{Seed: 42, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsPerSec <= 0 {
		t.Errorf("jobs/sec %.2f, want > 0", res.JobsPerSec)
	}
	if res.SteadyHeapBytes <= 0 {
		t.Errorf("steady heap %.0f bytes, want > 0", res.SteadyHeapBytes)
	}
	if res.TasksPerTrial < float64(p.Jobs) {
		t.Errorf("tasks/trial %.0f below one per job (%d jobs)", res.TasksPerTrial, p.Jobs)
	}
	if jps, heap := res.Service(); jps != res.JobsPerSec || heap != res.SteadyHeapBytes {
		t.Errorf("Service() = (%.2f, %.0f), want (%.2f, %.0f)", jps, heap, res.JobsPerSec, res.SteadyHeapBytes)
	}
}
