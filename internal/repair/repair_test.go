package repair

import (
	"math/rand"
	"strings"
	"testing"

	"imagecvg/internal/pattern"
)

func genderRace() *pattern.Schema {
	return pattern.MustSchema(
		pattern.Attribute{Name: "gender", Values: []string{"male", "female"}},
		pattern.Attribute{Name: "race", Values: []string{"white", "black"}},
	)
}

func singleAttr() *pattern.Schema {
	return pattern.MustSchema(pattern.Attribute{
		Name: "race", Values: []string{"white", "black", "hispanic", "asian"},
	})
}

func TestPlanValidation(t *testing.T) {
	s := singleAttr()
	if _, err := NewPlan(nil, nil, 10); err == nil {
		t.Error("nil schema: want error")
	}
	if _, err := NewPlan(s, []int{1}, 10); err == nil {
		t.Error("short counts: want error")
	}
	if _, err := NewPlan(s, []int{1, 2, 3, -1}, 10); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := NewPlan(s, []int{1, 2, 3, 4}, -1); err == nil {
		t.Error("negative tau: want error")
	}
}

func TestPlanSingleAttributeIsExact(t *testing.T) {
	// One attribute: groups are disjoint, so the optimal plan tops up
	// each deficient group exactly to tau (plus the root, which the
	// group additions already satisfy here).
	s := singleAttr()
	counts := []int{100, 30, 50, 0}
	plan, err := NewPlan(s, counts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 20+50 {
		t.Errorf("total = %d, want 70 (20 black + 50 asian)", plan.Total)
	}
	if !plan.Verify(counts, 50) {
		t.Error("plan does not repair coverage")
	}
	if plan.Additions[1] != 20 || plan.Additions[3] != 50 {
		t.Errorf("additions = %v", plan.Additions)
	}
}

func TestPlanAlreadyCovered(t *testing.T) {
	s := singleAttr()
	counts := []int{100, 90, 80, 70}
	plan, err := NewPlan(s, counts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 0 || len(plan.Deficits) != 0 {
		t.Errorf("covered data needs no plan: %+v", plan)
	}
	if !strings.Contains(plan.String(), "no acquisitions") {
		t.Errorf("rendering = %q", plan.String())
	}
}

func TestPlanIntersectionalReuse(t *testing.T) {
	// female-black is empty while everything else is plentiful; fixing
	// the leaf also fixes any ancestor deficits at once.
	s := genderRace()
	counts := make([]int, s.NumSubgroups())
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 0, 0))] = 200
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 1, 0))] = 180
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 0, 1))] = 150
	// female-black = 0
	plan, err := NewPlan(s, counts, 50)
	if err != nil {
		t.Fatal(err)
	}
	fb := pattern.SubgroupIndex(s, pattern.MustPattern(s, 1, 1))
	if plan.Additions[fb] != 50 || plan.Total != 50 {
		t.Errorf("plan = %v (total %d), want 50 female-black only", plan.Additions, plan.Total)
	}
	if !plan.Verify(counts, 50) {
		t.Error("plan does not repair coverage")
	}
	if !strings.Contains(plan.String(), "gender=female AND race=black") {
		t.Errorf("rendering = %q", plan.String())
	}
}

func TestPlanEmptyDatasetRepairsEverything(t *testing.T) {
	s := genderRace()
	counts := make([]int, s.NumSubgroups())
	plan, err := NewPlan(s, counts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Verify(counts, 10) {
		t.Error("plan does not repair the empty dataset")
	}
	// Every leaf must reach tau (leaves themselves are patterns), so
	// the total is exactly numSubgroups*tau.
	if plan.Total != s.NumSubgroups()*10 {
		t.Errorf("total = %d, want %d", plan.Total, s.NumSubgroups()*10)
	}
}

func TestPlanRandomizedAlwaysRepairs(t *testing.T) {
	// Property: for random compositions and thresholds, the plan
	// always verifies, and single-attribute plans are exactly the sum
	// of per-group deficits (optimal).
	schemas := []*pattern.Schema{singleAttr(), genderRace(), pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "c", Values: []string{"0", "1"}},
	)}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		s := schemas[trial%len(schemas)]
		counts := make([]int, s.NumSubgroups())
		for i := range counts {
			counts[i] = rng.Intn(120)
		}
		tau := 1 + rng.Intn(100)
		plan, err := NewPlan(s, counts, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Verify(counts, tau) {
			t.Fatalf("trial %d: plan fails to repair (schema %s tau %d counts %v additions %v)",
				trial, s, tau, counts, plan.Additions)
		}
		if s.NumAttrs() == 1 {
			want := 0
			for _, c := range counts {
				if c < tau {
					want += tau - c
				}
			}
			if plan.Total != want {
				t.Fatalf("trial %d: single-attribute plan %d, optimal %d", trial, plan.Total, want)
			}
		}
		// Sanity: never acquire more than repairing every leaf
		// individually would.
		worst := 0
		for _, c := range counts {
			if c < tau {
				worst += tau - c
			}
		}
		if plan.Total > worst {
			t.Fatalf("trial %d: plan %d exceeds leaf-by-leaf repair %d", trial, plan.Total, worst)
		}
	}
}

func TestApplyDoesNotMutate(t *testing.T) {
	s := singleAttr()
	counts := []int{10, 10, 10, 10}
	plan, err := NewPlan(s, counts, 20)
	if err != nil {
		t.Fatal(err)
	}
	after := plan.Apply(counts)
	if counts[0] != 10 {
		t.Error("Apply mutated the input")
	}
	if after[0] != 20 {
		t.Errorf("after = %v", after)
	}
}
