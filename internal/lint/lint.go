// Package lint holds cvglint's analyzers: mechanical enforcement of
// the determinism contract documented in internal/core/doc.go and
// ROADMAP.md. Every rule exists because one class of Go construct has
// already bitten (or would silently bite) replay identity — map
// iteration order, wall-clock reads in journaled paths, global RNG
// draws outside the seeded child-RNG tree, and sentinel-error
// comparisons that stop matching once middleware wraps the error.
//
// Suppression syntax: a finding is silenced by a directive comment
//
//	//lint:<rule> <justification>
//
// placed on the flagged line or the line directly above it, where
// <rule> names the analyzer (ordered for maprange, wallclock, rand
// for globalrand, sentinel for sentinelerr) and <justification> is a
// non-empty explanation of why the construct is deterministic (or why
// identity comparison is correct). A directive without a
// justification is itself a diagnostic: the ordering argument is the
// point of the annotation.
package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"imagecvg/internal/lint/analysis"
)

// CommitPackages are the canonical-commit packages: everything that
// runs between "a round is formed" and "a round is journaled" must be
// a pure function of committed state, so ordering rules (maprange,
// wallclock) apply only here. Matching is by exact import path or by
// "/"-separated suffix, so both "imagecvg/internal/core" and a test
// corpus package named "internal/core" are in scope.
var CommitPackages = []string{
	"internal/core",
	"internal/server",
	"internal/journal",
	"internal/crowd",
}

// Analyzers returns the full cvglint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapRange, WallClock, GlobalRand, SentinelErr}
}

// inCommitPackage reports whether pkgPath is one of the
// canonical-commit packages.
func inCommitPackage(pkgPath string) bool {
	for _, p := range CommitPackages {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file holding pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// fileHasSuffix reports whether the file holding pos ends with one of
// the slash-separated path suffixes in allow.
func fileHasSuffix(fset *token.FileSet, pos token.Pos, allow []string) bool {
	name := filepath.ToSlash(fset.Position(pos).Filename)
	for _, suffix := range allow {
		if name == suffix || strings.HasSuffix(name, "/"+suffix) {
			return true
		}
	}
	return false
}

// A directive is one parsed //lint:<rule> comment.
type directive struct {
	rule string
	why  string
	pos  token.Pos
}

// directives collects every //lint: comment in the file, keyed by the
// line it occupies. A directive suppresses findings on its own line
// (trailing comment) and on the line below it (comment above the
// statement).
func directives(fset *token.FileSet, file *ast.File) map[int]directive {
	out := make(map[int]directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			rule, why, _ := strings.Cut(text, " ")
			out[fset.Position(c.Pos()).Line] = directive{
				rule: rule,
				why:  strings.TrimSpace(why),
				pos:  c.Pos(),
			}
		}
	}
	return out
}

// suppressed checks for a rule directive covering pos. If the
// directive exists but carries no justification, it reports that as a
// finding instead of honoring it.
func suppressed(pass *analysis.Pass, dirs map[int]directive, pos token.Pos, rule string) bool {
	line := pass.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		d, ok := dirs[l]
		if !ok || d.rule != rule {
			continue
		}
		if d.why == "" {
			pass.Reportf(d.pos, "//lint:%s directive needs a justification: //lint:%s <why>", rule, rule)
		}
		return true
	}
	return false
}

// enclosingFunc returns the innermost *ast.FuncDecl or *ast.FuncLit
// whose body contains pos, or nil if pos is not inside a function.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	var bestSize token.Pos = 1 << 60
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil || pos < body.Pos() || pos >= body.End() {
			return true
		}
		if size := body.End() - body.Pos(); size < bestSize {
			bestSize = size
			best = n
		}
		return true
	})
	return best
}

// funcBody returns the body of a node returned by enclosingFunc.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}
