package core

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// RetryPolicy re-posts transiently failing HITs, the way a deployment
// handles expired or rejected assignments, instead of aborting a whole
// multi-group audit on one bad task. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per query; values <= 1
	// mean a single attempt (no retry).
	MaxAttempts int
	// Backoff scales the wait between attempts: before retry k the
	// engine sleeps Backoff * (0.5 + jitter) where jitter in [0, 1) is
	// drawn from the audit's child RNG. Zero sleeps not at all (tests).
	Backoff time.Duration
}

// Enabled reports whether the policy actually retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// retryOracle wraps an oracle with the retry policy. Each concurrent
// audit owns its own retryOracle with its own child RNG, so jitter
// draws never race and stay deterministic per audit.
//
// retryOracle is itself a BatchOracle: over a natively batching inner
// oracle a transient failure re-posts the whole round (preserving the
// inner's request-order determinism); over a plain oracle each
// request retries individually across the propagated pool width.
type retryOracle struct {
	inner  Oracle
	policy RetryPolicy

	mu         sync.Mutex // guards rng and batchWidth
	rng        *rand.Rand
	batchWidth int
}

// withRetry wraps o unless the policy is disabled.
func withRetry(o Oracle, policy RetryPolicy, rng *rand.Rand) Oracle {
	if !policy.Enabled() {
		return o
	}
	return &retryOracle{inner: o, policy: policy, rng: rng, batchWidth: 1}
}

// withBatchParallelism widens the per-request retry pool (it never
// narrows); AsBatchOracle propagates the caller's width here.
func (r *retryOracle) withBatchParallelism(parallelism int) *retryOracle {
	r.mu.Lock()
	defer r.mu.Unlock()
	if parallelism > r.batchWidth {
		r.batchWidth = parallelism
	}
	return r
}

// width returns the current per-request retry pool width.
func (r *retryOracle) width() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batchWidth
}

// do runs fn up to MaxAttempts times, backing off with jitter between
// attempts, and keeps only transient failures retryable.
func (r *retryOracle) do(fn func() error) error {
	var err error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.mu.Lock()
			jitter := 0.5 + r.rng.Float64()
			r.mu.Unlock()
			if d := time.Duration(float64(r.policy.Backoff) * jitter); d > 0 {
				time.Sleep(d)
			}
		}
		if err = fn(); err == nil || !errors.Is(err, ErrTransient) {
			return err
		}
	}
	return err
}

// SetQuery implements Oracle.
func (r *retryOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	var ans bool
	err := r.do(func() error {
		var e error
		ans, e = r.inner.SetQuery(ids, g)
		return e
	})
	return ans, err
}

// ReverseSetQuery implements Oracle.
func (r *retryOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	var ans bool
	err := r.do(func() error {
		var e error
		ans, e = r.inner.ReverseSetQuery(ids, g)
		return e
	})
	return ans, err
}

// PointQuery implements Oracle.
func (r *retryOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	var labels []int
	err := r.do(func() error {
		var e error
		labels, e = r.inner.PointQuery(id)
		return e
	})
	return labels, err
}

// SetQueryBatch implements BatchOracle; see the type comment for the
// native-vs-lifted retry semantics.
func (r *retryOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	if bo, ok := r.inner.(BatchOracle); ok {
		var answers []bool
		err := r.do(func() error {
			var e error
			answers, e = bo.SetQueryBatch(reqs)
			return e
		})
		return answers, err
	}
	return NewBatchAdapter(r, r.width()).SetQueryBatch(reqs)
}

// PointQueryBatch implements BatchOracle; see SetQueryBatch.
func (r *retryOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	if bo, ok := r.inner.(BatchOracle); ok {
		var labels [][]int
		err := r.do(func() error {
			var e error
			labels, e = bo.PointQueryBatch(ids)
			return e
		})
		return labels, err
	}
	return NewBatchAdapter(r, r.width()).PointQueryBatch(ids)
}
