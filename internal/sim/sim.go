// Package sim is the experiment harness: one entry point per table
// and figure of the paper's evaluation (section 6). Each Run function
// regenerates the corresponding artifact — the same rows or series the
// paper reports — against the simulated substrates, and returns a
// result that renders as an aligned text table.
//
// The harness is shared by the cvgbench CLI and by the repository's
// testing.B benchmarks, so `go test -bench .` reproduces the entire
// evaluation.
package sim

import (
	"fmt"
	"sort"
)

// Experiment names one reproducible paper artifact.
type Experiment struct {
	// ID is the harness name, e.g. "table1" or "figure7a".
	ID string
	// Paper is the artifact's name in the paper.
	Paper string
	// Description summarizes the workload.
	Description string
	// Run executes the experiment with the given seed and trial count
	// and returns a printable result.
	Run func(seed int64, trials int) (fmt.Stringer, error)
}

// Experiments returns the registry of all reproduced artifacts, sorted
// by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{
			ID: "table1", Paper: "Table 1",
			Description: "female coverage on FERET via the simulated crowd, three quality-control settings",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunTable1(DefaultTable1Params(), seed, trials)
			},
		},
		{
			ID: "table2", Paper: "Table 2",
			Description: "Classifier-Coverage vs Group-Coverage across nine dataset/classifier pairs",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunTable2(seed, trials)
			},
		},
		{
			ID: "figure6a", Paper: "Figure 6a",
			Description: "drowsiness-detection disparity vs added spectacled samples",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure6a(seed, trials)
			},
		},
		{
			ID: "figure6b", Paper: "Figure 6b",
			Description: "gender-detection disparity vs added Black-subject samples",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure6b(seed, trials)
			},
		},
		{
			ID: "figure7a", Paper: "Figure 7a",
			Description: "tasks vs number of group members f in [0, 2*tau]",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7a(DefaultFigure7Params(), seed, trials)
			},
		},
		{
			ID: "figure7b", Paper: "Figure 7b",
			Description: "tasks vs coverage threshold tau at the worst case f = tau",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7b(DefaultFigure7Params(), seed, trials)
			},
		},
		{
			ID: "figure7c", Paper: "Figure 7c",
			Description: "tasks vs set-size upper bound n",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7c(DefaultFigure7Params(), seed, trials)
			},
		},
		{
			ID: "figure7d", Paper: "Figure 7d",
			Description: "tasks vs dataset size N from 1K to 1M",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7d(DefaultFigure7Params(), seed, trials)
			},
		},
		{
			ID: "figure7e", Paper: "Figure 7e",
			Description: "Multiple-Coverage vs brute force across Table 3 settings (sigma=4)",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7e(DefaultMultiParams(), seed, trials)
			},
		},
		{
			ID: "figure7f", Paper: "Figure 7f",
			Description: "Intersectional-Coverage vs brute force across Table 3 settings (2x2x2)",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7f(DefaultMultiParams(), seed, trials)
			},
		},
		{
			ID: "figure7g", Paper: "Figure 7g",
			Description: "Multiple-Coverage vs brute force for attribute cardinalities 3..6",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7g(DefaultMultiParams(), seed, trials)
			},
		},
		{
			ID: "figure7h", Paper: "Figure 7h",
			Description: "Intersectional-Coverage for schemas (2,4) and (2,2,2)",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunFigure7h(DefaultMultiParams(), seed, trials)
			},
		},
		{
			ID: "ablation-core", Paper: "extension",
			Description: "Group-Coverage design-choice ablation (sibling inference, lower-bound counting)",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunAblationCore(seed, trials)
			},
		},
		{
			ID: "ablation-sampling", Paper: "extension",
			Description: "Multiple-Coverage sampling factor c sweep (paper default c=2)",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunAblationSampling(seed, trials)
			},
		},
		{
			ID: "noise-sweep", Paper: "extension",
			Description: "audit robustness vs worker slip rate under 3-way majority vote",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunNoiseSweep(seed, trials)
			},
		},
		{
			ID: "sampling-baseline", Paper: "extension",
			Description: "exact group testing vs Hoeffding-bound statistical estimation",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunSamplingBaseline(seed, trials)
			},
		},
		{
			ID: "aggregation", Paper: "extension",
			Description: "majority vs reliability-weighted voting under spammer-heavy pools",
			Run: func(seed int64, trials int) (fmt.Stringer, error) {
				return RunAggregationComparison(seed, trials)
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
