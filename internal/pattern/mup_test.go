package pattern

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomLabels(s *Schema, n int, rng *rand.Rand) [][]int {
	out := make([][]int, n)
	for i := range out {
		l := make([]int, s.NumAttrs())
		for j := 0; j < s.NumAttrs(); j++ {
			l[j] = rng.Intn(s.Attr(j).Cardinality())
		}
		out[i] = l
	}
	return out
}

func TestCountLabelsAndCountPattern(t *testing.T) {
	s := genderRace()
	labels := [][]int{{0, 0}, {0, 0}, {1, 3}, {1, 0}, {0, 3}}
	counts := CountLabels(s, labels)
	if got := counts[SubgroupIndex(s, MustPattern(s, 0, 0))]; got != 2 {
		t.Errorf("male-white count = %d, want 2", got)
	}
	if got := CountPattern(s, counts, MustPattern(s, Wildcard, 3)); got != 2 {
		t.Errorf("X-asian count = %d, want 2", got)
	}
	if got := CountPattern(s, counts, All(s)); got != 5 {
		t.Errorf("root count = %d, want 5", got)
	}
}

func TestAllCountsMatchesDirectCounts(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "a", Values: []string{"0", "1", "2"}},
		Attribute{Name: "b", Values: []string{"0", "1"}},
		Attribute{Name: "c", Values: []string{"0", "1", "2", "3"}},
	)
	rng := rand.New(rand.NewSource(7))
	labels := randomLabels(s, 500, rng)
	counts := CountLabels(s, labels)
	all := AllCounts(s, counts)
	for _, p := range Universe(s) {
		want := CountPattern(s, counts, p)
		if all[p.Key()] != want {
			t.Fatalf("AllCounts[%v] = %d, direct = %d", p, all[p.Key()], want)
		}
	}
}

func TestFindMUPsSimple(t *testing.T) {
	s := genderRace()
	// 60 male-white, 60 female-white, 60 male-black, 5 female-black,
	// everything else empty. tau = 50.
	counts := make([]int, s.NumSubgroups())
	counts[SubgroupIndex(s, MustPattern(s, 0, 0))] = 60
	counts[SubgroupIndex(s, MustPattern(s, 1, 0))] = 60
	counts[SubgroupIndex(s, MustPattern(s, 0, 1))] = 60
	counts[SubgroupIndex(s, MustPattern(s, 1, 1))] = 5
	mups := FindMUPs(s, counts, 50)
	// X-black = 65 covered, female-X = 65 covered, so female-black (5)
	// is a MUP. X-hispanic and X-asian (0) are MUPs at level 1.
	want := map[string]int{"X2": 0, "X3": 0, "11": 5}
	if len(mups) != len(want) {
		t.Fatalf("MUPs = %v, want keys %v", mups, want)
	}
	for _, m := range mups {
		if c, ok := want[m.Pattern.Key()]; !ok || c != m.Count {
			t.Errorf("unexpected MUP %v count %d", m.Pattern, m.Count)
		}
	}
}

func TestFindMUPsRootUncovered(t *testing.T) {
	s := threeBinary()
	counts := make([]int, s.NumSubgroups())
	counts[0] = 3
	mups := FindMUPs(s, counts, 50)
	if len(mups) != 1 || mups[0].Pattern.Level() != 0 {
		t.Fatalf("want only the root MUP, got %v", mups)
	}
	if mups[0].Count != 3 {
		t.Errorf("root count = %d, want 3", mups[0].Count)
	}
}

func TestFindMUPsAgainstBruteForce(t *testing.T) {
	schemas := []*Schema{
		genderRace(),
		threeBinary(),
		MustSchema(
			Attribute{Name: "a", Values: []string{"0", "1", "2", "3", "4"}},
			Attribute{Name: "b", Values: []string{"0", "1", "2"}},
		),
	}
	rng := rand.New(rand.NewSource(42))
	for si, s := range schemas {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(400)
			tau := 1 + rng.Intn(60)
			labels := randomLabels(s, n, rng)
			counts := CountLabels(s, labels)
			fast := FindMUPs(s, counts, tau)
			slow := BruteForceMUPs(s, labels, tau)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("schema %d trial %d (n=%d tau=%d): combiner %v != brute force %v",
					si, trial, n, tau, fast, slow)
			}
		}
	}
}

func TestMUPDefinitionProperty(t *testing.T) {
	// Every reported MUP must be uncovered with all parents covered,
	// and no uncovered pattern outside the set may have all parents
	// covered.
	s := genderRace()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		labels := randomLabels(s, rng.Intn(600), rng)
		tau := 1 + rng.Intn(80)
		counts := CountLabels(s, labels)
		all := AllCounts(s, counts)
		mups := FindMUPs(s, counts, tau)
		isMUP := map[string]bool{}
		for _, m := range mups {
			isMUP[m.Pattern.Key()] = true
			if all[m.Pattern.Key()] >= tau {
				t.Fatalf("MUP %v is covered", m.Pattern)
			}
			for _, par := range m.Pattern.Parents() {
				if all[par.Key()] < tau {
					t.Fatalf("MUP %v has uncovered parent %v", m.Pattern, par)
				}
			}
		}
		for _, p := range Universe(s) {
			if isMUP[p.Key()] || all[p.Key()] >= tau {
				continue
			}
			allCovered := true
			for _, par := range p.Parents() {
				if all[par.Key()] < tau {
					allCovered = false
				}
			}
			if allCovered {
				t.Fatalf("pattern %v should have been reported as MUP", p)
			}
		}
	}
}

func TestUncoveredClosure(t *testing.T) {
	s := genderRace()
	counts := make([]int, s.NumSubgroups())
	counts[SubgroupIndex(s, MustPattern(s, 0, 0))] = 100
	unc := UncoveredClosure(s, counts, 50)
	// Covered: root, male-X, X-white, male-white. Everything else
	// (15 - 4 = 11 patterns) is uncovered.
	if len(unc) != 11 {
		t.Fatalf("uncovered closure = %d patterns, want 11", len(unc))
	}
}

func TestPropagateBoundsExactLeaves(t *testing.T) {
	s := genderRace()
	rng := rand.New(rand.NewSource(5))
	labels := randomLabels(s, 300, rng)
	counts := CountLabels(s, labels)
	leaves := make([]LeafBound, s.NumSubgroups())
	for i, c := range counts {
		leaves[i] = ExactLeaf(c)
	}
	bounds, err := PropagateBounds(s, leaves, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Universe(s) {
		want := CountPattern(s, counts, p)
		b := bounds[p.Key()]
		if b.Lo != want || b.Hi != want {
			t.Fatalf("bounds[%v] = %+v, want exact %d", p, b, want)
		}
	}
}

func TestPropagateBoundsSuperGroup(t *testing.T) {
	s := genderRace()
	// Super-group 0 = {female-hispanic, female-asian}, joint total 12,
	// same parent female-X. All other leaves exact.
	leaves := make([]LeafBound, s.NumSubgroups())
	for i := range leaves {
		leaves[i] = ExactLeaf(30)
	}
	fh := SubgroupIndex(s, MustPattern(s, 1, 2))
	fa := SubgroupIndex(s, MustPattern(s, 1, 3))
	leaves[fh] = LeafBound{Lo: 0, Hi: 12, SuperID: 0}
	leaves[fa] = LeafBound{Lo: 0, Hi: 12, SuperID: 0}
	bounds, err := PropagateBounds(s, leaves, map[int]int{0: 12})
	if err != nil {
		t.Fatal(err)
	}
	// female-X contains the whole super-group: exact 30+30+12 = 72.
	fx := bounds[MustPattern(s, 1, Wildcard).Key()]
	if fx.Lo != 72 || fx.Hi != 72 {
		t.Errorf("female-X bounds = %+v, want exact 72", fx)
	}
	// X-hispanic splits it: 30 + [0,12].
	xh := bounds[MustPattern(s, Wildcard, 2).Key()]
	if xh.Lo != 30 || xh.Hi != 42 {
		t.Errorf("X-hispanic bounds = %+v, want [30,42]", xh)
	}
	// Verdicts at tau 40: X-hispanic unknown, female-X covered.
	if v := xh.Verdict(40); v != Unknown {
		t.Errorf("X-hispanic verdict = %v, want unknown", v)
	}
	if v := fx.Verdict(40); v != Covered {
		t.Errorf("female-X verdict = %v, want covered", v)
	}
	if v := xh.Verdict(100); v != Uncovered {
		t.Errorf("verdict at tau=100 = %v, want uncovered", v)
	}
}

func TestPropagateBoundsValidation(t *testing.T) {
	s := genderRace()
	if _, err := PropagateBounds(s, make([]LeafBound, 3), nil); err == nil {
		t.Error("want leaf-arity error")
	}
	leaves := make([]LeafBound, s.NumSubgroups())
	for i := range leaves {
		leaves[i] = ExactLeaf(1)
	}
	leaves[0] = LeafBound{Lo: 5, Hi: 2, SuperID: -1}
	if _, err := PropagateBounds(s, leaves, nil); err == nil {
		t.Error("want invalid-bounds error")
	}
	leaves[0] = LeafBound{Lo: 0, Hi: 2, SuperID: 9}
	if _, err := PropagateBounds(s, leaves, nil); err == nil {
		t.Error("want unknown super-group error")
	}
}

func TestCoverageString(t *testing.T) {
	if Covered.String() != "covered" || Uncovered.String() != "uncovered" || Unknown.String() != "unknown" {
		t.Error("Coverage.String wrong")
	}
}
