package crowd

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// synthResponses builds a redundant labeling of numTasks tasks by
// numWorkers workers (votes assignments per task), where each answer
// is wrong with probability errRate (wrong = truth+1 mod classes).
// Returns the responses in task order and the ground truth.
func synthResponses(rng *rand.Rand, numTasks, numWorkers, numClasses, votes int, errRate float64) ([]Response, []int) {
	truth := make([]int, numTasks)
	var responses []Response
	for t := 0; t < numTasks; t++ {
		truth[t] = rng.Intn(numClasses)
		for v := 0; v < votes; v++ {
			value := truth[t]
			if rng.Float64() < errRate {
				value = (value + 1 + rng.Intn(numClasses-1)) % numClasses
			}
			responses = append(responses, Response{Task: t, Worker: rng.Intn(numWorkers), Value: value})
		}
	}
	return responses, truth
}

// majorityTruth computes the per-task plurality answer (lowest class
// wins ties) as the reference for the noiseless/low-noise property.
func majorityTruth(numTasks, numClasses int, responses []Response) []int {
	counts := make([][]int, numTasks)
	for i := range counts {
		counts[i] = make([]int, numClasses)
	}
	for _, r := range responses {
		counts[r.Task][r.Value]++
	}
	out := make([]int, numTasks)
	for t, c := range counts {
		best := 0
		for j := range c {
			if c[j] > c[best] {
				best = j
			}
		}
		out[t] = best
	}
	return out
}

// TestDawidSkeneAgreesWithMajority: with noiseless answers DS must
// recover the unanimous label, and in the platform's low-noise regime
// it must agree with the majority vote on every task.
func TestDawidSkeneAgreesWithMajority(t *testing.T) {
	for _, tc := range []struct {
		name    string
		errRate float64
	}{
		{"noiseless", 0},
		{"low-noise", 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			responses, truth := synthResponses(rng, 200, 15, 2, 5, tc.errRate)
			res, err := DawidSkene(200, 15, 2, responses, 25)
			if err != nil {
				t.Fatal(err)
			}
			want := majorityTruth(200, 2, responses)
			if !equalLabels(res.Truth, want) {
				t.Fatalf("DS truth disagrees with majority (errRate=%v)", tc.errRate)
			}
			if tc.errRate == 0 && !equalLabels(res.Truth, truth) {
				t.Fatal("noiseless DS truth disagrees with ground truth")
			}
		})
	}
}

// TestDawidSkenePermutationInvariance: shuffling the response slice
// must not change the MAP truth and moves posteriors by at most the
// floating-point reassociation noise (well under 1e-9).
func TestDawidSkenePermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	responses, _ := synthResponses(rng, 150, 12, 3, 5, 0.1)
	base, err := DawidSkene(150, 12, 3, responses, 25)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		shuffled := append([]Response(nil), responses...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := DawidSkene(150, 12, 3, shuffled, 25)
		if err != nil {
			t.Fatal(err)
		}
		if !equalLabels(got.Truth, base.Truth) {
			t.Fatalf("trial %d: MAP truth changed under permutation", trial)
		}
		if d := maxPosteriorDiff(got.Posterior, base.Posterior); d > 1e-9 {
			t.Fatalf("trial %d: posterior moved %g > 1e-9 under permutation", trial, d)
		}
	}
}

func maxPosteriorDiff(a, b [][]float64) float64 {
	max := 0.0
	for t := range a {
		for j := range a[t] {
			if d := math.Abs(a[t][j] - b[t][j]); d > max {
				max = d
			}
		}
	}
	return max
}

// TestIncrementalColdMatchesBatchExactly: the first Infer over a fully
// loaded log shares the batch estimator's EM core and initialization,
// so the result must be bit-identical — not merely close.
func TestIncrementalColdMatchesBatchExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	responses, _ := synthResponses(rng, 120, 10, 2, 3, 0.08)
	batch, err := DawidSkene(120, 10, 2, responses, 25)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalDS(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range responses {
		if err := inc.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	cold, err := inc.Infer(25)
	if err != nil {
		t.Fatal(err)
	}
	if !equalLabels(cold.Truth, batch.Truth) {
		t.Fatal("cold incremental MAP differs from batch")
	}
	if cold.Iterations != batch.Iterations {
		t.Fatalf("cold incremental ran %d iterations, batch %d", cold.Iterations, batch.Iterations)
	}
	for tt := range batch.Posterior {
		for j := range batch.Posterior[tt] {
			if cold.Posterior[tt][j] != batch.Posterior[tt][j] {
				t.Fatalf("task %d class %d: cold %v != batch %v (must be bit-identical)",
					tt, j, cold.Posterior[tt][j], batch.Posterior[tt][j])
			}
		}
	}
	for w := range batch.WorkerAccuracy {
		if cold.WorkerAccuracy[w] != batch.WorkerAccuracy[w] {
			t.Fatalf("worker %d accuracy differs", w)
		}
	}
}

// TestIncrementalWarmMatchesBatch: syncing a growing log in chunks and
// warm-starting EM after each must land on the batch answer — same MAP
// truth, posteriors within 1e-9 — and, once the new chunks are small
// relative to the converged log (the K << N regime the estimator is
// built for), spend fewer EM iterations than a cold solve.
func TestIncrementalWarmMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	responses, _ := synthResponses(rng, 600, 15, 2, 3, 0.05)
	log := &ResponseLog{}
	inc, err := NewIncrementalDS(15, 2)
	if err != nil {
		t.Fatal(err)
	}

	// One big initial sync, then small 20-task deltas.
	chunkEnds := []int{1680, 1740, 1800}
	numTasks := 0
	start := 0
	warmIters, batchIters := 0, 0
	for _, end := range chunkEnds {
		for _, r := range responses[start:end] {
			log.mu.Lock()
			log.responses = append(log.responses, r)
			log.mu.Unlock()
			if r.Task+1 > numTasks {
				numTasks = r.Task + 1
			}
		}
		if n, err := inc.SyncLog(log); err != nil {
			t.Fatal(err)
		} else if n != end-start {
			t.Fatalf("SyncLog consumed %d responses, want %d", n, end-start)
		}
		// Generous iteration cap so both runs stop on the dsEps
		// convergence test rather than the cap.
		warm, err := inc.Infer(500)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := DawidSkene(numTasks, 15, 2, responses[:end], 500)
		if err != nil {
			t.Fatal(err)
		}
		if !equalLabels(warm.Truth, batch.Truth) {
			t.Fatalf("prefix %d: warm MAP differs from batch", end)
		}
		if d := maxPosteriorDiff(warm.Posterior, batch.Posterior); d > 1e-9 {
			t.Fatalf("prefix %d: warm posterior off by %g > 1e-9", end, d)
		}
		warmIters, batchIters = warm.Iterations, batch.Iterations
		start = end
	}
	// The final delta re-initialized only 20 of 600 tasks; warm-started
	// EM must converge in strictly fewer iterations than a cold solve.
	if warmIters >= batchIters {
		t.Fatalf("final warm run took %d iterations, batch %d — warm start saved nothing", warmIters, batchIters)
	}
}

// TestResponseLogConcurrentAppendRead drives concurrent record/Len/
// ResponsesSince/HITs calls (the -race build makes this a locking
// proof) and checks that delta reads stitch back into the full log.
func TestResponseLogConcurrentAppendRead(t *testing.T) {
	log := &ResponseLog{}
	workers := []*Worker{{ID: 3}, {ID: 7}}
	const hits = 500

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < hits; i++ {
			log.record(workers, []bool{i%2 == 0, i%3 == 0})
		}
	}()
	go func() {
		defer wg.Done()
		seen := 0
		for log.HITs() < hits {
			n := log.Len()
			if n < seen {
				t.Errorf("Len went backwards: %d -> %d", seen, n)
				return
			}
			delta := log.ResponsesSince(seen)
			seen += len(delta)
		}
	}()
	wg.Wait()

	if got := log.Len(); got != 2*hits {
		t.Fatalf("Len = %d, want %d", got, 2*hits)
	}
	full := log.Responses()
	tail := log.ResponsesSince(2 * hits / 2)
	for i, r := range tail {
		if full[hits+i] != r {
			t.Fatalf("ResponsesSince misaligned at %d", i)
		}
	}
	if log.ResponsesSince(-5)[0] != full[0] || log.ResponsesSince(1<<30) != nil {
		t.Fatal("ResponsesSince out-of-range clamping broken")
	}
}

// FuzzIncrementalDS decodes an arbitrary byte string into responses
// and checks the structural invariants: a cold incremental run is
// bit-identical to the batch estimator, and a warm-started re-run
// still yields normalized posteriors with Truth = argmax.
func FuzzIncrementalDS(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 1, 0, 2, 0, 1})
	f.Add([]byte{5, 3, 2, 5, 1, 2, 0, 0, 0, 1, 2, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const numWorkers, numClasses = 4, 3
		var responses []Response
		numTasks := 1
		for i := 0; i+2 < len(data) && len(responses) < 64; i += 3 {
			r := Response{
				Task:   int(data[i]) % 8,
				Worker: int(data[i+1]) % numWorkers,
				Value:  int(data[i+2]) % numClasses,
			}
			if r.Task+1 > numTasks {
				numTasks = r.Task + 1
			}
			responses = append(responses, r)
		}

		batch, err := DawidSkene(numTasks, numWorkers, numClasses, responses, 25)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewIncrementalDS(numWorkers, numClasses)
		if err != nil {
			t.Fatal(err)
		}
		half := len(responses) / 2
		for _, r := range responses[:half] {
			if err := inc.Observe(r); err != nil {
				t.Fatal(err)
			}
		}
		if half > 0 {
			if _, err := inc.Infer(25); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range responses[half:] {
			if err := inc.Observe(r); err != nil {
				t.Fatal(err)
			}
		}

		// Warm run: structurally valid posteriors, Truth = argmax.
		if inc.Tasks() > 0 {
			warm, err := inc.Infer(25)
			if err != nil {
				t.Fatal(err)
			}
			for tt, p := range warm.Posterior {
				sum := 0.0
				best := 0
				for j, v := range p {
					if math.IsNaN(v) || v < 0 || v > 1+1e-12 {
						t.Fatalf("task %d: invalid posterior %v", tt, p)
					}
					sum += v
					if v > p[best] {
						best = j
					}
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("task %d: posterior sums to %v", tt, sum)
				}
				if warm.Truth[tt] != best {
					t.Fatalf("task %d: Truth %d != argmax %d", tt, warm.Truth[tt], best)
				}
			}
		}

		// Cold run over the same responses is bit-identical to batch.
		cold, err := NewIncrementalDS(numWorkers, numClasses)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range responses {
			if err := cold.Observe(r); err != nil {
				t.Fatal(err)
			}
		}
		if len(responses) == 0 {
			return
		}
		res, err := cold.Infer(25)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt < len(res.Truth) && tt < len(batch.Truth); tt++ {
			if res.Truth[tt] != batch.Truth[tt] {
				t.Fatalf("task %d: cold truth %d != batch %d", tt, res.Truth[tt], batch.Truth[tt])
			}
			for j := range batch.Posterior[tt] {
				if res.Posterior[tt][j] != batch.Posterior[tt][j] {
					t.Fatalf("task %d class %d: cold posterior not bit-identical to batch", tt, j)
				}
			}
		}
	})
}

// BenchmarkDawidSkeneIncremental compares folding K new HITs into a
// converged incremental state (warm) against re-solving the whole log
// from scratch (batch).
func BenchmarkDawidSkeneIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(71))
	base, _ := synthResponses(rng, 3000, 20, 2, 3, 0.05)
	delta, _ := synthResponses(rng, 50, 20, 2, 3, 0.05)
	for i := range delta {
		delta[i].Task += 3000 // the new HITs extend the task range
	}
	all := append(append([]Response(nil), base...), delta...)

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DawidSkene(3050, 20, 2, all, 25); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inc, err := NewIncrementalDS(20, 2)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range base {
				if err := inc.Observe(r); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := inc.Infer(25); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, r := range delta {
				if err := inc.Observe(r); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := inc.Infer(25); err != nil {
				b.Fatal(err)
			}
		}
	})
}
