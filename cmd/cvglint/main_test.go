package main_test

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCvglint compiles the tool once per test binary.
func buildCvglint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cvglint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cvglint: %v\n%s", err, out)
	}
	return bin
}

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStandaloneFindsViolation drives the go-list loader path: the
// fixture module holds one global-rand draw, the tool must exit 1 and
// name it.
func TestStandaloneFindsViolation(t *testing.T) {
	bin := buildCvglint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = fixtureDir(t)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "shared global Source") {
		t.Fatalf("missing globalrand diagnostic in output:\n%s", out)
	}
	if !strings.Contains(string(out), "bad.go:10") {
		t.Fatalf("diagnostic not positioned at bad.go:10:\n%s", out)
	}
}

// TestVetProtocolHandshake checks the two cmd/go probes: -V=full must
// produce the "<name> version devel … buildID=…" shape the build
// cache parses, and -flags must answer a JSON flag list.
func TestVetProtocolHandshake(t *testing.T) {
	bin := buildCvglint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	if len(f) < 3 || f[1] != "version" || f[2] != "devel" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output not in cmd/go's expected shape: %q", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
}

// TestUnitcheckerConfig drives the vet.cfg path the way go vet does:
// a JSON config naming the fixture unit with export data for its
// imports, expecting the diagnostic on stderr, exit 1, and the vetx
// output file written for the build cache.
func TestUnitcheckerConfig(t *testing.T) {
	bin := buildCvglint(t)
	dir := fixtureDir(t)

	// Export data for the fixture's import graph, exactly what cmd/go
	// would put in PackageFile.
	listCmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "math/rand")
	listCmd.Dir = dir
	listOut, err := listCmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	packageFile := map[string]string{}
	importMap := map[string]string{}
	dec := json.NewDecoder(strings.NewReader(string(listOut)))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		importMap[p.ImportPath] = p.ImportPath
	}

	work := t.TempDir()
	vetx := filepath.Join(work, "unit.vetx")
	cfg := map[string]any{
		"ID":          "badmod",
		"Compiler":    "gc",
		"Dir":         dir,
		"ImportPath":  "badmod",
		"GoVersion":   "go1.24",
		"GoFiles":     []string{filepath.Join(dir, "bad.go")},
		"ImportMap":   importMap,
		"PackageFile": packageFile,
		"VetxOnly":    false,
		"VetxOutput":  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(work, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, cfgPath)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 from unit with a violation, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "shared global Source") {
		t.Fatalf("missing diagnostic:\n%s", out)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx output not written: %v", err)
	}

	// The VetxOnly dependency pass must stay silent, succeed, and
	// still write its output file.
	cfg["VetxOnly"] = true
	vetxOnly := filepath.Join(work, "deponly.vetx")
	cfg["VetxOutput"] = vetxOnly
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, cfgPath).CombinedOutput(); err != nil {
		t.Fatalf("VetxOnly pass failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(vetxOnly); err != nil {
		t.Fatalf("VetxOnly output not written: %v", err)
	}
}
