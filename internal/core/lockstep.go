package core

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the deterministic lockstep scheduler behind
// MultipleOptions.Lockstep. The free-running engine (parallel.go) is
// bit-equal across parallelism levels only for order-independent
// oracles: an order-dependent oracle like the crowd Platform consumes
// its RNG per HIT in arrival order, and arrival order under a
// free-running pool depends on goroutine interleaving. Lockstep
// removes that dependence by executing audits in virtual rounds:
//
//   - every audit task runs in its own goroutine regardless of
//     Parallelism, so the set of concurrently live tasks — and with it
//     the composition of every round — never depends on the pool
//     width;
//   - a task that needs an oracle answer parks its query and blocks;
//     when every live task is parked (or finished), the round is
//     complete;
//   - the round's queries are ordered canonically — by task index,
//     then per-task query sequence, where the task index encodes the
//     engine's (super-group, member) ordering — and committed through
//     one BatchOracle round (SetQueryBatch, then PointQueryBatch);
//   - answers release the tasks, which compute to their next query.
//
// Because round composition and commit order are both schedule-free,
// an order-dependent oracle that implements BatchOracle natively (the
// crowd Platform answers a batch in request order under one lock) sees
// the identical query sequence at every Parallelism value, making the
// full crowdsourced pipeline — worker draws, Dawid-Skene-style
// aggregation, pricing — bit-for-bit reproducible. Parallelism only
// bounds the pool AsBatchOracle uses to lift oracles without native
// batching, so batched rounds still amortize per-HIT crowd latency.

// lockstepQuery is one parked oracle query awaiting its round.
type lockstepQuery struct {
	// task and seq give the query its canonical position: task is the
	// audit's index in the engine's fixed task order, seq the query's
	// per-task issue number.
	task, seq int
	// point selects PointQuery (id) over a set query (req).
	point bool
	id    dataset.ObjectID
	req   SetRequest
	// done publishes the outcome under the scheduler lock.
	done   bool
	ans    bool
	labels []int
	err    error
}

// orderCanonically sorts a round into its commit order: by task index,
// then per-task sequence. The fuzz harness drives this ordering with
// randomized arrival orders.
func orderCanonically(round []*lockstepQuery) {
	sort.Slice(round, func(i, j int) bool {
		if round[i].task != round[j].task {
			return round[i].task < round[j].task
		}
		return round[i].seq < round[j].seq
	})
}

// lockstep coordinates one group of audit tasks through virtual
// rounds.
type lockstep struct {
	bo  BatchOracle
	ctx context.Context

	mu     sync.Mutex
	cond   *sync.Cond
	live   int // tasks neither finished nor aborted
	parked []*lockstepQuery
	err    error // sticky abort: set once a task finishes with an error

	// Round scratch, recycled across rounds so a long audit stops
	// allocating per round: spare ping-pongs with parked's backing
	// array, and sets/points/setReqs/pointIDs are the commit path's
	// working slices. All of it is touched only under mu or while every
	// live task sits in cond.Wait, and none of it is ever handed to
	// code outside the scheduler (batch oracles receive setReqs/pointIDs
	// for the duration of the call only — the middleware stack clones
	// what it retains).
	spare    []*lockstepQuery
	sets     []*lockstepQuery
	points   []*lockstepQuery
	setReqs  []SetRequest
	pointIDs []dataset.ObjectID
}

// newLockstep builds a scheduler for n tasks committing rounds through
// bo under ctx.
func newLockstep(ctx context.Context, bo BatchOracle, n int) *lockstep {
	s := &lockstep{bo: bo, ctx: ctx, live: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// submit parks one query and blocks until its round commits. After an
// abort the query fails immediately without reaching the oracle.
func (s *lockstep) submit(q *lockstepQuery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		q.err, q.done = s.err, true
		return
	}
	s.parked = append(s.parked, q)
	s.maybeCommit()
	for !q.done {
		s.cond.Wait()
	}
}

// finish retires one task; a non-nil error aborts the remaining tasks
// (their next submit fails instead of posting more HITs a doomed audit
// would pay for). Callers hold no lock.
func (s *lockstep) finish(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live--
	if err != nil && s.err == nil {
		s.err = err
	}
	s.maybeCommit()
}

// maybeCommit commits the round once every live task has parked.
// Callers hold s.mu; the parked tasks are all inside cond.Wait, so the
// oracle round runs without contention. A cancelled context aborts the
// round BEFORE it reaches the oracle: every round either commits in
// full (and is journaled, if a journal is in the stack) or never
// touches the crowd — the invariant that makes kill-at-round-K exactly
// resumable.
func (s *lockstep) maybeCommit() {
	if len(s.parked) == 0 || len(s.parked) < s.live {
		return
	}
	round := s.parked
	s.parked = s.spare[:0]
	orderCanonically(round)
	if s.err == nil {
		s.err = s.ctx.Err()
	}
	if s.err != nil {
		failRound(round, s.err)
	} else {
		s.commit(round)
	}
	// Recycle the round's backing array: every query is done, so no
	// waiter holds a reference into it past the broadcast.
	s.spare = round[:0]
	s.cond.Broadcast()
}

// commit posts one canonical round: set queries first, point queries
// second, each kind as a single batch in canonical order. A batch
// error fails the failing queries uniformly — every parked task behind
// the failure sees the same error, so which error surfaces never
// depends on scheduling, and a task-side retry policy re-parks its
// query in a later round (re-posting the round's HITs, the price of
// keeping failure handling deterministic). A partial-prefix batch (a
// BudgetedOracle admitting only what the remaining budget affords)
// delivers the committed prefix's answers to their tasks and fails the
// rest of the round — the unadmitted sets AND every point query, which
// sit after the sets in canonical order — with the batch's error, so a
// budget exhausts at one deterministic point in the canonical query
// sequence and no task ever hangs on an unanswered round.
func (s *lockstep) commit(round []*lockstepQuery) {
	sets, points := s.sets[:0], s.points[:0]
	for _, q := range round {
		if q.point {
			points = append(points, q)
		} else {
			sets = append(sets, q)
		}
	}
	s.sets, s.points = sets, points
	if len(sets) > 0 {
		reqs := s.setReqs[:0]
		for _, q := range sets {
			reqs = append(reqs, q.req)
		}
		s.setReqs = reqs
		answers, err := s.bo.SetQueryBatch(reqs)
		for i := 0; i < len(answers) && i < len(sets); i++ {
			sets[i].ans, sets[i].done = answers[i], true
		}
		if err != nil {
			failQueries(sets[len(answers):], err)
			failQueries(points, err)
			return
		}
	}
	if len(points) > 0 {
		ids := s.pointIDs[:0]
		for _, q := range points {
			ids = append(ids, q.id)
		}
		s.pointIDs = ids
		labels, err := s.bo.PointQueryBatch(ids)
		for i := 0; i < len(labels) && i < len(points); i++ {
			points[i].labels, points[i].done = labels[i], true
		}
		if err != nil {
			failQueries(points[len(labels):], err)
			return
		}
	}
	for _, q := range round {
		q.done = true
	}
}

// failRound delivers one error to every query of a round.
func failRound(round []*lockstepQuery, err error) {
	failQueries(round, err)
}

// failQueries delivers one error to a subset of a round's queries.
func failQueries(queries []*lockstepQuery, err error) {
	for _, q := range queries {
		q.err, q.done = err, true
	}
}

// lockstepOracle is the per-task Oracle facade: each query parks in
// the scheduler and returns with its round's answer. One goroutine
// owns it, so the sequence counter needs no lock, and because a task
// has at most one query in flight (submit blocks until the round
// delivers), the parking slot q is reused across the task's queries
// instead of allocating one per HIT. The scheduler never retains a
// query past its round's broadcast, and the labels a point query
// returns are the batch oracle's own allocation, so slot reuse cannot
// alias an answer a caller holds.
type lockstepOracle struct {
	s    *lockstep
	task int
	seq  int
	q    lockstepQuery
}

// ask routes the parked slot through the scheduler.
func (o *lockstepOracle) ask() {
	o.q.task, o.q.seq = o.task, o.seq
	o.seq++
	o.s.submit(&o.q)
}

// SetQuery implements Oracle.
func (o *lockstepOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	o.q = lockstepQuery{req: SetRequest{IDs: ids, Group: g}}
	o.ask()
	return o.q.ans, o.q.err
}

// ReverseSetQuery implements Oracle.
func (o *lockstepOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	o.q = lockstepQuery{req: SetRequest{IDs: ids, Group: g, Reverse: true}}
	o.ask()
	return o.q.ans, o.q.err
}

// PointQuery implements Oracle.
func (o *lockstepOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	o.q = lockstepQuery{point: true, id: id}
	o.ask()
	return o.q.labels, o.q.err
}

// runLockstep runs fn(i) for every task in [0, n) in lockstep rounds:
// all n tasks are live at once (goroutines are cheap; the oracle round
// is the scarce resource), each audits through its own per-task Oracle
// facade, and rounds commit through AsBatchOracle(o, parallelism) in
// canonical order. Error surfacing follows task-index order, never
// finish order: a failed round delivers one error to every parked
// task, a task failing on its own aborts the rest before they post
// further queries, and the lowest-indexed task's error is returned —
// so which error surfaces does not depend on goroutine scheduling.
func runLockstep(ctx context.Context, o Oracle, parallelism, n int, fn func(i int, audit Oracle) error) error {
	if n == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := newLockstep(ctx, AsBatchOracle(o, normalizeParallelism(parallelism)), n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := fn(i, &lockstepOracle{s: s, task: i})
			errs[i] = err
			s.finish(err)
		}(i)
	}
	wg.Wait()
	return firstError(errs)
}

// runAuditPool dispatches n independent audits on the engine selected
// by the options: lockstep rounds when opts.Lockstep, the free-running
// bounded pool otherwise. seeds, when non-nil and retries are enabled,
// hand audit i a retry wrapper with its own child jitter RNG; under
// lockstep the wrapper sits task-side, so a retried query simply parks
// again in a later round.
func runAuditPool(o Oracle, opts MultipleOptions, seeds []int64, n int, fn func(i int, audit Oracle) error) error {
	ctx := opts.context()
	wrap := func(base Oracle, i int) Oracle {
		if seeds == nil || !opts.Retry.Enabled() {
			return base
		}
		return withRetry(ctx, base, opts.Retry, rand.New(rand.NewSource(seeds[i])))
	}
	if opts.Lockstep {
		return runLockstep(ctx, o, opts.Parallelism, n, func(i int, audit Oracle) error {
			return fn(i, wrap(audit, i))
		})
	}
	return RunBounded(opts.Parallelism, n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i, wrap(o, i))
	})
}

// DelayOracle adds a fixed per-query wall-clock delay in front of an
// oracle, modeling what dominates a real deployment: every HIT takes
// time to come back from the crowd. It deliberately does NOT implement
// BatchOracle — AsBatchOracle lifts it across a worker pool, so a
// batched round overlaps its queries' round-trips the way concurrently
// posted HITs do. Safe for concurrent use when Inner is.
type DelayOracle struct {
	Inner Oracle
	Delay time.Duration
}

// SetQuery implements Oracle.
func (o DelayOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	time.Sleep(o.Delay)
	return o.Inner.SetQuery(ids, g)
}

// ReverseSetQuery implements Oracle.
func (o DelayOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	time.Sleep(o.Delay)
	return o.Inner.ReverseSetQuery(ids, g)
}

// PointQuery implements Oracle.
func (o DelayOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	time.Sleep(o.Delay)
	return o.Inner.PointQuery(id)
}
