package crowd

// The adversarial axis of the conformance matrix: the same full crowd
// pipeline, but with a deterministic stripe of the worker pool answering
// through an adversarial strategy (lazy always-yes, random spam,
// colluding liar) and — on half the cells — a core.TrustOracle stacked
// above the platform, interleaving gold probes and screening distrusted
// workers out of future assignment draws. Everything observable —
// verdicts, task tallies, ledger spend, transcript, Dawid-Skene truth
// inference AND the trust report — must stay byte-identical at every
// engine Parallelism value under lockstep, and a zero-rate adversary
// config must be a byte-for-byte no-op against the honest matrix.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// adversarialInstance extends a conformance instance with the adversary
// axis. The embedded instance is drawn FIRST, so the base pipeline's
// RNG transcript is frozen: an adversarial instance differs from its
// honest twin only in the strategy overlay, never in the drawn knobs.
type adversarialInstance struct {
	conformanceInstance
	rate     float64
	strategy string
	trust    bool
}

// generateAdversarialInstance draws the base instance, then the
// adversary axis from the SAME rng (extra draws strictly after the base
// generation, preserving generateInstance's draw sequence).
func generateAdversarialInstance(rng *rand.Rand, kind string) adversarialInstance {
	ai := adversarialInstance{conformanceInstance: generateInstance(rng, kind)}
	ai.rate = []float64{0.25, 0.5}[rng.Intn(2)]
	ai.strategy = []string{"lazy-yes", "random-spam", "colluding-liar"}[rng.Intn(3)]
	ai.trust = rng.Intn(2) == 0
	return ai
}

// adversarialPlatformFor is platformFor with the adversary overlay.
func adversarialPlatformFor(t *testing.T, ai adversarialInstance, d *dataset.Dataset, log *ResponseLog) *Platform {
	t.Helper()
	cfg := conformanceConfig(ai.conformanceInstance, log)
	strat, err := StrategyByName(ai.strategy)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adversary = AdversaryConfig{Rate: ai.rate, Strategy: strat}
	p, err := NewPlatform(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// trustProbesFor derives the cell's gold-probe battery from ground
// truth — a pure function of the instance, identical across
// parallelism levels.
func trustProbesFor(d *dataset.Dataset, ai adversarialInstance) []core.GoldProbe {
	groups := pattern.GroupsForAttribute(ai.schema, 0)
	return core.GoldProbes(d, groups, 6, ai.auditSeed+13)
}

// runAdversarialCell executes one (instance, parallelism) cell and
// serializes runConformanceCell's observable state plus the trust
// report.
func runAdversarialCell(t *testing.T, ai adversarialInstance, parallelism int) string {
	t.Helper()
	d := dataset.MustFromCounts(ai.schema, ai.counts, rand.New(rand.NewSource(ai.platformSeed+1)))
	log := &ResponseLog{}
	p := adversarialPlatformFor(t, ai, d, log)

	var oracle core.Oracle = p
	var tr *core.TrustOracle
	if ai.trust {
		var err error
		tr, err = core.NewTrustOracle(p, core.TrustConfig{
			Probes: trustProbesFor(d, ai),
			Feed:   log,
			Screen: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle = tr
	}

	opts := core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(ai.auditSeed)),
		Parallelism: parallelism,
		Lockstep:    true,
	}
	var audit string
	switch ai.kind {
	case "intersectional":
		res, err := core.IntersectionalCoverage(oracle, d.IDs(), ai.setSize, ai.tau, ai.schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		audit = fmt.Sprintf("%+v|%+v|%d|%d", res.Verdicts, res.MUPs, res.ResolutionTasks, res.Tasks)
	case "classifier":
		g := pattern.GroupsForAttribute(ai.schema, 0)[1]
		predicted := d.PredictedSet(g, ai.classifierTP, ai.classifierFP)
		res, err := core.ClassifierCoverage(oracle, d.IDs(), predicted, ai.setSize, ai.tau, g,
			core.ClassifierOptions{
				Rng:         rand.New(rand.NewSource(ai.auditSeed)),
				Parallelism: parallelism,
				Lockstep:    true,
			})
		if err != nil {
			t.Fatal(err)
		}
		audit = fmt.Sprintf("%+v", res)
	default:
		groups := pattern.GroupsForAttribute(ai.schema, 0)
		res, err := core.MultipleCoverage(oracle, d.IDs(), ai.setSize, ai.tau, groups, opts)
		if err != nil {
			t.Fatal(err)
		}
		audit = fmt.Sprintf("%+v|%+v|%d|%d|%d", res.Results, res.SuperAudits,
			res.SampleTasks, res.AuditTasks, res.Tasks)
	}

	spend := p.Ledger().Snapshot().String()
	ds := "no-hits"
	if log.HITs() > 0 {
		res, err := DawidSkene(log.HITs(), p.PoolSize(), 2, log.Responses(), 25)
		if err != nil {
			t.Fatal(err)
		}
		ds = fmt.Sprintf("%v|%.9v|%d", res.Truth, res.WorkerAccuracy, res.Iterations)
	}
	trust := "no-trust"
	if tr != nil {
		trust = fmt.Sprintf("%+v", tr.Report())
	}
	return fmt.Sprintf("audit=%s\nspend=%s\neligible=%d\nhits=%d\ndawid-skene=%s\ntrust=%s",
		audit, spend, p.EligibleWorkers(), log.HITs(), ds, trust)
}

// TestAdversarialCrossParallelismConformance is the adversary axis of
// the conformance matrix: randomized pipeline instances with an
// adversarial worker stripe, half of them under an active TrustOracle,
// each run at P in {1, 2, 4, 16} under lockstep, asserting
// byte-identical verdicts, spend, transcripts, truth inference and
// trust reports.
func TestAdversarialCrossParallelismConformance(t *testing.T) {
	instances := 18
	if testing.Short() {
		instances = 6
	}
	rng := rand.New(rand.NewSource(20248))
	for i := 0; i < instances; i++ {
		ai := generateAdversarialInstance(rng, conformanceKind(i))
		t.Run(fmt.Sprintf("%02d-%s-%s-r%v-trust=%v", i, ai.kind, ai.strategy, ai.rate, ai.trust), func(t *testing.T) {
			var base string
			for _, par := range []int{1, 2, 4, 16} {
				got := runAdversarialCell(t, ai, par)
				if par == 1 {
					base = got
					continue
				}
				if got != base {
					t.Fatalf("parallelism %d diverged from parallelism 1:\n--- P=%d ---\n%s\n--- P=1 ---\n%s\n(instance %+v)",
						par, par, got, base, ai)
				}
			}
		})
	}
}

// TestAdversarialMatrixCoverage guards the generator: every strategy,
// both rates, and both trust settings must actually occur, or the
// adversarial conformance claim silently narrows.
func TestAdversarialMatrixCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(20248))
	strategies := map[string]int{}
	rates := map[float64]int{}
	trust := map[bool]int{}
	for i := 0; i < 18; i++ {
		ai := generateAdversarialInstance(rng, conformanceKind(i))
		strategies[ai.strategy]++
		rates[ai.rate]++
		trust[ai.trust]++
	}
	for _, s := range []string{"lazy-yes", "random-spam", "colluding-liar"} {
		if strategies[s] < 2 {
			t.Errorf("only %d %s instances in the adversarial matrix", strategies[s], s)
		}
	}
	if rates[0.25] < 3 || rates[0.5] < 3 {
		t.Errorf("rate coverage too thin: %v", rates)
	}
	if trust[true] < 4 || trust[false] < 4 {
		t.Errorf("trust coverage too thin: %v", trust)
	}
}

// TestZeroRateAdversaryIsNoOp pins the frozen-RNG invariant at the
// matrix level: a cell with adversary rate 0 and no trust stack is
// byte-identical to the honest conformance cell for the same embedded
// instance.
func TestZeroRateAdversaryIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(20249))
	for i := 0; i < 4; i++ {
		ai := generateAdversarialInstance(rng, conformanceKind(i))
		ai.rate = 0
		ai.strategy = ""
		ai.trust = false
		honest := runConformanceCell(t, ai.conformanceInstance, 4)
		adv := runAdversarialCell(t, ai, 4)
		if adv != honest+"\ntrust=no-trust" {
			t.Fatalf("zero-rate adversary cell diverged from honest cell:\n--- adversary-config ---\n%s\n--- honest ---\n%s",
				adv, honest)
		}
	}
}

// TestAdversaryStripeDeterministic pins the RNG-free adversary
// assignment: the stripe marks floor(n*rate) workers at positions that
// depend only on (index, rate), never on any RNG.
func TestAdversaryStripeDeterministic(t *testing.T) {
	mkPool := func(n int) []*Worker {
		pool := make([]*Worker, n)
		for i := range pool {
			pool[i] = &Worker{ID: i}
		}
		return pool
	}
	marked := func(pool []*Worker) []int {
		var ids []int
		for _, w := range pool {
			if _, ok := w.Adversarial(); ok {
				ids = append(ids, w.ID)
			}
		}
		return ids
	}
	cases := []struct {
		n    int
		rate float64
		want int
	}{
		{8, 0.25, 2},
		{8, 0.5, 4},
		{10, 0.3, 3},
		{10, 0, 0},
		{10, 1, 10},
		{7, 0.5, 3},
	}
	for _, c := range cases {
		a := AdversaryConfig{Rate: c.rate, Strategy: LazyYes{}}
		poolA, poolB := mkPool(c.n), mkPool(c.n)
		a.assignAdversaries(poolA)
		a.assignAdversaries(poolB)
		if got := len(marked(poolA)); got != c.want {
			t.Errorf("n=%d rate=%v: marked %d workers, want %d", c.n, c.rate, got, c.want)
		}
		if fmt.Sprint(marked(poolA)) != fmt.Sprint(marked(poolB)) {
			t.Errorf("n=%d rate=%v: stripe not deterministic: %v vs %v",
				c.n, c.rate, marked(poolA), marked(poolB))
		}
	}
}

// TestTrustScreeningExcludesOnlyAdversaries is the semantic check on a
// colluding-liar cell: with a minority stripe of liars and a policy
// leaning on gold-probe evidence (the consensus can be corrupted by
// collusion, a gold answer cannot), every worker the middleware
// excludes must actually be adversarial, and with liars answering every
// gold probe wrong, at least one is.
func TestTrustScreeningExcludesOnlyAdversaries(t *testing.T) {
	rng := rand.New(rand.NewSource(20250))
	excludedSomewhere := false
	for i := 0; i < 6; i++ {
		ai := generateAdversarialInstance(rng, "multiple")
		ai.strategy = "colluding-liar"
		ai.rate = 0.25
		ai.trust = true
		ai.assignments = 3       // honest-majority consensus per HIT
		ai.qualification = false // keep the full stripe in the pool
		ai.rating = false

		d := dataset.MustFromCounts(ai.schema, ai.counts, rand.New(rand.NewSource(ai.platformSeed+1)))
		log := &ResponseLog{}
		p := adversarialPlatformFor(t, ai, d, log)
		tr, err := core.NewTrustOracle(p, core.TrustConfig{
			Policy: core.TrustPolicy{
				ProbeEvery:          1, // maximize gold evidence
				ContradictionWeight: 0.01,
				DistrustBelow:       -4,
			},
			Probes: trustProbesFor(d, ai),
			Feed:   log,
			Screen: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		groups := pattern.GroupsForAttribute(ai.schema, 0)
		if _, err := core.MultipleCoverage(tr, d.IDs(), ai.setSize, ai.tau, groups, core.MultipleOptions{
			Rng:      rand.New(rand.NewSource(ai.auditSeed)),
			Lockstep: true,
		}); err != nil {
			t.Fatal(err)
		}

		adversarial := map[int]bool{}
		for _, w := range p.Workers() {
			if _, ok := w.Adversarial(); ok {
				adversarial[w.ID] = true
			}
		}
		rep := tr.Report()
		for _, w := range rep.Workers {
			if w.Excluded {
				excludedSomewhere = true
				if !adversarial[w.Worker] {
					t.Errorf("instance %d: honest worker %d screened out (report %+v)", i, w.Worker, w)
				}
			}
		}
	}
	if !excludedSomewhere {
		t.Error("no colluding liar was ever excluded across 6 instances; screening is inert")
	}
}

// TestTrustReportSerializesScores guards the conformance serialization:
// the trust line must actually carry per-worker scores (a regression
// here would turn the adversarial matrix's trust comparison into a
// comparison of empty strings).
func TestTrustReportSerializesScores(t *testing.T) {
	rng := rand.New(rand.NewSource(20251))
	ai := generateAdversarialInstance(rng, "multiple")
	ai.trust = true
	cell := runAdversarialCell(t, ai, 2)
	if !strings.Contains(cell, "trust={") || !strings.Contains(cell, "ProbesIssued") {
		t.Fatalf("trust report missing from cell state:\n%s", cell)
	}
}
