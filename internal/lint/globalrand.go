package lint

import (
	"go/ast"
	"go/types"

	"imagecvg/internal/lint/analysis"
)

// GlobalRand flags randomness that escapes the seeded child-RNG tree,
// anywhere in the module outside test files:
//
//   - package-level math/rand (and math/rand/v2) draws — rand.Intn,
//     rand.Perm, rand.Shuffle, rand.Seed, … — which consume the shared
//     global Source, so concurrent audits interleave draws and no
//     transcript is reproducible;
//   - time-seeded sources — rand.New(rand.NewSource(time.Now()…)) and
//     v2 equivalents — which are deterministic per run but different
//     every run, breaking golden files and kill/resume byte-identity.
//
// All randomness must flow through *rand.Rand values seeded from the
// audit's root seed (the PR 7/PR 8 RNG pins: the per-HIT draw
// transcript is frozen). Constructors (rand.New, rand.NewSource,
// rand.NewZipf, v2's NewPCG/NewChaCha8) are allowed when their seeds
// are derived values. Suppress with //lint:rand <why>.
var GlobalRand = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flags global math/rand draws and time-seeded RNG sources",
	Run:  runGlobalRand,
}

// randConstructors are package-level math/rand functions that build
// sources or generators rather than drawing from the global Source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		dirs := directives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if !randConstructors[fn.Name()] {
				if !suppressed(pass, dirs, sel.Pos(), "rand") {
					pass.Reportf(sel.Pos(), "package-level %s.%s draws from the shared global Source: route randomness through a seeded *rand.Rand child or annotate //lint:rand <why>", fn.Pkg().Path(), fn.Name())
				}
				return true
			}
			return true
		})
		// Time-seeded constructors need the call context: flag any
		// allowed constructor whose arguments read the wall clock.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) || !randConstructors[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if readsClock(pass, arg) {
					if !suppressed(pass, dirs, call.Pos(), "rand") {
						pass.Reportf(call.Pos(), "time-seeded %s.%s produces a different draw transcript every run: derive the seed from the audit's root seed or annotate //lint:rand <why>", fn.Pkg().Path(), fn.Name())
					}
					// Flag only the outermost constructor of a
					// nested rand.New(rand.NewSource(time.Now()…)).
					return false
				}
			}
			return true
		})
	}
	return nil, nil
}

// readsClock reports whether the expression contains a call to a
// clock-reading time function.
func readsClock(pass *analysis.Pass, expr ast.Expr) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
			hit = true
			return false
		}
		return true
	})
	return hit
}
