package sim

import (
	"fmt"
	"math/rand"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/pattern"
	"imagecvg/internal/stats"
)

// The robustness-frontier harness measures verdict accuracy against
// adversarial worker pressure: for each worker strategy (lazy
// always-yes, random spam, colluding liar) at each adversary rate, a
// Multiple-Coverage audit runs through the full crowd simulator twice
// — once bare and once under the core.TrustOracle middleware (gold
// probes, likelihood-ratio scoring, round-boundary screening) — and
// scores the verdicts against ground truth. Audits run on the lockstep
// engine unconditionally: the crowd platform is an order-dependent
// oracle, and only under lockstep is the rendered artifact
// engine-parallelism-invariant and golden-filable.

// RobustnessFrontierParams spans the adversary grid.
type RobustnessFrontierParams struct {
	// N is the dataset size; MinorityCounts shapes it (majority absorbs
	// the rest), audited as one group per value of a single 4-ary
	// attribute.
	N              int
	MinorityCounts []int
	// Tau is the coverage threshold; SetSize the set-query bound n.
	Tau, SetSize int
	// PoolSize and Assignments configure the simulated marketplace.
	PoolSize, Assignments int
	// Strategies are the adversarial worker strategies on the grid
	// (crowd.StrategyByName names); an honest baseline cell is always
	// included.
	Strategies []string
	// Rates are the adversary-stripe fractions of the pool.
	Rates []float64
	// ProbeCount sizes the gold-probe battery of the trust cells.
	ProbeCount int
}

// DefaultRobustnessFrontierParams keeps `-exp all` runs quick while
// crossing every strategy, two adversary rates and both trust
// settings.
func DefaultRobustnessFrontierParams() RobustnessFrontierParams {
	return RobustnessFrontierParams{
		N:              400,
		MinorityCounts: []int{12, 8, 5},
		Tau:            8,
		SetSize:        25,
		PoolSize:       20,
		Assignments:    3,
		Strategies:     []string{"lazy-yes", "random-spam", "colluding-liar"},
		Rates:          []float64{0.3, 0.6},
		ProbeCount:     6,
	}
}

// RobustnessFrontierRow is one (strategy, rate, trust) cell's outcome.
type RobustnessFrontierRow struct {
	Strategy string
	Rate     float64
	Trust    bool
	// Tasks is the mean committed task count (probe HITs included in
	// trust cells — probing is spend).
	Tasks float64
	// Settled is the mean fraction of groups with a definite verdict;
	// Accuracy the mean fraction whose verdict matches ground truth.
	Settled, Accuracy float64
	// Excluded and Probes are the mean screened-worker count and
	// gold-probe count of the trust middleware (zero on bare cells).
	Excluded, Probes float64
}

// RobustnessFrontierResult is the grid outcome.
type RobustnessFrontierResult struct {
	Params RobustnessFrontierParams
	Rows   []RobustnessFrontierRow
}

// TotalTasks sums the mean committed task counts, for machine
// consumers (cvgbench -json).
func (r *RobustnessFrontierResult) TotalTasks() float64 {
	total := 0.0
	for _, row := range r.Rows {
		total += row.Tasks
	}
	return total
}

// String renders the robustness curve per strategy.
func (r *RobustnessFrontierResult) String() string {
	t := stats.NewTable("strategy", "rate", "trust", "tasks", "settled", "verdict accuracy", "excluded", "probes")
	for _, row := range r.Rows {
		t.AddRow(row.Strategy,
			fmt.Sprintf("%.2f", row.Rate),
			fmt.Sprintf("%v", row.Trust),
			fmt.Sprintf("%.1f", row.Tasks),
			fmt.Sprintf("%.2f", row.Settled),
			fmt.Sprintf("%.2f", row.Accuracy),
			fmt.Sprintf("%.1f", row.Excluded),
			fmt.Sprintf("%.1f", row.Probes))
	}
	return fmt.Sprintf("Robustness frontier: verdict accuracy vs adversary rate x strategy x trust screening (N=%d, tau=%d, n=%d, lockstep engine)\n%s",
		r.Params.N, r.Params.Tau, r.Params.SetSize, t.String())
}

// rfObservation is one trial's scores.
type rfObservation struct {
	tasks, settled, accuracy float64
	excluded, probes         float64
}

// RunRobustnessFrontier runs the grid: one shared dataset (a pure
// function of o.Seed), an honest baseline plus every strategy x rate
// combination, each with and without the trust middleware. Every audit
// runs on the lockstep engine so the artifact is invariant to
// -engine-parallelism.
func RunRobustnessFrontier(p RobustnessFrontierParams, o Options) (*RobustnessFrontierResult, error) {
	s := oneAttrSchema(4)
	groups := pattern.GroupsForAttribute(s, 0)
	d, err := dataset.FromCounts(s, buildCounts(4, p.N, p.MinorityCounts),
		rand.New(rand.NewSource(o.Seed+77)))
	if err != nil {
		return nil, err
	}
	covered := make([]bool, len(groups))
	for gi, g := range groups {
		count := 0
		for i := 0; i < d.Size(); i++ {
			if g.Matches(d.At(i).Labels) {
				count++
			}
		}
		covered[gi] = count >= p.Tau
	}
	// The gold-probe battery is shared by every trust cell: a pure
	// function of (dataset, groups, seed), identical across trials and
	// engine widths.
	probes := core.GoldProbes(d, groups, p.ProbeCount, o.Seed+99)

	type cell struct {
		strategy string
		rate     float64
		trust    bool
	}
	var cells []cell
	var cfgs []experiment.Config
	for _, trust := range []bool{false, true} {
		adversaries := []cell{{strategy: "honest", rate: 0, trust: trust}}
		for _, strat := range p.Strategies {
			for _, rate := range p.Rates {
				adversaries = append(adversaries, cell{strategy: strat, rate: rate, trust: trust})
			}
		}
		for _, c := range adversaries {
			cfgs = append(cfgs, o.cell(
				fmt.Sprintf("robustness-frontier/strategy=%s/rate=%.2f/trust=%v", c.strategy, c.rate, c.trust),
				int64(1000*len(cells))))
			cells = append(cells, c)
		}
	}

	results, err := experiment.RunMany(cfgs, func(ci int, t experiment.Trial) (rfObservation, error) {
		c := cells[ci]
		log := &crowd.ResponseLog{}
		cfg := crowd.DefaultConfig(t.Seed + 7)
		cfg.Profile = crowd.DefaultProfile(p.PoolSize)
		cfg.Assignments = p.Assignments
		cfg.Responses = log
		if c.strategy != "honest" {
			strat, err := crowd.StrategyByName(c.strategy)
			if err != nil {
				return rfObservation{}, err
			}
			cfg.Adversary = crowd.AdversaryConfig{Rate: c.rate, Strategy: strat}
		}
		platform, err := crowd.NewPlatform(d, cfg)
		if err != nil {
			return rfObservation{}, err
		}

		var oracle core.Oracle = platform
		var tr *core.TrustOracle
		if c.trust {
			tr, err = core.NewTrustOracle(platform, core.TrustConfig{
				Probes: probes,
				Feed:   log,
				Screen: platform,
			})
			if err != nil {
				return rfObservation{}, err
			}
			oracle = tr
		}

		// Lockstep is unconditional: the crowd platform's answers are
		// order-dependent, and the trust middleware's probe schedule
		// rides the committed round sequence.
		mres, err := core.MultipleCoverage(oracle, d.IDs(), p.SetSize, p.Tau, groups,
			core.MultipleOptions{
				Rng:         t.Rng,
				Parallelism: engineWidth(t, 1),
				Lockstep:    true,
			})
		if err != nil {
			return rfObservation{}, err
		}
		obs := rfObservation{tasks: float64(mres.Tasks)}
		for gi, r := range mres.Results {
			if !r.Settled {
				continue
			}
			obs.settled++
			if r.Covered == covered[gi] {
				obs.accuracy++
			}
		}
		obs.settled /= float64(len(groups))
		obs.accuracy /= float64(len(groups))
		if tr != nil {
			rep := tr.Report()
			obs.excluded = float64(rep.Excluded)
			obs.probes = float64(rep.ProbesIssued)
		}
		return obs, nil
	})
	if err != nil {
		return nil, err
	}

	res := &RobustnessFrontierResult{Params: p}
	for ci, c := range cells {
		r := results[ci]
		res.Rows = append(res.Rows, RobustnessFrontierRow{
			Strategy: c.strategy,
			Rate:     c.rate,
			Trust:    c.trust,
			Tasks:    r.Mean(func(v rfObservation) float64 { return v.tasks }),
			Settled:  r.Mean(func(v rfObservation) float64 { return v.settled }),
			Accuracy: r.Mean(func(v rfObservation) float64 { return v.accuracy }),
			Excluded: r.Mean(func(v rfObservation) float64 { return v.excluded }),
			Probes:   r.Mean(func(v rfObservation) float64 { return v.probes }),
		})
	}
	return res, nil
}
