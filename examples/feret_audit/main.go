// FERET audit: the paper's live MTurk experiment (Table 1) end to
// end — the FERET slice with 215 females and 1307 males audited
// through the full crowd simulator with imperfect workers, 3-way
// majority vote, and dollar-cost accounting.
//
//	go run ./examples/feret_audit
package main

import (
	"fmt"
	"log"
	"math/rand"

	"imagecvg"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	ds := imagecvg.PresetFERETTable1.Generate(rng)
	fmt.Println("dataset:", imagecvg.PresetFERETTable1)

	crowd, err := imagecvg.NewSimulatedCrowd(ds, 17, imagecvg.CrowdOptions{
		PoolSize: 40,
		Rating:   true, // PercentAssignmentsApproved >= 95, NumberHITsApproved >= 100
	})
	if err != nil {
		log.Fatal(err)
	}
	// The simulated crowd is order-dependent (worker draws advance the
	// platform RNG per HIT), so multi-group audits pair WithParallelism
	// with WithLockstep: audits advance in deterministic virtual
	// rounds, and verdicts, task counts and dollar costs come out
	// bit-identical whether the engine runs 1-wide or 16-wide. (The
	// single-group audits below run the sequential Algorithm 1 either
	// way; lockstep matters for AuditGroups/AuditAttribute/
	// AuditIntersectional.)
	auditor := imagecvg.NewAuditor(crowd, 50, 50).WithParallelism(4).WithLockstep()
	female := imagecvg.FemaleGroup(ds.Schema())

	res, err := auditor.AuditGroup(ds.IDs(), female)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGroup-Coverage verdict:", res)
	fmt.Println("crowd cost:            ", crowd.Cost())
	fmt.Printf("paper's upper bound:    %.0f HITs\n",
		imagecvg.UpperBoundHITs(ds.Size(), 50, 50))

	// The same audit with the naive baseline, on a fresh ledger.
	crowd.ResetCost()
	base, err := auditor.AuditBaseline(ds.IDs(), female)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBase-Coverage verdict: ", base)
	fmt.Println("crowd cost:            ", crowd.Cost())

	// Both gender groups at once through the concurrent engine — this
	// is the audit the lockstep scheduler makes reproducible: thanks
	// to WithLockstep above, this block prints the same verdicts and
	// cost for every WithParallelism value.
	crowd.ResetCost()
	attr, err := auditor.AuditAttribute(ds.IDs(), ds.Schema(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMultiple-Coverage over gender (lockstep):")
	for _, r := range attr.Results {
		fmt.Printf("  %-8s covered=%-5v count in [%d, %d]\n", r.Group, r.Covered, r.CountLo, r.CountHi)
	}
	fmt.Printf("tasks: %d (samples %d + audits %d)\n", attr.Tasks, attr.SampleTasks, attr.AuditTasks)
	fmt.Println("crowd cost:", crowd.Cost())
}
