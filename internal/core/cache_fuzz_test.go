package core

import (
	"fmt"
	"sort"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// decodeCacheQuery deterministically derives one (ids, group, kind)
// tuple from raw fuzz bytes. Pattern is a plain []int, so the decoder
// deliberately produces values NewPattern would reject — negatives,
// mixed lengths — to probe key collisions from adversarial member
// keys, and signed object ids to probe the id section.
func decodeCacheQuery(data []byte) (ids []dataset.ObjectID, g pattern.Group, reverse bool) {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		v := int(int8(data[pos]))
		pos++
		return v
	}
	reverse = next()&1 == 1
	nIDs := abs(next()) % 5
	for i := 0; i < nIDs; i++ {
		ids = append(ids, dataset.ObjectID(next()))
	}
	nMembers := abs(next()) % 4
	for i := 0; i < nMembers; i++ {
		slots := abs(next()) % 4
		p := make(pattern.Pattern, slots)
		for j := range p {
			p[j] = next()
		}
		g.Members = append(g.Members, p)
	}
	return ids, g, reverse
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// canonicalQuery renders the cache's intended equivalence class: the
// kind, the sorted member keys and the sorted id multiset. Two queries
// must share a cache key exactly when their canonical forms match.
func canonicalQuery(ids []dataset.ObjectID, g pattern.Group, reverse bool) string {
	sortedIDs := make([]int, len(ids))
	for i, id := range ids {
		sortedIDs[i] = int(id)
	}
	sort.Ints(sortedIDs)
	members := make([]string, len(g.Members))
	for i, p := range g.Members {
		members[i] = p.Key()
	}
	sort.Strings(members)
	return fmt.Sprintf("%v|%q|%v", reverse, members, sortedIDs)
}

// FuzzCacheKey proves the cache key injective over its equivalence
// classes: no two distinct (ids, group, kind) tuples may share a key —
// a collision would let one paid HIT silently answer a different crowd
// question — and equivalent tuples (reordered ids, reordered members)
// must keep sharing one.
func FuzzCacheKey(f *testing.F) {
	f.Add([]byte{0, 2, 1, 2, 1, 1, 0}, []byte{1, 2, 1, 2, 1, 1, 0})
	// Historic collision shapes: a member key absorbing a separator vs
	// two members, and negative values rendering the '-' the key format
	// uses between slots.
	f.Add([]byte{0, 0, 2, 2, 1, 2, 0}, []byte{0, 0, 1, 2, 1, 2, 0})
	f.Add([]byte{0, 1, 5, 1, 1, 0xFB}, []byte{0, 1, 0xFB, 1, 1, 5}) // 0xFB = int8(-5)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ids1, g1, rev1 := decodeCacheQuery(a)
		ids2, g2, rev2 := decodeCacheQuery(b)
		key1 := setKey(ids1, g1, rev1)
		key2 := setKey(ids2, g2, rev2)
		canon1 := canonicalQuery(ids1, g1, rev1)
		canon2 := canonicalQuery(ids2, g2, rev2)
		if (key1 == key2) != (canon1 == canon2) {
			t.Fatalf("cache key injectivity violated:\nq1=%s key=%q\nq2=%s key=%q",
				canon1, key1, canon2, key2)
		}
	})
}

// TestSetKeyLengthPrefixCollisions pins the concrete collision class
// the length-prefixed encoding exists for: a single member whose key
// contains the list separator must not collide with the two-member
// group it imitates.
func TestSetKeyLengthPrefixCollisions(t *testing.T) {
	ids := []dataset.ObjectID{1, 2}
	// Member keys: ["1-2"] (one 2-slot pattern) vs ["1","2"] (two
	// 1-slot patterns) vs ["1","-2"]: a naive join renders all three
	// identically under some separator choice.
	one := pattern.Group{Members: []pattern.Pattern{{1, 2}}}
	two := pattern.Group{Members: []pattern.Pattern{{1}, {2}}}
	neg := pattern.Group{Members: []pattern.Pattern{{1}, {-2}}}
	keys := map[string]string{}
	for name, g := range map[string]pattern.Group{"one": one, "two": two, "neg": neg} {
		k := setKey(ids, g, false)
		for other, ok := range keys {
			if ok == k {
				t.Fatalf("groups %s and %s collide on key %q", name, other, k)
			}
		}
		keys[name] = k
	}
	// Equivalence classes still dedup: id order and member order are
	// canonicalized away.
	if setKey([]dataset.ObjectID{2, 1}, two, false) != setKey(ids, two, false) {
		t.Error("reordered ids must share a key")
	}
	swapped := pattern.Group{Members: []pattern.Pattern{{2}, {1}}}
	if setKey(ids, swapped, false) != setKey(ids, two, false) {
		t.Error("reordered members must share a key")
	}
	if setKey(ids, two, true) == setKey(ids, two, false) {
		t.Error("set and reverse-set must not share a key")
	}
}
