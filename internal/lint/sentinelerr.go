package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"imagecvg/internal/lint/analysis"
)

// SentinelErr flags `==` / `!=` comparisons (and switch cases) against
// exported sentinel error variables — package-level vars named Err*
// with an error type, such as core.ErrBudgetExhausted or
// server.ErrTenantBudget. The middleware stack (cache → trust →
// journal → governor → platform) wraps errors as they propagate, so a
// raw identity comparison silently stops matching the moment a layer
// adds context; errors.Is is required everywhere a sentinel crosses a
// wrapping-capable boundary. The rule applies in test files too —
// tests exercise the wrapped paths.
//
// Exemptions: comparisons inside an `Is(error) bool` method (that is
// the one place identity comparison is the idiom, it is what
// errors.Is calls), and lines annotated //lint:sentinel <why>.
var SentinelErr = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc:  "flags raw ==/!= comparisons against sentinel errors where errors.Is is required",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		dirs := directives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				sentinel := sentinelName(pass, e.X)
				if sentinel == "" {
					sentinel = sentinelName(pass, e.Y)
				}
				if sentinel == "" || inIsMethod(pass, file, e.Pos()) || suppressed(pass, dirs, e.Pos(), "sentinel") {
					return true
				}
				pass.Reportf(e.Pos(), "sentinel error %s compared with %s: middleware wraps errors, use errors.Is", sentinel, e.Op)
			case *ast.SwitchStmt:
				if e.Tag == nil {
					return true
				}
				t := pass.TypesInfo.TypeOf(e.Tag)
				if t == nil || !isErrorType(t) {
					return true
				}
				for _, stmt := range e.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						sentinel := sentinelName(pass, expr)
						if sentinel == "" || inIsMethod(pass, file, expr.Pos()) || suppressed(pass, dirs, expr.Pos(), "sentinel") {
							continue
						}
						pass.Reportf(expr.Pos(), "sentinel error %s in a switch case compares by identity: middleware wraps errors, use if/else with errors.Is", sentinel)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// sentinelName returns the printed name of the sentinel error the
// expression refers to, or "" if it is not a sentinel reference. A
// sentinel is a package-level var whose name starts with Err and
// whose type is (or implements) error.
func sentinelName(pass *analysis.Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if len(v.Name()) < 4 || v.Name()[:3] != "Err" {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	return types.ExprString(expr)
}

// isErrorType reports whether t is the error interface or implements
// it.
func isErrorType(t types.Type) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// inIsMethod reports whether pos sits inside a method named Is with
// signature func(error) bool — the errors.Is hook, where identity
// comparison against sentinels is the idiom being implemented.
func inIsMethod(pass *analysis.Pass, file *ast.File, pos token.Pos) bool {
	fd, ok := enclosingFunc(file, pos).(*ast.FuncDecl)
	if !ok || fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	sig, ok := pass.TypesInfo.ObjectOf(fd.Name).Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isErrorType(sig.Params().At(0).Type()) && types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}
