package sim

import (
	"fmt"
	"time"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/pattern"
	"imagecvg/internal/stats"
)

// LatencyParams tunes the latency-bound lockstep comparison: one
// Multiple-Coverage workload audited through an oracle whose every
// query carries a fixed round-trip delay — the regime real crowd
// deployments live in (a real HIT takes minutes; sub-millisecond
// stands in).
type LatencyParams struct {
	// N, Tau, SetSize shape the workload.
	N, Tau, SetSize int
	// MinorityCounts are the non-majority group sizes (the majority
	// absorbs the rest), audited as one group per value of a 4-ary
	// attribute.
	MinorityCounts []int
	// Delay is the simulated per-HIT round-trip.
	Delay time.Duration
	// Parallelism is the lockstep engine's batch-lifting pool width.
	Parallelism int
}

// DefaultLatencyParams picks three near-tau minorities so the
// aggregation keeps them in separate super-groups — four concurrent
// audit tasks whose rounds the scheduler can amortize.
func DefaultLatencyParams() LatencyParams {
	return LatencyParams{
		N: 2_000, Tau: 50, SetSize: 25,
		MinorityCounts: []int{30, 28, 26},
		Delay:          300 * time.Microsecond,
		Parallelism:    4,
	}
}

// LatencyRow is one engine's outcome.
type LatencyRow struct {
	Engine string
	// Tasks is the mean task count — identical across engines, since
	// the oracle is order-independent.
	Tasks float64
	// MillisPerTrial is the mean wall-clock per trial.
	MillisPerTrial float64
}

// LatencyResult compares the sequential engine against lockstep.
type LatencyResult struct {
	Params LatencyParams
	Rows   []LatencyRow // [0] sequential, [1] lockstep
}

// Speedup is the sequential-to-lockstep wall-clock ratio — the number
// the ">= 2x at parallelism 4" acceptance gate checks.
func (r *LatencyResult) Speedup() float64 {
	if len(r.Rows) < 2 || r.Rows[1].MillisPerTrial == 0 {
		return 0
	}
	return r.Rows[0].MillisPerTrial / r.Rows[1].MillisPerTrial
}

// TotalTasks implements the cvgbench task totaler.
func (r *LatencyResult) TotalTasks() float64 {
	total := 0.0
	for _, row := range r.Rows {
		total += row.Tasks
	}
	return total
}

// String renders the comparison. The table carries wall-clock, so this
// artifact is excluded from the byte-exact golden suite; its role is
// the latency-bound benchmark history (BENCH_core.json) CI gates on.
func (r *LatencyResult) String() string {
	t := stats.NewTable("engine", "Multiple-Coverage tasks", "ms/trial")
	for _, row := range r.Rows {
		t.AddRow(row.Engine, fmt.Sprintf("%.1f", row.Tasks), fmt.Sprintf("%.1f", row.MillisPerTrial))
	}
	return fmt.Sprintf(
		"Lockstep under %.1fms/HIT crowd latency (N=%d tau=%d n=%d, engine parallelism %d)\n%s\nlockstep speedup: %.1fx\n",
		float64(r.Params.Delay.Microseconds())/1000, r.Params.N, r.Params.Tau, r.Params.SetSize,
		r.Params.Parallelism, t.String(), r.Speedup())
}

// RunLockstepLatency runs the same workload through the sequential
// Algorithm 2 and through the lockstep scheduler at the configured
// parallelism, against a DelayOracle. Both cells share trial seeds, so
// they audit identical datasets and issue identical task counts; only
// the wall-clock differs — lockstep posts each virtual round as one
// batch whose round-trips overlap across the pool, which is where
// batched rounds keep the concurrent engine's latency win while
// staying bit-deterministic.
func RunLockstepLatency(p LatencyParams, o Options) (*LatencyResult, error) {
	s := oneAttrSchema(4)
	groups := pattern.GroupsForAttribute(s, 0)
	counts := buildCounts(4, p.N, p.MinorityCounts)

	type engineCell struct {
		name        string
		parallelism int
		lockstep    bool
	}
	cells := []engineCell{
		{"sequential", 1, false},
		{fmt.Sprintf("lockstep-P%d", p.Parallelism), p.Parallelism, true},
	}
	cfgs := make([]experiment.Config, len(cells))
	for i, c := range cells {
		cfgs[i] = o.cell("lockstep-latency/"+c.name, 0)
		cfgs[i].Lockstep = c.lockstep
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (float64, error) {
		d, err := dataset.FromCounts(s, counts, t.Rng)
		if err != nil {
			return 0, err
		}
		oracle := core.DelayOracle{Inner: core.NewTruthOracle(d), Delay: p.Delay}
		mres, err := core.MultipleCoverage(oracle, d.IDs(), p.SetSize, p.Tau, groups,
			core.MultipleOptions{Rng: t.Rng, Parallelism: cells[cell].parallelism, Lockstep: t.Lockstep})
		if err != nil {
			return 0, err
		}
		return float64(mres.Tasks), nil
	})
	if err != nil {
		return nil, err
	}

	res := &LatencyResult{Params: p}
	for i, c := range cells {
		r := results[i]
		var trialMillis float64
		for _, tr := range r.Trials {
			trialMillis += float64(tr.Elapsed.Microseconds()) / 1000
		}
		res.Rows = append(res.Rows, LatencyRow{
			Engine:         c.name,
			Tasks:          r.Mean(func(tasks float64) float64 { return tasks }),
			MillisPerTrial: trialMillis / float64(len(r.Trials)),
		})
	}
	return res, nil
}
