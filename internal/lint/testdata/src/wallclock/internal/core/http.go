package core

import "time"

// The allowlist entry is the full path suffix internal/server/http.go
// — a file merely named http.go in another commit package stays in
// scope.
func notTheServerHTTPLayer() time.Time {
	return time.Now() // want `wall-clock reads break resume identity`
}
