package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"table1", "table2", "figure7a", "noise-sweep", "sweep"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "effective 1") {
		t.Errorf("output missing Table 3 settings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Figure 7e") {
		t.Errorf("output missing artifact name")
	}
	if !strings.Contains(out.String(), "timing:") {
		t.Errorf("output missing per-trial timing line")
	}
}

// TestTrialParallelismIdenticalTables: the same experiment renders the
// identical table at trial-parallelism 1 and 8 — the engine's core
// reproducibility promise, surfaced end to end.
func TestTrialParallelismIdenticalTables(t *testing.T) {
	tables := func(parallelism string) string {
		var out, errOut bytes.Buffer
		if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "2",
			"-trial-parallelism", parallelism}, &out, &errOut); code != 0 {
			t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
		}
		// Strip the wall-clock-bearing lines; compare the tables.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "===") || strings.Contains(line, "timing:") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	seq, par := tables("1"), tables("8")
	if seq != par {
		t.Errorf("tables diverged across trial-parallelism:\n%s\nvs\n%s", seq, par)
	}
}

func TestJSONOutputAppendsHistory(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	read := func() []benchRun {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var runs []benchRun
		if err := json.Unmarshal(data, &runs); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, data)
		}
		return runs
	}
	runs := read()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	if runs[0].Time == "" {
		t.Error("run missing timestamp")
	}
	if len(runs[0].Records) != 1 || runs[0].Records[0].ID != "figure7e" {
		t.Fatalf("records = %+v", runs[0].Records)
	}
	if runs[0].Records[0].NsPerOp <= 0 {
		t.Error("ns_per_op must be positive")
	}
	if runs[0].Records[0].HITTasks <= 0 {
		t.Error("figure7e should report its HIT total")
	}

	// A second invocation appends instead of overwriting.
	out.Reset()
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("second run exit = %d, stderr: %s", code, errOut.String())
	}
	if runs = read(); len(runs) != 2 {
		t.Fatalf("after second run: %d runs, want 2 (history must append)", len(runs))
	}
	if !strings.Contains(out.String(), "2 runs") {
		t.Errorf("output should report history length:\n%s", out.String())
	}
}

func TestJSONMigratesLegacyFile(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	legacy := `[{"id":"figure7e","paper":"Figure 7e","seed":7,"trials":1,"ns_per_op":123,"seconds":0.1,"hit_tasks":400}]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var runs []benchRun
	if err := json.Unmarshal(data, &runs); err != nil {
		t.Fatalf("invalid JSON after migration: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want legacy run + new run", len(runs))
	}
	if len(runs[0].Records) != 1 || runs[0].Records[0].NsPerOp != 123 {
		t.Errorf("legacy records lost: %+v", runs[0])
	}
}

func TestBaselineReportsDeltas(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	var out, errOut bytes.Buffer
	// First run: nothing to compare against.
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path, "-baseline"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no previous run") {
		t.Errorf("first -baseline should note the empty history:\n%s", out.String())
	}
	// Second run: deltas against the first.
	out.Reset()
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path, "-baseline"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "baseline deltas vs") {
		t.Errorf("missing delta report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "figure7e") || !strings.Contains(out.String(), "%") {
		t.Errorf("delta table incomplete:\n%s", out.String())
	}
}

func TestBaselineRequiresJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-baseline"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-baseline requires -json") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestJSONOutputBadPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-trials", "1", "-json", "/no/such/dir/b.json"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestJSONCorruptHistory(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-trials", "1", "-json", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 (corrupt history must not be clobbered)", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
