package experiment

import (
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// cachedAuditConfig builds the cross-trial amortization scenario the
// ROADMAP called out: one fixed dataset audited repeatedly (think
// several stakeholders re-running the same audit), every trial going
// through one SharedCache. The audit RNG is fixed per cell — the
// re-audit asks the same questions — so later trials should hit.
func cachedAuditConfig(t *testing.T, trials, parallelism int) (Config, *core.CachingOracle, []pattern.Group, *dataset.Dataset) {
	t.Helper()
	s := pattern.MustSchema(pattern.Attribute{
		Name: "group", Values: []string{"g0", "g1", "g2", "g3"},
	})
	d, err := dataset.FromCounts(s, []int{1960, 14, 14, 12}, rand.New(rand.NewSource(301)))
	if err != nil {
		t.Fatal(err)
	}
	factory, cache := SharedCache(core.NewTruthOracle(d))
	cfg := Config{
		Name:        "cached-audit",
		Seed:        302,
		Trials:      trials,
		Parallelism: parallelism,
		Oracle:      factory,
	}
	return cfg, cache, pattern.GroupsForAttribute(s, 0), d
}

// TestCrossTrialCacheAmortization: with one shared CachingOracle,
// every trial after the first must issue STRICTLY fewer real oracle
// tasks (cache misses) than trial 1, and the cumulative hit count
// must grow monotonically trial over trial.
func TestCrossTrialCacheAmortization(t *testing.T) {
	const trials = 4
	cfg, cache, groups, d := cachedAuditConfig(t, trials, 1)
	res, err := Run(cfg, func(tr Trial) (int, error) {
		// Fixed audit seed: each trial re-runs the same audit.
		mres, err := core.MultipleCoverage(tr.Oracle, d.IDs(), 50, 50, groups,
			core.MultipleOptions{Rng: rand.New(rand.NewSource(cfg.Seed))})
		if err != nil {
			return 0, err
		}
		return mres.Tasks, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Per-trial misses from consecutive cumulative snapshots (exact at
	// Parallelism 1).
	prev := core.CacheStats{}
	var misses, hits []int
	for i, tr := range res.Trials {
		if !tr.HasCache {
			t.Fatalf("trial %d: no cache snapshot", i)
		}
		misses = append(misses, tr.Cache.Misses.Total()-prev.Misses.Total())
		hits = append(hits, tr.Cache.Hits.Total())
		prev = tr.Cache
	}
	if misses[0] == 0 {
		t.Fatal("trial 1 should pay real oracle tasks")
	}
	for i := 1; i < trials; i++ {
		if misses[i] >= misses[0] {
			t.Errorf("trial %d issued %d oracle tasks, want strictly fewer than trial 1's %d",
				i+1, misses[i], misses[0])
		}
		if hits[i] <= hits[i-1] {
			t.Errorf("cumulative hits fell from %d to %d at trial %d", hits[i-1], hits[i], i+1)
		}
	}
	// The final tally must agree with the shared cache itself.
	if got := cache.Stats(); got != res.Trials[trials-1].Cache {
		t.Errorf("final snapshot %+v != cache stats %+v", res.Trials[trials-1].Cache, got)
	}
	// Every re-audit sees the same answers, so reported task counts
	// (which the cache serves for free) are identical across trials.
	if vals := res.Values(); !reflect.DeepEqual(vals, []int{vals[0], vals[0], vals[0], vals[0]}) {
		t.Errorf("re-audit task counts diverged: %v", vals)
	}
}

// TestCrossTrialCacheParallelTrials: under parallel trials the shared
// cache stays consistent — total misses never exceed one full audit's
// queries (in-flight collapsing), and hit counts grow monotonically
// in completion order.
func TestCrossTrialCacheParallelTrials(t *testing.T) {
	const trials = 6
	// Sequential baseline measures one audit's query count.
	seqCfg, seqCache, groups, d := cachedAuditConfig(t, 1, 1)
	_, err := Run(seqCfg, func(tr Trial) (int, error) {
		mres, err := core.MultipleCoverage(tr.Oracle, d.IDs(), 50, 50, groups,
			core.MultipleOptions{Rng: rand.New(rand.NewSource(seqCfg.Seed))})
		if err != nil {
			return 0, err
		}
		return mres.Tasks, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	oneAudit := seqCache.Stats().Misses.Total()

	cfg, cache, groups, d := cachedAuditConfig(t, trials, 4)
	if _, err := Run(cfg, func(tr Trial) (int, error) {
		mres, err := core.MultipleCoverage(tr.Oracle, d.IDs(), 50, 50, groups,
			core.MultipleOptions{Rng: rand.New(rand.NewSource(cfg.Seed))})
		if err != nil {
			return 0, err
		}
		return mres.Tasks, nil
	}); err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if got := stats.Misses.Total(); got != oneAudit {
		t.Errorf("parallel re-audits paid %d oracle tasks, want exactly one audit's %d", got, oneAudit)
	}
	if stats.Hits.Total() == 0 {
		t.Error("parallel re-audits never hit the cache")
	}
	if rate := stats.HitRate(); rate < 0.5 {
		t.Errorf("hit rate %.2f, want most queries amortized", rate)
	}
}
