package crowd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/imagegen"
	"imagecvg/internal/pattern"
)

// Config tunes a simulated platform deployment.
type Config struct {
	// Assignments is the redundancy per HIT (the paper uses 3).
	Assignments int
	// PricePerHIT is the fixed price of one assignment; ignored when
	// Pricing is set.
	PricePerHIT float64
	// Pricing optionally replaces fixed pricing with another model
	// (SizePricing, PostedPricing, BiddingPricing, ...).
	Pricing Pricing
	// FeeRate is the platform's surcharge on worker payouts.
	FeeRate float64
	// SetSizeLimit bounds the number of images in one set query
	// (0 disables the check). The paper keeps sets at n=50 "to present
	// a reasonable workload".
	SetSizeLimit int
	// Aggregator infers truth from redundant answers; nil means
	// MajorityVote.
	Aggregator Aggregator
	// Qualification, when non-nil, is administered to each worker
	// before they may accept HITs.
	Qualification *QualificationTest
	// Rating, when non-nil, excludes workers below its thresholds.
	Rating *RatingFilter
	// Profile configures the worker pool.
	Profile PoolProfile
	// Adversary seeds a fraction of the pool with an adversarial
	// answer strategy (lazy, spamming, colluding); the zero value
	// changes nothing. Assignment is a deterministic RNG-free stripe
	// over worker IDs, so honest workers' random streams — and every
	// golden artifact of an adversary-free build — stay byte-identical.
	Adversary AdversaryConfig
	// Responses, when non-nil, records every yes/no assignment in
	// platform commit order — the sequencing hook for batch truth
	// inference (DawidSkene) and for conformance tests that compare
	// whole HIT transcripts across engine parallelism levels.
	Responses *ResponseLog
	// Seed drives all platform randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's deployment: 3 assignments per HIT,
// $0.10 fixed price, 20 % platform fee, majority vote, a pool of 30
// typical workers.
func DefaultConfig(seed int64) Config {
	return Config{
		Assignments: 3,
		PricePerHIT: 0.10,
		FeeRate:     0.20,
		Aggregator:  MajorityVote{},
		Profile:     DefaultProfile(30),
		Seed:        seed,
	}
}

// Platform is the simulated crowdsourcing marketplace bound to one
// dataset. It renders each object as a glyph once, routes HITs to
// randomly drawn eligible workers, aggregates their answers, and
// accounts every HIT in a ledger.
//
// Platform implements core.Oracle and, natively, core.BatchOracle. A
// mutex serializes all HITs (worker draws and perception noise share
// the platform RNG), so concurrent audit engines may call it safely —
// but interleaved calls consume the RNG in arrival order, which is
// nondeterministic under concurrency. Deployments that need
// reproducible parallel audits should post whole rounds through
// SetQueryBatch/PointQueryBatch: a batch holds the lock once and
// answers in request order, so identically-seeded runs reproduce the
// same answers at any parallelism level. The core engine's lockstep
// scheduler (core.MultipleOptions.Lockstep) does exactly that — it
// collects each virtual round's queries, orders them canonically, and
// commits them here as one batch — which makes even multi-group audits
// through this platform bit-identical at every Parallelism value.
type Platform struct {
	ds       *dataset.Dataset
	renderer *imagegen.Renderer
	glyphs   map[dataset.ObjectID]imagegen.Glyph
	cfg      Config
	pool     []*Worker
	eligible []*Worker
	// baseEligible freezes the post-quality-control pool in
	// construction order; SetExcludedWorkers rebuilds eligible from it,
	// so screening decisions compose instead of compounding.
	baseEligible []*Worker
	ledger       *Ledger

	mu  sync.Mutex // serializes HITs: rng, worker RNG state, ledger
	rng *rand.Rand

	// Scratch buffers reused by the hot query path, guarded by mu.
	// They never escape a query: anything handed to callers (aggregated
	// labels, batch answer slices) is freshly allocated, and the
	// in-query consumers (Group.Matches, Aggregator, ResponseLog) read
	// values without retaining the slices. permScratch reproduces
	// rand.Perm's exact draw sequence without its per-HIT allocation;
	// see draw.
	permScratch   []int
	workerScratch []*Worker
	answerScratch []bool
	glyphScratch  []imagegen.Glyph
	labelScratch  []int
	pointScratch  [][]int
}

// NewPlatform builds a platform over the dataset: generates the worker
// pool and applies the configured quality controls. Glyphs render
// lazily on first query (rendering consumes no RNG, so transcripts are
// identical to eager pre-rendering), keeping construction O(1) in the
// dataset size; WarmGlyphs renders them all up front when wanted.
func NewPlatform(ds *dataset.Dataset, cfg Config) (*Platform, error) {
	if ds == nil {
		return nil, errors.New("crowd: nil dataset")
	}
	if cfg.Assignments <= 0 {
		return nil, fmt.Errorf("crowd: assignments %d", cfg.Assignments)
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = MajorityVote{}
	}
	if cfg.Pricing == nil {
		cfg.Pricing = FixedPricing{Price: cfg.PricePerHIT}
	}
	renderer, err := imagegen.NewRenderer(ds.Schema())
	if err != nil {
		return nil, err
	}
	if cfg.Adversary.Rate < 0 || cfg.Adversary.Rate > 1 {
		return nil, fmt.Errorf("crowd: adversary rate %v", cfg.Adversary.Rate)
	}
	if cfg.Adversary.Rate > 0 && cfg.Adversary.Strategy == nil {
		return nil, fmt.Errorf("crowd: adversary rate %v without a strategy", cfg.Adversary.Rate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool, err := NewPool(cfg.Profile, rng)
	if err != nil {
		return nil, err
	}
	cfg.Adversary.assignAdversaries(pool)
	p := &Platform{
		ds:       ds,
		renderer: renderer,
		glyphs:   make(map[dataset.ObjectID]imagegen.Glyph),
		cfg:      cfg,
		pool:     pool,
		ledger:   NewLedger(cfg.FeeRate),
		rng:      rng,
	}
	for _, w := range pool {
		if cfg.Rating != nil && !cfg.Rating.Eligible(w) {
			continue
		}
		if cfg.Qualification != nil {
			pass, err := cfg.Qualification.Administer(w, renderer, rng)
			if err != nil {
				return nil, err
			}
			if !pass {
				continue
			}
		}
		p.eligible = append(p.eligible, w)
	}
	if len(p.eligible) == 0 {
		return nil, errors.New("crowd: no eligible workers after quality control")
	}
	p.baseEligible = p.eligible
	return p, nil
}

// SetExcludedWorkers replaces the platform's trust-screening exclusion
// set: the listed worker IDs no longer receive assignments, rebuilt
// from the post-quality-control pool each call (exclusions never
// compound across calls). The platform honors the longest prefix of
// ids that keeps at least one eligible worker — a marketplace cannot
// run with an empty pool — and returns how many workers ended up
// excluded. Callers (the trust middleware) must invoke this only at
// round boundaries: changing the pool mid-round would change worker
// draws for HITs already sequenced, breaking the determinism contract.
func (p *Platform) SetExcludedWorkers(ids []int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	banned := make(map[int]struct{}, len(ids))
	kept := len(p.baseEligible)
	for _, id := range ids {
		if _, dup := banned[id]; dup {
			continue
		}
		inBase := false
		for _, w := range p.baseEligible {
			if w.ID == id {
				inBase = true
				break
			}
		}
		if inBase {
			if kept == 1 {
				break
			}
			kept--
		}
		banned[id] = struct{}{}
	}
	eligible := make([]*Worker, 0, kept)
	for _, w := range p.baseEligible {
		if _, ok := banned[w.ID]; !ok {
			eligible = append(eligible, w)
		}
	}
	p.eligible = eligible
	return len(p.baseEligible) - len(eligible)
}

// WarmGlyphs renders every object's glyph up front. Rendering consumes
// no RNG, so warming changes no transcript; it only moves the rendering
// cost out of the first queries — useful before a measured audit.
func (p *Platform) WarmGlyphs() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < p.ds.Size(); i++ {
		o := p.ds.At(i)
		if _, ok := p.glyphs[o.ID]; !ok {
			if g, err := p.renderer.Render(o.Labels, 0, nil); err == nil {
				p.glyphs[o.ID] = g
			}
		}
	}
}

// Ledger returns the platform's cost ledger.
func (p *Platform) Ledger() *Ledger { return p.ledger }

// EligibleWorkers returns how many workers survived quality control.
func (p *Platform) EligibleWorkers() int { return len(p.eligible) }

// PoolSize returns the total worker pool size.
func (p *Platform) PoolSize() int { return len(p.pool) }

// Workers returns the full worker pool, screened workers included —
// read-only introspection for trust tooling (e.g. checking which
// excluded workers were actually adversarial). Callers must not
// mutate the returned workers.
func (p *Platform) Workers() []*Worker { return p.pool }

// draw picks the redundancy set of workers for one HIT, without
// replacement when the eligible pool allows it. The returned slice is
// the platform's scratch buffer, valid until the next draw; callers
// hold p.mu and never retain it.
func (p *Platform) draw() []*Worker {
	k := p.cfg.Assignments
	if cap(p.workerScratch) < k {
		p.workerScratch = make([]*Worker, k)
	}
	out := p.workerScratch[:k]
	if k <= len(p.eligible) {
		n := len(p.eligible)
		if cap(p.permScratch) < n {
			p.permScratch = make([]int, n)
		}
		// rand.Perm's exact loop over a reused buffer: the same n Intn
		// draws in the same order, so transcripts are byte-identical to
		// the allocating version. m[i] is written at iteration i before
		// any later read, so stale scratch contents cannot leak in (the
		// j == i case reads m[i] but immediately overwrites it).
		m := p.permScratch[:n]
		for i := 0; i < n; i++ {
			j := p.rng.Intn(i + 1)
			m[i] = m[j]
			m[j] = i
		}
		for i := range out {
			out[i] = p.eligible[m[i]]
		}
		return out
	}
	for i := range out {
		out[i] = p.eligible[p.rng.Intn(len(p.eligible))]
	}
	return out
}

// glyph returns the object's rendered glyph, rendering and memoizing
// it on first use. Rendering takes no RNG, so the lazy fill changes no
// transcript. Callers hold p.mu.
func (p *Platform) glyph(id dataset.ObjectID) (imagegen.Glyph, error) {
	if g, ok := p.glyphs[id]; ok {
		return g, nil
	}
	o, ok := p.ds.ByID(id)
	if !ok {
		return imagegen.Glyph{}, fmt.Errorf("crowd: unknown object %d", id)
	}
	g, err := p.renderer.Render(o.Labels, 0, nil)
	if err != nil {
		return imagegen.Glyph{}, err
	}
	p.glyphs[id] = g
	return g, nil
}

// glyphsFor resolves a set query's glyphs into the platform's scratch
// buffer, valid until the next query; callers hold p.mu.
func (p *Platform) glyphsFor(ids []dataset.ObjectID) ([]imagegen.Glyph, error) {
	if len(ids) == 0 {
		return nil, errors.New("crowd: empty query set")
	}
	if p.cfg.SetSizeLimit > 0 && len(ids) > p.cfg.SetSizeLimit {
		return nil, fmt.Errorf("crowd: set query of %d images exceeds limit %d", len(ids), p.cfg.SetSizeLimit)
	}
	if cap(p.glyphScratch) < len(ids) {
		p.glyphScratch = make([]imagegen.Glyph, len(ids))
	}
	out := p.glyphScratch[:len(ids)]
	for i, id := range ids {
		g, err := p.glyph(id)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

// SetQuery publishes the HIT "does this set contain at least one image
// of group g?" and returns the aggregated answer.
func (p *Platform) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.setQuery(ids, g, false)
}

// ReverseSetQuery publishes "does this set contain at least one image
// NOT in group g?" and returns the aggregated answer.
func (p *Platform) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.setQuery(ids, g, true)
}

// SetQueryBatch implements core.BatchOracle natively: the whole round
// is posted under one lock acquisition and answered in request order,
// so batched audits stay deterministic for a fixed seed regardless of
// the caller's parallelism.
func (p *Platform) SetQueryBatch(reqs []core.SetRequest) ([]bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	answers := make([]bool, len(reqs))
	for i, req := range reqs {
		ans, err := p.setQuery(req.IDs, req.Group, req.Reverse)
		if err != nil {
			return nil, err
		}
		answers[i] = ans
	}
	return answers, nil
}

// PointQueryBatch implements core.BatchOracle; see SetQueryBatch.
func (p *Platform) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	labels := make([][]int, len(ids))
	for i, id := range ids {
		l, err := p.pointQuery(id)
		if err != nil {
			return nil, err
		}
		labels[i] = l
	}
	return labels, nil
}

// setQuery publishes one set/reverse-set HIT; callers hold p.mu.
func (p *Platform) setQuery(ids []dataset.ObjectID, g pattern.Group, reverse bool) (bool, error) {
	glyphs, err := p.glyphsFor(ids)
	if err != nil {
		return false, err
	}
	workers := p.draw()
	if cap(p.answerScratch) < len(workers) {
		p.answerScratch = make([]bool, len(workers))
	}
	answers := p.answerScratch[:len(workers)]
	for i, w := range workers {
		ans := false
		for gi := range glyphs {
			p.labelScratch = w.perceiveLabelsInto(p.renderer, glyphs[gi], p.labelScratch)
			match := g.Matches(p.labelScratch)
			if reverse {
				match = !match
			}
			if match {
				ans = true
				break
			}
		}
		if w.slip() {
			ans = !ans
		}
		// The honest path above ran to completion (identical RNG
		// transcript); an adversarial strategy only overrides what the
		// worker submits.
		if w.strategy != nil {
			ans = w.strategy.AnswerBool(w, ans)
		}
		answers[i] = ans
	}
	kind := SetQuery
	if reverse {
		kind = ReverseSetQuery
	}
	if p.cfg.Responses != nil {
		p.cfg.Responses.record(workers, answers)
	}
	p.ledger.Record(kind, len(workers), p.cfg.Pricing.AssignmentPrice(kind, len(ids)))
	return p.cfg.Aggregator.AggregateBool(workers, answers), nil
}

// PointQuery publishes the HIT "what are the attribute values of this
// image?" and returns the aggregated label vector.
func (p *Platform) PointQuery(id dataset.ObjectID) ([]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pointQuery(id)
}

// pointQuery publishes one point HIT; callers hold p.mu. The
// aggregated result is freshly allocated (ownership passes to the
// caller); only the per-worker answer rows are platform scratch.
func (p *Platform) pointQuery(id dataset.ObjectID) ([]int, error) {
	glyph, err := p.glyph(id)
	if err != nil {
		return nil, err
	}
	workers := p.draw()
	if cap(p.pointScratch) < len(workers) {
		p.pointScratch = make([][]int, len(workers))
	}
	answers := p.pointScratch[:len(workers)]
	for i, w := range workers {
		answers[i] = w.perceiveLabelsInto(p.renderer, glyph, answers[i])
		if w.slip() {
			corruptOneAttrInPlace(answers[i], p.ds.Schema(), w.rng)
		}
		if w.strategy != nil {
			w.strategy.AnswerLabels(w, p.ds.Schema(), answers[i])
		}
	}
	p.ledger.Record(PointQuery, len(workers), p.cfg.Pricing.AssignmentPrice(PointQuery, 1))
	return AggregateLabels(answers)
}
