package imagecvg

// One testing.B benchmark per table and figure of the paper's
// evaluation (section 6). Each benchmark regenerates the artifact —
// the same rows or series the paper reports — through the shared
// harness in internal/sim and logs the rendered table once, so
//
//	go test -bench . -benchtime 1x -v
//
// reproduces the entire evaluation. Absolute HIT counts carry
// simulation randomness; the shapes (who wins, by what factor, where
// crossovers fall) are asserted by the test suite in internal/sim.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"imagecvg/internal/core"
	"imagecvg/internal/experiment"
	"imagecvg/internal/sim"
)

const (
	benchSeed   = 42
	benchTrials = 2
)

// logOnce renders each experiment's table at most once per process so
// repeated b.N iterations do not flood the output.
var logOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := sim.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	var res fmt.Stringer
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.Run(sim.Options{Seed: benchSeed, Trials: benchTrials})
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, logged := logOnce.LoadOrStore(id, true); !logged && res != nil {
		b.Logf("%s (%s)\n%s", exp.Paper, exp.Description, res)
	}
}

// BenchmarkTable1 regenerates Table 1: female-coverage identification
// on the FERET slice through the simulated crowd under three
// quality-control settings (Group-Coverage ~70-80 HITs vs
// Base-Coverage ~300-400 vs upper bound 115).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2: Classifier-Coverage against
// standalone Group-Coverage for the nine published
// (dataset, classifier) configurations.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFigure6a regenerates Figure 6a: drowsiness-detection
// accuracy/loss disparity against spectacled subjects as coverage is
// restored.
func BenchmarkFigure6a(b *testing.B) { benchExperiment(b, "figure6a") }

// BenchmarkFigure6b regenerates Figure 6b: gender-detection disparity
// against Black subjects as coverage is restored.
func BenchmarkFigure6b(b *testing.B) { benchExperiment(b, "figure6b") }

// BenchmarkFigure7a regenerates Figure 7a: tasks vs number of group
// members f in [0, 2*tau] at N=100K (cost peaks at f ~ tau).
func BenchmarkFigure7a(b *testing.B) { benchExperiment(b, "figure7a") }

// BenchmarkFigure7b regenerates Figure 7b: tasks vs threshold tau at
// the worst case f = tau (linear growth along the upper bound).
func BenchmarkFigure7b(b *testing.B) { benchExperiment(b, "figure7b") }

// BenchmarkFigure7c regenerates Figure 7c: tasks vs set-size bound n
// (knee near n=10-20, flat logarithmic tail).
func BenchmarkFigure7c(b *testing.B) { benchExperiment(b, "figure7c") }

// BenchmarkFigure7d regenerates Figure 7d: tasks vs dataset size N
// from 1K to 1M (linear, < 6% of N in the plotted range).
func BenchmarkFigure7d(b *testing.B) { benchExperiment(b, "figure7d") }

// BenchmarkFigure7e regenerates Figure 7e: Multiple-Coverage vs brute
// force across the four Table 3 settings at sigma=4.
func BenchmarkFigure7e(b *testing.B) { benchExperiment(b, "figure7e") }

// BenchmarkFigure7f regenerates Figure 7f: Intersectional-Coverage vs
// brute force across the Table 3 settings on (2,2,2).
func BenchmarkFigure7f(b *testing.B) { benchExperiment(b, "figure7f") }

// BenchmarkFigure7g regenerates Figure 7g: Multiple-Coverage vs brute
// force as cardinality grows from 3 to 6 (widening gap).
func BenchmarkFigure7g(b *testing.B) { benchExperiment(b, "figure7g") }

// BenchmarkFigure7h regenerates Figure 7h: Intersectional-Coverage on
// (2,4) vs (2,2,2) (equal subgroup counts, similar cost).
func BenchmarkFigure7h(b *testing.B) { benchExperiment(b, "figure7h") }

// BenchmarkAblationCore regenerates the design-choice ablation table:
// the full Algorithm 1 vs variants without sibling inference and/or
// the checked-based lower bound.
func BenchmarkAblationCore(b *testing.B) { benchExperiment(b, "ablation-core") }

// BenchmarkAblationSampling regenerates the sampling-factor sweep of
// Multiple-Coverage (the paper's c = 2 default against alternatives).
func BenchmarkAblationSampling(b *testing.B) { benchExperiment(b, "ablation-sampling") }

// BenchmarkNoiseSweep regenerates the worker-noise robustness sweep:
// HITs and verdict correctness as slip rates grow from 0 to 35 %.
func BenchmarkNoiseSweep(b *testing.B) { benchExperiment(b, "noise-sweep") }

// BenchmarkSamplingBaseline regenerates the exact-vs-statistical
// comparison: Group-Coverage against Hoeffding-bound sampling across
// group sizes.
func BenchmarkSamplingBaseline(b *testing.B) { benchExperiment(b, "sampling-baseline") }

// BenchmarkAggregation regenerates the truth-inference comparison
// under spammer-heavy worker pools.
func BenchmarkAggregation(b *testing.B) { benchExperiment(b, "aggregation") }

// BenchmarkLockstepLatency regenerates the latency-bound lockstep
// comparison: the deterministic round scheduler must retain >= 2x of
// the concurrent engine's wall-clock win at parallelism 4 under
// per-HIT crowd latency. This is the record the CI regression gate
// tracks in BENCH_core.json.
func BenchmarkLockstepLatency(b *testing.B) { benchExperiment(b, "lockstep-latency") }

// BenchmarkJournalOverhead regenerates the checkpoint-cost comparison:
// the same latency-bound lockstep workload bare vs through the fsynced
// round journal. Crash-safety should cost one JSON encode plus one
// fsync per committed round — a few percent, not a multiple — and the
// CI regression gate tracks the record in BENCH_core.json.
func BenchmarkJournalOverhead(b *testing.B) { benchExperiment(b, "journal-overhead") }

// benchAuditThroughput runs one cell of the CPU-bound throughput
// harness directly (not through benchExperiment: the harness measures
// its own audit region, and the benchmark surfaces those numbers as
// custom metrics next to the standard allocs/op).
func benchAuditThroughput(b *testing.B, multiple bool) {
	b.ReportAllocs()
	var res *sim.ThroughputResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sim.RunAuditThroughput(sim.DefaultThroughputParams(),
			sim.Options{Seed: benchSeed, Trials: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	row := res.Rows[0]
	if !multiple {
		row = res.Rows[1]
	}
	b.ReportMetric(row.HITsPerSec, "HITs/sec")
	b.ReportMetric(row.AllocsPerHIT, "allocs/HIT")
}

// BenchmarkAuditThroughputMultiple measures the CPU-bound inner loop of
// Multiple-Coverage over the zero-delay crowd platform: ~3x10^4
// committed set HITs per run, reported as HITs/sec and allocs/HIT —
// the record the CI regression gate tracks in BENCH_core.json.
func BenchmarkAuditThroughputMultiple(b *testing.B) { benchAuditThroughput(b, true) }

// BenchmarkAuditThroughputClassifier measures the CPU-bound
// Classifier-Coverage cell (precision sample + Partition phase) of the
// same harness.
func BenchmarkAuditThroughputClassifier(b *testing.B) { benchAuditThroughput(b, false) }

// --- trial-runner benchmarks -----------------------------------------------

// benchmarkHarnessTable1 regenerates Table 1 with 8 crowd deployments
// per setting through the experiment engine at the given
// trial-parallelism — the workload whose wall-clock the trial pool
// targets (24 independent deployments, each a pure function of its
// seed).
func benchmarkHarnessTable1(b *testing.B, parallelism int) {
	exp, ok := sim.Lookup("table1")
	if !ok {
		b.Fatal("table1 missing from registry")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(sim.Options{Seed: benchSeed, Trials: 8, Parallelism: parallelism}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHarnessTable1Sequential is the trial-runner baseline
// (parallelism 1: the legacy sequential harness, byte-for-byte).
func BenchmarkHarnessTable1Sequential(b *testing.B) { benchmarkHarnessTable1(b, 1) }

// BenchmarkHarnessTable1Parallel runs the identical trials across a
// NumCPU-wide pool; the rendered table is identical, the wall-clock is
// not.
func BenchmarkHarnessTable1Parallel(b *testing.B) {
	benchmarkHarnessTable1(b, runtime.NumCPU())
}

// benchmarkTrialRunnerLatency measures the trial-runner on a
// multi-trial experiment whose oracle carries per-HIT latency — the
// regime the paper's deployments live in (a real HIT takes minutes;
// 1ms stands in). Eight independent Group-Coverage audits fan out
// across the pool, so wall-clock shrinks with parallelism even on a
// single core.
func benchmarkTrialRunnerLatency(b *testing.B, parallelism int) {
	ds, err := GenerateBinary(1_000, 20, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	g := FemaleGroup(ds.Schema())
	ids := ds.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := experiment.Run(experiment.Config{
			Name: "latency-audit", Seed: benchSeed, Trials: 8, Parallelism: parallelism,
		}, func(t experiment.Trial) (int, error) {
			// DelayOracle models what dominates a real deployment:
			// every HIT takes wall-clock time to come back.
			o := core.DelayOracle{Inner: core.NewTruthOracle(ds), Delay: time.Millisecond}
			res, err := core.GroupCoverage(o, ids, 50, 20, g)
			if err != nil {
				return 0, err
			}
			return res.Tasks, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialRunnerLatencySequential is the baseline: 8 trials in
// sequence, each paying its full round-trip latency.
func BenchmarkTrialRunnerLatencySequential(b *testing.B) { benchmarkTrialRunnerLatency(b, 1) }

// BenchmarkTrialRunnerLatencyParallel4 overlaps the same trials on a
// 4-wide pool (>= 2x wall-clock win; latency, not CPU, is the
// bottleneck).
func BenchmarkTrialRunnerLatencyParallel4(b *testing.B) { benchmarkTrialRunnerLatency(b, 4) }

// BenchmarkTrialRunnerLatencyParallel8 saturates the pool at the
// trial count.
func BenchmarkTrialRunnerLatencyParallel8(b *testing.B) { benchmarkTrialRunnerLatency(b, 8) }

// benchmarkMultipleLatency measures ONE Multiple-Coverage audit under
// per-HIT latency on the chosen engine — the wall-clock the lockstep
// scheduler must preserve: its virtual rounds commit as batches whose
// round-trips overlap across the pool, so determinism does not cost
// the concurrency win.
func benchmarkMultipleLatency(b *testing.B, parallelism int, lockstep bool) {
	schema, err := NewSchema(
		Attribute{Name: "group", Values: []string{"g0", "g1", "g2", "g3"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := DatasetFromCounts(schema, []int{1916, 30, 28, 26}, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	groups := GroupsForAttribute(schema, 0)
	ids := ds.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := core.DelayOracle{Inner: core.NewTruthOracle(ds), Delay: 300 * time.Microsecond}
		auditor := NewAuditor(oracle, 50, 25).WithSeed(benchSeed).WithParallelism(parallelism)
		if lockstep {
			auditor = auditor.WithLockstep()
		}
		if _, err := auditor.AuditGroups(ids, groups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultipleLatencySequential is the sequential Algorithm 2
// baseline: every HIT pays its full round-trip in series.
func BenchmarkMultipleLatencySequential(b *testing.B) { benchmarkMultipleLatency(b, 1, false) }

// BenchmarkMultipleLatencyLockstep4 runs the identical audit on the
// lockstep scheduler at parallelism 4 (>= 2x wall-clock win with
// bit-identical results at any width).
func BenchmarkMultipleLatencyLockstep4(b *testing.B) { benchmarkMultipleLatency(b, 4, true) }

// BenchmarkMultipleLatencyFree4 is the free-running engine at the same
// width, the ceiling lockstep is measured against.
func BenchmarkMultipleLatencyFree4(b *testing.B) { benchmarkMultipleLatency(b, 4, false) }

// benchmarkClassifierLatency measures ONE Classifier-Coverage audit
// under per-HIT latency on the chosen engine. The workload is the
// paper's precise-classifier regime (Table 2 FERET rows): a large
// predicted set whose precision sample dominates the sequential
// wall-clock, followed by a Partition phase whose first frontier is a
// wide reverse-set round — both phases the batched engine overlaps
// across the pool while committing the sequential engine's exact task
// breakdown.
func benchmarkClassifierLatency(b *testing.B, parallelism int, lockstep bool) {
	ds, err := GenerateBinary(2_000, 400, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	g := FemaleGroup(ds.Schema())
	// 380 true positives, 8 false positives: ~2% estimated FP rate
	// picks partitioning.
	predicted := ds.PredictedSet(g, 380, 8)
	ids := ds.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := core.DelayOracle{Inner: core.NewTruthOracle(ds), Delay: 300 * time.Microsecond}
		auditor := NewAuditor(oracle, 50, 25).WithSeed(benchSeed).WithParallelism(parallelism)
		if lockstep {
			auditor = auditor.WithLockstep()
		}
		if _, err := auditor.AuditWithClassifier(ids, predicted, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifierLatencySequential is the sequential Algorithm 4/5
// baseline: every sampling and cleanup HIT pays its full round-trip in
// series.
func BenchmarkClassifierLatencySequential(b *testing.B) { benchmarkClassifierLatency(b, 1, false) }

// BenchmarkClassifierLatencyLockstep4 runs the identical audit on the
// batched round engine with lockstep commits at parallelism 4 (>= 2x
// wall-clock win with bit-identical results at any width).
func BenchmarkClassifierLatencyLockstep4(b *testing.B) { benchmarkClassifierLatency(b, 4, true) }

// BenchmarkClassifierLatencyFree4 is the free-running batched engine
// at the same width.
func BenchmarkClassifierLatencyFree4(b *testing.B) { benchmarkClassifierLatency(b, 4, false) }

// --- micro-benchmarks of the core machinery --------------------------------

// BenchmarkGroupCoverage100K measures one Group-Coverage audit at the
// paper's default scale (N=100K, f=tau=50, n=50) with a perfect
// oracle: the pure algorithmic cost without crowd simulation.
func BenchmarkGroupCoverage100K(b *testing.B) {
	ds, err := GenerateBinary(100_000, 50, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	g := FemaleGroup(ds.Schema())
	ids := ds.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auditor := NewAuditor(NewTruthOracle(ds), 50, 50)
		if _, err := auditor.AuditGroup(ids, g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkMultipleCoverage measures one Multiple-Coverage audit of
// four groups (three rare minorities) at N=10K through the given
// engine parallelism — the Figure 7e workload whose wall-clock the
// concurrent engine targets.
func benchmarkMultipleCoverage(b *testing.B, parallelism int) {
	schema, err := NewSchema(
		Attribute{Name: "group", Values: []string{"g0", "g1", "g2", "g3"}},
	)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{9976, 10, 8, 6}
	ds, err := DatasetFromCounts(schema, counts, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	groups := GroupsForAttribute(schema, 0)
	ids := ds.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auditor := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(benchSeed).WithParallelism(parallelism)
		if _, err := auditor.AuditGroups(ids, groups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultipleCoverageSequential is the engine baseline
// (Parallelism 1: the paper's sequential Algorithm 2).
func BenchmarkMultipleCoverageSequential(b *testing.B) { benchmarkMultipleCoverage(b, 1) }

// BenchmarkMultipleCoverageParallel runs the same audit across a
// NumCPU-wide worker pool; identical verdicts and task counts, lower
// wall-clock once oracle calls carry real latency.
func BenchmarkMultipleCoverageParallel(b *testing.B) {
	benchmarkMultipleCoverage(b, runtime.NumCPU())
}

// BenchmarkSimulatedCrowdSetQuery measures one 50-image set query
// through the full platform (3 workers perceiving rendered glyphs).
func BenchmarkSimulatedCrowdSetQuery(b *testing.B) {
	ds, err := GenerateBinary(1_000, 100, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	crowd, err := NewSimulatedCrowd(ds, benchSeed, CrowdOptions{})
	if err != nil {
		b.Fatal(err)
	}
	g := FemaleGroup(ds.Schema())
	ids := ds.IDs()[:50]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crowd.SetQuery(ids, g); err != nil {
			b.Fatal(err)
		}
	}
}
