package crowd

import "math"

// The paper adopts the fixed-price model and leaves richer pricing to
// future work (section 8), citing bidding [52] and posted-price [53]
// mechanisms. This file implements simple versions of both so audits
// can be costed under them; the audit algorithms are unaffected (they
// minimize task counts regardless of the per-task price).

// SizePricing pays per image shown: a base price plus a per-object
// rate, a common compromise between fixed pricing and effort-fair
// payment for large set queries.
type SizePricing struct {
	Base     float64
	PerImage float64
}

// AssignmentPrice implements Pricing.
func (p SizePricing) AssignmentPrice(kind QueryKind, setSize int) float64 {
	if kind == PointQuery {
		return p.Base + p.PerImage
	}
	return p.Base + p.PerImage*float64(setSize)
}

// PostedPricing models a posted-price mechanism in the spirit of
// Singla & Krause [53]: the requester posts a price; workers whose
// private reservation price is below it accept. The simulator prices
// each assignment at the posted value and exposes the expected
// acceptance probability so deployments can check whether enough
// workers would take the task.
type PostedPricing struct {
	// Posted is the take-it-or-leave-it price per assignment.
	Posted float64
	// ReservationMean is the mean of the (exponential) reservation
	// price distribution across the worker population.
	ReservationMean float64
}

// AssignmentPrice implements Pricing.
func (p PostedPricing) AssignmentPrice(QueryKind, int) float64 { return p.Posted }

// AcceptanceProbability returns the probability that a random worker
// accepts the posted price, assuming exponentially distributed
// reservation prices.
func (p PostedPricing) AcceptanceProbability() float64 {
	if p.ReservationMean <= 0 {
		return 1
	}
	return 1 - math.Exp(-p.Posted/p.ReservationMean)
}

// BiddingPricing models a sealed-bid reverse auction in the spirit of
// Singer & Mittal [52]: each assignment is priced at the expected
// k-th lowest bid among Bidders workers whose bids are uniform on
// [Min, Max]. With k = Assignments winners paid the clearing bid, the
// expected price of the marginal winner is
//
//	Min + (Max-Min) * k/(Bidders+1)
//
// (the k-th order statistic of the uniform distribution).
type BiddingPricing struct {
	Min, Max float64
	Bidders  int
	Winners  int
}

// AssignmentPrice implements Pricing.
func (p BiddingPricing) AssignmentPrice(QueryKind, int) float64 {
	if p.Bidders <= 0 || p.Winners <= 0 || p.Winners > p.Bidders || p.Max < p.Min {
		return p.Min
	}
	return p.Min + (p.Max-p.Min)*float64(p.Winners)/float64(p.Bidders+1)
}
