package dataset

import (
	"fmt"
	"math/rand"

	"imagecvg/internal/pattern"
)

// FromCounts generates a dataset with an exact composition: counts[i]
// objects in the i-th fully-specified subgroup (pattern.SubgroupIndex
// order), shuffled with rng. A nil rng leaves the blocks in subgroup
// order, which is occasionally useful for deterministic tests.
func FromCounts(s *pattern.Schema, counts []int, rng *rand.Rand) (*Dataset, error) {
	if len(counts) != s.NumSubgroups() {
		return nil, fmt.Errorf("dataset: got %d counts, schema has %d subgroups", len(counts), s.NumSubgroups())
	}
	var labels [][]int
	for idx, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("dataset: negative count %d for subgroup %d", c, idx)
		}
		p := pattern.SubgroupAt(s, idx)
		for i := 0; i < c; i++ {
			labels = append(labels, []int(p.Clone()))
		}
	}
	d, err := New(s, labels)
	if err != nil {
		return nil, err
	}
	if rng != nil {
		d.Shuffle(rng)
	}
	return d, nil
}

// MustFromCounts is FromCounts panicking on error.
func MustFromCounts(s *pattern.Schema, counts []int, rng *rand.Rand) *Dataset {
	d, err := FromCounts(s, counts, rng)
	if err != nil {
		panic(err)
	}
	return d
}

// FromProportions generates n objects whose subgroup is drawn i.i.d.
// from the given proportions (normalized internally). Composition is
// random, not exact.
func FromProportions(s *pattern.Schema, n int, props []float64, rng *rand.Rand) (*Dataset, error) {
	if len(props) != s.NumSubgroups() {
		return nil, fmt.Errorf("dataset: got %d proportions, schema has %d subgroups", len(props), s.NumSubgroups())
	}
	total := 0.0
	for i, p := range props {
		if p < 0 {
			return nil, fmt.Errorf("dataset: negative proportion %f at %d", p, i)
		}
		total += p
	}
	if total == 0 {
		return nil, fmt.Errorf("dataset: all proportions zero")
	}
	labels := make([][]int, n)
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		idx := 0
		for j, p := range props {
			r -= p
			if r < 0 {
				idx = j
				break
			}
		}
		labels[i] = []int(pattern.SubgroupAt(s, idx))
	}
	return New(s, labels)
}

// GenderSchema is the single-binary-attribute schema used throughout
// the paper's experiments: gender with male (0) and female (1).
func GenderSchema() *pattern.Schema { return pattern.Binary("gender", "male", "female") }

// Female returns the minority group of the gender schema.
func Female(s *pattern.Schema) pattern.Group {
	return pattern.GroupOf("female", pattern.MustPattern(s, 1))
}

// Male returns the majority group of the gender schema.
func Male(s *pattern.Schema) pattern.Group {
	return pattern.GroupOf("male", pattern.MustPattern(s, 0))
}

// BinaryWithMinority generates a gender dataset with exactly minority
// females and n-minority males, shuffled.
func BinaryWithMinority(n, minority int, rng *rand.Rand) (*Dataset, error) {
	if minority < 0 || minority > n {
		return nil, fmt.Errorf("dataset: minority %d out of range for n=%d", minority, n)
	}
	s := GenderSchema()
	return FromCounts(s, []int{n - minority, minority}, rng)
}

// --- Paper dataset presets -------------------------------------------------
//
// The paper evaluates on slices of FERET and UTKFace with published
// gender compositions. Only the composition matters to the algorithms,
// so the presets reproduce exactly those counts.

// Preset names a dataset composition used in the paper's evaluation.
type Preset struct {
	Name    string
	Females int
	Males   int
}

// Paper preset compositions (Table 1 and Table 2).
var (
	// FERETTable1 is the MTurk slice: females=215, males=1307.
	FERETTable1 = Preset{Name: "FERET (Table 1 slice)", Females: 215, Males: 1307}
	// FERETUnique is the unique-individual slice: females=403, males=591.
	FERETUnique = Preset{Name: "FERET DB", Females: 403, Males: 591}
	// UTKFace200 is the covered UTKFace slice: females=200, males=2800.
	UTKFace200 = Preset{Name: "UTKFace (200F)", Females: 200, Males: 2800}
	// UTKFace20 is the uncovered UTKFace slice: females=20, males=2980.
	UTKFace20 = Preset{Name: "UTKFace (20F)", Females: 20, Males: 2980}
)

// Size returns the preset's total object count.
func (p Preset) Size() int { return p.Females + p.Males }

// Generate materializes the preset as a shuffled dataset.
func (p Preset) Generate(rng *rand.Rand) *Dataset {
	d, err := BinaryWithMinority(p.Size(), p.Females, rng)
	if err != nil {
		panic(err) // presets are statically valid
	}
	return d
}

// String implements fmt.Stringer.
func (p Preset) String() string {
	return fmt.Sprintf("%s (females=%d, males=%d)", p.Name, p.Females, p.Males)
}
