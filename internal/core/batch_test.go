package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// Compile-time interface checks: the truth oracle and the adapter are
// batch oracles.
var (
	_ BatchOracle = (*TruthOracle)(nil)
	_ BatchOracle = (*batchAdapter)(nil)
	_ BatchOracle = (*CachingOracle)(nil)
)

// plainOracle hides TruthOracle's batch methods so tests can exercise
// the adapter path.
type plainOracle struct{ inner *TruthOracle }

func (p plainOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return p.inner.SetQuery(ids, g)
}
func (p plainOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return p.inner.ReverseSetQuery(ids, g)
}
func (p plainOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	return p.inner.PointQuery(id)
}

// randomRequests builds a mixed round of set and reverse-set queries.
func randomRequests(d *dataset.Dataset, rng *rand.Rand, n int) []SetRequest {
	g := dataset.Female(d.Schema())
	ids := d.IDs()
	reqs := make([]SetRequest, n)
	for i := range reqs {
		lo := rng.Intn(len(ids) - 1)
		hi := lo + 1 + rng.Intn(len(ids)-lo-1)
		reqs[i] = SetRequest{IDs: ids[lo:hi], Group: g, Reverse: rng.Intn(2) == 0}
	}
	return reqs
}

func TestAsBatchOracleReturnsNativeImplementation(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	if bo := AsBatchOracle(o, 4); bo != BatchOracle(o) {
		t.Error("AsBatchOracle should hand back the native implementation")
	}
	if _, ok := AsBatchOracle(plainOracle{o}, 4).(*batchAdapter); !ok {
		t.Error("plain oracles should be lifted with the adapter")
	}
}

func TestBatchAdapterMatchesSequentialAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	d, err := dataset.BinaryWithMinority(300, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs := randomRequests(d, rng, 64)

	seq := NewTruthOracle(d)
	want := make([]bool, len(reqs))
	for i, req := range reqs {
		if req.Reverse {
			want[i], err = seq.ReverseSetQuery(req.IDs, req.Group)
		} else {
			want[i], err = seq.SetQuery(req.IDs, req.Group)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, par := range []int{1, 4, 16} {
		o := NewTruthOracle(d)
		got, err := NewBatchAdapter(plainOracle{o}, par).SetQueryBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: answer %d = %v, want %v", par, i, got[i], want[i])
			}
		}
		if o.Tasks() != seq.Tasks() {
			t.Errorf("parallelism %d: tasks %v, want %v", par, o.Tasks(), seq.Tasks())
		}
	}
}

func TestBatchAdapterPointQueryBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	d, err := dataset.BinaryWithMinority(100, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	ids := d.IDs()[:40]
	o := NewTruthOracle(d)
	labels, err := NewBatchAdapter(plainOracle{o}, 8).PointQueryBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want, _ := d.TrueLabels(id)
		if len(labels[i]) != len(want) || labels[i][0] != want[0] {
			t.Fatalf("labels[%d] = %v, want %v", i, labels[i], want)
		}
	}
	if got := o.Tasks().Point; got != len(ids) {
		t.Errorf("point tasks = %d, want %d", got, len(ids))
	}
}

// gaugeOracle tracks the number of concurrently in-flight queries.
type gaugeOracle struct {
	inner         Oracle
	inflight, max int64
	mu            sync.Mutex
}

func (g *gaugeOracle) enter() {
	n := atomic.AddInt64(&g.inflight, 1)
	g.mu.Lock()
	if n > g.max {
		g.max = n
	}
	g.mu.Unlock()
}
func (g *gaugeOracle) exit() { atomic.AddInt64(&g.inflight, -1) }

func (g *gaugeOracle) SetQuery(ids []dataset.ObjectID, gr pattern.Group) (bool, error) {
	g.enter()
	defer g.exit()
	return g.inner.SetQuery(ids, gr)
}
func (g *gaugeOracle) ReverseSetQuery(ids []dataset.ObjectID, gr pattern.Group) (bool, error) {
	g.enter()
	defer g.exit()
	return g.inner.ReverseSetQuery(ids, gr)
}
func (g *gaugeOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	g.enter()
	defer g.exit()
	return g.inner.PointQuery(id)
}

func TestBatchAdapterBoundsWorkerPool(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	d, err := dataset.BinaryWithMinority(500, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	gauge := &gaugeOracle{inner: NewTruthOracle(d)}
	const par = 4
	if _, err := NewBatchAdapter(gauge, par).SetQueryBatch(randomRequests(d, rng, 200)); err != nil {
		t.Fatal(err)
	}
	if gauge.max > par {
		t.Errorf("max in-flight = %d, pool bound %d", gauge.max, par)
	}
}

// errAtOracle fails specific request indices (by arrival order).
type errAtOracle struct {
	calls int64
	fail  map[int64]error
}

func (e *errAtOracle) tick() error {
	n := atomic.AddInt64(&e.calls, 1) - 1
	return e.fail[n]
}
func (e *errAtOracle) SetQuery([]dataset.ObjectID, pattern.Group) (bool, error) {
	return true, e.tick()
}
func (e *errAtOracle) ReverseSetQuery([]dataset.ObjectID, pattern.Group) (bool, error) {
	return true, e.tick()
}
func (e *errAtOracle) PointQuery(dataset.ObjectID) ([]int, error) { return []int{0}, e.tick() }

func TestBatchAdapterPropagatesErrors(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 0, 1})
	g := female(d)
	reqs := make([]SetRequest, 8)
	for i := range reqs {
		reqs[i] = SetRequest{IDs: d.IDs(), Group: g}
	}
	wantErr := fmt.Errorf("wrapped: %w", ErrTransient)
	o := &errAtOracle{fail: map[int64]error{3: wantErr}}
	if _, err := NewBatchAdapter(o, 1).SetQueryBatch(reqs); !errors.Is(err, ErrTransient) {
		t.Errorf("sequential adapter: err = %v, want transient", err)
	}
	o = &errAtOracle{fail: map[int64]error{3: wantErr}}
	if _, err := NewBatchAdapter(o, 8).SetQueryBatch(reqs); !errors.Is(err, ErrTransient) {
		t.Errorf("parallel adapter: err = %v, want transient", err)
	}
}

func TestTruthOracleNativeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	d, err := dataset.BinaryWithMinority(200, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	o := NewTruthOracle(d)
	reqs := randomRequests(d, rng, 20)
	answers, err := o.SetQueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(reqs) {
		t.Fatalf("answers = %d, want %d", len(answers), len(reqs))
	}
	if o.Tasks().Total() != len(reqs) {
		t.Errorf("tasks = %v, want %d total", o.Tasks(), len(reqs))
	}
	labels, err := o.PointQueryBatch(d.IDs()[:7])
	if err != nil || len(labels) != 7 {
		t.Fatalf("point batch: %v %v", labels, err)
	}
	if got := o.Tasks().Point; got != 7 {
		t.Errorf("point tasks = %d, want 7", got)
	}
}

func TestEmptyBatches(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	for _, bo := range []BatchOracle{
		NewTruthOracle(d),
		NewBatchAdapter(plainOracle{NewTruthOracle(d)}, 4),
		NewCachingOracle(NewTruthOracle(d)),
	} {
		if answers, err := bo.SetQueryBatch(nil); err != nil || len(answers) != 0 {
			t.Errorf("%T empty set batch: %v %v", bo, answers, err)
		}
		if labels, err := bo.PointQueryBatch(nil); err != nil || len(labels) != 0 {
			t.Errorf("%T empty point batch: %v %v", bo, labels, err)
		}
	}
}
