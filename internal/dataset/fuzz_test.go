package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadJSON hardens the dataset loader: arbitrary bytes must either
// fail cleanly or produce a dataset that re-serializes and re-parses to
// the same composition. Seeds run in every plain `go test`.
func FuzzReadJSON(f *testing.F) {
	var good bytes.Buffer
	d := MustNew(GenderSchema(), [][]int{{0}, {1}, {0}})
	if err := d.WriteJSON(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"attributes":[],"labels":[]}`))
	f.Add([]byte(`{"attributes":[{"name":"g","values":["a","b"]}],"labels":[[5]]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Size() != ds.Size() {
			t.Fatalf("round trip changed size %d -> %d", ds.Size(), again.Size())
		}
	})
}
