package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// fuzzFeed is an AnswerFeed over raw fuzz-derived entries, including
// malformed ones (negative workers, out-of-range values, non-monotone
// HIT indices) the real ResponseLog would never emit.
type fuzzFeed struct{ entries []WorkerAnswer }

func (f *fuzzFeed) AnswersSince(n int) []WorkerAnswer {
	if n < 0 {
		n = 0
	}
	if n >= len(f.entries) {
		return nil
	}
	return append([]WorkerAnswer(nil), f.entries[n:]...)
}

// probeRecorder notes, for each forwarded set round, how many requests
// it carried — the probe schedule made observable.
type probeRecorder struct {
	inner  BatchOracle
	rounds []int
}

func (r *probeRecorder) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return r.inner.SetQuery(ids, g)
}

func (r *probeRecorder) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return r.inner.ReverseSetQuery(ids, g)
}

func (r *probeRecorder) PointQuery(id dataset.ObjectID) ([]int, error) {
	return r.inner.PointQuery(id)
}

func (r *probeRecorder) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	r.rounds = append(r.rounds, len(reqs))
	return r.inner.SetQueryBatch(reqs)
}

func (r *probeRecorder) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	return r.inner.PointQueryBatch(ids)
}

// FuzzTrustVerdict fuzzes the trust middleware end to end: arbitrary
// answer/probe streams must never panic or produce non-finite scores,
// trust verdicts must be monotone in probe failures, and the probe
// schedule must not depend on the batch width the engine negotiated.
func FuzzTrustVerdict(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 3, 5)
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f}, 1, 12)
	f.Add([]byte{}, 9, 1)
	f.Fuzz(func(t *testing.T, data []byte, probeEvery, rounds int) {
		d, err := dataset.BinaryWithMinority(30, 10, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())
		probes := GoldProbes(d, []pattern.Group{g}, 3, 5)

		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			v := int(int8(data[pos]))
			pos++
			return v
		}

		// Part 1: Score/Distrusts are total over arbitrary counts.
		pol := DefaultTrustPolicy()
		for i := 0; i < 4; i++ {
			probesN, fails, answers, contra := next(), next(), next(), next()
			s := pol.Score(probesN, fails, answers, contra)
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("Score(%d,%d,%d,%d) = %v", probesN, fails, answers, contra, s)
			}
			pol.Distrusts(s, next())
			// Monotone: one more probe failure never raises the score.
			if worse := pol.Score(probesN, fails+1, answers, contra); worse > s {
				t.Fatalf("score rose with an extra probe failure: %v -> %v", s, worse)
			}
		}

		// Part 2: the full middleware over a fuzz-shaped answer feed
		// (malformed entries included) never panics, and its report is
		// finite.
		if probeEvery < 0 {
			probeEvery = -probeEvery
		}
		probeEvery = probeEvery%6 + 1
		if rounds < 0 {
			rounds = -rounds
		}
		rounds = rounds%12 + 1
		feed := &fuzzFeed{}
		run := func(width int) []int {
			rec := &probeRecorder{inner: NewTruthOracle(d)}
			tr, err := NewTrustOracle(rec, TrustConfig{
				Policy: TrustPolicy{ProbeEvery: probeEvery},
				Probes: probes,
				Feed:   feed,
				Screen: &recordingScreener{},
			})
			if err != nil {
				t.Fatal(err)
			}
			tr = tr.withBatchParallelism(width)
			ids := d.IDs()
			for r := 0; r < rounds; r++ {
				n := abs(next())%3 + 1
				reqs := make([]SetRequest, n)
				for i := range reqs {
					lo := abs(next()) % (len(ids) - 3)
					reqs[i] = SetRequest{IDs: ids[lo : lo+3], Group: g, Reverse: next()&1 == 1}
				}
				// Grow the feed with fuzz-shaped raw answers for this
				// round (sometimes short, sometimes garbage).
				for k := abs(next()) % 8; k > 0; k-- {
					feed.entries = append(feed.entries, WorkerAnswer{
						HIT:    next(),
						Worker: next(),
						Value:  next(),
					})
				}
				if _, err := tr.SetQueryBatch(reqs); err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
			}
			rep := tr.Report()
			if rep.ProbesIssued > rounds {
				t.Fatalf("issued %d probes over %d rounds", rep.ProbesIssued, rounds)
			}
			for _, w := range rep.Workers {
				if math.IsNaN(w.Score) || math.IsInf(w.Score, 0) {
					t.Fatalf("non-finite score for worker %d: %+v", w.Worker, w)
				}
			}
			return rec.rounds
		}

		// Part 3: probe schedule is independent of batch width. Replay
		// the identical round sequence at widths 1 and 16 by rewinding
		// the fuzz cursor and the feed.
		mark := pos
		narrow := run(1)
		pos = mark
		feed.entries = nil
		wide := run(16)
		if !reflect.DeepEqual(narrow, wide) {
			t.Fatalf("probe schedule depends on batch width: %v vs %v", narrow, wide)
		}
	})
}
