package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the concurrent audit engine behind
// MultipleOptions.Parallelism: independent super-group audits — and
// the per-member re-audits of the covered-penalty branch — run across
// a bounded worker pool, the sampling phase is issued as one batched
// oracle round, and every audit owns a child RNG split
// deterministically from the seed so no goroutine ever shares
// randomness. Results are assembled in super-group order, so with an
// order-independent oracle the engine is bit-for-bit equivalent to
// the sequential Algorithm 2 at every parallelism level. With
// MultipleOptions.Lockstep the audit rounds dispatch through the
// lockstep scheduler (lockstep.go) instead of the free pool, extending
// that equivalence to order-dependent oracles.

// normalizeParallelism maps non-positive pool widths to 1, the one
// normalization rule every engine shares: "no parallelism requested"
// always means a single worker, never a hidden default width.
// (GroupCoverageRounds historically coerced values < 1 to a magic 8
// while the rest of the package used 1; the shared helper pins the
// uniform behavior.)
func normalizeParallelism(parallelism int) int {
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// RunBounded runs fn(i) for every index in [0, n) across at most
// parallelism goroutines and returns the lowest-indexed error. Once a
// task fails, tasks with HIGHER indices are no longer dispatched —
// every query costs crowd money, so a doomed audit must not keep
// posting HITs the sequential engine would never pay for — but tasks
// with lower indices still run: they might fail at a lower index, and
// running them is exactly what the sequential engine would have paid
// for anyway. When each task's failure is a function of its own index
// (not of shared call-order state), the surfaced error is therefore
// deterministic under any scheduling: the lowest failing index, the
// same error the sequential loop stops on. Besides the audit engine,
// the experiment harness reuses this pool to fan independent trials
// out across workers.
func RunBounded(parallelism, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	errs := make([]error, n)
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
		return firstError(errs)
	}
	// minFailed is the lowest failing index observed so far; only
	// tasks above it are skipped.
	var minFailed atomic.Int64
	minFailed.Store(int64(n))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if int64(i) > minFailed.Load() {
					continue
				}
				if errs[i] = fn(i); errs[i] != nil {
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstError(errs)
}

// splitSeeds draws one child seed per audit from the parent RNG, in
// deterministic order, so concurrently running audits never touch the
// parent and identical seeds reproduce identical child streams at any
// parallelism level.
func splitSeeds(rng *rand.Rand, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// mixSeed derives a sub-seed for the i-th follow-up task of an audit
// (splitmix-style odd-constant multiply) so penalty re-audits get
// independent child RNGs too.
func mixSeed(seed int64, i int) int64 {
	x := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x & (1<<63 - 1))
}

// LabelSamplesBatch is the sampling phase of Algorithm 6 issued as one
// batched oracle round: the same objects LabelSamples would pick with
// the same RNG (both use chooseSamples) are labeled through a single
// PointQueryBatch call, so a crowd deployment posts all c*tau sampling
// HITs concurrently. The returned remaining ids, labeled set, and task
// count are identical to the sequential LabelSamples for
// order-independent oracles.
func LabelSamplesBatch(o BatchOracle, ids []dataset.ObjectID, k int, l *LabeledSet, rng *rand.Rand) (remaining []dataset.ObjectID, tasks int, err error) {
	if o == nil {
		return nil, 0, errNilOracleOrSet
	}
	batch, remaining, err := chooseSamples(ids, k, l, rng)
	if err != nil {
		return nil, 0, err
	}
	labels, err := o.PointQueryBatch(batch)
	// A partial-prefix batch (budget governor) committed — and paid —
	// the first len(labels) queries: fold them into L so the partial
	// result keeps every answered HIT, then surface the error.
	for i := 0; i < len(labels) && i < len(batch); i++ {
		l.Add(batch[i], labels[i])
	}
	if err != nil {
		return remaining, len(labels), err
	}
	return remaining, len(batch), nil
}

// multipleCoverageParallel is Algorithm 2 on the concurrent engine;
// MultipleCoverage dispatches here when opts.Parallelism > 1 or
// opts.Lockstep is set (inputs already validated, c is the resolved
// sample factor). The audit rounds dispatch through runAuditPool, so
// the same phase structure runs free-running or in lockstep.
func multipleCoverageParallel(o Oracle, ids []dataset.ObjectID, n, tau, c int, groups []pattern.Group, opts MultipleOptions) (*MultipleResult, error) {
	res := &MultipleResult{
		Results: make([]MultipleGroupResult, len(groups)),
		Labeled: NewLabeledSet(),
	}
	budget := c * tau
	if opts.NoSampling {
		budget = 0
	}
	batchWidth := normalizeParallelism(opts.Parallelism)

	// Sampling round: one batch of point queries. Retries, when
	// enabled, wrap the inner oracle per query; the jitter RNG is the
	// parent (the batch is issued before any audit goroutine starts).
	if err := opts.context().Err(); err != nil {
		return nil, err
	}
	sampler := AsBatchOracle(withRetry(opts.context(), o, opts.Retry, opts.Rng), batchWidth)
	remaining, sampleTasks, err := LabelSamplesBatch(sampler, ids, budget, res.Labeled, opts.Rng)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return settleSamplingExhausted(res, remaining, sampleTasks, groups, len(ids)), nil
		}
		return nil, err
	}
	res.RemainingIDs = remaining
	res.SampleTasks = sampleTasks

	plans := buildSuperPlans(res.Labeled, tau, groups, Aggregate(res.Labeled, len(ids), tau, groups, opts.Multi))
	seeds := splitSeeds(opts.Rng, len(plans))

	// Round 1: every super-group union audit runs across the pool (or
	// in lockstep rounds, task index = super-group index).
	unionRes := make([]GroupResult, len(plans))
	err = runAuditPool(o, opts, seeds, len(plans), func(si int, audit Oracle) error {
		var e error
		unionRes[si], e = GroupCoverage(audit, remaining, n, plans[si].tauPrime, plans[si].union)
		return e
	})
	if err != nil {
		return nil, err
	}

	// Round 2: the covered-penalty re-audits — every member of every
	// covered multi-member super-group — also fan out, each with its
	// own child RNG mixed from the super's seed; the canonical task
	// order is (super-group index, member index).
	type penaltyJob struct{ si, mi int }
	var jobs []penaltyJob
	var jobSeeds []int64
	for si, plan := range plans {
		if len(plan.members) > 1 && unionRes[si].Covered {
			for mi := range plan.members {
				jobs = append(jobs, penaltyJob{si, mi})
				jobSeeds = append(jobSeeds, mixSeed(seeds[si], mi))
			}
		}
	}
	subRes := make([]GroupResult, len(jobs))
	err = runAuditPool(o, opts, jobSeeds, len(jobs), func(j int, audit Oracle) error {
		job := jobs[j]
		g := groups[plans[job.si].members[job.mi]]
		var e error
		subRes[j], e = GroupCoverage(audit, remaining, n, clampTau(tau-res.Labeled.Count(g)), g)
		return e
	})
	if err != nil {
		return nil, err
	}

	// Settle in super-group order through the same function as the
	// sequential engine, so assembly is deterministic and identical.
	sub := 0
	for si, plan := range plans {
		var subs []GroupResult
		if len(plan.members) > 1 && unionRes[si].Covered {
			subs = subRes[sub : sub+len(plan.members)]
			sub += len(plan.members)
		}
		settleSuper(res, plan, unionRes[si], subs, groups, len(ids))
	}
	res.Tasks = res.SampleTasks + res.AuditTasks
	return res, nil
}
