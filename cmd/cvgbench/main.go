// Command cvgbench regenerates the paper's evaluation artifacts: every
// table and figure of section 6 plus the extension experiments,
// printed as aligned text tables.
//
// Usage:
//
//	cvgbench -list
//	cvgbench -exp table1 -seed 42 -trials 5
//	cvgbench -exp all
//	cvgbench -exp all -json BENCH_core.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"imagecvg/internal/sim"
)

// benchRecord is one experiment's machine-readable result, for
// tracking the performance trajectory across commits.
type benchRecord struct {
	ID     string `json:"id"`
	Paper  string `json:"paper"`
	Seed   int64  `json:"seed"`
	Trials int    `json:"trials"`
	// NsPerOp is wall-clock per trial, so records stay comparable
	// across runs with different -trials settings.
	NsPerOp int64 `json:"ns_per_op"`
	// Seconds is the experiment's total wall-clock.
	Seconds float64 `json:"seconds"`
	// HITTasks is the experiment's crowd-task total when the result
	// reports one (the paper's single cost metric).
	HITTasks float64 `json:"hit_tasks,omitempty"`
}

// taskTotaler is implemented by results that can report their total
// crowd cost (e.g. the multi-group figures).
type taskTotaler interface{ TotalTasks() float64 }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("cvgbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		exp      = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		seed     = fs.Int64("seed", 42, "base random seed")
		trials   = fs.Int("trials", 3, "repetitions averaged per configuration")
		list     = fs.Bool("list", false, "list available experiments and exit")
		jsonPath = fs.String("json", "", "write benchmark records (ns/op, HIT counts) as JSON, e.g. BENCH_core.json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(out, "available experiments:")
		for _, e := range sim.Experiments() {
			fmt.Fprintf(out, "  %-18s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		return 0
	}

	var records []benchRecord
	runOne := func(e sim.Experiment) error {
		start := time.Now()
		res, err := e.Run(*seed, *trials)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(out, "=== %s (%s) — %s [%.1fs]\n%s\n",
			e.ID, e.Paper, e.Description, elapsed.Seconds(), res)
		perOp := *trials
		if perOp < 1 {
			perOp = 1 // experiments treat non-positive trial counts as 1
		}
		rec := benchRecord{
			ID: e.ID, Paper: e.Paper, Seed: *seed, Trials: *trials,
			NsPerOp: elapsed.Nanoseconds() / int64(perOp), Seconds: elapsed.Seconds(),
		}
		if tt, ok := res.(taskTotaler); ok {
			rec.HITTasks = tt.TotalTasks()
		}
		records = append(records, rec)
		return nil
	}

	if *exp == "all" {
		for _, e := range sim.Experiments() {
			if err := runOne(e); err != nil {
				fmt.Fprintln(errOut, "cvgbench:", err)
				return 1
			}
		}
	} else {
		e, ok := sim.Lookup(*exp)
		if !ok {
			fmt.Fprintf(errOut, "cvgbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		if err := runOne(e); err != nil {
			fmt.Fprintln(errOut, "cvgbench:", err)
			return 1
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(errOut, "cvgbench:", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(errOut, "cvgbench:", err)
			return 1
		}
		fmt.Fprintf(out, "wrote %d benchmark records to %s\n", len(records), *jsonPath)
	}
	return 0
}
