package crowd

import (
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
)

// TestPlatformDeterminism: identical seeds must reproduce the exact
// same answers and ledger — the property every experiment in the
// repository relies on.
func TestPlatformDeterminism(t *testing.T) {
	build := func() (*Platform, *dataset.Dataset) {
		rng := rand.New(rand.NewSource(55))
		d, err := dataset.BinaryWithMinority(300, 60, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(56)
		p, err := NewPlatform(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p, d
	}
	p1, d1 := build()
	p2, _ := build()
	g := dataset.Female(d1.Schema())
	ids := d1.IDs()
	for i := 0; i+10 <= len(ids); i += 10 {
		a1, err := p1.SetQuery(ids[i:i+10], g)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := p2.SetQuery(ids[i:i+10], g)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Fatalf("query %d diverged: %v vs %v", i, a1, a2)
		}
	}
	if p1.Ledger().Snapshot() != p2.Ledger().Snapshot() {
		t.Errorf("ledgers diverged: %v vs %v", p1.Ledger().Snapshot(), p2.Ledger().Snapshot())
	}
}

// TestPlatformDifferentSeedsDiffer: different seeds should eventually
// produce at least one different worker draw or answer on a noisy
// borderline workload; guards against the seed being ignored.
func TestPlatformSeedsMatter(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	d, err := dataset.BinaryWithMinority(100, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := DefaultConfig(1)
	cfg1.Profile = PoolProfile{Size: 20, SlipMin: 0.4, SlipMax: 0.5, PerceptNoise: 10}
	cfg2 := cfg1
	cfg2.Seed = 2

	p1, err := NewPlatform(d, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlatform(d, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	diverged := false
	ids := d.IDs()
	for i := 0; i+2 <= len(ids) && !diverged; i += 2 {
		a1, _ := p1.SetQuery(ids[i:i+2], g)
		a2, _ := p2.SetQuery(ids[i:i+2], g)
		if a1 != a2 {
			diverged = true
		}
	}
	if !diverged {
		t.Error("50 noisy queries never diverged across seeds; seeding looks broken")
	}
}
