// FERET audit: the paper's live MTurk experiment (Table 1) end to
// end — the FERET slice with 215 females and 1307 males audited
// through the full crowd simulator with imperfect workers, 3-way
// majority vote, and dollar-cost accounting.
//
//	go run ./examples/feret_audit
package main

import (
	"fmt"
	"log"
	"math/rand"

	"imagecvg"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	ds := imagecvg.PresetFERETTable1.Generate(rng)
	fmt.Println("dataset:", imagecvg.PresetFERETTable1)

	crowd, err := imagecvg.NewSimulatedCrowd(ds, 17, imagecvg.CrowdOptions{
		PoolSize: 40,
		Rating:   true, // PercentAssignmentsApproved >= 95, NumberHITsApproved >= 100
	})
	if err != nil {
		log.Fatal(err)
	}
	auditor := imagecvg.NewAuditor(crowd, 50, 50)
	female := imagecvg.FemaleGroup(ds.Schema())

	res, err := auditor.AuditGroup(ds.IDs(), female)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGroup-Coverage verdict:", res)
	fmt.Println("crowd cost:            ", crowd.Cost())
	fmt.Printf("paper's upper bound:    %.0f HITs\n",
		imagecvg.UpperBoundHITs(ds.Size(), 50, 50))

	// The same audit with the naive baseline, on a fresh ledger.
	crowd.ResetCost()
	base, err := auditor.AuditBaseline(ds.IDs(), female)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBase-Coverage verdict: ", base)
	fmt.Println("crowd cost:            ", crowd.Cost())
}
