// Package experiment is the generic parallel experiment engine behind
// the sim harness. The paper's evaluation (section 6) is a matrix of
// experiments — datasets x algorithms x quality-control settings x
// trials — and every cell of that matrix repeats the same shape of
// work: derive a trial seed, build a dataset and an oracle, run an
// audit, record a few observations, aggregate means over the trials.
// This package owns that shape once:
//
//   - Config describes one cell: a name, a base seed, a trial count,
//     the worker-pool width, and an optional oracle factory shared by
//     every trial (so a CachingOracle can amortize repeated HITs
//     across trials — see SharedCache).
//   - Run fans a cell's independent trials out across the bounded
//     worker pool of internal/core (RunBounded); each trial owns a
//     child RNG seeded deterministically from Config.Seed + index, so
//     results are byte-identical at every parallelism level and
//     identical to the legacy sequential loops at parallelism 1.
//   - RunMany flattens a whole grid of cells into one pool, so sweeps
//     with few trials per cell still fill every worker.
//   - Result aggregates the per-trial observations (mean / stddev /
//     95% CI via internal/stats) while preserving trial order.
//
// Trials must be pure functions of their Trial value: everything
// random flows from Trial.Rng (or Trial.Seed), and shared state stays
// inside concurrency-safe oracles. That is what lets the engine
// promise order-independent aggregation under any parallelism.
package experiment

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"imagecvg/internal/core"
	"imagecvg/internal/stats"
)

// Config describes one cell of an experiment matrix.
type Config struct {
	// Name labels the cell in timing reports, e.g. "table1/majority".
	Name string
	// Seed is the cell's base seed; trial i runs with Seed + i. Grids
	// should stride their cells' base seeds (the harness uses 100 or
	// 1000) so trial ranges never collide.
	Seed int64
	// Trials is the number of independent repetitions; values <= 0 run
	// a single trial, uniformly across every experiment.
	Trials int
	// Parallelism bounds how many of THIS cell's trials run
	// concurrently (a RunMany grid's pool is sized by the widest
	// cell, but each cell never exceeds its own bound); <= 1 runs the
	// cell's trials strictly sequentially, reproducing the legacy
	// harness byte-for-byte. Concurrent trials that share an oracle
	// require it to be concurrency-safe.
	Parallelism int
	// Lockstep asks the trial body to run its audits on the
	// deterministic lockstep scheduler (core.MultipleOptions.Lockstep)
	// instead of the free-running pool. The engine itself only passes
	// the knob through to Trial.Lockstep — it is the trial body that
	// wires it into its audit options — but carrying it in the Config
	// keeps a whole grid's cells reproducible across the
	// engine-parallelism axis even when their oracles are
	// order-dependent (the crowd simulator).
	Lockstep bool
	// EngineParallelism, when positive, overrides the audit engine's
	// worker-pool width inside the trial body (the pool that runs
	// super-group audits concurrently or lifts oracles into batched
	// rounds) — as distinct from Parallelism, which bounds how many
	// whole trials run at once. Like Lockstep it is a pass-through: the
	// engine echoes it on Trial.EngineParallelism and the trial body
	// wires it into its audit options, falling back to the
	// experiment's own default when zero.
	EngineParallelism int
	// Budget, when active, caps the committed crowd queries of each
	// trial's audit. Like Lockstep it is a pass-through: the engine
	// echoes it on Trial.Budget and the trial body wires it into its
	// audit options (core.MultipleOptions.Budget /
	// core.ClassifierOptions.Budget), so a grid can sweep the budget
	// axis the same way it sweeps engine widths. Budgeted cells that
	// want cross-parallelism byte-identity must also run under
	// Lockstep.
	Budget core.Budget
	// Ctx cancels the cell: a trial whose context is already cancelled
	// fails before it dispatches, and the engine echoes the context on
	// Trial.Ctx so the trial body can thread it into its audit options
	// (core.MultipleOptions.Ctx) — a killed sweep then stops at the next
	// round boundary instead of finishing the in-flight audits. Nil
	// means context.Background().
	Ctx context.Context
	// Oracle optionally builds the oracle a trial audits through. Nil
	// when the trial body constructs its own (the common case: each
	// trial generates its own dataset). Use SharedCache to hand every
	// trial one deduplicating oracle so HITs amortize across trials.
	Oracle Factory
	// Timing, when non-nil, collects per-trial wall-clock across every
	// cell that shares the recorder.
	Timing *Recorder
}

// normalTrials applies the uniform trial-count rule.
func (c Config) normalTrials() int {
	if c.Trials <= 0 {
		return 1
	}
	return c.Trials
}

// Trial hands one repetition its identity and deterministic inputs.
type Trial struct {
	// Cell is the index of the trial's Config in a RunMany grid (0 for
	// Run).
	Cell int
	// Index is the repetition number within the cell.
	Index int
	// Seed is Config.Seed + Index; derive any auxiliary seeds from it
	// (the harness uses fixed offsets like Seed + 7).
	Seed int64
	// Rng is a fresh child RNG seeded with Seed. No other trial ever
	// touches it.
	Rng *rand.Rand
	// Lockstep echoes Config.Lockstep: the trial body should run its
	// audits with core.MultipleOptions.Lockstep set accordingly.
	Lockstep bool
	// EngineParallelism echoes Config.EngineParallelism; zero means
	// the trial body applies its own default engine width.
	EngineParallelism int
	// Budget echoes Config.Budget; the zero value leaves the trial's
	// audits ungoverned.
	Budget core.Budget
	// Ctx echoes Config.Ctx (never nil): thread it into the audit
	// options so cancellation reaches the round boundaries.
	Ctx context.Context
	// Oracle is the cell's shared oracle when Config.Oracle is set;
	// nil otherwise.
	Oracle core.Oracle
}

// TrialResult is one finished repetition.
type TrialResult[T any] struct {
	// Index and Seed identify the trial.
	Index int
	Seed  int64
	// Value is the trial's observation.
	Value T
	// Elapsed is the trial's wall-clock.
	Elapsed time.Duration
	// Cache is the shared oracle's cumulative hit/miss tally when the
	// trial ended, for oracles that expose one (CachingOracle). At
	// Parallelism 1 consecutive snapshots attribute misses to trials
	// exactly; under parallel trials they only bound them.
	Cache core.CacheStats
	// HasCache marks Cache as meaningful.
	HasCache bool
}

// Result is one cell's aggregated outcome.
type Result[T any] struct {
	// Config echoes the cell (with the normalized trial count).
	Config Config
	// Trials holds every repetition in trial order, regardless of
	// completion order.
	Trials []TrialResult[T]
}

// Values lists the observations in trial order.
func (r *Result[T]) Values() []T {
	out := make([]T, len(r.Trials))
	for i, t := range r.Trials {
		out[i] = t.Value
	}
	return out
}

// Last returns the final trial's observation — the deterministic
// stand-in the harness uses for per-cell facts that do not average
// (a chosen strategy, a realized confusion matrix).
func (r *Result[T]) Last() T {
	return r.Trials[len(r.Trials)-1].Value
}

// Summarize aggregates one metric over the trials (mean, stddev, 95%
// CI via stats.Summary). Summation follows trial order, so the mean is
// bit-identical to the legacy sequential accumulation.
func (r *Result[T]) Summarize(metric func(T) float64) stats.Summary {
	xs := make([]float64, len(r.Trials))
	for i, t := range r.Trials {
		xs[i] = metric(t.Value)
	}
	return stats.Summarize(xs)
}

// Mean is shorthand for Summarize(metric).Mean.
func (r *Result[T]) Mean(metric func(T) float64) float64 {
	return r.Summarize(metric).Mean
}

// All reports whether the predicate holds for every trial.
func (r *Result[T]) All(pred func(T) bool) bool {
	for _, t := range r.Trials {
		if !pred(t.Value) {
			return false
		}
	}
	return true
}

// TrialTime sums the per-trial wall-clock — the sequential cost the
// pool amortizes.
func (r *Result[T]) TrialTime() time.Duration {
	var total time.Duration
	for _, t := range r.Trials {
		total += t.Elapsed
	}
	return total
}

// statser is implemented by oracles that tally cache effectiveness.
type statser interface{ Stats() core.CacheStats }

// Run executes one cell: Config.Trials repetitions of fn across at
// most Config.Parallelism workers. Trial results are assembled in
// trial order; the first failing trial aborts the cell (no further
// trials are dispatched — crowd queries cost money).
func Run[T any](cfg Config, fn func(t Trial) (T, error)) (*Result[T], error) {
	results, err := RunMany([]Config{cfg}, func(_ int, t Trial) (T, error) { return fn(t) })
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunMany executes a grid of cells over one shared worker pool, wide
// as the largest cell's Parallelism. The (cell, trial) pairs are
// flattened cell-major, so at parallelism 1 the execution order is
// exactly the legacy nested loop, and grids of many single-trial
// cells still occupy every worker. Each cell's own Parallelism stays
// a hard bound on ITS concurrent trials (a per-cell semaphore), so a
// sequential cell — say one sharing a non-concurrency-safe oracle —
// keeps its guarantee even when a wider sibling sizes the pool. fn
// receives the cell index and the trial.
func RunMany[T any](cfgs []Config, fn func(cell int, t Trial) (T, error)) ([]*Result[T], error) {
	if len(cfgs) == 0 {
		return nil, errors.New("experiment: no configs")
	}
	parallelism := 1
	results := make([]*Result[T], len(cfgs))
	type job struct{ cell, trial int }
	var jobs []job
	for ci, cfg := range cfgs {
		trials := cfg.normalTrials()
		cfg.Trials = trials
		results[ci] = &Result[T]{Config: cfg, Trials: make([]TrialResult[T], trials)}
		for i := 0; i < trials; i++ {
			jobs = append(jobs, job{ci, i})
		}
		if cfg.Parallelism > parallelism {
			parallelism = cfg.Parallelism
		}
	}
	sems := make([]chan struct{}, len(cfgs))
	for ci, cfg := range cfgs {
		if width := max(cfg.Parallelism, 1); width < parallelism {
			sems[ci] = make(chan struct{}, width)
		}
	}

	err := core.RunBounded(parallelism, len(jobs), func(j int) error {
		cell, index := jobs[j].cell, jobs[j].trial
		if sem := sems[cell]; sem != nil {
			sem <- struct{}{}
			defer func() { <-sem }()
		}
		cfg := &results[cell].Config
		ctx := cfg.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		t := Trial{
			Cell:              cell,
			Index:             index,
			Seed:              cfg.Seed + int64(index),
			Lockstep:          cfg.Lockstep,
			EngineParallelism: cfg.EngineParallelism,
			Budget:            cfg.Budget,
			Ctx:               ctx,
		}
		t.Rng = rand.New(rand.NewSource(t.Seed))
		if cfg.Oracle != nil {
			var err error
			if t.Oracle, err = cfg.Oracle(t); err != nil {
				return err
			}
		}
		start := time.Now()
		value, err := fn(cell, t)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		tr := TrialResult[T]{Index: index, Seed: t.Seed, Value: value, Elapsed: elapsed}
		if s, ok := t.Oracle.(statser); ok {
			tr.Cache, tr.HasCache = s.Stats(), true
		}
		results[cell].Trials[index] = tr
		cfg.Timing.observe(cfg.Name, elapsed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
