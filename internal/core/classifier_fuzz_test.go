package core

import (
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
)

// FuzzPartitionClean fuzzes the Partition function of Algorithm 5 —
// predicted-set composition (size, member fraction, interleaving),
// chunk size and the early-stop threshold — and checks both cleaning
// engines against a naive exhaustive-labeling reference (count the
// true members of the predicted set straight from ground truth):
//
//   - the confirmed count never exceeds the true member count, so the
//     sibling inference can never double-count a range;
//   - a full drain (drained == true) implies the count is exact;
//   - an early stop (drained == false) only happens at or above the
//     stop threshold, and a threshold beyond the true member count can
//     therefore never stop early;
//   - the level-round engine (partitionCleanRounds) commits exactly
//     the sequential engine's confirmed count, drain flag and task
//     count.
func FuzzPartitionClean(f *testing.F) {
	f.Add(int64(1), uint16(40), uint8(10), uint8(8), uint8(120))
	f.Add(int64(7), uint16(1), uint8(1), uint8(0), uint8(0))
	f.Add(int64(42), uint16(255), uint8(63), uint8(50), uint8(255))
	f.Add(int64(-9), uint16(300), uint8(2), uint8(200), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, sizeRaw uint16, chunkRaw, stopRaw, memberRaw uint8) {
		size := int(sizeRaw)%300 + 1
		chunk := int(chunkRaw)%64 + 1
		members := int(memberRaw) % (size + 1)
		stopAt := int(stopRaw) % (size + 2)
		rng := rand.New(rand.NewSource(seed))
		d, err := dataset.BinaryWithMinority(size, members, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())

		// Naive exhaustive reference: label everything from ground
		// truth.
		truth := 0
		for _, id := range d.IDs() {
			labels, ok := d.TrueLabels(id)
			if !ok {
				t.Fatalf("unknown object %d", id)
			}
			if g.Matches(labels) {
				truth++
			}
		}
		if truth != members {
			t.Fatalf("reference count %d, composition says %d", truth, members)
		}

		confirmed, drained, tasks, err := partitionClean(NewTruthOracle(d), d.IDs(), chunk, stopAt, g)
		if err != nil {
			t.Fatal(err)
		}
		if confirmed > truth {
			t.Fatalf("confirmed %d exceeds true members %d (double-counted range?) size=%d chunk=%d stopAt=%d",
				confirmed, truth, size, chunk, stopAt)
		}
		if drained && confirmed != truth {
			t.Fatalf("drained but confirmed %d != true members %d (size=%d chunk=%d stopAt=%d)",
				confirmed, truth, size, chunk, stopAt)
		}
		if !drained && confirmed < stopAt {
			t.Fatalf("stopped early at %d below threshold %d", confirmed, stopAt)
		}
		if !drained && stopAt > truth {
			t.Fatalf("stopped early (confirmed %d) though only %d members exist below threshold %d",
				confirmed, truth, stopAt)
		}
		if tasks == 0 && size > 0 {
			t.Fatalf("zero tasks over %d objects", size)
		}

		// The level-round engine must commit the identical outcome.
		e := &classifierEngine{o: NewTruthOracle(d), opts: MultipleOptions{Parallelism: int(seed&3) + 1, Lockstep: seed&4 == 0}}
		gotC, gotD, gotT, _, err := e.partitionCleanRounds(d.IDs(), chunk, stopAt, g)
		if err != nil {
			t.Fatal(err)
		}
		if gotC != confirmed || gotD != drained || gotT != tasks {
			t.Fatalf("rounds=(%d,%v,%d) diverged from sequential (%d,%v,%d) size=%d chunk=%d stopAt=%d",
				gotC, gotD, gotT, confirmed, drained, tasks, size, chunk, stopAt)
		}
	})
}
