package sim

import (
	"context"
	"errors"
	"testing"
)

// TestJournalOverheadPassthrough asserts the semantics half of the
// checkpoint-cost artifact: the journaling stack must commit the exact
// task counts of the bare stack (the middleware is a passthrough for a
// fresh run) and must actually journal rounds — otherwise the measured
// "overhead" gates nothing. The wall-clock half lives in the benchmark
// history, not here.
func TestJournalOverheadPassthrough(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-bound benchmark skipped in -short")
	}
	res, err := RunJournalOverhead(DefaultJournalOverheadParams(), Options{Seed: 42, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Tasks != res.Rows[1].Tasks {
		t.Errorf("task counts diverged between stacks: bare %.1f, journaled %.1f",
			res.Rows[0].Tasks, res.Rows[1].Tasks)
	}
	if res.Rows[0].Rounds != 0 {
		t.Errorf("bare stack reports %.1f journaled rounds, want 0", res.Rows[0].Rounds)
	}
	if res.Rows[1].Rounds < 1 {
		t.Errorf("journaled stack committed %.1f rounds, want >= 1", res.Rows[1].Rounds)
	}
	if res.Overhead() <= 0 {
		t.Errorf("overhead ratio %.2f, want > 0\n%s", res.Overhead(), res)
	}
}

// TestExperimentCancellation: a cancelled Options.Ctx must abort the
// harness — the engine fails trials before dispatch, and trial bodies
// that thread Trial.Ctx into their audit options stop at the next
// round boundary.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunJournalOverhead(DefaultJournalOverheadParams(),
		Options{Seed: 42, Trials: 2, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
