// Command cvgrun audits a dataset file for representation bias: it
// loads a JSON dataset (see cvggen), runs one of the paper's coverage
// algorithms against either a perfect oracle or the simulated crowd,
// and prints the verdicts and cost.
//
// Usage:
//
//	cvgrun -data rare.json -mode group -group "1" -tau 50 -n 50
//	cvgrun -data feret.json -mode base -group "1"
//	cvgrun -data faces.json -mode intersectional -crowd
//	cvgrun -data faces.json -mode attribute -attr gender
//	cvgrun -data faces.json -mode attribute -crowd -parallelism 8 -lockstep
//	cvgrun -data faces.json -mode classifier -group "1" -accuracy 0.95 -precision 0.9 -parallelism 4 -lockstep
//	cvgrun -data faces.json -mode attribute -crowd -lockstep -max-hits 200
//	cvgrun -data faces.json -mode group -group "1" -crowd -lockstep -max-spend 25.00
//	cvgrun -data faces.json -mode attribute -crowd -journal audit.jnl
//	cvgrun -data faces.json -mode attribute -crowd -journal audit.jnl -resume
//	cvgrun -data faces.json -mode group -group "1" -crowd -adversary-strategy colluding-liar -adversary-rate 0.3 -trust
//
// With -serve, cvgrun instead runs the multi-tenant audit service: an
// HTTP job engine where each audit is a persistent job with its own
// crash-safe journal under -data-dir, surviving server restarts with
// byte-identical results:
//
//	cvgrun -serve :8080 -data-dir /var/lib/cvg
//	cvgrun -serve 127.0.0.1:8080 -data-dir ./jobs -serve-workers 8 -tenant-max-hits 5000
//
// The service API is unauthenticated (tenants partition budgets, not
// access) — bind loopback or a firewalled address unless an
// authenticating proxy fronts it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imagecvg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) (code int) {
	fs := flag.NewFlagSet("cvgrun", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		data      = fs.String("data", "", "dataset JSON file (required)")
		mode      = fs.String("mode", "group", "audit mode: group, base, attribute, intersectional, repair, classifier")
		groupStr  = fs.String("group", "", "pattern of the audited group, e.g. \"1\" or \"X1\" (group/base/classifier modes)")
		attr      = fs.String("attr", "", "attribute name (attribute mode)")
		accuracy  = fs.Float64("accuracy", 0.95, "simulated classifier's overall accuracy (classifier mode)")
		precision = fs.Float64("precision", 0.90, "simulated classifier's precision on the audited group (classifier mode)")
		tau       = fs.Int("tau", 50, "coverage threshold")
		n         = fs.Int("n", 50, "set-query size upper bound")
		seed      = fs.Int64("seed", 1, "random seed")
		useCrowd  = fs.Bool("crowd", false, "audit through the simulated crowd instead of ground truth")
		par       = fs.Int("parallelism", 1, "worker pool size of the concurrent audit engine (<=1 sequential)")
		lockstep  = fs.Bool("lockstep", false, "schedule concurrent audits in deterministic lockstep rounds (bit-identical results at any -parallelism, even through the order-dependent simulated crowd)")
		cache     = fs.Bool("cache", false, "deduplicate identical HITs with a query cache")
		maxHITs   = fs.Int("max-hits", 0, "cap the committed crowd HITs; the audit returns a deterministic partial verdict when the cap is hit (0 = unlimited)")
		maxSpend  = fs.Float64("max-spend", 0, "cap the committed crowd spend; with -crowd priced by the deployment's cost model (assignments x price + fee), otherwise one unit per HIT (0 = unlimited)")
		journalAt = fs.String("journal", "", "checkpoint every committed oracle round to this crash-safe journal file (implies -lockstep)")
		resume    = fs.Bool("resume", false, "resume from the journal's committed rounds instead of starting fresh (requires -journal); replayed rounds touch neither the crowd nor the budget")
		advStrat  = fs.String("adversary-strategy", "", "plant adversarial workers in the simulated crowd: lazy-yes, random-spam or colluding-liar (requires -crowd; honest workers stay byte-identical)")
		advRate   = fs.Float64("adversary-rate", 0.25, "adversarial fraction of the worker pool in [0,1] (with -adversary-strategy)")
		trust     = fs.Bool("trust", false, "screen adversarial workers with the gold-probe trust middleware (requires -crowd; implies -lockstep; with -resume, replayed verdicts and the probe schedule restore exactly but trust evidence restarts — the raw answer feed is process-local, not journaled)")
		probeN    = fs.Int("trust-probes", 8, "size of the deterministic gold-probe battery the trust middleware cycles (with -trust)")

		serveAddr    = fs.String("serve", "", "run the audit service on this address (e.g. :8080) instead of a one-shot audit; requires -data-dir")
		dataDir      = fs.String("data-dir", "", "data directory for the audit service's per-job journals and metadata (with -serve)")
		serveWorkers = fs.Int("serve-workers", 4, "concurrent jobs of the audit service's worker pool (with -serve)")
		tenantHITs   = fs.Int("tenant-max-hits", 0, "cap each tenant's committed crowd HITs across all its jobs (with -serve; 0 = unlimited)")
		tenantSpend  = fs.Float64("tenant-max-spend", 0, "cap each tenant's committed crowd spend across all its jobs (with -serve; 0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *serveAddr != "" {
		if *dataDir == "" {
			fmt.Fprintln(errOut, "cvgrun: -serve requires -data-dir")
			return 2
		}
		return serve(*serveAddr, imagecvg.AuditServiceOptions{
			DataDir:        *dataDir,
			Workers:        *serveWorkers,
			TenantMaxHITs:  *tenantHITs,
			TenantMaxSpend: *tenantSpend,
		}, out, errOut)
	}
	if *data == "" {
		fmt.Fprintln(errOut, "cvgrun: -data is required")
		return 2
	}
	if *trust && *probeN <= 0 {
		// A non-positive battery would silently disable probing inside
		// the trust middleware (GoldProbes returns an empty battery),
		// leaving every worker unscreened while -trust claims otherwise.
		fmt.Fprintf(errOut, "cvgrun: -trust-probes must be positive, got %d\n", *probeN)
		return 2
	}
	ds, err := imagecvg.LoadDataset(*data)
	if err != nil {
		fmt.Fprintln(errOut, "cvgrun:", err)
		return 1
	}
	fmt.Fprintf(out, "dataset: %d objects over schema %s\n", ds.Size(), ds.Schema())

	if (*advStrat != "" || *trust) && !*useCrowd {
		fmt.Fprintln(errOut, "cvgrun: -adversary-strategy and -trust require -crowd")
		return 2
	}
	var oracle imagecvg.Oracle
	var crowdOracle *imagecvg.SimulatedCrowd
	if *useCrowd {
		crowdOracle, err = imagecvg.NewSimulatedCrowd(ds, *seed, imagecvg.CrowdOptions{
			AdversaryStrategy: *advStrat,
			AdversaryRate:     *advRate,
			// Trust scoring reads the raw per-worker answer stream.
			RecordResponses: *trust,
		})
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		oracle = crowdOracle
	} else {
		oracle = imagecvg.NewTruthOracle(ds)
	}
	auditor := imagecvg.NewAuditor(oracle, *tau, *n).WithSeed(*seed).WithParallelism(*par)
	if *lockstep {
		auditor = auditor.WithLockstep()
	}
	if *maxHITs > 0 || *maxSpend > 0 {
		budget := imagecvg.Budget{MaxHITs: *maxHITs, MaxSpend: *maxSpend}
		if crowdOracle != nil {
			budget.Cost = crowdOracle.HITCost()
		}
		// The governor sits under the cache: deduplicated HITs answer
		// for free without consuming the budget.
		auditor = auditor.WithBudget(budget)
	}
	if *resume && *journalAt == "" {
		fmt.Fprintln(errOut, "cvgrun: -resume requires -journal")
		return 2
	}
	if *journalAt != "" {
		// The journal wraps the stack above the governor (paid rounds
		// restore the ledger on replay, never re-charge it) and below
		// the cache; WithJournal forces lockstep, which replay needs.
		var (
			jnl    *imagecvg.FileJournal
			replay []imagecvg.RoundRecord
		)
		if *resume {
			jnl, replay, err = imagecvg.OpenJournal(*journalAt)
		} else {
			jnl, err = imagecvg.CreateJournal(*journalAt)
		}
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		// Close on every exit path — audit errors and flag errors
		// included — and surface the close error: the final frame is
		// only durable once the file handle closes cleanly, so a
		// swallowed error here is silent checkpoint loss.
		defer func() {
			if cerr := jnl.Close(); cerr != nil {
				fmt.Fprintln(errOut, "cvgrun: journal close:", cerr)
				if code == 0 {
					code = 1
				}
			}
		}()
		auditor = auditor.WithJournal(jnl, replay)
		if *resume {
			fmt.Fprintf(out, "journal: resuming %d committed rounds from %s\n", len(replay), *journalAt)
		} else {
			fmt.Fprintf(out, "journal: checkpointing to %s\n", *journalAt)
		}
	}
	if *trust {
		// Trust wraps above the journal (probe-augmented rounds are
		// journaled, so a resumed audit restores every trust score) and
		// below the cache.
		probes := imagecvg.GoldProbes(ds, imagecvg.GroupsForAttribute(ds.Schema(), 0), *probeN, *seed+99)
		auditor, err = auditor.WithTrust(imagecvg.TrustConfig{
			Probes: probes,
			Feed:   crowdOracle.AnswerFeed(),
			Screen: crowdOracle.Screener(),
		})
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
	}
	if *cache {
		auditor = auditor.WithCache()
	}

	switch *mode {
	case "group", "base":
		if *groupStr == "" {
			fmt.Fprintln(errOut, "cvgrun: -group is required for group/base modes")
			return 2
		}
		p, err := imagecvg.ParsePattern(ds.Schema(), *groupStr)
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		g := imagecvg.GroupOf(p.Format(ds.Schema()), p)
		var res imagecvg.GroupResult
		if *mode == "group" {
			res, err = auditor.AuditGroup(ds.IDs(), g)
		} else {
			res, err = auditor.AuditBaseline(ds.IDs(), g)
		}
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		fmt.Fprintln(out, res)
	case "classifier":
		if *groupStr == "" {
			fmt.Fprintln(errOut, "cvgrun: -group is required for classifier mode")
			return 2
		}
		p, err := imagecvg.ParsePattern(ds.Schema(), *groupStr)
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		g := imagecvg.GroupOf(p.Format(ds.Schema()), p)
		pos := 0
		for i := 0; i < ds.Size(); i++ {
			if g.Matches(ds.At(i).Labels) {
				pos++
			}
		}
		// A simulated predictor realizing the requested statistics
		// stands in for the user's pre-trained model; the audit itself
		// only consumes the predicted-positive set.
		model, err := imagecvg.NewSimulatedClassifier("simulated", pos, ds.Size()-pos, *accuracy, *precision)
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		predicted, err := model.Predict(ds, g, rand.New(rand.NewSource(*seed+1)))
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		conf, err := imagecvg.EvaluateClassifier(ds, g, predicted)
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		fmt.Fprintf(out, "classifier: %s over %d predicted positives\n", conf, len(predicted))
		res, err := auditor.AuditWithClassifier(ds.IDs(), predicted, g)
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		fmt.Fprintln(out, res)
	case "attribute":
		idx := 0
		if *attr != "" {
			idx = ds.Schema().AttrIndex(*attr)
			if idx < 0 {
				fmt.Fprintf(errOut, "cvgrun: unknown attribute %q\n", *attr)
				return 1
			}
		}
		res, err := auditor.AuditAttribute(ds.IDs(), ds.Schema(), idx)
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		for _, r := range res.Results {
			verdict := "UNCOVERED"
			if r.Covered {
				verdict = "covered"
			}
			if !r.Settled {
				verdict = "UNSETTLED"
			}
			fmt.Fprintf(out, "  %-30s %-10s count in [%d, %d]\n", r.Group, verdict, r.CountLo, r.CountHi)
		}
		if res.Exhausted {
			fmt.Fprintln(out, "budget exhausted: unsettled verdicts carry best-effort bounds only")
		}
		fmt.Fprintf(out, "total tasks: %d (samples %d + audits %d)\n", res.Tasks, res.SampleTasks, res.AuditTasks)
	case "intersectional", "repair":
		res, err := auditor.AuditIntersectional(ds.IDs(), ds.Schema())
		if err != nil {
			fmt.Fprintln(errOut, "cvgrun:", err)
			return 1
		}
		if len(res.MUPs) == 0 {
			fmt.Fprintln(out, "no uncovered patterns: every subgroup reaches the threshold")
		} else {
			fmt.Fprintln(out, "maximal uncovered patterns (MUPs):")
			for _, m := range res.MUPs {
				fmt.Fprintf(out, "  %-40s count=%d\n", m.Pattern.Format(ds.Schema()), m.Count)
			}
		}
		fmt.Fprintf(out, "total tasks: %d\n", res.Tasks)
		if *mode == "repair" {
			plan, err := auditor.PlanRepair(ds.Schema(), res)
			if err != nil {
				fmt.Fprintln(errOut, "cvgrun:", err)
				return 1
			}
			fmt.Fprintln(out, "acquisition plan:")
			fmt.Fprintln(out, plan)
		}
	default:
		fmt.Fprintf(errOut, "cvgrun: unknown mode %q\n", *mode)
		return 2
	}

	if crowdOracle != nil {
		fmt.Fprintln(out, "crowd cost:", crowdOracle.Cost())
	}
	if spent, ok := auditor.BudgetSpent(); ok {
		fmt.Fprintf(out, "budget: %d HITs committed (point=%d set=%d reverse=%d), spend %.2f, %d queries refused\n",
			spent.HITs(), spent.Point, spent.Set, spent.ReverseSet, spent.Spend, spent.Denied)
	}
	if stats, ok := auditor.CacheStats(); ok {
		fmt.Fprintf(out, "cache: %d hits / %d misses (%.0f%% saved)\n",
			stats.Hits.Total(), stats.Misses.Total(), 100*stats.HitRate())
	}
	if replayed, rounds, ok := auditor.JournalStats(); ok {
		fmt.Fprintf(out, "journal: %d rounds committed (%d replayed, %d live)\n",
			rounds, replayed, rounds-replayed)
	}
	if report, ok := auditor.TrustStats(); ok {
		fmt.Fprintf(out, "trust: %d gold probes issued, %d of %d workers excluded\n",
			report.ProbesIssued, report.Excluded, len(report.Workers))
		for _, w := range report.Workers {
			if w.Excluded {
				fmt.Fprintf(out, "  worker %d excluded: score %.2f (probes %d/%d failed, contradictions %d/%d)\n",
					w.Worker, w.Score, w.ProbeFails, w.Probes, w.Contradictions, w.Answers)
			}
		}
	}
	return 0
}

// serve runs the audit service until SIGINT/SIGTERM. On shutdown,
// running jobs are cancelled at their next round boundary and park
// non-terminal; their journals resume them — byte-identically — when
// the service next starts over the same data directory.
func serve(addr string, opts imagecvg.AuditServiceOptions, out, errOut io.Writer) int {
	eng, err := imagecvg.NewAuditService(opts)
	if err != nil {
		fmt.Fprintln(errOut, "cvgrun:", err)
		return 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		eng.Close()
		fmt.Fprintln(errOut, "cvgrun:", err)
		return 1
	}
	srv := &http.Server{Handler: eng.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(out, "cvgrun: serving audit jobs on %s (data dir %s, %d workers)\n",
		ln.Addr(), opts.DataDir, opts.Workers)
	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "cvgrun: shutting down; interrupted jobs resume on restart")
		// Park the jobs first so open SSE streams end, then drain the
		// HTTP server (force-closing stragglers after the grace period).
		eng.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
		return 0
	case err := <-errCh:
		eng.Close()
		fmt.Fprintln(errOut, "cvgrun:", err)
		return 1
	}
}
