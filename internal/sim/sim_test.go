package sim

import (
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 25 {
		t.Fatalf("registry has %d experiments, want 25 (2 tables + 2 fig6 + 8 fig7 + 13 extensions)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Paper == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("table1"); !ok {
		t.Error("Lookup(table1) failed")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup(nonsense) should miss")
	}
}

func TestRunTable1ShapeMatchesPaper(t *testing.T) {
	// Integration test: the full crowd pipeline (glyph rendering,
	// noisy workers, majority vote, ledger) under all three
	// quality-control settings. The paper's shape: Group-Coverage in
	// the 60-90 HIT range, Base-Coverage in the 250-450 range, upper
	// bound 115, all runs agreeing the female group is covered.
	res, err := RunTable1(DefaultTable1Params(), Options{Seed: 17, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Covered {
			t.Errorf("%s: females must be covered", row.QualityControl)
		}
		if row.UpperBoundHITs != 115 {
			t.Errorf("%s: upper bound = %d, want 115", row.QualityControl, row.UpperBoundHITs)
		}
		if row.GroupCoverageHITs < 40 || row.GroupCoverageHITs > 120 {
			t.Errorf("%s: Group-Coverage HITs = %.1f, expected 40-120",
				row.QualityControl, row.GroupCoverageHITs)
		}
		if row.BaseCoverageHITs < 180 || row.BaseCoverageHITs > 600 {
			t.Errorf("%s: Base-Coverage HITs = %.1f, expected 180-600",
				row.QualityControl, row.BaseCoverageHITs)
		}
		if row.GroupCoverageHITs*2 > row.BaseCoverageHITs {
			t.Errorf("%s: Group-Coverage (%.1f) should at least halve Base-Coverage (%.1f)",
				row.QualityControl, row.GroupCoverageHITs, row.BaseCoverageHITs)
		}
		if row.TotalCostUSD <= 0 {
			t.Errorf("%s: zero cost", row.QualityControl)
		}
	}
	out := res.String()
	if !strings.Contains(out, "Majority Vote") || !strings.Contains(out, "115") {
		t.Errorf("rendering missing cells:\n%s", out)
	}
}

func TestRunTable2ShapeMatchesPaper(t *testing.T) {
	res, err := RunTable2(Options{Seed: 23, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	// Paper strategies: partition for the two precise FERET DeepFace
	// rows, label everywhere else. Row 5 (BaseCNN on UTKFace-200F,
	// precision 74.8 %) sits exactly on the 25 % false-positive
	// boundary, so its sampled estimate legitimately lands on either
	// side; both strategies are accepted there.
	wantStrategy := []string{
		"partition", "partition", "label",
		"label", "label", "",
		"label", "label", "label",
	}
	for i, row := range res.Rows {
		if wantStrategy[i] != "" && row.Strategy != wantStrategy[i] {
			t.Errorf("row %d (%s on %s): strategy %s, want %s",
				i, row.Classifier, row.Dataset, row.Strategy, wantStrategy[i])
		}
	}
	// Verdicts: FERET (403F) and UTKFace-200F covered, UTKFace-20F not.
	for i, row := range res.Rows {
		wantCovered := i < 6
		if row.Covered != wantCovered {
			t.Errorf("row %d: covered=%v, want %v", i, row.Covered, wantCovered)
		}
	}
	// Precise classifiers (FERET DeepFace rows) must beat standalone
	// Group-Coverage by a wide margin.
	for i := 0; i < 2; i++ {
		if res.Rows[i].ClassifierCoverageHITs*2 > res.Rows[i].GroupCoverageHITs {
			t.Errorf("row %d: CC %.1f vs GC %.1f, want >= 2x savings",
				i, res.Rows[i].ClassifierCoverageHITs, res.Rows[i].GroupCoverageHITs)
		}
	}
	// Imprecise classifiers on the uncovered UTKFace slice: verifying
	// "uncovered" requires sweeping D-G regardless, so the classifier
	// cannot win much; it must at least stay in the same cost regime
	// as standalone Group-Coverage (see EXPERIMENTS.md for why the
	// paper's absolute numbers here undercount the residual sweep).
	for i := 6; i < 9; i++ {
		if res.Rows[i].ClassifierCoverageHITs > 1.4*res.Rows[i].GroupCoverageHITs {
			t.Errorf("row %d: CC %.1f vs GC %.1f, want within 1.4x",
				i, res.Rows[i].ClassifierCoverageHITs, res.Rows[i].GroupCoverageHITs)
		}
	}
	if !strings.Contains(res.String(), "DeepFace") {
		t.Error("rendering missing classifier names")
	}
}

func TestRunFigure6aShape(t *testing.T) {
	res, err := RunFigure6a(Options{Seed: 29, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.AccDisparity < 0.03 {
		t.Errorf("initial disparity %.4f too small to demonstrate the effect", first.AccDisparity)
	}
	if last.AccDisparity > first.AccDisparity*0.7 {
		t.Errorf("disparity did not shrink: %.4f -> %.4f", first.AccDisparity, last.AccDisparity)
	}
	if !strings.Contains(res.String(), "drowsiness") {
		t.Error("rendering missing name")
	}
}

func TestRunFigure6bSmallerThan6a(t *testing.T) {
	a, err := RunFigure6a(Options{Seed: 31, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure6b(Options{Seed: 31, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Points[0].AccDisparity >= a.Points[0].AccDisparity {
		t.Errorf("gender disparity %.4f should be below drowsiness %.4f",
			b.Points[0].AccDisparity, a.Points[0].AccDisparity)
	}
}

// smallFigure7Params shrinks the sweep for test speed while keeping
// the shape observable.
func smallFigure7Params() Figure7Params {
	return Figure7Params{N: 20_000, Tau: 50, SetSize: 50, BaseCoverage: true}
}

func TestRunFigure7aPeaksNearTau(t *testing.T) {
	p := smallFigure7Params()
	res, err := RunFigure7a(p, Options{Seed: 37, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d, want 11", len(res.Points))
	}
	// Find the peak of Group-Coverage cost; it must sit near f=tau and
	// dominate both endpoints.
	peakX, peakV := 0, 0.0
	for _, pt := range res.Points {
		if pt.GroupCoverage > peakV {
			peakX, peakV = pt.X, pt.GroupCoverage
		}
	}
	if peakX < 30 || peakX > 60 {
		t.Errorf("cost peak at f=%d, want near tau=50", peakX)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.GroupCoverage >= peakV || last.GroupCoverage >= peakV {
		t.Errorf("endpoints (%.1f, %.1f) should lie below the peak %.1f",
			first.GroupCoverage, last.GroupCoverage, peakV)
	}
	// Base-Coverage dominates Group-Coverage near the peak.
	mid := res.Points[5]
	if mid.BaseCoverage <= mid.GroupCoverage {
		t.Errorf("at f=tau, Base (%.1f) must exceed Group-Coverage (%.1f)",
			mid.BaseCoverage, mid.GroupCoverage)
	}
	// Coverage verdict flips across the sweep: f<tau uncovered, f>tau covered.
	if res.Points[0].CoveredFraction != 0 || res.Points[10].CoveredFraction != 1 {
		t.Errorf("covered fractions wrong: %v, %v",
			res.Points[0].CoveredFraction, res.Points[10].CoveredFraction)
	}
}

func TestRunFigure7bLinearInTau(t *testing.T) {
	p := smallFigure7Params()
	res, err := RunFigure7b(p, Options{Seed: 41, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Monotone growth (up to noise): compare tau=10 vs tau=100.
	if res.Points[1].GroupCoverage >= res.Points[10].GroupCoverage {
		t.Errorf("cost at tau=10 (%.1f) should be below tau=100 (%.1f)",
			res.Points[1].GroupCoverage, res.Points[10].GroupCoverage)
	}
	// The worst case stays under the theoretical log2 bound.
	for _, pt := range res.Points {
		bound := float64(pt.X)*2*7 + float64(p.N)/float64(p.SetSize) + 2*float64(pt.X)
		if pt.GroupCoverage > bound {
			t.Errorf("tau=%d: %.1f tasks above generous bound %.1f", pt.X, pt.GroupCoverage, bound)
		}
	}
}

func TestRunFigure7cLogarithmicKnee(t *testing.T) {
	p := smallFigure7Params()
	res, err := RunFigure7c(p, Options{Seed: 43, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	byX := map[int]Figure7Point{}
	for _, pt := range res.Points {
		byX[pt.X] = pt
	}
	// n=1 costs about N tasks; n=50 must be dramatically cheaper; the
	// tail (n=50 vs n=400) changes comparatively little.
	if byX[1].GroupCoverage < float64(p.N)*0.9 {
		t.Errorf("n=1 cost %.1f, want ~N=%d", byX[1].GroupCoverage, p.N)
	}
	if byX[50].GroupCoverage*10 > byX[1].GroupCoverage {
		t.Errorf("n=50 (%.1f) should be >=10x cheaper than n=1 (%.1f)",
			byX[50].GroupCoverage, byX[1].GroupCoverage)
	}
	tailRatio := byX[400].GroupCoverage / byX[50].GroupCoverage
	if tailRatio > 2.0 || tailRatio < 0.2 {
		t.Errorf("tail should be flat-ish: n=400/n=50 ratio = %.2f", tailRatio)
	}
}

func TestRunFigure7dLinearAndUnder6Percent(t *testing.T) {
	p := smallFigure7Params()
	p.BaseCoverage = false // keep the large-N test quick
	res, err := RunFigure7d(p, Options{Seed: 47, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		frac := pt.GroupCoverage / float64(pt.X)
		// The paper's "< 6 % of N" claim matches the plotted range
		// (N >= 10^5); at N = 1000 with f = tau the worst case is
		// intrinsically denser (even the theoretical upper bound is
		// ~10 % of N there).
		if pt.X >= 100_000 && frac > 0.06 {
			t.Errorf("N=%d: tasks are %.2f%% of N, paper reports < 6%%", pt.X, 100*frac)
		}
		if frac > 0.35 {
			t.Errorf("N=%d: tasks are %.2f%% of N, absurdly high", pt.X, 100*frac)
		}
	}
	// Linear growth: 1M costs roughly 10x of 100K (within 3x slack).
	var at100k, at1m float64
	for _, pt := range res.Points {
		if pt.X == 100_000 {
			at100k = pt.GroupCoverage
		}
		if pt.X == 1_000_000 {
			at1m = pt.GroupCoverage
		}
	}
	ratio := at1m / at100k
	if ratio < 3 || ratio > 30 {
		t.Errorf("1M/100K cost ratio = %.1f, want ~10", ratio)
	}
}

func TestRunFigure7eTable3Shapes(t *testing.T) {
	res, err := RunFigure7e(DefaultMultiParams(), Options{Seed: 53, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	rows := map[string]MultiRow{}
	for _, r := range res.Rows {
		rows[r.Setting] = r
	}
	// effective 1: joint audit of rare minorities wins clearly.
	if e1 := rows["effective 1"]; e1.HeuristicTasks >= e1.BruteTasks {
		t.Errorf("effective 1: heuristic %.1f should beat brute %.1f",
			e1.HeuristicTasks, e1.BruteTasks)
	}
	// adversarial: the covered super-group costs a penalty.
	if adv := rows["adversarial"]; adv.HeuristicTasks <= adv.BruteTasks {
		t.Errorf("adversarial: heuristic %.1f should lose to brute %.1f",
			adv.HeuristicTasks, adv.BruteTasks)
	}
}

func TestRunFigure7fIntersectionalShapes(t *testing.T) {
	res, err := RunFigure7f(DefaultMultiParams(), Options{Seed: 59, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rows := map[string]MultiRow{}
	for _, r := range res.Rows {
		rows[r.Setting] = r
	}
	if e1 := rows["effective 1"]; e1.HeuristicTasks >= e1.BruteTasks {
		t.Errorf("effective 1: heuristic %.1f should beat brute %.1f",
			e1.HeuristicTasks, e1.BruteTasks)
	}
}

func TestRunFigure7gGapGrowsWithCardinality(t *testing.T) {
	res, err := RunFigure7g(DefaultMultiParams(), Options{Seed: 61, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want sigma 3..6", len(res.Rows))
	}
	// In the effective regime, the heuristic wins at every sigma and
	// the absolute gap widens from sigma=3 to sigma=6.
	for _, r := range res.Rows {
		if r.HeuristicTasks >= r.BruteTasks {
			t.Errorf("%s: heuristic %.1f should beat brute %.1f",
				r.Setting, r.HeuristicTasks, r.BruteTasks)
		}
	}
	gapFirst := res.Rows[0].BruteTasks - res.Rows[0].HeuristicTasks
	gapLast := res.Rows[3].BruteTasks - res.Rows[3].HeuristicTasks
	if gapLast <= gapFirst {
		t.Errorf("gap should widen with cardinality: sigma=3 gap %.1f vs sigma=6 gap %.1f",
			gapFirst, gapLast)
	}
}

func TestRunFigure7hSchemasAgree(t *testing.T) {
	res, err := RunFigure7h(DefaultMultiParams(), Options{Seed: 67, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// The paper's point: only the number of fully-specified subgroups
	// matters, so (2,4) and (2,2,2) land close together.
	a, b := res.Rows[0].HeuristicTasks, res.Rows[1].HeuristicTasks
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	if hi > 1.6*lo {
		t.Errorf("(2,4)=%.1f and (2,2,2)=%.1f should be similar", a, b)
	}
}

func TestTable3SettingsDescriptions(t *testing.T) {
	settings := Table3Settings()
	if len(settings) != 4 {
		t.Fatalf("settings = %d", len(settings))
	}
	for _, s := range settings {
		if s.Name == "" || s.Description == "" || len(s.MinorityCounts) != 3 {
			t.Errorf("malformed setting %+v", s)
		}
	}
	// effective 1 and adversarial both have all minorities uncovered
	// at tau=50, differing in whether the sum crosses tau.
	sum := func(xs []int) int {
		t := 0
		for _, x := range xs {
			t += x
		}
		return t
	}
	if sum(settings[0].MinorityCounts) >= 50 {
		t.Error("effective 1 minorities must sum below tau")
	}
	if sum(settings[3].MinorityCounts) < 50 {
		t.Error("adversarial minorities must sum above tau")
	}
}

func TestBuildCountsConservesN(t *testing.T) {
	counts := buildCounts(4, 10_000, []int{10, 8, 6})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10_000 {
		t.Errorf("total = %d", total)
	}
	ic := intersectionalCounts(8, 10_000, []int{10, 8, 6})
	total = 0
	for _, c := range ic {
		total += c
	}
	if total != 10_000 {
		t.Errorf("intersectional total = %d", total)
	}
}
