// Package repair turns an audit's verdicts into an acquisition plan:
// how many objects of which fully-specified subgroups to collect so
// that every pattern reaches the coverage threshold. This is the
// "remedying" counterpart of detection — the paper demonstrates in
// section 6.4 that adding samples from the uncovered region repairs
// downstream disparity, and its coverage groundwork (Asudeh et al.,
// ICDE 2019) frames acquisition as the fix for the MUPs the audit
// finds.
//
// Acquisitions compose upward: an object added to subgroup
// (female, black) counts toward female-X, X-black and the root as
// well, so topping up the right leaves can repair many patterns at
// once. Plan exploits this with a greedy strategy that is optimal for
// a single attribute and near-optimal in practice for intersections.
package repair

import (
	"fmt"
	"sort"
	"strings"

	"imagecvg/internal/pattern"
)

// Plan maps fully-specified subgroup indices (pattern.SubgroupIndex)
// to the number of objects to acquire.
type Plan struct {
	Schema    *pattern.Schema
	Additions map[int]int
	Total     int
	// Deficits lists the uncovered patterns the plan repairs, with
	// their original shortfalls.
	Deficits []Deficit
}

// Deficit is one uncovered pattern and how many objects it lacked.
type Deficit struct {
	Pattern  pattern.Pattern
	Shortage int
}

// String renders the plan as an acquisition checklist.
func (p *Plan) String() string {
	if p.Total == 0 {
		return "no acquisitions needed: every pattern is covered"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "acquire %d objects:\n", p.Total)
	idxs := make([]int, 0, len(p.Additions))
	for idx := range p.Additions {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		fmt.Fprintf(&b, "  %4d x %s\n", p.Additions[idx],
			pattern.SubgroupAt(p.Schema, idx).Format(p.Schema))
	}
	return strings.TrimRight(b.String(), "\n")
}

// NewPlan computes an acquisition plan from exact subgroup counts: the
// minimum-total (greedy) set of leaf additions after which every
// pattern in the universe has at least tau matches.
//
// The greedy strategy processes uncovered patterns from most to least
// specific. A fully-specified pattern's deficit can only be fixed by
// acquiring that exact subgroup. A general pattern's remaining deficit
// is routed to the single descendant subgroup with the largest current
// count (concentrating additions maximizes how many ancestors each
// acquired object serves). For one attribute (every group disjoint)
// this is exactly optimal; for intersections it is a tight heuristic
// because routed additions are reused by all ancestors of the chosen
// leaf.
func NewPlan(s *pattern.Schema, counts []int, tau int) (*Plan, error) {
	if s == nil {
		return nil, fmt.Errorf("repair: nil schema")
	}
	if len(counts) != s.NumSubgroups() {
		return nil, fmt.Errorf("repair: got %d counts, schema has %d subgroups", len(counts), s.NumSubgroups())
	}
	if tau < 0 {
		return nil, fmt.Errorf("repair: tau=%d", tau)
	}
	cur := make([]int, len(counts))
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("repair: negative count at subgroup %d", i)
		}
		cur[i] = c
	}

	plan := &Plan{Schema: s, Additions: map[int]int{}}

	// Record original deficits for reporting.
	for _, p := range pattern.Universe(s) {
		if c := pattern.CountPattern(s, counts, p); c < tau {
			plan.Deficits = append(plan.Deficits, Deficit{Pattern: p, Shortage: tau - c})
		}
	}
	sort.Slice(plan.Deficits, func(i, j int) bool {
		if li, lj := plan.Deficits[i].Pattern.Level(), plan.Deficits[j].Pattern.Level(); li != lj {
			return li < lj
		}
		return plan.Deficits[i].Pattern.Key() < plan.Deficits[j].Pattern.Key()
	})

	// Greedy repair, most specific patterns first.
	universe := pattern.Universe(s)
	sort.Slice(universe, func(i, j int) bool {
		if li, lj := universe[i].Level(), universe[j].Level(); li != lj {
			return li > lj
		}
		return universe[i].Key() < universe[j].Key()
	})
	subs := pattern.Subgroups(s)
	for _, p := range universe {
		deficit := tau - pattern.CountPattern(s, cur, p)
		if deficit <= 0 {
			continue
		}
		// Route the deficit to the descendant leaf with the largest
		// current count (ties to the lowest index, deterministically).
		best := -1
		for idx, leaf := range subs {
			if !p.Matches(leaf) {
				continue
			}
			if best < 0 || cur[idx] > cur[best] {
				best = idx
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("repair: pattern %v has no descendant subgroups", p)
		}
		cur[best] += deficit
		plan.Additions[best] += deficit
		plan.Total += deficit
	}
	return plan, nil
}

// Apply returns the subgroup counts after executing the plan.
func (p *Plan) Apply(counts []int) []int {
	out := make([]int, len(counts))
	copy(out, counts)
	for idx, add := range p.Additions {
		out[idx] += add
	}
	return out
}

// Verify reports whether executing the plan leaves no uncovered
// pattern at the threshold.
func (p *Plan) Verify(counts []int, tau int) bool {
	after := p.Apply(counts)
	for _, q := range pattern.Universe(p.Schema) {
		if pattern.CountPattern(p.Schema, after, q) < tau {
			return false
		}
	}
	return true
}
