package crowd

// The budgeted extension of the lockstep conformance matrix: when a
// BudgetedOracle governor caps an audit through the full crowd
// pipeline, the EXHAUSTION itself must be deterministic — the point in
// the canonical query sequence where the budget runs out, the partial
// verdicts assembled from the committed answers, the committed task
// counts, the governor's spend snapshot and the platform ledger must
// all be byte-identical at every engine Parallelism value under
// lockstep. Instances randomize the whole deployment (screening,
// pricing, aggregation) like the base matrix, plus the budget shape
// (HIT caps and dollar caps priced by the deployment's own cost
// model). The suite runs under -race in CI.

import (
	"fmt"
	"math/rand"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// budgetedInstance pairs a pipeline instance with a budget shape.
type budgetedInstance struct {
	conformanceInstance
	// budgetHITs sizes the cap; small enough to usually bind.
	budgetHITs int
	// spendCap denominates the cap in dollars via the deployment's
	// HITCost instead of a raw HIT count.
	spendCap bool
}

// generateBudgetedInstance draws the base pipeline first (same
// distribution as the unbudgeted matrix) and the budget shape after,
// so the budget axis composes with every screening/pricing/algorithm
// combination.
func generateBudgetedInstance(rng *rand.Rand, kind string) budgetedInstance {
	return budgetedInstance{
		conformanceInstance: generateInstance(rng, kind),
		budgetHITs:          2 + rng.Intn(30),
		spendCap:            rng.Intn(3) == 0,
	}
}

// budgetFor realizes the instance's budget against one platform: a
// dollar cap prices budgetHITs worth of set queries under the
// deployment's own cost model, so the same instance binds identically
// on every identically-configured platform.
func budgetFor(inst budgetedInstance, p *Platform) core.Budget {
	if inst.spendCap {
		cost := p.HITCost()
		return core.Budget{
			MaxSpend: float64(inst.budgetHITs) * cost(core.HITSet, inst.setSize),
			Cost:     cost,
		}
	}
	return core.Budget{MaxHITs: inst.budgetHITs}
}

// runBudgetedCell executes one (instance, parallelism) cell under
// lockstep with the governor over the platform and serializes
// everything observable, the exhaustion point included.
func runBudgetedCell(t *testing.T, inst budgetedInstance, parallelism int) (string, bool) {
	t.Helper()
	d := dataset.MustFromCounts(inst.schema, inst.counts, rand.New(rand.NewSource(inst.platformSeed+1)))
	log := &ResponseLog{}
	p := platformFor(t, inst.conformanceInstance, d, log)
	gov := core.NewBudgetedOracle(p, budgetFor(inst, p))
	opts := core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(inst.auditSeed)),
		Parallelism: parallelism,
		Lockstep:    true,
	}
	var audit string
	var exhausted bool
	switch inst.kind {
	case "intersectional":
		res, err := core.IntersectionalCoverage(gov, d.IDs(), inst.setSize, inst.tau, inst.schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		exhausted = res.Exhausted
		audit = fmt.Sprintf("%+v|%+v|%v|%d|%d", res.Verdicts, res.MUPs, res.Exhausted, res.ResolutionTasks, res.Tasks)
	case "classifier":
		g := pattern.GroupsForAttribute(inst.schema, 0)[1]
		predicted := d.PredictedSet(g, inst.classifierTP, inst.classifierFP)
		res, err := core.ClassifierCoverage(gov, d.IDs(), predicted, inst.setSize, inst.tau, g,
			core.ClassifierOptions{
				Rng:         rand.New(rand.NewSource(inst.auditSeed)),
				Parallelism: parallelism,
				Lockstep:    true,
			})
		if err != nil {
			t.Fatal(err)
		}
		exhausted = res.Exhausted
		audit = fmt.Sprintf("%+v", res)
	default:
		groups := pattern.GroupsForAttribute(inst.schema, 0)
		res, err := core.MultipleCoverage(gov, d.IDs(), inst.setSize, inst.tau, groups, opts)
		if err != nil {
			t.Fatal(err)
		}
		exhausted = res.Exhausted
		audit = fmt.Sprintf("%+v|%+v|%v|%d|%d|%d", res.Results, res.SuperAudits,
			res.Exhausted, res.SampleTasks, res.AuditTasks, res.Tasks)
	}

	spent := gov.Spent()
	cell := fmt.Sprintf("audit=%s\nexhaustion=%+v\nspend=%s\neligible=%d\nhits=%d",
		audit, spent, p.Ledger().Snapshot(), p.EligibleWorkers(), log.HITs())
	return cell, exhausted
}

// TestBudgetedLockstepCrossParallelismConformance is the budgeted
// conformance matrix: >= 50 randomized instances, each run at P in
// {1, 2, 4, 16} under lockstep, asserting byte-identical exhaustion
// points, partial verdicts, committed task counts and ledger spend.
func TestBudgetedLockstepCrossParallelismConformance(t *testing.T) {
	instances := 50
	if testing.Short() {
		instances = 12
	}
	rng := rand.New(rand.NewSource(20270))
	exhaustedInstances := 0
	for i := 0; i < instances; i++ {
		inst := generateBudgetedInstance(rng, conformanceKind(i))
		var exhausted bool
		t.Run(fmt.Sprintf("%02d-%s", i, inst.kind), func(t *testing.T) {
			var base string
			for _, par := range []int{1, 2, 4, 16} {
				got, exh := runBudgetedCell(t, inst, par)
				if par == 1 {
					base, exhausted = got, exh
					continue
				}
				if got != base {
					t.Fatalf("parallelism %d diverged from parallelism 1:\n--- P=%d ---\n%s\n--- P=1 ---\n%s\n(instance %+v)",
						par, par, got, base, inst)
				}
			}
		})
		if exhausted {
			exhaustedInstances++
		}
	}
	// Coverage guard: the matrix must actually exercise exhaustion —
	// caps that never bind would verify nothing about the exhaustion
	// path.
	if min := instances / 3; exhaustedInstances < min {
		t.Errorf("only %d of %d budgeted instances exhausted; want >= %d for the matrix to cover the exhaustion path",
			exhaustedInstances, instances, min)
	}
}

// TestBudgetedLedgerNeverExceedsCap asserts the governance invariant
// end to end, for both cap denominations across the randomized
// screening/pricing deployments: a HIT cap bounds the ledger's HIT
// count, a dollar cap bounds the ledger's TotalCost (workers + fee) —
// the money actually spent — and the governor's accounting agrees with
// the ledger (its HIT tally exactly, its spend because crowd.HITCost
// quotes precisely what Platform records per posted HIT).
func TestBudgetedLedgerNeverExceedsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(20271))
	for i := 0; i < 24; i++ {
		inst := generateBudgetedInstance(rng, conformanceKind(i))
		inst.spendCap = i%2 == 1
		d := dataset.MustFromCounts(inst.schema, inst.counts, rand.New(rand.NewSource(inst.platformSeed+1)))
		p := platformFor(t, inst.conformanceInstance, d, &ResponseLog{})
		budget := budgetFor(inst, p)
		gov := core.NewBudgetedOracle(p, budget)
		groups := pattern.GroupsForAttribute(inst.schema, 0)
		if _, err := core.MultipleCoverage(gov, d.IDs(), inst.setSize, inst.tau, groups, core.MultipleOptions{
			Rng:      rand.New(rand.NewSource(inst.auditSeed)),
			Lockstep: true,
		}); err != nil {
			t.Fatal(err)
		}
		spent := gov.Spent()
		ledger := p.Ledger().Snapshot()
		if spent.HITs() != ledger.TotalHITs {
			t.Errorf("instance %d: governor committed %d HITs but ledger recorded %d",
				i, spent.HITs(), ledger.TotalHITs)
		}
		if inst.spendCap {
			if ledger.TotalCost > budget.MaxSpend+1e-9 {
				t.Errorf("instance %d: ledger spend $%.4f exceeds the $%.4f cap (pricing=%d assignments=%d)",
					i, ledger.TotalCost, budget.MaxSpend, inst.pricing, inst.assignments)
			}
			if diff := ledger.TotalCost - spent.Spend; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("instance %d: governor spend $%.4f diverges from ledger $%.4f",
					i, spent.Spend, ledger.TotalCost)
			}
		} else if ledger.TotalHITs > inst.budgetHITs {
			t.Errorf("instance %d: ledger recorded %d HITs over cap %d", i, ledger.TotalHITs, inst.budgetHITs)
		}
	}
}
