package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"table1", "table2", "figure7a", "noise-sweep"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "effective 1") {
		t.Errorf("output missing Table 3 settings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Figure 7e") {
		t.Errorf("output missing artifact name")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
