package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

var errNilOracleOrSet = errors.New("core: nil oracle or labeled set")

// chooseSamples is the selection step shared by LabelSamples and
// LabelSamplesBatch: it draws up to k random indices and splits the
// ids into the chosen sample and the remainder, both in input order.
// Sharing the chooser (and its RNG consumption) is what keeps the
// sequential and batched sampling phases bit-for-bit interchangeable.
func chooseSamples(ids []dataset.ObjectID, k int, l *LabeledSet, rng *rand.Rand) (sample, remaining []dataset.ObjectID, err error) {
	if l == nil {
		return nil, nil, errNilOracleOrSet
	}
	if rng == nil {
		return nil, nil, errors.New("core: sampling needs a *rand.Rand")
	}
	if k < 0 {
		return nil, nil, fmt.Errorf("core: sample size %d", k)
	}
	if k > len(ids) {
		k = len(ids)
	}
	chosen := make(map[int]bool, k)
	for _, idx := range rng.Perm(len(ids))[:k] {
		chosen[idx] = true
	}
	sample = make([]dataset.ObjectID, 0, k)
	remaining = make([]dataset.ObjectID, 0, len(ids)-k)
	for i, id := range ids {
		if chosen[i] {
			sample = append(sample, id)
		} else {
			remaining = append(remaining, id)
		}
	}
	return sample, remaining, nil
}

// LabelSamples is the sampling phase of section 4 (Algorithm 6): it
// draws up to k random objects, labels each with a point query, moves
// them into the labeled set L, and returns the remaining ids (order
// preserved). The paper uses k = c*tau with c = 2: enough point
// queries to confirm majority groups outright while estimating the
// frequencies of the minorities.
func LabelSamples(o Oracle, ids []dataset.ObjectID, k int, l *LabeledSet, rng *rand.Rand) (remaining []dataset.ObjectID, tasks int, err error) {
	if o == nil {
		return nil, 0, errNilOracleOrSet
	}
	sample, remaining, err := chooseSamples(ids, k, l, rng)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range sample {
		labels, err := o.PointQuery(id)
		if err != nil {
			// The chosen-but-unlabeled suffix stays outside both L and
			// remaining; callers translating a budget exhaustion into a
			// partial result still get a valid (sample-free) remainder.
			return remaining, tasks, err
		}
		tasks++
		l.Add(id, labels)
	}
	return remaining, tasks, nil
}

// ExpectedCount extrapolates |g| from the labeled sample:
// E[|g|] = N * L.count(g) / |L| (section 4). Zero when L is empty.
func ExpectedCount(l *LabeledSet, n int, g pattern.Group) float64 {
	if l.Len() == 0 {
		return 0
	}
	return float64(n) * float64(l.Count(g)) / float64(l.Len())
}

// Aggregate is the aggregate function of Algorithm 6: it sorts the
// groups by their sampled counts ascending — putting minorities next
// to each other — and greedily merges consecutive groups into a
// super-group while the sum of their expected counts stays below tau.
// The result partitions the input; each element lists the indices (in
// the input slice) of one super-group's members.
//
// When multi is true (the intersectional case), a group may join a
// super-group only if it shares a pattern-graph parent with every
// member already in it, i.e. all members are fully-specified sibling
// patterns differing in exactly one attribute. This restriction is
// what lets Intersectional-Coverage treat an uncovered super-group's
// joint count as exact at the shared parent.
func Aggregate(l *LabeledSet, n, tau int, groups []pattern.Group, multi bool) [][]int {
	type entry struct {
		idx      int
		count    int
		expected float64
	}
	entries := make([]entry, len(groups))
	for i, g := range groups {
		entries[i] = entry{idx: i, count: l.Count(g), expected: ExpectedCount(l, n, g)}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count < entries[j].count
		}
		return entries[i].idx < entries[j].idx
	})

	var out [][]int
	var cur []int
	sum := 0.0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
			sum = 0
		}
	}
	for _, e := range entries {
		compatible := true
		if multi {
			for _, j := range cur {
				if !shareParent(groups[e.idx], groups[j]) {
					compatible = false
					break
				}
			}
		}
		if compatible && sum+e.expected < float64(tau) {
			cur = append(cur, e.idx)
			sum += e.expected
			continue
		}
		flush()
		cur = []int{e.idx}
		sum = e.expected
	}
	flush()
	return out
}

// shareParent reports whether two single-pattern, fully-specified
// groups are siblings in the pattern graph: they differ in exactly one
// attribute (and therefore share the parent that leaves it
// unspecified). Anything else never merges under the multi rule.
func shareParent(a, b pattern.Group) bool {
	if len(a.Members) != 1 || len(b.Members) != 1 {
		return false
	}
	p, q := a.Members[0], b.Members[0]
	if len(p) != len(q) || !p.FullySpecified() || !q.FullySpecified() {
		return false
	}
	diff := 0
	for i := range p {
		if p[i] != q[i] {
			diff++
		}
	}
	return diff == 1
}

// SuperAudit records the Group-Coverage run over one super-group.
type SuperAudit struct {
	// GroupIndices are the positions of the member groups in the
	// MultipleCoverage input.
	GroupIndices []int
	// Covered is the verdict for the union of the members.
	Covered bool
	// RemainingCount is the (exact, when uncovered) number of union
	// members found among the unlabeled objects.
	RemainingCount int
	// TotalCount adds the members found among the labeled samples.
	TotalCount int
	// Tasks issued by this super-group's audit, including any
	// per-member reruns after a covered verdict.
	Tasks int
}

// MultipleGroupResult is the per-group outcome of Multiple-Coverage.
type MultipleGroupResult struct {
	Group pattern.Group
	// Covered is the coverage verdict for the group.
	Covered bool
	// CountLo and CountHi bound |g| over the full audited universe.
	// Exact results have CountLo == CountHi.
	CountLo, CountHi int
	// Exact marks the count as exact.
	Exact bool
	// Settled is true when the audit reached a definite verdict for
	// this group. It is false only when a budget governor exhausted the
	// audit first (see Budget): Covered then defaults to false and
	// [CountLo, CountHi] are the best bounds the committed answers
	// prove.
	Settled bool
	// SuperIndex points into SuperAudits when the group's verdict
	// came from an uncovered super-group (so only the joint count is
	// exact); -1 when the group was audited individually.
	SuperIndex int
}

// MultipleResult is the outcome of Multiple-Coverage over all groups.
type MultipleResult struct {
	// Results aligns with the input group slice.
	Results []MultipleGroupResult
	// SuperAudits lists the super-group audits in execution order.
	SuperAudits []SuperAudit
	// Labeled is the point-query label cache L.
	Labeled *LabeledSet
	// RemainingIDs are the objects never moved into L.
	RemainingIDs []dataset.ObjectID
	// Exhausted is true when a budget governor stopped the audit
	// before every group settled; unsettled groups carry best-effort
	// bounds (Settled false). Task counts tally committed queries only.
	Exhausted bool
	// SampleTasks, AuditTasks and Tasks break down the cost.
	SampleTasks, AuditTasks, Tasks int
}

// MultipleOptions tunes Multiple-Coverage.
type MultipleOptions struct {
	// SampleFactor is the constant c of the sampling phase; the label
	// budget is c*tau point queries. Zero means the paper's default 2.
	SampleFactor int
	// NoSampling skips the sampling phase entirely (ablation): with an
	// empty labeled set, every group's expected count is zero and the
	// aggregation merges maximally.
	NoSampling bool
	// Multi applies the same-parent aggregation rule (intersectional).
	Multi bool
	// Rng drives sampling and seeds the per-audit child RNGs of the
	// concurrent engine; required.
	Rng *rand.Rand
	// Parallelism bounds the worker pool of the concurrent engine:
	// independent super-group audits (and the per-member re-audits of
	// the covered-penalty branch) run across up to Parallelism
	// goroutines, and the sampling phase is issued as one batched
	// oracle round. Zero or one runs the sequential Algorithm 2
	// verbatim. The oracle must be safe for concurrent use; with an
	// order-independent oracle (TruthOracle, any stateless crowd
	// bridge) verdicts and task counts are identical to the sequential
	// engine for every Parallelism value.
	Parallelism int
	// Lockstep replaces the free-running pool with the deterministic
	// round scheduler (lockstep.go): concurrent audits park their
	// oracle queries, whole rounds commit in canonical (super-group,
	// member, query-sequence) order through one BatchOracle call, and
	// the schedule never depends on Parallelism. With an oracle whose
	// batches execute in request order (the crowd Platform, TruthOracle,
	// any native BatchOracle honoring the contract) results are
	// bit-for-bit identical at every Parallelism value even when
	// answers depend on query order; Parallelism then only bounds the
	// pool that lifts non-batching oracles, preserving the latency win
	// of batched rounds. Order-independent oracles additionally
	// reproduce the sequential engine exactly.
	Lockstep bool
	// Retry re-posts transiently failing HITs (ErrTransient) instead
	// of aborting the audit; jitter is drawn from per-audit child RNGs
	// split deterministically from Rng.
	Retry RetryPolicy
	// Budget caps the committed crowd queries of this audit: the engine
	// wraps the oracle in a BudgetedOracle governor and, when the cap
	// is hit, returns a deterministic partial result (Exhausted set,
	// unsettled groups carrying best-effort bounds) instead of an
	// error. An oracle that already is a *BudgetedOracle — the Auditor
	// shares one governor across audits — is reused and this field is
	// ignored. Exhaustion is byte-identical across Parallelism only
	// under Lockstep; the free-running pool charges queries in arrival
	// order.
	Budget Budget
	// Ctx cancels the audit at round boundaries: a cancelled context
	// fails the next oracle round before it reaches the crowd (checked
	// in the lockstep commit path, at pool dispatch, in the journaling
	// middleware and in the retry backoff), so a killed job never
	// half-posts a round. Nil means context.Background().
	Ctx context.Context
}

// context resolves opts.Ctx, defaulting to context.Background().
func (o MultipleOptions) context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// MultipleCoverage is Algorithm 2: coverage identification for several
// groups at once. It first labels c*tau random objects, forms
// super-groups of expected minorities by Algorithm 6, and audits each
// super-group with Group-Coverage. An uncovered super-group settles
// all its members at once (every member is uncovered); a covered one
// pays the penalty of re-auditing each member individually.
func MultipleCoverage(o Oracle, ids []dataset.ObjectID, n, tau int, groups []pattern.Group, opts MultipleOptions) (*MultipleResult, error) {
	if o == nil {
		return nil, errors.New("core: nil oracle")
	}
	if len(groups) == 0 {
		return nil, errors.New("core: no groups to audit")
	}
	if opts.Rng == nil {
		return nil, errors.New("core: MultipleCoverage needs options.Rng")
	}
	c := opts.SampleFactor
	if c == 0 {
		c = 2
	}
	if c < 0 || n < 1 || tau < 0 {
		return nil, fmt.Errorf("core: invalid parameters (c=%d n=%d tau=%d)", c, n, tau)
	}
	o, _ = applyBudget(o, opts.Budget)
	if opts.Lockstep || opts.Parallelism > 1 {
		return multipleCoverageParallel(o, ids, n, tau, c, groups, opts)
	}

	res := &MultipleResult{
		Results: make([]MultipleGroupResult, len(groups)),
		Labeled: NewLabeledSet(),
	}
	budget := c * tau
	if opts.NoSampling {
		budget = 0
	}
	ctx := opts.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seqOracle := withRetry(ctx, o, opts.Retry, opts.Rng)
	remaining, sampleTasks, err := LabelSamples(seqOracle, ids, budget, res.Labeled, opts.Rng)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return settleSamplingExhausted(res, remaining, sampleTasks, groups, len(ids)), nil
		}
		return nil, err
	}
	res.RemainingIDs = remaining
	res.SampleTasks = sampleTasks

	plans := buildSuperPlans(res.Labeled, tau, groups, Aggregate(res.Labeled, len(ids), tau, groups, opts.Multi))
	for _, plan := range plans {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// GroupCoverage translates budget exhaustion into a partial
		// Exhausted result, so the loop simply runs on: once the
		// governor refuses queries, every later audit returns
		// exhausted at zero additional cost (or settles for free when
		// its residual threshold is already met) and settleSuper marks
		// the affected groups unsettled.
		gc, err := GroupCoverage(seqOracle, remaining, n, plan.tauPrime, plan.union)
		if err != nil {
			return nil, err
		}
		subs := make([]GroupResult, 0, len(plan.members))
		if len(plan.members) > 1 && gc.Covered {
			// Penalty case: the super-group is covered, which says
			// nothing about individual members (line 8-12).
			for _, gi := range plan.members {
				g := groups[gi]
				sub, err := GroupCoverage(seqOracle, remaining, n, clampTau(tau-res.Labeled.Count(g)), g)
				if err != nil {
					return nil, err
				}
				subs = append(subs, sub)
			}
		}
		settleSuper(res, plan, gc, subs, groups, len(ids))
	}
	res.Tasks = res.SampleTasks + res.AuditTasks
	return res, nil
}

// settleSamplingExhausted finishes a Multiple-Coverage run whose
// budget ran out during the sampling phase: no super-group was ever
// audited, so every group is unsettled with the bounds the committed
// sample labels prove.
func settleSamplingExhausted(res *MultipleResult, remaining []dataset.ObjectID, sampleTasks int, groups []pattern.Group, universe int) *MultipleResult {
	res.RemainingIDs = remaining
	res.SampleTasks = sampleTasks
	res.Tasks = sampleTasks
	res.Exhausted = true
	for i, g := range groups {
		res.Results[i] = unsettledResult(g, res.Labeled, universe)
	}
	return res
}

// unsettledResult is the best-effort outcome for a group whose audit a
// budget governor stopped: at least the labeled members exist, nothing
// above that is proven.
func unsettledResult(g pattern.Group, l *LabeledSet, universe int) MultipleGroupResult {
	return MultipleGroupResult{
		Group:      g,
		CountLo:    l.Count(g),
		CountHi:    universe,
		SuperIndex: -1,
	}
}

// superPlan precomputes one super-group audit: the member indices,
// their union group, the members already found among the labeled
// samples, and the residual threshold.
type superPlan struct {
	members    []int
	union      pattern.Group
	labeledSum int
	tauPrime   int
}

// buildSuperPlans turns the aggregation output into audit plans. The
// residual threshold clamps at zero: the samples may already satisfy
// tau, making the audit trivially covered at zero tasks.
func buildSuperPlans(l *LabeledSet, tau int, groups []pattern.Group, supers [][]int) []superPlan {
	plans := make([]superPlan, len(supers))
	for si, members := range supers {
		labeledSum := 0
		parts := make([]pattern.Group, len(members))
		for i, gi := range members {
			labeledSum += l.Count(groups[gi])
			parts[i] = groups[gi]
		}
		union := parts[0]
		if len(parts) > 1 {
			union = pattern.SuperGroup(parts...)
		}
		plans[si] = superPlan{
			members:    members,
			union:      union,
			labeledSum: labeledSum,
			tauPrime:   clampTau(tau - labeledSum),
		}
	}
	return plans
}

// settleSuper folds one finished super-group audit — the union verdict
// gc plus, in the covered-penalty case, the per-member re-audits subs
// (aligned with plan.members) — into the result. Both the sequential
// and the concurrent engine settle through this one function, so their
// verdicts and task accounting cannot drift apart.
func settleSuper(res *MultipleResult, plan superPlan, gc GroupResult, subs []GroupResult, groups []pattern.Group, universe int) {
	audit := SuperAudit{
		GroupIndices:   plan.members,
		Covered:        gc.Covered,
		RemainingCount: gc.Count,
		TotalCount:     plan.labeledSum + gc.Count,
		Tasks:          gc.Tasks,
	}
	switch {
	case len(plan.members) == 1:
		gi := plan.members[0]
		res.Results[gi] = singleResult(groups[gi], gc, res.Labeled, universe)
	case gc.Covered:
		for i, gi := range plan.members {
			audit.Tasks += subs[i].Tasks
			res.Results[gi] = singleResult(groups[gi], subs[i], res.Labeled, universe)
		}
	case gc.Exhausted:
		// The union audit stopped mid-way: a partial joint bound
		// settles no individual member.
		for _, gi := range plan.members {
			res.Results[gi] = unsettledResult(groups[gi], res.Labeled, universe)
		}
	default:
		// The union has fewer than tau members, so every member is
		// uncovered (line 13); only the joint count is exact.
		superIdx := len(res.SuperAudits)
		for _, gi := range plan.members {
			g := groups[gi]
			lo := res.Labeled.Count(g)
			res.Results[gi] = MultipleGroupResult{
				Group:      g,
				Covered:    false,
				CountLo:    lo,
				CountHi:    lo + gc.Count,
				Exact:      false,
				Settled:    true,
				SuperIndex: superIdx,
			}
		}
	}
	if gc.Exhausted {
		res.Exhausted = true
	}
	for _, sub := range subs {
		if sub.Exhausted {
			res.Exhausted = true
		}
	}
	res.SuperAudits = append(res.SuperAudits, audit)
	res.AuditTasks += audit.Tasks
}

// clampTau floors a residual threshold at zero: the samples already
// proved coverage when it goes negative.
func clampTau(tau int) int {
	if tau < 0 {
		return 0
	}
	return tau
}

// singleResult folds a Group-Coverage outcome over the remaining
// objects together with the labeled samples into a full-universe
// result for one group.
func singleResult(g pattern.Group, gc GroupResult, l *LabeledSet, universe int) MultipleGroupResult {
	lo := l.Count(g) + gc.Count
	out := MultipleGroupResult{
		Group:      g,
		Covered:    gc.Covered,
		CountLo:    lo,
		CountHi:    universe,
		Exact:      false,
		Settled:    !gc.Exhausted,
		SuperIndex: -1,
	}
	if !gc.Covered && gc.Exact {
		out.CountHi = lo
		out.Exact = true
	}
	return out
}
