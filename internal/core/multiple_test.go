package core

import (
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// raceSchema has one attribute with four values; value 0 is the
// majority in most tests.
func raceSchema() *pattern.Schema {
	return pattern.MustSchema(pattern.Attribute{
		Name:   "race",
		Values: []string{"white", "black", "hispanic", "asian"},
	})
}

func TestLabelSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d, _ := dataset.BinaryWithMinority(100, 20, rng)
	o := NewTruthOracle(d)
	l := NewLabeledSet()
	remaining, tasks, err := LabelSamples(o, d.IDs(), 30, l, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tasks != 30 || l.Len() != 30 || len(remaining) != 70 {
		t.Errorf("tasks=%d |L|=%d remaining=%d", tasks, l.Len(), len(remaining))
	}
	// Labeled and remaining must partition the ids.
	for _, id := range remaining {
		if l.Has(id) {
			t.Fatalf("id %d both labeled and remaining", id)
		}
	}
	// Labels must be ground truth (perfect oracle).
	for id := range map[dataset.ObjectID]bool{} {
		_ = id
	}
	total := l.Count(dataset.Female(d.Schema()))
	want := 0
	for i := 0; i < d.Size(); i++ {
		o := d.At(i)
		if o.Labels[0] == 1 && l.Has(o.ID) {
			want++
		}
	}
	if total != want {
		t.Errorf("labeled female count = %d, want %d", total, want)
	}
}

func TestLabelSamplesClampsAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d, _ := dataset.BinaryWithMinority(10, 2, rng)
	o := NewTruthOracle(d)
	l := NewLabeledSet()
	remaining, tasks, err := LabelSamples(o, d.IDs(), 500, l, rng)
	if err != nil || tasks != 10 || len(remaining) != 0 {
		t.Errorf("clamp: tasks=%d remaining=%d err=%v", tasks, len(remaining), err)
	}
	if _, _, err := LabelSamples(o, d.IDs(), -1, l, rng); err == nil {
		t.Error("negative k: want error")
	}
	if _, _, err := LabelSamples(nil, d.IDs(), 1, l, rng); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, _, err := LabelSamples(o, d.IDs(), 1, nil, rng); err == nil {
		t.Error("nil labeled set: want error")
	}
	if _, _, err := LabelSamples(o, d.IDs(), 1, l, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestExpectedCount(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	l := NewLabeledSet()
	g := female(d)
	if got := ExpectedCount(l, 100, g); got != 0 {
		t.Errorf("empty L expected = %f", got)
	}
	l.Add(0, []int{0})
	l.Add(1, []int{1})
	l.Add(2, []int{1})
	l.Add(3, []int{0})
	if got := ExpectedCount(l, 100, g); got != 50 {
		t.Errorf("expected = %f, want 50", got)
	}
}

func TestAggregateMergesMinorities(t *testing.T) {
	// Sample: 40 white, 4 black, 3 hispanic, 3 asian out of N=100,
	// tau=30. Expected counts: 80, 8, 6, 6. The three minorities merge
	// (6+6+8=20 < 30) and white stands alone.
	s := raceSchema()
	l := NewLabeledSet()
	id := dataset.ObjectID(0)
	add := func(v, n int) {
		for i := 0; i < n; i++ {
			l.Add(id, []int{v})
			id++
		}
	}
	add(0, 40)
	add(1, 4)
	add(2, 3)
	add(3, 3)
	groups := pattern.GroupsForAttribute(s, 0)
	supers := Aggregate(l, 100, 30, groups, false)
	if len(supers) != 2 {
		t.Fatalf("supers = %v, want 2", supers)
	}
	if len(supers[0]) != 3 {
		t.Errorf("first super = %v, want the 3 minorities", supers[0])
	}
	if len(supers[1]) != 1 || supers[1][0] != 0 {
		t.Errorf("second super = %v, want [white]", supers[1])
	}
}

func TestAggregateEmptySampleMergesEverythingBelowTau(t *testing.T) {
	s := raceSchema()
	groups := pattern.GroupsForAttribute(s, 0)
	supers := Aggregate(NewLabeledSet(), 100, 30, groups, false)
	if len(supers) != 1 || len(supers[0]) != 4 {
		t.Errorf("empty sample should merge all: %v", supers)
	}
}

func TestAggregatePartitionProperty(t *testing.T) {
	// Property: the output always partitions the input indices, and
	// every non-singleton super-group has expected sum < tau.
	s := raceSchema()
	groups := pattern.GroupsForAttribute(s, 0)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		l := NewLabeledSet()
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			l.Add(dataset.ObjectID(i), []int{rng.Intn(4)})
		}
		N := n * (1 + rng.Intn(10))
		tau := 1 + rng.Intn(60)
		supers := Aggregate(l, N, tau, groups, false)
		seen := map[int]bool{}
		for _, members := range supers {
			if len(members) == 0 {
				t.Fatal("empty super-group")
			}
			sum := 0.0
			for _, gi := range members {
				if seen[gi] {
					t.Fatalf("group %d in two super-groups", gi)
				}
				seen[gi] = true
				sum += ExpectedCount(l, N, groups[gi])
			}
			if len(members) > 1 && sum >= float64(tau) {
				t.Fatalf("super-group %v expected sum %.1f >= tau %d", members, sum, tau)
			}
		}
		if len(seen) != len(groups) {
			t.Fatalf("partition covers %d of %d groups", len(seen), len(groups))
		}
	}
}

func TestAggregateMultiRequiresSharedParent(t *testing.T) {
	// gender x race, all subgroups tiny: without the multi rule they
	// would all merge; with it, merged patterns must pairwise share a
	// parent (differ in exactly one attribute).
	s := pattern.MustSchema(
		pattern.Attribute{Name: "gender", Values: []string{"m", "f"}},
		pattern.Attribute{Name: "race", Values: []string{"w", "b", "h", "a"}},
	)
	groups := pattern.SubgroupGroups(s)
	l := NewLabeledSet()
	supers := Aggregate(l, 1000, 50, groups, true)
	for _, members := range supers {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !shareParent(groups[members[i]], groups[members[j]]) {
					t.Fatalf("super-group %v contains non-siblings %v and %v",
						members, groups[members[i]], groups[members[j]])
				}
			}
		}
	}
}

func TestShareParent(t *testing.T) {
	s := pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
	)
	g := func(p pattern.Pattern) pattern.Group { return pattern.GroupOf("", p) }
	if !shareParent(g(pattern.MustPattern(s, 0, 0)), g(pattern.MustPattern(s, 0, 1))) {
		t.Error("siblings must share a parent")
	}
	if shareParent(g(pattern.MustPattern(s, 0, 0)), g(pattern.MustPattern(s, 1, 1))) {
		t.Error("diagonal patterns share no parent")
	}
	if shareParent(g(pattern.MustPattern(s, 0, 0)), g(pattern.MustPattern(s, 0, 0))) {
		t.Error("a pattern is not its own sibling")
	}
	if shareParent(g(pattern.MustPattern(s, 0, pattern.Wildcard)), g(pattern.MustPattern(s, 0, 0))) {
		t.Error("non-fully-specified patterns never merge")
	}
	super := pattern.SuperGroup(g(pattern.MustPattern(s, 0, 0)), g(pattern.MustPattern(s, 0, 1)))
	if shareParent(super, g(pattern.MustPattern(s, 1, 0))) {
		t.Error("multi-member groups never merge")
	}
}

func TestMultipleCoverageMatchesGroundTruth(t *testing.T) {
	// Randomized end-to-end: verdict per group always matches ground
	// truth counts.
	s := raceSchema()
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		counts := []int{
			200 + rng.Intn(400),
			rng.Intn(120),
			rng.Intn(120),
			rng.Intn(120),
		}
		tau := 1 + rng.Intn(60)
		d := dataset.MustFromCounts(s, counts, rng)
		o := NewTruthOracle(d)
		groups := pattern.GroupsForAttribute(s, 0)
		res, err := MultipleCoverage(o, d.IDs(), 50, tau, groups, MultipleOptions{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		for gi, r := range res.Results {
			want := counts[gi] >= tau
			if r.Covered != want {
				t.Fatalf("trial %d group %d (count=%d tau=%d): covered=%v want %v",
					trial, gi, counts[gi], tau, r.Covered, want)
			}
			if r.CountLo > counts[gi] || r.CountHi < counts[gi] {
				t.Fatalf("trial %d group %d: bounds [%d,%d] exclude true count %d",
					trial, gi, r.CountLo, r.CountHi, counts[gi])
			}
			if r.Exact && r.CountLo != counts[gi] {
				t.Fatalf("trial %d group %d: exact count %d != true %d",
					trial, gi, r.CountLo, counts[gi])
			}
		}
		if res.Tasks != res.SampleTasks+res.AuditTasks {
			t.Fatalf("task breakdown inconsistent: %+v", res)
		}
	}
}

func TestMultipleCoverageEffectiveCaseSavesTasks(t *testing.T) {
	// "effective 1" of Table 3: three uncovered minorities whose
	// super-group stays uncovered. Multiple-Coverage should audit them
	// jointly and beat the brute-force per-group Group-Coverage runs.
	s := raceSchema()
	rng := rand.New(rand.NewSource(45))
	counts := []int{9800, 10, 8, 6} // tau 50: all three minorities uncovered, sum 24 < 50
	d := dataset.MustFromCounts(s, counts, rng)
	groups := pattern.GroupsForAttribute(s, 0)

	o := NewTruthOracle(d)
	res, err := MultipleCoverage(o, d.IDs(), 50, 50, groups, MultipleOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}

	brute := 0
	for _, g := range groups {
		ob := NewTruthOracle(d)
		r, err := GroupCoverage(ob, d.IDs(), 50, 50, g)
		if err != nil {
			t.Fatal(err)
		}
		brute += r.Tasks
	}
	if res.Tasks >= brute {
		t.Errorf("Multiple-Coverage %d tasks, brute force %d: aggregation should win", res.Tasks, brute)
	}
	// The three minorities must come back uncovered with a shared
	// super audit.
	for gi := 1; gi <= 3; gi++ {
		if res.Results[gi].Covered {
			t.Errorf("minority %d reported covered", gi)
		}
	}
}

func TestMultipleCoverageValidation(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	groups := pattern.GroupsForAttribute(d.Schema(), 0)
	rng := rand.New(rand.NewSource(1))
	if _, err := MultipleCoverage(nil, d.IDs(), 1, 1, groups, MultipleOptions{Rng: rng}); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, err := MultipleCoverage(o, d.IDs(), 1, 1, nil, MultipleOptions{Rng: rng}); err == nil {
		t.Error("no groups: want error")
	}
	if _, err := MultipleCoverage(o, d.IDs(), 1, 1, groups, MultipleOptions{}); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := MultipleCoverage(o, d.IDs(), 0, 1, groups, MultipleOptions{Rng: rng}); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := MultipleCoverage(o, d.IDs(), 1, 1, groups, MultipleOptions{Rng: rng, SampleFactor: -1}); err == nil {
		t.Error("negative c: want error")
	}
}

func TestMultipleCoverageSamplesSettleMajority(t *testing.T) {
	// With c*tau samples and a dominant majority, the majority group's
	// audit should need zero or near-zero additional set queries: the
	// samples alone push tau' to <= 0 or the first few roots finish it.
	s := raceSchema()
	rng := rand.New(rand.NewSource(46))
	d := dataset.MustFromCounts(s, []int{5000, 10, 10, 10}, rng)
	o := NewTruthOracle(d)
	groups := pattern.GroupsForAttribute(s, 0)
	res, err := MultipleCoverage(o, d.IDs(), 50, 50, groups, MultipleOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Results[0].Covered {
		t.Fatal("majority must be covered")
	}
	if res.SampleTasks != 100 {
		t.Errorf("sample tasks = %d, want c*tau = 100", res.SampleTasks)
	}
}

func TestMultipleCoveragePropagatesErrors(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 0, 1})
	groups := pattern.GroupsForAttribute(d.Schema(), 0)
	rng := rand.New(rand.NewSource(2))
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 2}
	if _, err := MultipleCoverage(flaky, d.IDs(), 2, 2, groups, MultipleOptions{Rng: rng}); err == nil {
		t.Error("want propagated transient error")
	}
}

// pattern4Groups returns the per-value groups of the race schema, a
// shared helper for aggregation and ablation tests.
func pattern4Groups(s *pattern.Schema) []pattern.Group {
	return pattern.GroupsForAttribute(s, 0)
}
