package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

var _ core.RoundJournal = (*Journal)(nil)

// sampleRecords covers both round kinds, partial-prefix outcomes and a
// governor snapshot.
func sampleRecords() []core.RoundRecord {
	g := pattern.Group{Name: "minority", Members: []pattern.Pattern{{0, 1}, {1, -1}}}
	return []core.RoundRecord{
		{
			Round: 0,
			Sets: []core.SetRequest{
				{IDs: []dataset.ObjectID{1, 2, 3}, Group: g},
				{IDs: []dataset.ObjectID{4, 5}, Group: g, Reverse: true},
			},
			SetAnswers: []bool{true, false},
			Spent:      core.BudgetSpent{Set: 1, ReverseSet: 1, Spend: 2},
		},
		{
			Round:        1,
			Points:       []dataset.ObjectID{7, 8, 9},
			PointAnswers: [][]int{{0, 1}, {1, 0}, {2, 2}},
			Spent:        core.BudgetSpent{Set: 1, ReverseSet: 1, Point: 3, Spend: 5},
		},
		{
			Round:      2,
			Sets:       []core.SetRequest{{IDs: []dataset.ObjectID{10}, Group: g}},
			SetAnswers: []bool{},
			ErrKind:    "budget",
			Spent:      core.BudgetSpent{Set: 1, ReverseSet: 1, Point: 3, Spend: 5, Denied: 1},
		},
	}
}

// writeJournal creates a journal at path holding recs.
func writeJournal(t *testing.T, path string, recs []core.RoundRecord) {
	t.Helper()
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// recordsEqual compares record slices modulo JSON nil-vs-empty slice
// differences, by round-tripping expectations is overkill — instead
// compare the fields that carry meaning.
func recordsEqual(a, b []core.RoundRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Round != b[i].Round || a[i].ErrKind != b[i].ErrKind ||
			!reflect.DeepEqual(a[i].Spent, b[i].Spent) ||
			len(a[i].Sets) != len(b[i].Sets) || len(a[i].Points) != len(b[i].Points) ||
			len(a[i].SetAnswers) != len(b[i].SetAnswers) || len(a[i].PointAnswers) != len(b[i].PointAnswers) {
			return false
		}
		for k := range a[i].Sets {
			if !reflect.DeepEqual(a[i].Sets[k], b[i].Sets[k]) {
				return false
			}
		}
		for k := range a[i].SetAnswers {
			if a[i].SetAnswers[k] != b[i].SetAnswers[k] {
				return false
			}
		}
		for k := range a[i].Points {
			if a[i].Points[k] != b[i].Points[k] {
				return false
			}
		}
		for k := range a[i].PointAnswers {
			if !reflect.DeepEqual(a[i].PointAnswers[k], b[i].PointAnswers[k]) {
				return false
			}
		}
	}
	return true
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jnl")
	recs := sampleRecords()
	writeJournal(t, path, recs)

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(loaded, recs) {
		t.Fatalf("loaded records diverged:\n%+v\nvs\n%+v", loaded, recs)
	}

	// Open resumes: replay records match, appends continue the sequence.
	j, replay, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(replay, recs) {
		t.Fatalf("Open replay records diverged")
	}
	next := core.RoundRecord{Round: 3, Points: []dataset.ObjectID{11}, PointAnswers: [][]int{{1, 1}}}
	if err := j.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 || loaded[3].Round != 3 {
		t.Fatalf("resumed append not persisted: %+v", loaded)
	}
}

func TestJournalTornTailRecovers(t *testing.T) {
	recs := sampleRecords()
	// Torn variants: partial header, partial payload, final-frame CRC
	// damage. Each must recover to the complete prefix.
	tears := []struct {
		name string
		tear func([]byte) []byte
	}{
		{"partial header", func(b []byte) []byte { return append(b, 0x03, 0x00) }},
		{"partial payload", func(b []byte) []byte {
			return append(b, 0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y')
		}},
		{"final frame crc", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "audit.jnl")
			writeJournal(t, path, recs)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}

			wantLen := len(recs)
			if tc.name == "final frame crc" {
				wantLen-- // the damaged final frame is the torn record
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatalf("Load after %s: %v", tc.name, err)
			}
			if !recordsEqual(loaded, recs[:wantLen]) {
				t.Fatalf("recovered %d records, want prefix of %d", len(loaded), wantLen)
			}

			// Open truncates the tear and appending resumes cleanly.
			j, replay, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(replay) != wantLen {
				t.Fatalf("Open recovered %d records, want %d", len(replay), wantLen)
			}
			if err := j.Append(core.RoundRecord{Round: wantLen, Points: []dataset.ObjectID{42}, PointAnswers: [][]int{{0}}}); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			loaded, err = Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(loaded) != wantLen+1 {
				t.Fatalf("after recovery+append: %d records, want %d", len(loaded), wantLen+1)
			}
		})
	}
}

func TestJournalCorruptionIsLoud(t *testing.T) {
	recs := sampleRecords()
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"mid-file payload flip", func(b []byte) []byte { b[len(magic)+frameHeaderSize+2] ^= 0x01; return b }},
		// A short file only counts as a torn header when it is a strict
		// prefix of the magic; short content that diverges is a
		// different file format and stays loud.
		{"short non-prefix", func(b []byte) []byte { b[0] ^= 0xff; return b[:4] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "audit.jnl")
			writeJournal(t, path, recs)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Load = %v, want ErrCorrupt", err)
			}
			if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Open = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestJournalTornHeaderIsEmpty pins the classification of files shorter
// than the magic: a zero-length file or any strict prefix of the magic
// is the wreckage of a crash inside Create — an empty journal that
// resumes from round 0 — not corruption. Open must rewrite the header
// so the recovered file accepts appends and reloads cleanly.
func TestJournalTornHeaderIsEmpty(t *testing.T) {
	cases := []struct {
		name    string
		content []byte
	}{
		{"zero length", []byte{}},
		{"one magic byte", []byte(magic)[:1]},
		{"partial magic", []byte(magic)[:5]},
		{"magic only", []byte(magic)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "audit.jnl")
			if err := os.WriteFile(path, tc.content, 0o644); err != nil {
				t.Fatal(err)
			}
			recs, err := Load(path)
			if err != nil {
				t.Fatalf("Load = %v, want empty journal", err)
			}
			if len(recs) != 0 {
				t.Fatalf("Load returned %d records from a header-only file", len(recs))
			}
			j, replay, err := Open(path)
			if err != nil {
				t.Fatalf("Open = %v, want empty journal", err)
			}
			if len(replay) != 0 {
				t.Fatalf("Open returned %d replay records", len(replay))
			}
			if err := j.Append(core.RoundRecord{Round: 0, Points: []dataset.ObjectID{1}, PointAnswers: [][]int{{0}}}); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatalf("reload after header recovery: %v", err)
			}
			if len(loaded) != 1 || loaded[0].Round != 0 {
				t.Fatalf("reload after header recovery: %+v", loaded)
			}
		})
	}
}

func TestJournalAppendSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jnl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(core.RoundRecord{Round: 2}); err == nil {
		t.Error("out-of-sequence append succeeded")
	}
	if err := j.Append(core.RoundRecord{Round: 0, Points: []dataset.ObjectID{1}, PointAnswers: [][]int{{0}}}); err != nil {
		t.Fatal(err)
	}
	if j.Rounds() != 1 {
		t.Errorf("Rounds() = %d, want 1", j.Rounds())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(core.RoundRecord{Round: 1}); err == nil {
		t.Error("append to closed journal succeeded")
	}
}
