package core

import (
	"fmt"
	"strings"
)

// TraceNode is one vertex of a recorded Group-Coverage execution tree
// (the trees of Figures 3 and 4 in the paper).
type TraceNode struct {
	// B and E delimit the node's half-open index range.
	B, E int
	// ParentB/ParentE identify the parent range; HasParent is false
	// for roots.
	ParentB, ParentE int
	HasParent        bool
	// Answer is the (possibly inferred) set-query answer.
	Answer bool
	// Inferred marks answers deduced via sibling inference — they
	// cost no task.
	Inferred bool
}

// ExecutionTrace collects the execution tree of one Group-Coverage
// run, for visualization and debugging. Pass it via
// GroupCoverageOptions.Trace.
type ExecutionTrace struct {
	Nodes []TraceNode
}

func (t *ExecutionTrace) record(nd *node, answer, inferred bool) {
	tn := TraceNode{B: nd.b, E: nd.e, Answer: answer, Inferred: inferred}
	if nd.parent != nil {
		tn.HasParent = true
		tn.ParentB, tn.ParentE = nd.parent.b, nd.parent.e
	}
	t.Nodes = append(t.Nodes, tn)
}

// Tasks returns the number of recorded nodes that cost a task.
func (t *ExecutionTrace) Tasks() int {
	n := 0
	for _, nd := range t.Nodes {
		if !nd.Inferred {
			n++
		}
	}
	return n
}

// DOT renders the execution tree in Graphviz format: yes answers in
// green, no answers in red, inferred answers dashed.
func (t *ExecutionTrace) DOT() string {
	var b strings.Builder
	b.WriteString("digraph groupcoverage {\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	name := func(lo, hi int) string { return fmt.Sprintf("n%d_%d", lo, hi) }
	for _, nd := range t.Nodes {
		color := "firebrick"
		label := "no"
		if nd.Answer {
			color = "forestgreen"
			label = "yes"
		}
		style := "solid"
		if nd.Inferred {
			style = "dashed"
			label += " (inferred)"
		}
		fmt.Fprintf(&b, "  %s [label=\"[%d,%d) %s\", color=%s, style=%s];\n",
			name(nd.B, nd.E), nd.B, nd.E, label, color, style)
		if nd.HasParent {
			fmt.Fprintf(&b, "  %s -> %s;\n", name(nd.ParentB, nd.ParentE), name(nd.B, nd.E))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the trace as an indented text tree, ordered by query
// sequence.
func (t *ExecutionTrace) String() string {
	var b strings.Builder
	for i, nd := range t.Nodes {
		answer := "no"
		if nd.Answer {
			answer = "yes"
		}
		if nd.Inferred {
			answer += " (inferred, free)"
		}
		fmt.Fprintf(&b, "%3d. [%d,%d) -> %s\n", i+1, nd.B, nd.E, answer)
	}
	return strings.TrimRight(b.String(), "\n")
}
