// Corpus for the wallclock analyzer: in-scope commit package.
package core

import "time"

func readsNow() time.Time {
	return time.Now() // want `wall-clock reads break resume identity`
}

func readsSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock reads break resume identity`
}

func readsUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want `wall-clock reads break resume identity`
}

func nowAsValue() func() time.Time {
	return time.Now // want `wall-clock reads break resume identity`
}

// Duration-fed timers are caller-deterministic, not clock reads.
func timerIsFine(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// A method named Now on a local type is not time.Now.
type fakeClock struct{ t time.Time }

func (c fakeClock) Now() time.Time { return c.t }

func usesFakeClock(c fakeClock) time.Time {
	return c.Now()
}

func suppressedRead() time.Time {
	//lint:wallclock harness-local timestamp, never journaled
	return time.Now()
}
