package crowd

import "fmt"

// Response is one worker's answer to one task, for batch truth
// inference. Values are class indices in [0, numClasses).
type Response struct {
	Task   int
	Worker int
	Value  int
}

// DSResult is the output of the Dawid–Skene estimator.
type DSResult struct {
	// Truth holds the MAP class per task.
	Truth []int
	// Posterior holds per-task class probabilities.
	Posterior [][]float64
	// WorkerAccuracy is the estimated probability that each worker
	// answers correctly (average of their confusion diagonal weighted
	// by class priors).
	WorkerAccuracy []float64
	// Iterations actually run before convergence.
	Iterations int
}

// DawidSkene runs the classic EM estimator of Dawid & Skene (1979)
// for truth inference from redundant categorical answers: it jointly
// estimates per-worker confusion matrices and per-task posterior class
// probabilities. Posteriors are initialized from per-task vote
// fractions; EM stops after maxIters or when the largest posterior
// change drops below 1e-6.
func DawidSkene(numTasks, numWorkers, numClasses int, responses []Response, maxIters int) (*DSResult, error) {
	if numTasks <= 0 || numWorkers <= 0 || numClasses < 2 {
		return nil, fmt.Errorf("crowd: bad Dawid-Skene dimensions (%d tasks, %d workers, %d classes)",
			numTasks, numWorkers, numClasses)
	}
	byTask := make([][]Response, numTasks)
	for _, r := range responses {
		if r.Task < 0 || r.Task >= numTasks || r.Worker < 0 || r.Worker >= numWorkers ||
			r.Value < 0 || r.Value >= numClasses {
			return nil, fmt.Errorf("crowd: response out of range: %+v", r)
		}
		byTask[r.Task] = append(byTask[r.Task], r)
	}

	// Initialize posteriors with per-task vote fractions.
	post := make([][]float64, numTasks)
	for t := range post {
		post[t] = make([]float64, numClasses)
		if len(byTask[t]) == 0 {
			for j := range post[t] {
				post[t][j] = 1.0 / float64(numClasses)
			}
			continue
		}
		for _, r := range byTask[t] {
			post[t][r.Value]++
		}
		normalize(post[t])
	}

	const smooth = 0.01 // Laplace smoothing for confusion estimates
	confusion := make([][][]float64, numWorkers)
	prior := make([]float64, numClasses)
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		// M-step: class priors and worker confusion matrices.
		for j := range prior {
			prior[j] = smooth
		}
		for t := range post {
			for j, p := range post[t] {
				prior[j] += p
			}
		}
		normalize(prior)
		for w := 0; w < numWorkers; w++ {
			c := make([][]float64, numClasses)
			for j := range c {
				c[j] = make([]float64, numClasses)
				for l := range c[j] {
					c[j][l] = smooth
				}
			}
			confusion[w] = c
		}
		for t, rs := range byTask {
			for _, r := range rs {
				for j := 0; j < numClasses; j++ {
					confusion[r.Worker][j][r.Value] += post[t][j]
				}
			}
		}
		for w := 0; w < numWorkers; w++ {
			for j := 0; j < numClasses; j++ {
				normalize(confusion[w][j])
			}
		}

		// E-step: recompute posteriors.
		maxDelta := 0.0
		for t, rs := range byTask {
			next := make([]float64, numClasses)
			for j := 0; j < numClasses; j++ {
				p := prior[j]
				for _, r := range rs {
					p *= confusion[r.Worker][j][r.Value]
				}
				next[j] = p
			}
			normalize(next)
			for j := range next {
				if d := abs(next[j] - post[t][j]); d > maxDelta {
					maxDelta = d
				}
			}
			post[t] = next
		}
		if maxDelta < 1e-6 {
			break
		}
	}

	res := &DSResult{
		Truth:          make([]int, numTasks),
		Posterior:      post,
		WorkerAccuracy: make([]float64, numWorkers),
		Iterations:     iters,
	}
	for t := range post {
		best := 0
		for j := range post[t] {
			if post[t][j] > post[t][best] {
				best = j
			}
		}
		res.Truth[t] = best
	}
	for w := 0; w < numWorkers; w++ {
		acc := 0.0
		for j := 0; j < numClasses; j++ {
			acc += prior[j] * confusion[w][j][j]
		}
		res.WorkerAccuracy[w] = acc
	}
	return res, nil
}

func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		for i := range v {
			v[i] = 1.0 / float64(len(v))
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
