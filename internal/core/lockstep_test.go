package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// multipleRepr renders every field of a MultipleResult by value (fmt
// sorts map keys), so equal strings mean byte-identical results.
func multipleRepr(r *MultipleResult) string {
	return fmt.Sprintf("%+v|%+v|%+v|%+v|%d|%d|%d",
		r.Results, r.SuperAudits, r.Labeled, r.RemainingIDs,
		r.SampleTasks, r.AuditTasks, r.Tasks)
}

// TestLockstepMatchesSequentialEngine: with an order-independent
// oracle the lockstep scheduler must reproduce the sequential
// Algorithm 2 byte-for-byte at every Parallelism value — the property
// the golden-file harness regression rides on.
func TestLockstepMatchesSequentialEngine(t *testing.T) {
	s := raceSchema()
	groups := pattern.GroupsForAttribute(s, 0)
	compositions := [][]int{
		{9800, 10, 8, 6},      // effective: uncovered super-group
		{9000, 300, 250, 200}, // covered minorities
		{9500, 30, 28, 26},    // adversarial: covered super-group of uncovered minorities
		{9900, 12, 8, 80},     // mixed
	}
	for ci, counts := range compositions {
		d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(int64(190+ci))))
		base, baseTasks := runMultiple(t, d, groups, 50, 1, 7)
		baseRepr := multipleRepr(base)
		for _, par := range []int{0, 1, 4, 16} {
			o := NewTruthOracle(d)
			res, err := MultipleCoverage(o, d.IDs(), 50, 50, groups,
				MultipleOptions{Rng: rand.New(rand.NewSource(7)), Parallelism: par, Lockstep: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := multipleRepr(res); got != baseRepr {
				t.Errorf("composition %d: lockstep P=%d diverged from sequential engine:\n%s\nvs\n%s",
					ci, par, got, baseRepr)
			}
			if tasks := o.Tasks(); tasks != baseTasks {
				t.Errorf("composition %d: lockstep P=%d oracle counts %v, want %v", ci, par, tasks, baseTasks)
			}
		}
	}
}

// TestLockstepIntersectionalMatchesSequential: the resolution phase's
// lockstep dispatch must agree with the sequential engine too.
func TestLockstepIntersectionalMatchesSequential(t *testing.T) {
	s := pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
	)
	d := dataset.MustFromCounts(s, []int{500, 10, 300, 8}, rand.New(rand.NewSource(200)))
	seq, err := IntersectionalCoverage(NewTruthOracle(d), d.IDs(), 30, 30, s,
		MultipleOptions{Rng: rand.New(rand.NewSource(8))})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 16} {
		lock, err := IntersectionalCoverage(NewTruthOracle(d), d.IDs(), 30, 30, s,
			MultipleOptions{Rng: rand.New(rand.NewSource(8)), Parallelism: par, Lockstep: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Verdicts, lock.Verdicts) || !reflect.DeepEqual(seq.MUPs, lock.MUPs) {
			t.Errorf("P=%d: intersectional verdicts diverged under lockstep", par)
		}
		if seq.Tasks != lock.Tasks {
			t.Errorf("P=%d: tasks %d vs %d", par, seq.Tasks, lock.Tasks)
		}
	}
}

// sequenceOracle answers from ground truth but flips every flipEvery-th
// answer, counting calls globally — a deliberately order-DEPENDENT
// oracle in the spirit of the crowd platform's advancing RNG. It
// implements BatchOracle natively (batches execute in request order
// under one lock), which is the contract lockstep determinism rests
// on.
type sequenceOracle struct {
	truth     *TruthOracle
	flipEvery int

	mu    sync.Mutex
	calls int
}

func (o *sequenceOracle) answer(ids []dataset.ObjectID, g pattern.Group, reverse bool) (bool, error) {
	o.calls++
	var ans bool
	var err error
	if reverse {
		ans, err = o.truth.ReverseSetQuery(ids, g)
	} else {
		ans, err = o.truth.SetQuery(ids, g)
	}
	if err != nil {
		return false, err
	}
	if o.flipEvery > 0 && o.calls%o.flipEvery == 0 {
		ans = !ans
	}
	return ans, nil
}

func (o *sequenceOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.answer(ids, g, false)
}

func (o *sequenceOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.answer(ids, g, true)
}

func (o *sequenceOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
	return o.truth.PointQuery(id)
}

func (o *sequenceOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	answers := make([]bool, len(reqs))
	for i, req := range reqs {
		var err error
		answers[i], err = o.answer(req.IDs, req.Group, req.Reverse)
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}

func (o *sequenceOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	labels := make([][]int, len(ids))
	for i, id := range ids {
		var err error
		labels[i], err = o.PointQuery(id)
		if err != nil {
			return nil, err
		}
	}
	return labels, nil
}

// TestLockstepOrderDependentOracleIsParallelismInvariant: the point of
// the scheduler — an oracle whose answers depend on global call order
// still produces bit-identical audits at every Parallelism value under
// lockstep, because rounds commit in canonical order regardless of
// goroutine interleaving.
func TestLockstepOrderDependentOracleIsParallelismInvariant(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{900, 30, 28, 26}, rand.New(rand.NewSource(201)))
	groups := pattern.GroupsForAttribute(s, 0)
	var base string
	for i, par := range []int{1, 2, 4, 16} {
		o := &sequenceOracle{truth: NewTruthOracle(d), flipEvery: 9}
		res, err := MultipleCoverage(o, d.IDs(), 20, 40, groups,
			MultipleOptions{Rng: rand.New(rand.NewSource(9)), Parallelism: par, Lockstep: true})
		if err != nil {
			t.Fatal(err)
		}
		got := multipleRepr(res)
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("P=%d: order-dependent audit diverged under lockstep:\n%s\nvs\n%s", par, got, base)
		}
	}
}

// TestLockstepPenaltyBranch: the covered-penalty re-audits must fire
// and settle correctly through the lockstep scheduler.
func TestLockstepPenaltyBranch(t *testing.T) {
	s := raceSchema()
	counts := []int{9500, 30, 28, 26} // sum 84 >= tau 50: super covered, members not
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(202)))
	groups := pattern.GroupsForAttribute(s, 0)
	res, err := MultipleCoverage(NewTruthOracle(d), d.IDs(), 50, 50, groups,
		MultipleOptions{Rng: rand.New(rand.NewSource(11)), Parallelism: 8, NoSampling: true, Lockstep: true})
	if err != nil {
		t.Fatal(err)
	}
	penalty := false
	for _, audit := range res.SuperAudits {
		if len(audit.GroupIndices) > 1 && audit.Covered {
			penalty = true
		}
	}
	if !penalty {
		t.Fatalf("expected a covered multi-member super-group; audits: %+v", res.SuperAudits)
	}
	for gi := 1; gi < 4; gi++ {
		r := res.Results[gi]
		if r.Covered {
			t.Errorf("minority %d reported covered", gi)
		}
		if r.CountLo > counts[gi] || r.CountHi < counts[gi] {
			t.Errorf("minority %d bounds [%d,%d] exclude %d", gi, r.CountLo, r.CountHi, counts[gi])
		}
	}
}

// TestLockstepRetryRecoversTransientFailures: task-side retries park
// the failed query again in a later round instead of aborting.
func TestLockstepRetryRecoversTransientFailures(t *testing.T) {
	s := raceSchema()
	counts := []int{400, 10, 60, 10}
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(203)))
	groups := pattern.GroupsForAttribute(s, 0)
	tau := 20
	for _, par := range []int{1, 8} {
		flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 7}
		res, err := MultipleCoverage(flaky, d.IDs(), 20, tau, groups, MultipleOptions{
			Rng:         rand.New(rand.NewSource(2)),
			Parallelism: par,
			Lockstep:    true,
			Retry:       RetryPolicy{MaxAttempts: 4},
		})
		if err != nil {
			t.Fatalf("P=%d: %v (retries should absorb transient failures)", par, err)
		}
		for gi, r := range res.Results {
			if want := counts[gi] >= tau; r.Covered != want {
				t.Errorf("P=%d group %d: covered=%v want %v", par, gi, r.Covered, want)
			}
		}
	}
}

// TestLockstepErrorIsDeterministic: a failing audit must surface the
// SAME error at every Parallelism value and on every run — the failed
// round delivers one error to every parked task, so no scheduling race
// can change which error wins.
func TestLockstepErrorIsDeterministic(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{400, 10, 10, 10}, rand.New(rand.NewSource(204)))
	groups := pattern.GroupsForAttribute(s, 0)
	var base string
	for rep := 0; rep < 5; rep++ {
		for _, par := range []int{1, 4, 16} {
			flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 23}
			_, err := MultipleCoverage(flaky, d.IDs(), 20, 20, groups,
				MultipleOptions{Rng: rand.New(rand.NewSource(1)), Parallelism: par, Lockstep: true})
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("P=%d: err = %v, want transient failure propagated", par, err)
			}
			if base == "" {
				base = err.Error()
			} else if err.Error() != base {
				t.Errorf("P=%d rep %d: error %q, want %q", par, rep, err, base)
			}
		}
	}
}

// TestRunBoundedSurfacesLowestIndexedError is the regression test for
// the scheduling-dependent error surfacing: when several tasks fail,
// the pool must keep running lower-indexed tasks after a failure and
// always return the lowest-indexed error — here task 2, even though
// task 5 fails first on every schedule.
func TestRunBoundedSurfacesLowestIndexedError(t *testing.T) {
	err2 := errors.New("task 2 failed")
	err5 := errors.New("task 5 failed")
	for rep := 0; rep < 25; rep++ {
		var ran sync.Map
		err := RunBounded(4, 10, func(i int) error {
			ran.Store(i, true)
			switch i {
			case 2:
				time.Sleep(2 * time.Millisecond) // fails late
				return err2
			case 5:
				return err5 // fails first
			}
			return nil
		})
		if !errors.Is(err, err2) {
			t.Fatalf("rep %d: err = %v, want %v (lowest-indexed failure)", rep, err, err2)
		}
		// Every task below the surfaced failure must have run — the
		// sequential engine would have paid for them too.
		for i := 0; i < 2; i++ {
			if _, ok := ran.Load(i); !ok {
				t.Errorf("rep %d: task %d below the failure never ran", rep, i)
			}
		}
	}
}

// TestRunBoundedStopsDispatchAboveFailure: tasks far above a failure
// must not start once the failure is known (doomed audits stop
// posting HITs), while success paths still run everything.
func TestRunBoundedStopsDispatchAboveFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran sync.Map
	_ = RunBounded(2, 1000, func(i int) error {
		ran.Store(i, true)
		if i == 0 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	count := 0
	ran.Range(func(_, _ any) bool { count++; return true })
	if count > 900 {
		t.Errorf("%d of 1000 tasks ran after an index-0 failure; dispatch should stop", count)
	}
}
