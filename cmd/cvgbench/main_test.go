package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"table1", "table2", "figure7a", "noise-sweep", "sweep"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "effective 1") {
		t.Errorf("output missing Table 3 settings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Figure 7e") {
		t.Errorf("output missing artifact name")
	}
	if !strings.Contains(out.String(), "timing:") {
		t.Errorf("output missing per-trial timing line")
	}
}

// TestTrialParallelismIdenticalTables: the same experiment renders the
// identical table at trial-parallelism 1 and 8 — the engine's core
// reproducibility promise, surfaced end to end.
func TestTrialParallelismIdenticalTables(t *testing.T) {
	tables := func(parallelism string) string {
		var out, errOut bytes.Buffer
		if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "2",
			"-trial-parallelism", parallelism}, &out, &errOut); code != 0 {
			t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
		}
		// Strip the wall-clock-bearing lines; compare the tables.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "===") || strings.Contains(line, "timing:") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	seq, par := tables("1"), tables("8")
	if seq != par {
		t.Errorf("tables diverged across trial-parallelism:\n%s\nvs\n%s", seq, par)
	}
}

func TestJSONOutputAppendsHistory(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	read := func() []benchRun {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var runs []benchRun
		if err := json.Unmarshal(data, &runs); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, data)
		}
		return runs
	}
	runs := read()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	if runs[0].Time == "" {
		t.Error("run missing timestamp")
	}
	if len(runs[0].Records) != 1 || runs[0].Records[0].ID != "figure7e" {
		t.Fatalf("records = %+v", runs[0].Records)
	}
	if runs[0].Records[0].NsPerOp <= 0 {
		t.Error("ns_per_op must be positive")
	}
	if runs[0].Records[0].HITTasks <= 0 {
		t.Error("figure7e should report its HIT total")
	}

	// A second invocation appends instead of overwriting.
	out.Reset()
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("second run exit = %d, stderr: %s", code, errOut.String())
	}
	if runs = read(); len(runs) != 2 {
		t.Fatalf("after second run: %d runs, want 2 (history must append)", len(runs))
	}
	if !strings.Contains(out.String(), "2 runs") {
		t.Errorf("output should report history length:\n%s", out.String())
	}
}

func TestJSONMigratesLegacyFile(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	legacy := `[{"id":"figure7e","paper":"Figure 7e","seed":7,"trials":1,"ns_per_op":123,"seconds":0.1,"hit_tasks":400}]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var runs []benchRun
	if err := json.Unmarshal(data, &runs); err != nil {
		t.Fatalf("invalid JSON after migration: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want legacy run + new run", len(runs))
	}
	if len(runs[0].Records) != 1 || runs[0].Records[0].NsPerOp != 123 {
		t.Errorf("legacy records lost: %+v", runs[0])
	}
}

func TestBaselineReportsDeltas(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	var out, errOut bytes.Buffer
	// First run: nothing to compare against.
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path, "-baseline"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no previous run") {
		t.Errorf("first -baseline should note the empty history:\n%s", out.String())
	}
	// Second run: deltas against the first.
	out.Reset()
	if code := run([]string{"-exp", "figure7e", "-seed", "7", "-trials", "1", "-json", path, "-baseline"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "baseline deltas vs") {
		t.Errorf("missing delta report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "figure7e") || !strings.Contains(out.String(), "%") {
		t.Errorf("delta table incomplete:\n%s", out.String())
	}
}

func TestBaselineRequiresJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-baseline"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-baseline requires -json") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestJSONOutputBadPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-trials", "1", "-json", "/no/such/dir/b.json"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestJSONCorruptHistory(t *testing.T) {
	path := t.TempDir() + "/BENCH_core.json"
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7e", "-trials", "1", "-json", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 (corrupt history must not be clobbered)", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestWorstRegression pins the comparison the CI gate rides on: only
// runs measured the same way (trial-parallelism, lockstep) and records
// with the same seed and trial count are comparable, and the worst
// ns/op increase wins.
func TestWorstRegression(t *testing.T) {
	history := []benchRun{{
		Seed: 42, Trials: 2, TrialParallelism: 1,
		Records: []benchRecord{
			{ID: "a", Seed: 42, Trials: 2, NsPerOp: 100},
			{ID: "b", Seed: 42, Trials: 2, NsPerOp: 200},
			{ID: "c", Seed: 7, Trials: 2, NsPerOp: 50}, // different seed: not comparable
		},
	}}
	current := benchRun{
		Seed: 42, Trials: 2, TrialParallelism: 1,
		Records: []benchRecord{
			{ID: "a", Seed: 42, Trials: 2, NsPerOp: 150}, // +50%
			{ID: "b", Seed: 42, Trials: 2, NsPerOp: 190}, // -5%
			{ID: "c", Seed: 42, Trials: 2, NsPerOp: 500}, // incomparable baseline
			{ID: "d", Seed: 42, Trials: 2, NsPerOp: 999}, // no baseline
		},
	}
	worst, id, ok := worstRegression(history, current)
	if !ok || id != "a" || worst < 49.9 || worst > 50.1 {
		t.Errorf("worstRegression = (%.1f, %q, %v), want (+50%%, \"a\", true)", worst, id, ok)
	}
	if _, _, ok := worstRegression(nil, current); ok {
		t.Error("empty history must not be comparable")
	}
	// A previous run on a wider trial pool (or the lockstep engine) is
	// not comparable: NsPerOp scales with the pool width.
	wider := current
	wider.TrialParallelism = 4
	if _, _, ok := worstRegression(history, wider); ok {
		t.Error("runs with different trial-parallelism must not be comparable")
	}
	locked := current
	locked.Lockstep = true
	if _, _, ok := worstRegression(history, locked); ok {
		t.Error("runs with different lockstep settings must not be comparable")
	}
}

// TestFailRegressionGate: the CLI must exit 3 when the latency-bound
// benchmark regresses beyond the budget vs the recorded history, and
// still append the failing run so the next comparison self-heals.
func TestFailRegressionGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	// Seed the history with an absurdly fast previous run (measured
	// under the same flags as below) so the real run is guaranteed to
	// "regress".
	history := []benchRun{{
		Seed: 42, Trials: 1, TrialParallelism: 1,
		Records: []benchRecord{{ID: "figure7a", Seed: 42, Trials: 1, NsPerOp: 1}},
	}}
	data, err := json.Marshal(history)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "figure7a", "-seed", "42", "-trials", "1",
		"-json", path, "-fail-regression", "20"}, &out, &errOut)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (regression gate); stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "regressed") {
		t.Errorf("stderr missing regression report: %s", errOut.String())
	}
	// The failing run is still appended.
	var runs []benchRun
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Errorf("history has %d runs, want 2 (failing run recorded)", len(runs))
	}

	// Within budget: a second identical run compares against the real
	// measurement and passes.
	out.Reset()
	errOut.Reset()
	code = run([]string{"-exp", "figure7a", "-seed", "42", "-trials", "1",
		"-json", path, "-fail-regression", "400"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 within budget; stderr: %s", code, errOut.String())
	}
}

// TestFailRegressionRequiresJSON: the gate needs a history file.
func TestFailRegressionRequiresJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "figure7a", "-fail-regression", "20"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestBudgetRegressionGate pins the budget-column gate: an experiment
// whose budget ladder previously exhausted cells but no longer does
// must trip the -fail-regression check even when ns/op improved.
func TestBudgetRegressionGate(t *testing.T) {
	prev := benchRun{Records: []benchRecord{
		{ID: "budget-frontier", Seed: 42, Trials: 2, NsPerOp: 100, BudgetCells: 16, BudgetExhausted: 13},
	}}
	current := benchRun{Records: []benchRecord{
		{ID: "budget-frontier", Seed: 42, Trials: 2, NsPerOp: 50, BudgetCells: 16, BudgetExhausted: 0},
	}}
	if id, ok := budgetRegression([]benchRun{prev}, current); !ok || id != "budget-frontier" {
		t.Errorf("ladder stopped binding: got (%q, %v), want (budget-frontier, true)", id, ok)
	}
	// Still binding (even fewer cells) passes, as do incomparable runs.
	current.Records[0].BudgetExhausted = 1
	if id, ok := budgetRegression([]benchRun{prev}, current); ok {
		t.Errorf("binding ladder flagged: %q", id)
	}
	current.Records[0].BudgetExhausted = 0
	current.Records[0].Trials = 5
	if _, ok := budgetRegression([]benchRun{prev}, current); ok {
		t.Error("runs with different trial counts are not comparable")
	}
	if _, ok := budgetRegression(nil, current); ok {
		t.Error("empty history cannot regress")
	}
}
