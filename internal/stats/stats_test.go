package stats

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %f", s.Std)
	}
	even := Summarize([]float64{4, 1, 3, 2})
	if even.Median != 2.5 {
		t.Errorf("even median = %f", even.Median)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Errorf("singleton = %+v", single)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty = %+v", empty)
	}
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Errorf("CI95 = %f, want %f", s.CI95(), want)
	}
	if Summarize([]float64{7}).CI95() != 0 {
		t.Error("singleton CI95 should be 0")
	}
	if Summarize(nil).CI95() != 0 {
		t.Error("empty CI95 should be 0")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize must not sort the caller's slice")
	}
}

func TestRepeat(t *testing.T) {
	s, err := Repeat(4, func(i int) (float64, error) { return float64(i), nil })
	if err != nil || s.N != 4 || s.Mean != 1.5 {
		t.Errorf("repeat = %+v, %v", s, err)
	}
	wantErr := errors.New("boom")
	_, err = Repeat(3, func(i int) (float64, error) {
		if i == 1 {
			return 0, wantErr
		}
		return 0, nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
}

func TestMeanInts(t *testing.T) {
	if MeanInts(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if MeanInts([]int{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "tasks", "ratio")
	tb.AddRow("group-coverage", 74, 1.0)
	tb.AddRow("base-coverage", 342, 4.62)
	if tb.NumRows() != 2 {
		t.Errorf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "group-coverage") || !strings.Contains(out, "342") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want header+rule+2 rows", len(lines))
	}
	// Float trimming: 1.0 -> "1", 4.62 stays.
	if !strings.Contains(out, "4.62") {
		t.Error("float cell lost precision")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", 1)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\nx,1\n" {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.0:   "1",
		4.62:  "4.62",
		0.5:   "0.5",
		-2.25: "-2.25",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
