package classifier

import (
	"math"
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 30, FP: 10, TN: 50, FN: 10}
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Accuracy = %f", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("Precision = %f", got)
	}
	if got := c.Recall(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("Recall = %f", got)
	}
	var zero Confusion
	if zero.Accuracy() != 0 || zero.Precision() != 0 || zero.Recall() != 0 {
		t.Error("zero confusion must not divide by zero")
	}
	if c.String() == "" {
		t.Error("empty string")
	}
}

func TestDeriveConfusionFERETOpenCV(t *testing.T) {
	// Paper Table 2: FERET (403 F / 591 M), DeepFace-opencv, accuracy
	// 79.57 %, precision 99.5 % => roughly 201 TP and 1 FP.
	c, err := DeriveConfusion(403, 591, 0.7957, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP < 195 || c.TP > 206 {
		t.Errorf("TP = %d, want ~201", c.TP)
	}
	if c.FP > 3 {
		t.Errorf("FP = %d, want ~1", c.FP)
	}
	if got := c.Accuracy(); math.Abs(got-0.7957) > 0.01 {
		t.Errorf("realized accuracy %f, want ~0.7957", got)
	}
	if got := c.Precision(); math.Abs(got-0.995) > 0.01 {
		t.Errorf("realized precision %f, want ~0.995", got)
	}
}

func TestDeriveConfusionUTK20(t *testing.T) {
	// UTKFace 20F/2980M, opencv: accuracy 96.53 %, precision 8 % =>
	// ~8 TP, ~92 FP.
	c, err := DeriveConfusion(20, 2980, 0.9653, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP < 6 || c.TP > 10 {
		t.Errorf("TP = %d, want ~8", c.TP)
	}
	if c.FP < 80 || c.FP > 105 {
		t.Errorf("FP = %d, want ~92", c.FP)
	}
}

func TestDeriveConfusionValidation(t *testing.T) {
	if _, err := DeriveConfusion(0, 0, 0.9, 0.9); err == nil {
		t.Error("empty composition: want error")
	}
	if _, err := DeriveConfusion(10, 10, 1.5, 0.9); err == nil {
		t.Error("accuracy > 1: want error")
	}
	if _, err := DeriveConfusion(10, 10, 0.9, 0.5); err == nil {
		t.Error("precision 0.5: want error")
	}
	if _, err := DeriveConfusion(-1, 10, 0.9, 0.9); err == nil {
		t.Error("negative pos: want error")
	}
}

func TestDeriveConfusionClamping(t *testing.T) {
	// Infeasible targets clamp into valid ranges rather than going
	// negative or exceeding the composition.
	c, err := DeriveConfusion(5, 100, 0.99, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP < 0 || c.TP > 5 || c.FP < 0 || c.FP > 100 {
		t.Errorf("clamped confusion out of range: %+v", c)
	}
	if c.Total() != 105 {
		t.Errorf("total = %d, want 105", c.Total())
	}
}

func TestPredictRealizesConfusion(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	d, _ := dataset.BinaryWithMinority(994, 403, rng)
	g := dataset.Female(d.Schema())
	s, err := NewSimulated("test", 403, 591, 0.7957, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := s.Predict(d, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(d, g, predicted)
	if err != nil {
		t.Fatal(err)
	}
	if got != s.Target {
		t.Errorf("realized confusion %+v != target %+v", got, s.Target)
	}
}

func TestPredictValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	d, _ := dataset.BinaryWithMinority(50, 10, rng)
	g := dataset.Female(d.Schema())
	s := &Simulated{Name: "impossible", Target: Confusion{TP: 20, FP: 0, TN: 40, FN: 0}}
	if _, err := s.Predict(d, g, rng); err == nil {
		t.Error("TP beyond membership: want error")
	}
	s = &Simulated{Name: "impossible", Target: Confusion{TP: 0, FP: 99, TN: 0, FN: 10}}
	if _, err := s.Predict(d, g, rng); err == nil {
		t.Error("FP beyond non-members: want error")
	}
	s = &Simulated{Name: "x", Target: Confusion{TP: 1}}
	if _, err := s.Predict(d, g, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestEvaluateUnknownPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	d, _ := dataset.BinaryWithMinority(10, 3, rng)
	g := dataset.Female(d.Schema())
	if _, err := Evaluate(d, g, []dataset.ObjectID{999}); err == nil {
		t.Error("unknown predicted id: want error")
	}
}

func TestTable2RowsAllFeasible(t *testing.T) {
	rows := Table2Rows()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	rng := rand.New(rand.NewSource(84))
	for _, row := range rows {
		s, err := row.Build()
		if err != nil {
			t.Fatalf("%s on %s: %v", row.Classifier, row.Dataset.Name, err)
		}
		d := row.Dataset.Generate(rng)
		g := dataset.Female(d.Schema())
		predicted, err := s.Predict(d, g, rng)
		if err != nil {
			t.Fatalf("%s on %s: %v", row.Classifier, row.Dataset.Name, err)
		}
		got, err := Evaluate(d, g, predicted)
		if err != nil {
			t.Fatal(err)
		}
		// Realized statistics must be close to the published ones.
		if math.Abs(got.Accuracy()-row.Accuracy) > 0.02 {
			t.Errorf("%s on %s: accuracy %.4f, want %.4f",
				row.Classifier, row.Dataset.Name, got.Accuracy(), row.Accuracy)
		}
		if math.Abs(got.Precision()-row.Precision) > 0.05 {
			t.Errorf("%s on %s: precision %.4f, want %.4f",
				row.Classifier, row.Dataset.Name, got.Precision(), row.Precision)
		}
	}
}
