package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// FuzzJournalReplay drives the recovery line between torn tails and
// corruption: starting from a valid journal, the fuzzer truncates the
// file and/or flips one byte anywhere. Load must then either fail
// loudly (ErrCorrupt) or return an exact prefix of the original
// records — never a torn or damaged record passed off as a committed
// round. Open, when it succeeds, must agree with Load and leave a file
// that appends and reloads cleanly.
func FuzzJournalReplay(f *testing.F) {
	f.Add(uint16(0), uint16(0), false)    // truncated to zero length: torn Create
	f.Add(uint16(3), uint16(0), false)    // truncated into the magic: torn header
	f.Add(uint16(8), uint16(0), false)    // truncated to the magic only: empty journal
	f.Add(uint16(20), uint16(0), false)   // truncated mid-frame
	f.Add(uint16(0), uint16(9), true)     // flip inside first frame header
	f.Add(uint16(0), uint16(40), true)    // flip inside a payload
	f.Add(uint16(1000), uint16(1), true)  // flip inside the magic
	f.Add(uint16(500), uint16(500), true) // flip near the tail
	f.Add(uint16(12), uint16(12), true)   // truncate and flip

	g := pattern.Group{Name: "g", Members: []pattern.Pattern{{1, 0}}}
	base := []core.RoundRecord{
		{Round: 0, Sets: []core.SetRequest{{IDs: []dataset.ObjectID{1, 2}, Group: g}}, SetAnswers: []bool{true}},
		{Round: 1, Points: []dataset.ObjectID{3, 4}, PointAnswers: [][]int{{0}, {1}}},
		{Round: 2, Sets: []core.SetRequest{{IDs: []dataset.ObjectID{5}, Group: g, Reverse: true}}, SetAnswers: []bool{false}},
		{Round: 3, Points: []dataset.ObjectID{6}, PointAnswers: [][]int{{1}}, ErrKind: "transient"},
	}

	f.Fuzz(func(t *testing.T, truncAt, flipAt uint16, flip bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, "audit.jnl")
		j, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range base {
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		mutated := append([]byte(nil), data...)
		if n := int(truncAt) % (len(mutated) + 1); n < len(mutated) {
			mutated = mutated[:n]
		}
		if flip && len(mutated) > 0 {
			mutated[int(flipAt)%len(mutated)] ^= 1 << (flipAt % 8)
		}
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}

		recs, err := Load(path)
		if err != nil {
			// A loud failure must be the classified corruption error —
			// never a decode panic or a stray I/O error.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load failed with unclassified error: %v", err)
			}
			return
		}
		if len(recs) > len(base) {
			t.Fatalf("recovered %d records from a %d-record journal", len(recs), len(base))
		}
		for i, rec := range recs {
			if !recordsEqual([]core.RoundRecord{rec}, base[i:i+1]) {
				t.Fatalf("recovered record %d diverged from the original:\n%+v\nvs\n%+v", i, rec, base[i])
			}
		}

		// Open must recover the same prefix and leave an appendable file.
		j2, replay, err := Open(path)
		if err != nil {
			t.Fatalf("Load recovered %d records but Open failed: %v", len(recs), err)
		}
		if len(replay) != len(recs) {
			t.Fatalf("Open recovered %d records, Load %d", len(replay), len(recs))
		}
		next := core.RoundRecord{Round: len(recs), Points: []dataset.ObjectID{99}, PointAnswers: [][]int{{7}}}
		if err := j2.Append(next); err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		final, err := Load(path)
		if err != nil {
			t.Fatalf("reload after recovery+append: %v", err)
		}
		if len(final) != len(recs)+1 {
			t.Fatalf("after recovery+append: %d records, want %d", len(final), len(recs)+1)
		}
	})
}
