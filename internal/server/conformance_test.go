package server_test

// Serve-mode conformance: a job submitted to the engine must finish
// with verdicts, task tallies and ledger spend byte-identical (as the
// serialized JobResult) to the same configuration run one-shot
// through the root Auditor — fresh, and after a mid-job kill and
// engine restart (crash injection at a round boundary, the process
// model internal/crowd's kill/resume matrix established) — at
// P ∈ {1, 4}, for the stateless truth oracle and the stateful
// simulated crowd, across all three audit modes.

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	imagecvg "imagecvg"
	"imagecvg/internal/server"
)

// conformanceCell is one audited configuration.
type conformanceCell struct {
	name   string
	mode   string
	oracle string
	// dataset
	n, minority int
	dsSeed      int64
	// audit
	tau, setSize int
	seed         int64
	maxHITs      int
	tp, fp       int
}

func cells() []conformanceCell {
	return []conformanceCell{
		{name: "truth-multiple", mode: server.ModeMultiple, oracle: "truth",
			n: 160, minority: 12, dsSeed: 3, tau: 10, setSize: 16, seed: 7},
		{name: "crowd-multiple-budgeted", mode: server.ModeMultiple, oracle: "crowd",
			n: 160, minority: 12, dsSeed: 3, tau: 10, setSize: 16, seed: 7, maxHITs: 120},
		{name: "crowd-intersectional", mode: server.ModeIntersectional, oracle: "crowd",
			n: 140, minority: 10, dsSeed: 5, tau: 8, setSize: 14, seed: 11},
		{name: "crowd-classifier", mode: server.ModeClassifier, oracle: "crowd",
			n: 160, minority: 14, dsSeed: 9, tau: 9, setSize: 16, seed: 13, tp: 10, fp: 5},
	}
}

// oneShot runs the cell through the root Auditor and serializes the
// outcome with the same converters the engine uses — so a byte
// comparison pins verdicts, task tallies and ledger spend at once.
func oneShot(t *testing.T, c conformanceCell, parallelism int) []byte {
	t.Helper()
	ds, err := imagecvg.GenerateBinary(c.n, c.minority, c.dsSeed)
	if err != nil {
		t.Fatal(err)
	}
	schema := ds.Schema()
	var (
		oracle imagecvg.Oracle
		crowd  *imagecvg.SimulatedCrowd
	)
	if c.oracle == "crowd" {
		crowd, err = imagecvg.NewSimulatedCrowd(ds, c.seed, imagecvg.CrowdOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oracle = crowd
	} else {
		oracle = imagecvg.NewTruthOracle(ds)
	}
	a := imagecvg.NewAuditor(oracle, c.tau, c.setSize).
		WithSeed(c.seed).WithParallelism(parallelism).WithLockstep()
	if c.maxHITs > 0 {
		// The engine always prices the governor with the platform's
		// cost model, so the reference budget must too for the Spend
		// column to match.
		b := imagecvg.Budget{MaxHITs: c.maxHITs}
		if crowd != nil {
			b.Cost = crowd.HITCost()
		}
		a.WithBudget(b)
	}
	var res *server.JobResult
	switch c.mode {
	case server.ModeIntersectional:
		ir, err := a.AuditIntersectional(ds.IDs(), schema)
		if err != nil {
			t.Fatal(err)
		}
		spent, _ := a.BudgetSpent()
		res = server.ResultFromIntersectional(ir, schema, spent)
	case server.ModeClassifier:
		g := imagecvg.GroupsForAttribute(schema, 0)[1]
		predicted := ds.PredictedSet(g, c.tp, c.fp)
		cr, err := a.AuditWithClassifier(ds.IDs(), predicted, g)
		if err != nil {
			t.Fatal(err)
		}
		spent, _ := a.BudgetSpent()
		out := server.ResultFromClassifier(cr, spent)
		res = out
	default:
		mr, err := a.AuditAttribute(ds.IDs(), schema, 0)
		if err != nil {
			t.Fatal(err)
		}
		spent, _ := a.BudgetSpent()
		res = server.ResultFromMultiple(mr, spent)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// jobConfig translates a cell into a serve-mode submission.
func jobConfig(c conformanceCell, parallelism int) server.JobConfig {
	return server.JobConfig{
		Mode:         c.mode,
		Dataset:      server.DatasetSpec{N: c.n, Minority: c.minority, Seed: c.dsSeed},
		Tau:          c.tau,
		SetSize:      c.setSize,
		Seed:         c.seed,
		Parallelism:  parallelism,
		Oracle:       c.oracle,
		MaxHITs:      c.maxHITs,
		ClassifierTP: c.tp,
		ClassifierFP: c.fp,
	}
}

// serveResult submits the cell to an engine and returns the finished
// job's serialized result.
func serveResult(t *testing.T, e *server.Engine, cfg server.JobConfig) []byte {
	t.Helper()
	id, err := e.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
	}
	data, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServeConformance: fresh serve-mode jobs vs the one-shot Auditor.
func TestServeConformance(t *testing.T) {
	for _, c := range cells() {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/P%d", c.name, p), func(t *testing.T) {
				want := oneShot(t, c, p)
				e, err := server.NewEngine(server.Options{DataDir: t.TempDir(), Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				got := serveResult(t, e, jobConfig(c, p))
				if string(got) != string(want) {
					t.Errorf("serve result diverged from one-shot Auditor:\n%s\nvs\n%s", got, want)
				}
			})
		}
	}
}

// TestServeKillRestartConformance: the same byte-identity after the
// job is killed mid-run (crash injection after 2 committed rounds —
// the engine parks it non-terminal, exactly like a process kill at a
// round boundary) and a fresh engine over the same data directory
// resumes it. The crowd cells are the sharp edge: resumption must
// reconstruct the stateful platform by re-warming it from the
// journal's answered prefixes.
func TestServeKillRestartConformance(t *testing.T) {
	for _, c := range cells() {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/P%d", c.name, p), func(t *testing.T) {
				want := oneShot(t, c, p)
				dir := t.TempDir()
				e1, err := server.NewEngine(server.Options{DataDir: dir, Workers: 1, CrashAfterRounds: 2})
				if err != nil {
					t.Fatal(err)
				}
				id, err := e1.Submit(jobConfig(c, p))
				if err != nil {
					t.Fatal(err)
				}
				// Wait for the injected kill to park the job.
				deadline := time.Now().Add(60 * time.Second)
				for {
					st, err := e1.Status(id)
					if err != nil {
						t.Fatal(err)
					}
					if st.State == server.StateQueued && st.Rounds >= 2 {
						break
					}
					if st.State.Terminal() {
						t.Fatalf("job reached %s before the injected kill", st.State)
					}
					if time.Now().After(deadline) {
						t.Fatalf("job never parked (state %s, %d rounds)", st.State, st.Rounds)
					}
					time.Sleep(2 * time.Millisecond)
				}
				if err := e1.Close(); err != nil {
					t.Fatal(err)
				}

				e2, err := server.NewEngine(server.Options{DataDir: dir, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				defer e2.Close()
				st, err := e2.Wait(id)
				if err != nil {
					t.Fatal(err)
				}
				if st.State != server.StateDone {
					t.Fatalf("resumed job: %s (%s)", st.State, st.Error)
				}
				if st.Replayed < 2 {
					t.Fatalf("resumed job replayed %d rounds, want >= 2", st.Replayed)
				}
				got, err := json.Marshal(st.Result)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("killed+resumed result diverged from one-shot Auditor:\n%s\nvs\n%s", got, want)
				}
			})
		}
	}
}
