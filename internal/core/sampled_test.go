package core

import (
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
)

func TestSampledCoverageValidation(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	g := female(d)
	rng := rand.New(rand.NewSource(1))
	if _, err := SampledCoverage(nil, d.IDs(), 1, 0.05, 10, g, rng); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, err := SampledCoverage(o, d.IDs(), 1, 0.05, 10, g, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := SampledCoverage(o, d.IDs(), 1, 0, 10, g, rng); err == nil {
		t.Error("delta=0: want error")
	}
	if _, err := SampledCoverage(o, d.IDs(), 1, 1.5, 10, g, rng); err == nil {
		t.Error("delta>1: want error")
	}
	if _, err := SampledCoverage(o, d.IDs(), -1, 0.05, 10, g, rng); err == nil {
		t.Error("tau<0: want error")
	}
}

func TestSampledCoverageDegenerate(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	g := female(d)
	rng := rand.New(rand.NewSource(2))
	res, err := SampledCoverage(o, d.IDs(), 0, 0.05, 10, g, rng)
	if err != nil || !res.Decided || !res.Covered || res.Tasks != 0 {
		t.Errorf("tau=0: %+v, %v", res, err)
	}
	res, err = SampledCoverage(o, nil, 1, 0.05, 10, g, rng)
	if err != nil || !res.Decided || res.Covered {
		t.Errorf("empty ids: %+v, %v", res, err)
	}
}

func TestSampledCoverageEasyCases(t *testing.T) {
	// Far from the threshold in either direction, a small sample
	// decides confidently and correctly.
	rng := rand.New(rand.NewSource(3))

	// Massively covered: half the dataset.
	d, _ := dataset.BinaryWithMinority(20_000, 10_000, rng)
	g := dataset.Female(d.Schema())
	res, err := SampledCoverage(NewTruthOracle(d), d.IDs(), 50, 0.01, 5_000, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Covered {
		t.Errorf("half-female dataset must decide covered: %+v", res)
	}
	if res.Tasks > 2_000 {
		t.Errorf("easy case should be cheap, used %d tasks", res.Tasks)
	}

	// Estimate must bracket the truth.
	if res.Low > 10_000 || res.High < 10_000 {
		t.Errorf("interval [%f, %f] excludes truth 10000", res.Low, res.High)
	}
}

func TestSampledCoverageCannotCertifyNearThreshold(t *testing.T) {
	// The estimator's weakness, and the paper's motivation for exact
	// algorithms: with |g| == tau the interval cannot clear the
	// threshold within any modest budget, so it gives up undecided —
	// while Group-Coverage decides exactly.
	rng := rand.New(rand.NewSource(4))
	d, _ := dataset.BinaryWithMinority(20_000, 50, rng)
	g := dataset.Female(d.Schema())
	budget := 3_000
	res, err := SampledCoverage(NewTruthOracle(d), d.IDs(), 50, 0.05, budget, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided {
		t.Errorf("near-threshold sampling should stay undecided at budget %d: %+v", budget, res)
	}
	gc, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 50, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	if !gc.Covered {
		t.Error("Group-Coverage must decide the same instance exactly")
	}
}

func TestSampledCoverageFullCensusIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, _ := dataset.BinaryWithMinority(300, 40, rng)
	g := dataset.Female(d.Schema())
	res, err := SampledCoverage(NewTruthOracle(d), d.IDs(), 50, 0.05, 300, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.Covered {
		t.Errorf("census must decide uncovered: %+v", res)
	}
	if res.Low != 40 || res.High != 40 {
		t.Errorf("census interval [%f,%f], want exactly 40", res.Low, res.High)
	}
}

func TestSampledCoverageDecisionsAreUsuallyCorrect(t *testing.T) {
	// Statistical property: across random instances, decided verdicts
	// are wrong at most rarely (delta-level), and undecided only near
	// the threshold.
	rng := rand.New(rand.NewSource(6))
	wrong, decided := 0, 0
	for trial := 0; trial < 50; trial++ {
		n := 2_000 + rng.Intn(5_000)
		f := rng.Intn(n / 2)
		tau := 1 + rng.Intn(100)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())
		res, err := SampledCoverage(NewTruthOracle(d), d.IDs(), tau, 0.05, n, g, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided {
			continue
		}
		decided++
		if res.Covered != (f >= tau) {
			wrong++
		}
	}
	if decided == 0 {
		t.Fatal("no decisions at all")
	}
	if wrong > decided/10 {
		t.Errorf("%d/%d decided verdicts wrong; far above the 5%% level", wrong, decided)
	}
}
