// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough surface for cvglint's
// determinism-contract analyzers. The container this repository builds
// in has no module proxy access, so the framework is reimplemented on
// the standard library (go/ast, go/types) rather than imported. The
// shapes mirror x/tools deliberately — an Analyzer written against
// this package ports to the real framework by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named, documented check. Run inspects a single
// type-checked package via the Pass and reports diagnostics through
// pass.Report; the return value is unused by this driver but kept in
// the signature for x/tools compatibility.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Pass hands one package's syntax and type information to an
// analyzer. Unlike x/tools there are no facts or required analyzers:
// every cvglint rule is a self-contained single-package check.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewTypesInfo returns a types.Info with every map populated, ready
// for types.Config.Check. Both the cvglint driver and the test
// harness type-check through this so analyzers can rely on full
// Uses/Defs/Selections information.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// Run executes one analyzer over one package and returns the
// diagnostics in report order.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return diags, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, nil
}
