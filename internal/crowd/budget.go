package crowd

import "imagecvg/internal/core"

// HITCost derives a core.CostFunc — the price a budget governor
// charges per committed query — from a platform configuration: the
// full cost the requester commits to by posting one HIT, i.e.
// assignments times the pricing model's per-assignment quote plus the
// platform fee. All pricing models quote deterministically
// (BiddingPricing prices at the expected clearing bid), so governed
// audits exhaust at the same point on every identically-seeded run;
// the platform ledger still records what each HIT actually cost.
func HITCost(cfg Config) core.CostFunc {
	pricing := cfg.Pricing
	if pricing == nil {
		pricing = FixedPricing{Price: cfg.PricePerHIT}
	}
	assignments := cfg.Assignments
	if assignments < 1 {
		assignments = 1
	}
	return func(kind core.HITKind, setSize int) float64 {
		var k QueryKind
		switch kind {
		case core.HITPoint:
			k = PointQuery
		case core.HITSet:
			k = SetQuery
		default:
			k = ReverseSetQuery
		}
		return float64(assignments) * pricing.AssignmentPrice(k, setSize) * (1 + cfg.FeeRate)
	}
}

// HITCost exposes the deployment's cost model so a core.Budget's
// MaxSpend can be denominated in the same dollars the ledger tracks.
func (p *Platform) HITCost() core.CostFunc { return HITCost(p.cfg) }
