package sim

import (
	"fmt"

	"imagecvg/internal/experiment"
	"imagecvg/internal/ml"
	"imagecvg/internal/stats"
)

// Figure6Result is one disparity-vs-added-samples series (Figure 6a
// or 6b).
type Figure6Result struct {
	Name   string
	Points []ml.DisparityPoint
}

// String renders the series as a table.
func (r *Figure6Result) String() string {
	t := stats.NewTable("added samples", "accuracy disparity", "loss disparity", "overall acc", "group acc")
	for _, p := range r.Points {
		t.AddRow(p.Added,
			fmt.Sprintf("%+.4f", p.AccDisparity),
			fmt.Sprintf("%+.4f", p.LossDisparity),
			fmt.Sprintf("%.4f", p.OverallAcc),
			fmt.Sprintf("%.4f", p.UncoveredGroupAcc))
	}
	return fmt.Sprintf("Figure 6 (%s): effect of resolving lack of coverage on the downstream model\n%s",
		r.Name, t.String())
}

// figure6Added is the paper's x-axis: 0 to 100 added uncovered-group
// samples per class, in steps of 20.
func figure6Added() []int { return []int{0, 20, 40, 60, 80, 100} }

// runFigure6 reproduces one Figure 6 series on the trial-runner: one
// cell per added-samples point, each trial training one model from
// the trial seed (the paper repeats each point on 10 regenerated
// datasets; o.Trials plays that role), averaged per point.
func runFigure6(name string, spec ml.DisparitySpec, o Options) (*Figure6Result, error) {
	added := figure6Added()
	cfgs := make([]experiment.Config, len(added))
	for pi, a := range added {
		cfgs[pi] = o.cell(fmt.Sprintf("%s/added=%d", spec.Name, a), int64(1000*pi))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (ml.DisparityPoint, error) {
		return spec.Trial(added[cell], t.Rng)
	})
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{Name: name}
	for pi, a := range added {
		r := results[pi]
		res.Points = append(res.Points, ml.DisparityPoint{
			Added:             a,
			AccDisparity:      r.Mean(func(p ml.DisparityPoint) float64 { return p.AccDisparity }),
			LossDisparity:     r.Mean(func(p ml.DisparityPoint) float64 { return p.LossDisparity }),
			OverallAcc:        r.Mean(func(p ml.DisparityPoint) float64 { return p.OverallAcc }),
			UncoveredGroupAcc: r.Mean(func(p ml.DisparityPoint) float64 { return p.UncoveredGroupAcc }),
		})
	}
	return res, nil
}

// RunFigure6a reproduces Figure 6a: a CNN-style drowsiness detector
// trained without spectacled subjects shows a large accuracy/loss
// disparity on them, which shrinks as spectacled samples are added
// back.
func RunFigure6a(o Options) (*Figure6Result, error) {
	return runFigure6("drowsiness detection (spectacled subjects uncovered)", ml.DrowsinessSpec(), o)
}

// RunFigure6b reproduces Figure 6b: a gender detector trained on
// Caucasian-only data shows a small but systematic disparity on Black
// subjects, again shrinking with added coverage.
func RunFigure6b(o Options) (*Figure6Result, error) {
	return runFigure6("gender detection (Black subjects uncovered)", ml.GenderSpec(), o)
}
