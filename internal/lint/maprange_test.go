package lint_test

import (
	"testing"

	"imagecvg/internal/lint"
	"imagecvg/internal/lint/analysistest"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapRange,
		"maprange/internal/core", // in scope: good, bad, suppressed shapes
		"maprange/other",         // out of scope: silent
	)
}
