package crowd

// The cross-parallelism conformance matrix for the lockstep scheduler:
// the FULL crowd-simulator pipeline — glyph-perceiving workers drawn
// from the platform RNG, redundant assignments, majority or
// reliability-weighted aggregation, a pricing model, the cost ledger,
// and Dawid-Skene truth inference over the raw assignment log — must
// be bit-for-bit identical at every engine Parallelism value when the
// audit runs under MultipleOptions.Lockstep. Instances are generated
// testing/quick-style from a seeded RNG; the whole suite also runs
// under -race in CI, so the determinism claim is checked on genuinely
// concurrent schedules.

import (
	"fmt"
	"math/rand"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// conformanceInstance is one randomized pipeline configuration.
type conformanceInstance struct {
	counts         []int
	schema         *pattern.Schema
	intersectional bool
	tau, setSize   int
	assignments    int
	poolSize       int
	weightedVote   bool
	pricing        int // 0 fixed, 1 size, 2 posted
	platformSeed   int64
	auditSeed      int64
}

// generateInstance draws one instance; every knob of the pipeline is
// randomized so the matrix covers the configuration space instead of
// one hand-picked deployment.
func generateInstance(rng *rand.Rand, intersectional bool) conformanceInstance {
	inst := conformanceInstance{
		intersectional: intersectional,
		tau:            5 + rng.Intn(12),
		setSize:        5 + rng.Intn(12),
		assignments:    1 + 2*rng.Intn(2), // 1 or 3
		poolSize:       8 + rng.Intn(12),
		weightedVote:   rng.Intn(2) == 0,
		pricing:        rng.Intn(3),
		platformSeed:   rng.Int63(),
		auditSeed:      rng.Int63(),
	}
	if intersectional {
		inst.schema = pattern.MustSchema(
			pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
			pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
		)
		inst.counts = []int{40 + rng.Intn(60), rng.Intn(12), 20 + rng.Intn(40), rng.Intn(12)}
	} else {
		inst.schema = pattern.MustSchema(
			pattern.Attribute{Name: "group", Values: []string{"g0", "g1", "g2"}},
		)
		inst.counts = []int{60 + rng.Intn(80), rng.Intn(15), rng.Intn(15)}
	}
	return inst
}

// platformFor builds a fresh identically-configured platform for one
// parallelism cell; the aggregator is rebuilt too, because
// WeightedVote carries per-worker reliability state across HITs (the
// very order-dependence lockstep must tame).
func platformFor(t *testing.T, inst conformanceInstance, d *dataset.Dataset, log *ResponseLog) *Platform {
	t.Helper()
	cfg := DefaultConfig(inst.platformSeed)
	cfg.Assignments = inst.assignments
	cfg.Profile = DefaultProfile(inst.poolSize)
	cfg.Responses = log
	if inst.weightedVote {
		cfg.Aggregator = NewWeightedVote(0.9)
	}
	switch inst.pricing {
	case 1:
		cfg.Pricing = SizePricing{Base: 0.05, PerImage: 0.002}
	case 2:
		cfg.Pricing = PostedPricing{Posted: 0.08, ReservationMean: 0.05}
	}
	p, err := NewPlatform(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runConformanceCell executes one (instance, parallelism) cell under
// lockstep and serializes everything observable: the audit result, the
// task counts, the ledger (spend), the HIT transcript length, and the
// Dawid-Skene estimate over the raw assignment log.
func runConformanceCell(t *testing.T, inst conformanceInstance, parallelism int) string {
	t.Helper()
	d := dataset.MustFromCounts(inst.schema, inst.counts, rand.New(rand.NewSource(inst.platformSeed+1)))
	log := &ResponseLog{}
	p := platformFor(t, inst, d, log)
	opts := core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(inst.auditSeed)),
		Parallelism: parallelism,
		Lockstep:    true,
	}
	var audit string
	if inst.intersectional {
		res, err := core.IntersectionalCoverage(p, d.IDs(), inst.setSize, inst.tau, inst.schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		audit = fmt.Sprintf("%+v|%+v|%d|%d", res.Verdicts, res.MUPs, res.ResolutionTasks, res.Tasks)
	} else {
		groups := pattern.GroupsForAttribute(inst.schema, 0)
		res, err := core.MultipleCoverage(p, d.IDs(), inst.setSize, inst.tau, groups, opts)
		if err != nil {
			t.Fatal(err)
		}
		audit = fmt.Sprintf("%+v|%+v|%d|%d|%d", res.Results, res.SuperAudits,
			res.SampleTasks, res.AuditTasks, res.Tasks)
	}

	// Spend: the full ledger snapshot, dollar amounts included.
	spend := p.Ledger().Snapshot().String()

	// Truth inference over the raw transcript: identical logs must
	// yield identical Dawid-Skene truths and worker accuracies.
	ds := "no-hits"
	if log.HITs() > 0 {
		res, err := DawidSkene(log.HITs(), p.PoolSize(), 2, log.Responses(), 25)
		if err != nil {
			t.Fatal(err)
		}
		ds = fmt.Sprintf("%v|%.9v|%d", res.Truth, res.WorkerAccuracy, res.Iterations)
	}
	return fmt.Sprintf("audit=%s\nspend=%s\nhits=%d\ndawid-skene=%s", audit, spend, log.HITs(), ds)
}

// TestLockstepCrossParallelismConformance is the conformance matrix:
// >= 50 randomized crowd-pipeline instances, each run at P in
// {1, 2, 4, 16} under lockstep, asserting byte-identical verdicts,
// task counts, spend, and truth-inference output.
func TestLockstepCrossParallelismConformance(t *testing.T) {
	instances := 50
	if testing.Short() {
		instances = 12
	}
	rng := rand.New(rand.NewSource(20240))
	for i := 0; i < instances; i++ {
		inst := generateInstance(rng, i%3 == 2)
		kind := "multiple"
		if inst.intersectional {
			kind = "intersectional"
		}
		t.Run(fmt.Sprintf("%02d-%s", i, kind), func(t *testing.T) {
			var base string
			for _, par := range []int{1, 2, 4, 16} {
				got := runConformanceCell(t, inst, par)
				if par == 1 {
					base = got
					continue
				}
				if got != base {
					t.Fatalf("parallelism %d diverged from parallelism 1:\n--- P=%d ---\n%s\n--- P=1 ---\n%s\n(instance %+v)",
						par, par, got, base, inst)
				}
			}
		})
	}
}

// TestFreeRunningCrowdAuditMayDiverge documents the boundary of the
// contract: without lockstep the free-running pool consumes the
// platform RNG in arrival order, so the conformance property belongs
// to Lockstep specifically (this test asserts only that lockstep runs
// reproduce themselves — it does NOT assert the free pool diverges,
// which would be a flaky claim about scheduling).
func TestLockstepCrowdAuditReproducesItself(t *testing.T) {
	rng := rand.New(rand.NewSource(20241))
	inst := generateInstance(rng, false)
	first := runConformanceCell(t, inst, 4)
	for rep := 0; rep < 3; rep++ {
		if got := runConformanceCell(t, inst, 4); got != first {
			t.Fatalf("rep %d: identical lockstep run diverged:\n%s\nvs\n%s", rep, got, first)
		}
	}
}
