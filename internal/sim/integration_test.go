package sim

// End-to-end integration tests: the full algorithm stack running
// against the noisy crowd platform (rendered glyphs, imperfect
// workers, majority vote) instead of a perfect oracle. These are the
// paths a real deployment exercises.

import (
	"math"
	"math/rand"
	"testing"

	"imagecvg/internal/classifier"
	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

func newPlatform(t *testing.T, d *dataset.Dataset, seed int64) *crowd.Platform {
	t.Helper()
	cfg := crowd.DefaultConfig(seed)
	p, err := crowd.NewPlatform(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMultipleCoverageThroughCrowd(t *testing.T) {
	s := pattern.MustSchema(pattern.Attribute{
		Name:   "race",
		Values: []string{"white", "black", "hispanic", "asian"},
	})
	rng := rand.New(rand.NewSource(201))
	counts := []int{900, 60, 12, 8}
	d := dataset.MustFromCounts(s, counts, rng)
	platform := newPlatform(t, d, 202)
	groups := pattern.GroupsForAttribute(s, 0)

	res, err := core.MultipleCoverage(platform, d.IDs(), 50, 50, groups,
		core.MultipleOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, false}
	for gi, r := range res.Results {
		if r.Covered != want[gi] {
			t.Errorf("group %d (%s): covered=%v, want %v", gi, r.Group, r.Covered, want[gi])
		}
	}
	if got := platform.Ledger().TotalHITs(); got != res.Tasks {
		t.Errorf("ledger HITs %d != reported tasks %d", got, res.Tasks)
	}
	if platform.Ledger().Snapshot().PointHITs < 100 {
		t.Errorf("sampling phase should issue c*tau=100 point HITs, ledger has %d",
			platform.Ledger().Snapshot().PointHITs)
	}
}

func TestIntersectionalCoverageThroughCrowd(t *testing.T) {
	s := pattern.MustSchema(
		pattern.Attribute{Name: "gender", Values: []string{"male", "female"}},
		pattern.Attribute{Name: "race", Values: []string{"white", "black"}},
	)
	rng := rand.New(rand.NewSource(203))
	counts := make([]int, s.NumSubgroups())
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 0, 0))] = 400
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 1, 0))] = 300
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 0, 1))] = 120
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 1, 1))] = 4
	d := dataset.MustFromCounts(s, counts, rng)
	platform := newPlatform(t, d, 204)

	res, err := core.IntersectionalCoverage(platform, d.IDs(), 50, 50, s,
		core.MultipleOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// female-black must surface as a MUP even through worker noise.
	found := false
	for _, m := range res.MUPs {
		if m.Pattern.Equal(pattern.MustPattern(s, 1, 1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("female-black missing from MUPs: %v", res.MUPs)
	}
	root := res.Verdicts[pattern.All(s).Key()]
	if root.Coverage != pattern.Covered {
		t.Errorf("root verdict = %v, want covered", root.Coverage)
	}
}

func TestClassifierCoverageThroughCrowd(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	preset := dataset.FERETUnique
	d := preset.Generate(rng)
	g := dataset.Female(d.Schema())
	sim, err := classifier.NewSimulated("DeepFace (opencv)", preset.Females, preset.Males, 0.7957, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := sim.Predict(d, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	platform := newPlatform(t, d, 206)
	res, err := core.ClassifierCoverage(platform, d.IDs(), predicted, 50, 50, g,
		core.ClassifierOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("403 females must be covered through the crowd")
	}
	if res.Strategy != core.StrategyPartition {
		t.Errorf("strategy = %s, want partition", res.Strategy)
	}
	snap := platform.Ledger().Snapshot()
	if snap.ReverseSetHITs == 0 {
		t.Error("partitioning must issue reverse set queries")
	}
	if snap.TotalHITs != res.Tasks {
		t.Errorf("ledger %d != tasks %d", snap.TotalHITs, res.Tasks)
	}
}

func TestCrowdWithSizePricing(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	d, err := dataset.BinaryWithMinority(500, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := crowd.DefaultConfig(208)
	cfg.Pricing = crowd.SizePricing{Base: 0.02, PerImage: 0.001}
	platform, err := crowd.NewPlatform(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	if _, err := core.GroupCoverage(platform, d.IDs(), 50, 50, g); err != nil {
		t.Fatal(err)
	}
	snap := platform.Ledger().Snapshot()
	// Per-image pricing: a 50-image set costs 0.07 per assignment, so
	// total cost must exceed what fixed 0.02 pricing would charge and
	// stay below flat 0.07 * assignments only if some sets were smaller.
	if snap.WorkerCost <= 0.02*float64(snap.Assignments) {
		t.Errorf("size pricing not applied: cost %.3f for %d assignments",
			snap.WorkerCost, snap.Assignments)
	}
	if snap.WorkerCost > 0.071*float64(snap.Assignments) {
		t.Errorf("size pricing overcharged: cost %.3f for %d assignments",
			snap.WorkerCost, snap.Assignments)
	}
	if math.IsNaN(snap.TotalCost) {
		t.Error("NaN cost")
	}
}

func TestBaseCoverageThroughCrowdCostsPointHITs(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	d, err := dataset.BinaryWithMinority(300, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	platform := newPlatform(t, d, 210)
	g := dataset.Female(d.Schema())
	res, err := core.BaseCoverage(platform, d.IDs(), 20, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("80 >= 20 must be covered")
	}
	snap := platform.Ledger().Snapshot()
	if snap.PointHITs != res.Tasks || snap.SetHITs != 0 {
		t.Errorf("base coverage must use point HITs only: %+v", snap)
	}
}
