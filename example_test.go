package imagecvg_test

import (
	"fmt"
	"log"

	"imagecvg"
)

// Audit a deterministic 16-image dataset — the paper's running
// example — for coverage of the minority group at tau = 3.
func Example() {
	bits := []int{0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 1}
	labels := make([][]int, len(bits))
	for i, b := range bits {
		labels[i] = []int{b}
	}
	ds, err := imagecvg.NewDataset(imagecvg.GenderSchema(), labels)
	if err != nil {
		log.Fatal(err)
	}
	auditor := imagecvg.NewAuditor(imagecvg.NewTruthOracle(ds), 3, 16)
	res, err := auditor.AuditGroup(ds.IDs(), imagecvg.FemaleGroup(ds.Schema()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	// Output: female: covered, count>=3, 7 tasks
}

// Discover maximal uncovered patterns over two sensitive attributes.
func ExampleAuditor_AuditIntersectional() {
	schema, err := imagecvg.NewSchema(
		imagecvg.Attribute{Name: "gender", Values: []string{"male", "female"}},
		imagecvg.Attribute{Name: "race", Values: []string{"white", "black"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	var labels [][]int
	add := func(g, r, n int) {
		for i := 0; i < n; i++ {
			labels = append(labels, []int{g, r})
		}
	}
	add(0, 0, 200) // male-white
	add(1, 0, 150) // female-white
	add(0, 1, 120) // male-black
	add(1, 1, 3)   // female-black: underrepresented
	ds, err := imagecvg.NewDataset(schema, labels)
	if err != nil {
		log.Fatal(err)
	}
	auditor := imagecvg.NewAuditor(imagecvg.NewTruthOracle(ds), 50, 50).WithSeed(3)
	res, err := auditor.AuditIntersectional(ds.IDs(), schema)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.MUPs {
		fmt.Printf("%s (count %d)\n", m.Pattern.Format(schema), m.Count)
	}
	// Output: gender=female AND race=black (count 3)
}

// Plan the acquisitions that repair every uncovered pattern.
func ExampleNewRepairPlan() {
	schema := imagecvg.GenderSchema()
	// 120 males, 35 females; tau = 50.
	plan, err := imagecvg.NewRepairPlan(schema, []int{120, 35}, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// acquire 15 objects:
	//     15 x gender=female
}

// The theoretical task bounds of section 3.2.
func ExampleUpperBoundHITs() {
	// Table 1's configuration: N=1522, n=50, tau=50.
	fmt.Printf("lower bound: %d tasks\n", imagecvg.LowerBoundTasks(1522, 50))
	fmt.Printf("upper bound: %.0f HITs\n", imagecvg.UpperBoundHITs(1522, 50, 50))
	// Output:
	// lower bound: 31 tasks
	// upper bound: 115 HITs
}
