package sim

import (
	"strings"
	"testing"
)

func TestRunAblationCoreOrdering(t *testing.T) {
	res, err := RunAblationCore(Options{Seed: 71, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
	}
	full := byName["full algorithm"]
	noSib := byName["no sibling inference"]
	single := byName["singleton counting"]
	both := byName["both removed"]

	// Sibling inference saves tasks in the uncovered regimes where
	// whole subtrees prune.
	if noSib.UncoveredTasks <= full.UncoveredTasks {
		t.Errorf("no-sibling uncovered %.1f should exceed full %.1f",
			noSib.UncoveredTasks, full.UncoveredTasks)
	}
	// Lower-bound counting is what allows early stopping in the
	// covered regime.
	if single.CoveredTasks <= full.CoveredTasks {
		t.Errorf("singleton-counting covered %.1f should exceed full %.1f",
			single.CoveredTasks, full.CoveredTasks)
	}
	// Removing both is never cheaper than the full algorithm anywhere.
	if both.UncoveredTasks < full.UncoveredTasks || both.ThresholdTasks < full.ThresholdTasks ||
		both.CoveredTasks < full.CoveredTasks {
		t.Errorf("both-removed beat the full algorithm: %+v vs %+v", both, full)
	}
	if !strings.Contains(res.String(), "full algorithm") {
		t.Error("rendering missing variants")
	}
}

func TestRunAblationSampling(t *testing.T) {
	res, err := RunAblationSampling(Options{Seed: 73, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 budgets", len(res.Rows))
	}
	byLabel := map[string]float64{}
	for _, r := range res.Rows {
		byLabel[r.Label] = r.Tasks
	}
	// c=0 merges the majority into the super-group (no sample to tell
	// it apart), triggering the covered-super-group penalty: it must
	// cost more than the paper's c=2.
	if byLabel["none (c=0)"] <= byLabel["c=2 (paper)"] {
		t.Errorf("c=0 (%.1f) should cost more than c=2 (%.1f)",
			byLabel["none (c=0)"], byLabel["c=2 (paper)"])
	}
	// Oversampling pays for labels that save nothing: c=8 costs more
	// than c=2 in this setting.
	if byLabel["c=8"] <= byLabel["c=2 (paper)"] {
		t.Errorf("c=8 (%.1f) should cost more than c=2 (%.1f)",
			byLabel["c=8"], byLabel["c=2 (paper)"])
	}
	if !strings.Contains(res.String(), "c=2") {
		t.Error("rendering missing budgets")
	}
}

func TestRunNoiseSweep(t *testing.T) {
	res, err := RunNoiseSweep(Options{Seed: 79, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 noise levels", len(res.Rows))
	}
	// The paper's regime (small slip, 3-way majority) must be fully
	// correct.
	for _, r := range res.Rows[:3] {
		if r.CorrectVerdicts != 1 {
			t.Errorf("slip %.0f%%: correct fraction %.2f, want 1.0",
				100*r.SlipRate, r.CorrectVerdicts)
		}
	}
	if !strings.Contains(res.String(), "majority vote") {
		t.Error("rendering missing title")
	}
}
