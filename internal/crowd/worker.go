// Package crowd simulates a microtask crowdsourcing platform in the
// style of Amazon Mechanical Turk: a pool of imperfect workers, HITs
// (point queries, set queries, reverse set queries) assigned
// redundantly, truth inference by majority or weighted vote (plus a
// batch Dawid–Skene estimator), qualification tests, rating-based
// worker filters, and a fixed-price cost ledger with platform fees.
//
// Workers never see ground truth: they perceive the rendered glyph of
// each image through their personal perceptual noise and may still
// flip their final answer with a per-worker slip probability. The
// combination reproduces the regime the paper measured on MTurk
// (about 1.4 % of raw answers wrong, virtually never surviving a
// 3-way majority vote).
package crowd

import (
	"fmt"
	"math/rand"

	"imagecvg/internal/imagegen"
)

// Worker is one simulated crowd worker.
type Worker struct {
	ID int
	// PerceptNoise is the standard deviation of the pixel noise the
	// worker sees when looking at a glyph (0..255 scale).
	PerceptNoise float64
	// SlipRate is the probability of flipping the final answer of a
	// yes/no HIT (or corrupting one attribute of a point label),
	// modeling inattention independent of perception.
	SlipRate float64
	// ApprovalPercent and ApprovedHITs are the worker's platform
	// reputation, used by the rating quality-control filter
	// (PercentAssignmentsApproved, NumberHITsApproved on MTurk).
	ApprovalPercent float64
	ApprovedHITs    int

	rng *rand.Rand
	// strategy, when non-nil, overrides the worker's final answers
	// AFTER the honest perceive-and-slip path has consumed its RNG
	// draws; see WorkerStrategy for the invariant this preserves.
	strategy WorkerStrategy
}

// Adversarial reports whether the worker answers through an
// adversarial strategy, and its name ("" when honest).
func (w *Worker) Adversarial() (string, bool) {
	if w.strategy == nil {
		return "", false
	}
	return w.strategy.Name(), true
}

// perceiveMatch reports whether the worker, looking at the glyph,
// believes the object matches the predicate over decoded labels.
func (w *Worker) perceiveLabels(r *imagegen.Renderer, g imagegen.Glyph) []int {
	return r.Perceive(g, w.PerceptNoise, w.rng)
}

// perceiveLabelsInto is perceiveLabels writing into dst — identical
// RNG draws, no allocation once dst has capacity.
func (w *Worker) perceiveLabelsInto(r *imagegen.Renderer, g imagegen.Glyph, dst []int) []int {
	return r.PerceiveInto(g, w.PerceptNoise, w.rng, dst)
}

// slip reports whether the worker slips on this answer.
func (w *Worker) slip() bool { return w.rng.Float64() < w.SlipRate }

// PoolProfile configures worker pool generation.
type PoolProfile struct {
	// Size is the number of workers in the pool.
	Size int
	// SlipMin and SlipMax bound the uniform slip-rate distribution.
	SlipMin, SlipMax float64
	// PerceptNoise is every worker's perceptual noise level.
	PerceptNoise float64
	// SpammerFraction of workers answer nearly at random
	// (slip rate 0.45); used for failure-injection experiments.
	SpammerFraction float64
}

// DefaultProfile reproduces the paper's observed MTurk regime: good
// workers with ~0.5–2.5 % slip, mild perceptual noise, no spammers.
func DefaultProfile(size int) PoolProfile {
	return PoolProfile{Size: size, SlipMin: 0.005, SlipMax: 0.025, PerceptNoise: 15}
}

// NewPool generates a worker pool from the profile. Each worker gets
// an independent deterministic RNG derived from rng.
func NewPool(p PoolProfile, rng *rand.Rand) ([]*Worker, error) {
	if p.Size <= 0 {
		return nil, fmt.Errorf("crowd: pool size %d", p.Size)
	}
	if p.SlipMin < 0 || p.SlipMax > 1 || p.SlipMin > p.SlipMax {
		return nil, fmt.Errorf("crowd: slip range [%v,%v]", p.SlipMin, p.SlipMax)
	}
	if p.SpammerFraction < 0 || p.SpammerFraction > 1 {
		return nil, fmt.Errorf("crowd: spammer fraction %v", p.SpammerFraction)
	}
	pool := make([]*Worker, p.Size)
	for i := range pool {
		w := &Worker{
			ID:              i,
			PerceptNoise:    p.PerceptNoise,
			SlipRate:        p.SlipMin + rng.Float64()*(p.SlipMax-p.SlipMin),
			ApprovalPercent: 90 + rng.Float64()*10,
			ApprovedHITs:    rng.Intn(5000),
			rng:             rand.New(rand.NewSource(rng.Int63())),
		}
		if rng.Float64() < p.SpammerFraction {
			w.SlipRate = 0.45
			w.ApprovalPercent = 60 + rng.Float64()*35
			w.ApprovedHITs = rng.Intn(200)
		}
		pool[i] = w
	}
	return pool, nil
}
