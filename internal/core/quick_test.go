package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// The testing/quick properties below are the library's load-bearing
// invariants expressed as single predicates over a random seed.

func TestQuickGroupCoverageVerdict(t *testing.T) {
	f := func(seed int64, nRaw, fRaw, tauRaw, setRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%1500
		fem := int(fRaw) % (n + 1)
		tau := 1 + int(tauRaw)%70
		setSize := 1 + int(setRaw)%90
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		res, err := GroupCoverage(NewTruthOracle(d), d.IDs(), setSize, tau, g)
		if err != nil {
			return false
		}
		if res.Covered != (fem >= tau) {
			return false
		}
		if !res.Covered && (!res.Exact || res.Count != fem) {
			return false
		}
		return res.Tasks <= UpperBoundTasksLog2(n, setSize, tau)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBaseCoverageAgreesWithGroupCoverage(t *testing.T) {
	f := func(seed int64, nRaw, fRaw, tauRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%800
		fem := int(fRaw) % (n + 1)
		tau := 1 + int(tauRaw)%50
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		gc, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 32, tau, g)
		if err != nil {
			return false
		}
		base, err := BaseCoverage(NewTruthOracle(d), d.IDs(), tau, g)
		if err != nil {
			return false
		}
		return gc.Covered == base.Covered
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundsAgreesWithSequential(t *testing.T) {
	f := func(seed int64, nRaw, fRaw, tauRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%800
		fem := int(fRaw) % (n + 1)
		tau := 1 + int(tauRaw)%50
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		seq, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 32, tau, g)
		if err != nil {
			return false
		}
		par, err := GroupCoverageRounds(NewTruthOracle(d), d.IDs(), 32, tau, g, 4)
		if err != nil {
			return false
		}
		return seq.Covered == par.Covered
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelMultipleEquivalence is the concurrent engine's
// contract: across randomized schemas, compositions, thresholds and
// set sizes, MultipleCoverage with Parallelism 8 produces identical
// verdicts, identical exact counts, identical SuperAudits, and
// identical oracle TaskCounts to the sequential engine for the same
// seed. 120 randomized instances keep the suite above the 100-instance
// bar without slowing it down.
func TestQuickParallelMultipleEquivalence(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		sigma := 2 + rng.Intn(4)
		values := make([]string, sigma)
		for i := range values {
			values[i] = string(rune('a' + i))
		}
		s := pattern.MustSchema(pattern.Attribute{Name: "g", Values: values})
		counts := make([]int, sigma)
		counts[0] = 100 + rng.Intn(900)
		for i := 1; i < sigma; i++ {
			counts[i] = rng.Intn(120)
		}
		tau := 1 + rng.Intn(60)
		setSize := 1 + rng.Intn(60)
		d := dataset.MustFromCounts(s, counts, rng)
		groups := pattern.GroupsForAttribute(s, 0)
		seed := rng.Int63()

		seqOracle := NewTruthOracle(d)
		seq, err := MultipleCoverage(seqOracle, d.IDs(), setSize, tau, groups,
			MultipleOptions{Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		parOracle := NewTruthOracle(d)
		par, err := MultipleCoverage(parOracle, d.IDs(), setSize, tau, groups,
			MultipleOptions{Rng: rand.New(rand.NewSource(seed)), Parallelism: 8})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d (sigma=%d tau=%d n=%d counts=%v): engines diverged\nseq: %+v\npar: %+v",
				trial, sigma, tau, setSize, counts, seq, par)
		}
		if seqOracle.Tasks() != parOracle.Tasks() {
			t.Fatalf("trial %d: oracle counts %v vs %v", trial, seqOracle.Tasks(), parOracle.Tasks())
		}
	}
}

func TestQuickPartitionCleanCount(t *testing.T) {
	// Full partition drains always report the exact member count.
	f := func(seed int64, nRaw, fRaw, setRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%400
		fem := int(fRaw) % (n + 1)
		setSize := 1 + int(setRaw)%60
		d, err := dataset.BinaryWithMinority(n, fem, rng)
		if err != nil {
			return false
		}
		g := dataset.Female(d.Schema())
		confirmed, drained, _, err := partitionClean(NewTruthOracle(d), d.IDs(), setSize, n+1, g)
		return err == nil && drained && confirmed == fem
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
