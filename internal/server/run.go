package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/journal"
	"imagecvg/internal/pattern"
)

// runAudit executes (or resumes) one job's audit. The oracle stack
// mirrors the root Auditor's: platform/truth → budget governor →
// journaling middleware, always under the Lockstep scheduler — which
// is what makes a job's verdicts, task tallies and spend
// byte-identical to the one-shot run of the same configuration, at
// every parallelism level and across a kill/restart.
func (e *Engine) runAudit(ctx context.Context, j *job) (res *JobResult, err error) {
	cfg := j.cfg
	ds, err := buildDataset(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	schema := ds.Schema()
	if cfg.Attr >= schema.NumAttrs() {
		return nil, fmt.Errorf("server: attr %d outside schema (%d attributes)", cfg.Attr, schema.NumAttrs())
	}

	jnlPath := filepath.Join(e.opts.DataDir, j.id+".jnl")
	var (
		jnl    *journal.Journal
		replay []core.RoundRecord
	)
	if j.resume {
		jnl, replay, err = journal.Open(jnlPath)
	} else {
		jnl, err = journal.Create(jnlPath)
	}
	if err != nil {
		return nil, err
	}
	defer func() {
		// A lost final fsynced frame is silent data loss: surface the
		// close error when the audit itself succeeded.
		if cerr := jnl.Close(); cerr != nil && err == nil {
			res, err = nil, cerr
		}
	}()

	var (
		oracle core.Oracle
		costFn core.CostFunc
	)
	switch cfg.Oracle {
	case "crowd":
		p, perr := newPlatform(ds, cfg)
		if perr != nil {
			return nil, perr
		}
		// The platform is stateful (worker draws advance an RNG per
		// HIT) but a pure function of (seed, request sequence), so
		// re-posting the journaled answered prefixes reconstructs its
		// state — RNG stream and cost ledger — exactly. Replay then
		// answers those rounds from the journal without re-charging,
		// and live rounds continue byte-identical to an uninterrupted
		// run.
		if werr := warmPlatform(p, replay); werr != nil {
			return nil, werr
		}
		oracle, costFn = p, p.HITCost()
	default: // "truth"
		var o core.Oracle = core.NewTruthOracle(ds)
		if cfg.HITDelayMicros > 0 {
			o = core.DelayOracle{Inner: o, Delay: time.Duration(cfg.HITDelayMicros) * time.Microsecond}
		}
		oracle = o
	}

	var gov *core.BudgetedOracle
	if b := j.caps.budget(costFn); b.Active() {
		gov = core.NewBudgetedOracle(oracle, b)
		oracle = gov
	}
	notify := &notifyJournal{eng: e, job: j, inner: jnl}
	jo := core.NewJournalingOracle(oracle, notify, replay, gov).SetContext(ctx)
	j.mu.Lock()
	j.rounds, j.replayed = len(replay), 0
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		j.rounds, j.replayed = jo.Rounds(), jo.Replayed()
		if gov != nil {
			j.spent = gov.Spent()
		}
		j.mu.Unlock()
	}()

	opts := core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(cfg.Seed)),
		Parallelism: cfg.Parallelism,
		Lockstep:    true,
		Ctx:         ctx,
	}
	spent := func() core.BudgetSpent {
		if gov == nil {
			return core.BudgetSpent{}
		}
		return gov.Spent()
	}
	switch cfg.Mode {
	case ModeIntersectional:
		ir, aerr := core.IntersectionalCoverage(jo, ds.IDs(), cfg.SetSize, cfg.Tau, schema, opts)
		if aerr != nil {
			return nil, aerr
		}
		return ResultFromIntersectional(ir, schema, spent()), nil
	case ModeClassifier:
		groups := pattern.GroupsForAttribute(schema, cfg.Attr)
		if cfg.Value >= len(groups) {
			return nil, fmt.Errorf("server: value %d outside attribute %d (%d values)", cfg.Value, cfg.Attr, len(groups))
		}
		g := groups[cfg.Value]
		predicted := ds.PredictedSet(g, cfg.ClassifierTP, cfg.ClassifierFP)
		cr, aerr := core.ClassifierCoverage(jo, ds.IDs(), predicted, cfg.SetSize, cfg.Tau, g,
			core.ClassifierOptions{
				Rng:         rand.New(rand.NewSource(cfg.Seed)),
				Parallelism: cfg.Parallelism,
				Lockstep:    true,
				Ctx:         ctx,
			})
		if aerr != nil {
			return nil, aerr
		}
		return ResultFromClassifier(cr, spent()), nil
	default: // ModeMultiple
		mr, aerr := core.MultipleCoverage(jo, ds.IDs(), cfg.SetSize, cfg.Tau,
			pattern.GroupsForAttribute(schema, cfg.Attr), opts)
		if aerr != nil {
			return nil, aerr
		}
		return ResultFromMultiple(mr, spent()), nil
	}
}

// buildDataset realizes a job's dataset spec; generated datasets use
// the same construction as the root GenerateBinary.
func buildDataset(spec DatasetSpec) (*dataset.Dataset, error) {
	if spec.Path != "" {
		return dataset.LoadJSON(spec.Path)
	}
	return dataset.BinaryWithMinority(spec.N, spec.Minority, rand.New(rand.NewSource(spec.Seed)))
}

// newPlatform builds the simulated crowd for a job, mirroring the
// root NewSimulatedCrowd so crowd-backed serve jobs and one-shot
// audits share the exact deployment.
func newPlatform(ds *dataset.Dataset, cfg JobConfig) (*crowd.Platform, error) {
	c := crowd.DefaultConfig(cfg.Seed)
	if cfg.Assignments > 0 {
		c.Assignments = cfg.Assignments
	}
	if cfg.PoolSize > 0 {
		c.Profile = crowd.DefaultProfile(cfg.PoolSize)
	}
	return crowd.NewPlatform(ds, c)
}

// warmPlatform re-posts each journaled round's answered prefix to a
// fresh identically-seeded platform and verifies the answers match
// the journal — the resume path for the order-dependent crowd oracle.
// A mismatch means the job's configuration no longer reproduces the
// journal (changed dataset, seed or deployment) and fails loudly
// rather than fabricating a diverged resume.
func warmPlatform(p *crowd.Platform, replay []core.RoundRecord) error {
	for _, rec := range replay {
		if rec.IsPointRound() {
			n := len(rec.PointAnswers)
			if n == 0 {
				continue
			}
			got, err := p.PointQueryBatch(rec.Points[:n])
			if err != nil {
				return fmt.Errorf("server: warm round %d: %w", rec.Round, err)
			}
			for i := range got {
				if !equalInts(got[i], rec.PointAnswers[i]) {
					return fmt.Errorf("%w: warmed platform diverged from journal at round %d point %d",
						core.ErrJournalMismatch, rec.Round, i)
				}
			}
			continue
		}
		n := len(rec.SetAnswers)
		if n == 0 {
			continue
		}
		got, err := p.SetQueryBatch(rec.Sets[:n])
		if err != nil {
			return fmt.Errorf("server: warm round %d: %w", rec.Round, err)
		}
		for i := range got {
			if got[i] != rec.SetAnswers[i] {
				return fmt.Errorf("%w: warmed platform diverged from journal at round %d set %d",
					core.ErrJournalMismatch, rec.Round, i)
			}
		}
	}
	return nil
}

// equalInts compares two label vectors.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// notifyJournal wraps the file journal as the engine's RoundJournal:
// after each durable append it advances the job's live status and
// fans a round event out to stream subscribers. Append runs under the
// journaling middleware's round lock, so the live counter needs no
// extra synchronization.
type notifyJournal struct {
	eng   *Engine
	job   *job
	inner *journal.Journal
	live  int
}

// Append implements core.RoundJournal.
func (n *notifyJournal) Append(rec core.RoundRecord) error {
	if err := n.inner.Append(rec); err != nil {
		return err
	}
	n.live++
	j := n.job
	j.mu.Lock()
	j.rounds = rec.Round + 1
	j.spent = rec.Spent
	cancel := j.cancel
	j.mu.Unlock()
	spent := rec.Spent
	n.eng.publish(j, Event{Type: "round", Round: rec.Round, Spent: &spent})
	if k := n.eng.opts.CrashAfterRounds; k > 0 && n.live >= k && cancel != nil {
		// Fault injection: the next round fails its context check
		// before reaching the oracle — exactly a kill at a round
		// boundary.
		cancel()
	}
	return nil
}

// marshalMeta / unmarshalStrict are the meta file codec.
func marshalMeta(meta jobMeta) ([]byte, error) {
	return json.MarshalIndent(meta, "", "  ")
}

// unmarshalStrict decodes JSON rejecting unknown fields and trailing
// data, so a misspelled or foreign job meta file fails recovery
// loudly instead of being silently half-read.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
