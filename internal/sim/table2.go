package sim

import (
	"fmt"
	"math/rand"

	"imagecvg/internal/classifier"
	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/stats"
)

// Table2ResultRow is one (dataset, classifier) row of the reproduced
// Table 2.
type Table2ResultRow struct {
	Dataset    string
	Classifier string
	// Accuracy and Precision are the realized statistics of the
	// simulated classifier (they match the published ones by
	// construction, up to rounding).
	Accuracy, Precision float64
	// Strategy chosen by Classifier-Coverage ("partition"/"label").
	Strategy string
	// ClassifierCoverageHITs and GroupCoverageHITs are mean task
	// counts over the trials.
	ClassifierCoverageHITs float64
	GroupCoverageHITs      float64
	// Covered is the (ground-truth-correct) verdict.
	Covered bool
}

// Table2Result is the reproduced Table 2.
type Table2Result struct {
	Rows []Table2ResultRow
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	t := stats.NewTable("dataset", "classifier", "accuracy", "precision(F)",
		"strategy", "Classifier-Coverage #HITs", "Group-Coverage #HITs", "covered")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Classifier,
			fmt.Sprintf("%.2f", 100*row.Accuracy), fmt.Sprintf("%.2f", 100*row.Precision),
			row.Strategy, row.ClassifierCoverageHITs, row.GroupCoverageHITs, row.Covered)
	}
	return "Table 2: female coverage detection on gender-classified datasets (tau=50, n=50)\n" + t.String()
}

// RunTable2 reproduces Table 2: for each of the paper's nine
// (dataset, classifier) configurations, it builds a simulated
// classifier realizing the published accuracy/precision, feeds its
// predicted-female set to Classifier-Coverage, and compares the task
// count against standalone Group-Coverage. Averaged over trials.
func RunTable2(seed int64, trials int) (*Table2Result, error) {
	if trials <= 0 {
		trials = 1
	}
	const tau, setSize = 50, 50
	res := &Table2Result{}
	for ri, row := range classifier.Table2Rows() {
		sim, err := row.Build()
		if err != nil {
			return nil, err
		}
		var ccHITs, gcHITs []float64
		var strategy core.Strategy
		var realized classifier.Confusion
		covered := false
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(100*ri+trial)))
			d := row.Dataset.Generate(rng)
			g := dataset.Female(d.Schema())
			predicted, err := sim.Predict(d, g, rng)
			if err != nil {
				return nil, err
			}
			realized, err = classifier.Evaluate(d, g, predicted)
			if err != nil {
				return nil, err
			}

			o := core.NewTruthOracle(d)
			cc, err := core.ClassifierCoverage(o, d.IDs(), predicted, setSize, tau, g,
				core.ClassifierOptions{Rng: rng})
			if err != nil {
				return nil, err
			}
			ccHITs = append(ccHITs, float64(cc.Tasks))
			strategy = cc.Strategy
			covered = cc.Covered

			o2 := core.NewTruthOracle(d)
			gc, err := core.GroupCoverage(o2, d.IDs(), setSize, tau, g)
			if err != nil {
				return nil, err
			}
			gcHITs = append(gcHITs, float64(gc.Tasks))
		}
		res.Rows = append(res.Rows, Table2ResultRow{
			Dataset:                row.Dataset.Name,
			Classifier:             row.Classifier,
			Accuracy:               realized.Accuracy(),
			Precision:              realized.Precision(),
			Strategy:               string(strategy),
			ClassifierCoverageHITs: stats.Summarize(ccHITs).Mean,
			GroupCoverageHITs:      stats.Summarize(gcHITs).Mean,
			Covered:                covered,
		})
	}
	return res, nil
}
