package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// recordingBatchOracle records every set round's request count before
// forwarding, so tests can see exactly which rounds carried a probe.
type recordingBatchOracle struct {
	inner  BatchOracle
	rounds []int
}

func (r *recordingBatchOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return r.inner.SetQuery(ids, g)
}

func (r *recordingBatchOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return r.inner.ReverseSetQuery(ids, g)
}

func (r *recordingBatchOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	return r.inner.PointQuery(id)
}

func (r *recordingBatchOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	r.rounds = append(r.rounds, len(reqs))
	return r.inner.SetQueryBatch(reqs)
}

func (r *recordingBatchOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	return r.inner.PointQueryBatch(ids)
}

// sliceFeed is an in-memory AnswerFeed.
type sliceFeed struct{ entries []WorkerAnswer }

func (f *sliceFeed) AnswersSince(n int) []WorkerAnswer {
	if n < 0 {
		n = 0
	}
	if n >= len(f.entries) {
		return nil
	}
	return append([]WorkerAnswer(nil), f.entries[n:]...)
}

// feedingOracle emulates the crowd platform's sequencing: each
// committed set HIT appends one raw answer per simulated worker to the
// feed, with liars inverting the true answer — so gold-probe HITs and
// consensus HITs both accrue evidence against them.
type feedingOracle struct {
	inner   BatchOracle
	feed    *sliceFeed
	workers int
	liar    map[int]bool
	hit     int
}

func (o *feedingOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := o.SetQueryBatch([]SetRequest{{IDs: ids, Group: g}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

func (o *feedingOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := o.SetQueryBatch([]SetRequest{{IDs: ids, Group: g, Reverse: true}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

func (o *feedingOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	return o.inner.PointQuery(id)
}

func (o *feedingOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	answers, err := o.inner.SetQueryBatch(reqs)
	for _, truth := range answers {
		for w := 0; w < o.workers; w++ {
			v := 0
			if truth != o.liar[w] { // liars invert, honest workers are exact
				v = 1
			}
			o.feed.entries = append(o.feed.entries, WorkerAnswer{HIT: o.hit, Worker: w, Value: v})
		}
		o.hit++
	}
	return answers, err
}

func (o *feedingOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	return o.inner.PointQueryBatch(ids)
}

// recordingScreener records every exclusion push.
type recordingScreener struct{ calls [][]int }

func (s *recordingScreener) SetExcludedWorkers(ids []int) int {
	s.calls = append(s.calls, append([]int(nil), ids...))
	return len(ids)
}

func trustTestWorld(t *testing.T) (*dataset.Dataset, pattern.Group, []GoldProbe) {
	t.Helper()
	d, err := dataset.BinaryWithMinority(60, 20, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	probes := GoldProbes(d, []pattern.Group{g, dataset.Male(d.Schema())}, 4, 99)
	if len(probes) != 4 {
		t.Fatalf("GoldProbes returned %d probes, want 4", len(probes))
	}
	return d, g, probes
}

func TestTrustPolicyNormalization(t *testing.T) {
	pol, err := TrustPolicy{}.normalized()
	if err != nil {
		t.Fatalf("zero policy must normalize: %v", err)
	}
	if !reflect.DeepEqual(pol, DefaultTrustPolicy()) {
		t.Errorf("zero policy normalized to %+v, want defaults %+v", pol, DefaultTrustPolicy())
	}
	bad := []TrustPolicy{
		{ProbeEvery: -1},
		{HonestErr: 0.5, AdversaryErr: 0.1}, // inverted hypotheses
		{HonestErr: 0.2, AdversaryErr: 0.2}, // equal hypotheses
		{AdversaryErr: 1.5},
		{ContradictionWeight: -1},
	}
	for _, p := range bad {
		if _, err := p.normalized(); err == nil {
			t.Errorf("policy %+v: want validation error", p)
		}
	}
}

func TestTrustScoreMonotoneAndTotal(t *testing.T) {
	p := DefaultTrustPolicy()
	for fails := 0; fails < 10; fails++ {
		if a, b := p.Score(10, fails, 0, 0), p.Score(10, fails+1, 0, 0); b >= a {
			t.Fatalf("score not decreasing in probe fails: f(%d)=%v f(%d)=%v", fails, a, fails+1, b)
		}
	}
	for c := 0; c < 10; c++ {
		if a, b := p.Score(0, 0, 10, c), p.Score(0, 0, 10, c+1); b >= a {
			t.Fatalf("score not decreasing in contradictions: f(%d)=%v f(%d)=%v", c, a, c+1, b)
		}
	}
	// Clamped, total inputs: never NaN or Inf.
	extremes := []int{-5, 0, 3, 1 << 40}
	for _, probes := range extremes {
		for _, fails := range extremes {
			for _, answers := range extremes {
				for _, contra := range extremes {
					s := p.Score(probes, fails, answers, contra)
					if math.IsNaN(s) || math.IsInf(s, 0) {
						t.Fatalf("Score(%d,%d,%d,%d) = %v", probes, fails, answers, contra, s)
					}
				}
			}
		}
	}
	if p.Distrusts(p.DistrustBelow-1, p.MinObservations-1) {
		t.Error("distrust below MinObservations")
	}
	if !p.Distrusts(p.DistrustBelow-1, p.MinObservations) {
		t.Error("no distrust at MinObservations with failing score")
	}
}

func TestNewTrustOracleValidation(t *testing.T) {
	d, _, probes := trustTestWorld(t)
	if _, err := NewTrustOracle(nil, TrustConfig{}); err == nil {
		t.Error("nil inner: want error")
	}
	if _, err := NewTrustOracle(NewTruthOracle(d), TrustConfig{Policy: TrustPolicy{AdversaryErr: 2}}); err == nil {
		t.Error("invalid policy: want error")
	}
	if _, err := NewTrustOracle(NewTruthOracle(d), TrustConfig{Probes: []GoldProbe{{}}}); err == nil {
		t.Error("empty probe: want error")
	}
	if _, err := NewTrustOracle(NewTruthOracle(d), TrustConfig{Probes: probes}); err != nil {
		t.Errorf("valid config: %v", err)
	}
}

// TestTrustOracleProbeSchedule pins the deterministic interleaving:
// every ProbeEvery-th committed set round carries exactly one appended
// probe, the battery cycles in order, and the caller never sees the
// probe's answer.
func TestTrustOracleProbeSchedule(t *testing.T) {
	d, g, probes := trustTestWorld(t)
	rec := &recordingBatchOracle{inner: NewTruthOracle(d)}
	tr, err := NewTrustOracle(rec, TrustConfig{
		Policy: TrustPolicy{ProbeEvery: 3},
		Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.IDs()
	for round := 1; round <= 9; round++ {
		reqs := []SetRequest{
			{IDs: ids[:5], Group: g},
			{IDs: ids[5:10], Group: g},
		}
		answers, err := tr.SetQueryBatch(reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(answers) != len(reqs) {
			t.Fatalf("round %d: %d answers for %d requests", round, len(answers), len(reqs))
		}
		want := 2
		if round%3 == 0 {
			want = 3
		}
		if rec.rounds[round-1] != want {
			t.Fatalf("round %d forwarded %d requests, want %d", round, rec.rounds[round-1], want)
		}
	}
	// A single SetQuery is a one-element round and advances the
	// schedule too: round 10, 11, 12 -> the 12th carries a probe.
	for round := 10; round <= 12; round++ {
		if _, err := tr.SetQuery(ids[:3], g); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	wantRounds := []int{2, 2, 3, 2, 2, 3, 2, 2, 3, 1, 1, 2}
	if !reflect.DeepEqual(rec.rounds, wantRounds) {
		t.Fatalf("forwarded round sizes %v, want %v", rec.rounds, wantRounds)
	}
	rep := tr.Report()
	if rep.ProbesIssued != 4 {
		t.Errorf("ProbesIssued = %d, want 4", rep.ProbesIssued)
	}
	// Point rounds neither advance the schedule nor carry probes.
	if _, err := tr.PointQueryBatch(ids[:4]); err != nil {
		t.Fatal(err)
	}
	if len(rec.rounds) != len(wantRounds) {
		t.Error("point round must not be forwarded as a set round")
	}
}

// TestTrustOracleScreensLiar runs a liar among honest workers through
// the full loop: feed scoring, distrust verdict, screener push.
func TestTrustOracleScreensLiar(t *testing.T) {
	d, g, probes := trustTestWorld(t)
	feed := &sliceFeed{}
	src := &feedingOracle{
		inner:   NewTruthOracle(d),
		feed:    feed,
		workers: 4,
		liar:    map[int]bool{2: true},
	}
	screen := &recordingScreener{}
	tr, err := NewTrustOracle(src, TrustConfig{
		Policy: TrustPolicy{ProbeEvery: 2},
		Probes: probes,
		Feed:   feed,
		Screen: screen,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.IDs()
	for round := 0; round < 10; round++ {
		lo := (round * 4) % 40
		if _, err := tr.SetQueryBatch([]SetRequest{{IDs: ids[lo : lo+4], Group: g}}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	rep := tr.Report()
	if rep.Excluded != 1 {
		t.Fatalf("report excluded %d workers, want 1 (report %+v)", rep.Excluded, rep)
	}
	if len(rep.Workers) != 4 {
		t.Fatalf("report covers %d workers, want 4", len(rep.Workers))
	}
	for i, w := range rep.Workers {
		if w.Worker != i {
			t.Fatalf("report not sorted by worker ID: %+v", rep.Workers)
		}
		if wantExcluded := i == 2; w.Excluded != wantExcluded {
			t.Errorf("worker %d excluded=%v, want %v (score %v)", i, w.Excluded, wantExcluded, w.Score)
		}
		if i == 2 && w.Score >= tr.Policy().DistrustBelow {
			t.Errorf("liar's score %v above distrust boundary", w.Score)
		}
	}
	if len(screen.calls) == 0 {
		t.Fatal("screener never called")
	}
	last := screen.calls[len(screen.calls)-1]
	if !reflect.DeepEqual(last, []int{2}) {
		t.Errorf("screener last push %v, want [2]", last)
	}
}

// TestTrustOracleSwallowsProbeOnlyDenial pins the budget interaction:
// when the governor affords exactly the audit's own requests and
// denies only the appended probe, the round is clean for the caller;
// when the audit's own requests are denied, exhaustion surfaces.
func TestTrustOracleSwallowsProbeOnlyDenial(t *testing.T) {
	d, g, probes := trustTestWorld(t)
	gov := NewBudgetedOracle(NewTruthOracle(d), Budget{MaxSet: 2})
	tr, err := NewTrustOracle(gov, TrustConfig{
		Policy: TrustPolicy{ProbeEvery: 1},
		Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.IDs()
	reqs := []SetRequest{{IDs: ids[:5], Group: g}, {IDs: ids[5:10], Group: g}}
	answers, err := tr.SetQueryBatch(reqs)
	if err != nil {
		t.Fatalf("probe-only denial must not fail the round: %v", err)
	}
	if len(answers) != 2 {
		t.Fatalf("%d answers, want the full caller prefix of 2", len(answers))
	}
	if _, err := tr.SetQueryBatch(reqs[:1]); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("audit-request denial: err = %v, want ErrBudgetExhausted", err)
	}
}

func TestGoldProbesDeterministicAndTrue(t *testing.T) {
	d, g, _ := trustTestWorld(t)
	groups := []pattern.Group{g, dataset.Male(d.Schema())}
	a := GoldProbes(d, groups, 6, 42)
	b := GoldProbes(d, groups, 6, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GoldProbes not deterministic for identical inputs")
	}
	for i, pr := range a {
		labels, ok := d.TrueLabels(pr.Req.IDs[0])
		if !ok {
			t.Fatalf("probe %d references unknown object %v", i, pr.Req.IDs[0])
		}
		if pr.Want != pr.Req.Group.Matches(labels) {
			t.Errorf("probe %d gold answer %v disagrees with ground truth", i, pr.Want)
		}
	}
	if got := GoldProbes(d, nil, 3, 1); got != nil {
		t.Errorf("no groups: probes %v, want nil", got)
	}
	if got := GoldProbes(d, groups, 0, 1); got != nil {
		t.Errorf("k=0: probes %v, want nil", got)
	}
}
