package pattern

import (
	"fmt"
	"sort"
)

// Coverage is the three-valued coverage verdict for one pattern.
// Unknown arises only from interval propagation with partially-known
// leaf counts (see PropagateBounds); exact pipelines never produce it.
type Coverage int8

const (
	// Uncovered means the pattern matches fewer than tau objects.
	Uncovered Coverage = iota
	// Covered means the pattern matches at least tau objects.
	Covered
	// Unknown means the available bounds straddle tau.
	Unknown
)

// String returns "covered", "uncovered" or "unknown".
func (c Coverage) String() string {
	switch c {
	case Covered:
		return "covered"
	case Uncovered:
		return "uncovered"
	default:
		return "unknown"
	}
}

// CountLabels counts, for every fully-specified subgroup, how many of
// the given label vectors belong to it. The result is indexed by
// SubgroupIndex.
func CountLabels(s *Schema, labels [][]int) []int {
	counts := make([]int, s.NumSubgroups())
	for _, l := range labels {
		counts[SubgroupIndex(s, Point(l))]++
	}
	return counts
}

// CountPattern sums the subgroup counts of every fully-specified
// descendant of p. counts must be indexed by SubgroupIndex.
func CountPattern(s *Schema, counts []int, p Pattern) int {
	total := 0
	for idx, c := range counts {
		if c == 0 {
			continue
		}
		if p.Matches(SubgroupAt(s, idx)) {
			total += c
		}
	}
	return total
}

// AllCounts computes the match count of every pattern in the universe
// with the Pattern-Combiner recurrence: the count of a pattern equals
// the sum of the counts of its children along its first unspecified
// attribute (those children partition the pattern's objects). Returns
// a map keyed by Pattern.Key.
func AllCounts(s *Schema, counts []int) map[string]int {
	out := make(map[string]int, s.NumPatterns())
	byLevel := UniverseByLevel(s)
	d := s.NumAttrs()
	// Level d: fully-specified patterns take their subgroup counts.
	for _, p := range byLevel[d] {
		out[p.Key()] = counts[SubgroupIndex(s, p)]
	}
	// Combine upward, level d-1 .. 0.
	for l := d - 1; l >= 0; l-- {
		for _, p := range byLevel[l] {
			attr := p.FirstWildcard()
			sum := 0
			for _, ch := range p.ChildrenAlong(s, attr) {
				sum += out[ch.Key()]
			}
			out[p.Key()] = sum
		}
	}
	return out
}

// MUP is one maximal uncovered pattern together with its exact count.
type MUP struct {
	Pattern Pattern
	Count   int
}

// FindMUPs discovers every maximal uncovered pattern given exact
// subgroup counts: a pattern with fewer than tau matches all of whose
// parents are covered. This is the Pattern-Combiner procedure the
// paper invokes for labeled (or crowd-counted) data.
func FindMUPs(s *Schema, counts []int, tau int) []MUP {
	all := AllCounts(s, counts)
	var out []MUP
	for _, p := range Universe(s) {
		if all[p.Key()] >= tau {
			continue
		}
		maximal := true
		for _, par := range p.Parents() {
			if all[par.Key()] < tau {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, MUP{Pattern: p, Count: all[p.Key()]})
		}
	}
	sortMUPs(out)
	return out
}

// BruteForceMUPs computes MUPs by scanning the raw label vectors for
// every pattern in the universe. Quadratic; used as a test oracle for
// FindMUPs.
func BruteForceMUPs(s *Schema, labels [][]int, tau int) []MUP {
	count := func(p Pattern) int {
		n := 0
		for _, l := range labels {
			if p.Matches(l) {
				n++
			}
		}
		return n
	}
	var out []MUP
	for _, p := range Universe(s) {
		c := count(p)
		if c >= tau {
			continue
		}
		maximal := true
		for _, par := range p.Parents() {
			if count(par) < tau {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, MUP{Pattern: p, Count: c})
		}
	}
	sortMUPs(out)
	return out
}

func sortMUPs(ms []MUP) {
	sort.Slice(ms, func(i, j int) bool {
		if li, lj := ms[i].Pattern.Level(), ms[j].Pattern.Level(); li != lj {
			return li < lj
		}
		return ms[i].Pattern.Key() < ms[j].Pattern.Key()
	})
}

// UncoveredClosure returns every uncovered pattern (not only maximal
// ones), useful for reporting the full uncovered region.
func UncoveredClosure(s *Schema, counts []int, tau int) []Pattern {
	all := AllCounts(s, counts)
	var out []Pattern
	for _, p := range Universe(s) {
		if all[p.Key()] < tau {
			out = append(out, p)
		}
	}
	return out
}

// --- Interval propagation -------------------------------------------------

// LeafBound carries what an audit learned about one fully-specified
// subgroup. Exact leaves have Lo == Hi. Leaves audited through an
// uncovered super-group share a SuperID and a joint exact total: the
// algorithm knows the sum of their counts without knowing the split.
type LeafBound struct {
	Lo, Hi  int
	SuperID int // -1 when the leaf was audited individually
}

// ExactLeaf builds a LeafBound for an individually audited subgroup.
func ExactLeaf(count int) LeafBound { return LeafBound{Lo: count, Hi: count, SuperID: -1} }

// Bounds is an inclusive integer interval on a pattern's match count.
type Bounds struct{ Lo, Hi int }

// Verdict converts the bounds into a Coverage verdict at threshold tau.
func (b Bounds) Verdict(tau int) Coverage {
	switch {
	case b.Lo >= tau:
		return Covered
	case b.Hi < tau:
		return Uncovered
	default:
		return Unknown
	}
}

// PropagateBounds computes count intervals for every pattern in the
// universe from per-leaf bounds plus joint super-group totals
// (superTotals maps SuperID to the exact member-count sum). For a
// super-group s split by a pattern P, the members inside P contribute
//
//	lo = max(sum lo_in, total_s - sum hi_out)
//	hi = min(sum hi_in, total_s - sum lo_out)
//
// which is exact when P contains all of s (the aggregation step's
// same-parent rule guarantees this for the shared parent).
func PropagateBounds(s *Schema, leaves []LeafBound, superTotals map[int]int) (map[string]Bounds, error) {
	if len(leaves) != s.NumSubgroups() {
		return nil, fmt.Errorf("pattern: got %d leaf bounds, schema has %d subgroups", len(leaves), s.NumSubgroups())
	}
	for i, lb := range leaves {
		if lb.Lo > lb.Hi || lb.Lo < 0 {
			return nil, fmt.Errorf("pattern: leaf %d has invalid bounds [%d,%d]", i, lb.Lo, lb.Hi)
		}
		if lb.SuperID >= 0 {
			if _, ok := superTotals[lb.SuperID]; !ok {
				return nil, fmt.Errorf("pattern: leaf %d references unknown super-group %d", i, lb.SuperID)
			}
		}
	}
	subs := Subgroups(s)
	out := make(map[string]Bounds, s.NumPatterns())
	for _, p := range Universe(s) {
		var lo, hi int
		// Independent leaves sum directly; super-group members are
		// grouped and tightened with the joint total.
		inLo := map[int]int{}
		inHi := map[int]int{}
		outLo := map[int]int{}
		outHi := map[int]int{}
		for idx, leaf := range subs {
			lb := leaves[idx]
			inside := p.Matches(leaf)
			if lb.SuperID < 0 {
				if inside {
					lo += lb.Lo
					hi += lb.Hi
				}
				continue
			}
			if inside {
				inLo[lb.SuperID] += lb.Lo
				inHi[lb.SuperID] += lb.Hi
			} else {
				outLo[lb.SuperID] += lb.Lo
				outHi[lb.SuperID] += lb.Hi
			}
		}
		for id, total := range superTotals {
			l := max(inLo[id], total-outHi[id])
			h := min(inHi[id], total-outLo[id])
			if h < 0 {
				h = 0
			}
			if l < 0 {
				l = 0
			}
			lo += l
			hi += h
		}
		out[p.Key()] = Bounds{Lo: lo, Hi: hi}
	}
	return out, nil
}
