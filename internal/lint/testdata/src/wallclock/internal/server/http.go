// The server's HTTP/SSE layer timestamps live traffic and is never
// replayed: internal/server/http.go is on the wallclock allowlist.
package server

import "time"

func liveTimestamp() time.Time {
	return time.Now()
}
