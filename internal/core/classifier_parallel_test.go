package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"imagecvg/internal/dataset"
)

// classifierInstance is one randomized Classifier-Coverage workload:
// dataset composition, classifier quality (true/false positives in the
// predicted set), and audit parameters. The mix is chosen so both
// strategies, early stops, full drains and the residual hunt all occur
// across the suite.
type classifierInstance struct {
	n, f, tau, setSize  int
	tp, fp              int
	dataSeed, auditSeed int64
}

func generateClassifierInstance(rng *rand.Rand) classifierInstance {
	n := 200 + rng.Intn(1500)
	f := rng.Intn(n / 3)
	inst := classifierInstance{
		n: n, f: f,
		tau:       1 + rng.Intn(60),
		setSize:   1 + rng.Intn(80),
		tp:        rng.Intn(f + 1),
		fp:        rng.Intn((n-f)/2 + 1),
		dataSeed:  rng.Int63(),
		auditSeed: rng.Int63(),
	}
	return inst
}

// runClassifierCell executes one (instance, options) cell against a
// fresh TruthOracle and serializes the full result.
func runClassifierCell(t *testing.T, inst classifierInstance, parallelism int, lockstep bool) string {
	t.Helper()
	d, err := dataset.BinaryWithMinority(inst.n, inst.f, rand.New(rand.NewSource(inst.dataSeed)))
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	predicted := predictedSet(d, inst.tp, inst.fp)
	res, err := ClassifierCoverage(NewTruthOracle(d), d.IDs(), predicted, inst.setSize, inst.tau, g,
		ClassifierOptions{
			Rng:         rand.New(rand.NewSource(inst.auditSeed)),
			Parallelism: parallelism,
			Lockstep:    lockstep,
		})
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", res)
}

// TestClassifierLockstepMatchesSequentialRandomized is the equivalence
// matrix for the batched engine: >= 50 randomized instances, each run
// sequentially and then under Lockstep at P in {1, 2, 4, 16}, asserting
// a byte-identical ClassifierResult (Strategy, Count, Exact, EstFPRate
// and the full task breakdown). Run under -race in CI, so the claim is
// checked on genuinely concurrent schedules.
func TestClassifierLockstepMatchesSequentialRandomized(t *testing.T) {
	instances := 50
	if testing.Short() {
		instances = 12
	}
	rng := rand.New(rand.NewSource(20250))
	for i := 0; i < instances; i++ {
		inst := generateClassifierInstance(rng)
		t.Run(fmt.Sprintf("%02d", i), func(t *testing.T) {
			want := runClassifierCell(t, inst, 1, false)
			for _, par := range []int{1, 2, 4, 16} {
				if got := runClassifierCell(t, inst, par, true); got != want {
					t.Fatalf("lockstep P=%d diverged from the sequential engine:\n--- lockstep ---\n%s\n--- sequential ---\n%s\n(instance %+v)",
						par, got, want, inst)
				}
			}
		})
	}
}

// TestClassifierFreePoolMatchesSequentialRandomized pins the
// free-running side of the contract: against an order-independent
// oracle the batched engine without lockstep also reproduces the
// sequential engine at every width.
func TestClassifierFreePoolMatchesSequentialRandomized(t *testing.T) {
	instances := 20
	if testing.Short() {
		instances = 6
	}
	rng := rand.New(rand.NewSource(20251))
	for i := 0; i < instances; i++ {
		inst := generateClassifierInstance(rng)
		t.Run(fmt.Sprintf("%02d", i), func(t *testing.T) {
			want := runClassifierCell(t, inst, 1, false)
			for _, par := range []int{2, 8} {
				if got := runClassifierCell(t, inst, par, false); got != want {
					t.Fatalf("free pool P=%d diverged from the sequential engine:\n%s\nvs\n%s\n(instance %+v)",
						par, got, want, inst)
				}
			}
		})
	}
}

// roundLogOracle is a native BatchOracle over ground truth that logs
// every committed batch as the sizes and first ids of its requests —
// enough to fingerprint round composition and order without recording
// answers.
type roundLogOracle struct {
	*TruthOracle

	mu  sync.Mutex
	log []string
}

func newRoundLogOracle(d *dataset.Dataset) *roundLogOracle {
	return &roundLogOracle{TruthOracle: NewTruthOracle(d)}
}

func (o *roundLogOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	o.mu.Lock()
	line := fmt.Sprintf("set[%d]:", len(reqs))
	for _, r := range reqs {
		line += fmt.Sprintf(" %d+%d", r.IDs[0], len(r.IDs))
	}
	o.log = append(o.log, line)
	o.mu.Unlock()
	return o.TruthOracle.SetQueryBatch(reqs)
}

func (o *roundLogOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	o.mu.Lock()
	line := fmt.Sprintf("point[%d]:", len(ids))
	for _, id := range ids {
		line += fmt.Sprintf(" %d", id)
	}
	o.log = append(o.log, line)
	o.mu.Unlock()
	return o.TruthOracle.PointQueryBatch(ids)
}

// TestClassifierLockstepRoundsWidthIndependent asserts the property the
// cross-parallelism guarantee rests on: under Lockstep, the exact
// sequence of committed rounds — composition AND order within each
// round — is identical at every Parallelism value, so an
// order-dependent oracle consumes its state identically at any width.
func TestClassifierLockstepRoundsWidthIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(20252))
	for i := 0; i < 8; i++ {
		inst := generateClassifierInstance(rng)
		d, err := dataset.BinaryWithMinority(inst.n, inst.f, rand.New(rand.NewSource(inst.dataSeed)))
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())
		predicted := predictedSet(d, inst.tp, inst.fp)
		runLog := func(par int) []string {
			o := newRoundLogOracle(d)
			_, err := ClassifierCoverage(o, d.IDs(), predicted, inst.setSize, inst.tau, g,
				ClassifierOptions{Rng: rand.New(rand.NewSource(inst.auditSeed)), Parallelism: par, Lockstep: true})
			if err != nil {
				t.Fatal(err)
			}
			return o.log
		}
		base := runLog(1)
		for _, par := range []int{4, 16} {
			got := runLog(par)
			if fmt.Sprint(got) != fmt.Sprint(base) {
				t.Fatalf("instance %d: round log at P=%d diverged from P=1:\n%v\nvs\n%v", i, par, got, base)
			}
		}
	}
}

// TestClassifierParallelPropagatesErrors mirrors the sequential error
// test on the batched engine: a transiently failing oracle must abort
// the audit instead of mislabeling coverage.
func TestClassifierParallelPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(20253))
	d, _ := dataset.BinaryWithMinority(100, 20, rng)
	g := dataset.Female(d.Schema())
	predicted := predictedSet(d, 20, 5)
	for _, lockstep := range []bool{false, true} {
		flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 3}
		if _, err := ClassifierCoverage(flaky, d.IDs(), predicted, 10, 15, g,
			ClassifierOptions{Rng: rng, Parallelism: 4, Lockstep: lockstep}); err == nil {
			t.Errorf("lockstep=%v: want propagated transient error", lockstep)
		}
	}
}

// TestClassifierRetryRecoversTransientFailures pins WithRetry parity
// with the multi-group engines: a transiently flaky oracle must not
// abort a classifier audit when a retry policy is set, on either
// engine. The sequential run must additionally match a clean oracle's
// result exactly — retries re-post HITs, they never change the
// algorithm-level task accounting.
func TestClassifierRetryRecoversTransientFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(20255))
	d, _ := dataset.BinaryWithMinority(400, 80, rng)
	g := dataset.Female(d.Schema())
	predicted := predictedSet(d, 60, 6)
	policy := RetryPolicy{MaxAttempts: 8}

	clean, err := ClassifierCoverage(NewTruthOracle(d), d.IDs(), predicted, 25, 50, g,
		ClassifierOptions{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	cases := []ClassifierOptions{
		{Rng: rand.New(rand.NewSource(1)), Retry: policy},
		{Rng: rand.New(rand.NewSource(1)), Retry: policy, Parallelism: 4},
		{Rng: rand.New(rand.NewSource(1)), Retry: policy, Parallelism: 4, Lockstep: true},
	}
	for i, opts := range cases {
		flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 7}
		res, err := ClassifierCoverage(flaky, d.IDs(), predicted, 25, 50, g, opts)
		if err != nil {
			t.Fatalf("case %d: retry did not absorb transient failures: %v", i, err)
		}
		if got, want := fmt.Sprintf("%+v", res), fmt.Sprintf("%+v", clean); got != want {
			t.Errorf("case %d: retried audit diverged from the clean oracle's:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestPartitionCleanRoundsMatchesSequential compares the level-round
// Partition directly against the sequential partitionClean across
// randomized compositions and stop thresholds, including stopAt values
// beyond the set (full drain) and tiny chunk sizes.
func TestPartitionCleanRoundsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20254))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(300)
		f := rng.Intn(n + 1)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())
		chunk := 1 + rng.Intn(64)
		stopAt := rng.Intn(n + 2)
		wantC, wantD, wantT, err := partitionClean(NewTruthOracle(d), d.IDs(), chunk, stopAt, g)
		if err != nil {
			t.Fatal(err)
		}
		e := &classifierEngine{o: NewTruthOracle(d), opts: MultipleOptions{Parallelism: 1 + rng.Intn(8), Lockstep: rng.Intn(2) == 0}}
		gotC, gotD, gotT, _, err := e.partitionCleanRounds(d.IDs(), chunk, stopAt, g)
		if err != nil {
			t.Fatal(err)
		}
		if gotC != wantC || gotD != wantD || gotT != wantT {
			t.Fatalf("trial %d (N=%d f=%d chunk=%d stopAt=%d): rounds=(%d,%v,%d) sequential=(%d,%v,%d)",
				trial, n, f, chunk, stopAt, gotC, gotD, gotT, wantC, wantD, wantT)
		}
	}
}
