// Package server is the multi-tenant audit service: a job engine
// where every coverage audit — Multiple, Intersectional or
// Classifier — is a persistent job with a state machine (queued →
// running → done/failed/cancelled), its own crash-safe round journal
// under the engine's data directory, and a per-tenant budget gate.
// Jobs run on one bounded worker pool (core.RunBounded) and always
// under the Lockstep scheduler, so a job's verdicts, task tallies and
// ledger spend are byte-identical to the same configuration run
// one-shot through the root Auditor — at every parallelism level, and
// across a mid-job server kill and restart.
//
// Restart recovery leans on the journal contract from internal/core
// and internal/journal: a job interrupted at a round boundary resumes
// by replaying its committed rounds without touching the oracle, and
// — for the stateful simulated crowd — by re-warming a fresh
// identically-seeded platform with the journaled answered prefixes,
// which reconstructs the platform's RNG stream and ledger exactly.
//
// The HTTP surface (Engine.Handler) exposes POST /jobs, GET /jobs,
// GET /jobs/{id}, GET /jobs/{id}/stream (SSE round-by-round progress)
// and DELETE /jobs/{id}; cvgrun -serve mounts it. The API is
// unauthenticated and trusts the client-supplied tenant field —
// tenants partition budgets, not access; see Engine.Handler for the
// trust model and how to front the service for untrusting tenants.
package server

import (
	"fmt"

	"imagecvg/internal/core"
	"imagecvg/internal/pattern"
)

// Job modes: which audit algorithm a job runs.
const (
	// ModeMultiple audits every value of one schema attribute
	// (Multiple-Coverage, Algorithm 2).
	ModeMultiple = "multiple"
	// ModeIntersectional discovers the maximal uncovered patterns over
	// the whole schema (Algorithm 3).
	ModeIntersectional = "intersectional"
	// ModeClassifier audits one group with a simulated classifier's
	// predicted-positive set (Algorithm 4).
	ModeClassifier = "classifier"
)

// JobState is a job's position in the lifecycle state machine.
type JobState string

// Job lifecycle states. A job interrupted by a server kill (or
// engine shutdown) returns to StateQueued with its journal on disk,
// and resumes on the next engine start.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// DatasetSpec names the dataset a job audits: either a dataset JSON
// file (Path) or a generated binary-gender dataset with exactly
// Minority females among N objects, seeded deterministically — the
// same construction as the root GenerateBinary.
type DatasetSpec struct {
	Path     string `json:"path,omitempty"`
	N        int    `json:"n,omitempty"`
	Minority int    `json:"minority,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// JobConfig is a submitted audit: everything the engine needs to run
// it — and, because every field is serialized into the job's meta
// file, everything a restarted engine needs to resume it with
// byte-identical results.
type JobConfig struct {
	// Tenant names the submitting tenant for budget accounting; empty
	// is a valid (shared) tenant.
	Tenant string `json:"tenant,omitempty"`
	// Mode selects the audit algorithm; default ModeMultiple.
	Mode string `json:"mode,omitempty"`
	// Dataset is the audited dataset.
	Dataset DatasetSpec `json:"dataset"`
	// Tau is the coverage threshold (default 50); SetSize caps set-query
	// size (default 50).
	Tau     int `json:"tau,omitempty"`
	SetSize int `json:"set_size,omitempty"`
	// Attr selects the audited schema attribute for ModeMultiple and
	// ModeClassifier; Value selects the audited group's value index for
	// ModeClassifier (default: attribute 0, value 1 — the minority
	// group of the generated gender datasets).
	Attr  int `json:"attr,omitempty"`
	Value int `json:"value,omitempty"`
	// Seed drives the audit's sampling phases (and, for Oracle
	// "crowd", the platform's worker draws).
	Seed int64 `json:"seed"`
	// Parallelism is the audit engine width; results are byte-identical
	// at every value because jobs always run under Lockstep.
	Parallelism int `json:"parallelism,omitempty"`
	// Oracle selects the answer source: "truth" (default, ground-truth
	// labels) or "crowd" (the full simulated crowdsourcing platform).
	Oracle string `json:"oracle,omitempty"`
	// Assignments and PoolSize tune the crowd deployment (defaults: 3
	// assignments, 30 workers); ignored for Oracle "truth".
	Assignments int `json:"assignments,omitempty"`
	PoolSize    int `json:"pool_size,omitempty"`
	// MaxHITs and MaxSpend cap this job's committed crowd tasks; the
	// engine clamps them to the tenant's remaining headroom at submit
	// and persists the effective caps, so a resumed job runs under the
	// same budget.
	MaxHITs  int     `json:"max_hits,omitempty"`
	MaxSpend float64 `json:"max_spend,omitempty"`
	// ClassifierTP and ClassifierFP size the simulated classifier's
	// predicted-positive set for ModeClassifier.
	ClassifierTP int `json:"classifier_tp,omitempty"`
	ClassifierFP int `json:"classifier_fp,omitempty"`
	// HITDelayMicros sleeps each HIT of a truth-oracle job, modeling
	// crowd round-trip latency (useful for lifecycle tests and load
	// shaping); ignored for Oracle "crowd", whose answers are
	// order-dependent and must not be lifted across a delay pool.
	HITDelayMicros int64 `json:"hit_delay_micros,omitempty"`
}

// badConfig builds a validation error wrapping ErrInvalidConfig, so
// the HTTP layer maps it to 400 Bad Request.
func badConfig(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
}

// normalize applies defaults and validates the configuration.
func (c *JobConfig) normalize() error {
	if c.Mode == "" {
		c.Mode = ModeMultiple
	}
	switch c.Mode {
	case ModeMultiple, ModeIntersectional, ModeClassifier:
	default:
		return badConfig("unknown mode %q", c.Mode)
	}
	if c.Dataset.Path == "" {
		if c.Dataset.N <= 0 {
			return badConfig("dataset needs a path or a positive n")
		}
		if c.Dataset.Minority < 0 || c.Dataset.Minority > c.Dataset.N {
			return badConfig("dataset minority %d outside [0, %d]", c.Dataset.Minority, c.Dataset.N)
		}
	}
	if c.Tau == 0 {
		c.Tau = 50
	}
	if c.Tau < 0 {
		return badConfig("tau must be positive, got %d", c.Tau)
	}
	if c.SetSize == 0 {
		c.SetSize = 50
	}
	if c.SetSize < 0 {
		return badConfig("set size must be positive, got %d", c.SetSize)
	}
	if c.Attr < 0 || c.Value < 0 {
		return badConfig("attr/value must be non-negative")
	}
	if c.Mode == ModeClassifier && c.Attr == 0 && c.Value == 0 {
		c.Value = 1 // minority group of the generated gender datasets
	}
	if c.Parallelism < 0 {
		return badConfig("parallelism must be non-negative, got %d", c.Parallelism)
	}
	if c.Oracle == "" {
		c.Oracle = "truth"
	}
	if c.Oracle != "truth" && c.Oracle != "crowd" {
		return badConfig("unknown oracle %q", c.Oracle)
	}
	if c.Assignments < 0 || c.PoolSize < 0 {
		return badConfig("assignments/pool size must be non-negative")
	}
	if c.MaxHITs < 0 || c.MaxSpend < 0 {
		return badConfig("budget caps must be non-negative")
	}
	if c.ClassifierTP < 0 || c.ClassifierFP < 0 {
		return badConfig("classifier tp/fp must be non-negative")
	}
	if c.HITDelayMicros < 0 {
		return badConfig("hit delay must be non-negative")
	}
	return nil
}

// BudgetCaps are a job's effective budget, resolved at submit time
// (job caps clamped to the tenant's remaining headroom) and persisted
// so a resumed job runs under the identical budget.
type BudgetCaps struct {
	MaxHITs  int     `json:"max_hits,omitempty"`
	MaxSpend float64 `json:"max_spend,omitempty"`
}

// budget realizes the caps as a core budget under the oracle's cost
// model.
func (c BudgetCaps) budget(cost core.CostFunc) core.Budget {
	return core.Budget{MaxHITs: c.MaxHITs, MaxSpend: c.MaxSpend, Cost: cost}
}

// GroupVerdict is one group's serialized audit outcome.
type GroupVerdict struct {
	Group   string `json:"group"`
	Covered bool   `json:"covered"`
	Settled bool   `json:"settled"`
	CountLo int    `json:"count_lo"`
	CountHi int    `json:"count_hi"`
	Exact   bool   `json:"exact"`
}

// MUPVerdict is one maximal uncovered pattern of an intersectional
// job.
type MUPVerdict struct {
	Pattern string `json:"pattern"`
	Count   int    `json:"count"`
}

// ClassifierVerdict is a classifier job's outcome.
type ClassifierVerdict struct {
	Group         string  `json:"group"`
	Covered       bool    `json:"covered"`
	Count         int     `json:"count"`
	Exact         bool    `json:"exact"`
	Strategy      string  `json:"strategy"`
	EstFPRate     float64 `json:"est_fp_rate"`
	CleanupTasks  int     `json:"cleanup_tasks"`
	ResidualTasks int     `json:"residual_tasks"`
}

// JobResult is a finished job's serialized outcome: verdicts, task
// tallies and ledger spend. The conformance contract is that this
// value is byte-identical (as JSON) between a serve-mode job and the
// same configuration run one-shot through the root Auditor.
type JobResult struct {
	Verdicts        []GroupVerdict     `json:"verdicts,omitempty"`
	MUPs            []MUPVerdict       `json:"mups,omitempty"`
	Classifier      *ClassifierVerdict `json:"classifier,omitempty"`
	Exhausted       bool               `json:"exhausted,omitempty"`
	SampleTasks     int                `json:"sample_tasks"`
	AuditTasks      int                `json:"audit_tasks"`
	ResolutionTasks int                `json:"resolution_tasks,omitempty"`
	Tasks           int                `json:"tasks"`
	Spent           core.BudgetSpent   `json:"spent"`
}

// ResultFromMultiple serializes a Multiple-Coverage outcome.
func ResultFromMultiple(res *core.MultipleResult, spent core.BudgetSpent) *JobResult {
	out := &JobResult{
		Exhausted:   res.Exhausted,
		SampleTasks: res.SampleTasks,
		AuditTasks:  res.AuditTasks,
		Tasks:       res.Tasks,
		Spent:       spent,
	}
	for _, r := range res.Results {
		out.Verdicts = append(out.Verdicts, GroupVerdict{
			Group:   r.Group.Name,
			Covered: r.Covered,
			Settled: r.Settled,
			CountLo: r.CountLo,
			CountHi: r.CountHi,
			Exact:   r.Exact,
		})
	}
	return out
}

// ResultFromIntersectional serializes an Intersectional-Coverage
// outcome: the MUP list (patterns formatted against the schema) plus
// the underlying leaf audit's verdicts.
func ResultFromIntersectional(res *core.IntersectionalResult, s *pattern.Schema, spent core.BudgetSpent) *JobResult {
	out := ResultFromMultiple(res.Multiple, spent)
	out.Exhausted = res.Exhausted
	out.ResolutionTasks = res.ResolutionTasks
	out.Tasks = res.Tasks
	for _, m := range res.MUPs {
		out.MUPs = append(out.MUPs, MUPVerdict{Pattern: m.Pattern.Format(s), Count: m.Count})
	}
	return out
}

// ResultFromClassifier serializes a classifier-assisted outcome.
func ResultFromClassifier(res core.ClassifierResult, spent core.BudgetSpent) *JobResult {
	return &JobResult{
		Classifier: &ClassifierVerdict{
			Group:         res.Group.Name,
			Covered:       res.Covered,
			Count:         res.Count,
			Exact:         res.Exact,
			Strategy:      string(res.Strategy),
			EstFPRate:     res.EstFPRate,
			CleanupTasks:  res.CleanupTasks,
			ResidualTasks: res.ResidualTasks,
		},
		Exhausted:   res.Exhausted,
		SampleTasks: res.SampleTasks,
		Tasks:       res.Tasks,
		Spent:       spent,
	}
}

// JobStatus is a point-in-time snapshot of one job, the GET /jobs/{id}
// payload. Rounds and Spent advance per committed round while the job
// runs — the "partial verdicts" view a dashboard polls.
type JobStatus struct {
	ID       string           `json:"id"`
	Tenant   string           `json:"tenant,omitempty"`
	Mode     string           `json:"mode"`
	State    JobState         `json:"state"`
	Budget   BudgetCaps       `json:"budget"`
	Rounds   int              `json:"rounds"`
	Replayed int              `json:"replayed,omitempty"`
	Spent    core.BudgetSpent `json:"spent"`
	Result   *JobResult       `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// Event is one SSE progress message: a "snapshot" of the job status
// when a stream attaches, a "round" per committed journal round, and
// a "state" per lifecycle transition. Round events are advisory — a
// slow consumer may drop some — but the terminal state event always
// precedes the stream's end-of-channel.
type Event struct {
	Type   string            `json:"type"`
	Status *JobStatus        `json:"status,omitempty"`
	Round  int               `json:"round,omitempty"`
	Spent  *core.BudgetSpent `json:"spent,omitempty"`
	State  JobState          `json:"state,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// jobMeta is the persisted form of one job under the data directory:
// <id>.job.json beside the round journal <id>.jnl. The meta is only
// rewritten at submit and at terminal transitions, so a job that was
// running when the process died is found non-terminal on restart and
// resumed from its journal.
type jobMeta struct {
	ID       string     `json:"id"`
	Config   JobConfig  `json:"config"`
	Budget   BudgetCaps `json:"budget"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	Rounds   int        `json:"rounds,omitempty"`
	Replayed int        `json:"replayed,omitempty"`
}
