// Package load type-checks Go packages for cvglint's standalone mode
// using only the standard library. It shells out to `go list -deps
// -export -json`, which compiles export data for every dependency
// into the build cache, then re-parses each target package's source
// and type-checks it against that export data — the same split the
// unitchecker protocol uses, so standalone runs and `go vet -vettool`
// runs see identical type information.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"imagecvg/internal/lint/analysis"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads the packages matched by patterns (e.g. "./...")
// relative to dir, type-checking each from source with imports
// resolved through the go command's export data. Test files are not
// loaded: the `go vet -vettool` path covers test variants, and the
// analyzers skip _test.go files for the rules where tests are exempt.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %w", err)
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := analysis.NewTypesInfo()
		conf := &types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
