// Intersectional bias: discover the maximal uncovered patterns (MUPs)
// of a gender x race face collection — the paper's Figure 5 scenario,
// where female-black is severely underrepresented even though both
// "female" and "black" look fine in isolation.
//
//	go run ./examples/intersectional_bias
package main

import (
	"fmt"
	"log"

	"imagecvg"
)

func main() {
	schema, err := imagecvg.NewSchema(
		imagecvg.Attribute{Name: "gender", Values: []string{"male", "female"}},
		imagecvg.Attribute{Name: "race", Values: []string{"white", "black", "hispanic", "asian"}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Composition: every marginal group is covered, but the
	// female-black intersection has only 5 images.
	var labels [][]int
	add := func(g, r, count int) {
		for i := 0; i < count; i++ {
			labels = append(labels, []int{g, r})
		}
	}
	add(0, 0, 400) // male-white
	add(1, 0, 350) // female-white
	add(0, 1, 120) // male-black
	add(1, 1, 5)   // female-black  <- hidden representation bias
	add(0, 2, 90)  // male-hispanic
	add(1, 2, 80)  // female-hispanic
	add(0, 3, 75)  // male-asian
	add(1, 3, 60)  // female-asian
	ds, err := imagecvg.NewDataset(schema, labels)
	if err != nil {
		log.Fatal(err)
	}

	auditor := imagecvg.NewAuditor(imagecvg.NewTruthOracle(ds), 50, 50).WithSeed(5)
	res, err := auditor.AuditIntersectional(ds.IDs(), schema)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("audited %d images across %d patterns in %d crowd tasks\n\n",
		ds.Size(), len(res.Verdicts), res.Tasks)
	fmt.Println("maximal uncovered patterns (tau = 50):")
	for _, m := range res.MUPs {
		fmt.Printf("  %-40s only %d images\n", m.Pattern.Format(schema), m.Count)
	}
	fmt.Println("\nnote how gender=female AND race=black surfaces even though")
	fmt.Println("both gender=female and race=black are covered on their own:")
	for _, key := range []string{"1X", "X1"} {
		v := res.Verdicts[key]
		fmt.Printf("  %-40s %s (count >= %d)\n",
			v.Pattern.Format(schema), v.Coverage, v.Bounds.Lo)
	}
}
