package crowd

import "sync"

// ResponseLog is the platform's sequencing hook: when installed via
// Config.Responses it records every raw worker assignment of every
// yes/no HIT (set and reverse-set queries) in platform commit order,
// before aggregation. The log is what batch truth-inference consumers
// need — DawidSkene runs directly over Responses() — and what the
// lockstep conformance suite compares across parallelism levels: two
// runs commit the same HIT sequence if and only if their logs are
// identical, a strictly stronger check than comparing verdicts.
//
// The log has its own lock, so it is safe to share across platforms
// or read while a deployment is running.
type ResponseLog struct {
	mu        sync.Mutex
	responses []Response
	hits      int
}

// record appends one HIT's assignments; answers[i] is workers[i]'s raw
// (pre-aggregation) answer.
func (l *ResponseLog) record(workers []*Worker, answers []bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	task := l.hits
	l.hits++
	for i, w := range workers {
		value := 0
		if answers[i] {
			value = 1
		}
		l.responses = append(l.responses, Response{Task: task, Worker: w.ID, Value: value})
	}
}

// HITs returns the number of logged HITs.
func (l *ResponseLog) HITs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits
}

// Responses returns a copy of the assignment log in commit order,
// ready for DawidSkene (tasks are HIT indices, classes are {no, yes}).
func (l *ResponseLog) Responses() []Response {
	return l.ResponsesSince(0)
}

// Len returns the number of logged responses (individual worker
// assignments; one HIT contributes one response per assigned worker).
func (l *ResponseLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.responses)
}

// ResponsesSince returns a copy of the responses appended at index n
// and later, in commit order — the delta an incremental consumer (see
// IncrementalDS.SyncLog) has not seen yet. Out-of-range n is clamped,
// so polling a live log with the previous Len() is always safe.
func (l *ResponseLog) ResponsesSince(n int) []Response {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(l.responses) {
		return nil
	}
	out := make([]Response, len(l.responses)-n)
	copy(out, l.responses[n:])
	return out
}
