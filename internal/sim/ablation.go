package sim

import (
	"fmt"
	"math/rand"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
	"imagecvg/internal/stats"
)

// The ablation experiments are extensions beyond the paper's figures:
// they quantify the contribution of each design choice DESIGN.md
// calls out (sibling inference, checked-based lower-bound counting,
// the c*tau sampling phase) and the robustness of the pipeline to
// worker noise.

// AblationRow compares Algorithm 1 variants in one data regime.
type AblationRow struct {
	Variant string
	// Tasks in the three regimes the paper's Figure 7a highlights:
	// clearly uncovered (f = tau/2), the worst case (f = tau), and
	// clearly covered (f = 4*tau).
	UncoveredTasks, ThresholdTasks, CoveredTasks float64
}

// AblationResult is the design-choice ablation table.
type AblationResult struct {
	N, Tau, SetSize int
	Rows            []AblationRow
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	t := stats.NewTable("variant", "tasks (f=tau/2)", "tasks (f=tau)", "tasks (f=4tau)")
	for _, row := range r.Rows {
		t.AddRow(row.Variant, fmt.Sprintf("%.1f", row.UncoveredTasks),
			fmt.Sprintf("%.1f", row.ThresholdTasks), fmt.Sprintf("%.1f", row.CoveredTasks))
	}
	return fmt.Sprintf("Ablation: Group-Coverage design choices (N=%d tau=%d n=%d)\n%s",
		r.N, r.Tau, r.SetSize, t.String())
}

// RunAblationCore measures Group-Coverage against its ablated
// variants: without the free right-sibling inference, without the
// checked-based lower bound (counting singletons only), and with both
// removed. All variants stay correct; the table shows what each
// design choice buys.
func RunAblationCore(seed int64, trials int) (*AblationResult, error) {
	if trials <= 0 {
		trials = 1
	}
	const n, tau, setSize = 20_000, 50, 50
	variants := []struct {
		name string
		opts core.GroupCoverageOptions
	}{
		{"full algorithm", core.GroupCoverageOptions{}},
		{"no sibling inference", core.GroupCoverageOptions{DisableSiblingInference: true}},
		{"singleton counting", core.GroupCoverageOptions{CountSingletonsOnly: true}},
		{"both removed", core.GroupCoverageOptions{DisableSiblingInference: true, CountSingletonsOnly: true}},
	}
	regimes := []int{tau / 2, tau, 4 * tau}
	res := &AblationResult{N: n, Tau: tau, SetSize: setSize}
	for _, v := range variants {
		means := make([]float64, len(regimes))
		for ri, f := range regimes {
			var tasks []float64
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(seed + int64(100*ri+trial)))
				d, err := dataset.BinaryWithMinority(n, f, rng)
				if err != nil {
					return nil, err
				}
				g := dataset.Female(d.Schema())
				r, err := core.GroupCoverageOpt(core.NewTruthOracle(d), d.IDs(), setSize, tau, g, v.opts)
				if err != nil {
					return nil, err
				}
				if r.Covered != (f >= tau) {
					return nil, fmt.Errorf("ablation %q broke correctness at f=%d", v.name, f)
				}
				tasks = append(tasks, float64(r.Tasks))
			}
			means[ri] = stats.Summarize(tasks).Mean
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:        v.name,
			UncoveredTasks: means[0],
			ThresholdTasks: means[1],
			CoveredTasks:   means[2],
		})
	}
	return res, nil
}

// SamplingRow is one sampling budget of the c-factor ablation.
type SamplingRow struct {
	Label string
	Tasks float64
}

// SamplingResult is the sampling-factor ablation.
type SamplingResult struct {
	Rows []SamplingRow
}

// String renders the table.
func (r *SamplingResult) String() string {
	t := stats.NewTable("sampling budget", "Multiple-Coverage tasks")
	for _, row := range r.Rows {
		t.AddRow(row.Label, fmt.Sprintf("%.1f", row.Tasks))
	}
	return "Ablation: sampling factor c of Multiple-Coverage (effective-1 setting, sigma=4, N=10000, tau=50)\n" + t.String()
}

// RunAblationSampling sweeps the sampling budget c of Algorithm 2
// over {none, 1, 2, 4, 8} in the effective-1 setting; the paper found
// c = 2 a good choice, and the table shows the tradeoff: too little
// sampling mis-forms super-groups, too much pays for labels that save
// nothing.
func RunAblationSampling(seed int64, trials int) (*SamplingResult, error) {
	if trials <= 0 {
		trials = 1
	}
	const n, tau, setSize = 10_000, 50, 50
	s := oneAttrSchema(4)
	groups := pattern.GroupsForAttribute(s, 0)
	counts := buildCounts(4, n, Table3Settings()[0].MinorityCounts)
	budgets := []struct {
		label string
		opts  core.MultipleOptions
	}{
		{"none (c=0)", core.MultipleOptions{NoSampling: true}},
		{"c=1", core.MultipleOptions{SampleFactor: 1}},
		{"c=2 (paper)", core.MultipleOptions{SampleFactor: 2}},
		{"c=4", core.MultipleOptions{SampleFactor: 4}},
		{"c=8", core.MultipleOptions{SampleFactor: 8}},
	}
	res := &SamplingResult{}
	for bi, b := range budgets {
		var tasks []float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(100*bi+trial)))
			d, err := dataset.FromCounts(s, counts, rng)
			if err != nil {
				return nil, err
			}
			opts := b.opts
			opts.Rng = rng
			mres, err := core.MultipleCoverage(core.NewTruthOracle(d), d.IDs(), setSize, tau, groups, opts)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, float64(mres.Tasks))
		}
		res.Rows = append(res.Rows, SamplingRow{Label: b.label, Tasks: stats.Summarize(tasks).Mean})
	}
	return res, nil
}

// NoiseRow is one worker-quality level of the robustness sweep.
type NoiseRow struct {
	SlipRate        float64
	HITs            float64
	CorrectVerdicts float64 // fraction of trials with the right answer
}

// NoiseResult is the worker-noise robustness sweep.
type NoiseResult struct {
	Rows []NoiseRow
}

// String renders the table.
func (r *NoiseResult) String() string {
	t := stats.NewTable("worker slip rate", "Group-Coverage #HITs", "correct verdicts")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*row.SlipRate),
			fmt.Sprintf("%.1f", row.HITs), fmt.Sprintf("%.2f", row.CorrectVerdicts))
	}
	return "Extension: robustness to worker noise (FERET slice, tau=n=50, 3-way majority vote)\n" + t.String()
}

// RunNoiseSweep audits the FERET slice through crowds of increasingly
// unreliable workers (slip rates 0-35 % under 3-way majority vote).
// The paper observed 1.36 % raw worker error with no flipped
// verdicts; the sweep shows how far that safety margin extends and
// where majority voting finally breaks down.
func RunNoiseSweep(seed int64, trials int) (*NoiseResult, error) {
	if trials <= 0 {
		trials = 1
	}
	preset := dataset.FERETTable1
	res := &NoiseResult{}
	for si, slip := range []float64{0, 0.02, 0.05, 0.10, 0.20, 0.35} {
		var hits []float64
		correct := 0
		for trial := 0; trial < trials; trial++ {
			trialSeed := seed + int64(100*si+trial)
			rng := rand.New(rand.NewSource(trialSeed))
			d := preset.Generate(rng)
			g := dataset.Female(d.Schema())
			cfg := crowd.DefaultConfig(trialSeed + 3)
			cfg.Profile = crowd.PoolProfile{Size: 30, SlipMin: slip, SlipMax: slip, PerceptNoise: 15}
			platform, err := crowd.NewPlatform(d, cfg)
			if err != nil {
				return nil, err
			}
			r, err := core.GroupCoverage(platform, d.IDs(), 50, 50, g)
			if err != nil {
				return nil, err
			}
			hits = append(hits, float64(platform.Ledger().TotalHITs()))
			if r.Covered { // ground truth: 215 females >= 50
				correct++
			}
		}
		res.Rows = append(res.Rows, NoiseRow{
			SlipRate:        slip,
			HITs:            stats.Summarize(hits).Mean,
			CorrectVerdicts: float64(correct) / float64(trials),
		})
	}
	return res, nil
}
