package crowd

// Edge-case suite for the pre-task quality controls: qualification-test
// and rating-filter validation, exact-threshold boundary semantics, the
// determinism of Administer under a fixed seed, and the RNG draw-order
// pin on the single shared copy of the slip-corruption logic.

import (
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/imagegen"
	"imagecvg/internal/pattern"
)

func qualitySchema(t *testing.T) *pattern.Schema {
	t.Helper()
	return pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1", "2"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
	)
}

func qualityRenderer(t *testing.T) *imagegen.Renderer {
	t.Helper()
	r, err := imagegen.NewRenderer(qualitySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// perfectWorker never misperceives and never slips.
func perfectWorker(seed int64) *Worker {
	return &Worker{ID: 0, rng: rand.New(rand.NewSource(seed))}
}

// slippingWorker slips on every answer (SlipRate 1) but perceives
// perfectly, so every test question has exactly one corrupted attribute.
func slippingWorker(seed int64) *Worker {
	return &Worker{ID: 1, SlipRate: 1, rng: rand.New(rand.NewSource(seed))}
}

func TestQualificationTestValidation(t *testing.T) {
	r := qualityRenderer(t)
	rng := rand.New(rand.NewSource(1))
	bad := []*QualificationTest{
		{Questions: 0, PassFraction: 0.8},
		{Questions: -3, PassFraction: 0.8},
		{Questions: 5, PassFraction: -0.1},
		{Questions: 5, PassFraction: 1.01},
	}
	for _, q := range bad {
		if _, err := q.Administer(perfectWorker(1), r, rng); err == nil {
			t.Errorf("Administer(%+v): want validation error", q)
		}
	}
	// Boundary configurations are valid: PassFraction 0 and 1 are in
	// range.
	for _, q := range []*QualificationTest{
		{Questions: 1, PassFraction: 0},
		{Questions: 1, PassFraction: 1},
	} {
		if _, err := q.Administer(perfectWorker(2), r, rng); err != nil {
			t.Errorf("Administer(%+v): unexpected error %v", q, err)
		}
	}
}

// TestQualificationThresholdBoundary pins the >= semantics of the pass
// rule: a perfect worker meets PassFraction 1.0 exactly (correct ==
// Questions), and an always-slipping worker still meets PassFraction 0
// exactly (correct 0 >= 0).
func TestQualificationThresholdBoundary(t *testing.T) {
	r := qualityRenderer(t)
	q := &QualificationTest{Questions: 8, PassFraction: 1.0}
	pass, err := q.Administer(perfectWorker(3), r, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Error("perfect worker must pass at PassFraction 1.0 (>= boundary)")
	}

	q = &QualificationTest{Questions: 8, PassFraction: 0}
	pass, err = q.Administer(slippingWorker(4), r, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Error("always-slipping worker must pass at PassFraction 0 (0 >= 0)")
	}

	// A slip corrupts exactly one attribute to a different value, so an
	// always-slipping worker answers every question wrong: any positive
	// threshold fails them.
	q = &QualificationTest{Questions: 8, PassFraction: 0.125}
	pass, err = q.Administer(slippingWorker(5), r, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Error("always-slipping worker must fail any positive threshold")
	}
}

// TestAdministerDeterministic pins reproducibility: identical worker
// and test RNG seeds yield the identical outcome, because the test
// draws only from the two streams it is handed.
func TestAdministerDeterministic(t *testing.T) {
	r := qualityRenderer(t)
	q := DefaultQualification()
	run := func() bool {
		w := &Worker{ID: 0, SlipRate: 0.5, PerceptNoise: 20, rng: rand.New(rand.NewSource(77))}
		pass, err := q.Administer(w, r, rand.New(rand.NewSource(78)))
		if err != nil {
			t.Fatal(err)
		}
		return pass
	}
	first := run()
	for i := 0; i < 5; i++ {
		if run() != first {
			t.Fatalf("rep %d: Administer with fixed seeds diverged", i)
		}
	}
}

func TestRatingFilterExactThresholds(t *testing.T) {
	f := &RatingFilter{MinApprovalPercent: 95, MinApprovedHITs: 100}
	cases := []struct {
		percent float64
		hits    int
		want    bool
	}{
		{95, 100, true}, // both exactly at threshold: >= admits
		{94.999, 100, false},
		{95, 99, false},
		{96, 101, true},
		{0, 0, false},
	}
	for _, c := range cases {
		w := &Worker{ApprovalPercent: c.percent, ApprovedHITs: c.hits}
		if got := f.Eligible(w); got != c.want {
			t.Errorf("Eligible(%.3f%%, %d HITs) = %v, want %v", c.percent, c.hits, got, c.want)
		}
	}
	// The zero filter admits everyone: 0 >= 0 on both axes.
	zero := &RatingFilter{}
	if !zero.Eligible(&Worker{}) {
		t.Error("zero filter must admit the zero worker (>= boundary)")
	}
}

// TestCorruptOneAttrRNGDrawOrder is the regression pin for unifying the
// two corruption helpers into corruptOneAttrInPlace: the function must
// consume exactly one Intn(len) draw picking the attribute, plus one
// Intn(c-1) draw only when that attribute's cardinality admits a
// different value. A twin RNG replays the documented draw sequence by
// hand; both the corrupted labels and the RNGs' next outputs must
// match, so any change to the draw order breaks this test before it
// breaks the conformance goldens.
func TestCorruptOneAttrRNGDrawOrder(t *testing.T) {
	s := qualitySchema(t)
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		labels := []int{rngA.Intn(3), rngA.Intn(2)}
		rngB.Intn(3)
		rngB.Intn(2)
		want := append([]int(nil), labels...)

		corruptOneAttrInPlace(labels, s, rngA)

		// Twin replay of the pinned draw sequence: one draw picks the
		// attribute, one more picks the replacement value (every valid
		// schema attribute has cardinality >= 2).
		attr := rngB.Intn(len(want))
		c := s.Attr(attr).Cardinality()
		if c >= 2 {
			v := rngB.Intn(c - 1)
			if v >= want[attr] {
				v++
			}
			want[attr] = v
		}

		if !reflect.DeepEqual(labels, want) {
			t.Fatalf("iter %d: corruption diverged from pinned draw order: got %v, want %v", i, labels, want)
		}
		if a, b := rngA.Int63(), rngB.Int63(); a != b {
			t.Fatalf("iter %d: RNG streams diverged after corruption (%d vs %d): draw count changed", i, a, b)
		}
	}
}
