package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table —
// the format the benchmark harness prints for each reproduced paper
// table — or as CSV.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// trimFloat renders floats with two decimals, dropping trailing zeros
// after the decimal point ("1.00" -> "1", "0.50" -> "0.5").
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// String renders the aligned text table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
