module imagecvg

go 1.24
