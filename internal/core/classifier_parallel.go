package core

import (
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the batched round engine behind
// ClassifierOptions.Parallelism / Lockstep — Algorithm 4/5 with every
// phase posting whole rounds of HITs instead of one at a time:
//
//   - the precision sample (line 2-3) becomes a single point-query
//     round over the same objects, in the same order, the sequential
//     loop would draw (both engines share the Rng.Perm consumption);
//   - the Label phase (Algorithm 5) issues bounded rounds of point
//     queries over the unsampled predicted objects and commits the
//     answers in predicted-set order with a deterministic early stop:
//     each round posts exactly max(1, tau - verified) queries — the
//     confirmations still missing — and the walk stops at the first
//     index where verified >= tau, discarding later in-flight answers;
//   - the Partition phase (Algorithm 5) walks the divide-and-conquer
//     tree level-by-level, issuing each frontier as one reverse-set
//     round and committing the answers in frontier order with the
//     sequential engine's sibling inference and early stop intact (an
//     inferred sibling's in-flight answer is discarded, and a commit
//     walk that reaches stopAt discards the rest of its level).
//
// Round composition is a pure function of previously committed answers
// — never of Parallelism — so the engine is level-synchronous by
// construction: with Lockstep the rounds commit through the canonical
// lockstep scheduler as one BatchOracle batch in issue order, making
// the full ClassifierResult bit-identical at every Parallelism value
// even through order-dependent oracles like the crowd Platform.
// Without Lockstep the rounds fan out across the free-running bounded
// pool, which overlaps per-HIT round-trips the same way but lets an
// order-dependent oracle consume its state in arrival order.
//
// Determinism vs cost: the commit walks replicate the sequential
// loops' visit order exactly, so Strategy, Count, Exact and the task
// breakdown equal the sequential engine's for order-independent
// oracles — Tasks counts committed queries only. The price of posting
// rounds speculatively is over-issue: answers the early stop or the
// sibling inference discards were still real HITs (the same tradeoff
// GroupCoverageRounds documents), bounded per phase by one round.

// classifierEngine dispatches one phase round at a time through
// runAuditPool, one pool task per in-flight query: under Lockstep the
// round commits as one canonical BatchOracle batch, otherwise the
// queries fan out across the free-running bounded pool.
type classifierEngine struct {
	o    Oracle
	opts MultipleOptions
}

// pointRound posts one round of point queries and returns the labels
// positionally.
func (e *classifierEngine) pointRound(ids []dataset.ObjectID) ([][]int, error) {
	labels := make([][]int, len(ids))
	err := runAuditPool(e.o, e.opts, nil, len(ids), func(i int, audit Oracle) error {
		var qerr error
		labels[i], qerr = audit.PointQuery(ids[i])
		return qerr
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// reverseRound posts one round of reverse set queries ("is anyone here
// NOT in g?") and returns the answers positionally.
func (e *classifierEngine) reverseRound(sets [][]dataset.ObjectID, g pattern.Group) ([]bool, error) {
	answers := make([]bool, len(sets))
	err := runAuditPool(e.o, e.opts, nil, len(sets), func(i int, audit Oracle) error {
		var qerr error
		answers[i], qerr = audit.ReverseSetQuery(sets[i], g)
		return qerr
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

// classifierCoverageParallel is Algorithm 4 on the batched round
// engine; ClassifierCoverage dispatches here when opts.Lockstep or
// opts.Parallelism > 1 (inputs already validated, defaults resolved,
// predicted non-empty).
func classifierCoverageParallel(o Oracle, ids, predicted []dataset.ObjectID, inPredicted map[dataset.ObjectID]bool, n, tau int, g pattern.Group, opts ClassifierOptions, res ClassifierResult) (ClassifierResult, error) {
	e := &classifierEngine{o: o, opts: MultipleOptions{
		Parallelism: opts.Parallelism,
		Lockstep:    opts.Lockstep,
	}}

	// Line 2-3: estimate precision on a sample of G, posted as one
	// point-query round over exactly the objects — in exactly the order
	// — the sequential loop would draw.
	sampleSize := sampleBudget(opts.SampleFraction, len(predicted))
	sample := make([]dataset.ObjectID, 0, sampleSize)
	for _, idx := range opts.Rng.Perm(len(predicted))[:sampleSize] {
		sample = append(sample, predicted[idx])
	}
	labels, err := e.pointRound(sample)
	if err != nil {
		return res, err
	}
	sampled := make(map[dataset.ObjectID]bool, sampleSize)
	truePos := 0
	for i, id := range sample {
		res.SampleTasks++
		sampled[id] = true
		if g.Matches(labels[i]) {
			truePos++
		}
	}
	res.EstFPRate = 1 - float64(truePos)/float64(sampleSize)

	// Line 4-5: eliminate false positives, one batched phase per
	// strategy.
	verified := 0
	var exactClean bool
	if res.EstFPRate < opts.FPRateThreshold {
		res.Strategy = StrategyPartition
		confirmed, drained, tasks, err := e.partitionCleanRounds(predicted, n, tau, g)
		if err != nil {
			return res, err
		}
		res.CleanupTasks = tasks
		verified = confirmed
		exactClean = drained
	} else {
		res.Strategy = StrategyLabel
		var tasks int
		verified, exactClean, tasks, err = e.labelCleanRounds(predicted, sampled, truePos, tau, g)
		if err != nil {
			return res, err
		}
		res.CleanupTasks = tasks
	}

	return classifierFinish(o, ids, inPredicted, n, tau, verified, exactClean, g, res)
}

// labelCleanRounds is the Label function of Algorithm 5 in bounded
// rounds: it point-labels the unsampled predicted objects, reusing the
// sample's labels, in rounds of max(1, tau - verified) queries — the
// number of confirmations still missing when the round is posted — and
// commits the answers in predicted-set order. The walk mirrors the
// sequential loop exactly: it stops at the first index where
// verified >= tau (marking the count a bound, not exact) and discards
// any in-flight answers past the stop, so the committed task count is
// both width-independent and equal to the sequential engine's.
func (e *classifierEngine) labelCleanRounds(predicted []dataset.ObjectID, sampled map[dataset.ObjectID]bool, truePos, tau int, g pattern.Group) (verified int, exactClean bool, tasks int, err error) {
	verified = truePos
	exactClean = true
	var round [][]int // uncommitted answers of the current round
	var roundIDs []dataset.ObjectID
	pos := 0 // next uncommitted answer within the round
	for i := 0; i < len(predicted); i++ {
		if verified >= tau {
			exactClean = false // stopped early: count is a bound
			return verified, exactClean, tasks, nil
		}
		id := predicted[i]
		if sampled[id] {
			continue
		}
		if pos >= len(roundIDs) {
			// Post the next round: the next max(1, tau - verified)
			// unsampled objects from position i onward.
			want := tau - verified
			if want < 1 {
				want = 1
			}
			roundIDs = roundIDs[:0]
			for j := i; j < len(predicted) && len(roundIDs) < want; j++ {
				if !sampled[predicted[j]] {
					roundIDs = append(roundIDs, predicted[j])
				}
			}
			round, err = e.pointRound(roundIDs)
			if err != nil {
				return verified, exactClean, tasks, err
			}
			pos = 0
		}
		labels := round[pos]
		pos++
		tasks++
		if g.Matches(labels) {
			verified++
		}
	}
	return verified, exactClean, tasks, nil
}

// partitionCleanRounds is the Partition function of Algorithm 5 in
// level rounds: each frontier of the divide-and-conquer tree posts as
// one reverse-set round, and the answers commit in frontier order with
// partitionClean's exact semantics — a "no" confirms the range and may
// infer a task-free "yes" on its right sibling (whose in-flight answer
// is then discarded), a committed walk reaching stopAt returns
// immediately discarding the rest of its level, and a full drain makes
// the confirmed count exact. Frontier composition depends only on
// committed answers, never on the pool width.
func (e *classifierEngine) partitionCleanRounds(predicted []dataset.ObjectID, n, stopAt int, g pattern.Group) (confirmed int, drained bool, tasks int, err error) {
	if len(predicted) == 0 {
		return 0, true, 0, nil
	}
	frontier := make([]*node, 0, (len(predicted)+n-1)/n)
	for i := 0; i < len(predicted); i += n {
		end := i + n
		if end > len(predicted) {
			end = len(predicted)
		}
		frontier = append(frontier, &node{b: i, e: end})
	}
	for len(frontier) > 0 {
		sets := make([][]dataset.ObjectID, len(frontier))
		for i, t := range frontier {
			sets[i] = predicted[t.b:t.e]
		}
		answers, err := e.reverseRound(sets, g)
		if err != nil {
			return confirmed, false, tasks, err
		}

		var next []*node
		inferred := make(map[*node]bool)
		for idx, t := range frontier {
			if inferred[t] {
				continue // answered for free by its left sibling
			}
			hasFP := answers[idx]
			tasks++

		process:
			if !hasFP {
				// The whole range is verified members of g.
				confirmed += t.size()
				if confirmed >= stopAt {
					return confirmed, false, tasks, nil
				}
				// Sibling inference, mirrored from partitionClean: our
				// parent contains a false positive and we contain none,
				// so the right sibling must.
				if t.parent != nil && t == t.parent.left {
					sib := t.parent.right
					if sib != nil && !inferred[sib] {
						inferred[sib] = true
						t = sib
						hasFP = true
						goto process
					}
				}
				continue
			}
			if t.size() == 1 {
				continue // isolated false positive: discard
			}
			mid := (t.b + t.e) / 2
			t.left = &node{b: t.b, e: mid, parent: t}
			t.right = &node{b: mid, e: t.e, parent: t}
			next = append(next, t.left, t.right)
		}
		frontier = next
	}
	return confirmed, true, tasks, nil
}
