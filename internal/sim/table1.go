package sim

import (
	"fmt"
	"math"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/stats"
)

// Table1Params configures the live-crowd reproduction.
type Table1Params struct {
	// Preset is the dataset composition (the paper's FERET slice).
	Preset dataset.Preset
	// Tau and N are the coverage threshold and set-size bound.
	Tau, SetSize int
	// PoolSize is the number of simulated workers.
	PoolSize int
}

// DefaultTable1Params mirrors the paper: FERET with 215 females and
// 1307 males, tau = n = 50.
func DefaultTable1Params() Table1Params {
	return Table1Params{Preset: dataset.FERETTable1, Tau: 50, SetSize: 50, PoolSize: 40}
}

// Table1Row is one quality-control configuration's outcome.
type Table1Row struct {
	QualityControl    string
	GroupCoverageHITs float64
	BaseCoverageHITs  float64
	UpperBoundHITs    int
	Covered           bool
	TotalCostUSD      float64
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Params Table1Params
	Rows   []Table1Row
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	t := stats.NewTable("quality control", "Group-Coverage #HITs", "Base-Coverage #HITs", "upper-bound #HITs", "covered", "cost ($)")
	for _, row := range r.Rows {
		t.AddRow(row.QualityControl, row.GroupCoverageHITs, row.BaseCoverageHITs,
			row.UpperBoundHITs, row.Covered, row.TotalCostUSD)
	}
	return fmt.Sprintf("Table 1: %s, tau=%d, n=%d\n%s",
		r.Params.Preset, r.Params.Tau, r.Params.SetSize, t.String())
}

// table1Settings are the paper's three quality-control configurations.
func table1Settings() []struct {
	name          string
	qualification *crowd.QualificationTest
	rating        *crowd.RatingFilter
} {
	return []struct {
		name          string
		qualification *crowd.QualificationTest
		rating        *crowd.RatingFilter
	}{
		{"Majority Vote", nil, nil},
		{"Qualification Test, Majority Vote", crowd.DefaultQualification(), nil},
		{"Rating (>=95%, >=100 HITs), Majority Vote", nil, crowd.DefaultRating()},
	}
}

// table1Obs is one crowd deployment's outcome.
type table1Obs struct {
	gcHITs, baseHITs, cost float64
	covered                bool
}

// RunTable1 reproduces Table 1: female-coverage identification on the
// FERET slice through the full crowd simulator (imperfect workers,
// 3-way majority vote, fixed pricing), one row per quality-control
// setting, averaged over o.Trials independent crowd deployments
// scheduled on the trial-runner.
func RunTable1(p Table1Params, o Options) (*Table1Result, error) {
	settings := table1Settings()
	cfgs := make([]experiment.Config, len(settings))
	for si, setting := range settings {
		cfgs[si] = o.cell("table1/"+setting.name, int64(1000*si))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (table1Obs, error) {
		setting := settings[cell]
		d := p.Preset.Generate(t.Rng)
		g := dataset.Female(d.Schema())

		cfg := crowd.DefaultConfig(t.Seed + 7)
		cfg.Profile = crowd.DefaultProfile(p.PoolSize)
		cfg.Qualification = setting.qualification
		cfg.Rating = setting.rating
		platform, err := crowd.NewPlatform(d, cfg)
		if err != nil {
			return table1Obs{}, err
		}
		gc, err := core.GroupCoverage(platform, d.IDs(), p.SetSize, p.Tau, g)
		if err != nil {
			return table1Obs{}, err
		}
		obs := table1Obs{
			gcHITs:  float64(platform.Ledger().TotalHITs()),
			cost:    platform.Ledger().TotalCost(),
			covered: gc.Covered,
		}

		basePlatform, err := crowd.NewPlatform(d, cfg)
		if err != nil {
			return table1Obs{}, err
		}
		if _, err := core.BaseCoverage(basePlatform, d.IDs(), p.Tau, g); err != nil {
			return table1Obs{}, err
		}
		obs.baseHITs = float64(basePlatform.Ledger().TotalHITs())
		return obs, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{Params: p}
	for si, setting := range settings {
		r := results[si]
		res.Rows = append(res.Rows, Table1Row{
			QualityControl:    setting.name,
			GroupCoverageHITs: r.Mean(func(v table1Obs) float64 { return v.gcHITs }),
			BaseCoverageHITs:  r.Mean(func(v table1Obs) float64 { return v.baseHITs }),
			UpperBoundHITs:    int(math.Round(core.UpperBoundHITs(p.Preset.Size(), p.SetSize, p.Tau))),
			Covered:           r.All(func(v table1Obs) bool { return v.covered }),
			TotalCostUSD:      r.Mean(func(v table1Obs) float64 { return v.cost }),
		})
	}
	return res, nil
}
