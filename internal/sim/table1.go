package sim

import (
	"fmt"
	"math"
	"math/rand"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/stats"
)

// Table1Params configures the live-crowd reproduction.
type Table1Params struct {
	// Preset is the dataset composition (the paper's FERET slice).
	Preset dataset.Preset
	// Tau and N are the coverage threshold and set-size bound.
	Tau, SetSize int
	// PoolSize is the number of simulated workers.
	PoolSize int
}

// DefaultTable1Params mirrors the paper: FERET with 215 females and
// 1307 males, tau = n = 50.
func DefaultTable1Params() Table1Params {
	return Table1Params{Preset: dataset.FERETTable1, Tau: 50, SetSize: 50, PoolSize: 40}
}

// Table1Row is one quality-control configuration's outcome.
type Table1Row struct {
	QualityControl    string
	GroupCoverageHITs float64
	BaseCoverageHITs  float64
	UpperBoundHITs    int
	Covered           bool
	TotalCostUSD      float64
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Params Table1Params
	Rows   []Table1Row
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	t := stats.NewTable("quality control", "Group-Coverage #HITs", "Base-Coverage #HITs", "upper-bound #HITs", "covered", "cost ($)")
	for _, row := range r.Rows {
		t.AddRow(row.QualityControl, row.GroupCoverageHITs, row.BaseCoverageHITs,
			row.UpperBoundHITs, row.Covered, row.TotalCostUSD)
	}
	return fmt.Sprintf("Table 1: %s, tau=%d, n=%d\n%s",
		r.Params.Preset, r.Params.Tau, r.Params.SetSize, t.String())
}

// table1Settings are the paper's three quality-control configurations.
func table1Settings() []struct {
	name          string
	qualification *crowd.QualificationTest
	rating        *crowd.RatingFilter
} {
	return []struct {
		name          string
		qualification *crowd.QualificationTest
		rating        *crowd.RatingFilter
	}{
		{"Majority Vote", nil, nil},
		{"Qualification Test, Majority Vote", crowd.DefaultQualification(), nil},
		{"Rating (>=95%, >=100 HITs), Majority Vote", nil, crowd.DefaultRating()},
	}
}

// RunTable1 reproduces Table 1: female-coverage identification on the
// FERET slice through the full crowd simulator (imperfect workers,
// 3-way majority vote, fixed pricing), one row per quality-control
// setting, averaged over trials independent crowd deployments.
func RunTable1(p Table1Params, seed int64, trials int) (*Table1Result, error) {
	if trials <= 0 {
		trials = 1
	}
	res := &Table1Result{Params: p}
	for si, setting := range table1Settings() {
		var gcHITs, baseHITs, cost []float64
		covered := true
		for trial := 0; trial < trials; trial++ {
			trialSeed := seed + int64(1000*si+trial)
			rng := rand.New(rand.NewSource(trialSeed))
			d := p.Preset.Generate(rng)
			g := dataset.Female(d.Schema())

			cfg := crowd.DefaultConfig(trialSeed + 7)
			cfg.Profile = crowd.DefaultProfile(p.PoolSize)
			cfg.Qualification = setting.qualification
			cfg.Rating = setting.rating
			platform, err := crowd.NewPlatform(d, cfg)
			if err != nil {
				return nil, err
			}
			gc, err := core.GroupCoverage(platform, d.IDs(), p.SetSize, p.Tau, g)
			if err != nil {
				return nil, err
			}
			gcHITs = append(gcHITs, float64(platform.Ledger().TotalHITs()))
			cost = append(cost, platform.Ledger().TotalCost())
			covered = covered && gc.Covered

			basePlatform, err := crowd.NewPlatform(d, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := core.BaseCoverage(basePlatform, d.IDs(), p.Tau, g); err != nil {
				return nil, err
			}
			baseHITs = append(baseHITs, float64(basePlatform.Ledger().TotalHITs()))
		}
		res.Rows = append(res.Rows, Table1Row{
			QualityControl:    setting.name,
			GroupCoverageHITs: stats.Summarize(gcHITs).Mean,
			BaseCoverageHITs:  stats.Summarize(baseHITs).Mean,
			UpperBoundHITs:    int(math.Round(core.UpperBoundHITs(p.Preset.Size(), p.SetSize, p.Tau))),
			Covered:           covered,
			TotalCostUSD:      stats.Summarize(cost).Mean,
		})
	}
	return res, nil
}
