package a

// The rule applies in test files too: tests exercise the wrapped
// middleware paths.
func assertBudget(err error) bool {
	return err == ErrBudgetExhausted // want `use errors.Is`
}
