package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the checkpoint/resume layer of the audit service: a
// RoundJournal persists every committed oracle round, and the
// JournalingOracle middleware records live rounds and replays journaled
// ones, so a crashed or killed audit resumes without re-posting — or
// re-paying — a single committed HIT. See the package comment
// ("Checkpoint, resume, and cancellation") for the contract; the file
// codec lives in internal/journal.

// Round-outcome kinds persisted in RoundRecord.ErrKind. Only outcomes
// that are deterministic facts about the committed round are
// journaled: a fully answered round, a budget exhaustion (the governor
// refused a deterministic suffix), or a transient failure (the round's
// committed prefix is real even though the rest must be re-posted).
// Hard errors and cancellations are never journaled — those rounds did
// not commit, and a resumed run should attempt them live.
const (
	roundErrNone      = ""
	roundErrBudget    = "budget"
	roundErrTransient = "transient"
)

// RoundRecord is one committed oracle round: the checkpoint unit of an
// audit. Under Lockstep every batch call the audit makes — the
// sampling round, each canonical lockstep round's set and point
// batches, and the single-query rounds of sequential phases — is one
// record, so the record sequence is a pure function of committed
// answers and replays exactly. All fields are JSON-serializable for
// the file codec in internal/journal.
type RoundRecord struct {
	// Round is the record's index in the journal, counted from 0.
	Round int `json:"round"`
	// Sets and SetAnswers carry a set/reverse-set round (answers are
	// positional and may be a committed prefix when ErrKind is set).
	Sets       []SetRequest `json:"sets,omitempty"`
	SetAnswers []bool       `json:"set_answers,omitempty"`
	// Points and PointAnswers carry a point-query round.
	Points       []dataset.ObjectID `json:"points,omitempty"`
	PointAnswers [][]int            `json:"point_answers,omitempty"`
	// ErrKind records how the round ended: "" (fully committed),
	// "budget" (ErrBudgetExhausted past the answered prefix) or
	// "transient" (ErrTransient past the answered prefix).
	ErrKind string `json:"err,omitempty"`
	// Spent snapshots the budget governor's ledger after the round
	// (zero without a governor); replay restores it so paid HITs are
	// never re-charged.
	Spent BudgetSpent `json:"spent"`
}

// IsPointRound reports whether the record carries a point round (an
// empty round never journals, so a record is exactly one kind).
func (r RoundRecord) IsPointRound() bool { return r.Points != nil }

// RoundJournal persists committed rounds. Append is called under the
// journaling middleware's round lock — sequentially, after the round's
// answers are in hand — and must make the record durable before
// returning (the file codec fsyncs per append). An Append error fails
// the audit loudly: continuing would commit paid HITs that a crash
// could no longer recover.
type RoundJournal interface {
	Append(RoundRecord) error
}

// ErrJournalMismatch is returned when a replayed run issues a round
// that differs from the journaled one: the journal belongs to a
// different audit configuration (dataset, seed, tau, parallelism mode,
// oracle stack) and silently replaying it would fabricate answers.
var ErrJournalMismatch = errors.New("core: journal replay mismatch")

// JournalingOracle is the checkpoint/resume middleware. Wrapped around
// the top of an oracle stack (above the budget governor, below a
// cache) it records every committed round to the journal, and — when
// constructed with the records of a previous run — answers those
// rounds by replay without touching the inner oracle, restoring the
// governor's ledger from each record's snapshot, then switches live.
//
// Every Oracle and BatchOracle method funnels through the same
// one-round-per-batch path under one mutex, so rounds serialize and
// each record hits the journal before the next round can commit;
// single queries journal as one-element rounds. Replay is only
// resume-safe for deterministic round sequences — under Lockstep, or
// for single-task sequential audits.
type JournalingOracle struct {
	inner   Oracle
	journal RoundJournal
	gov     *BudgetedOracle

	mu         sync.Mutex
	ctx        context.Context
	round      int
	replay     []RoundRecord
	replayed   int
	batchWidth int
}

// NewJournalingOracle wraps inner with the journaling middleware.
// journal may be nil (replay without recording); replay may be nil (a
// fresh run). gov, when non-nil, must be the budget governor inside
// inner's stack: live rounds snapshot its spend into each record and
// replayed rounds restore it.
func NewJournalingOracle(inner Oracle, journal RoundJournal, replay []RoundRecord, gov *BudgetedOracle) *JournalingOracle {
	return &JournalingOracle{
		inner:      inner,
		journal:    journal,
		gov:        gov,
		ctx:        context.Background(),
		replay:     replay,
		batchWidth: 1,
	}
}

// SetContext installs the cancellation context checked before every
// round; nil restores context.Background(). A cancelled context fails
// the next round before it reaches the inner oracle, so a killed job
// never half-posts a round.
func (j *JournalingOracle) SetContext(ctx context.Context) *JournalingOracle {
	if ctx == nil {
		ctx = context.Background()
	}
	j.mu.Lock()
	j.ctx = ctx
	j.mu.Unlock()
	return j
}

// Replayed returns how many rounds were answered from the journal.
func (j *JournalingOracle) Replayed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Rounds returns the total rounds committed so far, replayed included.
func (j *JournalingOracle) Rounds() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.round
}

// withBatchParallelism widens the pool used to lift a non-batching
// inner oracle; AsBatchOracle propagates the caller's width here.
func (j *JournalingOracle) withBatchParallelism(parallelism int) *JournalingOracle {
	j.mu.Lock()
	defer j.mu.Unlock()
	if parallelism > j.batchWidth {
		j.batchWidth = parallelism
	}
	return j
}

// encodeRoundErr maps a round's outcome to its journaled kind;
// replayable is false for outcomes that must not be journaled (hard
// errors, cancellation).
func encodeRoundErr(err error) (kind string, replayable bool) {
	switch {
	case err == nil:
		return roundErrNone, true
	case errors.Is(err, ErrBudgetExhausted):
		return roundErrBudget, true
	case errors.Is(err, ErrTransient):
		return roundErrTransient, true
	default:
		return "", false
	}
}

// decodeRoundErr is encodeRoundErr's inverse for replay.
func decodeRoundErr(kind string) error {
	switch kind {
	case roundErrNone:
		return nil
	case roundErrBudget:
		return ErrBudgetExhausted
	case roundErrTransient:
		return ErrTransient
	default:
		return fmt.Errorf("%w: unknown journaled outcome %q", ErrJournalMismatch, kind)
	}
}

// nextReplay returns the pending replay record, if any. Callers hold
// j.mu.
func (j *JournalingOracle) nextReplay() (RoundRecord, bool) {
	if j.replayed < len(j.replay) {
		return j.replay[j.replayed], true
	}
	return RoundRecord{}, false
}

// consumeReplay advances past one replayed record and restores the
// governor's ledger from its snapshot — the paid-HIT-never-recharged
// rule: replayed rounds charge nothing, and the governor ends exactly
// where the interrupted run left it. Callers hold j.mu.
func (j *JournalingOracle) consumeReplay(rec RoundRecord) {
	if j.gov != nil {
		j.gov.restoreSpent(rec.Spent)
	}
	j.replayed++
	j.round++
}

// record journals one live round. Outcomes that are not replayable
// pass through unjournaled; a journal append failure overrides the
// round's own outcome — the round committed to the crowd but is no
// longer recoverable, and that must fail loudly. Callers hold j.mu.
func (j *JournalingOracle) record(rec RoundRecord, err error) error {
	kind, replayable := encodeRoundErr(err)
	if !replayable {
		return err
	}
	rec.Round = j.round
	rec.ErrKind = kind
	if j.gov != nil {
		rec.Spent = j.gov.Spent()
	}
	if j.journal != nil {
		if aerr := j.journal.Append(rec); aerr != nil {
			return fmt.Errorf("core: journal append after committed round %d: %w", j.round, aerr)
		}
	}
	j.round++
	return err
}

// SetQueryBatch implements BatchOracle: one committed round per call,
// replayed from the journal while records remain, recorded otherwise.
func (j *JournalingOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	if rec, ok := j.nextReplay(); ok {
		if rec.IsPointRound() || !setRequestsEqual(rec.Sets, reqs) {
			return nil, fmt.Errorf("%w: round %d issued a different set round than the journal recorded", ErrJournalMismatch, j.round)
		}
		j.consumeReplay(rec)
		return append([]bool(nil), rec.SetAnswers...), decodeRoundErr(rec.ErrKind)
	}
	answers, err := AsBatchOracle(j.inner, j.batchWidth).SetQueryBatch(reqs)
	err = j.record(RoundRecord{
		Sets:       cloneSetRequests(reqs),
		SetAnswers: append([]bool{}, answers...),
	}, err)
	return answers, err
}

// PointQueryBatch implements BatchOracle; see SetQueryBatch.
func (j *JournalingOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	if rec, ok := j.nextReplay(); ok {
		if !rec.IsPointRound() || !objectIDsEqual(rec.Points, ids) {
			return nil, fmt.Errorf("%w: round %d issued a different point round than the journal recorded", ErrJournalMismatch, j.round)
		}
		j.consumeReplay(rec)
		return clonePointAnswers(rec.PointAnswers), decodeRoundErr(rec.ErrKind)
	}
	labels, err := AsBatchOracle(j.inner, j.batchWidth).PointQueryBatch(ids)
	err = j.record(RoundRecord{
		Points:       append([]dataset.ObjectID{}, ids...),
		PointAnswers: clonePointAnswers(labels),
	}, err)
	return labels, err
}

// SetQuery implements Oracle as a one-element round, so sequential
// audit phases checkpoint too.
func (j *JournalingOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := j.SetQueryBatch([]SetRequest{{IDs: ids, Group: g}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

// ReverseSetQuery implements Oracle; see SetQuery.
func (j *JournalingOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := j.SetQueryBatch([]SetRequest{{IDs: ids, Group: g, Reverse: true}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

// PointQuery implements Oracle; see SetQuery.
func (j *JournalingOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	labels, err := j.PointQueryBatch([]dataset.ObjectID{id})
	if err != nil {
		return nil, err
	}
	return labels[0], nil
}

// cloneSetRequests deep-copies a round's requests into the record, so
// a caller reusing its request slices cannot corrupt the journal.
func cloneSetRequests(reqs []SetRequest) []SetRequest {
	out := make([]SetRequest, len(reqs))
	for i, req := range reqs {
		out[i] = SetRequest{
			IDs:     append([]dataset.ObjectID{}, req.IDs...),
			Group:   pattern.Group{Name: req.Group.Name, Members: clonePatterns(req.Group.Members)},
			Reverse: req.Reverse,
		}
	}
	return out
}

// clonePatterns deep-copies a group's member patterns.
func clonePatterns(ps []pattern.Pattern) []pattern.Pattern {
	out := make([]pattern.Pattern, len(ps))
	for i, p := range ps {
		out[i] = append(pattern.Pattern{}, p...)
	}
	return out
}

// clonePointAnswers deep-copies a point round's label vectors.
func clonePointAnswers(labels [][]int) [][]int {
	out := make([][]int, len(labels))
	for i, l := range labels {
		if l != nil {
			out[i] = append([]int{}, l...)
		}
	}
	return out
}

// setRequestsEqual compares rounds field by field (element-wise, so a
// JSON round-trip's nil-vs-empty differences cannot cause spurious
// mismatches).
func setRequestsEqual(a, b []SetRequest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Reverse != b[i].Reverse || a[i].Group.Name != b[i].Group.Name ||
			!objectIDsEqual(a[i].IDs, b[i].IDs) || !patternsEqual(a[i].Group.Members, b[i].Group.Members) {
			return false
		}
	}
	return true
}

// objectIDsEqual compares id slices element-wise.
func objectIDsEqual(a, b []dataset.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// patternsEqual compares pattern slices element-wise.
func patternsEqual(a, b []pattern.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}
