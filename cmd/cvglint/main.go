// Command cvglint mechanically enforces the determinism contract
// (internal/core/doc.go, "Static enforcement" section) with the
// analyzer suite in internal/lint: maprange, wallclock, globalrand,
// sentinelerr.
//
// It runs two ways:
//
//	cvglint ./...                    # standalone, loads via the go command
//	go vet -vettool=$(which cvglint) ./...   # vet driver protocol
//
// The vet integration speaks the unitchecker command-line protocol —
// -V=full for build caching, -flags for the flag handshake, and a
// JSON vet.cfg naming one compilation unit — reimplemented on the
// standard library so the tool builds without the x/tools module.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"imagecvg/internal/lint"
	"imagecvg/internal/lint/analysis"
	"imagecvg/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// Flag handshake: cvglint passes no flags through go vet.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runUnit(args[0])
	default:
		runStandalone(args)
	}
}

// printVersion answers -V=full with the content-hash form cmd/go
// expects from a devel tool: the hash keys vet's build cache, so a
// rebuilt cvglint invalidates cached vet results.
func printVersion() {
	name, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(name); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("cvglint version devel buildID=%x\n", h.Sum(nil))
}

// runStandalone loads packages through the go command and reports
// findings as file:line:col lines, exiting 1 if any.
func runStandalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvglint:", err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		diags := runSuite(pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			found = true
		}
	}
	if found {
		os.Exit(1)
	}
}

// vetConfig is the unitchecker JSON config a build system (go vet)
// hands the tool, one compilation unit per invocation.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single compilation unit described by cfgFile.
func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatal(fmt.Errorf("cannot decode vet config %s: %w", cfgFile, err))
	}
	// The vetx output is cvglint's (empty) fact file: the analyzers
	// are single-package, but go vet requires the output to exist to
	// cache the action.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: cvglint has no facts to compute.
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		GoVersion: cfg.GoVersion,
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if resolved, ok := cfg.ImportMap[path]; ok {
				path = resolved
			}
			return imp.Import(path)
		}),
	}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatal(err)
	}
	writeVetx()

	diags := runSuite(fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runSuite applies every analyzer to one package and returns the
// findings in file-position order.
func runSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range lint.Analyzers() {
		ds, err := analysis.Run(a, fset, files, pkg, info)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvglint:", err)
	os.Exit(1)
}
