package lint_test

import (
	"testing"

	"imagecvg/internal/lint"
	"imagecvg/internal/lint/analysistest"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SentinelErr,
		"sentinelerr/a", // local sentinels: ==, !=, switch, Is-method, suppression
		"sentinelerr/b", // cross-package selector references
	)
}
