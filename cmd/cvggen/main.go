// Command cvggen generates synthetic image-dataset files (JSON) for
// use with cvgrun: either one of the paper's published compositions or
// a custom gender composition.
//
// Usage:
//
//	cvggen -preset feret-table1 -out feret.json -seed 1
//	cvggen -n 10000 -minority 40 -out rare.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"imagecvg/internal/dataset"
)

func presets() map[string]dataset.Preset {
	return map[string]dataset.Preset{
		"feret-table1": dataset.FERETTable1,
		"feret-unique": dataset.FERETUnique,
		"utkface-200":  dataset.UTKFace200,
		"utkface-20":   dataset.UTKFace20,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("cvggen", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		preset   = fs.String("preset", "", "paper preset: feret-table1, feret-unique, utkface-200, utkface-20")
		n        = fs.Int("n", 10000, "dataset size (custom generation)")
		minority = fs.Int("minority", 50, "number of minority (female) objects (custom generation)")
		seed     = fs.Int64("seed", 1, "random seed")
		outPath  = fs.String("out", "", "output file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *outPath == "" {
		fmt.Fprintln(errOut, "cvggen: -out is required")
		return 2
	}
	rng := rand.New(rand.NewSource(*seed))

	var (
		d   *dataset.Dataset
		err error
	)
	if *preset != "" {
		p, ok := presets()[*preset]
		if !ok {
			fmt.Fprintf(errOut, "cvggen: unknown preset %q\n", *preset)
			return 2
		}
		d = p.Generate(rng)
		fmt.Fprintf(out, "generated %s: N=%d females=%d\n", p.Name, p.Size(), p.Females)
	} else {
		d, err = dataset.BinaryWithMinority(*n, *minority, rng)
		if err != nil {
			fmt.Fprintln(errOut, "cvggen:", err)
			return 1
		}
		fmt.Fprintf(out, "generated custom gender dataset: N=%d females=%d\n", *n, *minority)
	}
	if err := d.SaveJSON(*outPath); err != nil {
		fmt.Fprintln(errOut, "cvggen:", err)
		return 1
	}
	fmt.Fprintln(out, "wrote", *outPath)
	return 0
}
