package sim

import (
	"fmt"
	"math"
	"math/rand"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/pattern"
	"imagecvg/internal/stats"
)

// The budget-frontier harness regression-tests the paper's central
// tradeoff — audit accuracy against crowdsourcing spend — as a curve
// artifact in the style of the Figure 6/7 series: for every (N, tau)
// workload it calibrates the unbudgeted Multiple-Coverage cost, then
// re-audits under HIT caps at fractions of that cost and scores the
// partial verdicts against ground truth. Audits run on the lockstep
// engine unconditionally, because a budgeted audit's exhaustion point
// is engine-parallelism-invariant only under lockstep — which is
// exactly what lets the rendered artifact be golden-filed and compared
// at any -engine-parallelism.

// BudgetFrontierParams spans the budget-vs-accuracy grid.
type BudgetFrontierParams struct {
	// Ns and Taus span the workload grid.
	Ns, Taus []int
	// Fractions are the budget ladder, as fractions of each workload's
	// calibrated unbudgeted audit cost (1.0 reproduces the full audit).
	Fractions []float64
	// SetSize is the set-query bound n.
	SetSize int
	// MinorityCounts shapes each dataset (majority absorbs the rest),
	// audited as one group per value of a single 4-ary attribute.
	MinorityCounts []int
}

// DefaultBudgetFrontierParams keeps `-exp all` runs quick while still
// crossing two sizes, two thresholds and a four-step budget ladder.
func DefaultBudgetFrontierParams() BudgetFrontierParams {
	return BudgetFrontierParams{
		Ns:             []int{2_000, 8_000},
		Taus:           []int{20, 40},
		Fractions:      []float64{0.25, 0.5, 0.75, 1.0},
		SetSize:        50,
		MinorityCounts: []int{12, 8, 5},
	}
}

// BudgetFrontierRow is one (workload, budget) cell's outcome.
type BudgetFrontierRow struct {
	N, Tau int
	// Fraction of the calibrated cost and the resulting HIT cap.
	Fraction float64
	MaxHITs  int
	// Tasks is the mean committed task count (never above MaxHITs).
	Tasks float64
	// Settled is the mean fraction of groups with a definite verdict.
	Settled float64
	// Accuracy is the mean fraction of groups whose verdict is settled
	// AND matches ground truth (unsettled groups score zero).
	Accuracy float64
	// ExhaustedFrac is the fraction of trials that hit the cap.
	ExhaustedFrac float64
}

// BudgetFrontierResult is the grid outcome.
type BudgetFrontierResult struct {
	Params BudgetFrontierParams
	// Calibration holds each workload's unbudgeted task cost.
	Calibration map[[2]int]int
	Rows        []BudgetFrontierRow
}

// TotalTasks sums the mean committed task counts, for machine
// consumers (cvgbench -json).
func (r *BudgetFrontierResult) TotalTasks() float64 {
	total := 0.0
	for _, row := range r.Rows {
		total += row.Tasks
	}
	return total
}

// BudgetCells reports how many grid cells ran under a binding cap and
// how many actually exhausted it, for the benchmark history's budget
// columns.
func (r *BudgetFrontierResult) BudgetCells() (cells, exhausted int) {
	for _, row := range r.Rows {
		cells++
		if row.ExhaustedFrac > 0 {
			exhausted++
		}
	}
	return cells, exhausted
}

// String renders the budget-vs-accuracy curve per workload.
func (r *BudgetFrontierResult) String() string {
	t := stats.NewTable("N", "tau", "budget frac", "max HITs", "committed", "settled", "verdict accuracy", "exhausted trials")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.Tau,
			fmt.Sprintf("%.2f", row.Fraction), row.MaxHITs,
			fmt.Sprintf("%.1f", row.Tasks),
			fmt.Sprintf("%.2f", row.Settled),
			fmt.Sprintf("%.2f", row.Accuracy),
			fmt.Sprintf("%.2f", row.ExhaustedFrac))
	}
	return fmt.Sprintf("Budget frontier: verdict accuracy vs spend cap across N x tau (n=%d, lockstep engine)\n%s",
		r.Params.SetSize, t.String())
}

// bfObservation is one trial's scores.
type bfObservation struct {
	tasks, settled, accuracy float64
	exhausted                bool
}

// RunBudgetFrontier runs the grid: per workload one fixed dataset, a
// calibration audit at the cell's base seed, then one cell per budget
// fraction whose trials audit under a HIT cap; every audit runs on
// the lockstep engine so the artifact is invariant to
// -engine-parallelism.
func RunBudgetFrontier(p BudgetFrontierParams, o Options) (*BudgetFrontierResult, error) {
	s := oneAttrSchema(4)
	groups := pattern.GroupsForAttribute(s, 0)

	type workload struct {
		n, tau   int
		ids      []dataset.ObjectID
		oracle   *core.TruthOracle
		covered  []bool // ground truth per group
		baseline int
	}
	type cell struct {
		wi       int
		fraction float64
		maxHITs  int
	}
	var workloads []*workload
	var cells []cell
	var cfgs []experiment.Config
	for ni, n := range p.Ns {
		for ti, tau := range p.Taus {
			seedOffset := int64(10_000*ni + 1_000*ti)
			d, err := dataset.FromCounts(s, buildCounts(4, n, p.MinorityCounts),
				rand.New(rand.NewSource(o.Seed+seedOffset)))
			if err != nil {
				return nil, err
			}
			w := &workload{n: n, tau: tau, ids: d.IDs(), oracle: core.NewTruthOracle(d)}
			for _, g := range groups {
				count := 0
				for i := 0; i < d.Size(); i++ {
					if g.Matches(d.At(i).Labels) {
						count++
					}
				}
				w.covered = append(w.covered, count >= tau)
			}
			// Calibration: the unbudgeted cost at the cell's base seed
			// anchors the budget ladder deterministically.
			calib, err := core.MultipleCoverage(w.oracle, w.ids, p.SetSize, tau, groups,
				core.MultipleOptions{Rng: rand.New(rand.NewSource(o.Seed + seedOffset)), Lockstep: true})
			if err != nil {
				return nil, err
			}
			w.baseline = calib.Tasks
			wi := len(workloads)
			workloads = append(workloads, w)
			for _, frac := range p.Fractions {
				maxHITs := int(math.Ceil(frac * float64(w.baseline)))
				if maxHITs < 1 {
					maxHITs = 1
				}
				cells = append(cells, cell{wi: wi, fraction: frac, maxHITs: maxHITs})
				cfg := o.cell(fmt.Sprintf("budget-frontier/N=%d/tau=%d/frac=%.2f", n, tau, frac), seedOffset)
				cfg.Budget = core.Budget{MaxHITs: maxHITs}
				cfgs = append(cfgs, cfg)
			}
		}
	}

	results, err := experiment.RunMany(cfgs, func(ci int, t experiment.Trial) (bfObservation, error) {
		c := cells[ci]
		w := workloads[c.wi]
		// Each trial owns its governor (the budget is per audit, the
		// truth oracle is shared and concurrency-safe). Lockstep is
		// unconditional: budgeted exhaustion is width-invariant only on
		// the lockstep engine.
		mres, err := core.MultipleCoverage(w.oracle, w.ids, p.SetSize, w.tau, groups,
			core.MultipleOptions{
				Rng:         t.Rng,
				Parallelism: engineWidth(t, 1),
				Lockstep:    true,
				Budget:      t.Budget,
			})
		if err != nil {
			return bfObservation{}, err
		}
		obs := bfObservation{tasks: float64(mres.Tasks), exhausted: mres.Exhausted}
		for gi, r := range mres.Results {
			if !r.Settled {
				continue
			}
			obs.settled++
			if r.Covered == w.covered[gi] {
				obs.accuracy++
			}
		}
		obs.settled /= float64(len(groups))
		obs.accuracy /= float64(len(groups))
		return obs, nil
	})
	if err != nil {
		return nil, err
	}

	res := &BudgetFrontierResult{Params: p, Calibration: map[[2]int]int{}}
	for _, w := range workloads {
		res.Calibration[[2]int{w.n, w.tau}] = w.baseline
	}
	for ci, c := range cells {
		r := results[ci]
		row := BudgetFrontierRow{
			N: workloads[c.wi].n, Tau: workloads[c.wi].tau,
			Fraction: c.fraction, MaxHITs: c.maxHITs,
			Tasks:    r.Mean(func(v bfObservation) float64 { return v.tasks }),
			Settled:  r.Mean(func(v bfObservation) float64 { return v.settled }),
			Accuracy: r.Mean(func(v bfObservation) float64 { return v.accuracy }),
			ExhaustedFrac: r.Mean(func(v bfObservation) float64 {
				if v.exhausted {
					return 1
				}
				return 0
			}),
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
