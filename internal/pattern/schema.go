// Package pattern implements the pattern algebra used to describe
// demographic (sub)groups over a set of low-cardinality categorical
// attributes of interest, together with the pattern graph and the
// maximal-uncovered-pattern (MUP) machinery from Asudeh et al.
// (ICDE 2019) that the paper builds on.
//
// A pattern is a vector with one slot per attribute; each slot holds
// either a concrete value index or the wildcard X ("unspecified").
// Pattern X1 over binary attributes {gender, race} matches every object
// whose second attribute equals value 1, regardless of the first.
//
// The pattern graph orders patterns by generality: P is a parent of P'
// when the two agree everywhere except on exactly one attribute that P
// leaves unspecified. A pattern is a maximal uncovered pattern (MUP)
// when fewer than tau objects match it while every parent is covered.
package pattern

import (
	"errors"
	"fmt"
	"strings"
)

// Attribute is one categorical attribute of interest, e.g. gender or race.
// Its cardinality is len(Values); value indices used in patterns and
// object labels refer to positions in Values.
type Attribute struct {
	Name   string
	Values []string
}

// Cardinality returns the number of distinct values of the attribute.
func (a Attribute) Cardinality() int { return len(a.Values) }

// Schema describes the ordered list of attributes of interest.
// The zero value is an empty schema with no attributes.
type Schema struct {
	attrs []Attribute
}

// NewSchema builds a schema from the given attributes. It returns an
// error if there are no attributes, if an attribute has fewer than two
// values, or if attribute or value names repeat.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("pattern: schema needs at least one attribute")
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, errors.New("pattern: attribute with empty name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("pattern: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) < 2 {
			return nil, fmt.Errorf("pattern: attribute %q needs at least two values", a.Name)
		}
		vseen := make(map[string]bool, len(a.Values))
		for _, v := range a.Values {
			if v == "" {
				return nil, fmt.Errorf("pattern: attribute %q has an empty value name", a.Name)
			}
			if vseen[v] {
				return nil, fmt.Errorf("pattern: attribute %q repeats value %q", a.Name, v)
			}
			vseen[v] = true
		}
	}
	s := &Schema{attrs: make([]Attribute, len(attrs))}
	copy(s.attrs, attrs)
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for
// package-level schema literals in tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Binary returns a schema with a single binary attribute, the "single
// binary sensitive attribute" case of the paper (e.g. gender with
// values male and female).
func Binary(name, v0, v1 string) *Schema {
	return MustSchema(Attribute{Name: name, Values: []string{v0, v1}})
}

// NumAttrs returns the number of attributes in the schema.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// ValueIndex returns the index of value v within attribute attr, or an
// error if either name is unknown.
func (s *Schema) ValueIndex(attr, v string) (attrIdx, valIdx int, err error) {
	attrIdx = s.AttrIndex(attr)
	if attrIdx < 0 {
		return -1, -1, fmt.Errorf("pattern: unknown attribute %q", attr)
	}
	for j, name := range s.attrs[attrIdx].Values {
		if name == v {
			return attrIdx, j, nil
		}
	}
	return attrIdx, -1, fmt.Errorf("pattern: attribute %q has no value %q", attr, v)
}

// Cardinalities returns the per-attribute cardinalities.
func (s *Schema) Cardinalities() []int {
	out := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Cardinality()
	}
	return out
}

// NumSubgroups returns the number of fully-specified subgroups, the
// product of all attribute cardinalities (m = c1 x c2 x ... x cd).
func (s *Schema) NumSubgroups() int {
	m := 1
	for _, a := range s.attrs {
		m *= a.Cardinality()
	}
	return m
}

// NumPatterns returns the size of the full pattern universe, the
// product of (cardinality+1) over all attributes.
func (s *Schema) NumPatterns() int {
	m := 1
	for _, a := range s.attrs {
		m *= a.Cardinality() + 1
	}
	return m
}

// ValidLabels reports whether the label vector is well formed for the
// schema: one value index per attribute, each within range.
func (s *Schema) ValidLabels(labels []int) bool {
	if len(labels) != len(s.attrs) {
		return false
	}
	for i, v := range labels {
		if v < 0 || v >= s.attrs[i].Cardinality() {
			return false
		}
	}
	return true
}

// String renders the schema as attr1{v,...} attr2{v,...}.
func (s *Schema) String() string {
	var b strings.Builder
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Name)
		b.WriteByte('{')
		b.WriteString(strings.Join(a.Values, ","))
		b.WriteByte('}')
	}
	return b.String()
}
