package crowd

import "fmt"

// QueryKind distinguishes the HIT types the algorithms issue.
type QueryKind int

const (
	// PointQuery asks for the attribute values of one image.
	PointQuery QueryKind = iota
	// SetQuery asks whether a set contains at least one group member.
	SetQuery
	// ReverseSetQuery asks whether a set contains at least one image
	// NOT in the group (used by Classifier-Coverage's partitioning).
	ReverseSetQuery
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case PointQuery:
		return "point"
	case SetQuery:
		return "set"
	case ReverseSetQuery:
		return "reverse-set"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// Pricing computes the payout of one assignment of a HIT. The paper
// uses the fixed-price model, so the default implementation ignores
// the HIT entirely.
type Pricing interface {
	// AssignmentPrice returns the worker payout for one assignment of
	// a HIT of the given kind and set size.
	AssignmentPrice(kind QueryKind, setSize int) float64
}

// FixedPricing pays the same price per assignment regardless of HIT
// contents — the model the paper adopts (each HIT $0.10, later $0.05,
// with no effect on acceptance).
type FixedPricing struct{ Price float64 }

// AssignmentPrice implements Pricing.
func (p FixedPricing) AssignmentPrice(QueryKind, int) float64 { return p.Price }

// Ledger accumulates the audit cost: the paper's single performance
// metric is the number of HITs, and dollar cost follows from it under
// fixed pricing (plus the platform's fee — MTurk charged the authors
// 20 %: $8.82 on $44.10).
type Ledger struct {
	hits        map[QueryKind]int
	assignments int
	workerPaid  float64
	feeRate     float64
}

// NewLedger creates a ledger with the given platform fee rate
// (e.g. 0.20 for MTurk's 20 %).
func NewLedger(feeRate float64) *Ledger {
	return &Ledger{hits: make(map[QueryKind]int), feeRate: feeRate}
}

// Record adds one HIT with the given number of paid assignments.
func (l *Ledger) Record(kind QueryKind, assignments int, pricePer float64) {
	l.hits[kind]++
	l.assignments += assignments
	l.workerPaid += float64(assignments) * pricePer
}

// HITs returns the number of HITs of one kind.
func (l *Ledger) HITs(kind QueryKind) int { return l.hits[kind] }

// TotalHITs returns the total number of HITs issued — the paper's
// cost metric.
func (l *Ledger) TotalHITs() int {
	total := 0
	//lint:ordered commutative integer sum over per-kind counters
	for _, n := range l.hits {
		total += n
	}
	return total
}

// Assignments returns the number of paid assignments (HITs times
// redundancy).
func (l *Ledger) Assignments() int { return l.assignments }

// WorkerCost returns the total paid to workers.
func (l *Ledger) WorkerCost() float64 { return l.workerPaid }

// PlatformFee returns the platform's cut.
func (l *Ledger) PlatformFee() float64 { return l.workerPaid * l.feeRate }

// TotalCost returns worker payouts plus platform fee.
func (l *Ledger) TotalCost() float64 { return l.workerPaid + l.PlatformFee() }

// Reset clears all counters, keeping the fee rate.
func (l *Ledger) Reset() {
	l.hits = make(map[QueryKind]int)
	l.assignments = 0
	l.workerPaid = 0
}

// Snapshot returns current totals for reporting.
func (l *Ledger) Snapshot() LedgerSnapshot {
	return LedgerSnapshot{
		PointHITs:      l.HITs(PointQuery),
		SetHITs:        l.HITs(SetQuery),
		ReverseSetHITs: l.HITs(ReverseSetQuery),
		TotalHITs:      l.TotalHITs(),
		Assignments:    l.assignments,
		WorkerCost:     l.workerPaid,
		PlatformFee:    l.PlatformFee(),
		TotalCost:      l.TotalCost(),
	}
}

// LedgerSnapshot is an immutable copy of ledger totals.
type LedgerSnapshot struct {
	PointHITs      int
	SetHITs        int
	ReverseSetHITs int
	TotalHITs      int
	Assignments    int
	WorkerCost     float64
	PlatformFee    float64
	TotalCost      float64
}

// String formats the snapshot for logs.
func (s LedgerSnapshot) String() string {
	return fmt.Sprintf("HITs=%d (point=%d set=%d reverse=%d) assignments=%d cost=$%.2f (+$%.2f fee)",
		s.TotalHITs, s.PointHITs, s.SetHITs, s.ReverseSetHITs, s.Assignments, s.WorkerCost, s.PlatformFee)
}
