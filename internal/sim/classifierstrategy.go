package sim

import (
	"fmt"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/stats"
)

// ClassifierParams tunes the classifier-strategy harness: one binary
// dataset, one simulated predictor per false-positive-rate setting,
// and the Classifier-Coverage audit on the batched round engine.
type ClassifierParams struct {
	// N and Minority shape the dataset; Tau and SetSize the audit.
	N, Minority, Tau, SetSize int
	// PredictedTP is the number of true members every predictor finds;
	// the false-positive count is derived per FPRate setting.
	PredictedTP int
	// FPRates are the realized false-positive rates of the predicted
	// set, spanning the Partition/Label switchover at the 25 %
	// threshold.
	FPRates []float64
	// Parallelism is the batched engine's default pool width
	// (overridden by Options.EngineParallelism).
	Parallelism int
}

// DefaultClassifierParams spans both strategies: rates below the 25 %
// threshold partition, rates above it label.
func DefaultClassifierParams() ClassifierParams {
	return ClassifierParams{
		N: 3_000, Minority: 400, Tau: 50, SetSize: 50,
		PredictedTP: 150,
		FPRates:     []float64{0.05, 0.15, 0.30, 0.50, 0.70},
		Parallelism: 4,
	}
}

// ClassifierStrategyRow is one false-positive-rate setting.
type ClassifierStrategyRow struct {
	FPRate float64
	// Strategy chosen by the audit (deterministic per cell: the final
	// trial's, like Table 2).
	Strategy string
	// ClassifierHITs and GroupHITs are mean task counts over the
	// trials; Sample/Cleanup/Residual break the classifier audit down.
	ClassifierHITs, GroupHITs float64
	Sample, Cleanup, Residual float64
	Covered                   bool
}

// ClassifierStrategyResult is the reproduced strategy comparison.
type ClassifierStrategyResult struct {
	Params ClassifierParams
	Rows   []ClassifierStrategyRow
}

// TotalTasks implements the cvgbench task totaler.
func (r *ClassifierStrategyResult) TotalTasks() float64 {
	total := 0.0
	for _, row := range r.Rows {
		total += row.ClassifierHITs
	}
	return total
}

// String renders the comparison.
func (r *ClassifierStrategyResult) String() string {
	t := stats.NewTable("FP rate", "strategy", "Classifier-Coverage #HITs",
		"sample", "cleanup", "residual", "Group-Coverage #HITs", "covered")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.2f", row.FPRate), row.Strategy,
			row.ClassifierHITs, row.Sample, row.Cleanup, row.Residual,
			row.GroupHITs, row.Covered)
	}
	return fmt.Sprintf(
		"Classifier strategy switchover: Partition vs Label across classifier quality (N=%d minority=%d tau=%d n=%d, tp=%d)\n%s",
		r.Params.N, r.Params.Minority, r.Params.Tau, r.Params.SetSize, r.Params.PredictedTP, t.String())
}

// classifierObs is one trial's outcome for an FP-rate cell.
type classifierObs struct {
	cc      core.ClassifierResult
	gcTasks float64
}

// RunClassifierStrategy sweeps the predicted set's false-positive rate
// across the Partition/Label switchover: each cell derives the
// false-positive count realizing its rate, feeds the predicted set to
// Classifier-Coverage on the batched round engine, and prices
// standalone Group-Coverage on the same data. Averaged over o.Trials
// on the trial-runner; the rendered table is identical at every trial
// and engine parallelism (the oracle is order-independent).
func RunClassifierStrategy(p ClassifierParams, o Options) (*ClassifierStrategyResult, error) {
	cfgs := make([]experiment.Config, len(p.FPRates))
	for i, rate := range p.FPRates {
		if rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("sim: false-positive rate %v outside [0, 1)", rate)
		}
		cfgs[i] = o.cell(fmt.Sprintf("classifier-strategy/fp%.2f", rate), int64(500*i))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (classifierObs, error) {
		rate, rng := p.FPRates[cell], t.Rng
		d, err := dataset.BinaryWithMinority(p.N, p.Minority, rng)
		if err != nil {
			return classifierObs{}, err
		}
		g := dataset.Female(d.Schema())
		// PredictedSet clamps the composition to what the dataset can
		// honor, so non-default params degrade to the closest
		// realizable rate instead of slicing out of range.
		tp := min(p.PredictedTP, p.Minority)
		predicted := d.PredictedSet(g, tp, int(rate/(1-rate)*float64(tp)))
		rng.Shuffle(len(predicted), func(i, j int) { predicted[i], predicted[j] = predicted[j], predicted[i] })

		cc, err := core.ClassifierCoverage(core.NewTruthOracle(d), d.IDs(), predicted, p.SetSize, p.Tau, g,
			core.ClassifierOptions{Rng: rng, Parallelism: engineWidth(t, p.Parallelism), Lockstep: t.Lockstep})
		if err != nil {
			return classifierObs{}, err
		}
		gc, err := core.GroupCoverage(core.NewTruthOracle(d), d.IDs(), p.SetSize, p.Tau, g)
		if err != nil {
			return classifierObs{}, err
		}
		return classifierObs{cc: cc, gcTasks: float64(gc.Tasks)}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ClassifierStrategyResult{Params: p}
	for i, rate := range p.FPRates {
		r := results[i]
		last := r.Last()
		res.Rows = append(res.Rows, ClassifierStrategyRow{
			FPRate:         rate,
			Strategy:       string(last.cc.Strategy),
			ClassifierHITs: r.Mean(func(v classifierObs) float64 { return float64(v.cc.Tasks) }),
			Sample:         r.Mean(func(v classifierObs) float64 { return float64(v.cc.SampleTasks) }),
			Cleanup:        r.Mean(func(v classifierObs) float64 { return float64(v.cc.CleanupTasks) }),
			Residual:       r.Mean(func(v classifierObs) float64 { return float64(v.cc.ResidualTasks) }),
			GroupHITs:      r.Mean(func(v classifierObs) float64 { return v.gcTasks }),
			Covered:        last.cc.Covered,
		})
	}
	return res, nil
}
