package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// Wildcard is the "unspecified" slot value, written X in the paper.
const Wildcard = -1

// Pattern identifies a (sub)group: one slot per schema attribute
// holding either a value index or Wildcard. The all-wildcard pattern
// matches every object.
//
// Patterns are plain slices so they can be built with literals; use
// the constructors for validation.
type Pattern []int

// NewPattern validates slots against the schema and returns a copy.
func NewPattern(s *Schema, slots ...int) (Pattern, error) {
	if len(slots) != s.NumAttrs() {
		return nil, fmt.Errorf("pattern: got %d slots, schema has %d attributes", len(slots), s.NumAttrs())
	}
	p := make(Pattern, len(slots))
	for i, v := range slots {
		if v != Wildcard && (v < 0 || v >= s.Attr(i).Cardinality()) {
			return nil, fmt.Errorf("pattern: slot %d value %d out of range for attribute %q", i, v, s.Attr(i).Name)
		}
		p[i] = v
	}
	return p, nil
}

// MustPattern is like NewPattern but panics on error.
func MustPattern(s *Schema, slots ...int) Pattern {
	p, err := NewPattern(s, slots...)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns the all-wildcard (most general) pattern for the schema.
func All(s *Schema) Pattern {
	p := make(Pattern, s.NumAttrs())
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// Point returns the fully-specified pattern equal to the label vector.
func Point(labels []int) Pattern {
	p := make(Pattern, len(labels))
	copy(p, labels)
	return p
}

// Parse reads the compact string form produced by String, e.g. "X01"
// for three attributes, or multi-digit slots separated by '-', e.g.
// "X-0-12". Single-rune form is accepted only when every slot is a
// single character.
func Parse(s *Schema, text string) (Pattern, error) {
	var parts []string
	if strings.ContainsRune(text, '-') {
		parts = strings.Split(text, "-")
	} else {
		for _, r := range text {
			parts = append(parts, string(r))
		}
	}
	if len(parts) != s.NumAttrs() {
		return nil, fmt.Errorf("pattern: %q has %d slots, schema has %d attributes", text, len(parts), s.NumAttrs())
	}
	slots := make([]int, len(parts))
	for i, part := range parts {
		if part == "X" || part == "x" {
			slots[i] = Wildcard
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("pattern: bad slot %q in %q", part, text)
		}
		slots[i] = v
	}
	return NewPattern(s, slots...)
}

// Clone returns an independent copy of the pattern.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// Equal reports whether two patterns have identical slots.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Level returns the number of specified (non-wildcard) slots. The
// all-wildcard pattern is level 0; fully-specified patterns are level d.
func (p Pattern) Level() int {
	n := 0
	for _, v := range p {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// FullySpecified reports whether every slot is specified.
func (p Pattern) FullySpecified() bool { return p.Level() == len(p) }

// Matches reports whether a label vector satisfies the pattern: every
// specified slot must equal the corresponding label.
func (p Pattern) Matches(labels []int) bool {
	if len(labels) != len(p) {
		return false
	}
	for i, v := range p {
		if v != Wildcard && labels[i] != v {
			return false
		}
	}
	return true
}

// Covers reports whether p is at least as general as q: every object
// matching q also matches p. (p covers p itself.)
func (p Pattern) Covers(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		if q[i] != v {
			return false
		}
	}
	return true
}

// Parents returns the immediate ancestors of p in the pattern graph:
// each specified slot replaced, one at a time, by Wildcard. The
// all-wildcard pattern has no parents.
func (p Pattern) Parents() []Pattern {
	var out []Pattern
	for i, v := range p {
		if v == Wildcard {
			continue
		}
		q := p.Clone()
		q[i] = Wildcard
		out = append(out, q)
	}
	return out
}

// Children returns the immediate descendants of p: each unspecified
// slot replaced, one at a time, by every possible value.
func (p Pattern) Children(s *Schema) []Pattern {
	var out []Pattern
	for i, v := range p {
		if v != Wildcard {
			continue
		}
		for val := 0; val < s.Attr(i).Cardinality(); val++ {
			q := p.Clone()
			q[i] = val
			out = append(out, q)
		}
	}
	return out
}

// ChildrenAlong returns the children obtained by specifying only
// attribute attr. These children partition the objects matching p,
// which is what the count-combining step of Pattern-Combiner relies on.
// It returns nil if attr is already specified.
func (p Pattern) ChildrenAlong(s *Schema, attr int) []Pattern {
	if p[attr] != Wildcard {
		return nil
	}
	out := make([]Pattern, 0, s.Attr(attr).Cardinality())
	for val := 0; val < s.Attr(attr).Cardinality(); val++ {
		q := p.Clone()
		q[attr] = val
		out = append(out, q)
	}
	return out
}

// FirstWildcard returns the index of the first unspecified slot, or -1.
func (p Pattern) FirstWildcard() int {
	for i, v := range p {
		if v == Wildcard {
			return i
		}
	}
	return -1
}

// String renders the compact form: single-character slots are
// concatenated ("X01"); otherwise slots are joined with '-'.
func (p Pattern) String() string {
	single := true
	for _, v := range p {
		if v > 9 {
			single = false
			break
		}
	}
	var b strings.Builder
	for i, v := range p {
		if !single && i > 0 {
			b.WriteByte('-')
		}
		if v == Wildcard {
			b.WriteByte('X')
		} else {
			b.WriteString(strconv.Itoa(v))
		}
	}
	return b.String()
}

// Format renders the pattern with schema names, e.g.
// "gender=female AND race=X".
func (p Pattern) Format(s *Schema) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(s.Attr(i).Name)
		b.WriteByte('=')
		if v == Wildcard {
			b.WriteByte('X')
		} else {
			b.WriteString(s.Attr(i).Values[v])
		}
	}
	return b.String()
}

// Key returns a map key for the pattern (its String form).
func (p Pattern) Key() string { return p.String() }
