// Command cvgbench regenerates the paper's evaluation artifacts: every
// table and figure of section 6 plus the extension experiments,
// printed as aligned text tables. Experiments run on the parallel
// trial-runner (internal/experiment); -trial-parallelism widens the
// pool and -json appends machine-readable records to a benchmark
// history keyed by git SHA and timestamp.
//
// Usage:
//
//	cvgbench -list
//	cvgbench -exp table1 -seed 42 -trials 5
//	cvgbench -exp all -trial-parallelism 8
//	cvgbench -exp all -json BENCH_core.json -baseline
//	cvgbench -exp all -lockstep
//	cvgbench -exp lockstep-latency -json BENCH_core.json -fail-regression 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"imagecvg/internal/experiment"
	"imagecvg/internal/sim"
	"imagecvg/internal/stats"
)

// benchRecord is one experiment's machine-readable result, for
// tracking the performance trajectory across commits.
type benchRecord struct {
	ID     string `json:"id"`
	Paper  string `json:"paper"`
	Seed   int64  `json:"seed"`
	Trials int    `json:"trials"`
	// NsPerOp is wall-clock per trial, so records stay comparable
	// across runs with different -trials settings.
	NsPerOp int64 `json:"ns_per_op"`
	// Seconds is the experiment's total wall-clock.
	Seconds float64 `json:"seconds"`
	// TrialSeconds sums per-trial wall-clock across the experiment's
	// cells; Seconds below it means the trial pool paid off.
	TrialSeconds float64 `json:"trial_seconds,omitempty"`
	// HITTasks is the experiment's crowd-task total when the result
	// reports one (the paper's single cost metric).
	HITTasks float64 `json:"hit_tasks,omitempty"`
	// BudgetCells and BudgetExhausted describe budget-governed
	// experiments (budget-frontier): how many grid cells ran under a
	// spend cap and how many hit it. A drop to zero exhausted cells in
	// the history means the budget ladder stopped binding —
	// budgetRegression fails the -fail-regression gate on it alongside
	// the ns/op check.
	BudgetCells     int `json:"budget_cells,omitempty"`
	BudgetExhausted int `json:"budget_exhausted,omitempty"`
	// HITsPerSec and AllocsPerHIT are the CPU-bound throughput metrics
	// reported by the audit-throughput harness: committed HITs per
	// wall-clock second and heap allocations per HIT (process-wide
	// Mallocs delta over the audit, so the harness forces sequential
	// trials to keep it attributable).
	HITsPerSec   float64 `json:"hits_per_sec,omitempty"`
	AllocsPerHIT float64 `json:"allocs_per_hit,omitempty"`
	// JobsPerSec and SteadyHeapBytes are the audit-service metrics
	// reported by the service-throughput harness: completed jobs per
	// second through the persistent-job engine and the post-GC heap
	// once the fleet is terminal but still held by the service.
	JobsPerSec      float64 `json:"jobs_per_sec,omitempty"`
	SteadyHeapBytes float64 `json:"steady_heap_bytes,omitempty"`
}

// benchRun is one cvgbench invocation's records, keyed for the
// append-only history a BENCH file accumulates across commits.
type benchRun struct {
	// SHA is the git commit the run measured (empty outside a repo).
	SHA string `json:"sha,omitempty"`
	// Time is the run's UTC timestamp, RFC 3339.
	Time string `json:"time"`
	// Seed, Trials, TrialParallelism and Lockstep echo the flags.
	Seed             int64 `json:"seed"`
	Trials           int   `json:"trials"`
	TrialParallelism int   `json:"trial_parallelism"`
	Lockstep         bool  `json:"lockstep,omitempty"`
	// Records holds one entry per experiment run.
	Records []benchRecord `json:"records"`
}

// taskTotaler is implemented by results that can report their total
// crowd cost (e.g. the multi-group figures).
type taskTotaler interface{ TotalTasks() float64 }

// budgetCeller is implemented by budget-governed results
// (budget-frontier) reporting their capped and exhausted cell counts.
type budgetCeller interface{ BudgetCells() (cells, exhausted int) }

// throughputReporter is implemented by results that measured CPU-bound
// audit throughput (audit-throughput).
type throughputReporter interface {
	Throughput() (hitsPerSec, allocsPerHIT float64)
}

// serviceReporter is implemented by results that measured the audit
// service's job throughput (service-throughput).
type serviceReporter interface {
	Service() (jobsPerSec, steadyHeapBytes float64)
}

// gitSHA resolves the current commit, best-effort.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadHistory reads an existing benchmark file. Legacy files (a bare
// array of records, the pre-history format) migrate to a single
// unkeyed run so no measurements are lost.
func loadHistory(path string) ([]benchRun, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	// probe detects the format: history entries carry "records",
	// legacy entries carry "id".
	type probe struct {
		ID      string        `json:"id"`
		Records []benchRecord `json:"records"`
	}
	var probes []probe
	if err := json.Unmarshal(data, &probes); err != nil {
		return nil, fmt.Errorf("unreadable benchmark history: %w", err)
	}
	legacy := false
	for _, p := range probes {
		if p.ID != "" {
			legacy = true
			break
		}
	}
	if legacy {
		var records []benchRecord
		if err := json.Unmarshal(data, &records); err != nil {
			return nil, fmt.Errorf("unreadable legacy benchmark file: %w", err)
		}
		return []benchRun{{Records: records}}, nil
	}
	var runs []benchRun
	if err := json.Unmarshal(data, &runs); err != nil {
		return nil, fmt.Errorf("unreadable benchmark history: %w", err)
	}
	return runs, nil
}

// worstRegression compares the current run's records against the
// history's previous run and returns the largest ns/op increase in
// percent, with the offending experiment id. Runs are only comparable
// when they were measured the same way — same trial-parallelism and
// lockstep setting at the run level (NsPerOp shrinks roughly linearly
// with the pool width), same seed and trial count per record; ok is
// false when nothing is.
func worstRegression(history []benchRun, current benchRun) (pct float64, id string, ok bool) {
	if len(history) == 0 {
		return 0, "", false
	}
	prev := history[len(history)-1]
	if prev.TrialParallelism != current.TrialParallelism || prev.Lockstep != current.Lockstep {
		return 0, "", false
	}
	prevByID := make(map[string]benchRecord, len(prev.Records))
	for _, r := range prev.Records {
		prevByID[r.ID] = r
	}
	worst := 0.0
	for _, r := range current.Records {
		p, found := prevByID[r.ID]
		if !found || p.NsPerOp <= 0 || p.Seed != r.Seed || p.Trials != r.Trials {
			continue
		}
		delta := 100 * (float64(r.NsPerOp) - float64(p.NsPerOp)) / float64(p.NsPerOp)
		if !ok || delta > worst {
			worst, id, ok = delta, r.ID, true
		}
	}
	return worst, id, ok
}

// budgetRegression compares the budget columns against the previous
// comparable run: an experiment whose budget ladder used to bind
// (exhausted cells > 0) but no longer does has silently stopped
// testing the exhaustion path — a correctness regression the ns/op
// delta cannot see.
func budgetRegression(history []benchRun, current benchRun) (id string, ok bool) {
	if len(history) == 0 {
		return "", false
	}
	prev := history[len(history)-1]
	prevByID := make(map[string]benchRecord, len(prev.Records))
	for _, r := range prev.Records {
		prevByID[r.ID] = r
	}
	for _, r := range current.Records {
		p, found := prevByID[r.ID]
		if !found || p.Seed != r.Seed || p.Trials != r.Trials {
			continue
		}
		if p.BudgetExhausted > 0 && r.BudgetExhausted == 0 {
			return r.ID, true
		}
	}
	return "", false
}

// reportBaseline prints deltas of the current records against the
// previous run in the history.
func reportBaseline(out io.Writer, history []benchRun, current []benchRecord) {
	if len(history) == 0 {
		fmt.Fprintln(out, "baseline: no previous run recorded")
		return
	}
	prev := history[len(history)-1]
	prevByID := make(map[string]benchRecord, len(prev.Records))
	for _, r := range prev.Records {
		prevByID[r.ID] = r
	}
	label := prev.SHA
	if label == "" {
		label = prev.Time
	}
	if label == "" {
		label = "previous run"
	}
	t := stats.NewTable("experiment", "ns/op", "baseline ns/op", "delta", "HIT tasks delta")
	for _, r := range current {
		p, ok := prevByID[r.ID]
		if !ok || p.NsPerOp <= 0 {
			t.AddRow(r.ID, r.NsPerOp, "-", "-", "-")
			continue
		}
		delta := 100 * (float64(r.NsPerOp) - float64(p.NsPerOp)) / float64(p.NsPerOp)
		t.AddRow(r.ID, r.NsPerOp, p.NsPerOp,
			fmt.Sprintf("%+.1f%%", delta), fmt.Sprintf("%+.1f", r.HITTasks-p.HITTasks))
	}
	fmt.Fprintf(out, "baseline deltas vs %s:\n%s\n", label, t.String())
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("cvgbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		exp       = fs.String("exp", "all", "experiment id (see -list), a comma-separated list of ids, or 'all'")
		seed      = fs.Int64("seed", 42, "base random seed")
		trials    = fs.Int("trials", 3, "repetitions averaged per configuration")
		trialPar  = fs.Int("trial-parallelism", 1, "trial-runner worker pool width (1 = sequential harness; results are identical at any width)")
		lockstep  = fs.Bool("lockstep", false, "run every audit on the deterministic lockstep scheduler (bit-identical artifacts across the engine-parallelism axis, order-dependent oracles included)")
		enginePar = fs.Int("engine-parallelism", 0, "override the audit engine's worker pool width inside each trial of the experiments with a fixed engine width (table2, classifier-strategy, figure7e-h); 0 keeps their defaults, and experiments that sweep parallelism themselves (sweep, lockstep-latency) keep their own axes — artifacts are identical at any width")
		list      = fs.Bool("list", false, "list available experiments and exit")
		jsonPath  = fs.String("json", "", "append benchmark records (ns/op, HIT counts) to a JSON history keyed by git SHA + timestamp, e.g. BENCH_core.json")
		baseline  = fs.Bool("baseline", false, "with -json: report deltas against the history's previous run")
		failPct   = fs.Float64("fail-regression", 0, "with -json: exit 3 when any experiment's ns/op regresses by more than this percentage vs the history's previous comparable run (0 disables); CI points this at the latency-bound lockstep benchmark")
		cpuProf   = fs.String("cpuprofile", "", "directory for per-experiment CPU profiles (<dir>/<id>.cpu.pprof), created if missing; feed them to 'go tool pprof'")
		memProf   = fs.String("memprofile", "", "directory for per-experiment allocation profiles (<dir>/<id>.mem.pprof), taken after the experiment's final GC")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(out, "available experiments:")
		for _, e := range sim.Experiments() {
			fmt.Fprintf(out, "  %-18s %-10s %s\n", e.ID, e.Paper, e.Description)
		}
		return 0
	}
	if *baseline && *jsonPath == "" {
		fmt.Fprintln(errOut, "cvgbench: -baseline requires -json")
		return 2
	}
	if *failPct > 0 && *jsonPath == "" {
		fmt.Fprintln(errOut, "cvgbench: -fail-regression requires -json")
		return 2
	}

	timing := experiment.NewRecorder()
	opts := sim.Options{Seed: *seed, Trials: *trials, Parallelism: *trialPar,
		Lockstep: *lockstep, EngineParallelism: *enginePar, Timing: timing}

	for _, dir := range []string{*cpuProf, *memProf} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(errOut, "cvgbench:", err)
				return 1
			}
		}
	}
	// profilePath names one experiment's profile inside dir; ids are
	// flat today, but slashes would silently nest directories.
	profilePath := func(dir, id, kind string) string {
		return filepath.Join(dir, strings.ReplaceAll(id, "/", "_")+"."+kind+".pprof")
	}

	var records []benchRecord
	runOne := func(e sim.Experiment) error {
		timing.Reset()
		var cpuFile *os.File
		if *cpuProf != "" {
			f, err := os.Create(profilePath(*cpuProf, e.ID, "cpu"))
			if err != nil {
				return err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			cpuFile = f
		}
		start := time.Now()
		res, err := e.Run(opts)
		if cpuFile != nil {
			pprof.StopCPUProfile() // flushes cpuFile
			cpuFile.Close()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start)
		if *memProf != "" {
			f, err := os.Create(profilePath(*memProf, e.ID, "mem"))
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile shows live + cumulative allocs
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			f.Close()
		}
		ts := timing.Summary()
		fmt.Fprintf(out, "=== %s (%s) — %s [%.1fs]\n%s\n",
			e.ID, e.Paper, e.Description, elapsed.Seconds(), res)
		fmt.Fprintf(out, "    timing: %s, wall %.2fs, pool %d\n",
			ts, elapsed.Seconds(), *trialPar)
		perOp := *trials
		if perOp < 1 {
			perOp = 1 // experiments treat non-positive trial counts as 1
		}
		rec := benchRecord{
			ID: e.ID, Paper: e.Paper, Seed: *seed, Trials: *trials,
			NsPerOp: elapsed.Nanoseconds() / int64(perOp), Seconds: elapsed.Seconds(),
			TrialSeconds: ts.TrialTime.Seconds(),
		}
		if tt, ok := res.(taskTotaler); ok {
			rec.HITTasks = tt.TotalTasks()
		}
		if bc, ok := res.(budgetCeller); ok {
			rec.BudgetCells, rec.BudgetExhausted = bc.BudgetCells()
		}
		if tp, ok := res.(throughputReporter); ok {
			rec.HITsPerSec, rec.AllocsPerHIT = tp.Throughput()
		}
		if sp, ok := res.(serviceReporter); ok {
			rec.JobsPerSec, rec.SteadyHeapBytes = sp.Service()
		}
		records = append(records, rec)
		return nil
	}

	if *exp == "all" {
		for _, e := range sim.Experiments() {
			if err := runOne(e); err != nil {
				fmt.Fprintln(errOut, "cvgbench:", err)
				return 1
			}
		}
	} else {
		// A comma-separated list runs several experiments as ONE
		// history entry, so the regression gate compares them all
		// against the previous run together.
		for _, id := range strings.Split(*exp, ",") {
			e, ok := sim.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(errOut, "cvgbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			if err := runOne(e); err != nil {
				fmt.Fprintln(errOut, "cvgbench:", err)
				return 1
			}
		}
	}

	if *jsonPath != "" {
		history, err := loadHistory(*jsonPath)
		if err != nil {
			fmt.Fprintln(errOut, "cvgbench:", err)
			return 1
		}
		if *baseline {
			reportBaseline(out, history, records)
		}
		current := benchRun{
			SHA:  gitSHA(),
			Time: time.Now().UTC().Format(time.RFC3339),
			Seed: *seed, Trials: *trials, TrialParallelism: *trialPar, Lockstep: *lockstep,
			Records: records,
		}
		regressed := false
		if *failPct > 0 {
			if worst, id, ok := worstRegression(history, current); ok && worst > *failPct {
				fmt.Fprintf(errOut, "cvgbench: %s regressed %+.1f%% ns/op vs the previous run (budget %.1f%%)\n",
					id, worst, *failPct)
				regressed = true
			}
			if id, ok := budgetRegression(history, current); ok {
				fmt.Fprintf(errOut, "cvgbench: %s no longer exhausts any budgeted cell (previous run did) — the budget ladder stopped binding\n", id)
				regressed = true
			}
		}
		history = append(history, current)
		data, err := json.MarshalIndent(history, "", "  ")
		if err != nil {
			fmt.Fprintln(errOut, "cvgbench:", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(errOut, "cvgbench:", err)
			return 1
		}
		fmt.Fprintf(out, "appended %d benchmark records to %s (%d runs)\n",
			len(records), *jsonPath, len(history))
		if regressed {
			// The failing run is still recorded — the next run compares
			// against it, so a one-off spike does not poison the gate.
			return 3
		}
	}
	return 0
}
