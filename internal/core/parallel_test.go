package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// runMultiple audits the race-schema dataset at the given parallelism
// with a fresh identically-seeded oracle and RNG.
func runMultiple(t *testing.T, d *dataset.Dataset, groups []pattern.Group, tau, parallelism int, seed int64) (*MultipleResult, TaskCounts) {
	t.Helper()
	o := NewTruthOracle(d)
	res, err := MultipleCoverage(o, d.IDs(), 50, tau, groups,
		MultipleOptions{Rng: rand.New(rand.NewSource(seed)), Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return res, o.Tasks()
}

// TestParallelMultipleDeterminism: one seed must produce byte-identical
// results at every parallelism level — the property that makes the
// concurrent engine a drop-in replacement for the experiments.
func TestParallelMultipleDeterminism(t *testing.T) {
	s := raceSchema()
	groups := pattern.GroupsForAttribute(s, 0)
	compositions := [][]int{
		{9800, 10, 8, 6},      // effective: uncovered super-group
		{9000, 300, 250, 200}, // covered minorities
		{9500, 30, 28, 26},    // adversarial: covered super-group of uncovered minorities
		{9900, 12, 8, 80},     // mixed
	}
	// repr renders every field by value (fmt sorts map keys), so equal
	// strings mean byte-identical results.
	repr := func(r *MultipleResult) string {
		return fmt.Sprintf("%+v|%+v|%+v|%+v|%d|%d|%d",
			r.Results, r.SuperAudits, r.Labeled, r.RemainingIDs,
			r.SampleTasks, r.AuditTasks, r.Tasks)
	}
	for ci, counts := range compositions {
		d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(int64(90+ci))))
		base, baseTasks := runMultiple(t, d, groups, 50, 1, 7)
		baseRepr := repr(base)
		for _, par := range []int{4, 16} {
			res, tasks := runMultiple(t, d, groups, 50, par, 7)
			if !reflect.DeepEqual(res, base) {
				t.Errorf("composition %d: parallelism %d diverged from sequential", ci, par)
			}
			if got := repr(res); got != baseRepr {
				t.Errorf("composition %d: parallelism %d representation diverged:\n%s\nvs\n%s", ci, par, got, baseRepr)
			}
			if tasks != baseTasks {
				t.Errorf("composition %d: parallelism %d oracle counts %v, want %v", ci, par, tasks, baseTasks)
			}
		}
	}
}

// TestParallelPenaltyBranch pins the adversarial Table 3 setting: the
// covered super-group of individually uncovered minorities must fan
// its per-member re-audits across the pool and still settle every
// member as uncovered with exact counts.
func TestParallelPenaltyBranch(t *testing.T) {
	s := raceSchema()
	counts := []int{9500, 30, 28, 26} // sum 84 >= tau 50: super covered, members not
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(96)))
	groups := pattern.GroupsForAttribute(s, 0)
	// NoSampling leaves every expected count at zero, so the
	// aggregation merges maximally and the union is covered — the
	// penalty branch is guaranteed to fire.
	o := NewTruthOracle(d)
	res, err := MultipleCoverage(o, d.IDs(), 50, 50, groups,
		MultipleOptions{Rng: rand.New(rand.NewSource(11)), Parallelism: 8, NoSampling: true})
	if err != nil {
		t.Fatal(err)
	}

	penalty := false
	for _, audit := range res.SuperAudits {
		if len(audit.GroupIndices) > 1 && audit.Covered {
			penalty = true
		}
	}
	if !penalty {
		t.Fatalf("expected a covered multi-member super-group; audits: %+v", res.SuperAudits)
	}
	for gi := 1; gi < 4; gi++ {
		r := res.Results[gi]
		if r.Covered {
			t.Errorf("minority %d reported covered", gi)
		}
		if r.CountLo > counts[gi] || r.CountHi < counts[gi] {
			t.Errorf("minority %d bounds [%d,%d] exclude %d", gi, r.CountLo, r.CountHi, counts[gi])
		}
	}
}

func TestParallelMultiplePropagatesErrors(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{400, 10, 10, 10}, rand.New(rand.NewSource(97)))
	groups := pattern.GroupsForAttribute(s, 0)
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 7}
	_, err := MultipleCoverage(flaky, d.IDs(), 20, 20, groups,
		MultipleOptions{Rng: rand.New(rand.NewSource(1)), Parallelism: 8})
	if !errors.Is(err, ErrTransient) {
		t.Errorf("err = %v, want transient failure propagated", err)
	}
}

// TestRetryRecoversTransientFailures: with a retry budget, a flaky
// crowd no longer aborts the audit, sequentially or in parallel, and
// the verdicts still match ground truth.
func TestRetryRecoversTransientFailures(t *testing.T) {
	s := raceSchema()
	counts := []int{400, 10, 60, 10}
	d := dataset.MustFromCounts(s, counts, rand.New(rand.NewSource(98)))
	groups := pattern.GroupsForAttribute(s, 0)
	tau := 20
	for _, par := range []int{1, 8} {
		flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 7}
		res, err := MultipleCoverage(flaky, d.IDs(), 20, tau, groups, MultipleOptions{
			Rng:         rand.New(rand.NewSource(2)),
			Parallelism: par,
			Retry:       RetryPolicy{MaxAttempts: 3},
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v (retries should absorb transient failures)", par, err)
		}
		for gi, r := range res.Results {
			if want := counts[gi] >= tau; r.Covered != want {
				t.Errorf("parallelism %d group %d: covered=%v want %v", par, gi, r.Covered, want)
			}
		}
	}
}

// nativeBatchCounter distinguishes whole-round calls from singular
// ones reaching the inner oracle.
type nativeBatchCounter struct {
	*TruthOracle
	batchRounds, singles int
}

func (b *nativeBatchCounter) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	b.singles++
	return b.TruthOracle.SetQuery(ids, g)
}
func (b *nativeBatchCounter) PointQuery(id dataset.ObjectID) ([]int, error) {
	b.singles++
	return b.TruthOracle.PointQuery(id)
}
func (b *nativeBatchCounter) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	b.batchRounds++
	return b.TruthOracle.SetQueryBatch(reqs)
}
func (b *nativeBatchCounter) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	b.batchRounds++
	return b.TruthOracle.PointQueryBatch(ids)
}

// TestRetryPreservesNativeBatching: wrapping a natively batching
// oracle in the retry middleware must keep whole rounds whole — the
// property the crowd platform's reproducibility depends on.
func TestRetryPreservesNativeBatching(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	d, err := dataset.BinaryWithMinority(200, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	counter := &nativeBatchCounter{TruthOracle: NewTruthOracle(d)}
	bo := AsBatchOracle(withRetry(context.Background(), counter, RetryPolicy{MaxAttempts: 3}, rand.New(rand.NewSource(1))), 8)
	if _, err := bo.PointQueryBatch(d.IDs()[:20]); err != nil {
		t.Fatal(err)
	}
	reqs := []SetRequest{{IDs: d.IDs()[:10], Group: dataset.Female(d.Schema())}}
	if _, err := bo.SetQueryBatch(reqs); err != nil {
		t.Fatal(err)
	}
	if counter.batchRounds != 2 || counter.singles != 0 {
		t.Errorf("rounds=%d singles=%d, want 2 native rounds and no singular calls",
			counter.batchRounds, counter.singles)
	}

	// Over a plain oracle the same wrapper retries per request.
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 5}
	bo = AsBatchOracle(withRetry(context.Background(), flaky, RetryPolicy{MaxAttempts: 2}, rand.New(rand.NewSource(2))), 8)
	if _, err := bo.PointQueryBatch(d.IDs()[:30]); err != nil {
		t.Errorf("per-request retry over plain oracle: %v", err)
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 0, 1})
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 1} // always fails
	o := withRetry(context.Background(), flaky, RetryPolicy{MaxAttempts: 3}, rand.New(rand.NewSource(3)))
	if _, err := o.SetQuery(d.IDs(), female(d)); !errors.Is(err, ErrTransient) {
		t.Errorf("err = %v, want transient after exhausting attempts", err)
	}
	if flaky.calls != 3 {
		t.Errorf("inner attempts = %d, want 3", flaky.calls)
	}
}

func TestLabelSamplesBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d, err := dataset.BinaryWithMinority(300, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	seqL, batchL := NewLabeledSet(), NewLabeledSet()
	seqRem, seqTasks, err := LabelSamples(NewTruthOracle(d), d.IDs(), 60, seqL, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	batchRem, batchTasks, err := LabelSamplesBatch(NewTruthOracle(d), d.IDs(), 60, batchL, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if seqTasks != batchTasks || !reflect.DeepEqual(seqRem, batchRem) || !reflect.DeepEqual(seqL, batchL) {
		t.Errorf("batched sampling diverged: tasks %d/%d, |rem| %d/%d",
			seqTasks, batchTasks, len(seqRem), len(batchRem))
	}
}

func TestLabelSamplesBatchValidates(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	l := NewLabeledSet()
	rng := rand.New(rand.NewSource(6))
	if _, _, err := LabelSamplesBatch(nil, d.IDs(), 1, l, rng); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, _, err := LabelSamplesBatch(o, d.IDs(), 1, nil, rng); err == nil {
		t.Error("nil labeled set: want error")
	}
	if _, _, err := LabelSamplesBatch(o, d.IDs(), 1, l, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, _, err := LabelSamplesBatch(o, d.IDs(), -1, l, rng); err == nil {
		t.Error("negative k: want error")
	}
	if rem, tasks, err := LabelSamplesBatch(o, d.IDs(), 10, l, rng); err != nil || tasks != 2 || len(rem) != 0 {
		t.Errorf("clamp: rem=%d tasks=%d err=%v", len(rem), tasks, err)
	}
}

// TestParallelIntersectionalAgrees: the concurrent engine slots under
// Intersectional-Coverage unchanged.
func TestParallelIntersectionalAgrees(t *testing.T) {
	s := pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
	)
	d := dataset.MustFromCounts(s, []int{500, 10, 300, 8}, rand.New(rand.NewSource(100)))
	seq, err := IntersectionalCoverage(NewTruthOracle(d), d.IDs(), 30, 30, s,
		MultipleOptions{Rng: rand.New(rand.NewSource(8))})
	if err != nil {
		t.Fatal(err)
	}
	par, err := IntersectionalCoverage(NewTruthOracle(d), d.IDs(), 30, 30, s,
		MultipleOptions{Rng: rand.New(rand.NewSource(8)), Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Verdicts, par.Verdicts) || !reflect.DeepEqual(seq.MUPs, par.MUPs) {
		t.Error("intersectional verdicts diverged between engines")
	}
	if seq.Tasks != par.Tasks {
		t.Errorf("tasks %d vs %d", seq.Tasks, par.Tasks)
	}
}

// TestRoundsBatchedMatchesLegacy pins the reworked level-synchronous
// driver: batched rounds still agree with the sequential algorithm's
// verdict and report the same round structure at any pool width.
func TestRoundsBatchedParallelismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d, err := dataset.BinaryWithMinority(1200, 45, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	base, err := GroupCoverageRounds(NewTruthOracle(d), d.IDs(), 32, 50, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 16} {
		res, err := GroupCoverageRounds(NewTruthOracle(d), d.IDs(), 32, 50, g, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("parallelism %d: %+v, want %+v", par, res, base)
		}
	}
}
