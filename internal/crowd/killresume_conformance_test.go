package crowd

// The kill/resume conformance matrix for crash-safe audit jobs: an
// audit is killed (context cancellation) after K committed rounds, the
// journal's K records are replayed into a fresh engine over the SAME
// platform — the crowd is external state that survives the job process,
// exactly like a real deployment — and the resumed run must finish with
// verdicts, task tallies, ledger spend, HIT transcript and Dawid-Skene
// truth inference byte-identical to an uninterrupted run. The matrix
// spans all three batched audit algorithms, budgeted and unbudgeted
// stacks, and every engine Parallelism value; the whole suite also runs
// under -race in CI, so replay determinism is checked on genuinely
// concurrent schedules.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// memoryJournal collects committed rounds in memory; the file codec has
// its own crash-safety suite (internal/journal), so the matrix here
// isolates the replay semantics.
type memoryJournal struct {
	recs []core.RoundRecord
}

func (m *memoryJournal) Append(rec core.RoundRecord) error {
	m.recs = append(m.recs, rec)
	return nil
}

// cancelAfterJournal kills the job after `after` committed rounds: the
// cancellation fires inside Append — after the round committed to the
// crowd AND reached the journal — so the next round fails its context
// check before touching the platform. That is the crash model the
// journal contract promises to survive: every round either committed
// and was journaled, or never happened.
type cancelAfterJournal struct {
	inner  core.RoundJournal
	after  int
	count  int
	cancel context.CancelFunc
}

func (c *cancelAfterJournal) Append(rec core.RoundRecord) error {
	if err := c.inner.Append(rec); err != nil {
		return err
	}
	c.count++
	if c.count == c.after {
		c.cancel()
	}
	return nil
}

// journalBudget derives a deterministic per-instance spend cap small
// enough that budgeted cells actually exhaust mid-audit on some
// instances (exercising the "budget" round outcome on replay) and large
// enough that others complete.
func journalBudget(inst conformanceInstance) core.Budget {
	return core.Budget{MaxHITs: 25 + int(inst.auditSeed%40)}
}

// runJournalCell executes one audit over an existing platform through a
// journaling oracle stack (journal -> optional governor -> platform)
// and serializes everything observable, exactly like runConformanceCell.
// The audit error is returned un-fataled so killed runs can assert
// cancellation.
func runJournalCell(t *testing.T, inst conformanceInstance, parallelism int,
	d *dataset.Dataset, p *Platform, log *ResponseLog,
	jnl core.RoundJournal, replay []core.RoundRecord, ctx context.Context,
	budgeted bool) (string, *core.JournalingOracle, error) {
	t.Helper()

	var oracle core.Oracle = p
	var gov *core.BudgetedOracle
	if budgeted {
		gov = core.NewBudgetedOracle(p, journalBudget(inst))
		oracle = gov
	}
	jo := core.NewJournalingOracle(oracle, jnl, replay, gov).SetContext(ctx)

	opts := core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(inst.auditSeed)),
		Parallelism: parallelism,
		Lockstep:    true,
		Ctx:         ctx,
	}
	var audit string
	var err error
	switch inst.kind {
	case "intersectional":
		var res *core.IntersectionalResult
		res, err = core.IntersectionalCoverage(jo, d.IDs(), inst.setSize, inst.tau, inst.schema, opts)
		if err == nil {
			audit = fmt.Sprintf("%+v|%+v|%d|%d", res.Verdicts, res.MUPs, res.ResolutionTasks, res.Tasks)
		}
	case "classifier":
		g := pattern.GroupsForAttribute(inst.schema, 0)[1]
		predicted := d.PredictedSet(g, inst.classifierTP, inst.classifierFP)
		var res core.ClassifierResult
		res, err = core.ClassifierCoverage(jo, d.IDs(), predicted, inst.setSize, inst.tau, g,
			core.ClassifierOptions{
				Rng:         rand.New(rand.NewSource(inst.auditSeed)),
				Parallelism: parallelism,
				Lockstep:    true,
				Ctx:         ctx,
			})
		if err == nil {
			audit = fmt.Sprintf("%+v", res)
		}
	default:
		groups := pattern.GroupsForAttribute(inst.schema, 0)
		var res *core.MultipleResult
		res, err = core.MultipleCoverage(jo, d.IDs(), inst.setSize, inst.tau, groups, opts)
		if err == nil {
			audit = fmt.Sprintf("%+v|%+v|%d|%d|%d", res.Results, res.SuperAudits,
				res.SampleTasks, res.AuditTasks, res.Tasks)
		}
	}
	if err != nil {
		return "", jo, err
	}

	spent := "no-budget"
	if gov != nil {
		spent = fmt.Sprintf("%+v", gov.Spent())
	}
	ds := "no-hits"
	if log.HITs() > 0 {
		res, derr := DawidSkene(log.HITs(), p.PoolSize(), 2, log.Responses(), 25)
		if derr != nil {
			t.Fatal(derr)
		}
		ds = fmt.Sprintf("%v|%.9v|%d", res.Truth, res.WorkerAccuracy, res.Iterations)
	}
	state := fmt.Sprintf("audit=%s\nspend=%s\ngovernor=%s\neligible=%d\nhits=%d\ndawid-skene=%s",
		audit, p.Ledger().Snapshot().String(), spent, p.EligibleWorkers(), log.HITs(), ds)
	return state, jo, nil
}

// freshCellPlatform rebuilds the dataset and platform for one cell; the
// dataset is a pure function of the instance seed, so every platform of
// a cell audits identical objects.
func freshCellPlatform(t *testing.T, inst conformanceInstance) (*dataset.Dataset, *Platform, *ResponseLog) {
	t.Helper()
	d := dataset.MustFromCounts(inst.schema, inst.counts, rand.New(rand.NewSource(inst.platformSeed+1)))
	log := &ResponseLog{}
	return d, platformFor(t, inst, d, log), log
}

// TestKillResumeConformance is the crash-safety matrix: randomized
// crowd-pipeline instances across Multiple-, Intersectional- and
// Classifier-Coverage, budgeted and unbudgeted, each killed after half
// its committed rounds and resumed from the journal at P in
// {1, 2, 4, 16}, asserting the resumed run's full observable state —
// verdicts, task tallies, ledger spend, governor ledger, HIT transcript
// and truth inference — is byte-identical to the uninterrupted run, and
// the final journal record sequence matches record for record.
func TestKillResumeConformance(t *testing.T) {
	instances := 12
	pars := []int{1, 2, 4, 16}
	if testing.Short() {
		instances = 6
		pars = []int{1, 4}
	}
	rng := rand.New(rand.NewSource(20240))
	for i := 0; i < instances; i++ {
		inst := generateInstance(rng, conformanceKind(i))
		budgeted := (i/3)%2 == 1
		t.Run(fmt.Sprintf("%02d-%s-budgeted=%v", i, inst.kind, budgeted), func(t *testing.T) {
			// Uninterrupted baseline at P=1. Its journal records double
			// as the reference record sequence: under lockstep the round
			// sequence is a pure function of committed answers, so every
			// cell below must reproduce it exactly.
			d, pA, logA := freshCellPlatform(t, inst)
			baseJnl := &memoryJournal{}
			base, _, err := runJournalCell(t, inst, 1, d, pA, logA, baseJnl, nil,
				context.Background(), budgeted)
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			rounds := len(baseJnl.recs)
			if rounds < 2 {
				t.Fatalf("degenerate instance: only %d committed rounds (kill point needs >= 2)", rounds)
			}
			kill := rounds / 2

			for _, par := range pars {
				par := par
				t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
					// Kill: fresh platform, cancel after half the rounds.
					// The platform survives the "crash" — it is the
					// external crowd — and the journal holds exactly the
					// rounds that reached it.
					dB, pB, logB := freshCellPlatform(t, inst)
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					jnl := &memoryJournal{}
					killer := &cancelAfterJournal{inner: jnl, after: kill, cancel: cancel}
					_, _, err := runJournalCell(t, inst, par, dB, pB, logB, killer, nil, ctx, budgeted)
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("killed run: err = %v, want context.Canceled", err)
					}
					if len(jnl.recs) != kill {
						t.Fatalf("killed run journaled %d rounds, want exactly %d", len(jnl.recs), kill)
					}

					// Resume: same platform, same transcript log, replay
					// the journaled rounds (appending the live remainder
					// to the same journal), fresh governor restored from
					// the snapshots.
					replay := append([]core.RoundRecord(nil), jnl.recs...)
					resumed, jo, err := runJournalCell(t, inst, par, dB, pB, logB, jnl, replay,
						context.Background(), budgeted)
					if err != nil {
						t.Fatalf("resumed run: %v", err)
					}
					if got := jo.Replayed(); got != kill {
						t.Fatalf("resumed run replayed %d rounds, want %d", got, kill)
					}
					if resumed != base {
						t.Fatalf("resumed state diverged from uninterrupted run:\n--- resumed (P=%d, killed at %d/%d) ---\n%s\n--- uninterrupted ---\n%s",
							par, kill, rounds, resumed, base)
					}
					if len(jnl.recs) != rounds {
						t.Fatalf("final journal holds %d rounds, want %d", len(jnl.recs), rounds)
					}
					if !reflect.DeepEqual(jnl.recs, baseJnl.recs) {
						for r := range jnl.recs {
							if !reflect.DeepEqual(jnl.recs[r], baseJnl.recs[r]) {
								t.Fatalf("journal record %d diverged from the uninterrupted run:\n%+v\nvs\n%+v",
									r, jnl.recs[r], baseJnl.recs[r])
							}
						}
						t.Fatal("journal record sequences diverged")
					}
				})
			}
		})
	}
}

// runTrustJournalCell executes one Multiple-Coverage audit over an
// existing platform through the adversarial stack — trust -> journal
// -> platform — and serializes the observable state INCLUDING the
// trust report. The trust middleware sits above the journal, so the
// journal records (and replays) the probe-augmented rounds; a fresh
// TrustOracle on resume re-issues the identical probes from its
// deterministic schedule and re-reads the surviving platform's
// response log from cursor zero, restoring every trust score exactly.
func runTrustJournalCell(t *testing.T, ai adversarialInstance, parallelism int,
	d *dataset.Dataset, p *Platform, log *ResponseLog,
	jnl core.RoundJournal, replay []core.RoundRecord, ctx context.Context) (string, *core.JournalingOracle, error) {
	t.Helper()

	jo := core.NewJournalingOracle(p, jnl, replay, nil).SetContext(ctx)
	tr, err := core.NewTrustOracle(jo, core.TrustConfig{
		Probes: trustProbesFor(d, ai),
		Feed:   log,
		Screen: p,
	})
	if err != nil {
		t.Fatal(err)
	}

	groups := pattern.GroupsForAttribute(ai.schema, 0)
	res, err := core.MultipleCoverage(tr, d.IDs(), ai.setSize, ai.tau, groups, core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(ai.auditSeed)),
		Parallelism: parallelism,
		Lockstep:    true,
		Ctx:         ctx,
	})
	if err != nil {
		return "", jo, err
	}
	audit := fmt.Sprintf("%+v|%+v|%d|%d|%d", res.Results, res.SuperAudits,
		res.SampleTasks, res.AuditTasks, res.Tasks)
	ds := "no-hits"
	if log.HITs() > 0 {
		dres, derr := DawidSkene(log.HITs(), p.PoolSize(), 2, log.Responses(), 25)
		if derr != nil {
			t.Fatal(derr)
		}
		ds = fmt.Sprintf("%v|%.9v|%d", dres.Truth, dres.WorkerAccuracy, dres.Iterations)
	}
	state := fmt.Sprintf("audit=%s\nspend=%s\neligible=%d\nhits=%d\ndawid-skene=%s\ntrust=%+v",
		audit, p.Ledger().Snapshot().String(), p.EligibleWorkers(), log.HITs(), ds, tr.Report())
	return state, jo, nil
}

// TestKillResumeTrustConformance is the adversarial cell of the
// kill/resume matrix: an audit over a pool with a colluding-liar
// stripe, screened by an active TrustOracle, killed after half its
// committed rounds and resumed from the journal at P in {1, 2, 4, 16}.
// The resumed run must restore the trust scores and the exclusion set
// and finish byte-identical to the uninterrupted run — verdicts,
// spend, eligible pool, transcript, truth inference and trust report.
func TestKillResumeTrustConformance(t *testing.T) {
	instances := 3
	pars := []int{1, 2, 4, 16}
	if testing.Short() {
		instances = 1
		pars = []int{1, 4}
	}
	rng := rand.New(rand.NewSource(20260))
	for i := 0; i < instances; i++ {
		ai := generateAdversarialInstance(rng, "multiple")
		ai.strategy = "colluding-liar"
		ai.trust = true
		t.Run(fmt.Sprintf("%02d-r%v", i, ai.rate), func(t *testing.T) {
			freshCell := func() (*dataset.Dataset, *Platform, *ResponseLog) {
				d := dataset.MustFromCounts(ai.schema, ai.counts,
					rand.New(rand.NewSource(ai.platformSeed+1)))
				log := &ResponseLog{}
				return d, adversarialPlatformFor(t, ai, d, log), log
			}

			d, pA, logA := freshCell()
			baseJnl := &memoryJournal{}
			base, _, err := runTrustJournalCell(t, ai, 1, d, pA, logA, baseJnl, nil,
				context.Background())
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			rounds := len(baseJnl.recs)
			if rounds < 2 {
				t.Fatalf("degenerate instance: only %d committed rounds", rounds)
			}
			kill := rounds / 2

			for _, par := range pars {
				par := par
				t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
					dB, pB, logB := freshCell()
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					jnl := &memoryJournal{}
					killer := &cancelAfterJournal{inner: jnl, after: kill, cancel: cancel}
					_, _, err := runTrustJournalCell(t, ai, par, dB, pB, logB, killer, nil, ctx)
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("killed run: err = %v, want context.Canceled", err)
					}
					if len(jnl.recs) != kill {
						t.Fatalf("killed run journaled %d rounds, want exactly %d", len(jnl.recs), kill)
					}

					replay := append([]core.RoundRecord(nil), jnl.recs...)
					resumed, jo, err := runTrustJournalCell(t, ai, par, dB, pB, logB, jnl, replay,
						context.Background())
					if err != nil {
						t.Fatalf("resumed run: %v", err)
					}
					if got := jo.Replayed(); got != kill {
						t.Fatalf("resumed run replayed %d rounds, want %d", got, kill)
					}
					if resumed != base {
						t.Fatalf("resumed state diverged from uninterrupted run:\n--- resumed (P=%d, killed at %d/%d) ---\n%s\n--- uninterrupted ---\n%s",
							par, kill, rounds, resumed, base)
					}
					if !reflect.DeepEqual(jnl.recs, baseJnl.recs) {
						t.Fatal("journal record sequences diverged from the uninterrupted run")
					}
				})
			}
		})
	}
}

// TestKillResumeMatrixCoversOutcomes guards the matrix generator: the
// drawn instances must include every audit kind and both budget
// configurations, and at least one budgeted baseline must actually
// record a non-clean round outcome over the suite's lifetime would be
// ideal — here we assert the cheap structural half (kinds x budgets),
// keeping the expensive property in the matrix itself.
func TestKillResumeMatrixCoversOutcomes(t *testing.T) {
	rng := rand.New(rand.NewSource(20240))
	kinds := map[string]int{}
	budgets := map[bool]int{}
	for i := 0; i < 12; i++ {
		inst := generateInstance(rng, conformanceKind(i))
		kinds[inst.kind]++
		budgets[(i/3)%2 == 1]++
	}
	for _, kind := range []string{"multiple", "intersectional", "classifier"} {
		if kinds[kind] < 2 {
			t.Errorf("only %d %s instances in the kill/resume matrix", kinds[kind], kind)
		}
	}
	if budgets[true] < 4 || budgets[false] < 4 {
		t.Errorf("budget coverage too thin: budgeted=%d unbudgeted=%d", budgets[true], budgets[false])
	}
}
