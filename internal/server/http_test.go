package server

// HTTP surface tests: submit/status/list/cancel round-trips through
// the real mux, SSE stream delivery, and error-code mapping.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, cfg JobConfig) JobStatus {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPSubmitStatusList(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	st := postJob(t, ts, smallJob(21))
	if st.ID == "" || st.Mode != ModeMultiple {
		t.Fatalf("submit status: %+v", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		st = getStatus(t, ts, st.ID)
	}
	if st.State != StateDone || st.Result == nil || len(st.Result.Verdicts) == 0 {
		t.Fatalf("final status: %+v", st)
	}

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
}

func TestHTTPStream(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	st := postJob(t, ts, slowJob(22))
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	// The stream must deliver a snapshot, at least one round event,
	// and a terminal state event before closing.
	var sawSnapshot, sawRound, sawTerminal bool
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		switch ev.Type {
		case "snapshot":
			sawSnapshot = true
		case "round":
			sawRound = true
		case "state":
			if ev.State.Terminal() {
				sawTerminal = true
			}
		}
	}
	if !sawSnapshot || !sawRound || !sawTerminal {
		t.Fatalf("stream saw snapshot=%v round=%v terminal=%v", sawSnapshot, sawRound, sawTerminal)
	}
	if st := getStatus(t, ts, st.ID); st.State != StateDone {
		t.Fatalf("after stream end: %s (%s)", st.State, st.Error)
	}
}

func TestHTTPCancel(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	st := postJob(t, ts, slowJob(23))
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	final := waitTerminal(t, e, st.ID)
	if final.State != StateCancelled && final.State != StateDone {
		t.Fatalf("after cancel: %s", final.State)
	}
}

// TestWriteErrorCodes checks the error→status mapping directly — in
// particular that unrecognized (internal) errors report as 500s, not
// client faults.
func TestWriteErrorCodes(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{errors.New("server: persist job meta: disk full"), http.StatusInternalServerError},
		{badConfig("tau must be positive"), http.StatusBadRequest},
		{fmt.Errorf("job-000042: %w", ErrNotFound), http.StatusNotFound},
		{fmt.Errorf("%w: tenant %q", ErrTenantBudget, "acme"), http.StatusTooManyRequests},
		{ErrClosed, http.StatusServiceUnavailable},
		// Every sentinel must keep matching through wrapping — the
		// cvglint sentinelerr rule bans the raw == that would silently
		// break these mappings — including a double-wrapped chain.
		{fmt.Errorf("normalize: %w", ErrInvalidConfig), http.StatusBadRequest},
		{fmt.Errorf("shutting down: %w", ErrClosed), http.StatusServiceUnavailable},
		{fmt.Errorf("submit: %w", fmt.Errorf("tenant acme: %w", ErrTenantBudget)), http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if rec.Code != tc.code {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.Code, tc.code)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, TenantMaxHITs: 1})
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		do   func() (*http.Response, error)
		code int
	}{
		{"bad config", func() (*http.Response, error) {
			return http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"mode":"bogus","dataset":{"n":10}}`))
		}, http.StatusBadRequest},
		{"unknown field", func() (*http.Response, error) {
			return http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"bogus_field":1}`))
		}, http.StatusBadRequest},
		{"unknown job", func() (*http.Response, error) {
			return http.Get(ts.URL + "/jobs/job-999999")
		}, http.StatusNotFound},
		{"unknown stream", func() (*http.Response, error) {
			return http.Get(ts.URL + "/jobs/job-999999/stream")
		}, http.StatusNotFound},
		{"cancel unknown", func() (*http.Response, error) {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-999999", nil)
			if err != nil {
				return nil, err
			}
			return http.DefaultClient.Do(req)
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}

	// Tenant exhaustion maps to 429: burn the 1-HIT tenant cap, then
	// the next submission is refused.
	first := postJob(t, ts, smallJob(31))
	waitTerminal(t, e, first.ID)
	body, _ := json.Marshal(smallJob(32))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted tenant submit = %d, want 429", resp.StatusCode)
	}
}
