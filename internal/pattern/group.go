package pattern

import "strings"

// Group is a demographic group or super-group: a disjunction of
// patterns. A plain group has one member; the super-groups formed by
// the aggregation heuristic of the paper (section 4) OR together
// several minority groups so one crowd task can cover all of them.
type Group struct {
	// Name is an optional display name, e.g. "female" or
	// "asian|native|middle-eastern".
	Name string
	// Members are the patterns whose union defines the group.
	Members []Pattern
}

// GroupOf builds a single-pattern group.
func GroupOf(name string, p Pattern) Group {
	return Group{Name: name, Members: []Pattern{p}}
}

// SuperGroup builds a group that is the union of the given groups, as
// produced by the aggregate step of Multiple-Coverage. Member patterns
// are concatenated; the name joins the parts with '|'.
func SuperGroup(groups ...Group) Group {
	var g Group
	names := make([]string, 0, len(groups))
	for _, sub := range groups {
		g.Members = append(g.Members, sub.Members...)
		if sub.Name != "" {
			names = append(names, sub.Name)
		}
	}
	g.Name = strings.Join(names, "|")
	return g
}

// IsSuper reports whether the group has more than one member pattern.
func (g Group) IsSuper() bool { return len(g.Members) > 1 }

// Matches reports whether the label vector belongs to the group, i.e.
// matches at least one member pattern.
func (g Group) Matches(labels []int) bool {
	for _, p := range g.Members {
		if p.Matches(labels) {
			return true
		}
	}
	return false
}

// String returns the group name, falling back to the member patterns.
func (g Group) String() string {
	if g.Name != "" {
		return g.Name
	}
	parts := make([]string, len(g.Members))
	for i, p := range g.Members {
		parts[i] = p.String()
	}
	return strings.Join(parts, "|")
}

// Format renders the disjunction with schema names, e.g.
// "(gender=female AND race=X) OR (gender=X AND race=black)".
func (g Group) Format(s *Schema) string {
	if len(g.Members) == 1 {
		return g.Members[0].Format(s)
	}
	parts := make([]string, len(g.Members))
	for i, p := range g.Members {
		parts[i] = "(" + p.Format(s) + ")"
	}
	return strings.Join(parts, " OR ")
}

// GroupsForAttribute returns one single-pattern group per value of the
// given attribute: the "multiple non-intersectional groups" setting.
func GroupsForAttribute(s *Schema, attr int) []Group {
	a := s.Attr(attr)
	out := make([]Group, 0, a.Cardinality())
	for v := 0; v < a.Cardinality(); v++ {
		p := All(s)
		p[attr] = v
		out = append(out, Group{Name: a.Name + "=" + a.Values[v], Members: []Pattern{p}})
	}
	return out
}

// SubgroupGroups returns one group per fully-specified subgroup, named
// with schema value names: the "intersectional groups" setting.
func SubgroupGroups(s *Schema) []Group {
	subs := Subgroups(s)
	out := make([]Group, 0, len(subs))
	for _, p := range subs {
		parts := make([]string, len(p))
		for i, v := range p {
			parts[i] = s.Attr(i).Values[v]
		}
		out = append(out, Group{Name: strings.Join(parts, "-"), Members: []Pattern{p}})
	}
	return out
}
