package sim

import (
	"strings"
	"testing"
)

func TestRunSamplingBaselineShape(t *testing.T) {
	res, err := RunSamplingBaseline(Options{Seed: 83, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	byF := map[int]BaselineRow{}
	for _, r := range res.Rows {
		byF[r.Females] = r
	}
	// At the threshold (f = tau), sampling cannot decide within its
	// budget while Group-Coverage decides exactly.
	atTau := byF[50]
	if atTau.SampledDecided > 0.5 {
		t.Errorf("f=tau: sampling decided %.2f of trials; should mostly fail", atTau.SampledDecided)
	}
	if atTau.GroupTasks <= 0 {
		t.Error("Group-Coverage must run")
	}
	// Far from the threshold (f = 100*tau), sampling decides cheaply
	// and correctly.
	far := byF[5000]
	if far.SampledDecided < 1 {
		t.Errorf("f=100tau: sampling decided %.2f, want 1.0", far.SampledDecided)
	}
	if far.SampledCorrect < 1 {
		t.Errorf("f=100tau: sampling correct %.2f, want 1.0", far.SampledCorrect)
	}
	if far.SampledTasks >= far.GroupTasks {
		t.Errorf("f=100tau: sampling (%.1f) should undercut Group-Coverage (%.1f)",
			far.SampledTasks, far.GroupTasks)
	}
	if !strings.Contains(res.String(), "Hoeffding") {
		t.Error("rendering missing title")
	}
}

func TestRunAggregationComparison(t *testing.T) {
	res, err := RunAggregationComparison(Options{Seed: 89, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 spammer levels x 2 aggregators", len(res.Rows))
	}
	// Clean pools: both aggregators fully correct.
	for _, r := range res.Rows {
		if r.SpammerFraction == 0 && r.CorrectVerdicts != 1 {
			t.Errorf("clean pool, %s: correct %.2f, want 1.0", r.Aggregator, r.CorrectVerdicts)
		}
		if r.CorrectVerdicts < 0 || r.CorrectVerdicts > 1 {
			t.Errorf("correct fraction out of range: %+v", r)
		}
		if r.HITs <= 0 {
			t.Errorf("no HITs recorded: %+v", r)
		}
	}
	if !strings.Contains(res.String(), "majority vote") {
		t.Error("rendering missing aggregators")
	}
}
