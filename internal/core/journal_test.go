package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// memJournal collects records in memory for tests.
type memJournal struct {
	recs []RoundRecord
	err  error // injected Append failure
}

func (m *memJournal) Append(rec RoundRecord) error {
	if m.err != nil {
		return m.err
	}
	m.recs = append(m.recs, rec)
	return nil
}

// deadOracle fails every call: replay tests wrap it to prove replayed
// rounds never touch the inner oracle.
type deadOracle struct{}

var errDeadOracle = errors.New("core: dead oracle touched")

func (deadOracle) SetQuery([]dataset.ObjectID, pattern.Group) (bool, error) {
	return false, errDeadOracle
}
func (deadOracle) ReverseSetQuery([]dataset.ObjectID, pattern.Group) (bool, error) {
	return false, errDeadOracle
}
func (deadOracle) PointQuery(dataset.ObjectID) ([]int, error) { return nil, errDeadOracle }

// journalAudit runs one lockstep Multiple-Coverage audit through a
// journaling middleware over o and returns its serialized result.
func journalAudit(t *testing.T, d *dataset.Dataset, jo *JournalingOracle, seed int64) string {
	t.Helper()
	s := raceSchema()
	groups := pattern.GroupsForAttribute(s, 0)
	res, err := MultipleCoverage(jo, d.IDs(), 20, 20, groups, MultipleOptions{
		Rng:      rand.New(rand.NewSource(seed)),
		Lockstep: true,
	})
	if err != nil {
		t.Fatalf("MultipleCoverage: %v", err)
	}
	return fmt.Sprintf("%+v|%+v|%+v|%d|%d|%d",
		res.Results, res.SuperAudits, res.RemainingIDs, res.SampleTasks, res.AuditTasks, res.Tasks)
}

// TestJournalRecordReplay is the tentpole's core property: a journaled
// audit replays byte-identically from its records alone — the inner
// oracle of the resumed run is never touched when the journal covers
// every round.
func TestJournalRecordReplay(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{400, 30, 25, 22}, rand.New(rand.NewSource(41)))

	mem := &memJournal{}
	live := journalAudit(t, d, NewJournalingOracle(NewTruthOracle(d), mem, nil, nil), 7)
	if len(mem.recs) == 0 {
		t.Fatal("live run journaled no rounds")
	}
	for i, rec := range mem.recs {
		if rec.Round != i {
			t.Fatalf("record %d has Round=%d", i, rec.Round)
		}
	}

	replayJo := NewJournalingOracle(deadOracle{}, nil, mem.recs, nil)
	replayed := journalAudit(t, d, replayJo, 7)
	if replayed != live {
		t.Errorf("replayed result diverged:\n%s\nvs\n%s", replayed, live)
	}
	if got := replayJo.Replayed(); got != len(mem.recs) {
		t.Errorf("Replayed() = %d, want %d", got, len(mem.recs))
	}
}

// TestJournalPartialReplaySwitchesLive resumes from a prefix of the
// journal: the first K rounds replay, the rest run live, and the
// result still matches the uninterrupted run.
func TestJournalPartialReplaySwitchesLive(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{400, 30, 25, 22}, rand.New(rand.NewSource(42)))

	mem := &memJournal{}
	live := journalAudit(t, d, NewJournalingOracle(NewTruthOracle(d), mem, nil, nil), 7)
	if len(mem.recs) < 2 {
		t.Fatalf("need >= 2 rounds, got %d", len(mem.recs))
	}

	k := len(mem.recs) / 2
	truth := NewTruthOracle(d)
	resumeJo := NewJournalingOracle(truth, nil, mem.recs[:k], nil)
	resumed := journalAudit(t, d, resumeJo, 7)
	if resumed != live {
		t.Errorf("resumed result diverged:\n%s\nvs\n%s", resumed, live)
	}
	if got := resumeJo.Replayed(); got != k {
		t.Errorf("Replayed() = %d, want %d", got, k)
	}
	if truth.Tasks().Total() == 0 {
		t.Error("live suffix never reached the inner oracle")
	}
}

// TestJournalReplayMismatch: records from a different audit
// configuration must fail with ErrJournalMismatch, never fabricate
// answers.
func TestJournalReplayMismatch(t *testing.T) {
	s := raceSchema()
	g := pattern.GroupsForAttribute(s, 0)[1]

	recs := []RoundRecord{{
		Round:      0,
		Sets:       []SetRequest{{IDs: []dataset.ObjectID{0, 1}, Group: g}},
		SetAnswers: []bool{true},
	}}

	jo := NewJournalingOracle(deadOracle{}, nil, recs, nil)
	// Different ids than journaled.
	if _, err := jo.SetQuery([]dataset.ObjectID{5, 6}, g); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("set mismatch err = %v, want ErrJournalMismatch", err)
	}
	// Point round against a journaled set round.
	jo = NewJournalingOracle(deadOracle{}, nil, recs, nil)
	if _, err := jo.PointQuery(0); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("kind mismatch err = %v, want ErrJournalMismatch", err)
	}
	// Unknown journaled outcome kind.
	bad := []RoundRecord{{Round: 0, Sets: recs[0].Sets, ErrKind: "martian"}}
	jo = NewJournalingOracle(deadOracle{}, nil, bad, nil)
	if _, err := jo.SetQuery([]dataset.ObjectID{0, 1}, g); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("unknown outcome err = %v, want ErrJournalMismatch", err)
	}
}

// TestJournalRestoresGovernorSpend: replayed rounds restore the budget
// ledger instead of charging it — the paid-HIT-never-recharged rule.
func TestJournalRestoresGovernorSpend(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{400, 30, 25, 22}, rand.New(rand.NewSource(44)))
	budget := Budget{MaxHITs: 60}

	mem := &memJournal{}
	gov := NewBudgetedOracle(NewTruthOracle(d), budget)
	live := journalAudit(t, d, NewJournalingOracle(gov, mem, nil, gov), 7)
	liveSpent := gov.Spent()
	if liveSpent.HITs() == 0 {
		t.Fatal("budgeted live run spent nothing")
	}

	truth := NewTruthOracle(d)
	gov2 := NewBudgetedOracle(truth, budget)
	jo2 := NewJournalingOracle(gov2, nil, mem.recs, gov2)
	replayed := journalAudit(t, d, jo2, 7)
	if replayed != live {
		t.Errorf("budgeted replay diverged:\n%s\nvs\n%s", replayed, live)
	}
	if got := gov2.Spent(); !reflect.DeepEqual(got, liveSpent) {
		t.Errorf("replayed governor spend %+v, want %+v", got, liveSpent)
	}
	if n := truth.Tasks().Total(); n != 0 {
		t.Errorf("replay posted %d HITs to the inner oracle, want 0", n)
	}
}

// TestJournalContextCancel: a cancelled context fails the next round
// before it reaches the oracle or the journal.
func TestJournalContextCancel(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{50, 5, 5, 5}, rand.New(rand.NewSource(45)))
	g := pattern.GroupsForAttribute(s, 0)[1]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mem := &memJournal{}
	truth := NewTruthOracle(d)
	jo := NewJournalingOracle(truth, mem, nil, nil).SetContext(ctx)
	if _, err := jo.SetQuery(d.IDs()[:2], g); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if truth.Tasks().Total() != 0 || len(mem.recs) != 0 {
		t.Errorf("cancelled round reached oracle (%d tasks) or journal (%d records)",
			truth.Tasks().Total(), len(mem.recs))
	}
}

// TestJournalAppendFailureIsLoud: a round that committed to the crowd
// but could not be journaled must surface the append error — silently
// continuing would leave unrecoverable paid HITs.
func TestJournalAppendFailureIsLoud(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{50, 5, 5, 5}, rand.New(rand.NewSource(46)))
	g := pattern.GroupsForAttribute(s, 0)[1]

	sentinel := errors.New("disk full")
	jo := NewJournalingOracle(NewTruthOracle(d), &memJournal{err: sentinel}, nil, nil)
	if _, err := jo.SetQuery(d.IDs()[:2], g); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want append failure surfaced", err)
	}
}

// TestJournalSkipsHardErrorsAndEmptyRounds: hard errors are not
// deterministic facts about a committed round, so they pass through
// unjournaled; empty batches never reach journal or oracle.
func TestJournalSkipsHardErrorsAndEmptyRounds(t *testing.T) {
	mem := &memJournal{}
	jo := NewJournalingOracle(deadOracle{}, mem, nil, nil)

	if _, err := jo.PointQuery(3); !errors.Is(err, errDeadOracle) {
		t.Fatalf("err = %v, want hard error passed through", err)
	}
	if len(mem.recs) != 0 || jo.Rounds() != 0 {
		t.Errorf("hard error journaled: %d records, %d rounds", len(mem.recs), jo.Rounds())
	}

	if answers, err := jo.SetQueryBatch(nil); answers != nil || err != nil {
		t.Errorf("empty set batch = (%v, %v), want (nil, nil)", answers, err)
	}
	if labels, err := jo.PointQueryBatch(nil); labels != nil || err != nil {
		t.Errorf("empty point batch = (%v, %v), want (nil, nil)", labels, err)
	}
	if len(mem.recs) != 0 {
		t.Errorf("empty rounds journaled %d records", len(mem.recs))
	}
}

// TestJournalTransientOutcomeReplays: an ErrTransient round outcome is
// a journaled fact (its committed prefix is real); replay reproduces
// the error without touching the oracle.
func TestJournalTransientOutcomeReplays(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{50, 5, 5, 5}, rand.New(rand.NewSource(47)))
	g := pattern.GroupsForAttribute(s, 0)[1]

	mem := &memJournal{}
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 1} // every call fails
	jo := NewJournalingOracle(flaky, mem, nil, nil)
	if _, err := jo.SetQuery(d.IDs()[:2], g); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if len(mem.recs) != 1 || mem.recs[0].ErrKind != roundErrTransient {
		t.Fatalf("journal = %+v, want one transient record", mem.recs)
	}

	jo2 := NewJournalingOracle(deadOracle{}, nil, mem.recs, nil)
	if _, err := jo2.SetQueryBatch([]SetRequest{{IDs: d.IDs()[:2], Group: g}}); !errors.Is(err, ErrTransient) {
		t.Errorf("replayed err = %v, want ErrTransient", err)
	}
	if jo2.Replayed() != 1 {
		t.Errorf("Replayed() = %d, want 1", jo2.Replayed())
	}
}
