package experiment

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
)

// TestRunSeedDerivation: trial i must see Seed + i and a child RNG
// seeded with exactly that, in trial order.
func TestRunSeedDerivation(t *testing.T) {
	res, err := Run(Config{Name: "seeds", Seed: 100, Trials: 4}, func(tr Trial) (int64, error) {
		if want := int64(100 + tr.Index); tr.Seed != want {
			t.Errorf("trial %d: seed %d, want %d", tr.Index, tr.Seed, want)
		}
		if got, want := tr.Rng.Int63(), rand.New(rand.NewSource(tr.Seed)).Int63(); got != want {
			t.Errorf("trial %d: rng not seeded from trial seed", tr.Index)
		}
		return tr.Seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values(); !reflect.DeepEqual(got, []int64{100, 101, 102, 103}) {
		t.Errorf("values = %v", got)
	}
	if res.Last() != 103 {
		t.Errorf("last = %d", res.Last())
	}
}

// TestRunParallelismInvariance: observations, their order and the
// aggregates must be identical at every pool width.
func TestRunParallelismInvariance(t *testing.T) {
	run := func(parallelism int) *Result[float64] {
		res, err := Run(Config{Seed: 7, Trials: 16, Parallelism: parallelism},
			func(tr Trial) (float64, error) {
				return tr.Rng.Float64() * float64(tr.Index+1), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	metric := func(v float64) float64 { return v }
	for _, par := range []int{4, 16} {
		res := run(par)
		if !reflect.DeepEqual(res.Values(), base.Values()) {
			t.Errorf("parallelism %d: observations diverged", par)
		}
		if res.Summarize(metric) != base.Summarize(metric) {
			t.Errorf("parallelism %d: summary diverged", par)
		}
	}
	s := base.Summarize(metric)
	if s.N != 16 || s.CI95() <= 0 {
		t.Errorf("summary %+v lost trials or CI", s)
	}
}

// TestRunNormalizesTrials: non-positive trial counts run exactly one
// trial — the uniform rule every experiment inherits.
func TestRunNormalizesTrials(t *testing.T) {
	for _, trials := range []int{-3, 0} {
		res, err := Run(Config{Seed: 1, Trials: trials}, func(tr Trial) (int, error) {
			return tr.Index, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Trials) != 1 || res.Config.Trials != 1 {
			t.Errorf("trials=%d: ran %d, config %d; want 1", trials, len(res.Trials), res.Config.Trials)
		}
	}
}

// TestRunPropagatesErrors: the first failing trial aborts the cell.
func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 8} {
		_, err := Run(Config{Seed: 1, Trials: 8, Parallelism: par}, func(tr Trial) (int, error) {
			if tr.Index == 3 {
				return 0, boom
			}
			return tr.Index, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("parallelism %d: err = %v, want boom", par, err)
		}
	}
}

// TestRunManyFlattensCellMajor: at parallelism 1 the execution order
// must be the legacy nested loop (cells outer, trials inner), and
// each cell's results must land in its own slot.
func TestRunManyFlattensCellMajor(t *testing.T) {
	var order []Trial
	cfgs := []Config{
		{Name: "a", Seed: 10, Trials: 2},
		{Name: "b", Seed: 20, Trials: 3},
	}
	results, err := RunMany(cfgs, func(cell int, tr Trial) (int64, error) {
		order = append(order, tr)
		return tr.Seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds := []int64{10, 11, 20, 21, 22}
	if len(order) != len(wantSeeds) {
		t.Fatalf("ran %d trials, want %d", len(order), len(wantSeeds))
	}
	for i, tr := range order {
		if tr.Seed != wantSeeds[i] {
			t.Errorf("execution %d: seed %d, want %d", i, tr.Seed, wantSeeds[i])
		}
	}
	if got := results[0].Values(); !reflect.DeepEqual(got, []int64{10, 11}) {
		t.Errorf("cell a values = %v", got)
	}
	if got := results[1].Values(); !reflect.DeepEqual(got, []int64{20, 21, 22}) {
		t.Errorf("cell b values = %v", got)
	}
}

// TestRunManyParallelFillsPool: a grid of single-trial cells must
// still run concurrently — the property that makes sweeps parallel.
func TestRunManyParallelFillsPool(t *testing.T) {
	const cells = 8
	cfgs := make([]Config, cells)
	for i := range cfgs {
		cfgs[i] = Config{Seed: int64(i), Trials: 1, Parallelism: cells}
	}
	var mu sync.Mutex
	running, peak := 0, 0
	_, err := RunMany(cfgs, func(cell int, tr Trial) (int, error) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		running--
		mu.Unlock()
		return cell, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d; single-trial cells did not share the pool", peak)
	}
}

// TestRunManyHonorsPerCellParallelism: a cell declaring Parallelism 1
// must never see two of its trials in flight, even when a wider
// sibling sizes the grid's shared pool.
func TestRunManyHonorsPerCellParallelism(t *testing.T) {
	var mu sync.Mutex
	inFlight, peak := 0, 0
	cfgs := []Config{
		{Name: "sequential", Seed: 1, Trials: 6, Parallelism: 1},
		{Name: "wide", Seed: 100, Trials: 6, Parallelism: 8},
	}
	_, err := RunMany(cfgs, func(cell int, tr Trial) (int, error) {
		if cell == 0 {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			defer func() {
				mu.Lock()
				inFlight--
				mu.Unlock()
			}()
		}
		time.Sleep(5 * time.Millisecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 1 {
		t.Errorf("sequential cell reached %d concurrent trials, want 1", peak)
	}
}

// TestSharedOracleHandedToEveryTrial: Config.Oracle supplies
// Trial.Oracle, and SharedCache hands all trials the same instance.
func TestSharedOracleHandedToEveryTrial(t *testing.T) {
	d, err := dataset.BinaryWithMinority(100, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	factory, cache := SharedCache(core.NewTruthOracle(d))
	res, err := Run(Config{Seed: 5, Trials: 3, Oracle: factory}, func(tr Trial) (bool, error) {
		if tr.Oracle == nil {
			t.Fatal("trial received no oracle")
		}
		return tr.Oracle == core.Oracle(cache), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.All(func(same bool) bool { return same }) {
		t.Error("trials did not share one cached oracle")
	}
	if !res.Trials[0].HasCache {
		t.Error("cache statistics not snapshotted")
	}
}

// TestFactoryErrorAborts: a failing oracle factory fails the run.
func TestFactoryErrorAborts(t *testing.T) {
	bad := errors.New("no crowd")
	_, err := Run(Config{Trials: 2, Oracle: PerTrial(func(Trial) (core.Oracle, error) { return nil, bad })},
		func(tr Trial) (int, error) { return 0, nil })
	if !errors.Is(err, bad) {
		t.Errorf("err = %v, want factory error", err)
	}
}

// TestRecorder: observations aggregate; nil and zero-value recorders
// are safe.
func TestRecorder(t *testing.T) {
	r := NewRecorder()
	cfg := Config{Name: "cell", Seed: 1, Trials: 3, Timing: r}
	if _, err := Run(cfg, func(tr Trial) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	cfg2 := Config{Name: "other", Seed: 9, Trials: 2, Timing: r}
	if _, err := Run(cfg2, func(tr Trial) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	s := r.Summary()
	if s.Trials != 5 || s.Cells != 2 || s.Slowest == "" {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" || (TimingSummary{}).String() == "" {
		t.Error("summaries must render")
	}
	r.Reset()
	if r.Summary().Trials != 0 {
		t.Error("reset did not clear")
	}

	var nilRec *Recorder
	nilRec.observe("x", time.Second) // must not panic
	if nilRec.Summary().Trials != 0 {
		t.Error("nil recorder summary")
	}
	zero := &Recorder{}
	zero.observe("x", time.Second)
	if zero.Summary().Trials != 1 {
		t.Error("zero-value recorder must work")
	}
}

// TestRunManyValidates: an empty grid is an error, not a silent no-op.
func TestRunManyValidates(t *testing.T) {
	if _, err := RunMany(nil, func(int, Trial) (int, error) { return 0, nil }); err == nil {
		t.Error("empty grid: want error")
	}
}
