// Package core implements the paper's contribution: crowd-efficient
// coverage identification for image datasets. It contains
//
//   - Group-Coverage (Algorithm 1): the divide-and-conquer group-testing
//     procedure deciding whether one group reaches the coverage
//     threshold tau with Theta(N/n + tau log n) set queries;
//   - Base-Coverage (Algorithm 7): the point-query baseline;
//   - Multiple-Coverage (Algorithm 2) with LabelSamples and Aggregate
//     (Algorithm 6): the super-group heuristic for many groups;
//   - Intersectional-Coverage (Algorithm 3): MUP discovery over the
//     pattern graph of several sensitive attributes;
//   - Classifier-Coverage (Algorithm 4) with Partition and Label
//     (Algorithm 5): exploiting a pre-trained classifier's predictions;
//   - the theoretical task bounds of section 3.2.
//
// Algorithms interact with the crowd only through the Oracle
// interface, implemented by the crowd-platform simulator, by the
// perfect TruthOracle used in the paper's synthetic experiments, and
// by test doubles.
//
// On top of the sequential algorithms sits the concurrent audit
// engine:
//
//   - BatchOracle (batch.go) extends Oracle with whole-round
//     execution, the way HIT groups are actually posted; AsBatchOracle
//     lifts plain oracles through a bounded worker pool, while
//     TruthOracle and the crowd platform implement it natively.
//   - CachingOracle (cache.go) deduplicates identical queries on a
//     canonicalized key (sorted id-set plus group members) with
//     in-flight collapsing; errors are never cached.
//   - MultipleOptions.Parallelism (parallel.go) runs Multiple-Coverage
//     with super-group audits and covered-penalty re-audits fanned
//     across a worker pool, batched sampling, and per-audit child RNGs
//     split deterministically from the seed. Verdicts, task counts and
//     result bytes match the sequential engine exactly for
//     order-independent oracles at any parallelism.
//   - RetryPolicy (retry.go) re-posts transiently failing HITs with
//     jittered backoff drawn from the per-audit child RNG.
//   - GroupCoverageRounds (rounds.go) issues each tree level as one
//     SetQueryBatch round, so even the order-dependent crowd simulator
//     reproduces identical audits at every parallelism setting.
//   - MultipleOptions.Lockstep (lockstep.go) extends that guarantee to
//     the whole multi-group engine: concurrent audits advance in
//     virtual rounds whose queries commit as one BatchOracle round in
//     canonical (super-group, member, query-sequence) order, so even
//     order-dependent oracles produce bit-identical verdicts, task
//     counts and spend at every Parallelism value.
//   - ClassifierOptions.Parallelism / Lockstep (classifier_parallel.go)
//     bring Classifier-Coverage under the same contract: the precision
//     sample posts as one point-query round, the Label phase as
//     bounded rounds of max(1, tau - verified) point queries whose
//     answers commit in predicted-set order with a deterministic early
//     stop (stop at the first index where verified >= tau, discard
//     later in-flight answers), and the Partition phase as one
//     reverse-set round per tree level with the sequential sibling
//     inference applied at commit time. Round composition is a pure
//     function of committed answers — never of the pool width.
//
// The determinism contract, by oracle kind:
//
//   - order-independent oracles (TruthOracle, stateless crowd bridges,
//     anything whose answer is a function of the request alone) are
//     safe with the free-running pool: verdicts and task counts equal
//     the sequential engine at any Parallelism, with or without
//     Lockstep.
//   - order-dependent oracles (the crowd Platform, whose worker draws
//     advance an RNG per HIT; any stateful simulator or aggregator)
//     need Lockstep for cross-parallelism reproducibility, and must
//     implement BatchOracle natively with batches executing in request
//     order — the property the canonical round commit leans on.
//
// Every audit algorithm in the package now honors the contract —
// Multiple-, Intersectional- and Classifier-Coverage all batch their
// rounds and take the Lockstep knob. One asymmetry remains by design:
// the batched engines count only committed queries in their task
// tallies (matching the sequential engines exactly), while speculative
// in-flight answers a deterministic early stop discards were still
// paid HITs — the ledger, not the task count, carries that over-issue.
//
// Budget governance (budget.go) caps that spend end to end: a Budget
// (max HITs, per-kind caps, max spend under a CostFunc) is enforced by
// the BudgetedOracle middleware, which charges committed queries one at
// a time in canonical order and admits only the affordable prefix of a
// batch — the one middleware exercising the partial-prefix clause of
// the BatchOracle contract, which the lockstep commit path delivers to
// its tasks instead of discarding paid answers. Every audit algorithm
// translates the governor's ErrBudgetExhausted into a deterministic
// partial result (Exhausted flags, per-group Settled markers,
// best-effort bounds from committed answers; Intersectional keeps
// Unknown verdicts) — never a panic, an error, or a hung round. The
// batched engines additionally narrow their speculative rounds to the
// governor's remaining headroom: Label rounds post min(tau - verified,
// headroom) point queries, and the Partition frontier is clipped to
// the queue prefix that could still reach the early stop. Under
// Lockstep the exhaustion point, partial verdicts, committed task
// counts and ledger spend are byte-identical at every Parallelism
// value; the free pool charges in arrival order (race-free, not
// width-reproducible).
package core

import (
	"errors"
	"fmt"
	"sync"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// Oracle answers the three HIT types of the paper (section 2.3).
// Implementations are expected to be expensive — every call is a crowd
// task — so algorithms minimize calls and count them.
type Oracle interface {
	// SetQuery reports whether at least one of the objects belongs to
	// group g (Figure 2 of the paper).
	SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error)
	// ReverseSetQuery reports whether at least one of the objects does
	// NOT belong to group g (the verification question of section 5).
	ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error)
	// PointQuery returns the attribute values of a single object
	// (Figure 1 of the paper).
	PointQuery(id dataset.ObjectID) ([]int, error)
}

// TaskCounts tallies oracle calls by HIT type.
type TaskCounts struct {
	Point, Set, ReverseSet int
}

// Total returns the combined number of tasks.
func (t TaskCounts) Total() int { return t.Point + t.Set + t.ReverseSet }

// String implements fmt.Stringer.
func (t TaskCounts) String() string {
	return fmt.Sprintf("tasks=%d (point=%d set=%d reverse=%d)", t.Total(), t.Point, t.Set, t.ReverseSet)
}

// TruthOracle answers every query from ground truth with no noise and
// no redundancy. It reproduces the paper's synthetic "simulation of
// the crowd" (section 6.5) and doubles as the reference oracle in
// tests. It also counts tasks and is safe for concurrent use (the
// level-synchronous driver issues whole rounds of queries in
// parallel).
type TruthOracle struct {
	ds *dataset.Dataset

	mu     sync.Mutex
	counts TaskCounts
}

// NewTruthOracle builds a perfect oracle over the dataset.
func NewTruthOracle(ds *dataset.Dataset) *TruthOracle {
	return &TruthOracle{ds: ds}
}

// SetQuery implements Oracle.
func (o *TruthOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	if len(ids) == 0 {
		return false, errors.New("core: empty set query")
	}
	o.mu.Lock()
	o.counts.Set++
	o.mu.Unlock()
	for _, id := range ids {
		labels, ok := o.ds.TrueLabels(id)
		if !ok {
			return false, fmt.Errorf("core: unknown object %d", id)
		}
		if g.Matches(labels) {
			return true, nil
		}
	}
	return false, nil
}

// ReverseSetQuery implements Oracle.
func (o *TruthOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	if len(ids) == 0 {
		return false, errors.New("core: empty reverse set query")
	}
	o.mu.Lock()
	o.counts.ReverseSet++
	o.mu.Unlock()
	for _, id := range ids {
		labels, ok := o.ds.TrueLabels(id)
		if !ok {
			return false, fmt.Errorf("core: unknown object %d", id)
		}
		if !g.Matches(labels) {
			return true, nil
		}
	}
	return false, nil
}

// PointQuery implements Oracle.
func (o *TruthOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	o.mu.Lock()
	o.counts.Point++
	o.mu.Unlock()
	labels, ok := o.ds.TrueLabels(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown object %d", id)
	}
	out := make([]int, len(labels))
	copy(out, labels)
	return out, nil
}

// SetQueryBatch implements BatchOracle natively: ground-truth answers
// depend only on the request, so the batch is answered in place with
// no worker pool.
func (o *TruthOracle) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	answers := make([]bool, len(reqs))
	for i, req := range reqs {
		var err error
		if req.Reverse {
			answers[i], err = o.ReverseSetQuery(req.IDs, req.Group)
		} else {
			answers[i], err = o.SetQuery(req.IDs, req.Group)
		}
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}

// PointQueryBatch implements BatchOracle natively.
func (o *TruthOracle) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	labels := make([][]int, len(ids))
	for i, id := range ids {
		var err error
		labels[i], err = o.PointQuery(id)
		if err != nil {
			return nil, err
		}
	}
	return labels, nil
}

// Tasks returns the oracle's task tally.
func (o *TruthOracle) Tasks() TaskCounts {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts
}

// Reset clears the task tally.
func (o *TruthOracle) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.counts = TaskCounts{}
}

// FlakyOracle wraps another oracle and fails every FailEvery-th call
// with ErrTransient, for failure-injection tests: algorithms must
// propagate oracle errors instead of mislabeling coverage. Safe for
// concurrent use when the inner oracle is.
type FlakyOracle struct {
	Inner     Oracle
	FailEvery int

	mu    sync.Mutex
	calls int
}

// ErrTransient is the error injected by FlakyOracle.
var ErrTransient = errors.New("core: transient crowd failure")

func (f *FlakyOracle) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.FailEvery > 0 && f.calls%f.FailEvery == 0 {
		return ErrTransient
	}
	return nil
}

// SetQuery implements Oracle.
func (f *FlakyOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.Inner.SetQuery(ids, g)
}

// ReverseSetQuery implements Oracle.
func (f *FlakyOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.Inner.ReverseSetQuery(ids, g)
}

// PointQuery implements Oracle.
func (f *FlakyOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.Inner.PointQuery(id)
}

// LabeledSet is the set L of section 4: objects whose attribute values
// the audit has already paid to learn. Moving objects into L prevents
// labeling them twice across algorithm phases.
type LabeledSet struct {
	labels map[dataset.ObjectID][]int
}

// NewLabeledSet returns an empty labeled set.
func NewLabeledSet() *LabeledSet {
	return &LabeledSet{labels: make(map[dataset.ObjectID][]int)}
}

// Add records the labels of one object, overwriting any previous entry.
func (l *LabeledSet) Add(id dataset.ObjectID, labels []int) {
	cp := make([]int, len(labels))
	copy(cp, labels)
	l.labels[id] = cp
}

// Has reports whether the object is labeled.
func (l *LabeledSet) Has(id dataset.ObjectID) bool {
	_, ok := l.labels[id]
	return ok
}

// Labels returns the recorded labels of one object.
func (l *LabeledSet) Labels(id dataset.ObjectID) ([]int, bool) {
	v, ok := l.labels[id]
	return v, ok
}

// Len returns |L|.
func (l *LabeledSet) Len() int { return len(l.labels) }

// Count returns L.count(g): how many labeled objects belong to g.
func (l *LabeledSet) Count(g pattern.Group) int {
	n := 0
	for _, labels := range l.labels {
		if g.Matches(labels) {
			n++
		}
	}
	return n
}
