package crowd

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// The platform is a native batch oracle: whole rounds post under one
// lock and answer in request order.
var _ core.BatchOracle = (*Platform)(nil)

// buildPlatform returns an identically-seeded platform + dataset pair.
func buildPlatform(t *testing.T, platformSeed int64) (*Platform, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(58))
	d, err := dataset.BinaryWithMinority(300, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(d, DefaultConfig(platformSeed))
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

// batchRequests slices the dataset into a mixed round of set and
// reverse-set queries.
func batchRequests(d *dataset.Dataset) []core.SetRequest {
	g := dataset.Female(d.Schema())
	ids := d.IDs()
	var reqs []core.SetRequest
	for i := 0; i+10 <= len(ids); i += 10 {
		reqs = append(reqs, core.SetRequest{IDs: ids[i : i+10], Group: g, Reverse: i%3 == 0})
	}
	return reqs
}

// TestPlatformBatchDeterminism: identically-seeded platforms must
// answer the same batch identically, and a batch must equal the same
// queries issued one by one — the property that makes batched audit
// rounds reproducible at any caller parallelism.
func TestPlatformBatchDeterminism(t *testing.T) {
	p1, d := buildPlatform(t, 59)
	p2, _ := buildPlatform(t, 59)
	p3, _ := buildPlatform(t, 59)
	reqs := batchRequests(d)

	a1, err := p1.SetQueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.SetQueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Error("identically-seeded batches diverged")
	}
	if p1.Ledger().Snapshot() != p2.Ledger().Snapshot() {
		t.Errorf("ledgers diverged: %v vs %v", p1.Ledger().Snapshot(), p2.Ledger().Snapshot())
	}
	// One-by-one on a fresh platform reproduces the batch.
	for i, req := range reqs {
		var ans bool
		if req.Reverse {
			ans, err = p3.ReverseSetQuery(req.IDs, req.Group)
		} else {
			ans, err = p3.SetQuery(req.IDs, req.Group)
		}
		if err != nil {
			t.Fatal(err)
		}
		if ans != a1[i] {
			t.Fatalf("query %d: sequential %v, batch %v", i, ans, a1[i])
		}
	}
}

func TestPlatformPointQueryBatchDeterminism(t *testing.T) {
	p1, d := buildPlatform(t, 60)
	p2, _ := buildPlatform(t, 60)
	ids := d.IDs()[:40]
	l1, err := p1.PointQueryBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	l2 := make([][]int, len(ids))
	for i, id := range ids {
		l2[i], err = p2.PointQuery(id)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Error("batched point labels diverged from sequential")
	}
}

// TestGroupCoverageRoundsOverPlatformIsParallelismInvariant: the
// level-synchronous driver posts each tree level as one native batch,
// so even the order-dependent crowd platform reproduces byte-identical
// audits at every parallelism setting.
func TestGroupCoverageRoundsOverPlatformIsParallelismInvariant(t *testing.T) {
	var base core.RoundsResult
	for i, par := range []int{1, 4, 16} {
		p, d := buildPlatform(t, 61)
		res, err := core.GroupCoverageRounds(p, d.IDs(), 10, 40, dataset.Female(d.Schema()), par)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("parallelism %d: %+v, want %+v", par, res, base)
		}
	}
}

// TestPlatformConcurrentQueriesAreSerialized: concurrent callers must
// be race-free (the mutex serializes the shared platform and worker
// RNGs) and every HIT must be accounted exactly once.
func TestPlatformConcurrentQueriesAreSerialized(t *testing.T) {
	p, d := buildPlatform(t, 62)
	g := dataset.Female(d.Schema())
	ids := d.IDs()

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lo := (w*perWorker + i) % (len(ids) - 10)
				if _, err := p.SetQuery(ids[lo:lo+10], g); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := p.Ledger().Snapshot()
	if snap.TotalHITs != workers*perWorker {
		t.Errorf("ledger HITs = %d, want %d", snap.TotalHITs, workers*perWorker)
	}
}

// TestParallelMultipleCoverageOverPlatform: the concurrent engine can
// audit through the serialized crowd platform without races or errors
// and still reaches ground-truth verdicts on a clear-cut workload.
func TestParallelMultipleCoverageOverPlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	d, err := dataset.BinaryWithMinority(400, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(d, DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	groups := []pattern.Group{dataset.Female(d.Schema()), dataset.Male(d.Schema())}
	res, err := core.MultipleCoverage(p, d.IDs(), 20, 50, groups,
		core.MultipleOptions{Rng: rand.New(rand.NewSource(65)), Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Covered {
		t.Error("10 females < tau 50 should be uncovered")
	}
	if !res.Results[1].Covered {
		t.Error("390 males >= tau 50 should be covered")
	}
}
