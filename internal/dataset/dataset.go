// Package dataset models the unlabeled image collections the paper
// audits: every object carries hidden ground-truth demographic labels
// that the auditing algorithms must never read directly — only the
// crowd simulator (or a perfect oracle standing in for it) may look at
// them. The package also provides the synthetic generators used by the
// experiments, including compositions matching the FERET and UTKFace
// slices reported in the paper.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"imagecvg/internal/pattern"
)

// ObjectID identifies one object (image) of a dataset. IDs are stable
// under shuffling: they name the object, not its position.
type ObjectID int

// Object is a single image with its hidden ground-truth labels (one
// value index per schema attribute).
type Object struct {
	ID     ObjectID
	Labels []int
}

// Dataset is an ordered collection of objects over a schema of
// attributes of interest. The order matters: the divide-and-conquer
// algorithms issue set queries over contiguous index ranges, so a
// shuffle changes which objects share a query.
type Dataset struct {
	schema  *pattern.Schema
	objects []Object
	byID    map[ObjectID]int
}

// New builds a dataset whose i-th object gets ID i and the i-th label
// vector. Label vectors are validated against the schema.
func New(s *pattern.Schema, labels [][]int) (*Dataset, error) {
	if s == nil {
		return nil, errors.New("dataset: nil schema")
	}
	d := &Dataset{
		schema:  s,
		objects: make([]Object, len(labels)),
		byID:    make(map[ObjectID]int, len(labels)),
	}
	for i, l := range labels {
		if !s.ValidLabels(l) {
			return nil, fmt.Errorf("dataset: object %d has invalid labels %v", i, l)
		}
		cp := make([]int, len(l))
		copy(cp, l)
		d.objects[i] = Object{ID: ObjectID(i), Labels: cp}
		d.byID[ObjectID(i)] = i
	}
	return d, nil
}

// MustNew is like New but panics on error; for tests and examples.
func MustNew(s *pattern.Schema, labels [][]int) *Dataset {
	d, err := New(s, labels)
	if err != nil {
		panic(err)
	}
	return d
}

// Schema returns the dataset's attribute schema.
func (d *Dataset) Schema() *pattern.Schema { return d.schema }

// Size returns N, the number of objects.
func (d *Dataset) Size() int { return len(d.objects) }

// At returns the object at position i in the current order.
func (d *Dataset) At(i int) Object { return d.objects[i] }

// ByID returns the object with the given ID.
func (d *Dataset) ByID(id ObjectID) (Object, bool) {
	i, ok := d.byID[id]
	if !ok {
		return Object{}, false
	}
	return d.objects[i], true
}

// TrueLabels returns the hidden ground-truth labels of an object.
// Only oracles (crowd simulator, classifiers, evaluation code) should
// call this; audit algorithms must not.
func (d *Dataset) TrueLabels(id ObjectID) ([]int, bool) {
	o, ok := d.ByID(id)
	if !ok {
		return nil, false
	}
	return o.Labels, true
}

// IDs returns the object IDs in the current dataset order.
func (d *Dataset) IDs() []ObjectID {
	out := make([]ObjectID, len(d.objects))
	for i, o := range d.objects {
		out[i] = o.ID
	}
	return out
}

// Shuffle permutes the object order in place with the given source of
// randomness. IDs are preserved; only positions change.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.objects), func(i, j int) {
		d.objects[i], d.objects[j] = d.objects[j], d.objects[i]
	})
	for i, o := range d.objects {
		d.byID[o.ID] = i
	}
}

// Sample returns k distinct object IDs drawn uniformly without
// replacement. It panics if k exceeds the dataset size.
func (d *Dataset) Sample(k int, rng *rand.Rand) []ObjectID {
	if k > len(d.objects) {
		panic(fmt.Sprintf("dataset: sample %d from %d objects", k, len(d.objects)))
	}
	perm := rng.Perm(len(d.objects))[:k]
	out := make([]ObjectID, k)
	for i, p := range perm {
		out[i] = d.objects[p].ID
	}
	return out
}

// CountGroup returns the ground-truth number of objects in the group.
// Evaluation-only: audit algorithms must obtain counts via queries.
func (d *Dataset) CountGroup(g pattern.Group) int {
	n := 0
	for _, o := range d.objects {
		if g.Matches(o.Labels) {
			n++
		}
	}
	return n
}

// CountPattern returns the ground-truth number of objects matching p.
func (d *Dataset) CountPattern(p pattern.Pattern) int {
	return d.CountGroup(pattern.Group{Members: []pattern.Pattern{p}})
}

// PredictedSet builds a classifier-style predicted-positive set from
// ground truth: the first tp members of g and the first fp non-members,
// in dataset order, with both counts clamped to the composition.
// Evaluation-only, like CountGroup: tests and harnesses shape simulated
// predictions with it (classifier.Simulated realizes full confusion
// matrices when randomized placement matters).
func (d *Dataset) PredictedSet(g pattern.Group, tp, fp int) []ObjectID {
	var members, others []ObjectID
	for _, o := range d.objects {
		if g.Matches(o.Labels) {
			members = append(members, o.ID)
		} else {
			others = append(others, o.ID)
		}
	}
	tp = min(max(tp, 0), len(members))
	fp = min(max(fp, 0), len(others))
	out := make([]ObjectID, 0, tp+fp)
	out = append(out, members[:tp]...)
	return append(out, others[:fp]...)
}

// SubgroupCounts returns ground-truth counts for every fully-specified
// subgroup, indexed by pattern.SubgroupIndex.
func (d *Dataset) SubgroupCounts() []int {
	counts := make([]int, d.schema.NumSubgroups())
	for _, o := range d.objects {
		counts[pattern.SubgroupIndex(d.schema, pattern.Point(o.Labels))]++
	}
	return counts
}

// Covered reports ground-truth coverage of g at threshold tau.
func (d *Dataset) Covered(g pattern.Group, tau int) bool {
	return d.CountGroup(g) >= tau
}

// Slice returns a new dataset over the same schema containing only the
// objects with the given IDs (in the given order). IDs are preserved.
func (d *Dataset) Slice(ids []ObjectID) (*Dataset, error) {
	out := &Dataset{
		schema:  d.schema,
		objects: make([]Object, 0, len(ids)),
		byID:    make(map[ObjectID]int, len(ids)),
	}
	for _, id := range ids {
		o, ok := d.ByID(id)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown object %d", id)
		}
		if _, dup := out.byID[id]; dup {
			return nil, fmt.Errorf("dataset: duplicate object %d", id)
		}
		out.byID[id] = len(out.objects)
		out.objects = append(out.objects, o)
	}
	return out, nil
}
