package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternConstructionAndParse(t *testing.T) {
	s := genderRace()
	p := MustPattern(s, Wildcard, 3)
	if p.String() != "X3" {
		t.Errorf("String = %q, want X3", p.String())
	}
	q, err := Parse(s, "X3")
	if err != nil || !q.Equal(p) {
		t.Errorf("Parse(X3) = %v, %v", q, err)
	}
	if _, err := Parse(s, "X9"); err == nil {
		t.Error("Parse(X9): want range error")
	}
	if _, err := Parse(s, "XXX"); err == nil {
		t.Error("Parse(XXX): want arity error")
	}
	if _, err := Parse(s, "X-3"); err != nil {
		t.Errorf("Parse(X-3): %v", err)
	}
	if _, err := Parse(s, "Xq"); err == nil {
		t.Error("Parse(Xq): want parse error")
	}
	if _, err := NewPattern(s, 0); err == nil {
		t.Error("NewPattern with 1 slot: want error")
	}
	if _, err := NewPattern(s, 0, 7); err == nil {
		t.Error("NewPattern out of range: want error")
	}
}

func TestPatternLevelAndMatch(t *testing.T) {
	s := genderRace()
	all := All(s)
	if all.Level() != 0 || all.FullySpecified() {
		t.Errorf("All: level=%d fully=%v", all.Level(), all.FullySpecified())
	}
	if !all.Matches([]int{1, 2}) {
		t.Error("All must match everything")
	}
	p := MustPattern(s, 1, Wildcard) // female-X
	if p.Level() != 1 {
		t.Errorf("level = %d, want 1", p.Level())
	}
	if !p.Matches([]int{1, 0}) || p.Matches([]int{0, 0}) {
		t.Error("female-X match wrong")
	}
	fp := MustPattern(s, 1, 3) // female-asian
	if !fp.FullySpecified() {
		t.Error("female-asian should be fully specified")
	}
	if p.Matches([]int{1}) {
		t.Error("wrong arity must not match")
	}
}

func TestCovers(t *testing.T) {
	s := genderRace()
	all := All(s)
	fem := MustPattern(s, 1, Wildcard)
	femAsian := MustPattern(s, 1, 3)
	maleAsian := MustPattern(s, 0, 3)
	if !all.Covers(fem) || !all.Covers(femAsian) || !fem.Covers(femAsian) {
		t.Error("generality ordering broken")
	}
	if fem.Covers(maleAsian) || femAsian.Covers(fem) {
		t.Error("Covers must not hold")
	}
	if !femAsian.Covers(femAsian) {
		t.Error("Covers must be reflexive")
	}
}

func TestParentsChildren(t *testing.T) {
	s := genderRace()
	femAsian := MustPattern(s, 1, 3)
	parents := femAsian.Parents()
	if len(parents) != 2 {
		t.Fatalf("parents = %v, want 2", parents)
	}
	// Every parent must cover the child and sit exactly one level up.
	for _, par := range parents {
		if !par.Covers(femAsian) {
			t.Errorf("parent %v does not cover child", par)
		}
		if par.Level() != femAsian.Level()-1 {
			t.Errorf("parent %v level = %d", par, par.Level())
		}
	}
	if len(All(s).Parents()) != 0 {
		t.Error("root has no parents")
	}

	children := All(s).Children(s)
	if len(children) != 2+4 {
		t.Fatalf("children of root = %d, want 6", len(children))
	}
	if got := len(femAsian.Children(s)); got != 0 {
		t.Errorf("fully-specified pattern has %d children, want 0", got)
	}
}

func TestChildrenAlongPartition(t *testing.T) {
	s := genderRace()
	p := All(s)
	kids := p.ChildrenAlong(s, 1)
	if len(kids) != 4 {
		t.Fatalf("ChildrenAlong(race) = %d patterns, want 4", len(kids))
	}
	// Children along one attribute partition matching labels.
	for g := 0; g < 2; g++ {
		for r := 0; r < 4; r++ {
			matches := 0
			for _, k := range kids {
				if k.Matches([]int{g, r}) {
					matches++
				}
			}
			if matches != 1 {
				t.Errorf("labels (%d,%d) matched %d children, want exactly 1", g, r, matches)
			}
		}
	}
	spec := MustPattern(s, 1, 3)
	if spec.ChildrenAlong(s, 0) != nil {
		t.Error("ChildrenAlong on specified attr must be nil")
	}
}

func TestParentChildDuality(t *testing.T) {
	// Property: q is a child of p <=> p is a parent of q.
	s := threeBinary()
	for _, p := range Universe(s) {
		for _, q := range p.Children(s) {
			found := false
			for _, par := range q.Parents() {
				if par.Equal(p) {
					found = true
				}
			}
			if !found {
				t.Fatalf("child %v of %v does not list it as parent", q, p)
			}
		}
	}
}

func TestPatternStringForms(t *testing.T) {
	wide := MustSchema(Attribute{Name: "n", Values: make11()}, Attribute{Name: "m", Values: []string{"a", "b"}})
	p := MustPattern(wide, 10, Wildcard)
	if p.String() != "10-X" {
		t.Errorf("wide String = %q, want 10-X", p.String())
	}
	rt, err := Parse(wide, p.String())
	if err != nil || !rt.Equal(p) {
		t.Errorf("round-trip failed: %v %v", rt, err)
	}
	s := genderRace()
	f := MustPattern(s, 1, Wildcard).Format(s)
	if f != "gender=female AND race=X" {
		t.Errorf("Format = %q", f)
	}
	g := GroupOf("female", MustPattern(s, 1, Wildcard))
	if g.Format(s) != "gender=female AND race=X" {
		t.Errorf("group Format = %q", g.Format(s))
	}
}

func make11() []string {
	out := make([]string, 11)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}

func TestSubgroupIndexRoundTrip(t *testing.T) {
	s := genderRace()
	subs := Subgroups(s)
	if len(subs) != 8 {
		t.Fatalf("Subgroups = %d, want 8", len(subs))
	}
	for i, p := range subs {
		if !p.FullySpecified() {
			t.Errorf("subgroup %v not fully specified", p)
		}
		if got := SubgroupIndex(s, p); got != i {
			t.Errorf("SubgroupIndex(%v) = %d, want %d", p, got, i)
		}
	}
	if got := SubgroupIndex(s, All(s)); got != -1 {
		t.Errorf("SubgroupIndex(wildcard) = %d, want -1", got)
	}
}

func TestSubgroupIndexRoundTripQuick(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "a", Values: []string{"0", "1", "2"}},
		Attribute{Name: "b", Values: []string{"0", "1"}},
		Attribute{Name: "c", Values: []string{"0", "1", "2", "3", "4"}},
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := rng.Intn(s.NumSubgroups())
		return SubgroupIndex(s, SubgroupAt(s, idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniverse(t *testing.T) {
	s := threeBinary()
	u := Universe(s)
	if len(u) != 27 {
		t.Fatalf("universe size = %d, want 27", len(u))
	}
	seen := map[string]bool{}
	for _, p := range u {
		if seen[p.Key()] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[p.Key()] = true
	}
	byLevel := UniverseByLevel(s)
	wantSizes := []int{1, 6, 12, 8}
	for l, want := range wantSizes {
		if len(byLevel[l]) != want {
			t.Errorf("level %d size = %d, want %d", l, len(byLevel[l]), want)
		}
	}
}

func TestGroupMatching(t *testing.T) {
	s := genderRace()
	fem := GroupOf("female", MustPattern(s, 1, Wildcard))
	asian := GroupOf("asian", MustPattern(s, Wildcard, 3))
	super := SuperGroup(fem, asian)
	if !super.IsSuper() || fem.IsSuper() {
		t.Error("IsSuper wrong")
	}
	if super.Name != "female|asian" {
		t.Errorf("super name = %q", super.Name)
	}
	if !super.Matches([]int{1, 0}) || !super.Matches([]int{0, 3}) {
		t.Error("super must match either member")
	}
	if super.Matches([]int{0, 0}) {
		t.Error("super must not match white male")
	}
	unnamed := Group{Members: []Pattern{MustPattern(s, 1, Wildcard)}}
	if unnamed.String() != "1X" {
		t.Errorf("unnamed String = %q", unnamed.String())
	}
}

func TestGroupsForAttribute(t *testing.T) {
	s := genderRace()
	gs := GroupsForAttribute(s, 1)
	if len(gs) != 4 {
		t.Fatalf("groups = %d, want 4", len(gs))
	}
	if gs[3].Name != "race=asian" {
		t.Errorf("name = %q", gs[3].Name)
	}
	// Each label matches exactly one group.
	for g := 0; g < 2; g++ {
		for r := 0; r < 4; r++ {
			n := 0
			for _, grp := range gs {
				if grp.Matches([]int{g, r}) {
					n++
				}
			}
			if n != 1 {
				t.Errorf("labels (%d,%d) matched %d groups", g, r, n)
			}
		}
	}
}

func TestSubgroupGroups(t *testing.T) {
	s := genderRace()
	gs := SubgroupGroups(s)
	if len(gs) != 8 {
		t.Fatalf("subgroup groups = %d, want 8", len(gs))
	}
	if gs[7].Name != "female-asian" {
		t.Errorf("last subgroup name = %q", gs[7].Name)
	}
}
