package a

import "math/rand"

// Test files may draw from the global Source.
func fuzzSeedHelper() int {
	return rand.Intn(100)
}
