package imagecvg

import (
	"context"
	"errors"
	"math/rand"

	"imagecvg/internal/classifier"
	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/pattern"
	"imagecvg/internal/server"
	"imagecvg/internal/stats"
)

// Re-exported substrate types. Aliases keep the public surface small
// while letting callers hold and construct the underlying values.
type (
	// Schema describes the categorical attributes of interest.
	Schema = pattern.Schema
	// Attribute is one categorical attribute (name plus value names).
	Attribute = pattern.Attribute
	// Pattern identifies a subgroup; Wildcard slots are unspecified.
	Pattern = pattern.Pattern
	// Group is a (possibly super-) demographic group.
	Group = pattern.Group
	// MUP is a maximal uncovered pattern.
	MUP = pattern.MUP
	// Coverage is the covered/uncovered/unknown verdict enum.
	Coverage = pattern.Coverage

	// Dataset is an ordered collection of objects with hidden labels.
	Dataset = dataset.Dataset
	// ObjectID names one object of a dataset.
	ObjectID = dataset.ObjectID
	// Preset is a named dataset composition from the paper.
	Preset = dataset.Preset

	// Oracle answers point, set and reverse-set queries. Implement it
	// to bridge the auditor to a real crowdsourcing platform.
	Oracle = core.Oracle
	// Budget caps the crowd tasks an audit may commit (max HITs,
	// per-kind caps, max spend under a CostFunc); see Auditor.WithBudget.
	Budget = core.Budget
	// BudgetSpent is a snapshot of committed budget consumption.
	BudgetSpent = core.BudgetSpent
	// CostFunc prices one committed query for Budget.MaxSpend
	// accounting; SimulatedCrowd.HITCost derives one from the
	// deployment's pricing model.
	CostFunc = core.CostFunc
	// HITKind names the three crowd task types for budget pricing.
	HITKind = core.HITKind
	// GroupResult reports one group audit.
	GroupResult = core.GroupResult
	// MultipleResult reports a Multiple-Coverage audit.
	MultipleResult = core.MultipleResult
	// IntersectionalResult reports MUP discovery.
	IntersectionalResult = core.IntersectionalResult
	// ClassifierResult reports a classifier-assisted audit.
	ClassifierResult = core.ClassifierResult

	// SimulatedClassifier realizes a published confusion matrix.
	SimulatedClassifier = classifier.Simulated
	// Confusion is a binary confusion matrix with derived metrics.
	Confusion = classifier.Confusion

	// Response is one worker's raw (pre-aggregation) answer to one
	// HIT, the unit of the truth-inference estimators.
	Response = crowd.Response
	// DSResult is the Dawid–Skene estimator's output: MAP truth,
	// posteriors, worker accuracies.
	DSResult = crowd.DSResult
	// IncrementalDS folds new responses into Dawid–Skene sufficient
	// statistics and re-runs EM warm-started from the previous
	// posteriors; see SimulatedCrowd.Responses for the input stream.
	IncrementalDS = crowd.IncrementalDS
	// ResponseLog records raw assignments in platform commit order and
	// serves delta reads to incremental consumers.
	ResponseLog = crowd.ResponseLog

	// Summary describes repeated observations (mean, stddev, 95% CI).
	Summary = stats.Summary

	// AuditService is the multi-tenant audit job engine behind cvgrun
	// -serve: persistent jobs with per-job crash-safe journals, a
	// bounded worker pool, tenant budget admission, and an HTTP API
	// (Handler) with SSE progress streams. See NewAuditService.
	AuditService = server.Engine
	// AuditServiceOptions configures an AuditService (data directory,
	// worker-pool width, per-tenant budget caps).
	AuditServiceOptions = server.Options
	// AuditJobConfig is one submitted audit job: mode, dataset spec,
	// audit parameters, oracle choice and budget caps.
	AuditJobConfig = server.JobConfig
	// AuditJobStatus is a job's point-in-time snapshot: state, round
	// progress, committed spend and (when finished) the result.
	AuditJobStatus = server.JobStatus
	// AuditJobResult is a finished job's serialized verdicts, task
	// tallies and ledger spend — byte-identical to the same
	// configuration run one-shot through Auditor.
	AuditJobResult = server.JobResult
	// AuditJobState is the job lifecycle enum.
	AuditJobState = server.JobState
	// AuditDatasetSpec names a job's dataset: a JSON file or a
	// generated binary-gender dataset.
	AuditDatasetSpec = server.DatasetSpec
)

// Audit-service job states (queued → running → done/failed/cancelled;
// interrupted jobs return to queued and resume on restart).
const (
	JobQueued    = server.StateQueued
	JobRunning   = server.StateRunning
	JobDone      = server.StateDone
	JobFailed    = server.StateFailed
	JobCancelled = server.StateCancelled
)

// Audit-service job modes.
const (
	JobModeMultiple       = server.ModeMultiple
	JobModeIntersectional = server.ModeIntersectional
	JobModeClassifier     = server.ModeClassifier
)

// Audit-service errors.
var (
	// ErrJobNotFound marks an unknown job id.
	ErrJobNotFound = server.ErrNotFound
	// ErrTenantBudget marks a submission the tenant's remaining budget
	// cannot admit.
	ErrTenantBudget = server.ErrTenantBudget
	// ErrServiceClosed marks a submission to a closed service.
	ErrServiceClosed = server.ErrClosed
)

// NewAuditService opens (or creates) the service's data directory,
// recovers every persisted job — resuming interrupted ones from their
// journals with byte-identical results — and starts the worker pool.
var NewAuditService = server.NewEngine

// Wildcard is the unspecified pattern slot, written X in the paper.
const Wildcard = pattern.Wildcard

// Coverage verdicts.
const (
	Covered   = pattern.Covered
	Uncovered = pattern.Uncovered
	Unknown   = pattern.Unknown
)

// HIT kinds for CostFunc implementations.
const (
	HITPoint      = core.HITPoint
	HITSet        = core.HITSet
	HITReverseSet = core.HITReverseSet
)

// ErrBudgetExhausted is the sentinel a budget governor returns for
// queries it refuses. The audit entry points translate it into partial
// results (Exhausted flags) rather than surfacing it, so callers only
// meet it when querying a governed oracle directly.
var ErrBudgetExhausted = core.ErrBudgetExhausted

// Re-exported constructors.
var (
	// NewSchema builds a validated schema.
	NewSchema = pattern.NewSchema
	// BinarySchema builds a single binary attribute schema.
	BinarySchema = pattern.Binary
	// NewPattern builds a validated pattern over a schema.
	NewPattern = pattern.NewPattern
	// ParsePattern reads the compact "X01" form.
	ParsePattern = pattern.Parse
	// GroupOf wraps a single pattern as a group.
	GroupOf = pattern.GroupOf
	// GroupsForAttribute lists one group per value of an attribute.
	GroupsForAttribute = pattern.GroupsForAttribute
	// SubgroupGroups lists one group per fully-specified subgroup.
	SubgroupGroups = pattern.SubgroupGroups

	// NewDataset builds a dataset from label vectors.
	NewDataset = dataset.New
	// LoadDataset reads a dataset JSON file.
	LoadDataset = dataset.LoadJSON
	// GenderSchema is the paper's default single-attribute schema.
	GenderSchema = dataset.GenderSchema
	// FemaleGroup / MaleGroup name the two gender groups.
	FemaleGroup = dataset.Female
	MaleGroup   = dataset.Male

	// NewTruthOracle answers from ground truth (the paper's synthetic
	// crowd simulation); useful for testing and benchmarking.
	NewTruthOracle = core.NewTruthOracle

	// DawidSkene runs batch EM truth inference over recorded
	// responses; NewIncrementalDS is its warm-starting online form.
	DawidSkene       = crowd.DawidSkene
	NewIncrementalDS = crowd.NewIncrementalDS

	// LowerBoundTasks, UpperBoundHITs and UpperBoundTasksLog2 are the
	// theoretical task bounds of section 3.2.
	LowerBoundTasks     = core.LowerBoundTasks
	UpperBoundHITs      = core.UpperBoundHITs
	UpperBoundTasksLog2 = core.UpperBoundTasksLog2

	// NewSimulatedClassifier derives a classifier from published
	// accuracy/precision statistics.
	NewSimulatedClassifier = classifier.NewSimulated
	// EvaluateClassifier measures a prediction's confusion matrix.
	EvaluateClassifier = classifier.Evaluate
)

// Paper dataset presets.
var (
	PresetFERETTable1 = dataset.FERETTable1
	PresetFERETUnique = dataset.FERETUnique
	PresetUTKFace200  = dataset.UTKFace200
	PresetUTKFace20   = dataset.UTKFace20
)

// GenerateBinary creates a shuffled gender dataset with exactly
// minority females among n objects, seeded deterministically.
func GenerateBinary(n, minority int, seed int64) (*Dataset, error) {
	return dataset.BinaryWithMinority(n, minority, rand.New(rand.NewSource(seed)))
}

// DatasetFromCounts creates a shuffled dataset with exactly counts[i]
// objects of the i-th fully-specified subgroup, seeded
// deterministically.
func DatasetFromCounts(s *Schema, counts []int, seed int64) (*Dataset, error) {
	return dataset.FromCounts(s, counts, rand.New(rand.NewSource(seed)))
}

// RunTrials repeats an observation across a bounded worker pool — the
// parallel trial-runner behind the repository's experiment harness,
// exposed for library callers benchmarking their own audits. Trial i
// receives a child RNG seeded deterministically with seed+i, so the
// summary (mean, stddev, 95% CI in trial order) is identical at every
// parallelism level; parallelism <= 1 runs the trials sequentially.
// Trials must take all randomness from their RNG and share only
// concurrency-safe state (e.g. one oracle behind a cache); the first
// failing trial aborts the run.
func RunTrials(trials, parallelism int, seed int64, trial func(i int, rng *rand.Rand) (float64, error)) (Summary, error) {
	res, err := experiment.Run(experiment.Config{
		Name:        "RunTrials",
		Seed:        seed,
		Trials:      trials,
		Parallelism: parallelism,
	}, func(t experiment.Trial) (float64, error) {
		return trial(t.Index, t.Rng)
	})
	if err != nil {
		return Summary{}, err
	}
	return res.Summarize(func(x float64) float64 { return x }), nil
}

// Auditor runs coverage audits with fixed parameters against an
// oracle. The zero value is not usable; construct with NewAuditor.
type Auditor struct {
	oracle      Oracle
	tau         int
	setSize     int
	seed        int64
	parallelism int
	lockstep    bool
	retry       core.RetryPolicy
	cache       *core.CachingOracle
	budget      *core.BudgetedOracle
	journaled   *core.JournalingOracle
	trust       *core.TrustOracle
	ctx         context.Context
}

// NewAuditor builds an auditor asking the oracle set queries of at
// most setSize objects and requiring tau objects for coverage.
func NewAuditor(o Oracle, tau, setSize int) *Auditor {
	return &Auditor{oracle: o, tau: tau, setSize: setSize, seed: 1}
}

// WithSeed fixes the seed of the auditor's internal sampling phases
// (Multiple-, Intersectional- and Classifier-Coverage).
func (a *Auditor) WithSeed(seed int64) *Auditor {
	a.seed = seed
	return a
}

// WithParallelism enables the concurrent audit engine: multi-group
// audits schedule independent super-group audits (and covered-penalty
// re-audits) across a worker pool of at most parallelism goroutines,
// and sampling HITs post as one batched round. Values <= 1 keep the
// sequential engine. The oracle must be safe for concurrent use; with
// an order-independent oracle (TruthOracle, a stateless crowd bridge)
// verdicts and task counts match the sequential engine exactly.
func (a *Auditor) WithParallelism(parallelism int) *Auditor {
	a.parallelism = parallelism
	return a
}

// WithLockstep replaces the free-running worker pool with the
// deterministic lockstep scheduler: concurrent audits advance in
// virtual rounds, each round's queries commit to the oracle as one
// batch in canonical (super-group, member, query-sequence) order, and
// the schedule is independent of the parallelism setting. Use it when
// the oracle's answers depend on query order — the simulated crowd,
// whose worker draws advance an RNG per HIT — and reproducibility
// across parallelism levels matters: verdicts, task counts and spend
// are then bit-identical at every WithParallelism value. The oracle
// should answer batches in request order (SimulatedCrowd and
// TruthOracle do; see core.BatchOracle). Order-independent oracles
// additionally reproduce the sequential engine exactly, and batched
// rounds preserve most of the concurrent engine's latency win.
func (a *Auditor) WithLockstep() *Auditor {
	a.lockstep = true
	return a
}

// WithCache interposes a deduplicating query cache between the
// auditor and the oracle: identical HITs (canonicalized id-set plus
// group for set queries, object id for point queries) are paid for
// once across every subsequent audit through this auditor. Transient
// errors are never cached.
func (a *Auditor) WithCache() *Auditor {
	if a.cache == nil {
		a.cache = core.NewCachingOracle(a.oracle)
		a.oracle = a.cache
	}
	return a
}

// WithRetry re-posts transiently failing HITs (core.ErrTransient) up
// to the policy's attempt budget instead of aborting multi-group
// audits.
func (a *Auditor) WithRetry(policy RetryPolicy) *Auditor {
	a.retry = policy
	return a
}

// WithBudget caps the committed crowd queries of ALL audits through
// this auditor with one shared budget governor — the deployment
// control for a customer's spend cap. An audit that hits the cap
// returns a deterministic partial result (result Exhausted flags,
// unsettled groups carrying best-effort bounds) instead of an error;
// under WithLockstep the exhaustion point, partial verdicts, task
// counts and ledger spend are byte-identical at every WithParallelism
// value. Like WithCache, the governor wraps the oracle stack as built
// so far: call WithBudget before WithCache to let cache hits answer
// for free without charging the budget, after it to charge every
// query. Combine MaxSpend with SimulatedCrowd.HITCost (or your
// platform's CostFunc) to denominate the cap in ledger dollars.
//
// The first call wins: one governor (and its accumulated spend) lives
// for the auditor's lifetime, so later WithBudget calls are no-ops and
// their argument is ignored — build a new Auditor to audit under a
// different budget.
func (a *Auditor) WithBudget(b Budget) *Auditor {
	if a.budget == nil {
		a.budget = core.NewBudgetedOracle(a.oracle, b)
		a.oracle = a.budget
	}
	return a
}

// WithJournal makes audits through this auditor crash-safe: every
// committed oracle round is appended to j (one RoundRecord per round —
// use CreateJournal for the fsynced file codec), and the replay
// records of a previous run, when non-nil, answer the first rounds of
// the next audit without touching the oracle — resuming a killed job
// with verdicts, task tallies and budget spend byte-identical to an
// uninterrupted run, and without re-posting (or re-paying) a single
// committed HIT. Replay verifies the resumed audit issues the exact
// journaled requests and fails with ErrJournalMismatch otherwise.
//
// WithJournal implies WithLockstep: only the deterministic round
// scheduler makes the round sequence a pure function of committed
// answers, which is what replay leans on. Call it after WithBudget
// (the governor's ledger is snapshotted per round and restored on
// replay) and before WithCache (a cache above the journal re-fills
// deterministically from replayed answers). Like the other stack
// builders, the first call wins.
func (a *Auditor) WithJournal(j RoundJournal, replay []RoundRecord) *Auditor {
	if a.journaled == nil {
		a.journaled = core.NewJournalingOracle(a.oracle, j, replay, a.budget).SetContext(a.ctx)
		a.oracle = a.journaled
		a.lockstep = true
	}
	return a
}

// WithTrust interposes the adversarial-robustness middleware between
// the auditor and the oracle stack built so far: gold-standard probe
// HITs (TrustConfig.Probes, cycled on the policy's deterministic
// schedule) are appended to committed set rounds, every worker's raw
// answers from TrustConfig.Feed are scored by a sequential likelihood
// ratio against the gold answers and the round consensus, and workers
// the policy distrusts are pushed to TrustConfig.Screen — excluded
// from future assignment draws at round boundaries only. For the
// simulated crowd, wire Feed and Screen from
// SimulatedCrowd.AnswerFeed and SimulatedCrowd.Screener.
//
// WithTrust implies WithLockstep: the probe schedule rides the
// committed round sequence, which only the lockstep scheduler makes a
// pure function of committed answers — and with it, trust scores and
// screening decisions are byte-identical at every WithParallelism
// value. Call it after WithJournal so the journal records (and
// replays) the probe-augmented rounds: a resumed audit re-issues the
// identical probes and re-reads the surviving feed, restoring every
// trust score exactly. The feed is process-local, not journaled — an
// in-process resume (same platform, surviving ResponseLog) restores
// scores byte-identically, while a fresh process replays verdicts and
// the probe schedule exactly but starts trust evidence empty. Like
// the other stack builders, the first call wins. It returns an error
// for an invalid policy or probe battery.
func (a *Auditor) WithTrust(cfg TrustConfig) (*Auditor, error) {
	if a.trust == nil {
		t, err := core.NewTrustOracle(a.oracle, cfg)
		if err != nil {
			return a, err
		}
		a.trust = t
		a.oracle = t
		a.lockstep = true
	}
	return a, nil
}

// TrustStats returns the trust middleware's report — per-worker
// scores, probes issued, workers excluded; ok is false when WithTrust
// was never enabled.
func (a *Auditor) TrustStats() (report TrustReport, ok bool) {
	if a.trust == nil {
		return TrustReport{}, false
	}
	return a.trust.Report(), true
}

// WithContext threads ctx through every audit of this auditor:
// cancellation fails the next oracle round before it reaches the crowd
// (and aborts retry backoffs mid-sleep), so a cancelled job never
// half-posts a round — with WithJournal, every round either committed
// and was journaled, or never happened.
func (a *Auditor) WithContext(ctx context.Context) *Auditor {
	a.ctx = ctx
	if a.journaled != nil {
		a.journaled.SetContext(ctx)
	}
	return a
}

// JournalStats reports the journaling middleware's progress: how many
// rounds of the current run were answered from the replay records and
// the total rounds committed. ok is false when WithJournal was never
// enabled.
func (a *Auditor) JournalStats() (replayed, rounds int, ok bool) {
	if a.journaled == nil {
		return 0, 0, false
	}
	return a.journaled.Replayed(), a.journaled.Rounds(), true
}

// BudgetSpent returns the shared governor's committed consumption; ok
// is false when WithBudget was never enabled.
func (a *Auditor) BudgetSpent() (spent BudgetSpent, ok bool) {
	if a.budget == nil {
		return BudgetSpent{}, false
	}
	return a.budget.Spent(), true
}

// CacheStats returns the hit/miss tally of the query cache; ok is
// false when WithCache was never enabled.
func (a *Auditor) CacheStats() (stats CacheStats, ok bool) {
	if a.cache == nil {
		return CacheStats{}, false
	}
	return a.cache.Stats(), true
}

// multipleOptions assembles the engine options shared by the
// multi-group audit entry points.
func (a *Auditor) multipleOptions() core.MultipleOptions {
	return core.MultipleOptions{
		Rng:         rand.New(rand.NewSource(a.seed)),
		Parallelism: a.parallelism,
		Lockstep:    a.lockstep,
		Retry:       a.retry,
		Ctx:         a.ctx,
	}
}

// AuditGroup decides whether one group is covered (Algorithm 1).
func (a *Auditor) AuditGroup(ids []ObjectID, g Group) (GroupResult, error) {
	return core.GroupCoverage(a.oracle, ids, a.setSize, a.tau, g)
}

// AuditBaseline decides coverage with the naive point-query scan
// (Algorithm 7), for cost comparison.
func (a *Auditor) AuditBaseline(ids []ObjectID, g Group) (GroupResult, error) {
	return core.BaseCoverage(a.oracle, ids, a.tau, g)
}

// AuditGroups decides coverage for several groups with the
// super-group aggregation heuristic (Algorithm 2), on the concurrent
// engine when WithParallelism is set.
func (a *Auditor) AuditGroups(ids []ObjectID, groups []Group) (*MultipleResult, error) {
	return core.MultipleCoverage(a.oracle, ids, a.setSize, a.tau, groups, a.multipleOptions())
}

// AuditAttribute audits every value of one schema attribute.
func (a *Auditor) AuditAttribute(ids []ObjectID, s *Schema, attr int) (*MultipleResult, error) {
	if s == nil || attr < 0 || attr >= s.NumAttrs() {
		return nil, errors.New("imagecvg: invalid schema attribute")
	}
	return a.AuditGroups(ids, pattern.GroupsForAttribute(s, attr))
}

// AuditIntersectional discovers the maximal uncovered patterns over
// all attributes of the schema (Algorithm 3).
func (a *Auditor) AuditIntersectional(ids []ObjectID, s *Schema) (*IntersectionalResult, error) {
	return core.IntersectionalCoverage(a.oracle, ids, a.setSize, a.tau, s, a.multipleOptions())
}

// AuditWithClassifier audits one group using a pre-trained
// classifier's predicted-positive set (Algorithm 4). With
// WithParallelism the audit runs on the batched round engine — the
// precision sample posts as one point-query round, the Label phase as
// bounded rounds with a deterministic early stop, and the Partition
// phase as one reverse-set round per tree level — and with
// WithLockstep those rounds commit through the deterministic
// scheduler, making the full result bit-identical at every
// WithParallelism value even through the order-dependent simulated
// crowd. Results equal the sequential engine exactly for
// order-independent oracles.
func (a *Auditor) AuditWithClassifier(ids, predicted []ObjectID, g Group) (ClassifierResult, error) {
	return core.ClassifierCoverage(a.oracle, ids, predicted, a.setSize, a.tau, g,
		core.ClassifierOptions{
			Rng:         rand.New(rand.NewSource(a.seed)),
			Parallelism: a.parallelism,
			Lockstep:    a.lockstep,
			Retry:       a.retry,
			Ctx:         a.ctx,
		})
}

// SimulatedCrowd is an Oracle backed by the full crowdsourcing
// platform simulator: images rendered as glyphs, imperfect workers,
// redundant assignments, majority vote, and a cost ledger.
type SimulatedCrowd struct {
	platform *crowd.Platform
	log      *crowd.ResponseLog
}

// CrowdOptions tunes the simulated deployment; the zero value uses
// the paper's setup (3 assignments, $0.10/HIT, 20 % fee, 30 workers).
type CrowdOptions struct {
	// Assignments per HIT (default 3).
	Assignments int
	// PoolSize is the number of simulated workers (default 30).
	PoolSize int
	// Qualification enables a pre-task qualification test.
	Qualification bool
	// Rating enables the reputation filter (>=95 %, >=100 HITs).
	Rating bool
	// RecordResponses keeps every raw worker assignment of every yes/no
	// HIT in platform commit order, retrievable via Responses — the
	// input the Dawid–Skene estimators (DawidSkene, IncrementalDS)
	// consume for post-hoc truth inference.
	RecordResponses bool
	// AdversaryStrategy plants adversarial workers: the named
	// WorkerStrategy ("lazy-yes", "random-spam", "colluding-liar")
	// overrides the final answers of an AdversaryRate fraction of the
	// pool, assigned as a deterministic RNG-free stripe. Honest
	// workers' answers are byte-identical to an adversary-free
	// deployment. Empty (or "honest") disables the overlay.
	AdversaryStrategy string
	// AdversaryRate is the adversarial fraction of the pool in [0, 1];
	// ignored when AdversaryStrategy is empty.
	AdversaryRate float64
}

// NewSimulatedCrowd builds a simulated crowd over the dataset.
func NewSimulatedCrowd(ds *Dataset, seed int64, opts CrowdOptions) (*SimulatedCrowd, error) {
	cfg := crowd.DefaultConfig(seed)
	if opts.Assignments > 0 {
		cfg.Assignments = opts.Assignments
	}
	if opts.PoolSize > 0 {
		cfg.Profile = crowd.DefaultProfile(opts.PoolSize)
	}
	if opts.Qualification {
		cfg.Qualification = crowd.DefaultQualification()
	}
	if opts.Rating {
		cfg.Rating = crowd.DefaultRating()
	}
	var log *crowd.ResponseLog
	if opts.RecordResponses {
		log = &crowd.ResponseLog{}
		cfg.Responses = log
	}
	if opts.AdversaryStrategy != "" && opts.AdversaryStrategy != "honest" {
		strat, err := crowd.StrategyByName(opts.AdversaryStrategy)
		if err != nil {
			return nil, err
		}
		cfg.Adversary = crowd.AdversaryConfig{Rate: opts.AdversaryRate, Strategy: strat}
	}
	p, err := crowd.NewPlatform(ds, cfg)
	if err != nil {
		return nil, err
	}
	return &SimulatedCrowd{platform: p, log: log}, nil
}

// Responses returns the recorded assignment log (nil unless the crowd
// was built with RecordResponses): one Response per worker per yes/no
// HIT in commit order, ready for DawidSkene or IncrementalDS.SyncLog.
func (c *SimulatedCrowd) Responses() *ResponseLog {
	return c.log
}

// AnswerFeed exposes the deployment's raw answer stream for the trust
// middleware (Auditor.WithTrust / TrustConfig.Feed). It is nil unless
// the crowd was built with RecordResponses — trust scoring needs the
// per-worker answers the log records.
func (c *SimulatedCrowd) AnswerFeed() AnswerFeed {
	if c.log == nil {
		return nil
	}
	return c.log
}

// Screener exposes the platform's worker-exclusion hook for the trust
// middleware (TrustConfig.Screen): distrusted workers are dropped from
// future assignment draws at round boundaries, with at least one
// eligible worker always retained.
func (c *SimulatedCrowd) Screener() WorkerScreener {
	return c.platform
}

// SetQuery implements Oracle.
func (c *SimulatedCrowd) SetQuery(ids []ObjectID, g Group) (bool, error) {
	return c.platform.SetQuery(ids, g)
}

// ReverseSetQuery implements Oracle.
func (c *SimulatedCrowd) ReverseSetQuery(ids []ObjectID, g Group) (bool, error) {
	return c.platform.ReverseSetQuery(ids, g)
}

// PointQuery implements Oracle.
func (c *SimulatedCrowd) PointQuery(id ObjectID) ([]int, error) {
	return c.platform.PointQuery(id)
}

// SetQueryBatch implements BatchOracle: the whole round posts under
// one platform lock and answers in request order, keeping
// identically-seeded parallel audits reproducible.
func (c *SimulatedCrowd) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	return c.platform.SetQueryBatch(reqs)
}

// PointQueryBatch implements BatchOracle; see SetQueryBatch.
func (c *SimulatedCrowd) PointQueryBatch(ids []ObjectID) ([][]int, error) {
	return c.platform.PointQueryBatch(ids)
}

// HITCost returns the deployment's cost model — assignments times the
// pricing model's per-assignment quote plus the platform fee — for
// denominating a Budget.MaxSpend in the same dollars the ledger
// tracks.
func (c *SimulatedCrowd) HITCost() CostFunc {
	return c.platform.HITCost()
}

// Cost returns the deployment's accumulated cost.
func (c *SimulatedCrowd) Cost() crowd.LedgerSnapshot {
	return c.platform.Ledger().Snapshot()
}

// ResetCost clears the ledger between audits.
func (c *SimulatedCrowd) ResetCost() {
	c.platform.Ledger().Reset()
}
