package core

import (
	"errors"
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
)

func TestGroupCoverageRoundsMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(2000)
		f := rng.Intn(n + 1)
		tau := 1 + rng.Intn(60)
		setSize := 1 + rng.Intn(100)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		g := dataset.Female(d.Schema())
		res, err := GroupCoverageRounds(NewTruthOracle(d), d.IDs(), setSize, tau, g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Covered != (f >= tau) {
			t.Fatalf("trial %d (N=%d f=%d tau=%d): covered=%v, want %v",
				trial, n, f, tau, res.Covered, f >= tau)
		}
		if !res.Covered && (!res.Exact || res.Count != f) {
			t.Fatalf("trial %d: uncovered count %d (exact=%v), want %d", trial, res.Count, res.Exact, f)
		}
	}
}

func TestGroupCoverageRoundsLatencyBound(t *testing.T) {
	// Rounds are bounded by 1 + ceil(log2 setSize): one round per tree
	// level, all trees advancing together.
	rng := rand.New(rand.NewSource(302))
	d, err := dataset.BinaryWithMinority(5000, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := dataset.Female(d.Schema())
	res, err := GroupCoverageRounds(NewTruthOracle(d), d.IDs(), 64, 50, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 7 { // 1 + log2(64)
		t.Errorf("rounds = %d, want <= 7", res.Rounds)
	}
	// The sequential algorithm takes one "round" per task; the batch
	// variant must be dramatically lower latency.
	seq, err := GroupCoverage(NewTruthOracle(d), d.IDs(), 64, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds*10 > seq.Tasks {
		t.Errorf("rounds %d not much below sequential latency %d", res.Rounds, seq.Tasks)
	}
	// And the task overhead of losing sibling inference is bounded.
	if res.Tasks > 2*seq.Tasks+10 {
		t.Errorf("batch tasks %d too far above sequential %d", res.Tasks, seq.Tasks)
	}
}

func TestGroupCoverageRoundsValidationAndDegenerate(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	g := female(d)
	if _, err := GroupCoverageRounds(nil, d.IDs(), 1, 1, g, 4); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, err := GroupCoverageRounds(o, d.IDs(), 0, 1, g, 4); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := GroupCoverageRounds(o, d.IDs(), 1, -1, g, 4); err == nil {
		t.Error("tau<0: want error")
	}
	res, err := GroupCoverageRounds(o, d.IDs(), 2, 0, g, 4)
	if err != nil || !res.Covered || res.Rounds != 0 {
		t.Errorf("tau=0: %+v, %v", res, err)
	}
	res, err = GroupCoverageRounds(o, nil, 2, 1, g, 4)
	if err != nil || res.Covered || !res.Exact {
		t.Errorf("empty ids: %+v, %v", res, err)
	}
	// parallelism < 1 falls back to a sane default.
	res, err = GroupCoverageRounds(o, d.IDs(), 2, 1, g, 0)
	if err != nil || !res.Covered {
		t.Errorf("default parallelism: %+v, %v", res, err)
	}
}

func TestGroupCoverageRoundsPropagatesErrors(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 0, 1, 0, 1, 0, 1})
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 3}
	// Use parallelism 1 so FlakyOracle's unsynchronized counter is
	// exercised deterministically.
	_, err := GroupCoverageRounds(flaky, d.IDs(), 4, 4, female(d), 1)
	if !errors.Is(err, ErrTransient) {
		t.Errorf("err = %v, want ErrTransient", err)
	}
}
