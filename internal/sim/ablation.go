package sim

import (
	"fmt"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/pattern"
	"imagecvg/internal/stats"
)

// The ablation experiments are extensions beyond the paper's figures:
// they quantify the contribution of each design choice DESIGN.md
// calls out (sibling inference, checked-based lower-bound counting,
// the c*tau sampling phase) and the robustness of the pipeline to
// worker noise.

// AblationRow compares Algorithm 1 variants in one data regime.
type AblationRow struct {
	Variant string
	// Tasks in the three regimes the paper's Figure 7a highlights:
	// clearly uncovered (f = tau/2), the worst case (f = tau), and
	// clearly covered (f = 4*tau).
	UncoveredTasks, ThresholdTasks, CoveredTasks float64
}

// AblationResult is the design-choice ablation table.
type AblationResult struct {
	N, Tau, SetSize int
	Rows            []AblationRow
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	t := stats.NewTable("variant", "tasks (f=tau/2)", "tasks (f=tau)", "tasks (f=4tau)")
	for _, row := range r.Rows {
		t.AddRow(row.Variant, fmt.Sprintf("%.1f", row.UncoveredTasks),
			fmt.Sprintf("%.1f", row.ThresholdTasks), fmt.Sprintf("%.1f", row.CoveredTasks))
	}
	return fmt.Sprintf("Ablation: Group-Coverage design choices (N=%d tau=%d n=%d)\n%s",
		r.N, r.Tau, r.SetSize, t.String())
}

// RunAblationCore measures Group-Coverage against its ablated
// variants: without the free right-sibling inference, without the
// checked-based lower bound (counting singletons only), and with both
// removed. All variants stay correct; the table shows what each
// design choice buys. Cells share seeds across variants (a paired
// comparison on identical datasets), so only the regime strides the
// seed.
func RunAblationCore(o Options) (*AblationResult, error) {
	const n, tau, setSize = 20_000, 50, 50
	variants := []struct {
		name string
		opts core.GroupCoverageOptions
	}{
		{"full algorithm", core.GroupCoverageOptions{}},
		{"no sibling inference", core.GroupCoverageOptions{DisableSiblingInference: true}},
		{"singleton counting", core.GroupCoverageOptions{CountSingletonsOnly: true}},
		{"both removed", core.GroupCoverageOptions{DisableSiblingInference: true, CountSingletonsOnly: true}},
	}
	regimes := []int{tau / 2, tau, 4 * tau}

	type cell struct{ vi, ri int }
	var cells []cell
	var cfgs []experiment.Config
	for vi, v := range variants {
		for ri, f := range regimes {
			cells = append(cells, cell{vi, ri})
			cfgs = append(cfgs, o.cell(fmt.Sprintf("ablation-core/%s/f=%d", v.name, f), int64(100*ri)))
		}
	}
	results, err := experiment.RunMany(cfgs, func(ci int, t experiment.Trial) (float64, error) {
		v, f := variants[cells[ci].vi], regimes[cells[ci].ri]
		d, err := dataset.BinaryWithMinority(n, f, t.Rng)
		if err != nil {
			return 0, err
		}
		g := dataset.Female(d.Schema())
		r, err := core.GroupCoverageOpt(core.NewTruthOracle(d), d.IDs(), setSize, tau, g, v.opts)
		if err != nil {
			return 0, err
		}
		if r.Covered != (f >= tau) {
			return 0, fmt.Errorf("ablation %q broke correctness at f=%d", v.name, f)
		}
		return float64(r.Tasks), nil
	})
	if err != nil {
		return nil, err
	}

	res := &AblationResult{N: n, Tau: tau, SetSize: setSize}
	for vi, v := range variants {
		means := make([]float64, len(regimes))
		for ci, c := range cells {
			if c.vi == vi {
				means[c.ri] = results[ci].Mean(func(tasks float64) float64 { return tasks })
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:        v.name,
			UncoveredTasks: means[0],
			ThresholdTasks: means[1],
			CoveredTasks:   means[2],
		})
	}
	return res, nil
}

// SamplingRow is one sampling budget of the c-factor ablation.
type SamplingRow struct {
	Label string
	Tasks float64
}

// SamplingResult is the sampling-factor ablation.
type SamplingResult struct {
	Rows []SamplingRow
}

// String renders the table.
func (r *SamplingResult) String() string {
	t := stats.NewTable("sampling budget", "Multiple-Coverage tasks")
	for _, row := range r.Rows {
		t.AddRow(row.Label, fmt.Sprintf("%.1f", row.Tasks))
	}
	return "Ablation: sampling factor c of Multiple-Coverage (effective-1 setting, sigma=4, N=10000, tau=50)\n" + t.String()
}

// RunAblationSampling sweeps the sampling budget c of Algorithm 2
// over {none, 1, 2, 4, 8} in the effective-1 setting; the paper found
// c = 2 a good choice, and the table shows the tradeoff: too little
// sampling mis-forms super-groups, too much pays for labels that save
// nothing.
func RunAblationSampling(o Options) (*SamplingResult, error) {
	const n, tau, setSize = 10_000, 50, 50
	s := oneAttrSchema(4)
	groups := pattern.GroupsForAttribute(s, 0)
	counts := buildCounts(4, n, Table3Settings()[0].MinorityCounts)
	budgets := []struct {
		label string
		opts  core.MultipleOptions
	}{
		{"none (c=0)", core.MultipleOptions{NoSampling: true}},
		{"c=1", core.MultipleOptions{SampleFactor: 1}},
		{"c=2 (paper)", core.MultipleOptions{SampleFactor: 2}},
		{"c=4", core.MultipleOptions{SampleFactor: 4}},
		{"c=8", core.MultipleOptions{SampleFactor: 8}},
	}
	cfgs := make([]experiment.Config, len(budgets))
	for bi, b := range budgets {
		cfgs[bi] = o.cell("ablation-sampling/"+b.label, int64(100*bi))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (float64, error) {
		d, err := dataset.FromCounts(s, counts, t.Rng)
		if err != nil {
			return 0, err
		}
		opts := budgets[cell].opts
		opts.Rng = t.Rng
		mres, err := core.MultipleCoverage(core.NewTruthOracle(d), d.IDs(), setSize, tau, groups, opts)
		if err != nil {
			return 0, err
		}
		return float64(mres.Tasks), nil
	})
	if err != nil {
		return nil, err
	}
	res := &SamplingResult{}
	for bi, b := range budgets {
		res.Rows = append(res.Rows, SamplingRow{
			Label: b.label,
			Tasks: results[bi].Mean(func(tasks float64) float64 { return tasks }),
		})
	}
	return res, nil
}

// NoiseRow is one worker-quality level of the robustness sweep.
type NoiseRow struct {
	SlipRate        float64
	HITs            float64
	CorrectVerdicts float64 // fraction of trials with the right answer
}

// NoiseResult is the worker-noise robustness sweep.
type NoiseResult struct {
	Rows []NoiseRow
}

// String renders the table.
func (r *NoiseResult) String() string {
	t := stats.NewTable("worker slip rate", "Group-Coverage #HITs", "correct verdicts")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f%%", 100*row.SlipRate),
			fmt.Sprintf("%.1f", row.HITs), fmt.Sprintf("%.2f", row.CorrectVerdicts))
	}
	return "Extension: robustness to worker noise (FERET slice, tau=n=50, 3-way majority vote)\n" + t.String()
}

// noiseObs is one crowd deployment's outcome (correct as 0/1 so the
// mean is the correct-verdict fraction).
type noiseObs struct {
	hits, correct float64
}

// RunNoiseSweep audits the FERET slice through crowds of increasingly
// unreliable workers (slip rates 0-35 % under 3-way majority vote).
// The paper observed 1.36 % raw worker error with no flipped
// verdicts; the sweep shows how far that safety margin extends and
// where majority voting finally breaks down.
func RunNoiseSweep(o Options) (*NoiseResult, error) {
	preset := dataset.FERETTable1
	slips := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.35}
	cfgs := make([]experiment.Config, len(slips))
	for si, slip := range slips {
		cfgs[si] = o.cell(fmt.Sprintf("noise-sweep/slip=%.0f%%", 100*slip), int64(100*si))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (noiseObs, error) {
		d := preset.Generate(t.Rng)
		g := dataset.Female(d.Schema())
		cfg := crowd.DefaultConfig(t.Seed + 3)
		cfg.Profile = crowd.PoolProfile{Size: 30, SlipMin: slips[cell], SlipMax: slips[cell], PerceptNoise: 15}
		platform, err := crowd.NewPlatform(d, cfg)
		if err != nil {
			return noiseObs{}, err
		}
		r, err := core.GroupCoverage(platform, d.IDs(), 50, 50, g)
		if err != nil {
			return noiseObs{}, err
		}
		obs := noiseObs{hits: float64(platform.Ledger().TotalHITs())}
		if r.Covered { // ground truth: 215 females >= 50
			obs.correct = 1
		}
		return obs, nil
	})
	if err != nil {
		return nil, err
	}
	res := &NoiseResult{}
	for si, slip := range slips {
		r := results[si]
		res.Rows = append(res.Rows, NoiseRow{
			SlipRate:        slip,
			HITs:            r.Mean(func(v noiseObs) float64 { return v.hits }),
			CorrectVerdicts: r.Mean(func(v noiseObs) float64 { return v.correct }),
		})
	}
	return res, nil
}
