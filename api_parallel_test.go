package imagecvg

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestAuditorParallelismMatchesSequential: the public options surface
// the engine equivalence guarantee — same seed, same verdicts, same
// task counts, at any parallelism.
func TestAuditorParallelismMatchesSequential(t *testing.T) {
	ds, err := GenerateBinary(3_000, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupsForAttribute(ds.Schema(), 0)
	seq, err := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(4).AuditGroups(ds.IDs(), groups)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(4).WithParallelism(8).AuditGroups(ds.IDs(), groups)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("WithParallelism(8) diverged from the sequential engine")
	}
}

// TestAuditorCacheDeduplicatesRepeatAudits: re-auditing the same group
// through a cached auditor costs zero new HITs.
func TestAuditorCacheDeduplicatesRepeatAudits(t *testing.T) {
	ds, err := GenerateBinary(1_000, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewTruthOracle(ds)
	auditor := NewAuditor(inner, 50, 50).WithCache()
	g := FemaleGroup(ds.Schema())

	first, err := auditor.AuditGroup(ds.IDs(), g)
	if err != nil {
		t.Fatal(err)
	}
	paid := inner.Tasks().Total()
	second, err := auditor.AuditGroup(ds.IDs(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached re-audit changed the verdict")
	}
	if got := inner.Tasks().Total(); got != paid {
		t.Errorf("re-audit paid %d new HITs, want 0", got-paid)
	}
	stats, ok := auditor.CacheStats()
	if !ok {
		t.Fatal("CacheStats should be available after WithCache")
	}
	if stats.Hits.Total() == 0 || stats.Misses.Total() != paid {
		t.Errorf("stats = %+v, want %d misses and nonzero hits", stats, paid)
	}

	// Without the cache there are no stats.
	if _, ok := NewAuditor(inner, 50, 50).CacheStats(); ok {
		t.Error("CacheStats without WithCache should report ok=false")
	}
}

// flakyAPIOracle fails every third query with the transient error.
type flakyAPIOracle struct {
	inner Oracle

	mu    sync.Mutex
	calls int
}

func (f *flakyAPIOracle) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls%3 == 0 {
		return ErrTransient
	}
	return nil
}
func (f *flakyAPIOracle) SetQuery(ids []ObjectID, g Group) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.inner.SetQuery(ids, g)
}
func (f *flakyAPIOracle) ReverseSetQuery(ids []ObjectID, g Group) (bool, error) {
	if err := f.tick(); err != nil {
		return false, err
	}
	return f.inner.ReverseSetQuery(ids, g)
}
func (f *flakyAPIOracle) PointQuery(id ObjectID) ([]int, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.PointQuery(id)
}

func TestAuditorWithRetryAbsorbsTransientFailures(t *testing.T) {
	ds, err := GenerateBinary(500, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupsForAttribute(ds.Schema(), 0)
	flaky := &flakyAPIOracle{inner: NewTruthOracle(ds)}

	if _, err := NewAuditor(flaky, 30, 20).WithSeed(5).AuditGroups(ds.IDs(), groups); !errors.Is(err, ErrTransient) {
		t.Fatalf("without retry: err = %v, want transient", err)
	}
	res, err := NewAuditor(flaky, 30, 20).WithSeed(5).WithParallelism(4).
		WithRetry(RetryPolicy{MaxAttempts: 3}).AuditGroups(ds.IDs(), groups)
	if err != nil {
		t.Fatalf("with retry: %v", err)
	}
	if res.Results[1].Covered { // gender value 1 = female
		t.Error("10 females < tau 30 should be uncovered")
	}
}

// TestSimulatedCrowdIsBatchOracle: the public crowd facade posts whole
// rounds natively.
func TestSimulatedCrowdIsBatchOracle(t *testing.T) {
	ds, err := GenerateBinary(200, 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := NewSimulatedCrowd(ds, 13, CrowdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var bo BatchOracle = crowd // compile-time: facade is a BatchOracle
	g := FemaleGroup(ds.Schema())
	answers, err := bo.SetQueryBatch([]SetRequest{
		{IDs: ds.IDs()[:10], Group: g},
		{IDs: ds.IDs()[10:20], Group: g, Reverse: true},
	})
	if err != nil || len(answers) != 2 {
		t.Fatalf("batch: %v %v", answers, err)
	}
	labels, err := bo.PointQueryBatch(ds.IDs()[:5])
	if err != nil || len(labels) != 5 {
		t.Fatalf("point batch: %v %v", labels, err)
	}
	if got := crowd.Cost().TotalHITs; got != 7 {
		t.Errorf("ledger HITs = %d, want 7", got)
	}
}

// TestAuditorLockstepCrowdInvariance: the public WithLockstep surface
// — a simulated-crowd audit (order-dependent oracle) must produce
// identical verdicts, counts and spend at every parallelism level.
func TestAuditorLockstepCrowdInvariance(t *testing.T) {
	ds, err := GenerateBinary(300, 12, 31)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupsForAttribute(ds.Schema(), 0)
	var base *MultipleResult
	var baseCost string
	for i, par := range []int{1, 4, 16} {
		crowd, err := NewSimulatedCrowd(ds, 32, CrowdOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewAuditor(crowd, 20, 15).WithSeed(5).WithParallelism(par).WithLockstep().
			AuditGroups(ds.IDs(), groups)
		if err != nil {
			t.Fatal(err)
		}
		cost := crowd.Cost().String()
		if i == 0 {
			base, baseCost = res, cost
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("WithLockstep at parallelism %d diverged from parallelism 1", par)
		}
		if cost != baseCost {
			t.Errorf("parallelism %d spend %s, want %s", par, cost, baseCost)
		}
	}
}

// TestAuditorLockstepMatchesSequentialOnTruth: with an
// order-independent oracle, lockstep reproduces the plain sequential
// audit exactly through the public API too.
func TestAuditorLockstepMatchesSequentialOnTruth(t *testing.T) {
	ds, err := GenerateBinary(2_000, 25, 33)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupsForAttribute(ds.Schema(), 0)
	seq, err := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(4).AuditGroups(ds.IDs(), groups)
	if err != nil {
		t.Fatal(err)
	}
	lock, err := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(4).WithParallelism(8).WithLockstep().
		AuditGroups(ds.IDs(), groups)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, lock) {
		t.Error("WithLockstep diverged from the sequential engine on an order-independent oracle")
	}
}
