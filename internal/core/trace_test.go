package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRecordingOracleTranscript(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 0})
	rec := NewRecordingOracle(NewTruthOracle(d))
	g := female(d)

	if _, err := rec.SetQuery(d.IDs(), g); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.ReverseSetQuery(d.IDs()[:2], g); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.PointQuery(1); err != nil {
		t.Fatal(err)
	}
	records := rec.Records()
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	if records[0].Kind != KindSet || !records[0].Answer || len(records[0].IDs) != 3 {
		t.Errorf("record 0 = %+v", records[0])
	}
	if records[1].Kind != KindReverse {
		t.Errorf("record 1 = %+v", records[1])
	}
	if records[2].Kind != KindPoint || records[2].Labels[0] != 1 {
		t.Errorf("record 2 = %+v", records[2])
	}
	if records[0].Seq != 0 || records[2].Seq != 2 {
		t.Error("sequence numbers wrong")
	}

	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "seq,kind,group,size,answer") ||
		!strings.Contains(out, "set,female,3,true") ||
		!strings.Contains(out, "point,,1,1") {
		t.Errorf("csv:\n%s", out)
	}
}

func TestRecordingOracleSkipsFailedQueries(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	rec := NewRecordingOracle(&FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 1})
	if _, err := rec.SetQuery(d.IDs(), female(d)); err == nil {
		t.Fatal("want error")
	}
	if len(rec.Records()) != 0 {
		t.Error("failed queries must not enter the transcript")
	}
}

func TestReplayReproducesAudit(t *testing.T) {
	// Record a full audit, then replay it without the dataset: the
	// replayed audit must land on the identical result at zero truth
	// accesses.
	d := binaryDataset(t, []int{0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1})
	g := female(d)
	rec := NewRecordingOracle(NewTruthOracle(d))
	orig, err := GroupCoverage(rec, d.IDs(), 8, 3, g)
	if err != nil {
		t.Fatal(err)
	}

	replay := NewReplayOracle(rec.Records())
	again, err := GroupCoverage(replay, d.IDs(), 8, 3, g)
	if err != nil {
		t.Fatal(err)
	}
	if again.Covered != orig.Covered || again.Count != orig.Count || again.Tasks != orig.Tasks {
		t.Errorf("replay diverged: %+v vs %+v", again, orig)
	}
	if replay.Remaining() != 0 {
		t.Errorf("replay left %d unused records", replay.Remaining())
	}
}

func TestReplayMismatchAndExhaustion(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	g := female(d)
	rec := NewRecordingOracle(NewTruthOracle(d))
	if _, err := rec.SetQuery(d.IDs(), g); err != nil {
		t.Fatal(err)
	}
	replay := NewReplayOracle(rec.Records())
	// Wrong kind.
	if _, err := replay.PointQuery(0); !errors.Is(err, ErrTranscriptMismatch) {
		t.Errorf("err = %v, want mismatch", err)
	}
	// Wrong size.
	if _, err := replay.SetQuery(d.IDs()[:1], g); !errors.Is(err, ErrTranscriptMismatch) {
		t.Errorf("err = %v, want mismatch", err)
	}
	// Consume the one record, then exhaust.
	if _, err := replay.SetQuery(d.IDs(), g); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.SetQuery(d.IDs(), g); !errors.Is(err, ErrTranscriptExhausted) {
		t.Errorf("err = %v, want exhausted", err)
	}
}

func TestExecutionTracePaperExample(t *testing.T) {
	// The 16-image running example: 7 issued tasks plus the inferred
	// sibling answers, rendered as text and DOT.
	bits := []int{0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 1}
	d := binaryDataset(t, bits)
	trace := &ExecutionTrace{}
	res, err := GroupCoverageOpt(NewTruthOracle(d), d.IDs(), 16, 3, female(d),
		GroupCoverageOptions{Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Tasks() != res.Tasks || trace.Tasks() != 7 {
		t.Errorf("trace tasks = %d, result tasks = %d, want 7", trace.Tasks(), res.Tasks)
	}
	inferred := 0
	for _, nd := range trace.Nodes {
		if nd.Inferred {
			inferred++
			if !nd.Answer {
				t.Error("inferred answers are always yes")
			}
		}
	}
	// The walkthrough infers both right siblings at level 3.
	if inferred != 2 {
		t.Errorf("inferred = %d, want 2", inferred)
	}
	dot := trace.DOT()
	if !strings.Contains(dot, "digraph groupcoverage") ||
		!strings.Contains(dot, "dashed") ||
		!strings.Contains(dot, "[0,16)") {
		t.Errorf("DOT output incomplete:\n%s", dot)
	}
	txt := trace.String()
	if !strings.Contains(txt, "(inferred, free)") {
		t.Errorf("text trace missing inference marks:\n%s", txt)
	}
}
