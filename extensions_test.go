package imagecvg

import (
	"strings"
	"testing"
)

func TestPlanRepairFromAudit(t *testing.T) {
	schema, err := NewSchema(
		Attribute{Name: "gender", Values: []string{"male", "female"}},
		Attribute{Name: "race", Values: []string{"white", "black"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var labels [][]int
	add := func(g, r, n int) {
		for i := 0; i < n; i++ {
			labels = append(labels, []int{g, r})
		}
	}
	add(0, 0, 300)
	add(1, 0, 250)
	add(0, 1, 100)
	add(1, 1, 5)
	ds, err := NewDataset(schema, labels)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(4)
	audit, err := auditor.AuditIntersectional(ds.IDs(), schema)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := auditor.PlanRepair(schema, audit)
	if err != nil {
		t.Fatal(err)
	}
	// female-black lacks 45 objects; everything else is fine.
	if plan.Total != 45 {
		t.Errorf("plan total = %d, want 45:\n%s", plan.Total, plan)
	}
	if !strings.Contains(plan.String(), "gender=female AND race=black") {
		t.Errorf("plan = %s", plan)
	}
	// Executing the plan against the true counts repairs coverage.
	if !plan.Verify(ds.SubgroupCounts(), 50) {
		t.Error("plan does not repair the true composition")
	}
}

func TestAuditGroupBatched(t *testing.T) {
	ds, err := GenerateBinary(5_000, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50)
	res, err := auditor.AuditGroupBatched(ds.IDs(), FemaleGroup(ds.Schema()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("200 >= 50 must be covered")
	}
	if res.Rounds < 1 || res.Rounds > 7 {
		t.Errorf("rounds = %d, want within 1..1+log2(50)", res.Rounds)
	}
}

func TestAuditGroupTraced(t *testing.T) {
	ds, err := GenerateBinary(64, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 8, 16)
	res, trace, err := auditor.AuditGroupTraced(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Tasks() != res.Tasks {
		t.Errorf("trace tasks %d != result tasks %d", trace.Tasks(), res.Tasks)
	}
	if !strings.Contains(trace.DOT(), "digraph") {
		t.Error("DOT rendering broken")
	}
}

func TestAuditSampledFacade(t *testing.T) {
	ds, err := GenerateBinary(10_000, 5_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(12)
	res, err := auditor.AuditSampled(ds.IDs(), FemaleGroup(ds.Schema()), 0.05, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Covered {
		t.Errorf("half-female dataset must decide covered: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTranscriptRoundTripFacade(t *testing.T) {
	ds, err := GenerateBinary(400, 30, 13)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecordingOracle(NewTruthOracle(ds))
	auditor := NewAuditor(rec, 20, 25)
	orig, err := auditor.AuditGroup(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	replayAuditor := NewAuditor(NewReplayOracle(rec.Records()), 20, 25)
	again, err := replayAuditor.AuditGroup(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if again.Covered != orig.Covered || again.Tasks != orig.Tasks {
		t.Errorf("replay diverged: %+v vs %+v", again, orig)
	}
}

func TestNewRepairPlanFacade(t *testing.T) {
	s := GenderSchema()
	plan, err := NewRepairPlan(s, []int{100, 10}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 40 {
		t.Errorf("plan total = %d, want 40", plan.Total)
	}
}
