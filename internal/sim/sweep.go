package sim

import (
	"fmt"
	"math/rand"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/pattern"
	"imagecvg/internal/stats"
)

// SweepParams crosses dataset size, coverage threshold and audit-engine
// parallelism in one run — the scenario grid the trial-runner makes
// cheap. Every (N, tau) pair generates ONE fixed dataset whose
// TruthOracle sits behind a shared query cache; the parallelism axis
// re-audits that same dataset, so the crowd pays for each distinct HIT
// once no matter how many engine settings the grid compares (the
// cross-audit cache reuse the ROADMAP called for).
type SweepParams struct {
	// Ns and Taus span the workload grid.
	Ns, Taus []int
	// Parallelisms are the audit-engine widths compared per workload.
	Parallelisms []int
	// SetSize is the set-query bound n.
	SetSize int
	// MinorityCounts shapes each dataset (majority absorbs the rest),
	// audited as one group per value of a single 4-ary attribute.
	MinorityCounts []int
}

// DefaultSweepParams keeps `-exp all` runs quick while still crossing
// two sizes, two thresholds and two engine widths.
func DefaultSweepParams() SweepParams {
	return SweepParams{
		Ns:             []int{5_000, 20_000},
		Taus:           []int{25, 50},
		Parallelisms:   []int{1, 4},
		SetSize:        50,
		MinorityCounts: []int{10, 8, 6},
	}
}

// SweepRow is one grid cell's outcome.
type SweepRow struct {
	N, Tau, Parallelism int
	// Tasks is the mean Multiple-Coverage task count; identical across
	// the parallelism axis of one workload (engine equivalence).
	Tasks float64
	// MillisPerTrial is the mean per-trial wall-clock.
	MillisPerTrial float64
}

// SweepWorkload summarizes one (N, tau) dataset's shared cache after
// every parallelism cell re-audited it.
type SweepWorkload struct {
	N, Tau int
	// HitRate is the fraction of queries served without a crowd task.
	HitRate float64
	// PaidTasks is the distinct HITs actually charged.
	PaidTasks int
}

// SweepResult is the grid outcome.
type SweepResult struct {
	Params    SweepParams
	Rows      []SweepRow
	Workloads []SweepWorkload
}

// TotalTasks sums the mean task counts, for machine consumers
// (cvgbench -json).
func (r *SweepResult) TotalTasks() float64 {
	total := 0.0
	for _, row := range r.Rows {
		total += row.Tasks
	}
	return total
}

// String renders the grid and the per-workload cache summary.
func (r *SweepResult) String() string {
	t := stats.NewTable("N", "tau", "engine parallelism", "Multiple-Coverage tasks", "ms/trial")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.Tau, row.Parallelism,
			fmt.Sprintf("%.1f", row.Tasks), fmt.Sprintf("%.1f", row.MillisPerTrial))
	}
	c := stats.NewTable("N", "tau", "cache hit rate", "paid HITs")
	for _, w := range r.Workloads {
		c.AddRow(w.N, w.Tau, fmt.Sprintf("%.2f", w.HitRate), w.PaidTasks)
	}
	return fmt.Sprintf("Sweep: N x tau x engine-parallelism on the trial-runner (n=%d)\n%s\nshared query cache per workload:\n%s",
		r.Params.SetSize, t.String(), c.String())
}

// RunSweep runs the grid: every (cell, trial) job fans out across the
// trial-runner's pool. Cells of one workload share both the dataset
// and the cached oracle, and their cell seeds coincide, so trial i
// issues the identical audit at every engine parallelism — the later
// engines ride the first one's paid HITs.
func RunSweep(p SweepParams, o Options) (*SweepResult, error) {
	s := oneAttrSchema(4)
	groups := pattern.GroupsForAttribute(s, 0)

	type workload struct {
		n, tau int
		ids    []dataset.ObjectID
		cache  *core.CachingOracle
	}
	type cell struct {
		wi, parallelism int
	}
	var workloads []*workload
	var cells []cell
	var cfgs []experiment.Config
	for ni, n := range p.Ns {
		for ti, tau := range p.Taus {
			wi := len(workloads)
			seedOffset := int64(10_000*ni + 1_000*ti)
			d, err := dataset.FromCounts(s, buildCounts(4, n, p.MinorityCounts),
				rand.New(rand.NewSource(o.Seed+seedOffset)))
			if err != nil {
				return nil, err
			}
			factory, cache := experiment.SharedCache(core.NewTruthOracle(d))
			workloads = append(workloads, &workload{n: n, tau: tau, ids: d.IDs(), cache: cache})
			for _, par := range p.Parallelisms {
				cells = append(cells, cell{wi, par})
				cfg := o.cell(fmt.Sprintf("sweep/N=%d/tau=%d/P=%d", n, tau, par), seedOffset)
				cfg.Oracle = factory
				cfgs = append(cfgs, cfg)
			}
		}
	}

	results, err := experiment.RunMany(cfgs, func(ci int, t experiment.Trial) (float64, error) {
		c := cells[ci]
		w := workloads[c.wi]
		mres, err := core.MultipleCoverage(t.Oracle, w.ids, p.SetSize, w.tau, groups,
			core.MultipleOptions{Rng: t.Rng, Parallelism: c.parallelism, Lockstep: t.Lockstep})
		if err != nil {
			return 0, err
		}
		return float64(mres.Tasks), nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Params: p}
	for ci, c := range cells {
		r := results[ci]
		var trialMillis float64
		for _, tr := range r.Trials {
			trialMillis += float64(tr.Elapsed.Microseconds()) / 1000
		}
		res.Rows = append(res.Rows, SweepRow{
			N: workloads[c.wi].n, Tau: workloads[c.wi].tau, Parallelism: c.parallelism,
			Tasks:          r.Mean(func(tasks float64) float64 { return tasks }),
			MillisPerTrial: trialMillis / float64(len(r.Trials)),
		})
	}
	for _, w := range workloads {
		st := w.cache.Stats()
		res.Workloads = append(res.Workloads, SweepWorkload{
			N: w.n, Tau: w.tau,
			HitRate:   st.HitRate(),
			PaidTasks: st.Misses.Total(),
		})
	}
	return res, nil
}
