package imagecvg

import (
	"errors"
	"math/rand"
	"testing"
)

// TestRunTrialsDeterministicAcrossParallelism: the public trial-runner
// façade must summarize identically at any pool width, with trial i
// seeded at seed+i.
func TestRunTrialsDeterministicAcrossParallelism(t *testing.T) {
	ds, err := GenerateBinary(2_000, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := FemaleGroup(ds.Schema())
	audit := func(i int, rng *rand.Rand) (float64, error) {
		// A realistic use: re-audit with per-trial sampling randomness.
		auditor := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(rng.Int63())
		res, err := auditor.AuditGroups(ds.IDs(), []Group{g})
		if err != nil {
			return 0, err
		}
		return float64(res.Tasks), nil
	}
	seq, err := RunTrials(6, 1, 42, audit)
	if err != nil {
		t.Fatal(err)
	}
	if seq.N != 6 || seq.Mean <= 0 {
		t.Fatalf("summary = %+v", seq)
	}
	for _, par := range []int{4, 8} {
		got, err := RunTrials(6, par, 42, audit)
		if err != nil {
			t.Fatal(err)
		}
		if got != seq {
			t.Errorf("parallelism %d: summary %+v, want %+v", par, got, seq)
		}
	}
	if seq.CI95() <= 0 && seq.Std > 0 {
		t.Error("CI95 should be positive for a spread sample")
	}
}

// TestRunTrialsNormalizesAndPropagates: non-positive trial counts run
// once; errors surface.
func TestRunTrialsNormalizesAndPropagates(t *testing.T) {
	s, err := RunTrials(0, 4, 1, func(i int, rng *rand.Rand) (float64, error) { return 7, nil })
	if err != nil || s.N != 1 || s.Mean != 7 {
		t.Errorf("summary = %+v, err = %v", s, err)
	}
	boom := errors.New("boom")
	if _, err := RunTrials(4, 2, 1, func(i int, rng *rand.Rand) (float64, error) {
		if i == 2 {
			return 0, boom
		}
		return 0, nil
	}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}
