package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the engine's HTTP API:
//
//	POST   /jobs             submit a JobConfig, returns the job status (202)
//	GET    /jobs             list every job
//	GET    /jobs/{id}        one job's status + partial verdicts
//	GET    /jobs/{id}/stream SSE: snapshot, then round/state events
//	DELETE /jobs/{id}        cancel via the job's context (202)
//
// Trust model: the API is unauthenticated and the tenant field of a
// submission is client-supplied — tenants are a budget-accounting
// boundary, not a security boundary. Any client that can reach the
// listener can submit against any tenant's budget and list, read,
// stream or cancel any job. Serve mode is built for a single
// operator on a trusted network — bind a loopback or otherwise
// firewalled address; exposing it to mutually untrusting tenants
// requires an authenticating front proxy that verifies the tenant
// server-side and scopes /jobs/{id} access to the caller's own jobs.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", e.handleSubmit)
	mux.HandleFunc("GET /jobs", e.handleList)
	mux.HandleFunc("GET /jobs/{id}", e.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stream", e.handleStream)
	mux.HandleFunc("DELETE /jobs/{id}", e.handleCancel)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps engine errors to HTTP status codes. Only
// recognized client faults get 4xx; anything else (e.g. a meta
// persistence failure inside Submit) is a 500.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalidConfig):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTenantBudget):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg JobConfig
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeError(w, fmt.Errorf("%w: decode: %v", ErrInvalidConfig, err))
		return
	}
	id, err := e.Submit(cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	status, err := e.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

func (e *Engine) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.List())
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	status, err := e.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (e *Engine) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := e.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	status, err := e.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

// handleStream serves Server-Sent Events: one "snapshot" event with
// the current status, then "round" and "state" events as the job
// progresses, ending when the job terminates (or the client goes
// away). Round events are advisory and may be dropped under
// backpressure; the snapshot and the terminal state event are not.
func (e *Engine) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "server: streaming unsupported"})
		return
	}
	sub, unsub, err := e.Subscribe(id)
	if err != nil {
		writeError(w, err)
		return
	}
	defer unsub()
	// Subscribe before the snapshot so no transition between the two
	// is lost; the stream may then deliver a transition twice (once in
	// the snapshot, once as an event), which consumers tolerate.
	status, err := e.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent(w, Event{Type: "snapshot", Status: &status})
	flusher.Flush()
	for {
		select {
		case ev, open := <-sub:
			if !open {
				return
			}
			writeEvent(w, ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent encodes one SSE frame.
func writeEvent(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}
