// Corpus for the sentinelerr analyzer: sentinel definitions plus
// every comparison shape in one package.
package a

import "errors"

var (
	ErrBudgetExhausted = errors.New("budget exhausted")
	ErrTransient       = errors.New("transient")
	errShortBatch      = errors.New("short batch") // unexported: not a sentinel
)

func rawEq(err error) bool {
	return err == ErrBudgetExhausted // want `use errors.Is`
}

func rawNeq(err error) bool {
	return err != ErrTransient // want `use errors.Is`
}

func sentinelOnLeft(err error) bool {
	return ErrBudgetExhausted == err // want `use errors.Is`
}

func errorsIsIsTheIdiom(err error) bool {
	return errors.Is(err, ErrBudgetExhausted)
}

func nilChecksAreFine(err error) bool {
	return err == nil
}

func unexportedIsNotASentinel(err error) bool {
	return err == errShortBatch
}

func switchOnErr(err error) int {
	switch err {
	case ErrBudgetExhausted: // want `switch case compares by identity`
		return 1
	case nil:
		return 0
	}
	return 2
}

func switchWithInit() int {
	switch err := work(); err {
	case ErrTransient: // want `switch case compares by identity`
		return 1
	default:
		return 0
	}
}

func work() error { return nil }

type wrapped struct{ inner error }

func (w wrapped) Error() string { return "wrapped: " + w.inner.Error() }

// Is is the errors.Is hook: identity comparison against sentinels is
// exactly what this method exists to implement.
func (w wrapped) Is(target error) bool {
	return target == ErrTransient
}

func suppressedCmp(err error) bool {
	//lint:sentinel unwrapped fast path, identity is the contract here
	return err == ErrBudgetExhausted
}
