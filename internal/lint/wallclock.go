package lint

import (
	"go/ast"
	"go/types"

	"imagecvg/internal/lint/analysis"
)

// WallClock flags wall-clock reads — time.Now, time.Since, time.Until
// — inside the canonical-commit packages. A clock read on a journaled
// path makes resume diverge from the original run: replay delivers
// the recorded rounds instantly, so anything derived from "now" takes
// a different value the second time. Durations and timers fed by
// caller-supplied values (retry backoff) are fine; reading the clock
// is not.
//
// Exemptions: _test.go files, the files in WallClockAllowed (the
// server's HTTP/SSE layer, which timestamps live traffic and is never
// replayed), and lines annotated //lint:wallclock <why>. The
// internal/experiment timing Recorder is outside CommitPackages
// entirely, so it needs no entry here.
var WallClock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "flags wall-clock reads in audit/commit/replay paths",
	Run:  runWallClock,
}

// WallClockAllowed lists slash-separated file-path suffixes exempt
// from the wallclock rule even though their package is in scope.
var WallClockAllowed = []string{
	"internal/server/http.go",
}

// wallClockFuncs are the time-package functions that read the clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *analysis.Pass) (any, error) {
	if !inCommitPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) || fileHasSuffix(pass.Fset, file.Pos(), WallClockAllowed) {
			continue
		}
		dirs := directives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if suppressed(pass, dirs, sel.Pos(), "wallclock") {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s in a canonical-commit package: wall-clock reads break resume identity; derive timing from committed state or annotate //lint:wallclock <why>", fn.Name())
			return true
		})
	}
	return nil, nil
}
