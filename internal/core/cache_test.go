package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

func TestCacheHitMissAccounting(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1, 0})
	inner := NewTruthOracle(d)
	c := NewCachingOracle(inner)
	g := female(d)
	ids := d.IDs()

	for i := 0; i < 3; i++ {
		ans, err := c.SetQuery(ids, g)
		if err != nil || !ans {
			t.Fatalf("set query %d: %v %v", i, ans, err)
		}
	}
	if _, err := c.PointQuery(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PointQuery(ids[1]); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.Misses.Set != 1 || stats.Hits.Set != 2 {
		t.Errorf("set: %d misses / %d hits, want 1/2", stats.Misses.Set, stats.Hits.Set)
	}
	if stats.Misses.Point != 1 || stats.Hits.Point != 1 {
		t.Errorf("point: %d misses / %d hits, want 1/1", stats.Misses.Point, stats.Hits.Point)
	}
	if inner.Tasks().Total() != 2 {
		t.Errorf("inner paid %d tasks, want 2", inner.Tasks().Total())
	}
	if got := stats.HitRate(); got != 0.6 {
		t.Errorf("hit rate = %f, want 0.6", got)
	}
	if c.Len() != 2 {
		t.Errorf("cache len = %d, want 2", c.Len())
	}
}

func TestCacheCanonicalizesIDOrder(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1, 0, 1})
	inner := NewTruthOracle(d)
	c := NewCachingOracle(inner)
	g := female(d)

	fwd := []dataset.ObjectID{0, 1, 2, 3, 4}
	rev := []dataset.ObjectID{4, 3, 2, 1, 0}
	shuffled := []dataset.ObjectID{2, 0, 4, 1, 3}
	a1, err := c.SetQuery(fwd, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, ids := range [][]dataset.ObjectID{rev, shuffled} {
		a2, err := c.SetQuery(ids, g)
		if err != nil || a2 != a1 {
			t.Fatalf("reordered ids: %v %v", a2, err)
		}
	}
	if inner.Tasks().Set != 1 {
		t.Errorf("reordered id-sets paid %d set HITs, want 1", inner.Tasks().Set)
	}
	// A different id multiset is a different HIT.
	if _, err := c.SetQuery(fwd[:4], g); err != nil {
		t.Fatal(err)
	}
	if inner.Tasks().Set != 2 {
		t.Errorf("distinct id-set should miss: inner set HITs = %d, want 2", inner.Tasks().Set)
	}
}

func TestCacheKeysDistinguishKindAndGroup(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1, 0})
	inner := NewTruthOracle(d)
	c := NewCachingOracle(inner)
	ids := d.IDs()
	fem := female(d)
	male := dataset.Male(d.Schema())

	if _, err := c.SetQuery(ids, fem); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReverseSetQuery(ids, fem); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetQuery(ids, male); err != nil {
		t.Fatal(err)
	}
	if got := inner.Tasks(); got.Set != 2 || got.ReverseSet != 1 {
		t.Errorf("inner tasks = %v, want 2 set + 1 reverse", got)
	}
	// A super-group's member order must not matter.
	s1 := pattern.SuperGroup(fem, male)
	s2 := pattern.SuperGroup(male, fem)
	if _, err := c.SetQuery(ids, s1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetQuery(ids, s2); err != nil {
		t.Fatal(err)
	}
	if got := inner.Tasks().Set; got != 3 {
		t.Errorf("super-group member order should share a key: set HITs = %d, want 3", got)
	}
}

func TestCacheDoesNotCacheTransientErrors(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1, 0})
	inner := NewTruthOracle(d)
	flaky := &FlakyOracle{Inner: inner, FailEvery: 1} // first call fails
	c := NewCachingOracle(flaky)
	g := female(d)
	ids := d.IDs()

	if _, err := c.SetQuery(ids, g); !errors.Is(err, ErrTransient) {
		t.Fatalf("first call should fail transiently, got %v", err)
	}
	flaky.FailEvery = 0 // crowd recovers
	ans, err := c.SetQuery(ids, g)
	if err != nil || !ans {
		t.Fatalf("after recovery: %v %v (the error must not be cached)", ans, err)
	}
	if inner.Tasks().Set != 1 {
		t.Errorf("inner set HITs = %d, want 1 (only the successful retry)", inner.Tasks().Set)
	}
	stats := c.Stats()
	if stats.Misses.Set != 2 || stats.Hits.Set != 0 {
		t.Errorf("both attempts must miss: %+v", stats)
	}

	// Point queries behave the same way.
	flaky.FailEvery = 1
	if _, err := c.PointQuery(ids[0]); !errors.Is(err, ErrTransient) {
		t.Fatalf("point query should fail transiently, got %v", err)
	}
	flaky.FailEvery = 0
	if labels, err := c.PointQuery(ids[0]); err != nil || len(labels) != 1 {
		t.Fatalf("after recovery: %v %v", labels, err)
	}
}

func TestCacheBatchCollapsesDuplicates(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1, 0})
	inner := NewTruthOracle(d)
	c := NewCachingOracle(inner)
	g := female(d)
	ids := d.IDs()

	reqs := []SetRequest{
		{IDs: ids, Group: g},
		{IDs: []dataset.ObjectID{3, 2, 1, 0}, Group: g}, // same canonical key
		{IDs: ids[:2], Group: g},
		{IDs: ids, Group: g, Reverse: true},
		{IDs: ids, Group: g}, // duplicate again
	}
	answers, err := c.SetQueryBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0] != answers[1] || answers[0] != answers[4] {
		t.Error("duplicate requests must share one answer")
	}
	if got := inner.Tasks(); got.Set != 2 || got.ReverseSet != 1 {
		t.Errorf("inner tasks = %v, want 2 set + 1 reverse (duplicates collapsed)", got)
	}
	stats := c.Stats()
	if stats.Hits.Set != 2 || stats.Misses.Set != 2 || stats.Misses.ReverseSet != 1 {
		t.Errorf("stats = %+v", stats)
	}

	labels, err := c.PointQueryBatch([]dataset.ObjectID{1, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 || labels[0][0] != labels[1][0] || labels[0][0] != labels[3][0] {
		t.Errorf("point batch labels = %v", labels)
	}
	if got := inner.Tasks().Point; got != 2 {
		t.Errorf("inner point HITs = %d, want 2", got)
	}
}

// blockingOracle parks every inner call until released, to prove
// in-flight deduplication.
type blockingOracle struct {
	inner   Oracle
	entered chan struct{}
	release chan struct{}
}

func (b *blockingOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.inner.SetQuery(ids, g)
}
func (b *blockingOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return b.inner.ReverseSetQuery(ids, g)
}
func (b *blockingOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	return b.inner.PointQuery(id)
}

func TestCacheCollapsesConcurrentIdenticalQueries(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1, 0})
	inner := NewTruthOracle(d)
	blocking := &blockingOracle{
		inner:   inner,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	c := NewCachingOracle(blocking)
	g := female(d)
	ids := d.IDs()

	const callers = 8
	var wg sync.WaitGroup
	answers := make([]bool, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = c.SetQuery(ids, g)
		}(i)
	}
	<-blocking.entered // one caller reached the oracle...
	close(blocking.release)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil || !answers[i] {
			t.Fatalf("caller %d: %v %v", i, answers[i], errs[i])
		}
	}
	if inner.Tasks().Set != 1 {
		t.Errorf("inner set HITs = %d, want 1 (in-flight dedup)", inner.Tasks().Set)
	}
}

func TestCacheConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	d, err := dataset.BinaryWithMinority(200, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewTruthOracle(d)
	c := NewCachingOracle(inner)
	g := female(d)
	ids := d.IDs()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				lo := rng.Intn(len(ids) - 1)
				hi := lo + 1 + rng.Intn(len(ids)-lo-1)
				if _, err := c.SetQuery(ids[lo:hi], g); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.PointQuery(ids[rng.Intn(len(ids))]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := c.Stats()
	if got := stats.Hits.Total() + stats.Misses.Total(); got != 8*200*2 {
		t.Errorf("accounted %d queries, want %d", got, 8*200*2)
	}
	if inner.Tasks().Total() != stats.Misses.Total() {
		t.Errorf("inner paid %d, misses say %d", inner.Tasks().Total(), stats.Misses.Total())
	}
}

func TestCachePointQueryReturnsCopies(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	c := NewCachingOracle(NewTruthOracle(d))
	labels, err := c.PointQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	labels[0] = 99
	again, err := c.PointQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == 99 {
		t.Error("cache handed out its internal label slice")
	}
}

// perIDErrOracle blocks each PointQuery until released, then fails it
// with a per-id error. Set queries are unused.
type perIDErrOracle struct {
	entered chan dataset.ObjectID
	release chan struct{}
	errs    map[dataset.ObjectID]error
}

func (o *perIDErrOracle) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return false, errors.New("unused")
}
func (o *perIDErrOracle) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return false, errors.New("unused")
}
func (o *perIDErrOracle) PointQuery(id dataset.ObjectID) ([]int, error) {
	o.entered <- id
	<-o.release
	return nil, o.errs[id]
}

// TestCacheWaitErrorDeterministic pins the fix for a map-order leak
// the cvglint maprange rule surfaced: when a batch waits on several
// in-flight calls that fail with different errors, the error the
// round reports must be the first in request-scan order — not
// whichever the waits map yields first. The old code handed the retry
// classifier a coin-flip between err1 and err2.
func TestCacheWaitErrorDeterministic(t *testing.T) {
	err1 := errors.New("cache test: owner one failed")
	err2 := errors.New("cache test: owner two failed")
	for round := 0; round < 10; round++ {
		inner := &perIDErrOracle{
			entered: make(chan dataset.ObjectID, 2),
			release: make(chan struct{}),
			errs:    map[dataset.ObjectID]error{1: err1, 2: err2},
		}
		c := NewCachingOracle(inner)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.PointQueryBatch([]dataset.ObjectID{1}) }()
		go func() { defer wg.Done(); c.PointQueryBatch([]dataset.ObjectID{2}) }()
		<-inner.entered
		<-inner.entered // both owners in flight, both ids registered

		var waiterErr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, waiterErr = c.PointQueryBatch([]dataset.ObjectID{1, 2})
		}()
		// The waiter's scan counts both ids as hits the moment it
		// parks on the in-flight calls; only then may the owners fail.
		for c.Stats().Hits.Point < 2 {
		}
		close(inner.release)
		wg.Wait()
		<-done

		if !errors.Is(waiterErr, err1) {
			t.Fatalf("round %d: waiter got %v, want the scan-order-first error %v", round, waiterErr, err1)
		}
	}
}
