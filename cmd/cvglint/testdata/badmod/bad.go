// Package badmod is the cvglint driver-test fixture: one globalrand
// violation (the rule with module-wide scope, so no import-path
// suffix games are needed).
package badmod

import "math/rand"

// Draw consumes the shared global Source on purpose.
func Draw() int {
	return rand.Intn(6)
}
