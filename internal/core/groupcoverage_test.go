package core

import (
	"errors"
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// binaryDataset builds a gender dataset with the given per-position
// composition: 1 marks a female (the audited minority group).
func binaryDataset(t *testing.T, bits []int) *dataset.Dataset {
	t.Helper()
	labels := make([][]int, len(bits))
	for i, b := range bits {
		labels[i] = []int{b}
	}
	return dataset.MustNew(dataset.GenderSchema(), labels)
}

func female(d *dataset.Dataset) pattern.Group { return dataset.Female(d.Schema()) }

func TestGroupCoveragePaperRunningExample(t *testing.T) {
	// Section 3.1 / Figure 4: sixteen images
	//   s s s s  m s s m  s s s s  m m s m     (m = minority group)
	// with tau = 3 and a single tree (n = 16). The paper's walkthrough
	// issues exactly seven queries before declaring the group covered.
	bits := []int{0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 1}
	d := binaryDataset(t, bits)
	o := NewTruthOracle(d)
	res, err := GroupCoverage(o, d.IDs(), 16, 3, female(d))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("toy example must be covered")
	}
	if res.Count != 3 {
		t.Errorf("count = %d, want 3", res.Count)
	}
	if res.Tasks != 7 {
		t.Errorf("tasks = %d, want exactly 7 (paper running example)", res.Tasks)
	}
	if o.Tasks().Set != 7 || o.Tasks().Total() != 7 {
		t.Errorf("oracle tally = %v", o.Tasks())
	}
}

func TestGroupCoverageCaseIAllYes(t *testing.T) {
	// Section 3.2 Case I: every set query answers yes (alternating
	// members), N = n. The execution tree is complete and the task
	// count is exactly 2*tau - 1.
	bits := make([]int, 64)
	for i := range bits {
		bits[i] = i % 2
	}
	d := binaryDataset(t, bits)
	o := NewTruthOracle(d)
	tau := 8
	res, err := GroupCoverage(o, d.IDs(), 64, tau, female(d))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("want covered")
	}
	if res.Tasks != 2*tau-1 {
		t.Errorf("tasks = %d, want %d (Case I: 2*tau-1)", res.Tasks, 2*tau-1)
	}
}

func TestGroupCoverageCaseIISingleMember(t *testing.T) {
	// Section 3.2 Case II: exactly one group member among n objects.
	// The execution tree is a single root-to-leaf path with both
	// children queried per level minus sibling inference savings:
	// Theta(log n) tasks.
	for _, pos := range []int{0, 13, 63} {
		bits := make([]int, 64)
		bits[pos] = 1
		d := binaryDataset(t, bits)
		o := NewTruthOracle(d)
		res, err := GroupCoverage(o, d.IDs(), 64, 2, female(d))
		if err != nil {
			t.Fatal(err)
		}
		if res.Covered {
			t.Errorf("pos %d: want uncovered", pos)
		}
		if res.Count != 1 || !res.Exact {
			t.Errorf("pos %d: count = %d exact=%v, want exactly 1", pos, res.Count, res.Exact)
		}
		// Path depth log2(64) = 6; at most 2 queries per level plus root.
		if res.Tasks > 13 {
			t.Errorf("pos %d: tasks = %d, want Theta(log n) <= 13", pos, res.Tasks)
		}
	}
}

func TestGroupCoverageEmptyGroup(t *testing.T) {
	// No members at all: the root of every tree answers no; cost is
	// exactly the number of roots, the information-theoretic minimum.
	bits := make([]int, 200)
	d := binaryDataset(t, bits)
	o := NewTruthOracle(d)
	res, err := GroupCoverage(o, d.IDs(), 50, 10, female(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.Count != 0 || !res.Exact {
		t.Errorf("result = %+v, want exact uncovered 0", res)
	}
	if want := LowerBoundTasks(200, 50); res.Tasks != want {
		t.Errorf("tasks = %d, want %d roots only", res.Tasks, want)
	}
}

func TestGroupCoverageParameterValidation(t *testing.T) {
	d := binaryDataset(t, []int{0, 1})
	o := NewTruthOracle(d)
	g := female(d)
	if _, err := GroupCoverage(nil, d.IDs(), 1, 1, g); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, err := GroupCoverage(o, d.IDs(), 0, 1, g); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := GroupCoverage(o, d.IDs(), 1, -1, g); err == nil {
		t.Error("tau<0: want error")
	}
}

func TestGroupCoverageDegenerateInputs(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 1})
	o := NewTruthOracle(d)
	g := female(d)

	// tau = 0: trivially covered, zero tasks.
	res, err := GroupCoverage(o, d.IDs(), 2, 0, g)
	if err != nil || !res.Covered || res.Tasks != 0 {
		t.Errorf("tau=0: %+v, %v", res, err)
	}
	// Empty universe with tau > 0: uncovered, zero tasks.
	res, err = GroupCoverage(o, nil, 2, 1, g)
	if err != nil || res.Covered || res.Tasks != 0 || !res.Exact {
		t.Errorf("empty ids: %+v, %v", res, err)
	}
	// n = 1 degenerates into set queries of size one.
	res, err = GroupCoverage(o, d.IDs(), 1, 2, g)
	if err != nil || !res.Covered || res.Count != 2 {
		t.Errorf("n=1: %+v, %v", res, err)
	}
	// n > N: one root covering everything.
	res, err = GroupCoverage(o, d.IDs(), 1000, 2, g)
	if err != nil || !res.Covered {
		t.Errorf("n>N: %+v, %v", res, err)
	}
}

func TestGroupCoverageMatchesGroundTruthRandomized(t *testing.T) {
	// Correctness property (Lemma 3.1): the verdict always matches
	// ground truth, and the count is exact whenever uncovered.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(2000)
		f := rng.Intn(n + 1)
		tau := 1 + rng.Intn(80)
		setSize := 1 + rng.Intn(128)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		o := NewTruthOracle(d)
		g := female(d)
		res, err := GroupCoverage(o, d.IDs(), setSize, tau, g)
		if err != nil {
			t.Fatal(err)
		}
		want := f >= tau
		if res.Covered != want {
			t.Fatalf("trial %d (N=%d f=%d tau=%d n=%d): covered = %v, want %v",
				trial, n, f, tau, setSize, res.Covered, want)
		}
		if !res.Covered {
			if !res.Exact || res.Count != f {
				t.Fatalf("trial %d: uncovered count = %d (exact=%v), want exactly %d",
					trial, res.Count, res.Exact, f)
			}
		} else if res.Count < tau {
			t.Fatalf("trial %d: covered but count %d < tau %d", trial, res.Count, tau)
		}
	}
}

func TestGroupCoverageTasksWithinUpperBound(t *testing.T) {
	// Cost property (Theorem 3.2 / Lemma 3.3): tasks never exceed the
	// Theta(N/n + tau log n) bound instantiated with explicit constants.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(3000)
		f := rng.Intn(n + 1)
		tau := 1 + rng.Intn(60)
		setSize := 2 + rng.Intn(127)
		d, err := dataset.BinaryWithMinority(n, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		o := NewTruthOracle(d)
		res, err := GroupCoverage(o, d.IDs(), setSize, tau, female(d))
		if err != nil {
			t.Fatal(err)
		}
		bound := UpperBoundTasksLog2(n, setSize, tau)
		// Uncovered groups with f close to tau may have up to f < tau
		// members' worth of paths; the bound already covers that.
		if res.Tasks > bound {
			t.Fatalf("trial %d (N=%d f=%d tau=%d n=%d): tasks %d exceed bound %d",
				trial, n, f, tau, setSize, res.Tasks, bound)
		}
		if low := LowerBoundTasks(n, setSize); !res.Covered && res.Tasks < low {
			t.Fatalf("trial %d: uncovered audit used %d tasks, below the %d lower bound",
				trial, res.Tasks, low)
		}
	}
}

func TestGroupCoverageCheaperThanBaseNearThreshold(t *testing.T) {
	// The regime the paper highlights: f close to tau. Group-Coverage
	// must beat the point-query baseline comfortably on a large
	// dataset.
	rng := rand.New(rand.NewSource(33))
	d, err := dataset.BinaryWithMinority(20000, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := female(d)
	o1 := NewTruthOracle(d)
	gc, err := GroupCoverage(o1, d.IDs(), 50, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	o2 := NewTruthOracle(d)
	base, err := BaseCoverage(o2, d.IDs(), 50, g)
	if err != nil {
		t.Fatal(err)
	}
	if !gc.Covered || !base.Covered {
		t.Fatalf("both must report covered: gc=%v base=%v", gc.Covered, base.Covered)
	}
	if gc.Tasks*3 > base.Tasks {
		t.Errorf("Group-Coverage %d tasks vs Base-Coverage %d: want >= 3x savings",
			gc.Tasks, base.Tasks)
	}
}

func TestBaseCoverage(t *testing.T) {
	bits := []int{0, 1, 0, 1, 1, 0}
	d := binaryDataset(t, bits)
	g := female(d)

	o := NewTruthOracle(d)
	res, err := BaseCoverage(o, d.IDs(), 2, g)
	if err != nil {
		t.Fatal(err)
	}
	// Scanning in order, the second female sits at position 3.
	if !res.Covered || res.Tasks != 4 || res.Count != 2 {
		t.Errorf("BaseCoverage = %+v, want covered after 4 tasks", res)
	}

	o.Reset()
	res, err = BaseCoverage(o, d.IDs(), 10, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.Count != 3 || !res.Exact || res.Tasks != 6 {
		t.Errorf("uncovered BaseCoverage = %+v, want exact count 3 after all 6 tasks", res)
	}

	if _, err := BaseCoverage(nil, d.IDs(), 1, g); err == nil {
		t.Error("nil oracle: want error")
	}
	if _, err := BaseCoverage(o, d.IDs(), -1, g); err == nil {
		t.Error("tau<0: want error")
	}
	res, err = BaseCoverage(o, d.IDs(), 0, g)
	if err != nil || !res.Covered || res.Tasks != 0 {
		t.Errorf("tau=0 = %+v, %v", res, err)
	}
}

func TestGroupCoveragePropagatesOracleErrors(t *testing.T) {
	d := binaryDataset(t, []int{0, 1, 0, 1, 0, 1, 0, 1})
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 3}
	_, err := GroupCoverage(flaky, d.IDs(), 4, 4, female(d))
	if !errors.Is(err, ErrTransient) {
		t.Errorf("err = %v, want ErrTransient", err)
	}
	flaky = &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 2}
	_, err = BaseCoverage(flaky, d.IDs(), 4, female(d))
	if !errors.Is(err, ErrTransient) {
		t.Errorf("base err = %v, want ErrTransient", err)
	}
}

func TestGroupResultString(t *testing.T) {
	d := binaryDataset(t, []int{1})
	r := GroupResult{Group: female(d), Covered: true, Count: 5, Tasks: 9}
	if r.String() == "" {
		t.Error("empty string")
	}
	r.Covered = false
	r.Exact = true
	if r.String() == "" {
		t.Error("empty string")
	}
}

func TestGroupCoverageIntersectionalGroup(t *testing.T) {
	// Algorithm 1 must work for any group predicate, not only binary
	// attributes: audit female-asian over a gender x race dataset.
	s := pattern.MustSchema(
		pattern.Attribute{Name: "gender", Values: []string{"male", "female"}},
		pattern.Attribute{Name: "race", Values: []string{"white", "black", "asian"}},
	)
	rng := rand.New(rand.NewSource(34))
	counts := make([]int, s.NumSubgroups())
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 0, 0))] = 500
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 1, 0))] = 300
	counts[pattern.SubgroupIndex(s, pattern.MustPattern(s, 1, 2))] = 7
	d := dataset.MustFromCounts(s, counts, rng)
	g := pattern.GroupOf("female-asian", pattern.MustPattern(s, 1, 2))
	o := NewTruthOracle(d)
	res, err := GroupCoverage(o, d.IDs(), 50, 10, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.Count != 7 || !res.Exact {
		t.Errorf("female-asian audit = %+v, want exact uncovered 7", res)
	}
}
