package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"imagecvg/internal/pattern"
)

// fileFormat is the on-disk JSON representation of a dataset: the
// schema plus one label vector per object in the current order.
type fileFormat struct {
	Attributes []attrFormat `json:"attributes"`
	Labels     [][]int      `json:"labels"`
}

type attrFormat struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// WriteJSON serializes the dataset (schema and hidden labels).
func (d *Dataset) WriteJSON(w io.Writer) error {
	ff := fileFormat{Labels: make([][]int, d.Size())}
	for _, a := range d.schema.Attrs() {
		ff.Attributes = append(ff.Attributes, attrFormat{Name: a.Name, Values: a.Values})
	}
	for i := 0; i < d.Size(); i++ {
		ff.Labels[i] = d.At(i).Labels
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// ReadJSON parses a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	attrs := make([]pattern.Attribute, len(ff.Attributes))
	for i, a := range ff.Attributes {
		attrs[i] = pattern.Attribute{Name: a.Name, Values: a.Values}
	}
	s, err := pattern.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	return New(s, ff.Labels)
}

// SaveJSON writes the dataset to a file.
func (d *Dataset) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadJSON reads a dataset from a file.
func LoadJSON(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// WriteCSV emits a header row (id plus attribute names) followed by
// one row per object with human-readable value names.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id"}
	for _, a := range d.schema.Attrs() {
		header = append(header, a.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < d.Size(); i++ {
		o := d.At(i)
		row := []string{strconv.Itoa(int(o.ID))}
		for j, v := range o.Labels {
			row = append(row, d.schema.Attr(j).Values[v])
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
