package sim

import (
	"fmt"

	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/stats"
)

// Figure7Params fixes the defaults of the single-group performance
// sweeps (section 6.5.1): N = 100,000, tau = n = 50.
type Figure7Params struct {
	N, Tau, SetSize int
	// BaseCoverage toggles the expensive point-query baseline series
	// (the paper plots it; large-N sweeps may disable it).
	BaseCoverage bool
}

// DefaultFigure7Params mirrors the paper's defaults.
func DefaultFigure7Params() Figure7Params {
	return Figure7Params{N: 100_000, Tau: 50, SetSize: 50, BaseCoverage: true}
}

// Figure7Point is one x-axis position of a Figure 7 sweep.
type Figure7Point struct {
	X               int
	GroupCoverage   float64
	BaseCoverage    float64
	UpperBound      float64
	CoveredFraction float64
}

// Figure7Result is one sweep series.
type Figure7Result struct {
	Name, XLabel string
	HasBase      bool
	Points       []Figure7Point
}

// String renders the series as a table (the paper plots it log-scale).
func (r *Figure7Result) String() string {
	t := stats.NewTable(r.XLabel, "Group-Coverage tasks", "Base-Coverage tasks", "upper bound", "covered frac")
	for _, p := range r.Points {
		base := "-"
		if r.HasBase {
			base = fmt.Sprintf("%.1f", p.BaseCoverage)
		}
		t.AddRow(p.X, fmt.Sprintf("%.1f", p.GroupCoverage), base,
			fmt.Sprintf("%.1f", p.UpperBound), fmt.Sprintf("%.2f", p.CoveredFraction))
	}
	return fmt.Sprintf("Figure 7 (%s)\n%s", r.Name, t.String())
}

// figure7Cell is one x-axis position's workload: the dataset size and
// composition, the audit parameters, and the cell's seed offset.
type figure7Cell struct {
	x, n, females, tau, setSize int
	seedOffset                  int64
}

// figure7Obs is one trial's task counts (covered as 0/1 so the mean
// is the covered fraction).
type figure7Obs struct {
	gc, base, covered float64
}

// runFigure7Sweep drives one sweep series on the trial-runner: every
// (point, trial) pair is an independent job over the shared pool, so
// big points no longer serialize behind small ones.
func runFigure7Sweep(id string, cells []figure7Cell, withBase bool, o Options) ([]Figure7Point, error) {
	cfgs := make([]experiment.Config, len(cells))
	for i, c := range cells {
		cfgs[i] = o.cell(fmt.Sprintf("%s/x=%d", id, c.x), c.seedOffset)
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (figure7Obs, error) {
		c := cells[cell]
		d, err := dataset.BinaryWithMinority(c.n, c.females, t.Rng)
		if err != nil {
			return figure7Obs{}, err
		}
		g := dataset.Female(d.Schema())
		res, err := core.GroupCoverage(core.NewTruthOracle(d), d.IDs(), c.setSize, c.tau, g)
		if err != nil {
			return figure7Obs{}, err
		}
		obs := figure7Obs{gc: float64(res.Tasks)}
		if res.Covered {
			obs.covered = 1
		}
		if withBase {
			b, err := core.BaseCoverage(core.NewTruthOracle(d), d.IDs(), c.tau, g)
			if err != nil {
				return figure7Obs{}, err
			}
			obs.base = float64(b.Tasks)
		}
		return obs, nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]Figure7Point, len(cells))
	for i, c := range cells {
		r := results[i]
		points[i] = Figure7Point{
			X:               c.x,
			GroupCoverage:   r.Mean(func(v figure7Obs) float64 { return v.gc }),
			UpperBound:      core.UpperBoundHITs(c.n, c.setSize, c.tau),
			CoveredFraction: r.Mean(func(v figure7Obs) float64 { return v.covered }),
		}
		if withBase {
			points[i].BaseCoverage = r.Mean(func(v figure7Obs) float64 { return v.base })
		}
	}
	return points, nil
}

// RunFigure7a reproduces Figure 7a: the number of tasks as the number
// of group members f varies over [0, 2*tau]. Cost peaks at f close to
// tau and falls off on both sides.
func RunFigure7a(p Figure7Params, o Options) (*Figure7Result, error) {
	res := &Figure7Result{
		Name:    fmt.Sprintf("varying #females, N=%d tau=%d n=%d", p.N, p.Tau, p.SetSize),
		XLabel:  "females f",
		HasBase: p.BaseCoverage,
	}
	step := p.Tau / 5
	if step < 1 {
		step = 1
	}
	var cells []figure7Cell
	for f := 0; f <= 2*p.Tau; f += step {
		cells = append(cells, figure7Cell{
			x: f, n: p.N, females: f, tau: p.Tau, setSize: p.SetSize,
			seedOffset: int64(f) * 101,
		})
	}
	points, err := runFigure7Sweep("figure7a", cells, p.BaseCoverage, o)
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// RunFigure7b reproduces Figure 7b: tasks as tau varies with exactly
// f = tau group members — the worst case, which hugs the upper bound
// and grows linearly in tau.
func RunFigure7b(p Figure7Params, o Options) (*Figure7Result, error) {
	res := &Figure7Result{
		Name:    fmt.Sprintf("varying coverage threshold, N=%d n=%d, f=tau", p.N, p.SetSize),
		XLabel:  "tau",
		HasBase: p.BaseCoverage,
	}
	var cells []figure7Cell
	for _, tau := range []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		cells = append(cells, figure7Cell{
			x: tau, n: p.N, females: tau, tau: tau, setSize: p.SetSize,
			seedOffset: int64(tau) * 211,
		})
	}
	points, err := runFigure7Sweep("figure7b", cells, p.BaseCoverage, o)
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// RunFigure7c reproduces Figure 7c: tasks as the set-size bound n
// varies; the jump below n~20 and the flat logarithmic tail above it.
func RunFigure7c(p Figure7Params, o Options) (*Figure7Result, error) {
	res := &Figure7Result{
		Name:    fmt.Sprintf("varying subset size, N=%d tau=%d, f=tau", p.N, p.Tau),
		XLabel:  "set size n",
		HasBase: p.BaseCoverage,
	}
	var cells []figure7Cell
	for _, n := range []int{1, 2, 5, 10, 20, 50, 100, 200, 300, 400} {
		cells = append(cells, figure7Cell{
			x: n, n: p.N, females: p.Tau, tau: p.Tau, setSize: n,
			seedOffset: int64(n) * 307,
		})
	}
	points, err := runFigure7Sweep("figure7c", cells, p.BaseCoverage, o)
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// RunFigure7d reproduces Figure 7d: tasks as the dataset size N grows
// from 1K to 1M with f = tau; growth is linear and stays below 6 % of
// N.
func RunFigure7d(p Figure7Params, o Options) (*Figure7Result, error) {
	res := &Figure7Result{
		Name:    fmt.Sprintf("varying dataset size, tau=%d n=%d, f=tau", p.Tau, p.SetSize),
		XLabel:  "dataset size N",
		HasBase: p.BaseCoverage,
	}
	var cells []figure7Cell
	for _, n := range []int{1_000, 10_000, 100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000} {
		cells = append(cells, figure7Cell{
			x: n, n: n, females: p.Tau, tau: p.Tau, setSize: p.SetSize,
			seedOffset: int64(n),
		})
	}
	points, err := runFigure7Sweep("figure7d", cells, p.BaseCoverage, o)
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}
