package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickSchema is a fixed mixed-cardinality schema for property tests.
func quickSchema() *Schema {
	return MustSchema(
		Attribute{Name: "a", Values: []string{"0", "1", "2"}},
		Attribute{Name: "b", Values: []string{"0", "1"}},
		Attribute{Name: "c", Values: []string{"0", "1", "2", "3"}},
	)
}

// randomPattern draws a uniform pattern over the schema.
func randomPattern(s *Schema, rng *rand.Rand) Pattern {
	p := make(Pattern, s.NumAttrs())
	for i := range p {
		v := rng.Intn(s.Attr(i).Cardinality() + 1)
		if v == s.Attr(i).Cardinality() {
			p[i] = Wildcard
		} else {
			p[i] = v
		}
	}
	return p
}

func randomLabelVec(s *Schema, rng *rand.Rand) []int {
	l := make([]int, s.NumAttrs())
	for i := range l {
		l[i] = rng.Intn(s.Attr(i).Cardinality())
	}
	return l
}

func TestQuickCoversIsTransitive(t *testing.T) {
	s := quickSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a chain p >= q >= r by specializing step by step, then
		// check p.Covers(r).
		p := randomPattern(s, rng)
		q := p.Clone()
		for i, v := range q {
			if v == Wildcard && rng.Intn(2) == 0 {
				q[i] = rng.Intn(s.Attr(i).Cardinality())
			}
		}
		r := q.Clone()
		for i, v := range r {
			if v == Wildcard && rng.Intn(2) == 0 {
				r[i] = rng.Intn(s.Attr(i).Cardinality())
			}
		}
		return p.Covers(q) && q.Covers(r) && p.Covers(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCoversImpliesMatchSubset(t *testing.T) {
	// Property: if p covers q, every label vector matching q matches p.
	s := quickSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomPattern(s, rng)
		p := q.Clone()
		for i, v := range p {
			if v != Wildcard && rng.Intn(2) == 0 {
				p[i] = Wildcard // generalize: p covers q by construction
			}
		}
		if !p.Covers(q) {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			l := randomLabelVec(s, rng)
			if q.Matches(l) && !p.Matches(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	s := quickSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(s, rng)
		rt, err := Parse(s, p.String())
		return err == nil && rt.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchesEquivalentToSubgroupMembership(t *testing.T) {
	// Property: p matches l iff the fully-specified pattern of l is
	// covered by p.
	s := quickSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(s, rng)
		l := randomLabelVec(s, rng)
		return p.Matches(l) == p.Covers(Point(l))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAllCountsConsistency(t *testing.T) {
	// Property: combiner counts equal direct counts for every pattern,
	// on random small datasets.
	s := quickSchema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		labels := make([][]int, n)
		for i := range labels {
			labels[i] = randomLabelVec(s, rng)
		}
		counts := CountLabels(s, labels)
		all := AllCounts(s, counts)
		for trial := 0; trial < 10; trial++ {
			p := randomPattern(s, rng)
			if all[p.Key()] != CountPattern(s, counts, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
