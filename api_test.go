package imagecvg

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	ds, err := GenerateBinary(10_000, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50)
	res, err := auditor.AuditGroup(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.Count != 40 || !res.Exact {
		t.Errorf("audit = %+v, want exact uncovered 40", res)
	}
	base, err := auditor.AuditBaseline(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if base.Tasks <= res.Tasks {
		t.Errorf("baseline (%d) should cost more than Group-Coverage (%d)", base.Tasks, res.Tasks)
	}
}

func TestAuditorThroughSimulatedCrowd(t *testing.T) {
	ds := PresetFERETTable1.Generate(newTestRand(2))
	crowdOracle, err := NewSimulatedCrowd(ds, 3, CrowdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(crowdOracle, 50, 50)
	res, err := auditor.AuditGroup(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("FERET slice has 215 females, must be covered at tau=50")
	}
	cost := crowdOracle.Cost()
	if cost.TotalHITs != res.Tasks {
		t.Errorf("ledger HITs %d != audit tasks %d", cost.TotalHITs, res.Tasks)
	}
	if cost.TotalCost <= 0 {
		t.Error("cost must be positive")
	}
	crowdOracle.ResetCost()
	if crowdOracle.Cost().TotalHITs != 0 {
		t.Error("reset failed")
	}
}

func TestAuditAttributeAndIntersectional(t *testing.T) {
	schema, err := NewSchema(
		Attribute{Name: "gender", Values: []string{"male", "female"}},
		Attribute{Name: "race", Values: []string{"white", "black"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([][]int, 0, 700)
	appendN := func(g, r, n int) {
		for i := 0; i < n; i++ {
			labels = append(labels, []int{g, r})
		}
	}
	appendN(0, 0, 300)
	appendN(1, 0, 250)
	appendN(0, 1, 100)
	appendN(1, 1, 5) // female-black: the MUP
	ds, err := NewDataset(schema, labels)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(7)

	multi, err := auditor.AuditAttribute(ds.IDs(), schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Results[0].Covered || !multi.Results[1].Covered {
		t.Error("both genders are covered in aggregate")
	}
	if _, err := auditor.AuditAttribute(ds.IDs(), schema, 9); err == nil {
		t.Error("bad attribute index: want error")
	}

	inter, err := auditor.AuditIntersectional(ds.IDs(), schema)
	if err != nil {
		t.Fatal(err)
	}
	foundMUP := false
	for _, m := range inter.MUPs {
		if m.Pattern.Format(schema) == "gender=female AND race=black" {
			foundMUP = true
		}
	}
	if !foundMUP {
		t.Errorf("female-black missing from MUPs: %v", inter.MUPs)
	}
}

func TestAuditWithClassifierFacade(t *testing.T) {
	ds := PresetFERETUnique.Generate(newTestRand(4))
	g := FemaleGroup(ds.Schema())
	sim, err := NewSimulatedClassifier("DeepFace (opencv)", 403, 591, 0.7957, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := sim.Predict(ds, g, newTestRand(5))
	if err != nil {
		t.Fatal(err)
	}
	conf, err := EvaluateClassifier(ds, g, predicted)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Precision() < 0.98 {
		t.Errorf("precision = %f", conf.Precision())
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50).WithSeed(6)
	res, err := auditor.AuditWithClassifier(ds.IDs(), predicted, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Error("403 females must be covered")
	}
	direct, err := auditor.AuditGroup(ds.IDs(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks >= direct.Tasks {
		t.Errorf("classifier-assisted audit (%d) should beat direct (%d)", res.Tasks, direct.Tasks)
	}
}

func TestSimulatedCrowdAllQueryKinds(t *testing.T) {
	ds, err := GenerateBinary(120, 30, 21)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := NewSimulatedCrowd(ds, 22, CrowdOptions{
		Assignments:   5,
		PoolSize:      25,
		Qualification: true,
		Rating:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := FemaleGroup(ds.Schema())
	ids := ds.IDs()
	if _, err := crowd.SetQuery(ids[:10], g); err != nil {
		t.Fatal(err)
	}
	if _, err := crowd.ReverseSetQuery(ids[:10], g); err != nil {
		t.Fatal(err)
	}
	labels, err := crowd.PointQuery(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := ds.TrueLabels(ids[0])
	if labels[0] != truth[0] {
		t.Errorf("point query = %v, truth %v", labels, truth)
	}
	snap := crowd.Cost()
	if snap.SetHITs != 1 || snap.ReverseSetHITs != 1 || snap.PointHITs != 1 {
		t.Errorf("ledger = %+v", snap)
	}
	if snap.Assignments != 15 {
		t.Errorf("assignments = %d, want 3 HITs x 5", snap.Assignments)
	}
}

func TestNewSimulatedCrowdRejectsImpossibleQualityControl(t *testing.T) {
	ds, err := GenerateBinary(10, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	// A one-worker pool where rating thresholds exclude everyone.
	_, err = NewSimulatedCrowd(ds, 24, CrowdOptions{PoolSize: 1, Rating: true})
	if err == nil {
		// Rating may pass a lucky worker; force failure via pool of
		// spammers and a qualification test instead is racy — accept
		// either outcome but exercise the code path.
		t.Skip("single worker happened to pass the rating filter")
	}
}

func TestPatternHelpers(t *testing.T) {
	s := GenderSchema()
	p, err := ParsePattern(s, "1")
	if err != nil {
		t.Fatal(err)
	}
	if !GroupOf("female", p).Matches([]int{1}) {
		t.Error("parsed pattern should match female")
	}
	if len(GroupsForAttribute(s, 0)) != 2 || len(SubgroupGroups(s)) != 2 {
		t.Error("group helpers wrong")
	}
	if LowerBoundTasks(100, 50) != 2 {
		t.Error("bound re-export broken")
	}
	if UpperBoundHITs(1522, 50, 50) < 114 || UpperBoundHITs(1522, 50, 50) > 116 {
		t.Error("upper bound re-export broken")
	}
	if UpperBoundTasksLog2(100, 50, 10) <= 0 {
		t.Error("log2 bound re-export broken")
	}
}

func TestPresetReexports(t *testing.T) {
	if PresetFERETTable1.Females != 215 || PresetFERETUnique.Females != 403 ||
		PresetUTKFace200.Females != 200 || PresetUTKFace20.Females != 20 {
		t.Error("preset re-exports wrong")
	}
}

func TestGroupResultRendering(t *testing.T) {
	ds, _ := GenerateBinary(100, 10, 8)
	auditor := NewAuditor(NewTruthOracle(ds), 5, 10)
	res, err := auditor.AuditGroup(ds.IDs(), FemaleGroup(ds.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "covered") {
		t.Errorf("rendering = %q", res.String())
	}
}

// TestAuditorWithBudget pins the public budget facade: one governor
// spans consecutive audits, exhaustion surfaces as partial results
// (never an error), and BudgetSpent reports the committed consumption.
func TestAuditorWithBudget(t *testing.T) {
	ds, err := GenerateBinary(2_000, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	auditor := NewAuditor(NewTruthOracle(ds), 50, 50).
		WithSeed(5).WithLockstep().WithBudget(Budget{MaxHITs: 10})
	res, err := auditor.AuditGroups(ds.IDs(), []Group{
		FemaleGroup(ds.Schema()), MaleGroup(ds.Schema()),
	})
	if err != nil {
		t.Fatalf("budget exhaustion must not error: %v", err)
	}
	if !res.Exhausted {
		t.Fatalf("10-HIT audit of 2000 objects must exhaust: %+v", res)
	}
	spent, ok := auditor.BudgetSpent()
	if !ok {
		t.Fatal("BudgetSpent must report after WithBudget")
	}
	if spent.HITs() > 10 {
		t.Errorf("committed %d HITs over the 10-HIT cap", spent.HITs())
	}
	// The shared governor spans the next audit too: it starts already
	// exhausted and commits nothing further.
	res2, err := auditor.AuditGroups(ds.IDs(), []Group{FemaleGroup(ds.Schema())})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Exhausted {
		t.Error("second audit through the spent governor must exhaust")
	}
	if again, _ := auditor.BudgetSpent(); again.HITs() != spent.HITs() {
		t.Errorf("spent governor still committed HITs: %d -> %d", spent.HITs(), again.HITs())
	}

	// A budget priced by the crowd's own cost model stays within the
	// dollar cap on the ledger.
	crowd, err := NewSimulatedCrowd(ds, 7, CrowdOptions{})
	if err != nil {
		t.Fatal(err)
	}
	capped := NewAuditor(crowd, 50, 50).WithSeed(5).WithLockstep().
		WithBudget(Budget{MaxSpend: 5.00, Cost: crowd.HITCost()})
	if _, err := capped.AuditGroup(ds.IDs(), FemaleGroup(ds.Schema())); err != nil {
		t.Fatal(err)
	}
	if cost := crowd.Cost(); cost.TotalCost > 5.00+1e-9 {
		t.Errorf("ledger spend $%.2f exceeds the $5.00 cap", cost.TotalCost)
	} else if cost.TotalHITs == 0 {
		t.Error("capped audit should still have posted some HITs")
	}
}
