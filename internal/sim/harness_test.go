package sim

// Tests of the trial-runner integration: every experiment must render
// the identical artifact at any trial-parallelism, respect the trial
// count uniformly, and the sweep must demonstrate cross-audit cache
// reuse.

import (
	"reflect"
	"strings"
	"testing"

	"imagecvg/internal/experiment"
)

// TestTrialParallelismEquivalenceTable1: the crowd-backed Table 1 —
// the harness's most stateful experiment (platform, ledger, worker
// pool per trial) — must produce identical rows sequentially and on a
// 4-wide trial pool.
func TestTrialParallelismEquivalenceTable1(t *testing.T) {
	p := DefaultTable1Params()
	seq, err := RunTable1(p, Options{Seed: 11, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTable1(p, Options{Seed: 11, Trials: 2, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Errorf("table1 rows diverged:\n%+v\nvs\n%+v", seq.Rows, par.Rows)
	}
	if seq.String() != par.String() {
		t.Error("table1 rendering diverged across trial-parallelism")
	}
}

// TestTrialParallelismEquivalenceFigure7e: the multi-group comparison
// (engine parallelism inside, trial parallelism outside) must stay
// byte-identical too.
func TestTrialParallelismEquivalenceFigure7e(t *testing.T) {
	p := DefaultMultiParams()
	seq, err := RunFigure7e(p, Options{Seed: 13, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigure7e(p, Options{Seed: 13, Trials: 2, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("figure7e diverged:\n%s\nvs\n%s", seq, par)
	}
}

// TestTrialsRespectedUniformly: non-positive trial counts mean "one
// trial" for every experiment — the engine normalizes once, so a
// zero-trial run renders exactly the one-trial artifact.
func TestTrialsRespectedUniformly(t *testing.T) {
	for _, id := range []string{"table1", "figure7e", "sweep"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s missing from registry", id)
		}
		one, err := e.Run(Options{Seed: 19, Trials: 1})
		if err != nil {
			t.Fatal(err)
		}
		zero, err := e.Run(Options{Seed: 19, Trials: 0})
		if err != nil {
			t.Fatal(err)
		}
		neg, err := e.Run(Options{Seed: 19, Trials: -4})
		if err != nil {
			t.Fatal(err)
		}
		// The sweep reports wall-clock per trial, which no two runs
		// share; compare its deterministic grid column-wise instead.
		if id == "sweep" {
			o, z, n := one.(*SweepResult), zero.(*SweepResult), neg.(*SweepResult)
			if !reflect.DeepEqual(taskCols(o), taskCols(z)) || !reflect.DeepEqual(taskCols(o), taskCols(n)) {
				t.Errorf("%s: trials<=0 diverged from trials=1", id)
			}
			continue
		}
		if one.String() != zero.String() || one.String() != neg.String() {
			t.Errorf("%s: trials<=0 must equal trials=1", id)
		}
	}
}

// taskCols projects a sweep result onto its deterministic columns.
func taskCols(r *SweepResult) []SweepRow {
	rows := make([]SweepRow, len(r.Rows))
	for i, row := range r.Rows {
		row.MillisPerTrial = 0
		rows[i] = row
	}
	return rows
}

// TestRunSweepGrid: the sweep crosses the full N x tau x parallelism
// grid, reports identical task counts along the parallelism axis
// (engine equivalence), and its shared caches absorb the re-audits
// (the ROADMAP's cross-audit reuse).
func TestRunSweepGrid(t *testing.T) {
	p := SweepParams{
		Ns:             []int{2_000, 5_000},
		Taus:           []int{25, 50},
		Parallelisms:   []int{1, 4},
		SetSize:        50,
		MinorityCounts: []int{10, 8, 6},
	}
	res, err := RunSweep(p, Options{Seed: 23, Trials: 2, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(p.Ns) * len(p.Taus) * len(p.Parallelisms); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if want := len(p.Ns) * len(p.Taus); len(res.Workloads) != want {
		t.Fatalf("workloads = %d, want %d", len(res.Workloads), want)
	}
	// Task counts must agree across the parallelism axis of each
	// workload: the engines ask the same questions.
	type key struct{ n, tau int }
	tasks := map[key]float64{}
	for _, row := range res.Rows {
		k := key{row.N, row.Tau}
		if prev, ok := tasks[k]; ok {
			if prev != row.Tasks {
				t.Errorf("N=%d tau=%d: tasks %v vs %v across parallelism", row.N, row.Tau, prev, row.Tasks)
			}
		} else {
			tasks[k] = row.Tasks
		}
		if row.Tasks <= 0 {
			t.Errorf("empty cell: %+v", row)
		}
	}
	// The shared cache must absorb a large share: 2 parallelism cells
	// x 2 trials re-ask mostly identical questions.
	for _, w := range res.Workloads {
		if w.HitRate < 0.4 {
			t.Errorf("N=%d tau=%d: hit rate %.2f, want the re-audits amortized", w.N, w.Tau, w.HitRate)
		}
		if w.PaidTasks <= 0 {
			t.Errorf("N=%d tau=%d: no paid HITs recorded", w.N, w.Tau)
		}
	}
	out := res.String()
	if !strings.Contains(out, "cache hit rate") || !strings.Contains(out, "engine parallelism") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
	if res.TotalTasks() <= 0 {
		t.Error("TotalTasks must sum the grid")
	}
}

// TestRecorderSeesEveryTrial: the Options.Timing recorder observes
// each (cell, trial) pair exactly once.
func TestRecorderSeesEveryTrial(t *testing.T) {
	rec := experiment.NewRecorder()
	if _, err := RunFigure7e(DefaultMultiParams(), Options{Seed: 29, Trials: 2, Timing: rec}); err != nil {
		t.Fatal(err)
	}
	s := rec.Summary()
	if s.Cells != 4 || s.Trials != 8 {
		t.Errorf("timing summary %+v, want 4 cells x 2 trials", s)
	}
}
