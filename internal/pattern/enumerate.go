package pattern

// Subgroups enumerates every fully-specified subgroup of the schema in
// mixed-radix order (last attribute varies fastest). The i-th returned
// pattern has SubgroupIndex i.
func Subgroups(s *Schema) []Pattern {
	m := s.NumSubgroups()
	out := make([]Pattern, 0, m)
	for idx := 0; idx < m; idx++ {
		out = append(out, SubgroupAt(s, idx))
	}
	return out
}

// SubgroupAt decodes a mixed-radix subgroup index into the
// corresponding fully-specified pattern.
func SubgroupAt(s *Schema, idx int) Pattern {
	d := s.NumAttrs()
	p := make(Pattern, d)
	for i := d - 1; i >= 0; i-- {
		c := s.Attr(i).Cardinality()
		p[i] = idx % c
		idx /= c
	}
	return p
}

// SubgroupIndex encodes a fully-specified pattern (or a label vector,
// via Point) into its mixed-radix index. It returns -1 if the pattern
// has any wildcard slot.
func SubgroupIndex(s *Schema, p Pattern) int {
	idx := 0
	for i := 0; i < s.NumAttrs(); i++ {
		if p[i] == Wildcard {
			return -1
		}
		idx = idx*s.Attr(i).Cardinality() + p[i]
	}
	return idx
}

// Universe enumerates every pattern over the schema, all-wildcard
// included, in mixed-radix order over slot values {X, 0, 1, ...}.
func Universe(s *Schema) []Pattern {
	d := s.NumAttrs()
	total := s.NumPatterns()
	out := make([]Pattern, 0, total)
	cur := make(Pattern, d)
	for i := range cur {
		cur[i] = Wildcard
	}
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			out = append(out, cur.Clone())
			return
		}
		cur[i] = Wildcard
		rec(i + 1)
		for v := 0; v < s.Attr(i).Cardinality(); v++ {
			cur[i] = v
			rec(i + 1)
		}
		cur[i] = Wildcard
	}
	rec(0)
	return out
}

// UniverseByLevel returns the pattern universe grouped by level;
// element L of the result holds all level-L patterns.
func UniverseByLevel(s *Schema) [][]Pattern {
	byLevel := make([][]Pattern, s.NumAttrs()+1)
	for _, p := range Universe(s) {
		l := p.Level()
		byLevel[l] = append(byLevel[l], p)
	}
	return byLevel
}
