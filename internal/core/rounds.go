package core

import (
	"errors"
	"fmt"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// RoundsResult reports a level-synchronous audit: the verdict plus the
// latency/throughput tradeoff against the sequential Algorithm 1.
type RoundsResult struct {
	GroupResult
	// Rounds is the number of synchronous batches issued. With crowd
	// platforms the wall-clock latency of an audit is dominated by
	// rounds (every HIT in a batch runs concurrently on the platform),
	// not by the task count.
	Rounds int
}

// GroupCoverageRounds is a deployment-oriented variant of Algorithm 1
// that issues every set query of one tree level as one SetQueryBatch
// round, the way HIT groups are actually posted to a crowd platform.
// Oracles without native batching are lifted through a worker pool of
// parallelism goroutines. Latency drops from Theta(tasks) sequential
// waits to at most 1+ceil(log2 n) rounds; the price is that the
// early-stop check runs only between rounds and the free
// right-sibling inference disappears (both siblings are already in
// flight), so the variant issues somewhat more tasks than the
// sequential algorithm.
//
// The oracle must be safe for concurrent use unless it implements
// BatchOracle natively (TruthOracle and the crowd platform do; a real
// crowd bridge naturally is).
func GroupCoverageRounds(o Oracle, ids []dataset.ObjectID, n, tau int, g pattern.Group, parallelism int) (RoundsResult, error) {
	res := RoundsResult{GroupResult: GroupResult{Group: g}}
	if o == nil {
		return res, errors.New("core: nil oracle")
	}
	if n < 1 {
		return res, fmt.Errorf("core: set size bound n=%d, need >= 1", n)
	}
	if tau < 0 {
		return res, fmt.Errorf("core: coverage threshold tau=%d, need >= 0", tau)
	}
	parallelism = normalizeParallelism(parallelism)
	if tau == 0 {
		res.Covered = true
		return res, nil
	}
	if len(ids) == 0 {
		res.Exact = true
		return res, nil
	}

	frontier := make([]*node, 0, (len(ids)+n-1)/n)
	for i := 0; i < len(ids); i += n {
		end := i + n
		if end > len(ids) {
			end = len(ids)
		}
		frontier = append(frontier, &node{b: i, e: end})
	}

	bo := AsBatchOracle(o, parallelism)
	cnt := 0
	for len(frontier) > 0 {
		res.Rounds++
		reqs := make([]SetRequest, len(frontier))
		for i, t := range frontier {
			reqs[i] = SetRequest{IDs: ids[t.b:t.e], Group: g}
		}
		answers, err := bo.SetQueryBatch(reqs)
		exhausted := false
		if err != nil {
			if !errors.Is(err, ErrBudgetExhausted) {
				return res, err
			}
			// A budget governor admitted only a prefix of the round;
			// its answers are committed (and paid), so fold them into
			// the walk before reporting the partial verdict.
			exhausted = true
		}
		res.Tasks += len(answers)

		var next []*node
		for i, t := range frontier[:len(answers)] {
			if !answers[i] {
				continue
			}
			switch {
			case t.parent == nil:
				cnt++
			case t.parent.checked:
				cnt++
			default:
				t.parent.checked = true
			}
			if t.size() > 1 {
				mid := (t.b + t.e) / 2
				t.left = &node{b: t.b, e: mid, parent: t}
				t.right = &node{b: mid, e: t.e, parent: t}
				next = append(next, t.left, t.right)
			}
		}
		if cnt >= tau {
			res.Covered = true
			res.Count = cnt
			return res, nil
		}
		if exhausted {
			res.Count = cnt
			res.Exhausted = true
			return res, nil
		}
		frontier = next
	}
	res.Count = cnt
	res.Exact = true
	return res, nil
}
