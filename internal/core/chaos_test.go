package core

import (
	"math/rand"
	"testing"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// chaoticOracle answers every query at random: the worst possible
// crowd, with answers that need not even be self-consistent (a parent
// set can say "no members" while its child says "one"). The
// algorithms cannot be correct against it — but they must terminate,
// stay within their structural task bounds, and never panic, because
// real majority votes occasionally produce exactly such
// inconsistencies.
type chaoticOracle struct {
	schema *pattern.Schema
	rng    *rand.Rand
	calls  int
}

func (c *chaoticOracle) SetQuery([]dataset.ObjectID, pattern.Group) (bool, error) {
	c.calls++
	return c.rng.Intn(2) == 0, nil
}

func (c *chaoticOracle) ReverseSetQuery([]dataset.ObjectID, pattern.Group) (bool, error) {
	c.calls++
	return c.rng.Intn(2) == 0, nil
}

func (c *chaoticOracle) PointQuery(dataset.ObjectID) ([]int, error) {
	c.calls++
	labels := make([]int, c.schema.NumAttrs())
	for i := range labels {
		labels[i] = c.rng.Intn(c.schema.Attr(i).Cardinality())
	}
	return labels, nil
}

func TestGroupCoverageTerminatesUnderChaos(t *testing.T) {
	s := dataset.GenderSchema()
	g := pattern.GroupOf("female", pattern.MustPattern(s, 1))
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(800)
		setSize := 1 + rng.Intn(64)
		tau := 1 + rng.Intn(60)
		ids := make([]dataset.ObjectID, n)
		for i := range ids {
			ids[i] = dataset.ObjectID(i)
		}
		o := &chaoticOracle{schema: s, rng: rng}
		res, err := GroupCoverage(o, ids, setSize, tau, g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Structural bound: even chaotic answers cannot force more
		// queries than the full binary forest holds (2N-1 nodes per
		// tree worth of splits plus roots).
		if res.Tasks > 2*n+LowerBoundTasks(n, setSize) {
			t.Fatalf("seed %d: %d tasks on N=%d — runaway", seed, res.Tasks, n)
		}
	}
}

func TestPartitionCleanTerminatesUnderChaos(t *testing.T) {
	s := dataset.GenderSchema()
	g := pattern.GroupOf("female", pattern.MustPattern(s, 1))
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		ids := make([]dataset.ObjectID, n)
		for i := range ids {
			ids[i] = dataset.ObjectID(i)
		}
		o := &chaoticOracle{schema: s, rng: rng}
		confirmed, _, tasks, err := partitionClean(o, ids, 1+rng.Intn(32), n+1, g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if confirmed < 0 || confirmed > n {
			t.Fatalf("seed %d: confirmed %d out of range", seed, confirmed)
		}
		if tasks > 3*n+10 {
			t.Fatalf("seed %d: %d tasks on N=%d — runaway", seed, tasks, n)
		}
	}
}

func TestMultipleCoverageTerminatesUnderChaos(t *testing.T) {
	s := pattern.MustSchema(pattern.Attribute{
		Name: "race", Values: []string{"w", "b", "h", "a"},
	})
	groups := pattern.GroupsForAttribute(s, 0)
	for seed := int64(200); seed < 210; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		ids := make([]dataset.ObjectID, n)
		for i := range ids {
			ids[i] = dataset.ObjectID(i)
		}
		o := &chaoticOracle{schema: s, rng: rng}
		if _, err := MultipleCoverage(o, ids, 25, 20, groups, MultipleOptions{Rng: rng}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestIntersectionalCoverageTerminatesUnderChaos(t *testing.T) {
	s := pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
	)
	for seed := int64(300); seed < 308; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(400)
		ids := make([]dataset.ObjectID, n)
		for i := range ids {
			ids[i] = dataset.ObjectID(i)
		}
		o := &chaoticOracle{schema: s, rng: rng}
		res, err := IntersectionalCoverage(o, ids, 20, 15, s, MultipleOptions{Rng: rng})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Whatever the chaos said, every pattern must carry a definite
		// verdict (resolution passes leave no Unknown).
		for key, v := range res.Verdicts {
			if v.Coverage == pattern.Unknown {
				t.Fatalf("seed %d: pattern %s left unknown", seed, key)
			}
		}
	}
}

func TestClassifierCoverageTerminatesUnderChaos(t *testing.T) {
	s := dataset.GenderSchema()
	g := pattern.GroupOf("female", pattern.MustPattern(s, 1))
	for seed := int64(400); seed < 410; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(400)
		ids := make([]dataset.ObjectID, n)
		for i := range ids {
			ids[i] = dataset.ObjectID(i)
		}
		predicted := ids[:rng.Intn(len(ids)/2+1)]
		o := &chaoticOracle{schema: s, rng: rng}
		if _, err := ClassifierCoverage(o, ids, predicted, 20, 15, g,
			ClassifierOptions{Rng: rng}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
