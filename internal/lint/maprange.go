package lint

import (
	"go/ast"
	"go/types"

	"imagecvg/internal/lint/analysis"
)

// MapRange flags `range` over a map inside the canonical-commit
// packages. Go randomizes map iteration order per run, so any map
// range on a path that forms, commits, journals, or replays audit
// rounds is a replay-identity leak: the same audit produces a
// different HIT transcript on the next run.
//
// Two shapes are accepted without annotation:
//
//   - a pure collection loop — every statement in the body appends to
//     one or more slices — followed later in the same function by a
//     sort call on one of the collected slices (the canonical
//     collect-keys-then-sort idiom);
//   - a loop annotated //lint:ordered <why>, where <why> states the
//     argument for order-independence.
//
// Test files are exempt: the contract governs production commit
// paths, and the conformance suites already pin test determinism.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flags nondeterministic map iteration in canonical-commit packages",
	Run:  runMapRange,
}

func runMapRange(pass *analysis.Pass) (any, error) {
	if !inCommitPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		dirs := directives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
				return true
			}
			if suppressed(pass, dirs, rs.Pos(), "ordered") {
				return true
			}
			if collected := collectTargets(pass, rs); collected != nil {
				if sortFollows(pass, file, rs, collected) {
					return true
				}
				pass.Reportf(rs.Pos(), "map keys collected from range over %s but never sorted in this function; sort the collected slice or annotate //lint:ordered <why>", types.ExprString(rs.X))
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s in a canonical-commit package: iteration order is nondeterministic; collect and sort the keys first or annotate //lint:ordered <why>", types.ExprString(rs.X))
			return true
		})
	}
	return nil, nil
}

// collectTargets reports whether the range body is a pure collection
// loop — every statement an append into a slice — and returns the
// objects of the slices appended to. A nil return means the loop does
// something other than collect.
func collectTargets(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	if len(rs.Body.List) == 0 {
		return nil
	}
	var targets []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[fn] != types.Universe.Lookup("append") {
			return nil
		}
		if len(call.Args) == 0 {
			return nil
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[first] != pass.TypesInfo.ObjectOf(lhs) {
			return nil
		}
		targets = append(targets, pass.TypesInfo.ObjectOf(lhs))
	}
	return targets
}

// sortFollows reports whether, after the range statement and inside
// the same function, some sort or slices call takes one of the
// collected slices as an argument.
func sortFollows(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, collected []types.Object) bool {
	fn := enclosingFunc(file, rs.Pos())
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody(fn), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		f, ok := obj.(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsAny(pass, arg, collected) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsAny reports whether the expression references any of the
// given objects.
func mentionsAny(pass *analysis.Pass, expr ast.Expr, objs []types.Object) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.TypesInfo.Uses[id]
		for _, o := range objs {
			if use == o {
				hit = true
				return false
			}
		}
		return true
	})
	return hit
}
