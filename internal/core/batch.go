package core

import (
	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// SetRequest is one set or reverse-set query of a batch round: the
// HITs a deployment posts to the platform together, the way crowd
// marketplaces actually ingest work.
type SetRequest struct {
	// IDs are the objects shown to the worker.
	IDs []dataset.ObjectID
	// Group is the queried (possibly super-) group.
	Group pattern.Group
	// Reverse selects the reverse-set question ("at least one object
	// NOT in the group?") instead of the plain set question.
	Reverse bool
}

// BatchOracle extends Oracle with whole-round execution: a deployment
// posts all HITs of one round at once and collects the answers
// together. Implementations must answer positionally — answers[i]
// belongs to reqs[i] — and must return the error of the
// lowest-indexed failing request among those it executed. (A failing
// round may stop dispatching its remaining requests, so when several
// requests would fail concurrently, which error surfaces can depend
// on scheduling; successful rounds are always deterministic.)
//
// Partial-prefix commits: a failing batch may return a non-nil answer
// slice shorter than the request slice alongside its error, meaning
// requests [0, len(answers)) committed with those answers and the rest
// failed. Most implementations return nil answers on error (nothing
// committed); the BudgetedOracle governor uses the prefix form to hand
// back the answers the remaining budget could still afford, and the
// lockstep commit path delivers such a prefix to its tasks instead of
// discarding paid answers.
//
// Oracles whose answers depend only on the request (TruthOracle, any
// stateless crowd bridge) may execute a batch in any order or fully in
// parallel. Stateful simulators (the crowd platform, whose RNG
// advances per HIT) must process the batch in request order so that
// identically-seeded runs reproduce identical answers.
type BatchOracle interface {
	Oracle
	// SetQueryBatch answers one round of set / reverse-set queries.
	SetQueryBatch(reqs []SetRequest) ([]bool, error)
	// PointQueryBatch answers one round of point queries.
	PointQueryBatch(ids []dataset.ObjectID) ([][]int, error)
}

// batchAdapter lifts a plain Oracle into batched execution with a
// bounded worker pool. The inner oracle must be safe for concurrent
// use when parallelism > 1.
type batchAdapter struct {
	inner       Oracle
	parallelism int
}

// NewBatchAdapter wraps an Oracle so whole rounds execute across a
// bounded pool of parallelism goroutines (minimum 1). The inner
// oracle must be safe for concurrent use when parallelism > 1; its
// answers should not depend on call order, or batched runs will not
// reproduce sequential ones.
func NewBatchAdapter(o Oracle, parallelism int) BatchOracle {
	return &batchAdapter{inner: o, parallelism: normalizeParallelism(parallelism)}
}

// AsBatchOracle returns o itself when it already implements
// BatchOracle natively, and otherwise lifts it with NewBatchAdapter.
// The caching, retry and budget middlewares additionally inherit the
// caller's parallelism for the rounds they forward themselves.
func AsBatchOracle(o Oracle, parallelism int) BatchOracle {
	switch v := o.(type) {
	case *CachingOracle:
		return v.WithBatchParallelism(parallelism)
	case *retryOracle:
		return v.withBatchParallelism(parallelism)
	case *BudgetedOracle:
		return v.withBatchParallelism(parallelism)
	case *JournalingOracle:
		return v.withBatchParallelism(parallelism)
	case *TrustOracle:
		return v.withBatchParallelism(parallelism)
	}
	if bo, ok := o.(BatchOracle); ok {
		return bo
	}
	return NewBatchAdapter(o, parallelism)
}

// SetQuery implements Oracle by delegation.
func (a *batchAdapter) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return a.inner.SetQuery(ids, g)
}

// ReverseSetQuery implements Oracle by delegation.
func (a *batchAdapter) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	return a.inner.ReverseSetQuery(ids, g)
}

// PointQuery implements Oracle by delegation.
func (a *batchAdapter) PointQuery(id dataset.ObjectID) ([]int, error) {
	return a.inner.PointQuery(id)
}

// firstError returns the lowest-indexed non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetQueryBatch implements BatchOracle.
func (a *batchAdapter) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	answers := make([]bool, len(reqs))
	err := RunBounded(a.parallelism, len(reqs), func(i int) error {
		var e error
		if reqs[i].Reverse {
			answers[i], e = a.inner.ReverseSetQuery(reqs[i].IDs, reqs[i].Group)
		} else {
			answers[i], e = a.inner.SetQuery(reqs[i].IDs, reqs[i].Group)
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

// PointQueryBatch implements BatchOracle.
func (a *batchAdapter) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	labels := make([][]int, len(ids))
	err := RunBounded(a.parallelism, len(ids), func(i int) error {
		var e error
		labels[i], e = a.inner.PointQuery(ids[i])
		return e
	})
	if err != nil {
		return nil, err
	}
	return labels, nil
}
