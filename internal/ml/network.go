// Package ml is a small, dependency-free neural-network stack used to
// reproduce the paper's downstream-task experiments (section 6.4): a
// fully-connected network with ReLU hidden layers and a softmax
// cross-entropy head, trained by mini-batch SGD with momentum. It is
// deliberately minimal — enough to demonstrate that a model trained on
// data lacking coverage of a group underperforms on that group, and
// that adding samples from the uncovered region closes the gap.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully-connected layer: out = act(W*x + b).
type Dense struct {
	In, Out int
	W       [][]float64 // [Out][In]
	B       []float64
	relu    bool

	// momentum buffers
	vW [][]float64
	vB []float64

	// forward cache for backprop
	x []float64 // input
	z []float64 // pre-activation
}

// Network is a feed-forward classifier.
type Network struct {
	layers  []*Dense
	classes int
}

// NewMLP builds a network with the given layer sizes; sizes[0] is the
// input dimension and sizes[len-1] the number of classes. Hidden
// layers use ReLU; the final layer is linear (softmax applied by the
// loss). Weights use He initialization from rng.
func NewMLP(sizes []int, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("ml: need at least input and output sizes")
	}
	if rng == nil {
		return nil, errors.New("ml: nil rng")
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("ml: layer size %d", s)
		}
	}
	net := &Network{classes: sizes[len(sizes)-1]}
	for i := 0; i+1 < len(sizes); i++ {
		l := &Dense{
			In:   sizes[i],
			Out:  sizes[i+1],
			relu: i+2 < len(sizes),
		}
		scale := math.Sqrt(2.0 / float64(l.In))
		l.W = make([][]float64, l.Out)
		l.vW = make([][]float64, l.Out)
		for o := range l.W {
			l.W[o] = make([]float64, l.In)
			l.vW[o] = make([]float64, l.In)
			for j := range l.W[o] {
				l.W[o][j] = rng.NormFloat64() * scale
			}
		}
		l.B = make([]float64, l.Out)
		l.vB = make([]float64, l.Out)
		net.layers = append(net.layers, l)
	}
	return net, nil
}

// Classes returns the number of output classes.
func (n *Network) Classes() int { return n.classes }

// forward runs one sample through the network, caching activations.
func (n *Network) forward(x []float64) []float64 {
	cur := x
	for _, l := range n.layers {
		l.x = cur
		z := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			s := l.B[o]
			w := l.W[o]
			for j, v := range cur {
				s += w[j] * v
			}
			z[o] = s
		}
		l.z = z
		if l.relu {
			a := make([]float64, l.Out)
			for o, v := range z {
				if v > 0 {
					a[o] = v
				}
			}
			cur = a
		} else {
			cur = z
		}
	}
	return cur
}

// Softmax converts logits to probabilities (numerically stable).
func Softmax(logits []float64) []float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Loss returns the cross-entropy of one sample without touching
// gradients.
func (n *Network) Loss(x []float64, y int) float64 {
	p := Softmax(n.forward(x))
	return -math.Log(math.Max(p[y], 1e-12))
}

// Predict returns the argmax class for one sample.
func (n *Network) Predict(x []float64) int {
	logits := n.forward(x)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// backward accumulates gradients for one sample into grads, given the
// softmax cross-entropy delta at the output. Returns the sample loss.
func (n *Network) backward(x []float64, y int, grads []*denseGrad) float64 {
	logits := n.forward(x)
	p := Softmax(logits)
	loss := -math.Log(math.Max(p[y], 1e-12))

	// dL/dz at output layer.
	delta := make([]float64, len(p))
	copy(delta, p)
	delta[y] -= 1

	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		g := grads[li]
		// ReLU backprop happens on this layer's own activation when
		// it is hidden; delta arriving here is already dL/da, convert
		// to dL/dz.
		if l.relu {
			for o := range delta {
				if l.z[o] <= 0 {
					delta[o] = 0
				}
			}
		}
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			g.b[o] += d
			row := g.w[o]
			for j, v := range l.x {
				row[j] += d * v
			}
		}
		if li > 0 {
			prev := make([]float64, l.In)
			for o := 0; o < l.Out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				w := l.W[o]
				for j := range prev {
					prev[j] += d * w[j]
				}
			}
			delta = prev
		}
	}
	return loss
}

type denseGrad struct {
	w [][]float64
	b []float64
}

func (n *Network) newGrads() []*denseGrad {
	out := make([]*denseGrad, len(n.layers))
	for i, l := range n.layers {
		g := &denseGrad{w: make([][]float64, l.Out), b: make([]float64, l.Out)}
		for o := range g.w {
			g.w[o] = make([]float64, l.In)
		}
		out[i] = g
	}
	return out
}

// TrainConfig tunes SGD.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LearnRate float64
	Momentum  float64
	// Rng shuffles batches; required.
	Rng *rand.Rand
}

// Train fits the network to (xs, ys) with mini-batch SGD and momentum,
// returning the mean loss of the final epoch.
func (n *Network) Train(xs [][]float64, ys []int, cfg TrainConfig) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("ml: %d samples, %d labels", len(xs), len(ys))
	}
	if cfg.Rng == nil {
		return 0, errors.New("ml: TrainConfig needs Rng")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LearnRate <= 0 {
		return 0, fmt.Errorf("ml: bad config %+v", cfg)
	}
	for i, y := range ys {
		if y < 0 || y >= n.classes {
			return 0, fmt.Errorf("ml: label %d out of range at %d", y, i)
		}
		if len(xs[i]) != n.layers[0].In {
			return 0, fmt.Errorf("ml: sample %d has dim %d, want %d", i, len(xs[i]), n.layers[0].In)
		}
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	grads := n.newGrads()
	lastEpochLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, g := range grads {
				for o := range g.w {
					for j := range g.w[o] {
						g.w[o][j] = 0
					}
					g.b[o] = 0
				}
			}
			for _, i := range idx[start:end] {
				epochLoss += n.backward(xs[i], ys[i], grads)
			}
			scale := cfg.LearnRate / float64(end-start)
			for li, l := range n.layers {
				g := grads[li]
				for o := 0; o < l.Out; o++ {
					for j := 0; j < l.In; j++ {
						l.vW[o][j] = cfg.Momentum*l.vW[o][j] - scale*g.w[o][j]
						l.W[o][j] += l.vW[o][j]
					}
					l.vB[o] = cfg.Momentum*l.vB[o] - scale*g.b[o]
					l.B[o] += l.vB[o]
				}
			}
		}
		lastEpochLoss = epochLoss / float64(len(idx))
	}
	return lastEpochLoss, nil
}

// Metrics summarizes model quality on a labeled set.
type Metrics struct {
	Accuracy float64
	Loss     float64
}

// Evaluate computes accuracy and mean cross-entropy on a labeled set.
func (n *Network) Evaluate(xs [][]float64, ys []int) (Metrics, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Metrics{}, fmt.Errorf("ml: %d samples, %d labels", len(xs), len(ys))
	}
	correct, loss := 0, 0.0
	for i, x := range xs {
		logits := n.forward(x)
		p := Softmax(logits)
		loss += -math.Log(math.Max(p[ys[i]], 1e-12))
		best := 0
		for c, v := range logits {
			if v > logits[best] {
				best = c
			}
		}
		if best == ys[i] {
			correct++
		}
	}
	return Metrics{
		Accuracy: float64(correct) / float64(len(xs)),
		Loss:     loss / float64(len(xs)),
	}, nil
}
