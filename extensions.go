package imagecvg

import (
	"math/rand"

	"imagecvg/internal/core"
	"imagecvg/internal/crowd"
	"imagecvg/internal/journal"
	"imagecvg/internal/pattern"
	"imagecvg/internal/repair"
)

// Extension surface beyond the paper's algorithms: acquisition
// planning, batched (low-latency) audits, the statistical baseline,
// audit transcripts, and execution-tree tracing.

type (
	// RepairPlan is an acquisition plan repairing every uncovered
	// pattern.
	RepairPlan = repair.Plan
	// RoundsResult is a batched audit outcome (verdict plus rounds).
	RoundsResult = core.RoundsResult
	// SampledResult is the statistical estimator's outcome.
	SampledResult = core.SampledResult
	// RecordingOracle wraps an Oracle and keeps the audit transcript.
	RecordingOracle = core.RecordingOracle
	// ReplayOracle re-answers a recorded transcript.
	ReplayOracle = core.ReplayOracle
	// QueryRecord is one transcript entry.
	QueryRecord = core.QueryRecord
	// ExecutionTrace records a Group-Coverage execution tree.
	ExecutionTrace = core.ExecutionTrace

	// BatchOracle extends Oracle with whole-round execution; implement
	// it to post a round of HITs to a platform in one request.
	BatchOracle = core.BatchOracle
	// SetRequest is one set/reverse-set query of a batch round.
	SetRequest = core.SetRequest
	// CachingOracle deduplicates identical queries against an oracle.
	CachingOracle = core.CachingOracle
	// CacheStats tallies cache hits and misses per HIT type.
	CacheStats = core.CacheStats
	// RetryPolicy re-posts transiently failing HITs.
	RetryPolicy = core.RetryPolicy

	// RoundJournal persists committed audit rounds for checkpoint/resume.
	RoundJournal = core.RoundJournal
	// RoundRecord is one committed oracle round — the checkpoint unit.
	RoundRecord = core.RoundRecord
	// FileJournal is the crash-safe file-backed RoundJournal.
	FileJournal = journal.Journal

	// TrustPolicy tunes the trust middleware's sequential likelihood
	// test (probe schedule, hypothesis error rates, distrust boundary).
	TrustPolicy = core.TrustPolicy
	// TrustConfig assembles the trust middleware: policy, gold probes,
	// answer feed and worker screener; see Auditor.WithTrust.
	TrustConfig = core.TrustConfig
	// GoldProbe is one gold-standard probe HIT with a known answer.
	GoldProbe = core.GoldProbe
	// TrustReport snapshots per-worker trust scores and exclusions.
	TrustReport = core.TrustReport
	// TrustScore is one worker's evidence tally and verdict.
	TrustScore = core.TrustScore
	// WorkerAnswer is one raw worker answer as an AnswerFeed serves it.
	WorkerAnswer = core.WorkerAnswer
	// AnswerFeed serves delta reads of a platform's raw answer stream;
	// SimulatedCrowd.AnswerFeed returns one.
	AnswerFeed = core.AnswerFeed
	// WorkerScreener applies trust exclusions to a platform;
	// SimulatedCrowd.Screener returns one.
	WorkerScreener = core.WorkerScreener
	// WorkerStrategy overrides a simulated worker's answers (adversarial
	// crowd modeling); see CrowdOptions.AdversaryStrategy.
	WorkerStrategy = crowd.WorkerStrategy
)

// Re-exported transcript and engine constructors.
var (
	// NewRecordingOracle wraps any oracle with transcript recording.
	NewRecordingOracle = core.NewRecordingOracle
	// NewReplayOracle replays a recorded transcript.
	NewReplayOracle = core.NewReplayOracle
	// NewCachingOracle wraps any oracle with the deduplicating cache.
	NewCachingOracle = core.NewCachingOracle
	// NewBatchAdapter lifts a plain Oracle into batched execution over
	// a bounded worker pool.
	NewBatchAdapter = core.NewBatchAdapter
	// AsBatchOracle returns the oracle's native batch implementation
	// or lifts it with NewBatchAdapter.
	AsBatchOracle = core.AsBatchOracle
	// ErrTransient marks retryable crowd failures.
	ErrTransient = core.ErrTransient

	// CreateJournal starts a fresh crash-safe journal file.
	CreateJournal = journal.Create
	// OpenJournal loads an existing journal for resumption, recovering
	// a torn tail to the last complete round.
	OpenJournal = journal.Open
	// LoadJournal reads a journal's complete rounds without opening it
	// for appends.
	LoadJournal = journal.Load
	// ErrJournalMismatch marks a replay whose requests diverge from the
	// journaled run.
	ErrJournalMismatch = core.ErrJournalMismatch
	// ErrJournalCorrupt marks journal damage beyond a recoverable torn
	// tail.
	ErrJournalCorrupt = journal.ErrCorrupt

	// DefaultTrustPolicy is the trust middleware's default sequential
	// likelihood test.
	DefaultTrustPolicy = core.DefaultTrustPolicy
	// GoldProbes derives a deterministic gold-probe battery from ground
	// truth.
	GoldProbes = core.GoldProbes
	// NewTrustOracle wraps any oracle with the trust middleware
	// directly; most callers use Auditor.WithTrust instead.
	NewTrustOracle = core.NewTrustOracle
	// WorkerStrategyByName resolves an adversarial worker strategy
	// ("lazy-yes", "random-spam", "colluding-liar"; "" or "honest" is
	// nil).
	WorkerStrategyByName = crowd.StrategyByName
)

// NewRepairPlan computes the acquisitions that bring every pattern of
// the schema to tau, from exact fully-specified subgroup counts
// (pattern.SubgroupIndex order).
func NewRepairPlan(s *Schema, counts []int, tau int) (*RepairPlan, error) {
	return repair.NewPlan(s, counts, tau)
}

// PlanRepair derives an acquisition plan directly from an
// intersectional audit: each fully-specified subgroup contributes the
// audit's count lower bound (exact for uncovered subgroups, >= tau for
// covered ones), so the plan is conservative — it never under-acquires.
func (a *Auditor) PlanRepair(s *Schema, res *IntersectionalResult) (*RepairPlan, error) {
	counts := make([]int, s.NumSubgroups())
	for i, p := range pattern.Subgroups(s) {
		counts[i] = res.Verdicts[p.Key()].Bounds.Lo
	}
	return repair.NewPlan(s, counts, a.tau)
}

// AuditGroupBatched is the level-synchronous variant of AuditGroup:
// every tree level is issued as one concurrent batch of at most
// parallelism in-flight queries, bounding audit latency by
// 1+ceil(log2 n) rounds. The oracle must be safe for concurrent use.
func (a *Auditor) AuditGroupBatched(ids []ObjectID, g Group, parallelism int) (RoundsResult, error) {
	return core.GroupCoverageRounds(a.oracle, ids, a.setSize, a.tau, g, parallelism)
}

// AuditGroupTraced is AuditGroup with execution-tree recording; the
// returned trace renders as text (String) or Graphviz (DOT).
func (a *Auditor) AuditGroupTraced(ids []ObjectID, g Group) (GroupResult, *ExecutionTrace, error) {
	trace := &ExecutionTrace{}
	res, err := core.GroupCoverageOpt(a.oracle, ids, a.setSize, a.tau, g,
		core.GroupCoverageOptions{Trace: trace})
	return res, trace, err
}

// AuditSampled runs the statistical baseline: uniform point-query
// sampling with a Hoeffding confidence interval at level 1-delta and a
// budget of maxTasks queries. Unlike AuditGroup it may return
// undecided, and its verdicts are only probabilistic.
func (a *Auditor) AuditSampled(ids []ObjectID, g Group, delta float64, maxTasks int) (SampledResult, error) {
	return core.SampledCoverage(a.oracle, ids, a.tau, delta, maxTasks, g,
		rand.New(rand.NewSource(a.seed)))
}
