package pattern

import "testing"

// FuzzParse hardens the pattern parser against arbitrary input: it
// must either return an error or a pattern that round-trips through
// String and re-Parse. Run with `go test -fuzz FuzzParse` for real
// fuzzing; the seeds below execute in every plain `go test`.
func FuzzParse(f *testing.F) {
	s := MustSchema(
		Attribute{Name: "a", Values: []string{"0", "1", "2"}},
		Attribute{Name: "b", Values: []string{"0", "1"}},
	)
	for _, seed := range []string{"X0", "21", "XX", "", "99", "X-1", "0-1", "x0", "-", "0--1", "0-1-2"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(s, text)
		if err != nil {
			return
		}
		if len(p) != s.NumAttrs() {
			t.Fatalf("Parse(%q) returned %d slots", text, len(p))
		}
		rt, err := Parse(s, p.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", text, err)
		}
		if !rt.Equal(p) {
			t.Fatalf("round trip of %q changed %v -> %v", text, p, rt)
		}
	})
}
