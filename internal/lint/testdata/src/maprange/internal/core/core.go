// Corpus for the maprange analyzer: package path ends in
// internal/core, so the canonical-commit scope applies.
package core

import (
	"slices"
	"sort"
)

// Counts is a named map type; the rule sees through it.
type Counts map[string]int

// tally is an alias; the rule sees through it too.
type tally = map[string]int

func plainRange(m map[string]int) int {
	n := 0
	for _, v := range m { // want `iteration order is nondeterministic`
		n += v
	}
	return n
}

func namedType(c Counts) {
	for k := range c { // want `iteration order is nondeterministic`
		_ = k
	}
}

func aliasType(t tally) {
	for k := range t { // want `iteration order is nondeterministic`
		_ = k
	}
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

func sortBeforeNotAfter(m map[string]int) []string {
	var keys []string
	sort.Strings(keys)
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func collectThenSlicesSort(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

func sliceRangeIsFine(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}

func suppressedAbove(m map[string]int) int {
	n := 0
	//lint:ordered commutative integer sum
	for _, v := range m {
		n += v
	}
	return n
}

func suppressedTrailing(m map[string]int) {
	for k := range m { //lint:ordered delete during range is order-free
		delete(m, k)
	}
}

func directiveNeedsWhy(m map[string]int) {
	/* want `needs a justification` */ //lint:ordered
	for range m {
	}
}
