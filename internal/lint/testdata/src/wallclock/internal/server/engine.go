// The allowlist is per-file: the rest of internal/server stays in
// scope.
package server

import "time"

func engineClockRead() time.Time {
	return time.Now() // want `wall-clock reads break resume identity`
}
