package server

// Job-engine lifecycle suite, run under -race in CI: concurrent
// submit/status/cancel of a 32-job fleet, cancel-during-round
// commits-or-never semantics against the on-disk journal, restart
// resumption of interrupted jobs, and per-tenant budget admission.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"imagecvg/internal/journal"
)

// smallJob is a fast truth-oracle audit used across the suite.
func smallJob(seed int64) JobConfig {
	return JobConfig{
		Mode:    ModeMultiple,
		Dataset: DatasetSpec{N: 60, Minority: 5, Seed: seed},
		Tau:     4,
		SetSize: 8,
		Seed:    seed,
	}
}

// slowJob takes long enough to cancel mid-run: per-HIT delay makes
// each lockstep round take visible wall-clock time.
func slowJob(seed int64) JobConfig {
	cfg := smallJob(seed)
	cfg.Dataset.N = 200
	cfg.Dataset.Minority = 16
	cfg.Tau = 10
	cfg.SetSize = 12
	cfg.HITDelayMicros = 1500
	return cfg
}

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// waitTerminal waits for a terminal state, failing the test on timeout.
func waitTerminal(t *testing.T, e *Engine, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineLifecycleConcurrent drives 32 jobs through the engine
// while other goroutines hammer Status/List and cancel a third of the
// fleet — the -race lifecycle stress the ISSUE asks for.
func TestEngineLifecycleConcurrent(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 8})
	const n = 32
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := slowJob(int64(i + 1))
		cfg.HITDelayMicros = 200
		id, err := e.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Status/List hammers.
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.List()
				if _, err := e.Status(ids[g*7%n]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Cancel every third job concurrently.
	for i := 0; i < n; i += 3 {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := e.Cancel(id); err != nil {
				t.Error(err)
			}
		}(ids[i])
	}
	for i, id := range ids {
		st := waitTerminal(t, e, id)
		switch {
		case i%3 == 0:
			// A cancel can race completion; both outcomes are terminal
			// and legal, failure is not.
			if st.State != StateCancelled && st.State != StateDone {
				t.Errorf("job %s: state %s (%s), want cancelled or done", id, st.State, st.Error)
			}
		case st.State != StateDone:
			t.Errorf("job %s: state %s (%s), want done", id, st.State, st.Error)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCancelCommitsOrNever cancels a running job and checks the
// commits-or-never contract: the on-disk journal holds exactly the
// rounds the job reports, every one complete and gapless — no torn
// round, no phantom round past the cancellation point.
func TestCancelCommitsOrNever(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, Options{DataDir: dir, Workers: 2})
	id, err := e.Submit(slowJob(3))
	if err != nil {
		t.Fatal(err)
	}
	sub, unsub, err := e.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	// Wait for at least one committed round, then cancel mid-flight.
	for ev := range sub {
		if ev.Type == "round" {
			break
		}
		if ev.Type == "state" && ev.State.Terminal() {
			t.Fatalf("job finished before a round event arrived")
		}
	}
	if err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, e, id)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if st.Rounds == 0 {
		t.Fatal("cancelled job reports zero committed rounds")
	}
	recs, err := journal.Load(filepath.Join(dir, id+".jnl"))
	if err != nil {
		t.Fatalf("journal after cancel: %v", err)
	}
	if len(recs) != st.Rounds {
		t.Fatalf("journal holds %d rounds, status says %d", len(recs), st.Rounds)
	}
}

// TestRestartResume interrupts a job with crash injection, restarts
// the engine over the same data directory, and checks the resumed
// job's result is byte-identical to an uninterrupted run of the same
// configuration.
func TestRestartResume(t *testing.T) {
	cfg := smallJob(11)
	cfg.Dataset.N = 150
	cfg.Dataset.Minority = 12
	cfg.Tau = 8

	// Uninterrupted reference.
	ref := newTestEngine(t, Options{Workers: 1})
	refID, err := ref.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, ref, refID)
	if refSt.State != StateDone {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}

	// Crash-injected first attempt: parked non-terminal after 2 rounds.
	dir := t.TempDir()
	e1 := newTestEngine(t, Options{DataDir: dir, Workers: 1, CrashAfterRounds: 2})
	id, err := e1.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, unsub, err := e1.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	parked := false
	for ev := range sub {
		if ev.Type == "state" && ev.State == StateQueued {
			parked = true
			break
		}
		if ev.Type == "state" && ev.State.Terminal() {
			t.Fatalf("job reached %s before the injected crash", ev.State)
		}
	}
	unsub()
	if !parked {
		t.Fatal("job never parked after crash injection")
	}
	st, err := e1.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Fatalf("parked with %d rounds, want >= 2", st.Rounds)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarted engine resumes and finishes.
	e2 := newTestEngine(t, Options{DataDir: dir, Workers: 1})
	st2, err := e2.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("resumed job: %s (%s)", st2.State, st2.Error)
	}
	if st2.Replayed == 0 {
		t.Fatal("resumed job replayed zero rounds")
	}
	got, _ := json.Marshal(st2.Result)
	want, _ := json.Marshal(refSt.Result)
	if string(got) != string(want) {
		t.Fatalf("resumed result diverged:\n%s\nvs\n%s", got, want)
	}
	if st2.Rounds != refSt.Rounds {
		t.Fatalf("resumed rounds %d, reference %d", st2.Rounds, refSt.Rounds)
	}
}

// TestTenantBudget checks admission: job budgets clamp to the
// tenant's remaining headroom and an exhausted tenant is refused.
func TestTenantBudget(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, TenantMaxHITs: 40})
	cfg := smallJob(5)
	cfg.Tenant = "acme"
	id, err := e.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Budget.MaxHITs != 40 {
		t.Fatalf("effective MaxHITs %d, want clamp to tenant's 40", st.Budget.MaxHITs)
	}
	st = waitTerminal(t, e, id)
	if st.State != StateDone {
		t.Fatalf("budgeted job: %s (%s)", st.State, st.Error)
	}
	if st.Spent.HITs() == 0 || st.Spent.HITs() > 40 {
		t.Fatalf("spent %d HITs under a 40-HIT cap", st.Spent.HITs())
	}
	// Burn the remainder until the tenant is refused.
	refused := false
	for i := 0; i < 10; i++ {
		next := smallJob(int64(6 + i))
		next.Tenant = "acme"
		nid, err := e.Submit(next)
		if errors.Is(err, ErrTenantBudget) {
			refused = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, e, nid)
	}
	if !refused {
		t.Fatal("tenant never exhausted its 40-HIT cap")
	}
	// Other tenants are unaffected.
	other := smallJob(99)
	other.Tenant = "globex"
	if _, err := e.Submit(other); err != nil {
		t.Fatalf("fresh tenant refused: %v", err)
	}
}

// TestTenantBudgetConcurrentSubmit submits back-to-back without
// waiting for terminal states — the normal async pattern — and checks
// admission reserves each job's clamped caps, so concurrent jobs
// split the tenant's headroom instead of each being clamped to all of
// it (which would let a tenant commit N× its cap). A slow job from
// another tenant occupies the single worker, so none of the budgeted
// jobs can run (and release its reservation) between submissions.
func TestTenantBudgetConcurrentSubmit(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, TenantMaxHITs: 40})
	blocker := slowJob(41)
	blocker.Tenant = "blocker"
	blockerID, err := e.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i, want := range []int{15, 15, 10} { // 15+15 leave 10 of 40
		cfg := smallJob(int64(42 + i))
		cfg.Tenant = "acme"
		cfg.MaxHITs = 15
		id, err := e.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		st, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Budget.MaxHITs != want {
			t.Fatalf("job %d admitted with MaxHITs %d, want %d", i, st.Budget.MaxHITs, want)
		}
		ids = append(ids, id)
	}
	over := smallJob(45)
	over.Tenant = "acme"
	over.MaxHITs = 15
	if _, err := e.Submit(over); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("4th concurrent job admitted over the tenant cap (err=%v)", err)
	}
	// Terminal jobs release their reservations and fold actual spend:
	// cancelling the queued jobs (spend 0) restores the full headroom.
	for _, id := range ids {
		if err := e.Cancel(id); err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, e, id)
	}
	again := smallJob(46)
	again.Tenant = "acme"
	id, err := e.Submit(again)
	if err != nil {
		t.Fatalf("submit after reservations released: %v", err)
	}
	if st, _ := e.Status(id); st.Budget.MaxHITs != 40 {
		t.Fatalf("post-release headroom %d, want 40", st.Budget.MaxHITs)
	}
	if err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	_ = e.Cancel(blockerID)
}

// TestTenantBudgetReservedAcrossRestart parks a budgeted job mid-run
// via crash injection, restarts the engine over the same directory,
// and checks recovery re-reserves the parked job's persisted caps —
// a submission on the restarted engine sees only the leftover
// headroom.
func TestTenantBudgetReservedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := newTestEngine(t, Options{DataDir: dir, Workers: 1, TenantMaxHITs: 400, CrashAfterRounds: 1})
	cfg := slowJob(51)
	cfg.Tenant = "acme"
	cfg.MaxHITs = 150 // ample: one committed round cannot exhaust it
	id, err := e1.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, unsub, err := e1.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	parked := false
	for ev := range sub {
		if ev.Type == "state" && ev.State == StateQueued {
			parked = true
			break
		}
		if ev.Type == "state" && ev.State.Terminal() {
			t.Fatalf("job reached %s before the injected crash", ev.State)
		}
	}
	unsub()
	if !parked {
		t.Fatal("job never parked after crash injection")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, Options{DataDir: dir, Workers: 1, TenantMaxHITs: 400})
	next := smallJob(52)
	next.Tenant = "acme"
	nid, err := e2.Submit(next)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e2.Status(nid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Budget.MaxHITs != 250 {
		t.Fatalf("post-restart headroom %d, want 250 (400 minus the parked job's reserved 150)", st.Budget.MaxHITs)
	}
}

// TestRecoverRejectsUnknownMetaField checks the loud-corruption
// policy extends to job meta files: an unknown field fails recovery
// instead of being silently dropped.
func TestRecoverRejectsUnknownMetaField(t *testing.T) {
	dir := t.TempDir()
	meta := `{"id":"job-000000","config":{"dataset":{"n":10},"seed":1},"budget":{},"state":"done","bogus_field":true}`
	if err := os.WriteFile(filepath.Join(dir, "job-000000.job.json"), []byte(meta), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Options{DataDir: dir}); err == nil {
		t.Fatal("engine recovered a job meta with an unknown field")
	}
}

// TestSubmitValidation table-tests config rejection.
func TestSubmitValidation(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	cases := []struct {
		name string
		cfg  JobConfig
	}{
		{"unknown mode", JobConfig{Mode: "bogus", Dataset: DatasetSpec{N: 10}}},
		{"no dataset", JobConfig{Mode: ModeMultiple}},
		{"negative minority", JobConfig{Dataset: DatasetSpec{N: 10, Minority: -1}}},
		{"minority over n", JobConfig{Dataset: DatasetSpec{N: 10, Minority: 11}}},
		{"negative tau", JobConfig{Dataset: DatasetSpec{N: 10}, Tau: -1}},
		{"negative set size", JobConfig{Dataset: DatasetSpec{N: 10}, SetSize: -2}},
		{"negative parallelism", JobConfig{Dataset: DatasetSpec{N: 10}, Parallelism: -1}},
		{"unknown oracle", JobConfig{Dataset: DatasetSpec{N: 10}, Oracle: "psychic"}},
		{"negative budget", JobConfig{Dataset: DatasetSpec{N: 10}, MaxHITs: -5}},
		{"negative delay", JobConfig{Dataset: DatasetSpec{N: 10}, HITDelayMicros: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Submit(tc.cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", tc.cfg)
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("validation error %v does not wrap ErrInvalidConfig", err)
			}
		})
	}
}
