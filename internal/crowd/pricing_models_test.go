package crowd

import (
	"math"
	"testing"
)

func TestFixedPricing(t *testing.T) {
	p := FixedPricing{Price: 0.1}
	if p.AssignmentPrice(SetQuery, 50) != 0.1 || p.AssignmentPrice(PointQuery, 1) != 0.1 {
		t.Error("fixed pricing must ignore the HIT")
	}
}

func TestSizePricing(t *testing.T) {
	p := SizePricing{Base: 0.02, PerImage: 0.001}
	if got := p.AssignmentPrice(SetQuery, 50); math.Abs(got-0.07) > 1e-12 {
		t.Errorf("set price = %f, want 0.07", got)
	}
	if got := p.AssignmentPrice(PointQuery, 1); math.Abs(got-0.021) > 1e-12 {
		t.Errorf("point price = %f, want 0.021", got)
	}
	if got := p.AssignmentPrice(ReverseSetQuery, 10); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("reverse price = %f, want 0.03", got)
	}
}

func TestPostedPricing(t *testing.T) {
	p := PostedPricing{Posted: 0.05, ReservationMean: 0.05}
	if p.AssignmentPrice(SetQuery, 50) != 0.05 {
		t.Error("posted price wrong")
	}
	acc := p.AcceptanceProbability()
	want := 1 - math.Exp(-1)
	if math.Abs(acc-want) > 1e-12 {
		t.Errorf("acceptance = %f, want %f", acc, want)
	}
	// Higher posted price, higher acceptance.
	higher := PostedPricing{Posted: 0.2, ReservationMean: 0.05}
	if higher.AcceptanceProbability() <= acc {
		t.Error("acceptance must grow with the posted price")
	}
	free := PostedPricing{Posted: 0.1}
	if free.AcceptanceProbability() != 1 {
		t.Error("zero reservation mean means everyone accepts")
	}
}

func TestBiddingPricing(t *testing.T) {
	p := BiddingPricing{Min: 0.02, Max: 0.12, Bidders: 9, Winners: 3}
	// 3rd order statistic of U[0.02,0.12] over 9 bidders:
	// 0.02 + 0.1*3/10 = 0.05.
	if got := p.AssignmentPrice(SetQuery, 50); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("bid price = %f, want 0.05", got)
	}
	// More competition lowers the clearing price.
	more := BiddingPricing{Min: 0.02, Max: 0.12, Bidders: 29, Winners: 3}
	if more.AssignmentPrice(SetQuery, 50) >= p.AssignmentPrice(SetQuery, 50) {
		t.Error("more bidders must lower the price")
	}
	// Degenerate configurations fall back to Min.
	bad := BiddingPricing{Min: 0.02, Max: 0.12, Bidders: 0, Winners: 3}
	if bad.AssignmentPrice(SetQuery, 50) != 0.02 {
		t.Error("degenerate auction must fall back to Min")
	}
}

func TestLedgerWithSizePricing(t *testing.T) {
	l := NewLedger(0.2)
	p := SizePricing{Base: 0.02, PerImage: 0.001}
	l.Record(SetQuery, 3, p.AssignmentPrice(SetQuery, 50))
	if math.Abs(l.WorkerCost()-0.21) > 1e-12 {
		t.Errorf("worker cost = %f, want 0.21", l.WorkerCost())
	}
}
