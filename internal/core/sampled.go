package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// SampledResult reports the statistical coverage estimator.
type SampledResult struct {
	Group pattern.Group
	// Decided is false when the task budget ran out before the
	// confidence interval cleared the threshold.
	Decided bool
	// Covered is the decision (valid only when Decided).
	Covered bool
	// Estimate is the point estimate of |g|.
	Estimate float64
	// Low and High bound |g| at confidence 1-delta.
	Low, High float64
	// Tasks is the number of point queries spent.
	Tasks int
}

// String implements fmt.Stringer.
func (r SampledResult) String() string {
	verdict := "undecided"
	if r.Decided {
		verdict = "uncovered"
		if r.Covered {
			verdict = "covered"
		}
	}
	return fmt.Sprintf("%s: %s, |g| in [%.1f, %.1f] (est %.1f), %d tasks",
		r.Group, verdict, r.Low, r.High, r.Estimate, r.Tasks)
}

// SampledCoverage is a statistical baseline the paper's exact
// algorithms should be measured against: estimate |g| from uniformly
// sampled point labels and decide coverage only when the Hoeffding
// confidence interval at level 1-delta clears tau. Sampling is
// cheap when the group is far from the threshold but — unlike
// Group-Coverage — can never *certify* a verdict, needs Theta(N^2)
// samples as |g| approaches tau, and gives up (Decided=false) when
// maxTasks point queries are exhausted.
//
// The sample grows by doubling; after m draws (without replacement,
// treated conservatively as with-replacement for the bound) the
// interval is N * (phat ± sqrt(ln(2/delta) / (2m))).
func SampledCoverage(o Oracle, ids []dataset.ObjectID, tau int, delta float64, maxTasks int, g pattern.Group, rng *rand.Rand) (SampledResult, error) {
	res := SampledResult{Group: g}
	if o == nil {
		return res, errors.New("core: nil oracle")
	}
	if rng == nil {
		return res, errors.New("core: SampledCoverage needs a *rand.Rand")
	}
	if delta <= 0 || delta >= 1 {
		return res, fmt.Errorf("core: delta=%f out of (0,1)", delta)
	}
	if tau < 0 || maxTasks < 0 {
		return res, fmt.Errorf("core: tau=%d maxTasks=%d", tau, maxTasks)
	}
	n := len(ids)
	if tau == 0 {
		res.Decided, res.Covered = true, true
		return res, nil
	}
	if n == 0 {
		res.Decided = true
		return res, nil
	}
	if maxTasks > n {
		maxTasks = n
	}

	perm := rng.Perm(n)
	hits, m := 0, 0
	batch := 16
	for m < maxTasks {
		target := m + batch
		if target > maxTasks {
			target = maxTasks
		}
		for ; m < target; m++ {
			labels, err := o.PointQuery(ids[perm[m]])
			if err != nil {
				return res, err
			}
			res.Tasks++
			if g.Matches(labels) {
				hits++
			}
		}
		batch *= 2

		phat := float64(hits) / float64(m)
		eps := math.Sqrt(math.Log(2/delta) / (2 * float64(m)))
		res.Estimate = float64(n) * phat
		res.Low = math.Max(0, float64(n)*(phat-eps))
		res.High = math.Min(float64(n), float64(n)*(phat+eps))
		// A full census is exact regardless of the bound.
		if m == n {
			res.Low, res.High = res.Estimate, res.Estimate
		}
		if res.Low >= float64(tau) {
			res.Decided, res.Covered = true, true
			return res, nil
		}
		if res.High < float64(tau) {
			res.Decided = true
			return res, nil
		}
	}
	return res, nil
}
