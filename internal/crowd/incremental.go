package crowd

import (
	"errors"
	"fmt"
)

// IncrementalDS is the online form of the Dawid–Skene estimator: it
// accumulates sufficient statistics as responses arrive and re-runs EM
// warm-started from the previous converged posteriors instead of
// re-solving from scratch. Only tasks that received new responses get
// their posterior re-initialized (to vote fractions, exactly as the
// batch estimator would); every other task resumes from its converged
// posterior, so after K new HITs on an N-task log EM typically needs a
// handful of iterations rather than the full batch schedule.
//
// Equivalence to the batch estimator: the first Infer after loading a
// log is bit-identical to DawidSkene over the same responses (same EM
// core, same initialization, same arithmetic order). Subsequent
// warm-started Infer calls converge to the same fixed point — EM is a
// contraction around it in the low-noise regimes the platform
// simulates — giving the identical MAP truth with posteriors within
// 1e-9 of the batch run; the property tests pin both.
//
// Not safe for concurrent use; feed it from one goroutine (the
// ResponseLog it syncs from has its own lock and may be shared with a
// running deployment).
type IncrementalDS struct {
	state  *dsState
	synced int // responses already consumed from the log
}

// NewIncrementalDS creates an incremental estimator for a fixed worker
// pool and class count; the task range grows as responses arrive.
func NewIncrementalDS(numWorkers, numClasses int) (*IncrementalDS, error) {
	if numWorkers <= 0 || numClasses < 2 {
		return nil, fmt.Errorf("crowd: bad Dawid-Skene dimensions (%d workers, %d classes)",
			numWorkers, numClasses)
	}
	return &IncrementalDS{state: newDSState(numWorkers, numClasses)}, nil
}

// Observe folds one response into the sufficient statistics.
func (x *IncrementalDS) Observe(r Response) error { return x.state.observe(r) }

// SyncLog consumes every response appended to the log since the last
// sync (a delta read — the already-seen prefix is never re-copied) and
// returns how many were folded in.
func (x *IncrementalDS) SyncLog(log *ResponseLog) (int, error) {
	delta := log.ResponsesSince(x.synced)
	for i, r := range delta {
		if err := x.state.observe(r); err != nil {
			x.synced += i
			return i, err
		}
	}
	x.synced += len(delta)
	return len(delta), nil
}

// Tasks returns the current number of tasks in the statistics.
func (x *IncrementalDS) Tasks() int { return len(x.state.byTask) }

// Infer re-runs EM over the current statistics — warm-started from the
// previous call's posteriors — and returns a snapshot of the result.
func (x *IncrementalDS) Infer(maxIters int) (*DSResult, error) {
	if len(x.state.byTask) == 0 {
		return nil, errors.New("crowd: no responses to infer from")
	}
	x.state.prepare()
	iters := x.state.run(maxIters)
	return x.state.result(iters), nil
}
