package experiment

import (
	"fmt"
	"sync"
	"time"
)

// Recorder aggregates per-trial wall-clock across every cell (and
// every engine run) that shares it, so a CLI can report where an
// experiment's time went and how much the pool amortized. Safe for
// concurrent use; a nil *Recorder ignores observations.
type Recorder struct {
	mu      sync.Mutex
	cells   map[string]int
	trials  int
	total   time.Duration
	max     time.Duration
	slowest string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{cells: make(map[string]int)}
}

// observe folds one finished trial in; nil-safe so the engine can
// call it unconditionally.
func (r *Recorder) observe(cell string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cells == nil { // zero-value Recorders work too
		r.cells = make(map[string]int)
	}
	r.cells[cell]++
	r.trials++
	r.total += d
	if d > r.max {
		r.max = d
		r.slowest = cell
	}
}

// TimingSummary is a point-in-time view of a Recorder.
type TimingSummary struct {
	// Cells and Trials count distinct cell names and finished trials.
	Cells, Trials int
	// TrialTime is the summed per-trial wall-clock — the sequential
	// cost; wall-clock below it means the pool paid off.
	TrialTime time.Duration
	// MaxTrial is the slowest single trial, in the cell Slowest.
	MaxTrial time.Duration
	Slowest  string
}

// Summary snapshots the recorder.
func (r *Recorder) Summary() TimingSummary {
	if r == nil {
		return TimingSummary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return TimingSummary{
		Cells:     len(r.cells),
		Trials:    r.trials,
		TrialTime: r.total,
		MaxTrial:  r.max,
		Slowest:   r.slowest,
	}
}

// Reset clears the tally (between experiments sharing one recorder).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells = make(map[string]int)
	r.trials = 0
	r.total = 0
	r.max = 0
	r.slowest = ""
}

// String renders the summary as the one-line report the CLI prints.
func (s TimingSummary) String() string {
	if s.Trials == 0 {
		return "no trials recorded"
	}
	return fmt.Sprintf("%d trials / %d cells, trial time %.2fs total, %.2fs max (%s)",
		s.Trials, s.Cells, s.TrialTime.Seconds(), s.MaxTrial.Seconds(), s.Slowest)
}
