package imagecvg

import "math/rand"

// newTestRand returns a deterministic rand source for façade tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
