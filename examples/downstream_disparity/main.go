// Downstream disparity: the paper's section 6.4 experiments — a model
// trained on data that lacks coverage of a group performs measurably
// worse on that group, and repairing the coverage repairs the model.
// Reproduces the mechanism of Figures 6a (drowsiness detection,
// spectacled subjects uncovered) and 6b (gender detection, Black
// subjects uncovered) with a from-scratch MLP.
//
//	go run ./examples/downstream_disparity
package main

import (
	"fmt"
	"log"

	"imagecvg/internal/ml"
)

func run(spec ml.DisparitySpec, seed int64) {
	points, err := ml.RunDisparity(spec, []int{0, 20, 40, 60, 80, 100}, 3, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", spec.Name)
	fmt.Println("  added  acc-disparity  loss-disparity")
	for _, p := range points {
		fmt.Printf("  %5d  %+.4f        %+.4f\n", p.Added, p.AccDisparity, p.LossDisparity)
	}
	fmt.Println()
}

func main() {
	fmt.Println("training models with 0..100 uncovered-group samples added per class")
	fmt.Println("(disparity = metric on a random test set minus metric on the uncovered group)")
	fmt.Println()
	run(ml.DrowsinessSpec(), 4)
	run(ml.GenderSpec(), 8)
	fmt.Println("both disparities shrink toward zero as the uncovered region is filled in,")
	fmt.Println("mirroring Figures 6a and 6b of the paper.")
}
