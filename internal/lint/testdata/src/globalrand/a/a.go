// Corpus for the globalrand analyzer: scope is the whole module, so
// any non-test package exercises the rule.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `shared global Source`
}

func globalSeed() {
	rand.Seed(42) // want `shared global Source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `shared global Source`
}

func globalDrawV2() int {
	return randv2.IntN(10) // want `shared global Source`
}

func drawAsValue() func() float64 {
	return rand.Float64 // want `shared global Source`
}

func seededChild(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func methodDrawsAreFine(r *rand.Rand) []int {
	return r.Perm(4)
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-seeded math/rand.New`
}

func timeSeededV2() *randv2.Rand {
	return randv2.New(randv2.NewPCG(uint64(time.Now().UnixNano()), 7)) // want `time-seeded math/rand/v2.New`
}

func suppressedDraw() int {
	//lint:rand demo jitter outside every audit path
	return rand.Intn(3)
}
