package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// prefixFlakyBatch is a native BatchOracle that commits a prefix and
// then fails: every failEvery-th request — counted across calls —
// returns ErrTransient together with the answers committed before it,
// the partial-prefix clause of the BatchOracle contract as a flaky
// platform under a budget governor surfaces it. Requests the failure
// cuts off are NOT committed, so a correct retry must re-post exactly
// the unanswered suffix.
type prefixFlakyBatch struct {
	inner     *TruthOracle
	failEvery int
	calls     int
}

func (f *prefixFlakyBatch) tick() bool {
	f.calls++
	return f.failEvery > 0 && f.calls%f.failEvery == 0
}

func (f *prefixFlakyBatch) SetQueryBatch(reqs []SetRequest) ([]bool, error) {
	var answers []bool
	for _, req := range reqs {
		if f.tick() {
			return answers, ErrTransient
		}
		var ans bool
		var err error
		if req.Reverse {
			ans, err = f.inner.ReverseSetQuery(req.IDs, req.Group)
		} else {
			ans, err = f.inner.SetQuery(req.IDs, req.Group)
		}
		if err != nil {
			return answers, err
		}
		answers = append(answers, ans)
	}
	return answers, nil
}

func (f *prefixFlakyBatch) PointQueryBatch(ids []dataset.ObjectID) ([][]int, error) {
	var labels [][]int
	for _, id := range ids {
		if f.tick() {
			return labels, ErrTransient
		}
		l, err := f.inner.PointQuery(id)
		if err != nil {
			return labels, err
		}
		labels = append(labels, l)
	}
	return labels, nil
}

func (f *prefixFlakyBatch) SetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := f.SetQueryBatch([]SetRequest{{IDs: ids, Group: g}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

func (f *prefixFlakyBatch) ReverseSetQuery(ids []dataset.ObjectID, g pattern.Group) (bool, error) {
	answers, err := f.SetQueryBatch([]SetRequest{{IDs: ids, Group: g, Reverse: true}})
	if err != nil {
		return false, err
	}
	return answers[0], nil
}

func (f *prefixFlakyBatch) PointQuery(id dataset.ObjectID) ([]int, error) {
	labels, err := f.PointQueryBatch([]dataset.ObjectID{id})
	if err != nil {
		return nil, err
	}
	return labels[0], nil
}

// retryReqs builds a 6-request set round plus its ground-truth answers.
func retryReqs(t *testing.T) (*dataset.Dataset, []SetRequest, []bool) {
	t.Helper()
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{60, 12, 10, 8}, rand.New(rand.NewSource(51)))
	g := pattern.GroupsForAttribute(s, 0)[1]
	ids := d.IDs()
	reqs := make([]SetRequest, 6)
	for i := range reqs {
		reqs[i] = SetRequest{IDs: ids[i*5 : (i+1)*5], Group: g}
	}
	truth := NewTruthOracle(d)
	want := make([]bool, len(reqs))
	for i, req := range reqs {
		var err error
		want[i], err = truth.SetQuery(req.IDs, req.Group)
		if err != nil {
			t.Fatal(err)
		}
	}
	return d, reqs, want
}

// TestRetryBatchNoDoubleCharge is the regression test for the retry x
// budget composition bug: a retried batch used to re-post the WHOLE
// round, double-charging the committed prefix against the governor and
// — with a failure period that divides the round length — never
// completing at all. The suffix-splice retry completes in two attempts
// and charges exactly the posted HITs, in both wrap orders.
//
// With failEvery=4 over 6 requests: attempt 1 commits 3 answers and
// fails the 4th request; attempt 2 re-posts the 3-request suffix and
// succeeds. Old code re-posted all 6 each attempt, hitting a failure
// every time (counters 4, 8, 12) and erroring out after MaxAttempts
// with 18 charged set HITs.
func TestRetryBatchNoDoubleCharge(t *testing.T) {
	_, reqs, want := retryReqs(t)
	policy := RetryPolicy{MaxAttempts: 3}
	check := func(name string, answers []bool, err error, spent BudgetSpent, wantSet int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: err = %v, want success (old retry re-posts the whole batch and never completes)", name, err)
		}
		if len(answers) != len(want) {
			t.Fatalf("%s: %d answers, want %d", name, len(answers), len(want))
		}
		for i := range want {
			if answers[i] != want[i] {
				t.Errorf("%s: answer[%d] = %v, want %v (spliced suffix misaligned)", name, i, answers[i], want[i])
			}
		}
		if spent.Set != wantSet {
			t.Errorf("%s: charged %d set HITs, want %d (committed prefix re-charged)", name, spent.Set, wantSet)
		}
	}

	// Retry over governor: the governor sees — and charges — every
	// re-post, so the two attempts charge 6 + 3.
	fresh := func(t *testing.T) *prefixFlakyBatch {
		d, _, _ := retryReqs(t)
		return &prefixFlakyBatch{inner: NewTruthOracle(d), failEvery: 4}
	}
	gov := NewBudgetedOracle(fresh(t), Budget{MaxHITs: 100})
	r := withRetry(context.Background(), gov, policy, rand.New(rand.NewSource(1)))
	answers, err := AsBatchOracle(r, 1).SetQueryBatch(reqs)
	check("retry(gov(flaky))", answers, err, gov.Spent(), 9)

	// Governor over retry: the retries happen below the governor, so
	// the round charges its 6 requests once.
	r2 := withRetry(context.Background(), fresh(t), policy, rand.New(rand.NewSource(2)))
	gov2 := NewBudgetedOracle(r2, Budget{MaxHITs: 100})
	answers2, err2 := gov2.SetQueryBatch(reqs)
	check("gov(retry(flaky))", answers2, err2, gov2.Spent(), 6)
}

// TestRetryPointBatchSuffixSplice: the same splice applies to point
// rounds.
func TestRetryPointBatchSuffixSplice(t *testing.T) {
	d, _, _ := retryReqs(t)
	ids := d.IDs()[:6]
	truth := NewTruthOracle(d)
	want := make([][]int, len(ids))
	for i, id := range ids {
		var err error
		want[i], err = truth.PointQuery(id)
		if err != nil {
			t.Fatal(err)
		}
	}

	flaky := &prefixFlakyBatch{inner: NewTruthOracle(d), failEvery: 4}
	gov := NewBudgetedOracle(flaky, Budget{MaxHITs: 100})
	r := withRetry(context.Background(), gov, RetryPolicy{MaxAttempts: 3}, rand.New(rand.NewSource(3)))
	labels, err := AsBatchOracle(r, 1).PointQueryBatch(ids)
	if err != nil {
		t.Fatalf("err = %v, want success", err)
	}
	if len(labels) != len(want) {
		t.Fatalf("%d label vectors, want %d", len(labels), len(want))
	}
	for i := range want {
		if len(labels[i]) != len(want[i]) {
			t.Fatalf("labels[%d] = %v, want %v", i, labels[i], want[i])
		}
		for k := range want[i] {
			if labels[i][k] != want[i][k] {
				t.Errorf("labels[%d][%d] = %d, want %d", i, k, labels[i][k], want[i][k])
			}
		}
	}
	if got := gov.Spent().Point; got != 9 {
		t.Errorf("charged %d point HITs, want 9", got)
	}
}

// TestRetryBackoffCancels: a cancelled context aborts a sleeping
// backoff promptly instead of posting another attempt (satellite fix:
// the backoff selects on ctx).
func TestRetryBackoffCancels(t *testing.T) {
	s := raceSchema()
	d := dataset.MustFromCounts(s, []int{20, 2, 2, 2}, rand.New(rand.NewSource(52)))
	g := pattern.GroupsForAttribute(s, 0)[1]
	flaky := &FlakyOracle{Inner: NewTruthOracle(d), FailEvery: 1} // every call fails

	ctx, cancel := context.WithCancel(context.Background())
	r := withRetry(ctx, flaky, RetryPolicy{MaxAttempts: 5, Backoff: time.Hour}, rand.New(rand.NewSource(4)))
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.SetQuery(d.IDs()[:2], g)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; backoff slept through the context", elapsed)
	}
}

// TestNormalizeBudget: negative caps clamp to zero (disabled), exactly
// mirroring normalizeParallelism — a negative cap means "nothing left",
// never a hidden unlimited budget.
func TestNormalizeBudget(t *testing.T) {
	cases := []struct {
		name string
		in   Budget
		want Budget
	}{
		{"zero stays zero", Budget{}, Budget{}},
		{"negative MaxHITs", Budget{MaxHITs: -1}, Budget{}},
		{"negative MaxPoint", Budget{MaxPoint: -7}, Budget{}},
		{"negative MaxSet", Budget{MaxSet: -3}, Budget{}},
		{"negative MaxReverseSet", Budget{MaxReverseSet: -2}, Budget{}},
		{"negative MaxSpend", Budget{MaxSpend: -0.5}, Budget{}},
		{
			"mixed keeps positive caps",
			Budget{MaxHITs: 10, MaxPoint: -4, MaxSpend: 2.5},
			Budget{MaxHITs: 10, MaxSpend: 2.5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := normalizeBudget(tc.in); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("normalizeBudget(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}

	// An all-negative budget is inactive: applyBudget must not wrap.
	o := deadOracle{}
	wrapped, gov := applyBudget(o, Budget{MaxHITs: -5, MaxSpend: -1})
	if gov != nil || wrapped != Oracle(o) {
		t.Errorf("applyBudget with negative caps wrapped the oracle (gov=%v)", gov)
	}
	// The constructor clamps too.
	if b := NewBudgetedOracle(o, Budget{MaxHITs: -3}).Budget(); b.MaxHITs != 0 {
		t.Errorf("NewBudgetedOracle kept negative MaxHITs: %+v", b)
	}
}
