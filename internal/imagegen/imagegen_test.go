package imagegen

import (
	"bytes"
	"image/png"
	"math/rand"
	"testing"

	"imagecvg/internal/pattern"
)

func genderRace() *pattern.Schema {
	return pattern.MustSchema(
		pattern.Attribute{Name: "gender", Values: []string{"male", "female"}},
		pattern.Attribute{Name: "race", Values: []string{"white", "black", "hispanic", "asian"}},
	)
}

func TestNewRendererValidation(t *testing.T) {
	tooMany := pattern.MustSchema(
		pattern.Attribute{Name: "a", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "b", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "c", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "d", Values: []string{"0", "1"}},
		pattern.Attribute{Name: "e", Values: []string{"0", "1"}},
	)
	if _, err := NewRenderer(tooMany); err == nil {
		t.Error("5 attributes: want error")
	}
	wide := pattern.MustSchema(pattern.Attribute{
		Name: "a", Values: []string{"0", "1", "2", "3", "4", "5", "6"},
	})
	if _, err := NewRenderer(wide); err == nil {
		t.Error("cardinality 7: want error")
	}
	if _, err := NewRenderer(genderRace()); err != nil {
		t.Errorf("gender x race should render: %v", err)
	}
}

func TestCleanRoundTripAllSubgroups(t *testing.T) {
	schemas := []*pattern.Schema{
		pattern.Binary("gender", "male", "female"),
		genderRace(),
		pattern.MustSchema(
			pattern.Attribute{Name: "shape", Values: []string{"a", "b", "c", "d", "e", "f"}},
			pattern.Attribute{Name: "shade", Values: []string{"a", "b", "c", "d", "e", "f"}},
			pattern.Attribute{Name: "marks", Values: []string{"a", "b", "c", "d"}},
			pattern.Attribute{Name: "border", Values: []string{"a", "b", "c"}},
		),
	}
	for si, s := range schemas {
		r, err := NewRenderer(s)
		if err != nil {
			t.Fatalf("schema %d: %v", si, err)
		}
		for idx := 0; idx < s.NumSubgroups(); idx++ {
			labels := []int(pattern.SubgroupAt(s, idx))
			g, err := r.Render(labels, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := r.Decode(g)
			for i := range labels {
				if got[i] != labels[i] {
					t.Fatalf("schema %d subgroup %v decoded as %v", si, labels, got)
				}
			}
		}
	}
}

func TestRenderValidatesLabels(t *testing.T) {
	r, _ := NewRenderer(genderRace())
	if _, err := r.Render([]int{9, 0}, 0, nil); err == nil {
		t.Error("invalid labels: want error")
	}
}

func TestNoisyRoundTripMostlyCorrect(t *testing.T) {
	// With moderate noise the decoder should almost always recover the
	// labels — the paper's premise that the tasks are easy for humans.
	s := genderRace()
	r, _ := NewRenderer(s)
	rng := rand.New(rand.NewSource(11))
	trials, correct := 500, 0
	for i := 0; i < trials; i++ {
		labels := []int(pattern.SubgroupAt(s, rng.Intn(s.NumSubgroups())))
		g, err := r.Render(labels, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		got := r.Decode(g)
		ok := true
		for j := range labels {
			if got[j] != labels[j] {
				ok = false
			}
		}
		if ok {
			correct++
		}
	}
	if frac := float64(correct) / float64(trials); frac < 0.97 {
		t.Errorf("noisy decode accuracy %.3f, want >= 0.97", frac)
	}
}

func TestHeavyNoiseCausesErrors(t *testing.T) {
	// Sanity check that the noise channel is real: enormous noise must
	// produce at least some decoding mistakes.
	s := genderRace()
	r, _ := NewRenderer(s)
	rng := rand.New(rand.NewSource(12))
	errors := 0
	for i := 0; i < 300; i++ {
		labels := []int(pattern.SubgroupAt(s, rng.Intn(s.NumSubgroups())))
		got := r.Perceive(mustRender(t, r, labels, 0, nil), 300, rng)
		for j := range labels {
			if got[j] != labels[j] {
				errors++
				break
			}
		}
	}
	if errors == 0 {
		t.Error("noise 300 never flipped a decode; channel is fake")
	}
}

func mustRender(t *testing.T, r *Renderer, labels []int, noise float64, rng *rand.Rand) Glyph {
	t.Helper()
	g, err := r.Render(labels, noise, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPerceiveNoNoiseEqualsDecode(t *testing.T) {
	s := genderRace()
	r, _ := NewRenderer(s)
	g := mustRender(t, r, []int{1, 3}, 0, nil)
	got := r.Perceive(g, 0, nil)
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("Perceive = %v, want [1 3]", got)
	}
}

func TestTemplatesDistinct(t *testing.T) {
	s := genderRace()
	r, _ := NewRenderer(s)
	for i := 0; i < s.NumSubgroups(); i++ {
		for j := i + 1; j < s.NumSubgroups(); j++ {
			if distance(&r.templates[i], &r.templates[j]) == 0 {
				t.Errorf("subgroups %d and %d render identically", i, j)
			}
		}
	}
}

func TestPGMAndPNGEncoding(t *testing.T) {
	s := genderRace()
	r, _ := NewRenderer(s)
	g := mustRender(t, r, []int{0, 2}, 0, nil)

	var pgm bytes.Buffer
	if err := g.WritePGM(&pgm); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(pgm.Bytes(), []byte("P5\n16 16\n255\n")) {
		t.Errorf("PGM header wrong: %q", pgm.Bytes()[:20])
	}
	if pgm.Len() != len("P5\n16 16\n255\n")+Size*Size {
		t.Errorf("PGM length = %d", pgm.Len())
	}

	var buf bytes.Buffer
	if err := g.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != Size || img.Bounds().Dy() != Size {
		t.Errorf("PNG bounds = %v", img.Bounds())
	}
}

func TestGlyphAccessors(t *testing.T) {
	var g Glyph
	g.Set(3, 5, 200)
	if g.At(3, 5) != 200 {
		t.Error("Set/At mismatch")
	}
	if g.Image().GrayAt(3, 5).Y != 200 {
		t.Error("Image() lost pixel")
	}
}

func TestClamp(t *testing.T) {
	if clamp8(-5) != 0 || clamp8(300) != 255 || clamp8(128) != 128 {
		t.Error("clamp8 wrong")
	}
}
