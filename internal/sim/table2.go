package sim

import (
	"fmt"

	"imagecvg/internal/classifier"
	"imagecvg/internal/core"
	"imagecvg/internal/dataset"
	"imagecvg/internal/experiment"
	"imagecvg/internal/stats"
)

// Table2ResultRow is one (dataset, classifier) row of the reproduced
// Table 2.
type Table2ResultRow struct {
	Dataset    string
	Classifier string
	// Accuracy and Precision are the realized statistics of the
	// simulated classifier (they match the published ones by
	// construction, up to rounding).
	Accuracy, Precision float64
	// Strategy chosen by Classifier-Coverage ("partition"/"label").
	Strategy string
	// ClassifierCoverageHITs and GroupCoverageHITs are mean task
	// counts over the trials.
	ClassifierCoverageHITs float64
	GroupCoverageHITs      float64
	// Covered is the (ground-truth-correct) verdict.
	Covered bool
}

// Table2Result is the reproduced Table 2.
type Table2Result struct {
	Rows []Table2ResultRow
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	t := stats.NewTable("dataset", "classifier", "accuracy", "precision(F)",
		"strategy", "Classifier-Coverage #HITs", "Group-Coverage #HITs", "covered")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Classifier,
			fmt.Sprintf("%.2f", 100*row.Accuracy), fmt.Sprintf("%.2f", 100*row.Precision),
			row.Strategy, row.ClassifierCoverageHITs, row.GroupCoverageHITs, row.Covered)
	}
	return "Table 2: female coverage detection on gender-classified datasets (tau=50, n=50)\n" + t.String()
}

// table2Obs is one trial's outcome for a (dataset, classifier) row.
// Strategy, realized confusion and verdict do not average; the
// harness reports the final trial's (deterministic at any
// parallelism, since trials are pure functions of their seed).
type table2Obs struct {
	ccHITs, gcHITs float64
	strategy       core.Strategy
	realized       classifier.Confusion
	covered        bool
}

// RunTable2 reproduces Table 2: for each of the paper's nine
// (dataset, classifier) configurations, it builds a simulated
// classifier realizing the published accuracy/precision, feeds its
// predicted-female set to Classifier-Coverage, and compares the task
// count against standalone Group-Coverage. Averaged over o.Trials on
// the trial-runner.
func RunTable2(o Options) (*Table2Result, error) {
	const tau, setSize = 50, 50
	rows := classifier.Table2Rows()
	sims := make([]*classifier.Simulated, len(rows))
	cfgs := make([]experiment.Config, len(rows))
	for ri, row := range rows {
		sim, err := row.Build()
		if err != nil {
			return nil, err
		}
		sims[ri] = sim
		cfgs[ri] = o.cell("table2/"+row.Dataset.Name+"/"+row.Classifier, int64(100*ri))
	}
	results, err := experiment.RunMany(cfgs, func(cell int, t experiment.Trial) (table2Obs, error) {
		row, rng := rows[cell], t.Rng
		d := row.Dataset.Generate(rng)
		g := dataset.Female(d.Schema())
		predicted, err := sims[cell].Predict(d, g, rng)
		if err != nil {
			return table2Obs{}, err
		}
		realized, err := classifier.Evaluate(d, g, predicted)
		if err != nil {
			return table2Obs{}, err
		}

		oracle := core.NewTruthOracle(d)
		// The strategy comparison runs on the batched round engine
		// (classifier default pool width 4, lockstep per the harness
		// knob); against the TruthOracle the rendered table is
		// byte-identical to the sequential engine's at every width.
		cc, err := core.ClassifierCoverage(oracle, d.IDs(), predicted, setSize, tau, g,
			core.ClassifierOptions{Rng: rng, Parallelism: engineWidth(t, 4), Lockstep: t.Lockstep})
		if err != nil {
			return table2Obs{}, err
		}
		gc, err := core.GroupCoverage(core.NewTruthOracle(d), d.IDs(), setSize, tau, g)
		if err != nil {
			return table2Obs{}, err
		}
		return table2Obs{
			ccHITs:   float64(cc.Tasks),
			gcHITs:   float64(gc.Tasks),
			strategy: cc.Strategy,
			realized: realized,
			covered:  cc.Covered,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table2Result{}
	for ri, row := range rows {
		r := results[ri]
		last := r.Last()
		res.Rows = append(res.Rows, Table2ResultRow{
			Dataset:                row.Dataset.Name,
			Classifier:             row.Classifier,
			Accuracy:               last.realized.Accuracy(),
			Precision:              last.realized.Precision(),
			Strategy:               string(last.strategy),
			ClassifierCoverageHITs: r.Mean(func(v table2Obs) float64 { return v.ccHITs }),
			GroupCoverageHITs:      r.Mean(func(v table2Obs) float64 { return v.gcHITs }),
			Covered:                last.covered,
		})
	}
	return res, nil
}
