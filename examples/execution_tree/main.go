// Execution tree: trace the paper's 16-image running example
// (section 3.1 / Figure 4) through Group-Coverage and render the
// query tree — seven paid set queries plus two answers inferred for
// free from their siblings — as text and Graphviz DOT.
//
//	go run ./examples/execution_tree
//	go run ./examples/execution_tree | tail -n +14 | dot -Tpng > tree.png
package main

import (
	"fmt"
	"log"

	"imagecvg"
)

func main() {
	// The toy instance: squares are the majority, triangles (value 1)
	// the audited group, tau = 3, one tree over all 16 images.
	bits := []int{0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 1}
	labels := make([][]int, len(bits))
	for i, b := range bits {
		labels[i] = []int{b}
	}
	schema := imagecvg.BinarySchema("shape", "square", "triangle")
	ds, err := imagecvg.NewDataset(schema, labels)
	if err != nil {
		log.Fatal(err)
	}
	group, err := imagecvg.ParsePattern(schema, "1")
	if err != nil {
		log.Fatal(err)
	}

	auditor := imagecvg.NewAuditor(imagecvg.NewTruthOracle(ds), 3, 16)
	res, trace, err := auditor.AuditGroupTraced(ds.IDs(), imagecvg.GroupOf("triangle", group))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("verdict: %s\n\n", res)
	fmt.Println("query sequence (the paper's walkthrough issues exactly 7):")
	fmt.Println(trace)
	fmt.Println()
	fmt.Println(trace.DOT())
}
