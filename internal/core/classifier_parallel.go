package core

import (
	"errors"

	"imagecvg/internal/dataset"
	"imagecvg/internal/pattern"
)

// This file is the batched round engine behind
// ClassifierOptions.Parallelism / Lockstep — Algorithm 4/5 with every
// phase posting whole rounds of HITs instead of one at a time:
//
//   - the precision sample (line 2-3) becomes a single point-query
//     round over the same objects, in the same order, the sequential
//     loop would draw (both engines share the Rng.Perm consumption);
//   - the Label phase (Algorithm 5) issues bounded rounds of point
//     queries over the unsampled predicted objects and commits the
//     answers in predicted-set order with a deterministic early stop:
//     each round posts min(max(1, tau - verified), remaining budget
//     headroom) queries — the confirmations still missing, narrowed to
//     what an approaching spend cap affords — and the walk stops at
//     the first index where verified >= tau, discarding later
//     in-flight answers;
//   - the Partition phase (Algorithm 5) runs the divide-and-conquer
//     queue of the sequential engine, but posts the front of the queue
//     as one reverse-set round per iteration. The round is clipped to
//     the prefix of nodes whose cumulative size reaches stopAt -
//     confirmed (and to the budget headroom): nodes past that point
//     are pure speculation — if every posted node confirmed, the early
//     stop would already fire — so the over-issue of a wide frontier
//     shrinks exactly when the remaining need is small. Commit order,
//     sibling inference and the early stop replicate partitionClean
//     verbatim (an inferred sibling's in-flight answer is discarded,
//     children re-enter the queue at the back), so the committed
//     results equal the sequential engine's for any clip width.
//
// Round composition is a pure function of previously committed answers
// — never of Parallelism — so the engine is level-synchronous by
// construction: with Lockstep the rounds commit through the canonical
// lockstep scheduler as one BatchOracle batch in issue order, making
// the full ClassifierResult bit-identical at every Parallelism value
// even through order-dependent oracles like the crowd Platform.
// Without Lockstep the rounds fan out across the free-running bounded
// pool, which overlaps per-HIT round-trips the same way but lets an
// order-dependent oracle consume its state in arrival order.
//
// Determinism vs cost: the commit walks replicate the sequential
// loops' visit order exactly, so Strategy, Count, Exact and the task
// breakdown equal the sequential engine's for order-independent
// oracles — Tasks counts committed queries only. The price of posting
// rounds speculatively is over-issue: answers the early stop or the
// sibling inference discards were still real HITs (the same tradeoff
// GroupCoverageRounds documents), bounded per phase by one round.
// Budget exhaustion surfaces as a committed prefix of one round
// (canonical order under Lockstep), translated into a partial
// ClassifierResult with Exhausted set.

// classifierEngine dispatches one phase round at a time through
// runAuditPool, one pool task per in-flight query: under Lockstep the
// round commits as one canonical BatchOracle batch, otherwise the
// queries fan out across the free-running bounded pool. gov, when
// non-nil, is the budget governor already wrapped around o; the engine
// reads its headroom to narrow speculative rounds.
type classifierEngine struct {
	o    Oracle
	gov  *BudgetedOracle
	opts MultipleOptions
}

// pointRound posts one round of point queries. ok[i] marks answers
// that committed; a budget exhaustion returns the committed flags with
// ErrBudgetExhausted, any other failure aborts the round.
func (e *classifierEngine) pointRound(ids []dataset.ObjectID) (labels [][]int, ok []bool, err error) {
	labels = make([][]int, len(ids))
	ok = make([]bool, len(ids))
	err = runAuditPool(e.o, e.opts, nil, len(ids), func(i int, audit Oracle) error {
		var qerr error
		labels[i], qerr = audit.PointQuery(ids[i])
		ok[i] = qerr == nil
		return qerr
	})
	if err != nil && !errors.Is(err, ErrBudgetExhausted) {
		return nil, nil, err
	}
	return labels, ok, err
}

// reverseRound posts one round of reverse set queries ("is anyone here
// NOT in g?"); see pointRound for the ok/error convention.
func (e *classifierEngine) reverseRound(sets [][]dataset.ObjectID, g pattern.Group) (answers []bool, ok []bool, err error) {
	answers = make([]bool, len(sets))
	ok = make([]bool, len(sets))
	err = runAuditPool(e.o, e.opts, nil, len(sets), func(i int, audit Oracle) error {
		var qerr error
		answers[i], qerr = audit.ReverseSetQuery(sets[i], g)
		ok[i] = qerr == nil
		return qerr
	})
	if err != nil && !errors.Is(err, ErrBudgetExhausted) {
		return nil, nil, err
	}
	return answers, ok, err
}

// classifierCoverageParallel is Algorithm 4 on the batched round
// engine; ClassifierCoverage dispatches here when opts.Lockstep or
// opts.Parallelism > 1 (inputs already validated, defaults resolved,
// predicted non-empty, budget governor already applied to o).
func classifierCoverageParallel(o Oracle, gov *BudgetedOracle, ids, predicted []dataset.ObjectID, inPredicted map[dataset.ObjectID]bool, n, tau int, g pattern.Group, opts ClassifierOptions, res ClassifierResult) (ClassifierResult, error) {
	e := &classifierEngine{o: o, gov: gov, opts: MultipleOptions{
		Parallelism: opts.Parallelism,
		Lockstep:    opts.Lockstep,
		Ctx:         opts.Ctx,
	}}

	// Line 2-3: estimate precision on a sample of G, posted as one
	// point-query round over exactly the objects — in exactly the order
	// — the sequential loop would draw.
	sampleSize := sampleBudget(opts.SampleFraction, len(predicted))
	sample := make([]dataset.ObjectID, 0, sampleSize)
	for _, idx := range opts.Rng.Perm(len(predicted))[:sampleSize] {
		sample = append(sample, predicted[idx])
	}
	labels, oks, err := e.pointRound(sample)
	if err != nil && !errors.Is(err, ErrBudgetExhausted) {
		return res, err
	}
	sampled := make(map[dataset.ObjectID]bool, sampleSize)
	truePos := 0
	for i, id := range sample {
		if !oks[i] {
			// Budget exhausted mid-sample: commit the answered prefix
			// and settle; committed later answers (free pool only) are
			// discarded over-issue.
			return classifierExhausted(res, truePos, tau), nil
		}
		res.SampleTasks++
		sampled[id] = true
		if g.Matches(labels[i]) {
			truePos++
		}
	}
	if err != nil {
		return classifierExhausted(res, truePos, tau), nil
	}
	res.EstFPRate = 1 - float64(truePos)/float64(sampleSize)

	// Line 4-5: eliminate false positives, one batched phase per
	// strategy.
	verified := 0
	var exactClean, exhausted bool
	if res.EstFPRate < opts.FPRateThreshold {
		res.Strategy = StrategyPartition
		confirmed, drained, tasks, exh, err := e.partitionCleanRounds(predicted, n, tau, g)
		if err != nil {
			return res, err
		}
		res.CleanupTasks = tasks
		verified = confirmed
		exactClean = drained
		exhausted = exh
	} else {
		res.Strategy = StrategyLabel
		var tasks int
		var exh bool
		verified, exactClean, tasks, exh, err = e.labelCleanRounds(predicted, sampled, truePos, tau, g)
		if err != nil {
			return res, err
		}
		res.CleanupTasks = tasks
		exhausted = exh
	}
	if exhausted {
		return classifierExhausted(res, verified, tau), nil
	}

	return classifierFinish(o, ids, inPredicted, n, tau, verified, exactClean, g, res)
}

// labelCleanRounds is the Label function of Algorithm 5 in bounded
// rounds: it point-labels the unsampled predicted objects, reusing the
// sample's labels, in rounds of min(max(1, tau - verified), budget
// headroom) queries — the confirmations still missing when the round
// is posted, narrowed to what the remaining budget affords — and
// commits the answers in predicted-set order. The walk mirrors the
// sequential loop exactly: it stops at the first index where
// verified >= tau (marking the count a bound, not exact) and discards
// any in-flight answers past the stop, so the committed task count is
// both width-independent and equal to the sequential engine's. A
// budget exhaustion commits the affordable prefix and reports
// exhausted.
func (e *classifierEngine) labelCleanRounds(predicted []dataset.ObjectID, sampled map[dataset.ObjectID]bool, truePos, tau int, g pattern.Group) (verified int, exactClean bool, tasks int, exhausted bool, err error) {
	verified = truePos
	exactClean = true
	var round [][]int // uncommitted answers of the current round
	var roundOK []bool
	var roundIDs []dataset.ObjectID
	pos := 0 // next uncommitted answer within the round
	for i := 0; i < len(predicted); i++ {
		if verified >= tau {
			exactClean = false // stopped early: count is a bound
			return verified, exactClean, tasks, false, nil
		}
		id := predicted[i]
		if sampled[id] {
			continue
		}
		if pos >= len(roundIDs) {
			// Post the next round: the next max(1, tau - verified)
			// unsampled objects from position i onward, clipped to the
			// budget's point-query headroom (floored at one so an
			// exhausted budget surfaces as a refusal, not a spin).
			want := tau - verified
			if h := headroomOf(e.gov, HITPoint, 1); h < want {
				want = h
			}
			if want < 1 {
				want = 1
			}
			roundIDs = roundIDs[:0]
			for j := i; j < len(predicted) && len(roundIDs) < want; j++ {
				if !sampled[predicted[j]] {
					roundIDs = append(roundIDs, predicted[j])
				}
			}
			round, roundOK, err = e.pointRound(roundIDs)
			if err != nil && !errors.Is(err, ErrBudgetExhausted) {
				return verified, exactClean, tasks, false, err
			}
			pos = 0
		}
		if !roundOK[pos] {
			return verified, exactClean, tasks, true, nil
		}
		labels := round[pos]
		pos++
		tasks++
		if g.Matches(labels) {
			verified++
		}
	}
	return verified, exactClean, tasks, false, nil
}

// partitionCleanRounds is the Partition function of Algorithm 5 in
// clipped rounds: the sequential engine's FIFO queue drives the walk,
// but each iteration posts the front of the queue as one reverse-set
// round. The clip takes nodes until their cumulative size reaches
// stopAt - confirmed (posting more is pure speculation: were every
// posted node clean, the early stop would already fire) and never more
// queries than the budget's headroom affords, always at least one
// node. Commit semantics are partitionClean's, verbatim: a "no"
// confirms the range and may infer a task-free "yes" on its right
// sibling — wherever that sibling sits, in this round (its in-flight
// answer is discarded) or still unposted in the queue — a committed
// walk reaching stopAt returns immediately discarding the rest of its
// round, and a full drain makes the confirmed count exact. Round
// composition depends only on committed answers, never on the pool
// width.
func (e *classifierEngine) partitionCleanRounds(predicted []dataset.ObjectID, n, stopAt int, g pattern.Group) (confirmed int, drained bool, tasks int, exhausted bool, err error) {
	if len(predicted) == 0 {
		return 0, true, 0, false, nil
	}
	q := newQueue()
	for i := 0; i < len(predicted); i += n {
		end := i + n
		if end > len(predicted) {
			end = len(predicted)
		}
		q.push(&node{b: i, e: end})
	}
	for !q.empty() {
		// Clip the round: enough front-of-queue nodes to reach the
		// remaining need if all confirm, within budget headroom.
		need := stopAt - confirmed
		room := headroomOf(e.gov, HITReverseSet, n)
		batch := make([]*node, 0, q.len())
		sum := 0
		for t := q.front(); t != nil; t = q.next(t) {
			batch = append(batch, t)
			sum += t.size()
			if sum >= need || len(batch) >= room {
				break
			}
		}
		sets := make([][]dataset.ObjectID, len(batch))
		for i, t := range batch {
			sets[i] = predicted[t.b:t.e]
		}
		answers, oks, err := e.reverseRound(sets, g)
		if err != nil && !errors.Is(err, ErrBudgetExhausted) {
			return confirmed, false, tasks, false, err
		}

		for idx, t := range batch {
			if !t.inQueue {
				continue // answered for free by its left sibling
			}
			if !oks[idx] {
				// Budget exhausted: the walk stops at the first
				// uncommitted answer; committed later answers (free
				// pool only) are discarded over-issue.
				return confirmed, false, tasks, true, nil
			}
			q.remove(t)
			hasFP := answers[idx]
			tasks++

		process:
			if !hasFP {
				// The whole range is verified members of g.
				confirmed += t.size()
				if confirmed >= stopAt {
					return confirmed, false, tasks, false, nil
				}
				// Sibling inference, mirrored from partitionClean: our
				// parent contains a false positive and we contain none,
				// so the right sibling must.
				if t.parent != nil && t == t.parent.left {
					sib := t.parent.right
					if sib != nil && sib.inQueue {
						q.remove(sib)
						t = sib
						hasFP = true
						goto process
					}
				}
				continue
			}
			if t.size() == 1 {
				continue // isolated false positive: discard
			}
			mid := (t.b + t.e) / 2
			t.left = &node{b: t.b, e: mid, parent: t}
			t.right = &node{b: mid, e: t.e, parent: t}
			q.push(t.left)
			q.push(t.right)
		}
	}
	return confirmed, true, tasks, false, nil
}
